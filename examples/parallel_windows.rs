//! Parallel window evaluation (paper §3.5): hash-partition on the window
//! partition key and evaluate each data partition on its own thread.
//!
//! ```sh
//! cargo run --release --example parallel_windows
//! ```

use std::time::Instant;
use wfopt::datagen::{WsColumn, WsConfig};
use wfopt::exec::window::WindowFunction;
use wfopt::exec::{drain, evaluate_window, full_sort, ParallelOp, SegmentedRows, TableScan};
use wfopt::prelude::*;

fn main() -> Result<()> {
    let cfg = WsConfig {
        rows: 120_000,
        d_item: 6_000,
        ..WsConfig::default()
    };
    let table = cfg.generate();
    let wpk = AttrSet::from_iter([WsColumn::Item.attr()]);
    let wok = SortSpec::new(vec![OrdElem::asc(WsColumn::SoldTime.attr())]);
    let sort_key = SortSpec::new(vec![
        OrdElem::asc(WsColumn::Item.attr()),
        OrdElem::asc(WsColumn::SoldTime.attr()),
    ]);

    let chain = |input: SegmentedRows, env: &wfopt::exec::OpEnv| -> Result<SegmentedRows> {
        let sorted = full_sort(input, &sort_key, env)?;
        evaluate_window(sorted, &wpk, &wok, &WindowFunction::Rank, None, env)
    };

    // Sequential.
    let env_seq = ExecEnv::with_memory_blocks(256);
    let t0 = Instant::now();
    let seq = chain(
        SegmentedRows::single_segment(table.rows().to_vec()),
        env_seq.op_env(),
    )?;
    let seq_wall = t0.elapsed();

    // Parallel over 4 workers — expressed as a pipeline stage: TableScan
    // feeds the ParallelOp, which scatters, runs the per-worker chains
    // (each against the ledger sub-account it is handed), and re-emits
    // segments.
    let env_par = ExecEnv::with_memory_blocks(64);
    let t1 = Instant::now();
    let mut par_op = ParallelOp::new(
        TableScan::new(&table, env_par.op_env().clone()),
        wpk.clone(),
        4,
        env_par.op_env().clone(),
        |_, part, worker_env| chain(part, worker_env),
    );
    let par = drain(&mut par_op)?;
    let par_wall = t1.elapsed();

    assert_eq!(seq.len(), par.len());
    println!("rows: {}", table.row_count());
    println!("sequential: {seq_wall:?}");
    println!(
        "parallel(4): {par_wall:?}  ({:.2}x)",
        seq_wall.as_secs_f64() / par_wall.as_secs_f64()
    );

    // Verify identical ranks by order number.
    let order_attr = WsColumn::OrderNumber.attr();
    let rank_attr = AttrId::new(table.schema().len());
    let collect = |s: &SegmentedRows| {
        let mut v: Vec<(i64, i64)> = s
            .rows()
            .iter()
            .map(|r| {
                (
                    r.get(order_attr).as_int().unwrap(),
                    r.get(rank_attr).as_int().unwrap(),
                )
            })
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(collect(&seq), collect(&par));
    println!("results identical across sequential and parallel execution");
    Ok(())
}
