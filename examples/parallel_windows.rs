//! Parallel window evaluation (paper §3.5) through the session API: the
//! same statement against two databases, one pinned serial and one pinned
//! to 4 worker threads — the planner emits a `Par{..}` reorder under the
//! parallel config, and rows are bit-identical either way.
//!
//! ```sh
//! cargo run --release --example parallel_windows
//! ```

use std::time::Duration;
use wfopt::datagen::{WsColumn, WsConfig};
use wfopt::prelude::*;

fn main() -> Result<()> {
    let cfg = WsConfig {
        rows: 120_000,
        d_item: 6_000,
        ..WsConfig::default()
    };
    let table = cfg.generate();
    let sql = "SELECT *, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r \
               FROM web_sales";

    let run = |workers: usize| -> Result<(Table, String, Duration)> {
        let db = DatabaseConfig::new()
            .per_query_blocks(64)
            .worker_threads(workers)
            .open();
        db.register("web_sales", table.clone())?;
        let outcome = db.session().execute(sql)?;
        Ok((
            outcome.table,
            outcome.plan.chain_string(),
            outcome.report.wall,
        ))
    };

    let (seq, seq_chain, seq_wall) = run(1)?;
    let (par, par_chain, par_wall) = run(4)?;

    println!("rows: {}", table.row_count());
    println!("serial chain:      {seq_chain}  ({seq_wall:?})");
    println!(
        "parallel(4) chain: {par_chain}  ({par_wall:?}, {:.2}x)",
        seq_wall.as_secs_f64() / par_wall.as_secs_f64()
    );

    // Verify identical ranks by order number.
    let order_attr = WsColumn::OrderNumber.attr();
    let rank_attr = AttrId::new(table.schema().len());
    let collect = |t: &Table| {
        let mut v: Vec<(i64, i64)> = t
            .rows()
            .iter()
            .map(|r| {
                (
                    r.get(order_attr).as_int().unwrap(),
                    r.get(rank_attr).as_int().unwrap(),
                )
            })
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(collect(&seq), collect(&par));
    println!("results identical across serial and parallel execution");
    Ok(())
}
