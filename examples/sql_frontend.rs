//! The SQL front end with frames and the full function library: moving
//! averages, running totals, ntile buckets and value references.
//!
//! ```sh
//! cargo run --example sql_frontend
//! ```

use wfopt::prelude::*;
use wfopt::sql::{parse_window_query, Catalog};

fn main() -> Result<()> {
    let schema = Schema::of(&[
        ("day", DataType::Int),
        ("store", DataType::Str),
        ("revenue", DataType::Int),
    ]);
    let mut table = Table::new(schema.clone());
    let revenue = [310, 295, 340, 280, 365, 390, 355, 320, 410, 375];
    for (i, r) in revenue.iter().enumerate() {
        let store = if i % 2 == 0 { "downtown" } else { "airport" };
        table.push(Row::new(vec![
            (i as i64 / 2 + 1).into(),
            store.into(),
            (*r).into(),
        ]));
    }

    let mut catalog = Catalog::new();
    catalog.register("daily_sales", schema);

    let sql = "SELECT *, \
        sum(revenue) OVER (PARTITION BY store ORDER BY day) AS running_total, \
        avg(revenue) OVER (PARTITION BY store ORDER BY day \
                           ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS moving_avg_3d, \
        ntile(2) OVER (ORDER BY revenue DESC) AS revenue_half, \
        lag(revenue, 1, 0) OVER (PARTITION BY store ORDER BY day) AS prev_day, \
        max(revenue) OVER (PARTITION BY store) AS store_best \
        FROM daily_sales";

    let (tname, query) = parse_window_query(sql, &catalog)?;
    println!("table: {tname}, {} window functions\n", query.specs.len());

    let stats = TableStats::from_table(&table);
    let env = ExecEnv::with_memory_blocks(64);
    let plan = optimize(&query, &stats, Scheme::Cso, &env)?;
    println!("EXPLAIN:\n{}\n", plan.explain(table.schema()));

    let report = execute_plan(&plan, &table, &env)?;
    let out = &report.table;
    let names: Vec<&str> = out
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    println!("{}", names.join(" | "));
    for row in out.rows() {
        let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }
    Ok(())
}
