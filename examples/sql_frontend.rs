//! The SQL front end with frames and the full function library: moving
//! averages, running totals, ntile buckets and value references — prepared
//! and executed through a database session.
//!
//! ```sh
//! cargo run --example sql_frontend
//! ```

use wfopt::prelude::*;

fn main() -> Result<()> {
    let schema = Schema::of(&[
        ("day", DataType::Int),
        ("store", DataType::Str),
        ("revenue", DataType::Int),
    ]);
    let mut table = Table::new(schema);
    let revenue = [310, 295, 340, 280, 365, 390, 355, 320, 410, 375];
    for (i, r) in revenue.iter().enumerate() {
        let store = if i % 2 == 0 { "downtown" } else { "airport" };
        table.push(Row::new(vec![
            (i as i64 / 2 + 1).into(),
            store.into(),
            (*r).into(),
        ]));
    }

    let db = DatabaseConfig::new().per_query_blocks(64).open();
    db.register("daily_sales", table)?;

    let sql = "SELECT *, \
        sum(revenue) OVER (PARTITION BY store ORDER BY day) AS running_total, \
        avg(revenue) OVER (PARTITION BY store ORDER BY day \
                           ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS moving_avg_3d, \
        ntile(2) OVER (ORDER BY revenue DESC) AS revenue_half, \
        lag(revenue, 1, 0) OVER (PARTITION BY store ORDER BY day) AS prev_day, \
        max(revenue) OVER (PARTITION BY store) AS store_best \
        FROM daily_sales";

    let prepared = db.session().prepare(sql)?;
    println!(
        "table: {}, {} window functions\n",
        prepared.table_name(),
        prepared.window_query().specs.len()
    );
    println!("EXPLAIN:\n{}\n", prepared.explain()?);

    let outcome = prepared.execute()?;
    let out = &outcome.table;
    let names: Vec<&str> = out
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    println!("{}", names.join(" | "));
    for row in out.rows() {
        let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }
    Ok(())
}
