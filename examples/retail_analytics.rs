//! Retail analytics over a TPC-DS-shaped `web_sales` table: five window
//! functions (the paper's Q7 workload), compared across all four
//! optimization schemes at a small per-query memory budget — each scheme
//! served by its own database.
//!
//! ```sh
//! cargo run --release --example retail_analytics
//! ```

use wfopt::datagen::WsConfig;
use wfopt::prelude::*;

fn main() -> Result<()> {
    // Keep the example fast: a 40k-row slice of the benchmark table.
    let cfg = WsConfig {
        rows: 40_000,
        d_item: 2_000,
        d_bill: 4_000,
        ..WsConfig::default()
    };
    let table = cfg.generate();
    let schema = table.schema().clone();
    println!(
        "web_sales: {} rows, {} blocks, {} B/row avg\n",
        table.row_count(),
        table.block_count(),
        table.avg_row_bytes()
    );

    // The paper's Q7: five rank() functions over different keys.
    let query = QueryBuilder::new(&schema)
        .rank(
            "wf1",
            &["ws_sold_date_sk", "ws_sold_time_sk", "ws_ship_date_sk"],
            &[],
        )
        .rank("wf2", &["ws_sold_time_sk", "ws_sold_date_sk"], &[])
        .rank("wf3", &["ws_item_sk"], &[])
        .rank(
            "wf4",
            &[],
            &[("ws_item_sk", false), ("ws_bill_customer_sk", false)],
        )
        .rank(
            "wf5",
            &[
                "ws_sold_date_sk",
                "ws_sold_time_sk",
                "ws_item_sk",
                "ws_bill_customer_sk",
            ],
            &[("ws_ship_date_sk", false)],
        )
        .build()?;

    // ~4 MB of per-query sort memory against a ~9 MB table: the small-M
    // regime.
    let mem_blocks = 16;

    println!(
        "{:<8} {:<55} {:>10} {:>12}",
        "scheme", "chain", "reorders", "modeled ms"
    );
    let mut baseline = 0.0;
    for scheme in [Scheme::Bfo, Scheme::Cso, Scheme::Orcl, Scheme::Psql] {
        let db = DatabaseConfig::new()
            .scheme(scheme)
            .per_query_blocks(mem_blocks)
            .open();
        db.register("web_sales", table.clone())?;
        let outcome = db
            .session()
            .prepare_query("web_sales", query.clone())?
            .execute()?;
        if scheme == Scheme::Bfo {
            baseline = outcome.report.modeled_ms;
        }
        println!(
            "{:<8} {:<55} {:>10} {:>9.1} ({:.2}x)",
            scheme.name(),
            outcome.plan.chain_string(),
            outcome.plan.reorder_count(),
            outcome.report.modeled_ms,
            outcome.report.modeled_ms / baseline
        );
    }
    println!(
        "\n(The cover-set schemes share one expensive reorder across wf5/wf4/wf3\n\
              and another across wf1/wf2; PSQL pays one full sort per function.)"
    );
    Ok(())
}
