//! Integrated window-query optimization (paper §5): the windowed table is
//! produced by a GROUP BY, and the optimizer weighs *hash* aggregation
//! (grouped output, cheap) against *sort* aggregation (sorted output, more
//! expensive upstream but the window chain then needs only a Segmented
//! Sort).
//!
//! ```sh
//! cargo run --release --example integrated_group_by
//! ```

use wfopt::core::integrated::{optimize_integrated, InputVariant};
use wfopt::core::SegProps;
use wfopt::datagen::{WsColumn, WsConfig};
use wfopt::exec::{filter, group_by_hash, group_by_sort, GroupAgg, Predicate};
use wfopt::prelude::*;

fn main() -> Result<()> {
    // SELECT item, count(*), sum(quantity),
    //        rank() OVER (PARTITION BY item_group ORDER BY sales) ...
    // FROM web_sales WHERE quantity <= 50 GROUP BY item_group, item
    let cfg = WsConfig {
        rows: 60_000,
        d_item: 3_000,
        ..WsConfig::default()
    };
    let base = cfg.generate();
    let item = WsColumn::Item.attr();
    let qty = WsColumn::Quantity.attr();

    let env = ExecEnv::with_memory_blocks(32);
    let filtered = filter(&base, &Predicate::Le(qty, Value::Int(50)), env.op_env())?;
    println!(
        "filtered: {} of {} rows",
        filtered.row_count(),
        base.row_count()
    );

    // The windowed table: per-item sales summary. Two upstream plans:
    let keys = [item];
    let aggs = [GroupAgg::CountStar, GroupAgg::Sum(qty)];

    let env_hash = ExecEnv::with_memory_blocks(32);
    let by_hash = group_by_hash(&filtered, &keys, &aggs, env_hash.op_env())?;
    let hash_cost = env_hash
        .weights()
        .modeled_ms(&env_hash.tracker().snapshot());

    let env_sort = ExecEnv::with_memory_blocks(32);
    let by_sort = group_by_sort(&filtered, &keys, &aggs, env_sort.op_env())?;
    let sort_cost = env_sort
        .weights()
        .modeled_ms(&env_sort.tracker().snapshot());

    println!(
        "group_by_hash: {} groups, {:.1} modeled ms (grouped output)",
        by_hash.row_count(),
        hash_cost
    );
    println!(
        "group_by_sort: {} groups, {:.1} modeled ms (sorted output)\n",
        by_sort.row_count(),
        sort_cost
    );

    // Window functions over the summary: rank items by total quantity,
    // and a global rank by order count.
    let schema = by_hash.schema().clone();
    let query = QueryBuilder::new(&schema)
        .rank(
            "rank_by_volume",
            &["ws_item_sk"],
            &[("sum_ws_quantity", true)],
        )
        .rank("global_by_count", &[], &[("count", true)])
        .build()?;

    // §5: hand both variants (with their true setup costs) to the
    // integrated optimizer.
    let key_attr = schema.resolve("ws_item_sk")?;
    let variants = vec![
        InputVariant {
            label: "hash GROUP BY (grouped)".into(),
            props: SegProps::new(AttrSet::from_iter([key_attr]), SortSpec::empty(), true),
            segments: by_hash.row_count() as u64,
            setup_cost_ms: hash_cost,
        },
        InputVariant {
            label: "sort GROUP BY (sorted)".into(),
            props: SegProps::sorted(SortSpec::new(vec![OrdElem::asc(key_attr)])),
            segments: 1,
            setup_cost_ms: sort_cost,
        },
    ];
    let stats = TableStats::from_table(&by_hash);
    let best = optimize_integrated(&query, &variants, &stats, Scheme::Cso, &env)?;
    println!(
        "chosen variant: {} → chain {} (total {:.1} modeled ms, final order: {:?})",
        variants[best.variant].label,
        best.plan.chain_string(),
        best.total_ms,
        best.final_order
    );

    // Execute the chosen combination end to end, served through a session:
    // register the winning GROUP BY output and run the window query on it.
    let table = if best.variant == 0 { by_hash } else { by_sort };
    let db = DatabaseConfig::new()
        .scheme(Scheme::Cso)
        .per_query_blocks(32)
        .open();
    db.register("item_summary", table)?;
    let outcome = db
        .session()
        .prepare_query("item_summary", query)?
        .execute()?;
    println!(
        "served chain:   {} ({:.1} modeled ms)",
        outcome.plan.chain_string(),
        outcome.report.modeled_ms
    );
    println!("\ntop items by volume:");
    let rank_col = outcome.table.schema().resolve("rank_by_volume")?;
    let mut rows: Vec<&Row> = outcome.table.rows().iter().collect();
    rows.sort_by_key(|r| r.get(rank_col).as_int().unwrap_or(i64::MAX));
    for row in rows.iter().take(5) {
        println!("{row}");
    }
    Ok(())
}
