//! Spilling a window query to a (simulated) cloud object store.
//!
//! One oversized partition — `rank()` over the whole relation — with a tiny
//! per-query budget forces the external sort to spill every run to the
//! backend. The same query runs twice over an object store with realistic
//! request latency: once with cold synchronous reads, once with the async
//! read-ahead prefetcher. Rows and modeled counters are bit-identical; the
//! prefetcher only buys back the network latency.
//!
//! ```sh
//! cargo run --release --example cloud_spill
//! ```

use std::time::{Duration, Instant};
use wfopt::datagen::WsConfig;
use wfopt::prelude::*;

const SQL: &str = "SELECT *, rank() OVER (ORDER BY ws_sold_time_sk) AS r FROM web_sales";

/// Per-request knobs of the simulated store: a LAN-ish object store with a
/// pronounced time-to-first-byte on reads (the case read-ahead targets).
fn store_knobs() -> ObjectStoreConfig {
    ObjectStoreConfig {
        request_latency: Duration::from_micros(150),
        first_byte_delay: Duration::from_micros(500),
        throughput_bytes_per_sec: 400 << 20, // 400 MiB/s
    }
}

fn run(table: &Table, prefetch: usize) -> Result<(QueryOutcome, BackendStats, Duration)> {
    let db = DatabaseConfig::new()
        .memory_blocks(32)
        .max_concurrent(1)
        .per_query_blocks(8) // tiny M: the sort cannot hold the partition
        .spill_backend(SpillBackendKind::ObjectStore(store_knobs()))
        .compress_spill(true)
        .prefetch_blocks(prefetch)
        .open();
    db.register("web_sales", table.clone())?;
    let t = Instant::now();
    let outcome = db.session().execute(SQL)?;
    let wall = t.elapsed();
    Ok((outcome, db.spill_stats(), wall))
}

fn main() -> Result<()> {
    let table = WsConfig {
        rows: 30_000,
        ..WsConfig::default()
    }
    .generate();
    println!(
        "web_sales: {} rows; one rank() partition over the whole relation\n",
        table.row_count()
    );

    let (cold, cold_stats, cold_wall) = run(&table, 0)?;
    let (pre, pre_stats, pre_wall) = run(&table, 4)?;

    assert_eq!(cold.table.row_count(), pre.table.row_count());
    assert!(
        cold.table.rows().eq(pre.table.rows()),
        "prefetch must not change a single row"
    );
    assert_eq!(
        cold.report.work.modeled_counters(),
        pre.report.work.modeled_counters(),
        "prefetch must not change modeled counters"
    );

    for (name, stats, wall) in [
        ("cold reads ", &cold_stats, cold_wall),
        ("prefetch=4 ", &pre_stats, pre_wall),
    ] {
        println!(
            "{name}: wall {:>7.1} ms | spill {} PUT / {} GET, {:.1} KiB written, \
             {:.1} KiB read | prefetch hits {}/{} ({:.0}%)",
            wall.as_secs_f64() * 1e3,
            stats.put_requests,
            stats.get_requests,
            stats.bytes_written as f64 / 1024.0,
            stats.bytes_read as f64 / 1024.0,
            stats.prefetch_hits,
            stats.prefetch_hits + stats.prefetch_misses,
            stats.prefetch_hit_rate() * 100.0,
        );
    }
    println!(
        "\nidentical rows ({}) and modeled counters; read-ahead speedup {:.2}x",
        cold.table.row_count(),
        cold_wall.as_secs_f64() / pre_wall.as_secs_f64().max(1e-9),
    );
    Ok(())
}
