//! Quickstart: build a table, declare window functions with the builder,
//! and run them through a served database session.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wfopt::prelude::*;

fn main() -> Result<()> {
    // A tiny sales table.
    let schema = Schema::of(&[
        ("region", DataType::Str),
        ("product", DataType::Str),
        ("amount", DataType::Int),
    ]);
    let mut table = Table::new(schema.clone());
    for (region, product, amount) in [
        ("east", "anvil", 120),
        ("east", "rope", 80),
        ("east", "anvil", 200),
        ("west", "rope", 50),
        ("west", "anvil", 75),
        ("west", "rope", 95),
    ] {
        table.push(Row::new(vec![region.into(), product.into(), amount.into()]));
    }

    // Two window functions that share a partition key: the optimizer
    // evaluates them with a single expensive reorder plus one cheap
    // segmented sort.
    let query = QueryBuilder::new(&schema)
        .window(
            "rank_in_region",
            WindowFunction::Rank,
            &["region"],
            &[("amount", true)],
        )
        .window(
            "running_total",
            WindowFunction::Sum(schema.resolve("amount")?),
            &["region"],
            &[("product", false)],
        )
        .build()?;

    let db = DatabaseConfig::new().per_query_blocks(64).open();
    db.register("sales", table)?;

    let prepared = db.session().prepare_query("sales", query)?;
    println!(
        "plan ({}): {}",
        prepared.plan().scheme,
        prepared.plan().chain_string()
    );
    println!("{}\n", prepared.plan().explain(&schema));

    let outcome = prepared.execute()?;
    println!("{}", outcome.table.schema());
    for row in outcome.table.rows() {
        println!("{row}");
    }
    println!(
        "\nwork: {} block I/Os, {} comparisons, modeled {:.3} ms",
        outcome.report.work.io_blocks(),
        outcome.report.work.comparisons,
        outcome.report.modeled_ms
    );
    Ok(())
}
