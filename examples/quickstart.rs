//! Quickstart: build a table, declare window functions, optimize with the
//! cover-set scheme and execute.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wfopt::prelude::*;

fn main() -> Result<()> {
    // A tiny sales table.
    let schema = Schema::of(&[
        ("region", DataType::Str),
        ("product", DataType::Str),
        ("amount", DataType::Int),
    ]);
    let mut table = Table::new(schema.clone());
    for (region, product, amount) in [
        ("east", "anvil", 120),
        ("east", "rope", 80),
        ("east", "anvil", 200),
        ("west", "rope", 50),
        ("west", "anvil", 75),
        ("west", "rope", 95),
    ] {
        table.push(Row::new(vec![region.into(), product.into(), amount.into()]));
    }

    // Two window functions that share a partition key: the optimizer
    // evaluates them with a single expensive reorder plus one cheap
    // segmented sort.
    let query = QueryBuilder::new(&schema)
        .window(
            "rank_in_region",
            WindowFunction::Rank,
            &["region"],
            &[("amount", true)],
        )
        .window(
            "running_total",
            WindowFunction::Sum(schema.resolve("amount")?),
            &["region"],
            &[("product", false)],
        )
        .build()?;

    let stats = TableStats::from_table(&table);
    let env = ExecEnv::with_memory_blocks(64);
    let plan = optimize(&query, &stats, Scheme::Cso, &env)?;

    println!("plan ({}): {}", plan.scheme, plan.chain_string());
    println!("{}\n", plan.explain(&schema));

    let report = execute_plan(&plan, &table, &env)?;
    let out = &report.table;
    println!("{}", out.schema());
    for row in out.rows() {
        println!("{row}");
    }
    println!(
        "\nwork: {} block I/Os, {} comparisons, modeled {:.3} ms",
        report.work.io_blocks(),
        report.work.comparisons,
        report.modeled_ms
    );
    Ok(())
}
