//! The paper's Example 1, through the served session API: department and
//! global salary rankings in one statement.
//!
//! ```sh
//! cargo run --example employee_ranking
//! ```

use wfopt::prelude::*;

fn main() -> Result<()> {
    let schema = Schema::of(&[
        ("empnum", DataType::Int),
        ("dept", DataType::Int),
        ("salary", DataType::Int),
    ]);
    let mut table = Table::new(schema);
    let data: &[(i64, Option<i64>, Option<i64>)] = &[
        (1, None, None),
        (2, None, Some(84000)),
        (3, Some(2), None),
        (4, Some(1), Some(78000)),
        (5, Some(1), Some(75000)),
        (6, Some(3), Some(79000)),
        (7, Some(2), Some(51000)),
        (8, Some(3), Some(55000)),
        (9, Some(1), Some(53000)),
        (10, Some(3), Some(75000)),
    ];
    for &(e, d, s) in data {
        table.push(Row::new(vec![e.into(), d.into(), s.into()]));
    }

    let db = DatabaseConfig::new().per_query_blocks(64).open();
    db.register("emptab", table)?;

    let sql = "SELECT *, \
               rank() OVER (PARTITION BY dept ORDER BY salary desc nulls last) AS rank_in_dept, \
               rank() OVER (ORDER BY salary desc nulls last) AS globalrank \
               FROM emptab \
               ORDER BY dept, rank_in_dept";
    println!("{sql}\n");

    let prepared = db.session().prepare(sql)?;
    println!("chain: {}\n", prepared.plan().chain_string());

    let outcome = prepared.execute()?;
    println!("EMPNUM  DEPT  SALARY  RANK_IN_DEPT  GLOBALRANK");
    for row in outcome.table.rows() {
        let v = row.values();
        println!(
            "{:>6}  {:>4}  {:>6}  {:>12}  {:>10}",
            v[0].to_string(),
            v[1].to_string(),
            v[2].to_string(),
            v[3].to_string(),
            v[4].to_string()
        );
    }
    println!(
        "\nmodeled {:.3} ms, wall {:.3} ms (queued {:.3} ms)",
        outcome.report.modeled_ms,
        outcome.wall.as_secs_f64() * 1e3,
        outcome.queue_wait.as_secs_f64() * 1e3,
    );
    Ok(())
}
