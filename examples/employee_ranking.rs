//! The paper's Example 1, through the SQL front end: department and global
//! salary rankings in one statement.
//!
//! ```sh
//! cargo run --example employee_ranking
//! ```

use wfopt::prelude::*;
use wfopt::sql::{parse_window_query, Catalog};

fn main() -> Result<()> {
    let schema = Schema::of(&[
        ("empnum", DataType::Int),
        ("dept", DataType::Int),
        ("salary", DataType::Int),
    ]);
    let mut table = Table::new(schema.clone());
    let data: &[(i64, Option<i64>, Option<i64>)] = &[
        (1, None, None),
        (2, None, Some(84000)),
        (3, Some(2), None),
        (4, Some(1), Some(78000)),
        (5, Some(1), Some(75000)),
        (6, Some(3), Some(79000)),
        (7, Some(2), Some(51000)),
        (8, Some(3), Some(55000)),
        (9, Some(1), Some(53000)),
        (10, Some(3), Some(75000)),
    ];
    for &(e, d, s) in data {
        table.push(Row::new(vec![e.into(), d.into(), s.into()]));
    }

    let mut catalog = Catalog::new();
    catalog.register("emptab", schema.clone());

    let sql = "SELECT *, \
               rank() OVER (PARTITION BY dept ORDER BY salary desc nulls last) AS rank_in_dept, \
               rank() OVER (ORDER BY salary desc nulls last) AS globalrank \
               FROM emptab \
               ORDER BY dept, rank_in_dept";
    println!("{sql}\n");

    let (_, query) = parse_window_query(sql, &catalog)?;
    let stats = TableStats::from_table(&table);
    let env = ExecEnv::with_memory_blocks(64);

    let plan = optimize(&query, &stats, Scheme::Cso, &env)?;
    println!("chain: {}\n", plan.chain_string());

    let report = execute_plan(&plan, &table, &env)?;
    let sorted = wfopt::core::integrated::apply_final_order(
        report.table,
        &plan.final_props,
        query.order_by.as_ref().expect("query has ORDER BY"),
        &env,
    )?;

    println!("EMPNUM  DEPT  SALARY  RANK_IN_DEPT  GLOBALRANK");
    for row in sorted.rows() {
        let v = row.values();
        println!(
            "{:>6}  {:>4}  {:>6}  {:>12}  {:>10}",
            v[0].to_string(),
            v[1].to_string(),
            v[2].to_string(),
            v[3].to_string(),
            v[4].to_string()
        );
    }
    Ok(())
}
