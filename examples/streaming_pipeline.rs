//! The segment-at-a-time operator pipeline, driven by hand.
//!
//! Builds the chain `TableScan → HashedSortOp → WindowOp` and pulls one
//! segment (= one bucket of complete window partitions) at a time — the
//! downstream consumer sees ranked rows for bucket `k` while buckets
//! `k+1..n` are still sitting unsorted in the Hashed Sort. The peak number
//! of rows held by the consumer at once is the largest bucket, not the
//! relation.
//!
//! ```sh
//! cargo run --release --example streaming_pipeline
//! ```

use wfopt::datagen::{WsColumn, WsConfig};
use wfopt::exec::window::WindowFunction;
use wfopt::exec::{HashedSortOp, HsOptions, Operator, TableScan, WindowOp};
use wfopt::prelude::*;

fn main() -> Result<()> {
    let cfg = WsConfig {
        rows: 50_000,
        d_item: 2_000,
        ..WsConfig::default()
    };
    let table = cfg.generate();
    let env = ExecEnv::with_memory_blocks(64);

    // rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk)
    let wpk = AttrSet::from_iter([WsColumn::Item.attr()]);
    let wok = SortSpec::new(vec![OrdElem::asc(WsColumn::SoldTime.attr())]);
    let key = SortSpec::new(vec![
        OrdElem::asc(WsColumn::Item.attr()),
        OrdElem::asc(WsColumn::SoldTime.attr()),
    ]);

    let scan = TableScan::new(&table, env.op_env().clone());
    let hs = HashedSortOp::new(
        scan,
        wpk.clone(),
        key,
        HsOptions::with_buckets(64),
        env.op_env().clone(),
    );
    let mut chain = WindowOp::new(
        hs,
        wpk,
        wok,
        WindowFunction::Rank,
        None,
        env.op_env().clone(),
    );

    let mut segments = 0usize;
    let mut rows_seen = 0usize;
    let mut peak_segment = 0usize;
    while let Some(segment) = chain.next_segment()? {
        segments += 1;
        peak_segment = peak_segment.max(segment.len());
        rows_seen += segment.len();
        // A real consumer would stream each segment onward (to a client, a
        // writer, the next window function…) and drop it here.
    }

    println!("rows:          {}", rows_seen);
    println!("segments:      {segments}");
    println!(
        "peak segment:  {peak_segment} rows ({:.1}% of the relation)",
        100.0 * peak_segment as f64 / rows_seen as f64
    );
    let work = env.tracker().snapshot();
    println!(
        "work:          {} block I/Os, {} comparisons, {} hashes",
        work.io_blocks(),
        work.comparisons,
        work.hashes
    );
    // The segment store governs how much of the pipeline is ever resident:
    // segments past the pool budget spill (metered separately from the
    // modeled work above) and stream back block at a time.
    let store = env.store_snapshot();
    println!(
        "residency:     peak {} rows / {} KiB tracked ({} segments pool-spilled, {} pool blocks moved)",
        store.peak_resident_rows,
        store.peak_resident_bytes / 1024,
        store.spilled_segments,
        store.spill_blocks_written + store.spill_blocks_read,
    );
    assert_eq!(rows_seen, table.row_count());

    // The same computation as one served statement: the session API drives
    // an identical chain, with admission and residency governed for us.
    let db = DatabaseConfig::new().per_query_blocks(64).open();
    db.register("web_sales", table)?;
    let outcome = db.session().execute(
        "SELECT *, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r \
         FROM web_sales",
    )?;
    println!(
        "\nserved:        {} rows via `{}` ({:.1} modeled ms, wall {:.1} ms)",
        outcome.table.row_count(),
        outcome.plan.chain_string(),
        outcome.report.modeled_ms,
        outcome.wall.as_secs_f64() * 1e3,
    );
    Ok(())
}
