//! The paper's Tables 4/6/8/10, asserted through the public facade: CSO's
//! chains at the 50/75 and 150 paper-MB equivalents (block budgets 37/111
//! against a ~10.6k-block table, preserving the paper's B/M ratios).

use wfopt::prelude::*;

/// web_sales-shaped statistics (attrs: date=0, time=1, ship=2, item=3,
/// bill=4) at the DESIGN.md scale.
fn stats() -> TableStats {
    TableStats::synthetic(
        400_000,
        10_600 * wfopt::storage::BLOCK_SIZE as u64,
        vec![
            (AttrId::new(0), 1_800),
            (AttrId::new(1), 86_400),
            (AttrId::new(2), 1_800),
            (AttrId::new(3), 20_000),
            (AttrId::new(4), 40_000),
        ],
    )
}

fn schema() -> Schema {
    Schema::of(&[
        ("date", DataType::Int),
        ("time", DataType::Int),
        ("ship", DataType::Int),
        ("item", DataType::Int),
        ("bill", DataType::Int),
    ])
}

fn plan_chain(query: &WindowQuery, scheme: Scheme, m_blocks: u64) -> String {
    let s = stats();
    // Serial planning pinned: these tests reproduce the paper's tables,
    // which predate the parallel operator (a WF_WORKERS toggle would
    // otherwise swap FS positions for PAR nodes).
    let env = ExecEnv::with_memory_blocks(m_blocks).with_par_workers(1);
    let plan = optimize(query, &s, scheme, &env).expect("planning");
    assert_eq!(plan.repairs, 0, "paper queries must plan without repairs");
    plan.chain_string()
}

const M50: u64 = 37;
const M150: u64 = 111;

#[test]
fn table4_q6() {
    let s = schema();
    let q = QueryBuilder::new(&s)
        .rank("wf1", &["item"], &[("date", false)])
        .rank("wf2", &["item"], &[("bill", false)])
        .build()
        .unwrap();
    assert_eq!(plan_chain(&q, Scheme::Cso, M50), "ws HS→ wf1 SS→ wf2");
    assert_eq!(plan_chain(&q, Scheme::Cso, M150), "ws FS→ wf1 SS→ wf2");
    assert_eq!(plan_chain(&q, Scheme::CsoNoHs, M50), "ws FS→ wf1 SS→ wf2");
    assert_eq!(plan_chain(&q, Scheme::CsoNoSs, M50), "ws HS→ wf1 HS→ wf2");
    assert_eq!(plan_chain(&q, Scheme::Psql, M50), "ws FS→ wf1 FS→ wf2");
    assert_eq!(plan_chain(&q, Scheme::Orcl, M50), "ws FS→ wf1 FS→ wf2");
}

fn q7() -> WindowQuery {
    let s = schema();
    QueryBuilder::new(&s)
        .rank("wf1", &["date", "time", "ship"], &[])
        .rank("wf2", &["time", "date"], &[])
        .rank("wf3", &["item"], &[])
        .rank("wf4", &[], &[("item", false), ("bill", false)])
        .rank("wf5", &["date", "time", "item", "bill"], &[("ship", false)])
        .build()
        .unwrap()
}

#[test]
fn table6_q7() {
    let q = q7();
    assert_eq!(
        plan_chain(&q, Scheme::Cso, M50),
        "ws FS→ wf5 → wf4 → wf3 HS→ wf1 → wf2"
    );
    assert_eq!(
        plan_chain(&q, Scheme::Cso, M150),
        "ws FS→ wf5 → wf4 → wf3 FS→ wf1 → wf2"
    );
    assert_eq!(
        plan_chain(&q, Scheme::Orcl, M50),
        "ws FS→ wf5 → wf4 → wf3 FS→ wf1 → wf2"
    );
    // PSQL: one FS per function — the positional matcher cannot share
    // wf1's sort with wf2 (paper Table 6).
    assert_eq!(
        plan_chain(&q, Scheme::Psql, M50),
        "ws FS→ wf1 FS→ wf2 FS→ wf3 FS→ wf4 FS→ wf5"
    );
}

#[test]
fn table10_q9_structure() {
    let s = schema();
    let q = QueryBuilder::new(&s)
        .rank("wf1", &["item"], &[("bill", false), ("date", false)])
        .rank("wf2", &["item", "time"], &[("date", false)])
        .rank("wf3", &["item"], &[("time", false)])
        .rank("wf4", &[], &[("item", false), ("date", false)])
        .rank("wf5", &["bill", "date"], &[("time", false)])
        .rank("wf6", &["bill"], &[("time", false)])
        .rank("wf7", &["date", "time"], &[])
        .rank("wf8", &[], &[("time", false)])
        .build()
        .unwrap();
    let chain50 = plan_chain(&q, Scheme::Cso, M50);
    // Paper structure: the time-subset leads with FS, the bill-subset uses
    // HS then SS, the item-subset one FS plus two SS — 6 reorders total.
    assert!(chain50.starts_with("ws FS→ wf7 → wf8"), "{chain50}");
    assert!(chain50.contains("HS→ wf6 SS→ wf5"), "{chain50}");
    assert_eq!(chain50.matches("SS→").count(), 3, "{chain50}");
    assert_eq!(
        chain50.matches("FS→").count() + chain50.matches("HS→").count(),
        3
    );
    // At 150 the bill-subset's HS flips to FS (paper Table 10).
    let chain150 = plan_chain(&q, Scheme::Cso, M150);
    assert!(chain150.contains("FS→ wf6 SS→ wf5"), "{chain150}");

    // PSQL shares exactly one sort (wf2 → wf3), paper Table 10.
    let psql = plan_chain(&q, Scheme::Psql, M50);
    assert_eq!(
        psql,
        "ws FS→ wf1 FS→ wf2 → wf3 FS→ wf4 FS→ wf5 FS→ wf6 FS→ wf7 FS→ wf8"
    );
}

#[test]
fn bfo_matches_cso_cost_on_paper_queries() {
    let q = q7();
    let s = stats();
    // Serial planning pinned like `plan_chain`: BFO prices steps
    // individually during its memoized search and cannot anticipate the
    // finalize-time parallel span discount, so under a worker budget its
    // best chain may finalize slightly above CSO's Par span. The
    // BFO-equals-CSO optimality claim is the paper's serial-plan-space
    // invariant.
    let env = ExecEnv::with_memory_blocks(M50).with_par_workers(1);
    let bfo = optimize(&q, &s, Scheme::Bfo, &env).unwrap();
    let cso = optimize(&q, &s, Scheme::Cso, &env).unwrap();
    let w = env.weights();
    assert!(
        (bfo.est_cost.ms(&w) - cso.est_cost.ms(&w)).abs() < 1e-6,
        "CSO must be optimal on Q7: bfo={} cso={}",
        bfo.est_cost.ms(&w),
        cso.est_cost.ms(&w)
    );
}
