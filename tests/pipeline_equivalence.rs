//! Old-vs-new pipeline identity: the batch free functions (materializing a
//! full `SegmentedRows` between stages) and the pull-based operator chains
//! (streaming one segment at a time) must produce **identical rows,
//! identical segment boundaries, and identical cost counters** across
//! FS/HS/SS chains — and `execute_plan`'s pipelined runtime must match a
//! hand-rolled batch composition of the same plan, with an exact per-step
//! work breakdown.

mod common;

use common::random_table;
use wfopt::core::plan::{finalize_chain, PlanContext, PlanStep, ReorderOp};
use wfopt::core::spec::WindowSpec;
use wfopt::core::SegProps;
use wfopt::exec::window::WindowFunction;
use wfopt::exec::{
    drain, evaluate_window, full_sort, hashed_sort, segmented_sort, FullSortOp, HashedSortOp,
    HsOptions, Operator, SegmentSource, SegmentedRows, SegmentedSortOp, TableScan, WindowOp,
};
use wfopt::prelude::*;

fn a(i: usize) -> AttrId {
    AttrId::new(i)
}

fn asc(ids: &[usize]) -> SortSpec {
    SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
}

fn aset(ids: &[usize]) -> AttrSet {
    AttrSet::from_iter(ids.iter().map(|&i| a(i)))
}

/// Batch: FS → window, each stage fully materialized.
fn batch_fs_window(table: &Table, env: &ExecEnv) -> SegmentedRows {
    let key = asc(&[1, 2]);
    let input = SegmentedRows::single_segment(table.rows().to_vec());
    table.charge_scan(env.tracker());
    let sorted = full_sort(input, &key, env.op_env()).unwrap();
    evaluate_window(
        sorted,
        &aset(&[1]),
        &asc(&[2]),
        &WindowFunction::Rank,
        None,
        env.op_env(),
    )
    .unwrap()
}

/// Streaming: the same chain as pull-based operators.
fn streamed_fs_window(table: &Table, env: &ExecEnv) -> SegmentedRows {
    let scan = TableScan::new(table, env.op_env().clone());
    let fs = FullSortOp::new(scan, asc(&[1, 2]), env.op_env().clone());
    let mut win = WindowOp::new(
        fs,
        aset(&[1]),
        asc(&[2]),
        WindowFunction::Rank,
        None,
        env.op_env().clone(),
    );
    drain(&mut win).unwrap()
}

#[test]
fn fs_window_chain_identical_rows_and_work() {
    let table = random_table(3_000, &[20, 40], 11);
    for mem in [2u64, 64] {
        let env_batch = ExecEnv::with_memory_blocks(mem);
        let batch = batch_fs_window(&table, &env_batch);
        let env_stream = ExecEnv::with_memory_blocks(mem);
        let streamed = streamed_fs_window(&table, &env_stream);
        assert_eq!(
            batch, streamed,
            "M={mem}: rows and boundaries must be identical"
        );
        assert_eq!(
            env_batch.tracker().snapshot(),
            env_stream.tracker().snapshot(),
            "M={mem}: cost counters must be identical"
        );
    }
}

#[test]
fn hs_window_chain_identical_rows_and_work() {
    let table = random_table(4_000, &[30, 50], 12);
    let whk = aset(&[1]);
    let key = asc(&[1, 2]);
    let opts = HsOptions::with_buckets(16);
    for mem in [2u64, 64] {
        // Batch.
        let env_b = ExecEnv::with_memory_blocks(mem);
        table.charge_scan(env_b.tracker());
        let sorted = hashed_sort(
            SegmentedRows::single_segment(table.rows().to_vec()),
            &whk,
            &key,
            &opts,
            env_b.op_env(),
        )
        .unwrap();
        let batch = evaluate_window(
            sorted,
            &whk,
            &asc(&[2]),
            &WindowFunction::Rank,
            None,
            env_b.op_env(),
        )
        .unwrap();

        // Streaming: each bucket flows through the window operator as it is
        // sorted.
        let env_s = ExecEnv::with_memory_blocks(mem);
        let scan = TableScan::new(&table, env_s.op_env().clone());
        let hs = HashedSortOp::new(
            scan,
            whk.clone(),
            key.clone(),
            opts.clone(),
            env_s.op_env().clone(),
        );
        let mut win = WindowOp::new(
            hs,
            whk.clone(),
            asc(&[2]),
            WindowFunction::Rank,
            None,
            env_s.op_env().clone(),
        );
        let streamed = drain(&mut win).unwrap();

        assert_eq!(batch, streamed, "M={mem}");
        assert_eq!(
            env_b.tracker().snapshot(),
            env_s.tracker().snapshot(),
            "M={mem}"
        );
    }
}

#[test]
fn ss_chain_identical_rows_and_work() {
    let table = random_table(2_000, &[12, 33], 13);
    // Build a segmented input (HS output) first, then SS it both ways.
    let env_setup = ExecEnv::with_memory_blocks(32);
    let segmented = hashed_sort(
        SegmentedRows::single_segment(table.rows().to_vec()),
        &aset(&[1]),
        &asc(&[1, 2]),
        &HsOptions::with_buckets(8),
        env_setup.op_env(),
    )
    .unwrap();

    let env_b = ExecEnv::with_memory_blocks(8);
    let batch = segmented_sort(segmented.clone(), &asc(&[1]), &asc(&[2]), env_b.op_env()).unwrap();

    let env_s = ExecEnv::with_memory_blocks(8);
    let mut ss = SegmentedSortOp::new(
        SegmentSource::new(segmented.clone()),
        asc(&[1]),
        asc(&[2]),
        env_s.op_env().clone(),
    );
    let streamed = drain(&mut ss).unwrap();

    assert_eq!(batch, streamed);
    assert_eq!(env_b.tracker().snapshot(), env_s.tracker().snapshot());
    // SS preserves the input's segmentation exactly.
    assert_eq!(streamed.seg_starts(), segmented.seg_starts());
}

/// Per-bucket emission really streams: the HS operator hands out exactly
/// the segments the batch call materializes, one pull at a time, in order.
#[test]
fn hashed_sort_op_streams_buckets_in_batch_order() {
    let table = random_table(1_500, &[9, 21], 14);
    let whk = aset(&[1]);
    let key = asc(&[1, 2]);
    let opts = HsOptions::with_buckets(8);

    let env_b = ExecEnv::with_memory_blocks(16);
    let batch = hashed_sort(
        SegmentedRows::single_segment(table.rows().to_vec()),
        &whk,
        &key,
        &opts,
        env_b.op_env(),
    )
    .unwrap();

    let env_s = ExecEnv::with_memory_blocks(16);
    let mut op = HashedSortOp::new(
        SegmentSource::new(SegmentedRows::single_segment(table.rows().to_vec())),
        whk,
        key,
        opts,
        env_s.op_env().clone(),
    );
    for i in 0..batch.segment_count() {
        let seg = op.next_segment().unwrap().expect("bucket per pull");
        let rows = seg.into_rows().unwrap();
        assert_eq!(rows.as_slice(), batch.segment(i), "bucket {i}");
    }
    assert!(op.next_segment().unwrap().is_none());
}

/// The pipelined runtime's per-step breakdown is exact: step work sums to
/// the total minus the initial scan, and equals the batch executor's
/// attribution.
#[test]
fn execute_plan_step_breakdown_sums_to_total() {
    let table = random_table(3_000, &[15, 25, 35], 15);
    let specs = vec![
        WindowSpec::rank("r1", vec![a(1)], asc(&[2])),
        WindowSpec::rank("r2", vec![a(2)], asc(&[3])),
    ];
    let query = WindowQuery::new(table.schema().clone(), specs);
    let stats = TableStats::from_table(&table);
    for mem in [2u64, 16] {
        let env = ExecEnv::with_memory_blocks(mem);
        let plan = optimize(&query, &stats, Scheme::Cso, &env).unwrap();
        let report = execute_plan(&plan, &table, &env).unwrap();
        assert_eq!(report.steps.len(), plan.steps.len());

        let mut steps_sum = wfopt::storage::CostSnapshot::default();
        for (_, w) in &report.steps {
            steps_sum = steps_sum.plus(w);
        }
        // total = scan + steps; the scan is the only unattributed work.
        let scan = wfopt::storage::CostSnapshot {
            blocks_read: table.block_count(),
            rows_moved: table.row_count() as u64,
            ..Default::default()
        };
        assert_eq!(steps_sum.plus(&scan), report.work, "M={mem}");
    }
}

/// End to end: `execute_plan` (pipelined) equals a hand-rolled batch
/// composition of the same finalized plan — identical output rows and
/// identical total work.
#[test]
fn execute_plan_matches_batch_composition_of_same_plan() {
    let table = random_table(2_500, &[18, 28], 16);
    let specs = vec![
        WindowSpec::rank("r1", vec![a(1)], asc(&[2])),
        WindowSpec::rank("r2", vec![], asc(&[1])),
    ];
    let stats = TableStats::from_table(&table);
    let ctx = PlanContext::new(&stats, 8);
    let raw = vec![
        PlanStep {
            wf: 0,
            reorder: ReorderOp::None,
        },
        PlanStep {
            wf: 1,
            reorder: ReorderOp::None,
        },
    ];
    // finalize_chain repairs in the cheapest reorders; both executors run
    // the identical repaired plan.
    let plan = finalize_chain("test", &specs, &SegProps::unordered(), 1, raw, &ctx);

    // Pipelined runtime.
    let env_p = ExecEnv::with_memory_blocks(8);
    let report = execute_plan(&plan, &table, &env_p).unwrap();

    // Batch composition, mirroring the runtime's boundary-layer recording
    // (FS/HS record WPK / WPK ∪ WOK prefix layers during their merges).
    let env_b = ExecEnv::with_memory_blocks(8);
    table.charge_scan(env_b.tracker());
    let mut current = SegmentedRows::single_segment(table.rows().to_vec());
    for step in &plan.steps {
        let spec = &plan.specs[step.wf];
        let mut record = Vec::new();
        if !spec.wpk().is_empty() {
            record.push(spec.wpk().clone());
        }
        let union = spec.wpk().union(&spec.wok().attr_set());
        if !union.is_empty() && Some(&union) != record.first() {
            record.push(union);
        }
        current = match &step.reorder {
            ReorderOp::None => current,
            ReorderOp::Fs { key } => {
                let mut op = FullSortOp::new(
                    SegmentSource::new(current),
                    key.clone(),
                    env_b.op_env().clone(),
                )
                .with_recorded_prefixes(record);
                drain(&mut op).unwrap()
            }
            ReorderOp::Hs {
                whk,
                key,
                n_buckets,
                mfv,
            } => {
                let mut op = HashedSortOp::new(
                    SegmentSource::new(current),
                    whk.clone(),
                    key.clone(),
                    HsOptions {
                        n_buckets: *n_buckets,
                        mfv_values: mfv.clone(),
                        stable_emission: false,
                    },
                    env_b.op_env().clone(),
                )
                .with_recorded_prefixes(record);
                drain(&mut op).unwrap()
            }
            ReorderOp::Ss { alpha, beta } => {
                segmented_sort(current, alpha, beta, env_b.op_env()).unwrap()
            }
            // This test plans with a serial context (PlanContext::workers
            // = 1), so no Par node can appear; parallel-vs-serial identity
            // has its own suite (tests/parallel_equivalence.rs).
            ReorderOp::Par { .. } => unreachable!("serial planning context never emits Par"),
        };
        current = evaluate_window(
            current,
            spec.wpk(),
            spec.wok(),
            &spec.func,
            spec.frame,
            env_b.op_env(),
        )
        .unwrap();
    }

    assert_eq!(report.table.rows(), current.rows());
    assert_eq!(report.work, env_b.tracker().snapshot());
}
