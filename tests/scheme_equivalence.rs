//! The load-bearing correctness property: **every optimization scheme, at
//! every memory budget, produces exactly the same window columns** — and
//! those columns agree with an independent reference evaluator.
//!
//! This is what makes the optimizer trustworthy: CSO/BFO may pick wildly
//! different chains (HS vs FS vs SS, different evaluation orders), but the
//! derived values must be identical to PSQL's naive plan and to a
//! from-scratch hash-and-sort reference.

mod common;

use common::{column_by_key, random_table, reference_rank};
use wfopt::core::spec::WindowSpec;
use wfopt::prelude::*;

fn check_query(table: &Table, specs: Vec<WindowSpec>, mem_blocks: u64) {
    let key_col = AttrId::new(0); // unique id
    let query = WindowQuery::new(table.schema().clone(), specs.clone());
    let stats = TableStats::from_table(table);

    for scheme in [
        Scheme::Cso,
        Scheme::CsoNoHs,
        Scheme::CsoNoSs,
        Scheme::Bfo,
        Scheme::Orcl,
        Scheme::Psql,
    ] {
        let env = ExecEnv::with_memory_blocks(mem_blocks);
        let plan = optimize(&query, &stats, scheme, &env)
            .unwrap_or_else(|e| panic!("{scheme} failed to plan: {e}"));
        let report = execute_plan(&plan, table, &env)
            .unwrap_or_else(|e| panic!("{scheme} failed to execute: {e}"));
        let out = &report.table;
        assert_eq!(out.row_count(), table.row_count(), "{scheme}: row count");

        for (i, spec) in specs.iter().enumerate() {
            let val_col = AttrId::new(table.schema().len() + i);
            let got = column_by_key(out, key_col, val_col);
            let expected = reference_rank(table, spec, key_col);
            for (id, rank) in &expected {
                assert_eq!(
                    got.get(id).and_then(|v| v.as_int()),
                    Some(*rank),
                    "{scheme} M={mem_blocks}: {} disagrees with reference for id {id} \
                     (plan: {})",
                    spec.name,
                    plan.chain_string(),
                );
            }
        }
    }
}

fn rank_spec(name: &str, wpk: &[usize], wok: &[usize]) -> WindowSpec {
    WindowSpec::rank(
        name,
        wpk.iter().map(|&i| AttrId::new(i)).collect(),
        SortSpec::new(wok.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect()),
    )
}

#[test]
fn two_functions_shared_partition_key() {
    let table = random_table(2_000, &[20, 50, 50], 1);
    check_query(
        &table,
        vec![rank_spec("a", &[1], &[2]), rank_spec("b", &[1], &[3])],
        64,
    );
}

#[test]
fn paper_q7_shape_all_schemes_agree() {
    let table = random_table(3_000, &[8, 9, 10, 25, 40], 2);
    let specs = vec![
        rank_spec("wf1", &[1, 2, 3], &[]),
        rank_spec("wf2", &[2, 1], &[]),
        rank_spec("wf3", &[4], &[]),
        rank_spec("wf4", &[], &[4, 5]),
        rank_spec("wf5", &[1, 2, 4, 5], &[3]),
    ];
    check_query(&table, specs, 32);
}

#[test]
fn tiny_memory_heavy_spilling() {
    // Two blocks of sort memory force every operator down its external
    // path; results must be unchanged.
    let table = random_table(4_000, &[15, 30], 3);
    check_query(
        &table,
        vec![rank_spec("a", &[1], &[2]), rank_spec("b", &[2], &[1])],
        2,
    );
}

#[test]
fn global_and_partitioned_ranks() {
    let table = random_table(1_500, &[12, 70], 4);
    check_query(
        &table,
        vec![
            rank_spec("global", &[], &[2]),
            rank_spec("local", &[1], &[2]),
        ],
        16,
    );
}

#[test]
fn descending_and_null_ordering() {
    // Column with NULLs: ids divisible by 7 get NULL in c1.
    let mut table = random_table(800, &[10, 40], 5);
    let schema = table.schema().clone();
    let rows: Vec<Row> = table
        .rows()
        .iter()
        .map(|r| {
            let mut vals = r.values().to_vec();
            if vals[0].as_int().unwrap() % 7 == 0 {
                vals[2] = Value::Null;
            }
            Row::new(vals)
        })
        .collect();
    table = Table::from_rows(schema, rows).unwrap();

    let desc_wok = SortSpec::new(vec![OrdElem::desc(AttrId::new(2))]);
    let specs = vec![
        WindowSpec::rank("desc_rank", vec![AttrId::new(1)], desc_wok),
        rank_spec("asc_rank", &[1], &[2]),
    ];
    check_query(&table, specs, 8);
}

#[test]
fn eight_functions_q9_shape() {
    // date=1, item=2, time=3, bill=4 over random data.
    let table = random_table(2_500, &[18, 25, 24, 35], 6);
    let specs = vec![
        rank_spec("wf1", &[2], &[4, 1]),
        rank_spec("wf2", &[2, 3], &[1]),
        rank_spec("wf3", &[2], &[3]),
        rank_spec("wf4", &[], &[2, 1]),
        rank_spec("wf5", &[4, 1], &[3]),
        rank_spec("wf6", &[4], &[3]),
        rank_spec("wf7", &[1, 3], &[]),
        rank_spec("wf8", &[], &[3]),
    ];
    check_query(&table, specs, 24);
}

#[test]
fn single_row_and_empty_tables() {
    for rows in [0usize, 1] {
        let table = random_table(rows, &[3, 3], 7);
        let query = WindowQuery::new(table.schema().clone(), vec![rank_spec("r", &[1], &[2])]);
        let stats = TableStats::from_table(&table);
        for scheme in [Scheme::Cso, Scheme::Psql] {
            let env = ExecEnv::with_memory_blocks(4);
            let plan = optimize(&query, &stats, scheme, &env).unwrap();
            let report = execute_plan(&plan, &table, &env).unwrap();
            assert_eq!(report.table.row_count(), rows);
        }
    }
}

#[test]
fn pre_sorted_input_uses_c0_and_matches_reference() {
    // Input sorted on (c0, c1): a spec over exactly that key is matched
    // (C0) and the whole chain must still be correct.
    let table = random_table(1_200, &[9, 33], 8);
    let schema = table.schema().clone();
    let mut rows = table.rows().to_vec();
    let key = SortSpec::new(vec![
        OrdElem::asc(AttrId::new(1)),
        OrdElem::asc(AttrId::new(2)),
    ]);
    let cmp = RowComparator::new(&key);
    rows.sort_by(|a, b| cmp.compare(a, b));
    let sorted_table = Table::from_rows(schema, rows).unwrap();

    let specs = vec![
        rank_spec("matched", &[1], &[2]),
        rank_spec("other", &[2], &[1]),
    ];
    let mut query = WindowQuery::new(sorted_table.schema().clone(), specs.clone());
    query.input_props = wfopt::core::SegProps::sorted(key);
    let stats = TableStats::from_table(&sorted_table);
    let env = ExecEnv::with_memory_blocks(16);
    let plan = optimize(&query, &stats, Scheme::Cso, &env).unwrap();
    // First evaluated function must be the matched one, reorder-free.
    assert_eq!(plan.steps[0].wf, 0);
    assert_eq!(plan.steps[0].reorder, wfopt::core::ReorderOp::None);

    let report = execute_plan(&plan, &sorted_table, &env).unwrap();
    for (i, spec) in specs.iter().enumerate() {
        let got = column_by_key(&report.table, AttrId::new(0), AttrId::new(3 + i));
        let expected = reference_rank(&sorted_table, spec, AttrId::new(0));
        for (id, rank) in &expected {
            assert_eq!(got.get(id).and_then(|v| v.as_int()), Some(*rank));
        }
    }
}
