//! Equivalence suite for the two PR-2 fast paths:
//!
//! * **Normalized byte keys** — FS/HS/SS sorts with `norm_keys` on must
//!   produce row-for-row identical output *and* identical modeled cost
//!   counters (comparisons, I/O, hashes, rows moved) as the
//!   `RowComparator` reference path; only the informational `key_encodes`
//!   counter may differ.
//! * **Boundary reuse** — chains with `reuse_bounds` on must produce
//!   identical rows while charging *strictly fewer* comparisons whenever a
//!   downstream step's partition key is covered by an upstream boundary
//!   layer (shared `WPK` between window steps, SS unit boundaries).

mod common;

use common::random_table;
use wfopt::core::plan::{finalize_chain, PlanContext, PlanStep, ReorderOp};
use wfopt::core::spec::WindowSpec;
use wfopt::core::SegProps;
use wfopt::datagen::rng::SplitMix64;
use wfopt::exec::{full_sort, hashed_sort, segmented_sort, HsOptions, SegmentedRows};
use wfopt::prelude::*;

fn a(i: usize) -> AttrId {
    AttrId::new(i)
}

fn asc(ids: &[usize]) -> SortSpec {
    SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
}

fn aset(ids: &[usize]) -> AttrSet {
    AttrSet::from_iter(ids.iter().map(|&i| a(i)))
}

/// Table with int, string and float/NULL-bearing key columns so the byte
/// encoder's every lane is exercised by the sorts.
fn mixed_table(rows: usize, seed: u64) -> Table {
    let schema = Schema::of(&[
        ("id", DataType::Int),
        ("g", DataType::Int),
        ("s", DataType::Str),
        ("v", DataType::Float),
    ]);
    let mut t = Table::new(schema);
    let mut rng = SplitMix64::seed_from_u64(seed);
    for id in 0..rows {
        let g = rng.random_below(23) as i64;
        let s = format!("cat-{}", rng.random_below(7));
        let v = match rng.random_below(10) {
            0 => Value::Null,
            1 => Value::Float(-0.0),
            2 => Value::Float(f64::NAN),
            _ => Value::Float(rng.random_below(1_000) as f64 / 8.0 - 40.0),
        };
        t.push(Row::new(vec![
            Value::Int(id as i64),
            Value::Int(g),
            Value::str(s),
            v,
        ]));
    }
    t
}

/// Run `f` under both key paths (reuse off in both) and assert identical
/// relations and identical modeled counters.
fn assert_key_path_equivalence(
    table: &Table,
    f: impl Fn(&Table, &OpEnv) -> SegmentedRows,
    mem: u64,
) {
    let base = OpEnv::with_memory_blocks(mem);
    let env_norm = base.with_toggles(true, false);
    let norm_out = f(table, &env_norm);
    let norm_work = env_norm.tracker.snapshot();

    let base2 = OpEnv::with_memory_blocks(mem);
    let env_cmp = base2.with_toggles(false, false);
    let cmp_out = f(table, &env_cmp);
    let cmp_work = env_cmp.tracker.snapshot();

    assert_eq!(norm_out, cmp_out, "rows and boundaries must be identical");
    assert_eq!(
        norm_work.modeled_counters(),
        cmp_work.modeled_counters(),
        "modeled cost counters must be identical"
    );
    assert!(norm_work.key_encodes > 0, "byte path must actually encode");
    assert_eq!(cmp_work.key_encodes, 0, "reference path must not encode");
}

use wfopt::exec::OpEnv;

#[test]
fn fs_byte_keys_equal_comparator_path() {
    let table = mixed_table(3_000, 21);
    // Key spans int, string (desc) and float-with-NULLs columns.
    let key = SortSpec::new(vec![
        OrdElem::asc(a(1)),
        OrdElem::desc(a(2)),
        OrdElem::asc(a(3)),
    ]);
    for mem in [2u64, 64] {
        assert_key_path_equivalence(
            &table,
            |t, env| {
                full_sort(SegmentedRows::single_segment(t.rows().to_vec()), &key, env).unwrap()
            },
            mem,
        );
    }
}

#[test]
fn hs_byte_keys_equal_comparator_path() {
    let table = mixed_table(4_000, 22);
    let whk = aset(&[1]);
    let key = SortSpec::new(vec![OrdElem::asc(a(1)), OrdElem::desc(a(3))]);
    for mem in [2u64, 64] {
        assert_key_path_equivalence(
            &table,
            |t, env| {
                hashed_sort(
                    SegmentedRows::single_segment(t.rows().to_vec()),
                    &whk,
                    &key,
                    &HsOptions::with_buckets(16),
                    env,
                )
                .unwrap()
            },
            mem,
        );
    }
}

#[test]
fn ss_byte_keys_equal_comparator_path() {
    let table = mixed_table(2_500, 23);
    for mem in [2u64, 32] {
        assert_key_path_equivalence(
            &table,
            |t, env| {
                // Segment the input first (same work on both sides), then SS.
                let segmented = hashed_sort(
                    SegmentedRows::single_segment(t.rows().to_vec()),
                    &aset(&[1]),
                    &asc(&[1]),
                    &HsOptions::with_buckets(8),
                    env,
                )
                .unwrap();
                segmented_sort(segmented, &asc(&[1]), &asc(&[2, 3]), env).unwrap()
            },
            mem,
        );
    }
}

/// Two window functions over the *same* partition key: the second step's
/// partition and peer detection must reuse the first step's boundary
/// layers — identical output, strictly fewer comparisons.
#[test]
fn shared_wpk_chain_reuses_boundaries() {
    let table = random_table(4_000, &[25, 60], 31);
    let query = QueryBuilder::new(table.schema())
        .rank("r1", &["c0"], &[("c1", false)])
        .rank("r2", &["c0"], &[("c1", false)])
        .build()
        .unwrap();
    let stats = TableStats::from_table(&table);
    for scheme in [Scheme::Cso, Scheme::Psql] {
        for mem in [4u64, 64] {
            let env_on = ExecEnv::with_memory_blocks(mem).with_toggles(true, true);
            let plan = optimize(&query, &stats, scheme, &env_on).unwrap();
            let on = execute_plan(&plan, &table, &env_on).unwrap();

            let env_off = ExecEnv::with_memory_blocks(mem).with_toggles(true, false);
            let plan_off = optimize(&query, &stats, scheme, &env_off).unwrap();
            let off = execute_plan(&plan_off, &table, &env_off).unwrap();

            assert_eq!(on.table.rows(), off.table.rows(), "{scheme} M={mem}");
            assert!(
                on.work.comparisons < off.work.comparisons,
                "{scheme} M={mem}: reuse must cut comparisons ({} vs {})",
                on.work.comparisons,
                off.work.comparisons
            );
            // I/O and data movement are untouched by reuse.
            assert_eq!(on.work.io_blocks(), off.work.io_blocks());
            assert_eq!(on.work.rows_moved, off.work.rows_moved);
        }
    }
}

/// SS unit detection feeds the window operator's partition detection: an
/// HS → wf → SS → wf chain re-derives no boundary the chain already knows.
#[test]
fn ss_chain_reuses_unit_boundaries() {
    let table = random_table(3_000, &[18, 40, 40], 32);
    let specs = vec![
        WindowSpec::rank("r1", vec![a(1)], asc(&[2])),
        WindowSpec::rank("r2", vec![a(1)], asc(&[3])),
    ];
    let stats = TableStats::from_table(&table);
    let ctx = PlanContext::new(&stats, 16);
    let raw = vec![
        PlanStep {
            wf: 0,
            reorder: ReorderOp::Hs {
                whk: aset(&[1]),
                key: asc(&[1, 2]),
                n_buckets: 16,
                mfv: vec![],
            },
        },
        PlanStep {
            wf: 1,
            reorder: ReorderOp::Ss {
                alpha: asc(&[1]),
                beta: asc(&[3]),
            },
        },
    ];
    let plan = finalize_chain("test", &specs, &SegProps::unordered(), 1, raw, &ctx);
    assert_eq!(plan.repairs, 0, "hand-built chain must be valid");

    let env_on = ExecEnv::with_memory_blocks(16).with_toggles(true, true);
    let on = execute_plan(&plan, &table, &env_on).unwrap();
    let env_off = ExecEnv::with_memory_blocks(16).with_toggles(true, false);
    let off = execute_plan(&plan, &table, &env_off).unwrap();

    assert_eq!(on.table.rows(), off.table.rows());
    assert!(
        on.work.comparisons < off.work.comparisons,
        "SS + window boundary reuse must cut comparisons ({} vs {})",
        on.work.comparisons,
        off.work.comparisons
    );
}

/// Every toggle combination produces identical query results across
/// schemes — the fast paths are pure optimizations.
#[test]
fn all_toggle_combinations_agree_end_to_end() {
    let table = mixed_table(1_500, 33);
    let query = QueryBuilder::new(table.schema())
        .rank("r", &["g"], &[("v", true)])
        .window(
            "sum_id",
            wfopt::core::spec::WindowFunction::Sum(a(0)),
            &["g"],
            &[("s", false)],
        )
        .build()
        .unwrap();
    let stats = TableStats::from_table(&table);
    for scheme in [Scheme::Cso, Scheme::Bfo, Scheme::Psql, Scheme::Orcl] {
        let mut reference: Option<Vec<Row>> = None;
        for (norm, reuse) in [(false, false), (true, false), (false, true), (true, true)] {
            let env = ExecEnv::with_memory_blocks(8).with_toggles(norm, reuse);
            let plan = optimize(&query, &stats, scheme, &env).unwrap();
            let report = execute_plan(&plan, &table, &env).unwrap();
            match &reference {
                None => reference = Some(report.table.rows().to_vec()),
                Some(want) => assert_eq!(
                    report.table.rows(),
                    want.as_slice(),
                    "{scheme} norm={norm} reuse={reuse}"
                ),
            }
        }
    }
}
