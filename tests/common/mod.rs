//! Shared helpers for integration tests: an *independent* window-function
//! reference evaluator (hash partitions + per-group stable sort, no engine
//! code), random tables, and result comparison keyed by a unique id column.

// Not every integration-test binary uses every helper.
#![allow(dead_code)]

use std::collections::HashMap;
use wfopt::prelude::*;

/// Compute `rank()` for `spec` over `table` without any engine machinery:
/// group rows by WPK values, sort each group by WOK, assign ranks with
/// ties. Returns `unique_key -> rank`.
pub fn reference_rank(
    table: &Table,
    spec: &wfopt::core::spec::WindowSpec,
    key_col: AttrId,
) -> HashMap<i64, i64> {
    let mut groups: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
    for row in table.rows() {
        let k: Vec<Value> = spec.wpk().iter().map(|a| row.get(a).clone()).collect();
        groups.entry(k).or_default().push(row);
    }
    let cmp = RowComparator::new(spec.wok());
    let mut out = HashMap::new();
    for (_, mut rows) in groups {
        rows.sort_by(|a, b| cmp.compare(a, b));
        let mut rank = 0i64;
        for (i, row) in rows.iter().enumerate() {
            if i == 0 || !cmp.equal(rows[i - 1], row) {
                rank = i as i64 + 1;
            }
            out.insert(row.get(key_col).as_int().expect("int key"), rank);
        }
    }
    out
}

/// Extract `unique_key -> value` for an output column.
pub fn column_by_key(table: &Table, key_col: AttrId, val_col: AttrId) -> HashMap<i64, Value> {
    table
        .rows()
        .iter()
        .map(|r| {
            (
                r.get(key_col).as_int().expect("int key"),
                r.get(val_col).clone(),
            )
        })
        .collect()
}

/// A small random table: `id` (unique), plus `cols` integer columns with
/// the given distinct counts; deterministic in `seed`.
pub fn random_table(rows: usize, distincts: &[u64], seed: u64) -> Table {
    let mut fields = vec![("id", DataType::Int)];
    let names: Vec<String> = (0..distincts.len()).map(|i| format!("c{i}")).collect();
    for name in &names {
        fields.push((name.as_str(), DataType::Int));
    }
    let schema = Schema::of(&fields);
    let mut table = Table::new(schema);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for id in 0..rows {
        let mut vals = vec![Value::Int(id as i64)];
        for &d in distincts {
            vals.push(Value::Int((next() % d.max(1)) as i64));
        }
        table.push(Row::new(vals));
    }
    table
}
