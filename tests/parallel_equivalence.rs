//! Parallel-vs-serial bit-identity for planned `ReorderOp::Par` chains.
//!
//! The scheduler's determinism contract (`wf_exec::scheduler`):
//!
//! * a `Par { Fs }` chain produces **the same rows** as the serial `Fs`
//!   chain, for any worker (shard) count — the ordered merge restores the
//!   stable serial sort order;
//! * for a fixed plan, modeled counters, pool counters and peak residency
//!   are **invariant under the thread count** (`1`, `2`, `4` threads) and
//!   under the bounded/unbounded pool toggle (modeled counters);
//! * boundary layers recorded by the parallel sort equal the serial sort's
//!   and hand off to downstream window steps identically;
//! * a parallel chain's tracked residency stays governed:
//!   `O(M + Σ_w M_w + largest unit)`, far below the relation.
//!
//! Chains mix the Par step with downstream SS and HS steps so the parallel
//! node is exercised inside real multi-reorder plans, not in isolation.

use wfopt::core::cost::TableStats;
use wfopt::core::plan::{finalize_chain, PlanContext, PlanStep, ReorderOp};
use wfopt::core::planner::{optimize, Scheme};
use wfopt::core::props::SegProps;
use wfopt::core::query::WindowQuery;
use wfopt::core::runtime::{execute_plan, ExecEnv};
use wfopt::core::spec::WindowSpec;
use wfopt::exec::{drain, FullSortOp, Operator, ParallelSortOp, TableScan, WindowOp};
use wfopt::prelude::*;

fn a(i: usize) -> AttrId {
    AttrId::new(i)
}
fn key(ids: &[usize]) -> SortSpec {
    SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
}
fn aset(ids: &[usize]) -> AttrSet {
    AttrSet::from_iter(ids.iter().map(|&i| a(i)))
}

/// (p: partition key ~24 values, k: order key with ties, v: value,
/// w: second partition key ~16 values) in scrambled order.
fn build_table(rows_n: usize) -> Table {
    let schema = Schema::of(&[
        ("p", DataType::Int),
        ("k", DataType::Int),
        ("v", DataType::Int),
        ("w", DataType::Int),
    ]);
    let mut t = Table::new(schema);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rows = Vec::new();
    for i in 0..rows_n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = state >> 16;
        rows.push((
            state,
            Row::new(vec![
                Value::Int((r % 24) as i64),
                Value::Int(((r >> 8) % 50) as i64),
                Value::Int(((r >> 16) % 1000) as i64 - 500),
                Value::Int(((r >> 24) % 16) as i64),
            ]),
        ));
        let _ = i;
    }
    rows.sort_by_key(|(s, _)| *s);
    for (_, r) in rows {
        t.push(r);
    }
    t
}

/// Three window calls exercising the Par step plus downstream SS and HS:
/// rank over ({p},(k)), percent_rank over ({p},(v)) (the newly streamed
/// distribution class), rank over ({w},(k)).
fn specs() -> Vec<WindowSpec> {
    vec![
        WindowSpec::rank("r_pk", vec![a(0)], key(&[1])),
        WindowSpec::new(
            "pr_pv",
            wfopt::core::spec::WindowFunction::PercentRank,
            vec![a(0)],
            key(&[2]),
        ),
        WindowSpec::rank("r_wk", vec![a(3)], key(&[1])),
    ]
}

/// A chain `reorder0 → wf0  SS→ wf1  HS→ wf2` where `reorder0` is either
/// the serial FS or the parallel FS at `workers` shards.
fn chain_plan(stats: &TableStats, m: u64, workers: Option<usize>) -> wfopt::core::plan::Plan {
    let ctx = PlanContext::new(stats, m);
    let fs = ReorderOp::Fs { key: key(&[0, 1]) };
    let first = match workers {
        None => fs,
        Some(w) => ReorderOp::Par {
            inner: Box::new(fs),
            workers: w,
        },
    };
    let raw = vec![
        PlanStep {
            wf: 0,
            reorder: first,
        },
        PlanStep {
            wf: 1,
            reorder: ReorderOp::Ss {
                alpha: key(&[0]),
                beta: key(&[2]),
            },
        },
        PlanStep {
            wf: 2,
            reorder: ReorderOp::Hs {
                whk: aset(&[3]),
                key: key(&[3, 1]),
                n_buckets: 16,
                mfv: vec![],
            },
        },
    ];
    let plan = finalize_chain("test", &specs(), &SegProps::unordered(), 1, raw, &ctx);
    assert_eq!(plan.repairs, 0, "chain must be accepted as declared");
    plan
}

/// Rows + modeled counters + pool statistics of one execution.
#[allow(clippy::type_complexity)]
fn run(
    table: &Table,
    plan: &wfopt::core::plan::Plan,
    env: &ExecEnv,
) -> (Vec<Row>, wfopt::storage::CostSnapshot, (u64, u64, u64)) {
    let report = execute_plan(plan, table, env).unwrap();
    let snap = env.store_snapshot();
    (
        report.table.rows().to_vec(),
        report.work,
        (
            snap.spill_blocks_written,
            snap.spill_blocks_read,
            snap.peak_resident_blocks(),
        ),
    )
}

/// The acceptance matrix: worker counts {1, 2, 4} × thread counts
/// {1, 2, 4} × pool sizes {M = 2, large}: rows always equal the serial
/// chain's; per (plan, pool), counters and pool statistics are invariant
/// under the thread count; bounded vs unbounded pools agree on modeled
/// counters.
#[test]
fn par_chain_bit_identity_across_workers_threads_and_pools() {
    let table = build_table(6_000);
    let stats = TableStats::from_table(&table);
    for m in [2u64, 256] {
        let serial_env = ExecEnv::with_memory_blocks(m).with_par_workers(1);
        let serial_plan = chain_plan(&stats, m, None);
        let (serial_rows, serial_work, _) = run(&table, &serial_plan, &serial_env);

        for workers in [1usize, 2, 4] {
            let plan = chain_plan(&stats, m, Some(workers));
            let mut reference: Option<(wfopt::storage::CostSnapshot, (u64, u64, u64))> = None;
            for threads in [1usize, 2, 4] {
                let env = ExecEnv::with_memory_blocks(m).with_worker_threads(threads);
                let (rows, work, pool) = run(&table, &plan, &env);
                assert_eq!(
                    rows, serial_rows,
                    "M={m} workers={workers} threads={threads}: rows vs serial chain"
                );
                match &reference {
                    None => reference = Some((work, pool)),
                    Some((r_work, r_pool)) => {
                        assert_eq!(
                            &work, r_work,
                            "M={m} workers={workers} threads={threads}: modeled counters"
                        );
                        assert_eq!(
                            &pool, r_pool,
                            "M={m} workers={workers} threads={threads}: pool counters"
                        );
                    }
                }
            }
            // Bounded vs unbounded pool: identical rows and modeled
            // counters — pool traffic stays physical for parallel chains.
            let env_u = ExecEnv::with_memory_blocks(m).with_unbounded_pool();
            let (rows_u, work_u, pool_u) = run(&table, &plan, &env_u);
            assert_eq!(
                rows_u, serial_rows,
                "M={m} workers={workers}: unbounded rows"
            );
            assert_eq!(
                work_u,
                reference.as_ref().unwrap().0,
                "M={m} workers={workers}: unbounded modeled counters"
            );
            assert_eq!(pool_u.0, 0, "unbounded pool never spills");
        }
        // The serial chain and the 1-worker Par chain differ only by the
        // scatter + merge accounting, never in rows — and the serial
        // chain's counters are untouched by this PR's machinery.
        assert!(serial_work.comparisons > 0);
    }
}

/// Boundary layers: the parallel sort records the same layers as the
/// serial sort and the downstream window step consumes and re-emits
/// identical bounds — compared at the operator level where segments are
/// visible.
#[test]
fn par_chain_layers_match_serial() {
    let table = build_table(4_000);
    let wpk = aset(&[0]);
    let wok = key(&[1]);
    let union = aset(&[0, 1]);
    let record = vec![wpk.clone(), union.clone()];

    let collect = |parallel: bool| {
        let env = ExecEnv::with_memory_blocks(4);
        let op_env = env.op_env().clone();
        let scan = TableScan::new(&table, op_env.clone());
        let sort: Box<dyn Operator> = if parallel {
            Box::new(
                ParallelSortOp::new(scan, key(&[0, 1]), wpk.clone(), 4, op_env.clone())
                    .with_recorded_prefixes(record.clone()),
            )
        } else {
            Box::new(
                FullSortOp::new(scan, key(&[0, 1]), op_env.clone())
                    .with_recorded_prefixes(record.clone()),
            )
        };
        let mut win = WindowOp::new(
            sort,
            wpk.clone(),
            wok.clone(),
            wfopt::exec::window::WindowFunction::Rank,
            None,
            op_env,
        );
        let out = drain(&mut win).unwrap();
        let bounds: Vec<_> = (0..out.segment_count())
            .map(|i| out.segment_bounds(i))
            .collect();
        (out.into_rows(), bounds)
    };

    let (serial_rows, serial_bounds) = collect(false);
    let (par_rows, par_bounds) = collect(true);
    assert_eq!(par_rows, serial_rows);
    assert_eq!(par_bounds, serial_bounds, "layers after the window step");
    // The recorded layers actually exist (reuse is live, not vacuous).
    assert!(serial_bounds
        .iter()
        .any(|b| b.layers().iter().any(|l| l.attrs == wpk)));
}

/// Governed residency: a 4-worker chain at a tiny pool stays within a
/// small constant of `M + Σ_w M_w + largest unit` — never relation-sized —
/// and the high-water mark includes the workers' folded-back peaks.
#[test]
fn par_chain_residency_is_governed() {
    let table = build_table(12_000);
    let stats = TableStats::from_table(&table);
    let m = 2u64;
    let workers = 4usize;
    let plan = chain_plan(&stats, m, Some(workers));
    let env = ExecEnv::with_memory_blocks(m);
    let report = execute_plan(&plan, &table, &env).unwrap();
    assert_eq!(report.table.row_count(), table.row_count());
    let snap = env.store_snapshot();
    assert!(snap.spill_blocks_written > 0, "tiny pool must spill");

    let block = wfopt::storage::BLOCK_SIZE;
    // Whole-chain spans run the window (and fused SS) inside the workers,
    // so the governed form is `M + Σ_w (M_w + unit_w) + unit`: each worker
    // concurrently holds its per-worker budget plus its largest in-span
    // unit (a `p` partition, ~1/24 of the relation), and the serial HS step
    // downstream holds its largest bucket (~1/16 via `w`).
    let worker_unit = table.byte_size() / 20;
    let unit_bytes = table.byte_size() / 14;
    let budget_bytes = (m as usize) * block; // M, and Σ_w M_w ≤ M by construction
    let bound = 2 * (2 * budget_bytes + workers * (block + worker_unit) + unit_bytes);
    assert!(
        snap.peak_resident_bytes <= bound,
        "peak {} exceeds governed bound {bound}",
        snap.peak_resident_bytes
    );
    assert!(
        snap.peak_resident_bytes < table.byte_size() / 2,
        "peak {} is relation-sized ({})",
        snap.peak_resident_bytes,
        table.byte_size()
    );
}

/// One window workload per `StreamableEval` class, for the in-worker
/// evaluation matrix: a running sum over the SQL-default frame
/// (one-pass), a rank (ring), and a suffix sum over `ROWS CURRENT ROW ..
/// UNBOUNDED FOLLOWING` (buffered).
fn class_specs() -> Vec<(&'static str, WindowSpec, wfopt::exec::StreamableEval)> {
    use wfopt::core::spec::WindowFunction;
    use wfopt::exec::{Bound, FrameSpec, FrameUnits, StreamableEval};
    vec![
        (
            "one_pass",
            WindowSpec::new("s_run", WindowFunction::Sum(a(2)), vec![a(0)], key(&[1])),
            StreamableEval::OnePass,
        ),
        (
            "ring",
            WindowSpec::rank("r", vec![a(0)], key(&[1])),
            StreamableEval::Ring,
        ),
        (
            "buffered",
            WindowSpec::new("s_tail", WindowFunction::Sum(a(2)), vec![a(0)], key(&[1])).with_frame(
                FrameSpec {
                    units: FrameUnits::Rows,
                    start: Bound::CurrentRow,
                    end: Bound::UnboundedFollowing,
                },
            ),
            StreamableEval::Buffered,
        ),
    ]
}

/// In-worker window evaluation across every `StreamableEval` class: a
/// `Par{Fs}` span produces bit-identical rows to the serial FS chain for
/// each class, across workers {1, 2, 4} × threads {1, 3} × bounded and
/// unbounded pools, with modeled counters invariant per fixed plan.
#[test]
fn par_chain_in_worker_eval_classes_match_serial() {
    let table = build_table(4_000);
    let stats = TableStats::from_table(&table);
    let m = 2u64;
    let ctx = PlanContext::new(&stats, m);
    for (class_name, spec, expected_class) in class_specs() {
        assert_eq!(spec.eval_class(), expected_class, "{class_name}");
        let specs = vec![spec];
        let step = |reorder| vec![PlanStep { wf: 0, reorder }];
        let serial_plan = finalize_chain(
            "serial",
            &specs,
            &SegProps::unordered(),
            1,
            step(ReorderOp::Fs { key: key(&[0, 1]) }),
            &ctx,
        );
        assert_eq!(serial_plan.repairs, 0);
        let (serial_rows, ..) = run(&table, &serial_plan, &ExecEnv::with_memory_blocks(m));

        for workers in [1usize, 2, 4] {
            let plan = finalize_chain(
                "par",
                &specs,
                &SegProps::unordered(),
                1,
                step(ReorderOp::Par {
                    inner: Box::new(ReorderOp::Fs { key: key(&[0, 1]) }),
                    workers,
                }),
                &ctx,
            );
            assert_eq!(plan.repairs, 0);
            let mut reference: Option<wfopt::storage::CostSnapshot> = None;
            for (threads, bounded) in [(1usize, true), (3, true), (1, false)] {
                let env = if bounded {
                    ExecEnv::with_memory_blocks(m).with_worker_threads(threads)
                } else {
                    ExecEnv::with_memory_blocks(m).with_unbounded_pool()
                };
                let (rows, work, _) = run(&table, &plan, &env);
                assert_eq!(
                    rows, serial_rows,
                    "{class_name} workers={workers} threads={threads} bounded={bounded}"
                );
                match &reference {
                    None => reference = Some(work),
                    Some(r) => assert_eq!(
                        &work, r,
                        "{class_name} workers={workers} threads={threads} bounded={bounded}: counters"
                    ),
                }
            }
        }
    }
}

/// A `Par{Hs}` span with a fused SS stage: rows are invariant across
/// workers, threads and pool boundedness (the ascending-bucket interleave
/// is schedule-free), the output multiset equals the serial HS chain's,
/// and modeled counters are invariant per fixed plan.
#[test]
fn par_hs_chain_matrix() {
    let table = build_table(5_000);
    let stats = TableStats::from_table(&table);
    let m = 2u64;
    let ctx = PlanContext::new(&stats, m);
    let specs = vec![
        WindowSpec::rank("r_pk", vec![a(0)], key(&[1])),
        WindowSpec::new(
            "pr_pv",
            wfopt::core::spec::WindowFunction::PercentRank,
            vec![a(0)],
            key(&[2]),
        ),
    ];
    let raw = |head| {
        vec![
            PlanStep {
                wf: 0,
                reorder: head,
            },
            PlanStep {
                wf: 1,
                reorder: ReorderOp::Ss {
                    alpha: key(&[0]),
                    beta: key(&[2]),
                },
            },
        ]
    };
    let hs = ReorderOp::Hs {
        whk: aset(&[0]),
        key: key(&[0, 1]),
        n_buckets: 16,
        mfv: vec![],
    };
    let serial_plan = finalize_chain(
        "serial",
        &specs,
        &SegProps::unordered(),
        1,
        raw(hs.clone()),
        &ctx,
    );
    assert_eq!(serial_plan.repairs, 0);
    let (serial_rows, ..) = run(&table, &serial_plan, &ExecEnv::with_memory_blocks(m));
    let sorted = |rows: &[Row]| {
        let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
        v.sort();
        v
    };

    let mut par_rows: Option<Vec<Row>> = None;
    for workers in [1usize, 2, 4] {
        let plan = finalize_chain(
            "par",
            &specs,
            &SegProps::unordered(),
            1,
            raw(ReorderOp::Par {
                inner: Box::new(hs.clone()),
                workers,
            }),
            &ctx,
        );
        assert_eq!(plan.repairs, 0);
        let mut reference: Option<wfopt::storage::CostSnapshot> = None;
        for (threads, bounded) in [(1usize, true), (3, true), (1, false)] {
            let env = if bounded {
                ExecEnv::with_memory_blocks(m).with_worker_threads(threads)
            } else {
                ExecEnv::with_memory_blocks(m).with_unbounded_pool()
            };
            let (rows, work, _) = run(&table, &plan, &env);
            match &par_rows {
                None => {
                    assert_eq!(sorted(&rows), sorted(&serial_rows), "multiset vs serial HS");
                    par_rows = Some(rows);
                }
                Some(r) => assert_eq!(
                    &rows, r,
                    "workers={workers} threads={threads} bounded={bounded}: rows"
                ),
            }
            match &reference {
                None => reference = Some(work),
                Some(r) => assert_eq!(
                    &work, r,
                    "workers={workers} threads={threads} bounded={bounded}: counters"
                ),
            }
        }
    }
}

/// Parallel GROUP BY (hash and sort variants) matches the serial
/// operators row-for-row, in order, across workers {1, 2, 4} × pools
/// {M = 2, large, unbounded}.
#[test]
fn groupby_par_end_to_end_matrix() {
    use wfopt::exec::{
        group_by_hash, group_by_hash_par, group_by_sort, group_by_sort_par, GroupAgg, OpEnv,
    };
    let table = build_table(5_000);
    let keys = [a(0)];
    let aggs = [GroupAgg::CountStar, GroupAgg::Sum(a(2))];
    for m in [2u64, 256] {
        let env = OpEnv::with_memory_blocks(m);
        let serial_hash = group_by_hash(&table, &keys, &aggs, &env).unwrap();
        let serial_sort = group_by_sort(&table, &keys, &aggs, &env).unwrap();
        assert!(serial_hash.row_count() > 1);
        for workers in [1usize, 2, 4] {
            for unbounded in [false, true] {
                let env_p = if unbounded {
                    OpEnv::with_memory_blocks(m).with_unbounded_pool()
                } else {
                    OpEnv::with_memory_blocks(m)
                };
                let h = group_by_hash_par(&table, &keys, &aggs, workers, &env_p).unwrap();
                let s = group_by_sort_par(&table, &keys, &aggs, workers, &env_p).unwrap();
                assert_eq!(
                    h.rows(),
                    serial_hash.rows(),
                    "hash M={m} workers={workers} unbounded={unbounded}"
                );
                assert_eq!(
                    s.rows(),
                    serial_sort.rows(),
                    "sort M={m} workers={workers} unbounded={unbounded}"
                );
            }
        }
    }
}

/// End-to-end through the planner: with a worker budget the optimizer
/// emits the Par node, the report labels the step, and the output equals
/// the serial plan's output.
#[test]
fn planned_par_chain_end_to_end() {
    let table = build_table(6_000);
    let stats = TableStats::from_table(&table);
    let query = WindowQuery::new(table.schema().clone(), specs());

    let env_par = ExecEnv::with_memory_blocks(4).with_par_workers(4);
    let plan = optimize(&query, &stats, Scheme::Cso, &env_par).unwrap();
    assert!(
        plan.steps
            .iter()
            .any(|s| matches!(s.reorder, ReorderOp::Par { .. })),
        "cost model must favor Par at tiny M: {}",
        plan.chain_string()
    );
    assert!(plan.chain_string().contains("PAR→"));
    let report = execute_plan(&plan, &table, &env_par).unwrap();
    assert!(report.steps.iter().any(|(label, _)| label.contains("PAR→")));

    let env_serial = ExecEnv::with_memory_blocks(4).with_par_workers(1);
    let serial_plan = optimize(&query, &stats, Scheme::Cso, &env_serial).unwrap();
    assert!(serial_plan
        .steps
        .iter()
        .all(|s| !matches!(s.reorder, ReorderOp::Par { .. })));
    let serial = execute_plan(&serial_plan, &table, &env_serial).unwrap();
    // Same SELECT-ordered output multiset; chains may order rows
    // differently (different reorder shapes), so compare sorted.
    let sort_all = |t: &Table| {
        let mut v: Vec<Vec<u8>> = t
            .rows()
            .iter()
            .map(|r| format!("{r:?}").into_bytes())
            .collect();
        v.sort();
        v
    };
    assert_eq!(sort_all(&report.table), sort_all(&serial.table));
}
