//! The spill-backend invariant, end to end: for one plan at one memory
//! budget, every backend (in-memory, local file, simulated object store) ×
//! compression {off, on} × read-ahead {0, 2} must produce **bit-identical
//! rows, modeled counters, and pool counters**. Backends live entirely
//! below the charging layer, so only wall time — and the informational
//! backend traffic stats — may differ.
//!
//! Plus: property round-trips of the block compressor over
//! SplitMix64-generated row payloads, and the delete-on-drop guarantee for
//! aborted queries.

mod common;

use common::random_table;
use wfopt::core::spec::WindowSpec;
use wfopt::prelude::*;
use wfopt::storage::bytebuf::ByteBuf;
use wfopt::storage::codec::{
    compress_block, decode_keyed_row, decode_row, decompress_block, encode_keyed_row, encode_row,
};
use wfopt::storage::{LocalFileBackend, StoreSnapshot};

fn spec(name: &str, wpk: &[usize], wok: &[usize]) -> WindowSpec {
    WindowSpec::rank(
        name,
        wpk.iter().map(|&i| AttrId::new(i)).collect(),
        SortSpec::new(wok.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect()),
    )
}

/// Everything a backend is *not* allowed to change about an execution.
#[derive(Debug, PartialEq)]
struct Observables {
    rows: Vec<Row>,
    modeled: (u64, u64, u64, u64, u64),
    pool: (u64, u64, u64, u64, u64),
}

fn pool_counters(s: &StoreSnapshot) -> (u64, u64, u64, u64, u64) {
    (
        s.spilled_segments,
        s.spill_blocks_written,
        s.spill_blocks_read,
        s.peak_resident_blocks(),
        s.peak_resident_rows as u64,
    )
}

fn run(table: &Table, mem_blocks: u64, spill: SpillConfig) -> Observables {
    let query = WindowQuery::new(
        table.schema().clone(),
        vec![spec("r1", &[1], &[2]), spec("r2", &[], &[2, 1])],
    );
    let stats = TableStats::from_table(table);
    let env = ExecEnv::with_memory_blocks(mem_blocks).with_spill(spill);
    let plan = optimize(&query, &stats, Scheme::Cso, &env).unwrap();
    let report = execute_plan(&plan, table, &env).unwrap();
    Observables {
        rows: report.table.rows().to_vec(),
        modeled: report.work.modeled_counters(),
        pool: pool_counters(&env.store_snapshot()),
    }
}

#[test]
fn backends_compression_and_prefetch_are_counter_invisible() {
    let table = random_table(6_000, &[40, 900], 7);
    for m in [1u64, 2, 256] {
        // Reference: the default configuration (in-memory, raw, cold reads).
        let reference = run(&table, m, SpillConfig::mem());
        assert!(
            !reference.rows.is_empty(),
            "M={m}: reference produced no rows"
        );
        for kind in [
            SpillBackendKind::Mem,
            SpillBackendKind::File,
            SpillBackendKind::ObjectStore(ObjectStoreConfig::default()),
        ] {
            for compress in [false, true] {
                for prefetch in [0usize, 2] {
                    let cfg = SpillConfig::of_kind(kind)
                        .with_compress(compress)
                        .with_prefetch(prefetch);
                    let got = run(&table, m, cfg);
                    assert_eq!(
                        got, reference,
                        "M={m} kind={kind:?} compress={compress} prefetch={prefetch}: \
                         rows/modeled/pool counters must be bit-identical"
                    );
                }
            }
        }
    }
}

#[test]
fn spilling_config_reports_backend_traffic() {
    let table = random_table(6_000, &[40, 900], 7);
    let cfg = SpillConfig::of_kind(SpillBackendKind::File)
        .with_compress(true)
        .with_prefetch(2);
    run(&table, 1, cfg.clone());
    let s = cfg.stats();
    assert_eq!(s.backend, "file");
    assert!(s.put_requests > 0, "M=1 must spill");
    assert!(s.get_requests > 0);
    assert!(s.delete_requests > 0, "every spill file must be deleted");
    assert!(
        s.prefetch_hits + s.prefetch_misses > 0,
        "prefetch depth 2 must route multi-block reads through the pipeline"
    );
    // Compression is on and the payload is repetitive integer rows: the
    // at-rest bytes must undercut the logical block volume.
    assert!(s.bytes_written < s.put_requests * wfopt::storage::BLOCK_SIZE as u64);
}

#[test]
fn mem_backend_declines_compression() {
    let cfg = SpillConfig::mem().with_compress(true);
    assert!(!cfg.effective_compress());
    let table = random_table(3_000, &[25, 500], 11);
    run(&table, 1, cfg.clone());
    let s = cfg.stats();
    // Declined negotiation = raw blocks: every full block is exactly
    // BLOCK_SIZE physical bytes, so volume ≥ (puts - files) full blocks.
    assert!(s.put_requests > 0);
    assert!(s.bytes_written > (s.put_requests.saturating_sub(s.delete_requests)) * 4096);
}

#[test]
fn aborted_queries_leave_no_spill_files_behind() {
    let dir = std::env::temp_dir().join(format!("wfopt-abort-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = SpillConfig {
        backend: LocalFileBackend::in_dir(dir.clone()),
        compress: false,
        prefetch_blocks: 2,
    };
    // A canceled session: admission fails before execution, but the spill
    // machinery of a previously-started run must still have cleaned up.
    let db = DatabaseConfig::new()
        .memory_blocks(8)
        .max_concurrent(1)
        .per_query_blocks(1)
        .open();
    let table = random_table(4_000, &[30], 3);
    db.register("t", table).unwrap();
    // Run one spilling query through a store on the private dir directly.
    let t2 = random_table(4_000, &[30, 700], 3);
    run(&t2, 1, cfg.clone());
    assert!(cfg.stats().put_requests > 0, "the run must have spilled");
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        0,
        "all spill files must be deleted once readers drop"
    );
    // Cancellation before execution must not leak either.
    let token = CancelToken::new();
    token.cancel();
    let session = db.session().with_cancel(token);
    assert!(session
        .query("SELECT *, rank() OVER (PARTITION BY c0 ORDER BY id) AS r FROM t")
        .is_err());
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Codec property tests (SplitMix64-driven)
// ---------------------------------------------------------------------------

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn random_row(rng: &mut SplitMix64) -> Row {
    let arity = (rng.next() % 6) as usize;
    let values = (0..arity)
        .map(|_| match rng.next() % 4 {
            0 => Value::Null,
            1 => Value::Int(rng.next() as i64),
            2 => Value::Float(f64::from_bits(rng.next() % (1 << 62))),
            _ => {
                let len = (rng.next() % 40) as usize;
                Value::str(
                    (0..len)
                        .map(|_| char::from(b'a' + (rng.next() % 26) as u8))
                        .collect::<String>(),
                )
            }
        })
        .collect();
    Row::new(values)
}

#[test]
fn compressed_row_blocks_round_trip() {
    let mut rng = SplitMix64(0xC0FFEE);
    for trial in 0..50 {
        let rows: Vec<Row> = (0..(rng.next() % 200))
            .map(|_| random_row(&mut rng))
            .collect();
        let mut buf = ByteBuf::new();
        for r in &rows {
            encode_row(r, &mut buf);
        }
        let frame = compress_block(buf.as_slice());
        let raw = decompress_block(&frame).unwrap();
        assert_eq!(raw, buf.as_slice(), "trial {trial}: payload mismatch");
        let mut cursor: &[u8] = &raw;
        for r in &rows {
            assert_eq!(&decode_row(&mut cursor).unwrap(), r, "trial {trial}");
        }
        assert!(cursor.is_empty());
    }
}

#[test]
fn compressed_keyed_blocks_round_trip() {
    let mut rng = SplitMix64(0xBEEF);
    for trial in 0..30 {
        let entries: Vec<(Option<Vec<u8>>, Row)> = (0..(rng.next() % 120))
            .map(|_| {
                let key = if rng.next().is_multiple_of(5) {
                    None
                } else {
                    let len = (rng.next() % 24) as usize;
                    Some((0..len).map(|_| rng.next() as u8).collect())
                };
                (key, random_row(&mut rng))
            })
            .collect();
        let mut buf = ByteBuf::new();
        for (k, r) in &entries {
            encode_keyed_row(k.as_deref(), r, &mut buf);
        }
        let raw = decompress_block(&compress_block(buf.as_slice())).unwrap();
        let mut cursor: &[u8] = &raw;
        for (k, r) in &entries {
            let (bk, br) = decode_keyed_row(&mut cursor).unwrap();
            assert_eq!((&bk, &br), (k, r), "trial {trial}");
        }
        assert!(cursor.is_empty());
    }
}

#[test]
fn database_spill_knobs_flow_into_stats() {
    let db = DatabaseConfig::new()
        .memory_blocks(8)
        .max_concurrent(1)
        .per_query_blocks(1)
        .spill_backend(SpillBackendKind::ObjectStore(ObjectStoreConfig::default()))
        .compress_spill(true)
        .prefetch_blocks(2)
        .open();
    let table = random_table(4_000, &[30], 5);
    db.register("t", table).unwrap();
    let out = db
        .session()
        .query("SELECT *, rank() OVER (PARTITION BY c0 ORDER BY id) AS r FROM t")
        .unwrap();
    assert_eq!(out.row_count(), 4_000);
    let s = db.spill_stats();
    assert_eq!(s.backend, "objectstore");
    assert!(s.put_requests > 0, "M=1 must spill");
    assert_eq!(s.put_requests, s.get_requests);
    assert!(s.prefetch_hits + s.prefetch_misses > 0);
    assert!(db.spill_config().effective_compress());
}
