//! Columnar-vs-row bit-identity: the columnar block path (`RowBatch`
//! lanes through TableScan, the vectorized FilterOp, the sorters, scatter
//! hashing) is a wall-clock optimization and must be invisible to every
//! deterministic observable. For identical plans, toggling
//! `ExecEnv::with_columnar` must leave
//!
//! * the output rows,
//! * the modeled counters (comparisons, I/O, key encodes, …),
//! * the pool statistics (spill traffic, peak tracked residency), and
//! * the recorded boundary layers
//!
//! bit-identical — across FS/HS/SS/Par reorders, bounded and unbounded
//! pools, and memory budgets from `M = 1` to fully resident. The
//! bounded-vs-unbounded modeled-counter invariant of PRs 3–5 must also
//! keep holding on the columnar path itself.

mod common;

use wfopt::core::cost::TableStats;
use wfopt::core::plan::{finalize_chain, PlanContext, PlanStep, ReorderOp};
use wfopt::core::props::SegProps;
use wfopt::core::runtime::{execute_plan, ExecEnv};
use wfopt::core::spec::WindowSpec;
use wfopt::exec::{drain, FullSortOp, Operator, ParallelSortOp, TableScan, WindowOp};
use wfopt::prelude::*;

fn a(i: usize) -> AttrId {
    AttrId::new(i)
}
fn key(ids: &[usize]) -> SortSpec {
    SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
}
fn aset(ids: &[usize]) -> AttrSet {
    AttrSet::from_iter(ids.iter().map(|&i| a(i)))
}

/// (p: int partition key, k: int order key with ties, v: int value with
/// NULLs, f: float with NULLs and a -0.0 sprinkle, s: low-cardinality
/// strings with NULLs and an empty string) — every columnar lane type,
/// with validity bitmaps in play, in scrambled order.
fn build_table(rows_n: usize) -> Table {
    let schema = Schema::of(&[
        ("p", DataType::Int),
        ("k", DataType::Int),
        ("v", DataType::Int),
        ("f", DataType::Float),
        ("s", DataType::Str),
    ]);
    let mut t = Table::new(schema);
    let mut state = 0x243f6a8885a308d3u64;
    let mut rows = Vec::new();
    for _ in 0..rows_n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = state >> 16;
        let v = if r % 13 == 5 {
            Value::Null
        } else {
            Value::Int((r % 1000) as i64 - 500)
        };
        let f = match r % 11 {
            0 => Value::Null,
            1 => Value::Float(-0.0),
            _ => Value::Float(((r >> 8) % 1000) as f64 / 8.0 - 60.0),
        };
        let s = match r % 9 {
            0 => Value::Null,
            1 => Value::str(""),
            n => Value::str(format!("s{}", n % 7).as_str()),
        };
        rows.push((
            state,
            Row::new(vec![
                Value::Int((r % 24) as i64),
                Value::Int(((r >> 8) % 50) as i64),
                v,
                f,
                s,
            ]),
        ));
    }
    rows.sort_by_key(|(s, _)| *s);
    for (_, r) in rows {
        t.push(r);
    }
    t
}

/// Three window calls spanning the reorder family: rank over the int
/// keys (FS or Par∘FS), rank over the float order key (SS), rank
/// partitioned by the *string* column (HS — scatter hashing over the Str
/// lane).
fn specs() -> Vec<WindowSpec> {
    vec![
        WindowSpec::rank("r_pk", vec![a(0)], key(&[1])),
        WindowSpec::rank("r_pf", vec![a(0)], key(&[3])),
        WindowSpec::rank("r_sk", vec![a(4)], key(&[1])),
    ]
}

/// `reorder0 → r_pk  SS→ r_pf  HS→ r_sk` with `reorder0` either the
/// serial FS or `Par{FS}`; a WHERE predicate rides the plan so the
/// vectorized FilterOp sits between the scan and the first reorder.
fn chain_plan(stats: &TableStats, m: u64, workers: Option<usize>) -> wfopt::core::plan::Plan {
    let ctx = PlanContext::new(stats, m);
    let fs = ReorderOp::Fs { key: key(&[0, 1]) };
    let first = match workers {
        None => fs,
        Some(w) => ReorderOp::Par {
            inner: Box::new(fs),
            workers: w,
        },
    };
    let raw = vec![
        PlanStep {
            wf: 0,
            reorder: first,
        },
        PlanStep {
            wf: 1,
            reorder: ReorderOp::Ss {
                alpha: key(&[0]),
                beta: key(&[3]),
            },
        },
        PlanStep {
            wf: 2,
            reorder: ReorderOp::Hs {
                whk: aset(&[4]),
                key: key(&[4, 1]),
                n_buckets: 16,
                mfv: vec![],
            },
        },
    ];
    let mut plan = finalize_chain("columnar", &specs(), &SegProps::unordered(), 1, raw, &ctx);
    assert_eq!(plan.repairs, 0, "chain must be accepted as declared");
    plan.filter = Some(wfopt::exec::Predicate::Gt(a(2), Value::Int(-350)));
    plan
}

/// Rows + modeled counters + pool statistics of one execution.
#[allow(clippy::type_complexity)]
fn run(
    table: &Table,
    plan: &wfopt::core::plan::Plan,
    env: &ExecEnv,
) -> (Vec<Row>, wfopt::storage::CostSnapshot, (u64, u64, u64)) {
    let report = execute_plan(plan, table, env).unwrap();
    let snap = env.store_snapshot();
    (
        report.table.rows().to_vec(),
        report.work,
        (
            snap.spill_blocks_written,
            snap.spill_blocks_read,
            snap.peak_resident_blocks(),
        ),
    )
}

/// The acceptance matrix: {serial FS, Par(4)} × M ∈ {1, 2, 256} ×
/// {bounded, unbounded} pools. For each cell, columnar off (the
/// row-at-a-time reference) and columnar on (the default) must agree on
/// rows, modeled counters, and pool statistics — and the bounded vs
/// unbounded modeled counters must agree with each other on the columnar
/// path.
#[test]
fn columnar_toggle_is_invisible_to_rows_and_counters() {
    let table = build_table(6_000);
    let stats = TableStats::from_table(&table);
    for workers in [None, Some(4usize)] {
        for m in [1u64, 2, 256] {
            let plan = chain_plan(&stats, m, workers);
            let mut per_pool = Vec::new();
            for unbounded in [false, true] {
                let mk = |columnar: bool| {
                    let env = ExecEnv::with_memory_blocks(m).with_columnar(columnar);
                    if unbounded {
                        env.with_unbounded_pool()
                    } else {
                        env
                    }
                };
                let env_row = mk(false);
                let env_col = mk(true);
                let (rows_r, work_r, pool_r) = run(&table, &plan, &env_row);
                let (rows_c, work_c, pool_c) = run(&table, &plan, &env_col);
                assert_eq!(
                    rows_c, rows_r,
                    "workers={workers:?} M={m} unbounded={unbounded}: rows"
                );
                assert_eq!(
                    work_c, work_r,
                    "workers={workers:?} M={m} unbounded={unbounded}: modeled counters"
                );
                assert_eq!(
                    pool_c, pool_r,
                    "workers={workers:?} M={m} unbounded={unbounded}: pool counters"
                );
                if unbounded {
                    assert_eq!(pool_c.0, 0, "unbounded pool never spills");
                } else if m <= 2 {
                    assert!(pool_c.0 > 0, "tiny bounded pool must spill (M={m})");
                }
                per_pool.push(work_c);
            }
            // Bounded vs unbounded on the columnar path: the PR 3–5
            // modeled-counter invariant keeps holding over blocks.
            assert_eq!(
                per_pool[0], per_pool[1],
                "workers={workers:?} M={m}: bounded vs unbounded modeled counters"
            );
        }
    }
}

/// Boundary layers recorded through the columnar sorters equal the row
/// path's, at the operator level where segments are visible — for both
/// the serial FS and the parallel sort — and are non-vacuous.
#[test]
fn columnar_boundary_layers_match_row_path() {
    let table = build_table(4_000);
    let wpk = aset(&[0]);
    let wok = key(&[1]);
    let record = vec![wpk.clone(), aset(&[0, 1])];

    let collect = |parallel: bool, columnar: bool| {
        let env = ExecEnv::with_memory_blocks(4).with_columnar(columnar);
        let op_env = env.op_env().clone();
        let scan = TableScan::new(&table, op_env.clone());
        let sort: Box<dyn Operator> = if parallel {
            Box::new(
                ParallelSortOp::new(scan, key(&[0, 1]), wpk.clone(), 4, op_env.clone())
                    .with_recorded_prefixes(record.clone()),
            )
        } else {
            Box::new(
                FullSortOp::new(scan, key(&[0, 1]), op_env.clone())
                    .with_recorded_prefixes(record.clone()),
            )
        };
        let mut win = WindowOp::new(
            sort,
            wpk.clone(),
            wok.clone(),
            wfopt::exec::window::WindowFunction::Rank,
            None,
            op_env,
        );
        let out = drain(&mut win).unwrap();
        let bounds: Vec<_> = (0..out.segment_count())
            .map(|i| out.segment_bounds(i))
            .collect();
        (out.into_rows(), bounds)
    };

    for parallel in [false, true] {
        let (rows_r, bounds_r) = collect(parallel, false);
        let (rows_c, bounds_c) = collect(parallel, true);
        assert_eq!(rows_c, rows_r, "parallel={parallel}: rows");
        assert_eq!(bounds_c, bounds_r, "parallel={parallel}: boundary layers");
        assert!(
            bounds_r
                .iter()
                .any(|b| b.layers().iter().any(|l| l.attrs == wpk)),
            "recorded layers must be live, not vacuous"
        );
    }
}
