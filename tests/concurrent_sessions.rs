//! Concurrency contract of the served session API.
//!
//! The core guarantee: because every admitted query runs against its own
//! pooled ledger sub-account whose spill decisions depend only on the
//! per-query budget, a query's rows *and* modeled counters are bit-identical
//! whether it runs alone or next to 63 neighbours — while the shared pool's
//! high-water mark stays governed.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use wfopt::datagen::WsConfig;
use wfopt::prelude::*;

const SQL: &str = "SELECT *, \
    rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r, \
    sum(ws_quantity) OVER (PARTITION BY ws_bill_customer_sk ORDER BY ws_sold_date_sk) AS s \
    FROM web_sales";

fn sales(rows: usize) -> Table {
    WsConfig {
        rows,
        d_item: (rows as u64 / 20).max(8),
        d_bill: (rows as u64 / 10).max(8),
        ..WsConfig::default()
    }
    .generate()
}

/// `worker_threads(1)` pins planning and execution so plans (and therefore
/// counters) cannot vary with the CI worker matrix.
fn served_db(table: &Table, max_concurrent: usize, pool_blocks: u64, per_query: u64) -> Database {
    let db = DatabaseConfig::new()
        .memory_blocks(pool_blocks)
        .max_concurrent(max_concurrent)
        .per_query_blocks(per_query)
        .queue_depth(128)
        .worker_threads(1)
        .open();
    db.register("web_sales", table.clone()).unwrap();
    db
}

fn fingerprint(outcome: &QueryOutcome) -> (Vec<String>, String, u64) {
    (
        outcome.table.rows().iter().map(|r| r.to_string()).collect(),
        format!("{:?}", outcome.report.work),
        outcome.report.modeled_ms.to_bits(),
    )
}

fn assert_identical_under_load(threads: usize, rows: usize) {
    let table = sales(rows);

    // Reference: the same statement, same per-query budget, run solo.
    let solo_db = served_db(&table, 1, 64, 8);
    let reference = fingerprint(&solo_db.session().execute(SQL).unwrap());

    let db = served_db(&table, 4, 64, 8);
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let session = db.session();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                fingerprint(&session.execute(SQL).unwrap())
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let got = h.join().expect("worker panicked");
        assert_eq!(
            got, reference,
            "query {i} of {threads} diverged from the solo run"
        );
    }

    let stats = db.admission_stats();
    assert_eq!(stats.admitted, threads as u64);
    assert_eq!(stats.completed, threads as u64);
    assert_eq!(stats.rejected, 0);
    assert!(stats.peak_in_flight <= 4, "peak {}", stats.peak_in_flight);
}

#[test]
fn eight_concurrent_queries_are_bit_identical_to_serial() {
    assert_identical_under_load(8, 6_000);
}

#[test]
fn sixty_four_concurrent_queries_are_bit_identical_to_serial() {
    assert_identical_under_load(64, 3_000);
}

#[test]
fn pool_residency_stays_governed_under_concurrency() {
    let table = sales(12_000);

    // Solo high-water mark of one spilling query (budget 2 blocks against a
    // much larger table), measured through the same forwarding path.
    let solo_db = served_db(&table, 1, 64, 2);
    let solo = solo_db.session().execute(SQL).unwrap();
    assert!(
        solo.report.store.spilled_segments > 0,
        "expected the 2-block budget to force spilling"
    );
    let solo_peak = solo_db.pool_snapshot().peak_resident_blocks();
    assert!(solo_peak > 0);

    let db = served_db(&table, 8, 64, 2);
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let session = db.session();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                session.execute(SQL).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }

    let peak = db.pool_snapshot().peak_resident_blocks();
    let pool_budget = 64;
    assert!(
        peak <= 8 * solo_peak && peak <= pool_budget,
        "pool peak {peak} blocks exceeds 8x solo peak ({solo_peak}) or budget ({pool_budget})"
    );
    assert!(db.admission_stats().peak_in_flight <= 8);
}

#[test]
fn waiters_queue_and_drain_in_fifo_order() {
    let table = sales(2_000);
    let db = served_db(&table, 1, 64, 8);

    // Hold the only slot so the next arrival must queue.
    let permit = db.governor().admit(None, None).unwrap();
    let session = db.session();
    let waiter = thread::spawn(move || session.execute(SQL).map(|o| o.table.row_count()));

    // The waiter is parked in the FIFO, not running.
    let mut spins = 0;
    while db.admission_stats().queued < 1 {
        assert!(spins < 400, "waiter never queued");
        spins += 1;
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(db.governor().in_flight(), 1);

    drop(permit);
    let rows = waiter.join().unwrap().unwrap();
    assert_eq!(rows, 2_000);
    let stats = db.admission_stats();
    assert_eq!(stats.queued, 1);
    assert!(stats.max_queue_wait > Duration::ZERO);
}

#[test]
fn queue_timeout_is_a_clean_error_and_the_pool_survives() {
    let table = sales(2_000);
    let db = served_db(&table, 1, 64, 8);

    let permit = db.governor().admit(None, None).unwrap();
    let err = db
        .session()
        .with_timeout(Duration::from_millis(40))
        .execute(SQL)
        .unwrap_err();
    assert!(matches!(err, Error::Admission(_)), "got {err}");
    assert_eq!(db.admission_stats().timed_out, 1);

    // The shared store is not poisoned: release the slot and run normally.
    drop(permit);
    let outcome = db.session().execute(SQL).unwrap();
    assert_eq!(outcome.table.row_count(), 2_000);
    // Two completions: the manually held permit plus the real query.
    assert_eq!(db.admission_stats().completed, 2);
}

#[test]
fn cancellation_aborts_a_queued_query_cleanly() {
    let table = sales(2_000);
    let db = served_db(&table, 1, 64, 8);

    let permit = db.governor().admit(None, None).unwrap();
    let token = CancelToken::new();
    let session = db.session().with_cancel(token.clone());
    let waiter = thread::spawn(move || session.execute(SQL));

    let mut spins = 0;
    while db.admission_stats().queued < 1 {
        assert!(spins < 400, "waiter never queued");
        spins += 1;
        thread::sleep(Duration::from_millis(5));
    }
    token.cancel();
    let err = waiter.join().unwrap().unwrap_err();
    assert!(matches!(err, Error::Canceled(_)), "got {err}");
    assert_eq!(db.admission_stats().canceled, 1);

    drop(permit);
    let outcome = db.session().execute(SQL).unwrap();
    assert_eq!(outcome.table.row_count(), 2_000);
}
