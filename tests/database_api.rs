//! The embedded `Database` façade through the session API: SQL in, tables
//! out, with projections, named windows, final ORDER BY, scheme selection
//! and the full [`QueryOutcome`] surface.

use wfopt::prelude::*;

fn sales_table() -> Table {
    let schema = Schema::of(&[
        ("store", DataType::Str),
        ("day", DataType::Int),
        ("revenue", DataType::Int),
    ]);
    let mut t = Table::new(schema);
    let data = [
        ("a", 1, 100),
        ("a", 2, 150),
        ("a", 3, 120),
        ("b", 1, 80),
        ("b", 2, 95),
        ("b", 3, 60),
    ];
    for (s, d, r) in data {
        t.push(Row::new(vec![s.into(), d.into(), r.into()]));
    }
    t
}

fn sales_db_with(cfg: DatabaseConfig) -> Database {
    let db = cfg.open();
    db.register("sales", sales_table()).unwrap();
    db
}

fn sales_db() -> Database {
    sales_db_with(DatabaseConfig::new())
}

#[test]
fn basic_query_appends_columns() {
    let db = sales_db();
    let out = db
        .query("SELECT *, rank() OVER (PARTITION BY store ORDER BY revenue DESC) AS r FROM sales")
        .unwrap();
    assert_eq!(out.schema().len(), 4);
    assert_eq!(out.row_count(), 6);
    let r = out.schema().resolve("r").unwrap();
    let store = out.schema().resolve("store").unwrap();
    let rev = out.schema().resolve("revenue").unwrap();
    for row in out.rows() {
        let is_best = row.get(r).as_int() == Some(1);
        if is_best && row.get(store).as_str() == Some("a") {
            assert_eq!(row.get(rev).as_int(), Some(150));
        }
        if is_best && row.get(store).as_str() == Some("b") {
            assert_eq!(row.get(rev).as_int(), Some(95));
        }
    }
}

#[test]
fn projection_and_order_by() {
    let db = sales_db();
    let out = db
        .query(
            "SELECT store, rank() OVER (PARTITION BY store ORDER BY revenue DESC) AS r \
             FROM sales ORDER BY store, r",
        )
        .unwrap();
    assert_eq!(out.schema().len(), 2, "projection keeps only store and r");
    let names: Vec<&str> = out
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    assert_eq!(names, vec!["store", "r"]);
    // Sorted by (store, r).
    let vals: Vec<(String, i64)> = out
        .rows()
        .iter()
        .map(|row| {
            (
                row.get(AttrId::new(0)).as_str().unwrap().to_string(),
                row.get(AttrId::new(1)).as_int().unwrap(),
            )
        })
        .collect();
    let mut sorted = vals.clone();
    sorted.sort();
    assert_eq!(vals, sorted);
}

#[test]
fn named_windows_through_database() {
    let db = sales_db();
    let out = db
        .query(
            "SELECT *, rank() OVER w AS r, sum(revenue) OVER w AS running \
             FROM sales WINDOW w AS (PARTITION BY store ORDER BY day)",
        )
        .unwrap();
    let running = out.schema().resolve("running").unwrap();
    let store = out.schema().resolve("store").unwrap();
    let day = out.schema().resolve("day").unwrap();
    for row in out.rows() {
        if row.get(store).as_str() == Some("a") && row.get(day).as_int() == Some(3) {
            assert_eq!(row.get(running).as_int(), Some(370));
        }
    }
}

#[test]
fn explain_shows_chain() {
    let db = sales_db();
    let text = db
        .explain(
            "SELECT *, rank() OVER (PARTITION BY store ORDER BY revenue) AS a, \
             rank() OVER (PARTITION BY store ORDER BY day) AS b FROM sales",
        )
        .unwrap();
    assert!(text.contains("ws"), "{text}");
    assert!(
        text.contains("SS→") || text.contains("FS→") || text.contains("HS→"),
        "{text}"
    );
}

#[test]
fn schemes_configurable_and_equivalent() {
    let sql = "SELECT *, rank() OVER (PARTITION BY store ORDER BY revenue) AS r FROM sales \
               ORDER BY store, day";
    let cso = sales_db_with(DatabaseConfig::new().scheme(Scheme::Cso))
        .query(sql)
        .unwrap();
    let psql = sales_db_with(DatabaseConfig::new().scheme(Scheme::Psql))
        .query(sql)
        .unwrap();
    assert_eq!(
        cso.rows(),
        psql.rows(),
        "schemes must agree row for row after ORDER BY"
    );
}

#[test]
fn order_by_column_dropped_by_projection() {
    // ORDER BY references `revenue`, which the projection then drops —
    // ordering must still be applied (order before project).
    let db = sales_db();
    let out = db
        .query(
            "SELECT store, rank() OVER (ORDER BY revenue) AS r FROM sales              ORDER BY revenue DESC",
        )
        .unwrap();
    assert_eq!(out.schema().len(), 2);
    // Highest revenue (150, store a, global rank 6) first.
    let r = out.schema().resolve("r").unwrap();
    let ranks: Vec<i64> = out
        .rows()
        .iter()
        .map(|row| row.get(r).as_int().unwrap())
        .collect();
    assert_eq!(ranks, vec![6, 5, 4, 3, 2, 1]);
}

#[test]
fn errors_are_reported() {
    let db = sales_db();
    assert!(db.query("SELECT *, rank() OVER () AS r FROM nope").is_err());
    assert!(db
        .query("SELECT *, nosuch() OVER () AS r FROM sales")
        .is_err());
    assert!(db.query("not sql at all").is_err());
    assert!(db.table("missing").is_err());
}

#[test]
fn tiny_memory_database_still_correct() {
    // A per-query budget of one block: the ledger floor still allows
    // execution.
    let db = sales_db_with(DatabaseConfig::new().per_query_blocks(1));
    let out = db
        .query("SELECT *, rank() OVER (ORDER BY revenue) AS r FROM sales")
        .unwrap();
    let r = out.schema().resolve("r").unwrap();
    let ranks: Vec<i64> = out
        .rows()
        .iter()
        .map(|row| row.get(r).as_int().unwrap())
        .collect();
    let mut sorted = ranks.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![1, 2, 3, 4, 5, 6]);
}

#[test]
fn query_detailed_returns_named_outcome() {
    let db = sales_db();
    let outcome = db
        .query_detailed(
            "SELECT *, rank() OVER (PARTITION BY store ORDER BY revenue) AS r FROM sales",
        )
        .unwrap();
    assert_eq!(outcome.table.row_count(), 6);
    assert!(!outcome.plan.steps.is_empty());
    assert_eq!(outcome.report.table.row_count(), 6);
    assert!(outcome.explain.contains("model ms"), "{}", outcome.explain);
    assert!(outcome.wall >= outcome.report.wall);
    assert_eq!(outcome.queue_wait.as_nanos(), 0, "uncontended database");
    assert_eq!(outcome.admission.admitted, 1);
    assert!(outcome.trace.is_none(), "tracing is opt-in per session");
}

#[test]
fn prepared_query_is_reusable() {
    let db = sales_db();
    let prepared = db
        .session()
        .prepare("SELECT *, rank() OVER (ORDER BY revenue) AS r FROM sales")
        .unwrap();
    assert_eq!(prepared.table_name(), "sales");
    let first = prepared.execute().unwrap();
    let second = prepared.execute().unwrap();
    assert_eq!(first.table.rows(), second.table.rows());
    assert_eq!(
        first.report.work, second.report.work,
        "modeled counters identical run to run"
    );
    assert_eq!(db.admission_stats().admitted, 2);
    assert_eq!(db.admission_stats().completed, 2);
}

#[test]
fn register_is_case_insensitive_like_the_catalog() {
    let db = DatabaseConfig::new().open();
    db.register("Sales", sales_table()).unwrap();
    assert!(db.table("SALES").is_ok());
    assert!(db.schema("sales").is_ok());
    let out = db
        .query("SELECT *, rank() OVER (ORDER BY revenue) AS r FROM SaLeS")
        .unwrap();
    assert_eq!(out.row_count(), 6);
}

#[test]
fn deprecated_builder_shims_still_compile_and_run() {
    #![allow(deprecated)]
    let db = Database::new()
        .with_scheme(Scheme::Psql)
        .with_memory_blocks(8);
    db.register("sales", sales_table()).unwrap();
    assert_eq!(db.config().resolved_per_query_blocks(), 8);
    let out = db
        .query("SELECT *, rank() OVER (ORDER BY revenue) AS r FROM sales")
        .unwrap();
    assert_eq!(out.row_count(), 6);
}
