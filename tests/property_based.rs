//! Randomized (deterministic-seed) tests over the core invariants:
//!
//! * every scheme's output equals the reference on arbitrary data/queries,
//! * covering permutations really cover every member,
//! * SS's α/β split always reconstructs a valid `perm(WPK) ∘ WOK` and its
//!   output properties match the target,
//! * FS/HS/SS executor outputs are valid segmented relations.
//!
//! Originally `proptest` properties; the workspace builds without external
//! dependencies, so the same input spaces are now sampled with a seeded
//! generator (random WPK/WOK subsets, row counts, memory budgets).

mod common;

use common::{column_by_key, random_table, reference_rank};
use wfopt::core::cover::try_cover_set;
use wfopt::core::spec::WindowSpec;
use wfopt::core::SegProps;
use wfopt::datagen::rng::SplitMix64;
use wfopt::exec::{full_sort, hashed_sort, segmented_sort, HsOptions, OpEnv, SegmentedRows};
use wfopt::prelude::*;

/// Random subsequence of `pool` with at most `max` elements (proptest's
/// `subsequence` stand-in, driven by the shared [`SplitMix64`]).
fn subsequence(rng: &mut SplitMix64, pool: &[usize], max: usize) -> Vec<usize> {
    pool.iter()
        .copied()
        .filter(|_| rng.random_below(2) == 1)
        .take(max)
        .collect()
}

/// A random window spec over attrs 1..=3 of `random_table` (attr 0 is the
/// unique id). Never returns an empty-key spec.
fn arb_spec(rng: &mut SplitMix64, name: &'static str) -> WindowSpec {
    loop {
        let wpk = subsequence(rng, &[1, 2, 3], 2);
        let remaining: Vec<usize> = [1usize, 2, 3]
            .iter()
            .copied()
            .filter(|i| !wpk.contains(i))
            .collect();
        let wok = subsequence(rng, &remaining, 2);
        if wpk.is_empty() && wok.is_empty() {
            continue;
        }
        let desc = rng.random_below(2) == 1;
        let wok_spec = SortSpec::new(
            wok.iter()
                .map(|&i| {
                    if desc {
                        OrdElem::desc(AttrId::new(i))
                    } else {
                        OrdElem::asc(AttrId::new(i))
                    }
                })
                .collect(),
        );
        return WindowSpec::rank(name, wpk.into_iter().map(AttrId::new).collect(), wok_spec);
    }
}

/// End-to-end: random pair of specs, random data, three memory sizes, all
/// schemes agree with the reference.
#[test]
fn schemes_agree_with_reference() {
    let mut rng = SplitMix64::seed_from_u64(0xA11CE);
    for case in 0..24 {
        let spec_a = arb_spec(&mut rng, "a");
        let spec_b = arb_spec(&mut rng, "b");
        let rows = 50 + rng.random_below(350) as usize;
        let seed = rng.random_below(1000);
        let mem = [2u64, 8, 64][rng.random_below(3) as usize];

        let table = random_table(rows, &[7, 13, 23], seed);
        let specs = vec![spec_a, spec_b];
        let query = WindowQuery::new(table.schema().clone(), specs.clone());
        let stats = TableStats::from_table(&table);
        for scheme in [Scheme::Cso, Scheme::Bfo, Scheme::Psql] {
            let env = ExecEnv::with_memory_blocks(mem);
            let plan = optimize(&query, &stats, scheme, &env).unwrap();
            let report = execute_plan(&plan, &table, &env).unwrap();
            for (i, spec) in specs.iter().enumerate() {
                let got = column_by_key(
                    &report.table,
                    AttrId::new(0),
                    AttrId::new(table.schema().len() + i),
                );
                let expected = reference_rank(&table, spec, AttrId::new(0));
                for (id, rank) in &expected {
                    assert_eq!(
                        got.get(id).and_then(|v| v.as_int()),
                        Some(*rank),
                        "case {case}: {} / {} (plan {})",
                        scheme,
                        spec.name,
                        plan.chain_string()
                    );
                }
            }
        }
    }
}

/// A successful cover-set proof yields a γ that covers every member: γ's
/// prefix realizes each member's WPK-set then WOK-sequence.
#[test]
fn covering_permutation_covers_members() {
    let mut rng = SplitMix64::seed_from_u64(0xB0B);
    for _ in 0..48 {
        let specs = vec![
            arb_spec(&mut rng, "a"),
            arb_spec(&mut rng, "b"),
            arb_spec(&mut rng, "c"),
        ];
        if let Some(cs) = try_cover_set(&specs, &[0, 1, 2], None) {
            let gamma = cs.key();
            for &m in &cs.members {
                let s = &specs[m];
                let p = s.wpk().len();
                let n = s.key_len();
                assert!(gamma.len() >= n);
                let head: AttrSet = gamma.elems()[..p].iter().map(|e| e.attr).collect();
                assert_eq!(&head, s.wpk());
                assert_eq!(&gamma.elems()[p..n], s.wok().elems());
            }
        }
    }
}

/// α∘β from alpha_split is a valid perm(WPK)∘WOK and after_ss matches.
#[test]
fn alpha_split_reconstructs_key() {
    let mut rng = SplitMix64::seed_from_u64(0xCAFE);
    for _ in 0..48 {
        let spec = arb_spec(&mut rng, "t");
        let y = subsequence(&mut rng, &[1, 2, 3], 3);
        let grouped_x = subsequence(&mut rng, &[1, 2, 3], 1);
        let x = AttrSet::from_iter(grouped_x.iter().map(|&i| AttrId::new(i)));
        let y_spec = SortSpec::new(y.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect());
        let props = SegProps::new(x, y_spec, true);
        let split = props.alpha_split(&spec);
        let full = split.full_key();
        // attr multiset check: full key = WPK ∪ WOK exactly once each.
        assert_eq!(full.len(), spec.key_len());
        let head: AttrSet = full.elems()[..spec.wpk().len()]
            .iter()
            .map(|e| e.attr)
            .collect();
        assert_eq!(&head, spec.wpk());
        assert_eq!(&full.elems()[spec.wpk().len()..], spec.wok().elems());
        // And the declared output property must match the spec.
        if props.x().is_subset(spec.wpk()) {
            assert!(props.after_ss(&split).matches(&spec));
        }
    }
}

/// Executor outputs really are the segmented relations the property algebra
/// claims: FS → one sorted segment; HS → segments disjoint on WHK, each
/// sorted; SS on sorted input → segments sorted on α∘β.
#[test]
fn operators_produce_claimed_segmented_relations() {
    let mut rng = SplitMix64::seed_from_u64(0xD00D);
    for _ in 0..24 {
        let rows = 30 + rng.random_below(170) as usize;
        let seed = rng.random_below(500);
        let mem = [2u64, 16][rng.random_below(2) as usize];

        let table = random_table(rows, &[5, 11], seed);
        let key = SortSpec::new(vec![
            OrdElem::asc(AttrId::new(1)),
            OrdElem::asc(AttrId::new(2)),
        ]);
        let whk = AttrSet::from_iter([AttrId::new(1)]);

        let env = OpEnv::with_memory_blocks(mem);
        let fs = full_sort(
            SegmentedRows::single_segment(table.rows().to_vec()),
            &key,
            &env,
        )
        .unwrap();
        assert!(fs.segment_count() <= 1);
        assert!(fs.segments_sorted_by(&RowComparator::new(&key)));

        let hs = hashed_sort(
            SegmentedRows::single_segment(table.rows().to_vec()),
            &whk,
            &key,
            &HsOptions::with_buckets(8),
            &env,
        )
        .unwrap();
        assert!(hs.segments_disjoint_on(&whk));
        assert!(hs.segments_sorted_by(&RowComparator::new(&key)));
        assert_eq!(hs.len(), rows);

        // SS over the FS output: sort c1-groups on c2 descending.
        let alpha = SortSpec::new(vec![OrdElem::asc(AttrId::new(1))]);
        let beta = SortSpec::new(vec![OrdElem::desc(AttrId::new(2))]);
        let ss = segmented_sort(fs, &alpha, &beta, &env).unwrap();
        assert_eq!(ss.len(), rows);
        assert!(ss.segments_sorted_by(&RowComparator::new(&alpha.concat(&beta))));
    }
}
