//! Property-based tests (proptest) over the core invariants:
//!
//! * every scheme's output equals the reference on arbitrary data/queries,
//! * covering permutations really cover every member,
//! * SS's α/β split always reconstructs a valid `perm(WPK) ∘ WOK` and its
//!   output properties match the target,
//! * FS/HS/SS executor outputs are valid segmented relations.

mod common;

use common::{column_by_key, random_table, reference_rank};
use proptest::prelude::*;
use wfopt::core::cover::try_cover_set;
use wfopt::core::spec::WindowSpec;
use wfopt::core::SegProps;
use wfopt::exec::{full_sort, hashed_sort, segmented_sort, HsOptions, OpEnv, SegmentedRows};
use wfopt::prelude::*;

/// Strategy: a window spec over attrs 1..=3 of `random_table` (attr 0 is
/// the unique id).
fn arb_spec(name: &'static str) -> impl Strategy<Value = WindowSpec> {
    (
        proptest::sample::subsequence(vec![1usize, 2, 3], 0..=2),
        proptest::sample::subsequence(vec![1usize, 2, 3], 0..=2),
        proptest::bool::ANY,
    )
        .prop_filter_map("empty key", move |(wpk, wok, desc)| {
            if wpk.is_empty() && wok.is_empty() {
                return None;
            }
            let wok_spec = SortSpec::new(
                wok.iter()
                    .map(|&i| {
                        if desc {
                            OrdElem::desc(AttrId::new(i))
                        } else {
                            OrdElem::asc(AttrId::new(i))
                        }
                    })
                    .collect(),
            );
            Some(WindowSpec::rank(
                name,
                wpk.into_iter().map(AttrId::new).collect(),
                wok_spec,
            ))
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// End-to-end: random pair of specs, random data, three memory sizes,
    /// all schemes agree with the reference.
    #[test]
    fn schemes_agree_with_reference(
        spec_a in arb_spec("a"),
        spec_b in arb_spec("b"),
        rows in 50usize..400,
        seed in 0u64..1000,
        mem in prop::sample::select(vec![2u64, 8, 64]),
    ) {
        let table = random_table(rows, &[7, 13, 23], seed);
        let specs = vec![spec_a, spec_b];
        let query = WindowQuery::new(table.schema().clone(), specs.clone());
        let stats = TableStats::from_table(&table);
        for scheme in [Scheme::Cso, Scheme::Bfo, Scheme::Psql] {
            let env = ExecEnv::with_memory_blocks(mem);
            let plan = optimize(&query, &stats, scheme, &env).unwrap();
            let report = execute_plan(&plan, &table, &env).unwrap();
            for (i, spec) in specs.iter().enumerate() {
                let got = column_by_key(&report.table, AttrId::new(0),
                    AttrId::new(table.schema().len() + i));
                let expected = reference_rank(&table, spec, AttrId::new(0));
                for (id, rank) in &expected {
                    prop_assert_eq!(
                        got.get(id).and_then(|v| v.as_int()),
                        Some(*rank),
                        "{} / {} (plan {})", scheme, spec.name, plan.chain_string()
                    );
                }
            }
        }
    }

    /// A successful cover-set proof yields a γ that covers every member:
    /// γ's prefix realizes each member's WPK-set then WOK-sequence.
    #[test]
    fn covering_permutation_covers_members(
        a in arb_spec("a"),
        b in arb_spec("b"),
        c in arb_spec("c"),
    ) {
        let specs = vec![a, b, c];
        if let Some(cs) = try_cover_set(&specs, &[0, 1, 2], None) {
            let gamma = cs.key();
            for &m in &cs.members {
                let s = &specs[m];
                let p = s.wpk().len();
                let n = s.key_len();
                prop_assert!(gamma.len() >= n);
                let head: AttrSet = gamma.elems()[..p].iter().map(|e| e.attr).collect();
                prop_assert_eq!(&head, s.wpk());
                prop_assert_eq!(&gamma.elems()[p..n], s.wok().elems());
            }
        }
    }

    /// α∘β from alpha_split is a valid perm(WPK)∘WOK and after_ss matches.
    #[test]
    fn alpha_split_reconstructs_key(
        spec in arb_spec("t"),
        y in proptest::sample::subsequence(vec![1usize, 2, 3], 0..=3),
        grouped_x in proptest::sample::subsequence(vec![1usize, 2, 3], 0..=1),
    ) {
        let x = AttrSet::from_iter(grouped_x.iter().map(|&i| AttrId::new(i)));
        let y_spec = SortSpec::new(y.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect());
        let props = SegProps::new(x, y_spec, true);
        let split = props.alpha_split(&spec);
        let full = split.full_key();
        // attr multiset check: full key = WPK ∪ WOK exactly once each.
        prop_assert_eq!(full.len(), spec.key_len());
        let head: AttrSet = full.elems()[..spec.wpk().len()].iter().map(|e| e.attr).collect();
        prop_assert_eq!(&head, spec.wpk());
        prop_assert_eq!(&full.elems()[spec.wpk().len()..], spec.wok().elems());
        // And the declared output property must match the spec.
        if props.x().is_subset(spec.wpk()) {
            prop_assert!(props.after_ss(&split).matches(&spec));
        }
    }

    /// Executor outputs really are the segmented relations the property
    /// algebra claims: FS → one sorted segment; HS → segments disjoint on
    /// WHK, each sorted; SS on sorted input → segments sorted on α∘β.
    #[test]
    fn operators_produce_claimed_segmented_relations(
        rows in 30usize..200,
        seed in 0u64..500,
        mem in prop::sample::select(vec![2u64, 16]),
    ) {
        let table = random_table(rows, &[5, 11], seed);
        let key = SortSpec::new(vec![OrdElem::asc(AttrId::new(1)), OrdElem::asc(AttrId::new(2))]);
        let whk = AttrSet::from_iter([AttrId::new(1)]);

        let env = OpEnv::with_memory_blocks(mem);
        let fs = full_sort(SegmentedRows::single_segment(table.rows().to_vec()), &key, &env)
            .unwrap();
        prop_assert!(fs.segment_count() <= 1);
        prop_assert!(fs.segments_sorted_by(&RowComparator::new(&key)));

        let hs = hashed_sort(
            SegmentedRows::single_segment(table.rows().to_vec()),
            &whk,
            &key,
            &HsOptions::with_buckets(8),
            &env,
        ).unwrap();
        prop_assert!(hs.segments_disjoint_on(&whk));
        prop_assert!(hs.segments_sorted_by(&RowComparator::new(&key)));
        prop_assert_eq!(hs.len(), rows);

        // SS over the FS output: sort c1-groups on c2 descending.
        let alpha = SortSpec::new(vec![OrdElem::asc(AttrId::new(1))]);
        let beta = SortSpec::new(vec![OrdElem::desc(AttrId::new(2))]);
        let ss = segmented_sort(fs, &alpha, &beta, &env).unwrap();
        prop_assert_eq!(ss.len(), rows);
        prop_assert!(ss.segments_sorted_by(&RowComparator::new(&alpha.concat(&beta))));
    }
}
