//! Frame semantics at the edges: RANGE peer groups, empty frames,
//! single-row partitions, `UNBOUNDED FOLLOWING`, NULL ordering — plus
//! regression tests pinning `FrameSpec::default_for` / `whole_partition` to
//! the SQL defaults (no ORDER BY ⇒ unbounded both ends; ORDER BY ⇒
//! `RANGE UNBOUNDED PRECEDING .. CURRENT ROW`) and the incremental
//! ROWS-frame aggregates against brute-force recomputation.

use wfopt::common::row;
use wfopt::datagen::rng::SplitMix64;
use wfopt::exec::{
    evaluate_window, Bound, FrameSpec, FrameUnits, OpEnv, SegmentedRows, WindowFunction,
};
use wfopt::prelude::*;
use wfopt::Database;

fn a(i: usize) -> AttrId {
    AttrId::new(i)
}

fn asc(ids: &[usize]) -> SortSpec {
    SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
}

/// Evaluate one window function over rows already in matched order; returns
/// the appended column.
fn run(
    rows: Vec<Row>,
    wpk: &[usize],
    wok: &SortSpec,
    func: WindowFunction,
    frame: Option<FrameSpec>,
) -> Vec<Value> {
    let env = OpEnv::with_memory_blocks(64);
    let out = evaluate_window(
        SegmentedRows::single_segment(rows),
        &AttrSet::from_iter(wpk.iter().map(|&i| a(i))),
        wok,
        &func,
        frame,
        &env,
    )
    .unwrap();
    if out.is_empty() {
        return vec![];
    }
    let last = out.rows()[0].arity() - 1;
    out.rows().iter().map(|r| r.get(a(last)).clone()).collect()
}

// ---------------------------------------------------------------------------
// FrameSpec defaults (regression: SQL default frames)
// ---------------------------------------------------------------------------

#[test]
fn default_frame_without_order_by_is_unbounded_both_ends() {
    let f = FrameSpec::default_for(false);
    assert_eq!(f.units, FrameUnits::Range);
    assert_eq!(f.start, Bound::UnboundedPreceding);
    assert_eq!(f.end, Bound::UnboundedFollowing);
    assert_eq!(FrameSpec::whole_partition(), f);
}

#[test]
fn default_frame_with_order_by_is_range_up_to_current_row() {
    let f = FrameSpec::default_for(true);
    assert_eq!(f.units, FrameUnits::Range);
    assert_eq!(f.start, Bound::UnboundedPreceding);
    assert_eq!(f.end, Bound::CurrentRow);
}

/// Behavioral pin via SQL: without ORDER BY every row sees the partition
/// total; with ORDER BY the running sum includes peers of the current row.
#[test]
fn sql_default_frames_match_sql_semantics() {
    let db = Database::new();
    let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
    let mut t = Table::new(schema);
    for (g, v) in [(1, 10), (1, 20), (1, 20), (1, 50), (2, 7)] {
        t.push(Row::new(vec![g.into(), v.into()]));
    }
    db.register("t", t).unwrap();

    // No ORDER BY: whole-partition frame.
    let out = db
        .query("SELECT g, v, sum(v) OVER (PARTITION BY g) AS s FROM t ORDER BY g, v")
        .unwrap();
    let sums: Vec<i64> = out
        .rows()
        .iter()
        .map(|r| r.get(a(2)).as_int().unwrap())
        .collect();
    assert_eq!(sums, vec![100, 100, 100, 100, 7]);

    // ORDER BY: running frame, ties (the two 20s) are peers and share a sum.
    let out = db
        .query(
            "SELECT g, v, sum(v) OVER (PARTITION BY g ORDER BY v) AS s FROM t \
                ORDER BY g, v",
        )
        .unwrap();
    let sums: Vec<i64> = out
        .rows()
        .iter()
        .map(|r| r.get(a(2)).as_int().unwrap())
        .collect();
    assert_eq!(sums, vec![10, 50, 50, 100, 7]);
}

// ---------------------------------------------------------------------------
// RANGE frames with ties / peer groups
// ---------------------------------------------------------------------------

#[test]
fn range_current_row_bounds_cover_whole_peer_group() {
    // Keys 1,2,2,3 — the peer pair must share identical frames in both
    // directions.
    let rows = vec![row![1], row![2], row![2], row![3]];
    let frame = FrameSpec {
        units: FrameUnits::Range,
        start: Bound::CurrentRow,
        end: Bound::CurrentRow,
    };
    let counts: Vec<i64> = run(
        rows,
        &[],
        &asc(&[0]),
        WindowFunction::Count(None),
        Some(frame),
    )
    .iter()
    .map(|v| v.as_int().unwrap())
    .collect();
    assert_eq!(counts, vec![1, 2, 2, 1]);
}

#[test]
fn range_numeric_offset_with_ties() {
    // Keys 1,1,3,3,6: RANGE BETWEEN 2 PRECEDING AND CURRENT ROW.
    let rows = vec![row![1], row![1], row![3], row![3], row![6]];
    let frame = FrameSpec {
        units: FrameUnits::Range,
        start: Bound::Preceding(2),
        end: Bound::CurrentRow,
    };
    let counts: Vec<i64> = run(
        rows,
        &[],
        &asc(&[0]),
        WindowFunction::Count(None),
        Some(frame),
    )
    .iter()
    .map(|v| v.as_int().unwrap())
    .collect();
    // Rows with key 3 see both 1s and both 3s; key 6 sees only itself.
    assert_eq!(counts, vec![2, 2, 4, 4, 1]);
}

// ---------------------------------------------------------------------------
// Empty frames
// ---------------------------------------------------------------------------

#[test]
fn empty_rows_frame_yields_nulls_and_zero_count() {
    let rows: Vec<Row> = (0..4).map(|i| row![i as i64]).collect();
    let frame = FrameSpec {
        units: FrameUnits::Rows,
        start: Bound::Following(5),
        end: Bound::Following(4),
    };
    assert!(run(
        rows.clone(),
        &[],
        &asc(&[0]),
        WindowFunction::Sum(a(0)),
        Some(frame)
    )
    .iter()
    .all(Value::is_null));
    assert!(run(
        rows.clone(),
        &[],
        &asc(&[0]),
        WindowFunction::Avg(a(0)),
        Some(frame)
    )
    .iter()
    .all(Value::is_null));
    assert!(run(
        rows.clone(),
        &[],
        &asc(&[0]),
        WindowFunction::Min(a(0)),
        Some(frame)
    )
    .iter()
    .all(Value::is_null));
    assert!(run(
        rows.clone(),
        &[],
        &asc(&[0]),
        WindowFunction::FirstValue(a(0)),
        Some(frame)
    )
    .iter()
    .all(Value::is_null));
    let counts: Vec<i64> = run(
        rows,
        &[],
        &asc(&[0]),
        WindowFunction::Count(None),
        Some(frame),
    )
    .iter()
    .map(|v| v.as_int().unwrap())
    .collect();
    assert_eq!(counts, vec![0; 4]);
}

#[test]
fn shrinking_then_empty_rows_frame() {
    // ROWS BETWEEN 1 PRECEDING AND 2 PRECEDING is empty everywhere; the
    // two-pointer window must never go negative or panic.
    let rows: Vec<Row> = (0..6).map(|i| row![i as i64]).collect();
    let frame = FrameSpec {
        units: FrameUnits::Rows,
        start: Bound::Preceding(1),
        end: Bound::Preceding(2),
    };
    let sums = run(
        rows,
        &[],
        &asc(&[0]),
        WindowFunction::Sum(a(0)),
        Some(frame),
    );
    assert!(sums.iter().all(Value::is_null));
}

// ---------------------------------------------------------------------------
// Single-row partitions
// ---------------------------------------------------------------------------

#[test]
fn single_row_partitions_every_function() {
    // Partition key is unique → every partition has exactly one row.
    let rows: Vec<Row> = (0..5).map(|i| row![i as i64, (i * 10) as i64]).collect();
    let wok = asc(&[1]);
    let cases: Vec<(WindowFunction, Value)> = vec![
        (WindowFunction::RowNumber, Value::Int(1)),
        (WindowFunction::Rank, Value::Int(1)),
        (WindowFunction::DenseRank, Value::Int(1)),
        (WindowFunction::PercentRank, Value::Float(0.0)),
        (WindowFunction::CumeDist, Value::Float(1.0)),
        (WindowFunction::Count(None), Value::Int(1)),
        (
            WindowFunction::Lag {
                col: a(1),
                offset: 1,
                default: None,
            },
            Value::Null,
        ),
        (
            WindowFunction::Lead {
                col: a(1),
                offset: 1,
                default: None,
            },
            Value::Null,
        ),
    ];
    for (func, expected) in cases {
        let vals = run(rows.clone(), &[0], &wok, func.clone(), None);
        assert!(
            vals.iter().all(|v| v == &expected),
            "{func:?}: expected {expected:?} everywhere, got {vals:?}"
        );
    }
    // Sum of a single-row partition is the row's value.
    let sums = run(rows.clone(), &[0], &wok, WindowFunction::Sum(a(1)), None);
    let expected: Vec<Value> = rows.iter().map(|r| r.get(a(1)).clone()).collect();
    assert_eq!(sums, expected);
}

// ---------------------------------------------------------------------------
// UNBOUNDED FOLLOWING
// ---------------------------------------------------------------------------

#[test]
fn unbounded_following_reverse_running_sum() {
    let rows: Vec<Row> = [1i64, 2, 3, 4].iter().map(|&v| row![v]).collect();
    let frame = FrameSpec {
        units: FrameUnits::Rows,
        start: Bound::CurrentRow,
        end: Bound::UnboundedFollowing,
    };
    let sums: Vec<i64> = run(
        rows,
        &[],
        &asc(&[0]),
        WindowFunction::Sum(a(0)),
        Some(frame),
    )
    .iter()
    .map(|v| v.as_int().unwrap())
    .collect();
    assert_eq!(sums, vec![10, 9, 7, 4]);
}

#[test]
fn range_unbounded_following_with_peers() {
    // Keys 1,2,2,3 with RANGE CURRENT ROW .. UNBOUNDED FOLLOWING: the frame
    // starts at the peer group's start.
    let rows = vec![row![1], row![2], row![2], row![3]];
    let frame = FrameSpec {
        units: FrameUnits::Range,
        start: Bound::CurrentRow,
        end: Bound::UnboundedFollowing,
    };
    let sums: Vec<i64> = run(
        rows,
        &[],
        &asc(&[0]),
        WindowFunction::Sum(a(0)),
        Some(frame),
    )
    .iter()
    .map(|v| v.as_int().unwrap())
    .collect();
    assert_eq!(sums, vec![8, 7, 7, 3]);
}

#[test]
fn unbounded_following_as_start_is_rejected() {
    let rows = vec![row![1], row![2]];
    let env = OpEnv::with_memory_blocks(8);
    let frame = FrameSpec {
        units: FrameUnits::Range,
        start: Bound::UnboundedFollowing,
        end: Bound::UnboundedFollowing,
    };
    let r = evaluate_window(
        SegmentedRows::single_segment(rows),
        &AttrSet::empty(),
        &asc(&[0]),
        &WindowFunction::Sum(a(0)),
        Some(frame),
        &env,
    );
    assert!(r.is_err(), "frame start UNBOUNDED FOLLOWING must error");
}

// ---------------------------------------------------------------------------
// NULL ordering
// ---------------------------------------------------------------------------

#[test]
fn nulls_last_running_aggregates_skip_nulls_but_count_star_does_not() {
    // ASC NULLS LAST: 10, 20, NULL, NULL.
    let rows = vec![row![10], row![20], row![Value::Null], row![Value::Null]];
    let frame = FrameSpec {
        units: FrameUnits::Rows,
        start: Bound::UnboundedPreceding,
        end: Bound::CurrentRow,
    };
    let sums = run(
        rows.clone(),
        &[],
        &asc(&[0]),
        WindowFunction::Sum(a(0)),
        Some(frame),
    );
    assert_eq!(
        sums,
        vec![
            Value::Int(10),
            Value::Int(30),
            Value::Int(30),
            Value::Int(30)
        ]
    );
    let count_star: Vec<i64> = run(
        rows.clone(),
        &[],
        &asc(&[0]),
        WindowFunction::Count(None),
        Some(frame),
    )
    .iter()
    .map(|v| v.as_int().unwrap())
    .collect();
    assert_eq!(count_star, vec![1, 2, 3, 4]);
    let count_col: Vec<i64> = run(
        rows,
        &[],
        &asc(&[0]),
        WindowFunction::Count(Some(a(0))),
        Some(frame),
    )
    .iter()
    .map(|v| v.as_int().unwrap())
    .collect();
    assert_eq!(count_col, vec![1, 2, 2, 2]);
}

#[test]
fn nulls_first_descending_rank_via_sql() {
    let db = Database::new();
    let schema = Schema::of(&[("id", DataType::Int), ("v", DataType::Int)]);
    let mut t = Table::new(schema);
    t.push(Row::new(vec![1.into(), 5.into()]));
    t.push(Row::new(vec![2.into(), Value::Null]));
    t.push(Row::new(vec![3.into(), 9.into()]));
    db.register("t", t).unwrap();
    // PostgreSQL default for DESC: NULLS FIRST → the NULL row ranks 1.
    let out = db
        .query("SELECT id, rank() OVER (ORDER BY v DESC) AS r FROM t ORDER BY id")
        .unwrap();
    let ranks: Vec<i64> = out
        .rows()
        .iter()
        .map(|r| r.get(a(1)).as_int().unwrap())
        .collect();
    assert_eq!(ranks, vec![3, 1, 2]);
}

// ---------------------------------------------------------------------------
// Incremental ROWS aggregates vs brute force
// ---------------------------------------------------------------------------

fn brute_force_sum(rows: &[Row], col: AttrId, s: usize, e: usize) -> (i64, i64) {
    let mut sum = 0i64;
    let mut cnt = 0i64;
    for r in &rows[s..e] {
        if let Some(x) = r.get(col).as_int() {
            sum += x;
            cnt += 1;
        }
    }
    (sum, cnt)
}

#[test]
fn sliding_sum_avg_count_match_brute_force_on_random_frames() {
    let mut rng = SplitMix64::seed_from_u64(99);
    for case in 0..40 {
        let n = 1 + rng.random_below_usize(60);
        let rows: Vec<Row> = (0..n)
            .map(|_| {
                if rng.next_u64().is_multiple_of(5) {
                    row![Value::Null]
                } else {
                    row![rng.random_below(1000) as i64 - 500]
                }
            })
            .collect();
        let bound = |r: &mut SplitMix64| match r.random_below(5) {
            0 => Bound::UnboundedPreceding,
            1 => Bound::Preceding(r.random_below(6) as i64),
            2 => Bound::CurrentRow,
            3 => Bound::Following(r.random_below(6) as i64),
            _ => Bound::UnboundedFollowing,
        };
        let (start, end) = loop {
            let s = bound(&mut rng);
            let e = bound(&mut rng);
            if s != Bound::UnboundedFollowing && e != Bound::UnboundedPreceding {
                break (s, e);
            }
        };
        let frame = FrameSpec {
            units: FrameUnits::Rows,
            start,
            end,
        };

        let sums = run(
            rows.clone(),
            &[],
            &SortSpec::empty(),
            WindowFunction::Sum(a(0)),
            Some(frame),
        );
        let counts = run(
            rows.clone(),
            &[],
            &SortSpec::empty(),
            WindowFunction::Count(Some(a(0))),
            Some(frame),
        );
        let avgs = run(
            rows.clone(),
            &[],
            &SortSpec::empty(),
            WindowFunction::Avg(a(0)),
            Some(frame),
        );

        // Reference: recompute each frame from scratch.
        let lo = |i: usize| match start {
            Bound::UnboundedPreceding => 0usize,
            Bound::Preceding(k) => i.saturating_sub(k.max(0) as usize),
            Bound::CurrentRow => i,
            Bound::Following(k) => (i + k.max(0) as usize).min(n),
            Bound::UnboundedFollowing => n,
        };
        let hi = |i: usize| match end {
            Bound::UnboundedPreceding => 0usize,
            Bound::Preceding(k) => (i + 1).saturating_sub(k.max(0) as usize),
            Bound::CurrentRow => i + 1,
            Bound::Following(k) => (i + 1 + k.max(0) as usize).min(n),
            Bound::UnboundedFollowing => n,
        };
        for i in 0..n {
            let s = lo(i).min(n);
            let e = hi(i).max(s).min(n);
            let (sum, cnt) = brute_force_sum(&rows, a(0), s, e);
            assert_eq!(counts[i].as_int(), Some(cnt), "case {case} count row {i}");
            if cnt == 0 {
                assert!(sums[i].is_null(), "case {case} sum row {i}");
                assert!(avgs[i].is_null(), "case {case} avg row {i}");
            } else {
                assert_eq!(sums[i].as_int(), Some(sum), "case {case} sum row {i}");
                let avg = avgs[i].as_f64().unwrap();
                assert!(
                    (avg - sum as f64 / cnt as f64).abs() < 1e-9,
                    "case {case} avg row {i}"
                );
            }
        }
    }
}

/// The exact-integer path: sums beyond f64's 2^53 mantissa stay exact (the
/// old prefix-f64 accumulation would round these).
#[test]
fn large_int_sums_are_exact_over_rows_frames() {
    let big = (1i64 << 60) + 7;
    let rows = vec![row![big], row![big], row![big]];
    let frame = FrameSpec {
        units: FrameUnits::Rows,
        start: Bound::UnboundedPreceding,
        end: Bound::CurrentRow,
    };
    let sums: Vec<i64> = run(
        rows,
        &[],
        &SortSpec::empty(),
        WindowFunction::Sum(a(0)),
        Some(frame),
    )
    .iter()
    .map(|v| v.as_int().unwrap())
    .collect();
    assert_eq!(sums, vec![big, 2 * big, 3 * big]);
}

/// Sums that exceed i64 saturate instead of wrapping.
#[test]
fn overflowing_int_sum_saturates() {
    let rows = vec![row![i64::MAX], row![i64::MAX], row![i64::MIN]];
    let whole = FrameSpec {
        units: FrameUnits::Rows,
        start: Bound::UnboundedPreceding,
        end: Bound::CurrentRow,
    };
    let sums = run(
        rows,
        &[],
        &SortSpec::empty(),
        WindowFunction::Sum(a(0)),
        Some(whole),
    );
    assert_eq!(sums[0], Value::Int(i64::MAX));
    assert_eq!(
        sums[1],
        Value::Int(i64::MAX),
        "2×i64::MAX must saturate, not wrap to -2"
    );
    assert_eq!(sums[2], Value::Int(i64::MAX - 1));
}

/// SQL requires an error for negative frame offsets — both units, both
/// through the operator and through SQL.
#[test]
fn negative_frame_offsets_are_rejected() {
    let env = OpEnv::with_memory_blocks(8);
    for units in [FrameUnits::Rows, FrameUnits::Range] {
        for (start, end) in [
            (Bound::Preceding(-1), Bound::CurrentRow),
            (Bound::CurrentRow, Bound::Following(-2)),
        ] {
            let r = evaluate_window(
                SegmentedRows::single_segment(vec![row![1], row![2]]),
                &AttrSet::empty(),
                &asc(&[0]),
                &WindowFunction::Sum(a(0)),
                Some(FrameSpec { units, start, end }),
                &env,
            );
            assert!(r.is_err(), "{units:?} {start:?}..{end:?} must error");
        }
    }

    let db = Database::new();
    let schema = Schema::of(&[("v", DataType::Int)]);
    let mut t = Table::new(schema);
    t.push(Row::new(vec![1.into()]));
    db.register("t", t).unwrap();
    let r = db.query(
        "SELECT *, sum(v) OVER (ORDER BY v RANGE BETWEEN -1 PRECEDING AND CURRENT ROW) \
         AS s FROM t",
    );
    assert!(r.is_err(), "negative offset must be rejected end to end");
}

/// Floats take the numeric-safety fallback and still answer every frame.
#[test]
fn float_columns_use_fallback_and_stay_finite() {
    let rows = vec![row![1.5f64], row![2.5f64], row![Value::Null], row![4.0f64]];
    let frame = FrameSpec {
        units: FrameUnits::Rows,
        start: Bound::Preceding(1),
        end: Bound::CurrentRow,
    };
    let sums = run(
        rows,
        &[],
        &SortSpec::empty(),
        WindowFunction::Sum(a(0)),
        Some(frame),
    );
    assert_eq!(sums[0], Value::Float(1.5));
    assert_eq!(sums[1], Value::Float(4.0));
    assert_eq!(sums[2], Value::Float(2.5));
    assert_eq!(sums[3], Value::Float(4.0));
}
