//! The tracing subsystem's contracts, end to end:
//!
//! * **Bit-identity** — executing any chain (FS / HS / FS→SS / `Par{Fs}`,
//!   bounded or unbounded pool) with a span recorder attached changes no
//!   output row, no modeled counter and no pool counter: sinks only read
//!   the clock.
//! * **Span balance** — every opened span closes (guards are RAII), and
//!   within each thread lane the recorded spans nest laminarly: two spans
//!   either disjoint or contained, worker lanes included.
//! * **Exporter round-trip** — the Chrome trace-event JSON re-parses with
//!   the in-tree parser and carries every recorded span; a traced
//!   4-worker parallel chain interleaves at least two thread lanes.
//! * **EXPLAIN ANALYZE shape** — the rendered table pins its column set
//!   and row count for both a serial and a `Par{...}` plan.

use wfopt::common::{Json, TraceSink};
use wfopt::core::cost::TableStats;
use wfopt::core::plan::{finalize_chain, Plan, PlanContext, PlanStep, ReorderOp};
use wfopt::core::props::SegProps;
use wfopt::core::runtime::{execute_plan, explain_analyze, ExecEnv};
use wfopt::core::spec::WindowSpec;
use wfopt::prelude::*;

fn a(i: usize) -> AttrId {
    AttrId::new(i)
}
fn key(ids: &[usize]) -> SortSpec {
    SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
}

/// (p ~24 partitions, k order key with ties, v value, w ~16 partitions) in
/// scrambled order — enough rows to spill at small budgets.
fn build_table(rows_n: usize) -> Table {
    let schema = Schema::of(&[
        ("p", DataType::Int),
        ("k", DataType::Int),
        ("v", DataType::Int),
        ("w", DataType::Int),
    ]);
    let mut t = Table::new(schema);
    let mut state = 0x9e3779b97f4a7c15u64;
    for _ in 0..rows_n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = state >> 16;
        t.push(Row::new(vec![
            Value::Int((r % 24) as i64),
            Value::Int(((r >> 8) % 50) as i64),
            Value::Int(((r >> 16) % 1000) as i64),
            Value::Int(((r >> 24) % 16) as i64),
        ]));
    }
    t
}

fn rank_specs() -> Vec<WindowSpec> {
    vec![
        WindowSpec::rank("r_pk", vec![a(0)], key(&[1])),
        WindowSpec::rank("r_pv", vec![a(0)], key(&[2])),
    ]
}

/// Single-step plan over spec 0 with the given head reorder.
fn one_step_plan(stats: &TableStats, m: u64, reorder: ReorderOp) -> Plan {
    let specs = rank_specs();
    let ctx = PlanContext::new(stats, m);
    finalize_chain(
        "trace",
        &specs[..1],
        &SegProps::unordered(),
        1,
        vec![PlanStep { wf: 0, reorder }],
        &ctx,
    )
}

/// Two-step `FS→ wf0  SS→ wf1` chain (the SS step rides on the head sort's
/// order), optionally with the head parallelized at `workers` shards.
fn chain_plan(stats: &TableStats, m: u64, workers: Option<usize>) -> Plan {
    let specs = rank_specs();
    let ctx = PlanContext::new(stats, m);
    let fs = ReorderOp::Fs { key: key(&[0, 1]) };
    let head = match workers {
        None => fs,
        Some(w) => ReorderOp::Par {
            inner: Box::new(fs),
            workers: w,
        },
    };
    finalize_chain(
        "trace_chain",
        &specs,
        &SegProps::unordered(),
        1,
        vec![
            PlanStep {
                wf: 0,
                reorder: head,
            },
            PlanStep {
                wf: 1,
                reorder: ReorderOp::Ss {
                    alpha: key(&[0]),
                    beta: key(&[2]),
                },
            },
        ],
        &ctx,
    )
}

fn rows_key(t: &Table) -> Vec<String> {
    t.rows().iter().map(|r| format!("{r:?}")).collect()
}

/// Tracing on vs off: identical rows, identical modeled counters,
/// identical pool counters — across chain shapes and pool regimes.
#[test]
fn tracing_is_bit_identical_across_chains_and_pools() {
    let table = build_table(4000);
    let stats = TableStats::from_table(&table);
    let m = 8u64;
    let hs = ReorderOp::Hs {
        whk: AttrSet::from_iter([a(0)]),
        key: key(&[0, 1]),
        n_buckets: wfopt::core::cost::hs_bucket_count(&stats, &AttrSet::from_iter([a(0)]), m),
        mfv: vec![],
    };
    let plans: Vec<(&str, Plan)> = vec![
        (
            "fs",
            one_step_plan(&stats, m, ReorderOp::Fs { key: key(&[0, 1]) }),
        ),
        ("hs", one_step_plan(&stats, m, hs)),
        ("fs_ss_chain", chain_plan(&stats, m, None)),
        ("par_fs_chain", chain_plan(&stats, m, Some(4))),
    ];
    for (name, plan) in &plans {
        for bounded in [true, false] {
            let mk_env = || {
                let env = ExecEnv::with_memory_blocks(m);
                if bounded {
                    env
                } else {
                    env.with_unbounded_pool()
                }
            };
            let off_env = mk_env();
            let off = execute_plan(plan, &table, &off_env).expect("untraced run");
            let sink = TraceSink::enabled();
            let on_env = mk_env().with_trace(sink.clone());
            let on = execute_plan(plan, &table, &on_env).expect("traced run");

            assert_eq!(
                rows_key(&off.table),
                rows_key(&on.table),
                "{name} bounded={bounded}: rows must not change under tracing"
            );
            assert_eq!(
                off.work, on.work,
                "{name} bounded={bounded}: modeled counters must not change"
            );
            assert_eq!(
                off.store, on.store,
                "{name} bounded={bounded}: pool counters must not change"
            );
            assert_eq!(
                off.worker_peak_blocks, on.worker_peak_blocks,
                "{name} bounded={bounded}: worker peaks must not change"
            );
            // The traced run actually recorded something, and balanced.
            assert_eq!(sink.open_spans(), 0, "{name}: dangling span guard");
            assert!(
                !sink.records().is_empty(),
                "{name}: traced run recorded no spans"
            );
            // The untraced environment really was the no-op sink.
            assert!(!off_env.trace().is_enabled());
        }
    }
}

/// Per-lane laminar nesting: within a lane, any two spans are disjoint or
/// contained (1 µs slack for timestamp truncation), and every lane's
/// depths start at 0.
#[test]
fn spans_balance_and_nest_within_every_lane() {
    let table = build_table(3000);
    let stats = TableStats::from_table(&table);
    let plan = chain_plan(&stats, 8, Some(4));
    let sink = TraceSink::enabled();
    let env = ExecEnv::with_memory_blocks(8)
        .with_worker_threads(4)
        .with_trace(sink.clone());
    execute_plan(&plan, &table, &env).expect("traced run");
    assert_eq!(sink.open_spans(), 0, "every open span must have closed");

    let records = sink.records();
    assert!(!records.is_empty());
    let lanes: std::collections::BTreeSet<u64> = records.iter().map(|r| r.lane).collect();
    for lane in lanes {
        let in_lane: Vec<_> = records.iter().filter(|r| r.lane == lane).collect();
        assert!(
            in_lane.iter().any(|r| r.depth == 0),
            "lane {lane} has no top-level span"
        );
        for r in &in_lane {
            let end = r.start_us + r.dur_us;
            if r.depth > 0 {
                // Some shallower span of this lane contains it.
                assert!(
                    in_lane.iter().any(|p| {
                        p.depth < r.depth
                            && p.start_us <= r.start_us
                            && p.start_us + p.dur_us + 1 >= end
                    }),
                    "lane {lane}: span {:?} (depth {}) has no enclosing parent",
                    r.name,
                    r.depth
                );
            }
            for other in &in_lane {
                let o_end = other.start_us + other.dur_us;
                let disjoint = o_end <= r.start_us + 1 || end <= other.start_us + 1;
                let contains = other.start_us <= r.start_us && end <= o_end + 1;
                let contained = r.start_us <= other.start_us && o_end <= end + 1;
                assert!(
                    disjoint || contains || contained,
                    "lane {lane}: spans {:?} and {:?} partially overlap",
                    r.name,
                    other.name
                );
            }
        }
    }
}

/// The Chrome export re-parses with the in-tree JSON parser, carries every
/// span, and a 4-worker parallel chain interleaves >= 2 thread lanes.
#[test]
fn chrome_export_roundtrips_and_par_chain_gets_worker_lanes() {
    let table = build_table(3000);
    let stats = TableStats::from_table(&table);
    let plan = chain_plan(&stats, 8, Some(4));
    let sink = TraceSink::enabled();
    let env = ExecEnv::with_memory_blocks(8)
        .with_worker_threads(4)
        .with_trace(sink.clone());
    execute_plan(&plan, &table, &env).expect("traced run");

    let records = sink.records();
    let doc = Json::parse(&sink.to_chrome_json()).expect("chrome export parses");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .collect();
    assert_eq!(complete.len(), records.len(), "every span exports");
    let lanes: std::collections::BTreeSet<u64> = complete
        .iter()
        .filter_map(|e| e.get("tid").and_then(|t| t.as_u64()))
        .collect();
    assert!(
        lanes.len() >= 2,
        "parallel chain must interleave >= 2 lanes, got {}",
        lanes.len()
    );
    // Worker spans live on lanes of their own, away from the driver lane.
    let driver_lane = complete
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("scan+filter"))
        .and_then(|e| e.get("tid").and_then(|t| t.as_u64()))
        .expect("driver step span present");
    let worker_lanes: std::collections::BTreeSet<u64> = complete
        .iter()
        .filter(|e| {
            e.get("name")
                .and_then(|n| n.as_str())
                .is_some_and(|n| n.starts_with("chain_worker") || n.starts_with("sort_worker"))
        })
        .filter_map(|e| e.get("tid").and_then(|t| t.as_u64()))
        .collect();
    assert!(!worker_lanes.is_empty(), "no worker spans recorded");
    assert!(
        !worker_lanes.contains(&driver_lane),
        "worker spans must not share the driver's lane"
    );
    // The folded-stacks emitter agrees on total self time > 0.
    assert!(sink.to_folded_stacks().lines().all(|l| l
        .rsplit(' ')
        .next()
        .unwrap()
        .parse::<u64>()
        .is_ok()));
}

/// EXPLAIN ANALYZE shape pin: column header, one data row per chain step
/// (scan included), a total row and the residency footers — for a serial
/// and a parallel plan.
#[test]
fn explain_analyze_shape_is_pinned() {
    let table = build_table(3000);
    let stats = TableStats::from_table(&table);
    for (name, plan, par) in [
        ("serial", chain_plan(&stats, 8, None), false),
        ("par", chain_plan(&stats, 8, Some(4)), true),
    ] {
        let env = ExecEnv::with_memory_blocks(8).with_worker_threads(2);
        let (report, text) = explain_analyze(&plan, &table, &env).expect("explain analyze");
        // The EXPLAIN tree leads.
        assert!(text.starts_with("input:"), "{name}: {text}");
        if par {
            assert!(text.contains("Parallel workers=4"), "{name}: {text}");
        }
        // Pinned column set, in order.
        let header = text
            .lines()
            .find(|l| l.starts_with("step"))
            .unwrap_or_else(|| panic!("{name}: no header in {text}"));
        let cols: Vec<&str> = header.split_whitespace().collect();
        assert_eq!(
            cols,
            [
                "step", "wall", "ms", "model", "ms", "Δ", "ms", "rows", "segs", "cmp", "spill",
                "B", "class"
            ],
            "{name}: header drifted"
        );
        // One data row per step metric between the two rules, then the
        // total row.
        let lines: Vec<&str> = text.lines().collect();
        let rules: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.starts_with('-') && l.contains("  -"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(rules.len(), 2, "{name}: expected two rule lines\n{text}");
        assert_eq!(
            rules[1] - rules[0] - 1,
            report.step_metrics.len(),
            "{name}: one row per chain step (scan included)\n{text}"
        );
        assert!(
            lines[rules[1] + 1].starts_with("total"),
            "{name}: total row follows the closing rule\n{text}"
        );
        assert!(text.contains("peak residency:"), "{name}");
        assert!(text.contains("pool traffic:"), "{name}");
        if par {
            assert!(
                text.contains("worker peaks: ["),
                "{name}: parallel run must list per-worker peaks\n{text}"
            );
            assert!(!report.worker_peak_blocks.is_empty(), "{name}");
        }
        // The scan row and every step label render.
        for m in &report.step_metrics {
            assert!(
                text.contains(&m.label),
                "{name}: missing row for {}",
                m.label
            );
        }
    }
}
