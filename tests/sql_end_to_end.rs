//! SQL front end → planner → executor → ORDER BY, end to end — through the
//! session API: every statement runs via `Session::prepare` → `execute`.

mod common;

use common::{column_by_key, random_table, reference_rank};
use wfopt::prelude::*;

fn run_sql(sql: &str, table: &Table, scheme: Scheme, mem: u64) -> (Table, WindowQuery) {
    let db = DatabaseConfig::new()
        .scheme(scheme)
        .per_query_blocks(mem)
        .open();
    db.register("t", table.clone()).unwrap();
    let prepared = db.session().prepare(sql).expect("parse+bind+plan");
    let query = prepared.window_query().clone();
    let out = prepared.execute().expect("execute").table;
    (out, query)
}

#[test]
fn rank_via_sql_matches_reference() {
    let table = random_table(600, &[9, 31], 11);
    let (out, query) = run_sql(
        "SELECT *, rank() OVER (PARTITION BY c0 ORDER BY c1) AS r FROM t",
        &table,
        Scheme::Cso,
        8,
    );
    let expected = reference_rank(&table, &query.specs[0], AttrId::new(0));
    let got = column_by_key(&out, AttrId::new(0), AttrId::new(3));
    for (id, rank) in expected {
        assert_eq!(got[&id].as_int(), Some(rank));
    }
}

#[test]
fn where_clause_filters_before_windows() {
    let table = random_table(500, &[8, 40], 19);
    let (out, query) = run_sql(
        "SELECT *, rank() OVER (PARTITION BY c0 ORDER BY c1) AS r FROM t \
         WHERE c1 >= 10 AND c0 <> 3",
        &table,
        Scheme::Cso,
        8,
    );
    assert!(query.filter.is_some());
    let c0 = AttrId::new(1);
    let c1 = AttrId::new(2);
    let expected_rows = table
        .rows()
        .iter()
        .filter(|r| r.get(c1).as_int().unwrap() >= 10 && r.get(c0).as_int().unwrap() != 3)
        .count();
    assert!(expected_rows > 0 && expected_rows < table.row_count());
    assert_eq!(out.row_count(), expected_rows);
    assert!(out
        .rows()
        .iter()
        .all(|r| r.get(c1).as_int().unwrap() >= 10 && r.get(c0).as_int().unwrap() != 3));
    // Ranks are computed over the *filtered* relation: build the reference
    // on a pre-filtered table.
    let mut filtered = Table::new(table.schema().clone());
    for row in table.rows() {
        if row.get(c1).as_int().unwrap() >= 10 && row.get(c0).as_int().unwrap() != 3 {
            filtered.push(row.clone());
        }
    }
    let expected = reference_rank(&filtered, &query.specs[0], AttrId::new(0));
    let got = column_by_key(&out, AttrId::new(0), AttrId::new(3));
    for (id, rank) in expected {
        assert_eq!(got[&id].as_int(), Some(rank), "id {id}");
    }
}

#[test]
fn order_by_is_applied() {
    let table = random_table(300, &[7, 50], 12);
    let (out, _) = run_sql(
        "SELECT *, rank() OVER (PARTITION BY c0 ORDER BY c1) AS r \
         FROM t ORDER BY c0 DESC, r",
        &table,
        Scheme::Cso,
        16,
    );
    // Verify (c0 desc, r asc) ordering.
    let c0 = AttrId::new(1);
    let r = AttrId::new(3);
    for w in out.rows().windows(2) {
        let a = (
            w[0].get(c0).as_int().unwrap(),
            w[0].get(r).as_int().unwrap(),
        );
        let b = (
            w[1].get(c0).as_int().unwrap(),
            w[1].get(r).as_int().unwrap(),
        );
        assert!(
            a.0 > b.0 || (a.0 == b.0 && a.1 <= b.1),
            "ordering violated: {a:?} then {b:?}"
        );
    }
}

#[test]
fn aggregates_and_frames_via_sql() {
    // Deterministic small table for exact frame checks.
    let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
    let mut table = Table::new(schema);
    for (g, v) in [(1, 10), (1, 20), (1, 30), (2, 5), (2, 15)] {
        table.push(Row::new(vec![g.into(), v.into()]));
    }
    let (out, _) = run_sql(
        "SELECT *, sum(v) OVER (PARTITION BY g ORDER BY v) AS rsum, \
         avg(v) OVER (PARTITION BY g ORDER BY v ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) \
         AS mavg FROM t",
        &table,
        Scheme::Cso,
        8,
    );

    // Collect by (g, v) since ids are absent here.
    let mut by_gv = std::collections::HashMap::new();
    for row in out.rows() {
        let g = row.get(AttrId::new(0)).as_int().unwrap();
        let v = row.get(AttrId::new(1)).as_int().unwrap();
        let rsum = row.get(AttrId::new(2)).as_int().unwrap();
        let mavg = row.get(AttrId::new(3)).as_f64().unwrap();
        by_gv.insert((g, v), (rsum, mavg));
    }
    assert_eq!(by_gv[&(1, 10)], (10, 10.0));
    assert_eq!(by_gv[&(1, 20)], (30, 15.0));
    assert_eq!(by_gv[&(1, 30)], (60, 25.0));
    assert_eq!(by_gv[&(2, 5)], (5, 5.0));
    assert_eq!(by_gv[&(2, 15)], (20, 10.0));
}

#[test]
fn multiple_window_functions_one_statement() {
    let table = random_table(400, &[6, 17, 29], 13);
    let (out, query) = run_sql(
        "SELECT *, \
         rank() OVER (PARTITION BY c0 ORDER BY c1) AS r1, \
         rank() OVER (PARTITION BY c0 ORDER BY c2) AS r2, \
         rank() OVER (ORDER BY c1) AS r3 \
         FROM t",
        &table,
        Scheme::Cso,
        8,
    );
    for (i, spec) in query.specs.iter().enumerate() {
        let got = column_by_key(&out, AttrId::new(0), AttrId::new(4 + i));
        let expected = reference_rank(&table, spec, AttrId::new(0));
        for (id, rank) in expected {
            assert_eq!(got[&id].as_int(), Some(rank), "column {}", spec.name);
        }
    }
}
