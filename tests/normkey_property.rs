//! Seeded property tests (SplitMix64, PR-1 convention) for the normalized
//! byte-comparable key encoding: on arbitrary rows — NULLs, NaN/±0.0
//! floats, empty strings, embedded-NUL strings, multi-column keys, every
//! direction × null-placement combination — byte order must agree exactly
//! with [`RowComparator`], and a row is either faithfully encoded or
//! reported as non-normalizable (never silently mis-ordered).

use wfopt::common::{
    Direction, KeyNormalizer, NullOrder, OrdElem, Row, RowComparator, SortSpec, Value,
};
use wfopt::datagen::rng::SplitMix64;
use wfopt::prelude::AttrId;

/// A random value biased toward edge cases.
fn arb_value(rng: &mut SplitMix64) -> Value {
    match rng.random_below(12) {
        0 => Value::Null,
        1 => Value::Int(rng.next_u64() as i64), // often outside ±2^53
        2 => Value::Int((rng.next_u64() % 2001) as i64 - 1000),
        3 => Value::Int(i64::from(rng.next_u64() as i32)),
        4 => Value::Float(f64::from_bits(rng.next_u64())), // any bits incl. NaNs
        5 => Value::Float((rng.next_u64() % 2001) as f64 - 1000.0),
        6 => Value::Float(
            *[-0.0, 0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN]
                .get(rng.random_below_usize(5))
                .unwrap(),
        ),
        7 => Value::str(""),
        8 => Value::str("a\u{0}b"),
        _ => {
            let len = rng.random_below_usize(6);
            let s: String = (0..len)
                .map(|_| (b'a' + (rng.random_below(4) as u8)) as char)
                .collect();
            Value::str(s)
        }
    }
}

fn arb_spec(rng: &mut SplitMix64, arity: usize) -> SortSpec {
    SortSpec::new(
        (0..arity)
            .map(|i| OrdElem {
                attr: AttrId::new(i),
                dir: if rng.random_below(2) == 0 {
                    Direction::Asc
                } else {
                    Direction::Desc
                },
                nulls: if rng.random_below(2) == 0 {
                    NullOrder::First
                } else {
                    NullOrder::Last
                },
            })
            .collect(),
    )
}

#[test]
fn byte_order_agrees_with_comparator_on_random_rows() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF_CAFE);
    let mut compared = 0u64;
    for _ in 0..200 {
        let arity = rng.random_inclusive_usize(1, 4);
        let spec = arb_spec(&mut rng, arity);
        let norm = KeyNormalizer::new(&spec);
        let cmp = RowComparator::new(&spec);
        let rows: Vec<Row> = (0..20)
            .map(|_| Row::new((0..arity).map(|_| arb_value(&mut rng)).collect()))
            .collect();
        let keys: Vec<Option<Vec<u8>>> = rows.iter().map(|r| norm.encode(r)).collect();
        for (i, a) in rows.iter().enumerate() {
            for (j, b) in rows.iter().enumerate() {
                let (Some(ka), Some(kb)) = (&keys[i], &keys[j]) else {
                    continue;
                };
                compared += 1;
                assert_eq!(ka.cmp(kb), cmp.compare(a, b), "spec {spec}: row {a} vs {b}");
            }
        }
    }
    assert!(compared > 30_000, "property exercised ({compared} pairs)");
}

#[test]
fn non_normalizable_is_exactly_the_lossy_ints() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED);
    let spec = SortSpec::new(vec![OrdElem::asc(AttrId::new(0))]);
    let norm = KeyNormalizer::new(&spec);
    for _ in 0..5_000 {
        let v = arb_value(&mut rng);
        let row = Row::new(vec![v.clone()]);
        let lossy = matches!(&v, Value::Int(i) if (*i as f64) as i128 != *i as i128);
        assert_eq!(
            norm.encode(&row).is_none(),
            lossy,
            "value {v:?}: only lossy ints may fail to normalize"
        );
    }
}

#[test]
fn byte_equality_iff_comparator_equality() {
    // Peer detection relies on: equal keys ⟺ comparator-equal rows.
    let mut rng = SplitMix64::seed_from_u64(0xE0_0E);
    let spec = SortSpec::new(vec![
        OrdElem::asc(AttrId::new(0)),
        OrdElem::desc(AttrId::new(1)),
    ]);
    let norm = KeyNormalizer::new(&spec);
    let cmp = RowComparator::new(&spec);
    let rows: Vec<Row> = (0..400)
        .map(|_| Row::new(vec![arb_value(&mut rng), arb_value(&mut rng)]))
        .collect();
    for a in &rows {
        for b in &rows {
            let (Some(ka), Some(kb)) = (norm.encode(a), norm.encode(b)) else {
                continue;
            };
            assert_eq!(ka == kb, cmp.equal(a, b), "{a} vs {b}");
        }
    }
}
