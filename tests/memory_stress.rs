//! Heavy-spill stress: every scheme on a larger table with the minimum
//! possible sort memory (2 blocks), where every operator exercises its
//! external path, plus determinism checks.

mod common;

use common::{column_by_key, random_table, reference_rank};
use wfopt::core::spec::WindowSpec;
use wfopt::prelude::*;

fn rank_spec(name: &str, wpk: &[usize], wok: &[usize]) -> WindowSpec {
    WindowSpec::rank(
        name,
        wpk.iter().map(|&i| AttrId::new(i)).collect(),
        SortSpec::new(wok.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect()),
    )
}

#[test]
fn all_schemes_at_two_blocks_on_10k_rows() {
    let table = random_table(10_000, &[25, 60, 90], 42);
    let specs = vec![
        rank_spec("wf1", &[1], &[2]),
        rank_spec("wf2", &[1], &[3]),
        rank_spec("wf3", &[], &[2, 3]),
    ];
    let query = WindowQuery::new(table.schema().clone(), specs.clone());
    let stats = TableStats::from_table(&table);

    for scheme in [Scheme::Cso, Scheme::Bfo, Scheme::Orcl, Scheme::Psql] {
        let env = ExecEnv::with_memory_blocks(2);
        let plan = optimize(&query, &stats, scheme, &env).unwrap();
        let report = execute_plan(&plan, &table, &env).unwrap();
        assert!(
            report.work.blocks_written > 0,
            "{scheme}: two blocks of memory must force spilling"
        );
        for (i, spec) in specs.iter().enumerate() {
            let got = column_by_key(&report.table, AttrId::new(0), AttrId::new(4 + i));
            let expected = reference_rank(&table, spec, AttrId::new(0));
            for (id, rank) in &expected {
                assert_eq!(
                    got[id].as_int(),
                    Some(*rank),
                    "{scheme}/{}: id {id}",
                    spec.name
                );
            }
        }
    }
}

/// The residency bound the segment store exists for: a chain at minimum
/// memory over a table many times `M` keeps its *tracked* resident set at
/// `O(M + largest unit)` — and produces bit-identical rows and modeled
/// counters to the unbounded-pool (pre-store) pipeline. All specs are
/// partitioned, so the largest unit a window step must buffer is the
/// largest WPK partition (a global window's unit would be the relation —
/// covered by the suite above, bounded only trivially).
#[test]
fn peak_residency_is_bounded_and_counters_match_unbounded_pool() {
    let table = random_table(10_000, &[25, 60, 90], 42);
    let specs = vec![
        rank_spec("wf1", &[1], &[2]),
        rank_spec("wf2", &[1], &[3]),
        rank_spec("wf3", &[2], &[3]),
    ];
    let query = WindowQuery::new(table.schema().clone(), specs);
    let stats = TableStats::from_table(&table);
    // Largest unit any operator must hold: the largest partition of either
    // partition column.
    let mut largest_unit = 0usize;
    for col in [1usize, 2] {
        let mut per_part = std::collections::HashMap::new();
        for row in table.rows() {
            *per_part
                .entry(row.get(AttrId::new(col)).clone())
                .or_insert(0usize) += row.encoded_len();
        }
        largest_unit = largest_unit.max(per_part.values().copied().max().unwrap());
    }

    for scheme in [Scheme::Cso, Scheme::Bfo, Scheme::Orcl, Scheme::Psql] {
        let env = ExecEnv::with_memory_blocks(2);
        let plan = optimize(&query, &stats, scheme, &env).unwrap();
        let report = execute_plan(&plan, &table, &env).unwrap();

        let snap = report.store;
        let budget = 2 * wfopt::storage::BLOCK_SIZE;
        // O(M + largest unit): a small constant covers the handful of
        // segments in flight between adjacent operators (one draining, one
        // building) plus rank's buffered partition.
        assert!(
            snap.peak_resident_bytes <= 4 * (budget + largest_unit),
            "{scheme}: peak resident {} exceeds O(M + unit) bound ({} + {})",
            snap.peak_resident_bytes,
            budget,
            largest_unit
        );
        assert!(
            snap.peak_resident_bytes < table.byte_size() / 2,
            "{scheme}: peak resident {} is relation-sized ({})",
            snap.peak_resident_bytes,
            table.byte_size()
        );
        assert!(
            snap.spill_blocks_written > 0,
            "{scheme}: a 2-block pool over a {}-block table must pool-spill",
            table.block_count()
        );

        // Reference: the identical plan with an unbounded pool — the
        // pre-store pipeline. Rows and modeled counters are bit-identical;
        // only physical residency differs.
        let env_ref = ExecEnv::with_memory_blocks(2).with_unbounded_pool();
        let report_ref = execute_plan(&plan, &table, &env_ref).unwrap();
        assert_eq!(report.table.rows(), report_ref.table.rows(), "{scheme}");
        assert_eq!(report.work, report_ref.work, "{scheme}: modeled counters");
        assert_eq!(report_ref.store.spill_blocks_written, 0);
        // The unbounded pipeline keeps whole segments (buckets, sorted
        // runs of partitions) resident; the bounded one only `M` + the
        // unit it is working on.
        assert!(
            snap.peak_resident_rows < report_ref.store.peak_resident_rows,
            "{scheme}: bounded peak ({} rows) should be below unbounded ({} rows)",
            snap.peak_resident_rows,
            report_ref.store.peak_resident_rows
        );
    }
}

#[test]
fn execution_is_deterministic() {
    let table = random_table(3_000, &[13, 40], 7);
    let query = WindowQuery::new(
        table.schema().clone(),
        vec![rank_spec("a", &[1], &[2]), rank_spec("b", &[2], &[1])],
    );
    let stats = TableStats::from_table(&table);
    let run = || {
        let env = ExecEnv::with_memory_blocks(3);
        let plan = optimize(&query, &stats, Scheme::Cso, &env).unwrap();
        let report = execute_plan(&plan, &table, &env).unwrap();
        (
            plan.chain_string(),
            report.table.rows().to_vec(),
            report.work,
        )
    };
    let (c1, r1, w1) = run();
    let (c2, r2, w2) = run();
    assert_eq!(c1, c2, "plans must be deterministic");
    assert_eq!(r1, r2, "row output must be deterministic");
    assert_eq!(w1, w2, "work counters must be deterministic");
}

#[test]
fn modeled_cost_tracks_measured_io_ordering() {
    // The planner's estimate must order FS-heavy vs shared plans the same
    // way measured I/O does (cost-model sanity at the plan level). Pinned
    // serial: under a worker budget CSO may pick a parallel span, whose
    // *elapsed* estimate is allowed to undercut PSQL while its *total*
    // measured I/O (scatter + per-worker sorts) is higher — the ordering
    // this test checks only holds between serial plans.
    let table = random_table(8_000, &[20, 50], 11);
    let query = WindowQuery::new(
        table.schema().clone(),
        vec![rank_spec("a", &[1], &[2]), rank_spec("b", &[1], &[0])],
    );
    let stats = TableStats::from_table(&table);
    let env_cso = ExecEnv::with_memory_blocks(4).with_par_workers(1);
    let cso = optimize(&query, &stats, Scheme::Cso, &env_cso).unwrap();
    let cso_report = execute_plan(&cso, &table, &env_cso).unwrap();

    let env_psql = ExecEnv::with_memory_blocks(4);
    let psql = optimize(&query, &stats, Scheme::Psql, &env_psql).unwrap();
    let psql_report = execute_plan(&psql, &table, &env_psql).unwrap();

    let w = env_cso.weights();
    assert!(
        cso.est_cost.ms(&w) < psql.est_cost.ms(&w),
        "estimate ordering"
    );
    assert!(
        cso_report.work.io_blocks() < psql_report.work.io_blocks(),
        "measured ordering: cso {} vs psql {}",
        cso_report.work.io_blocks(),
        psql_report.work.io_blocks()
    );
}
