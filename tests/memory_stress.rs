//! Heavy-spill stress: every scheme on a larger table with the minimum
//! possible sort memory (2 blocks), where every operator exercises its
//! external path, plus determinism checks.

mod common;

use common::{column_by_key, random_table, reference_rank};
use wfopt::core::spec::WindowSpec;
use wfopt::prelude::*;

fn rank_spec(name: &str, wpk: &[usize], wok: &[usize]) -> WindowSpec {
    WindowSpec::rank(
        name,
        wpk.iter().map(|&i| AttrId::new(i)).collect(),
        SortSpec::new(wok.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect()),
    )
}

#[test]
fn all_schemes_at_two_blocks_on_10k_rows() {
    let table = random_table(10_000, &[25, 60, 90], 42);
    let specs = vec![
        rank_spec("wf1", &[1], &[2]),
        rank_spec("wf2", &[1], &[3]),
        rank_spec("wf3", &[], &[2, 3]),
    ];
    let query = WindowQuery::new(table.schema().clone(), specs.clone());
    let stats = TableStats::from_table(&table);

    for scheme in [Scheme::Cso, Scheme::Bfo, Scheme::Orcl, Scheme::Psql] {
        let env = ExecEnv::with_memory_blocks(2);
        let plan = optimize(&query, &stats, scheme, &env).unwrap();
        let report = execute_plan(&plan, &table, &env).unwrap();
        assert!(
            report.work.blocks_written > 0,
            "{scheme}: two blocks of memory must force spilling"
        );
        for (i, spec) in specs.iter().enumerate() {
            let got = column_by_key(&report.table, AttrId::new(0), AttrId::new(4 + i));
            let expected = reference_rank(&table, spec, AttrId::new(0));
            for (id, rank) in &expected {
                assert_eq!(
                    got[id].as_int(),
                    Some(*rank),
                    "{scheme}/{}: id {id}",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn execution_is_deterministic() {
    let table = random_table(3_000, &[13, 40], 7);
    let query = WindowQuery::new(
        table.schema().clone(),
        vec![rank_spec("a", &[1], &[2]), rank_spec("b", &[2], &[1])],
    );
    let stats = TableStats::from_table(&table);
    let run = || {
        let env = ExecEnv::with_memory_blocks(3);
        let plan = optimize(&query, &stats, Scheme::Cso, &env).unwrap();
        let report = execute_plan(&plan, &table, &env).unwrap();
        (
            plan.chain_string(),
            report.table.rows().to_vec(),
            report.work,
        )
    };
    let (c1, r1, w1) = run();
    let (c2, r2, w2) = run();
    assert_eq!(c1, c2, "plans must be deterministic");
    assert_eq!(r1, r2, "row output must be deterministic");
    assert_eq!(w1, w2, "work counters must be deterministic");
}

#[test]
fn modeled_cost_tracks_measured_io_ordering() {
    // The planner's estimate must order FS-heavy vs shared plans the same
    // way measured I/O does (cost-model sanity at the plan level).
    let table = random_table(8_000, &[20, 50], 11);
    let query = WindowQuery::new(
        table.schema().clone(),
        vec![rank_spec("a", &[1], &[2]), rank_spec("b", &[1], &[0])],
    );
    let stats = TableStats::from_table(&table);
    let env_cso = ExecEnv::with_memory_blocks(4);
    let cso = optimize(&query, &stats, Scheme::Cso, &env_cso).unwrap();
    let cso_report = execute_plan(&cso, &table, &env_cso).unwrap();

    let env_psql = ExecEnv::with_memory_blocks(4);
    let psql = optimize(&query, &stats, Scheme::Psql, &env_psql).unwrap();
    let psql_report = execute_plan(&psql, &table, &env_psql).unwrap();

    let w = env_cso.weights();
    assert!(
        cso.est_cost.ms(&w) < psql.est_cost.ms(&w),
        "estimate ordering"
    );
    assert!(
        cso_report.work.io_blocks() < psql_report.work.io_blocks(),
        "measured ordering: cso {} vs psql {}",
        cso_report.work.io_blocks(),
        psql_report.work.io_blocks()
    );
}
