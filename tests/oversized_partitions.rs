//! Oversized-partition window evaluation: brute-force equivalence at tiny
//! `M`, where every partition is far larger than the sort/pool budget and
//! the window operator must run its spill-backed streaming paths (Shi &
//! Wang-style one-pass aggregation for the SQL-default frame, one-buffered-
//! partition evaluation for everything else).
//!
//! Each case is checked three ways:
//! * engine at tiny `M` (spilled segments, streaming evaluation) vs an
//!   independent brute-force evaluator,
//! * engine at large `M` (resident segments, materialized evaluation) vs
//!   the same reference,
//! * tiny-`M` bounded pool vs tiny-`M` **unbounded** pool (the pre-store
//!   pipeline): identical rows and identical modeled counters — pool spill
//!   traffic is physical, never modeled.

use wfopt::exec::window::{Bound, FrameSpec, FrameUnits, WindowFunction};
use wfopt::exec::{drain, FullSortOp, TableScan, WindowOp};
use wfopt::prelude::*;

fn a(i: usize) -> AttrId {
    AttrId::new(i)
}

/// (part, order-key with ties, int value w/ NULLs, float value w/ NULLs).
fn build_table(parts: i64, rows_per_part: i64) -> Table {
    let schema = Schema::of(&[
        ("p", DataType::Int),
        ("k", DataType::Int),
        ("v", DataType::Int),
        ("f", DataType::Float),
    ]);
    let mut t = Table::new(schema);
    // Deterministic scramble so the sort actually works for a living.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rows = Vec::new();
    for p in 0..parts {
        for i in 0..rows_per_part {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = if i % 7 == 3 {
                Value::Null
            } else {
                Value::Int(((state >> 33) as i64 % 1000) - 500)
            };
            let f = if i % 5 == 2 {
                Value::Null
            } else {
                Value::Float((((state >> 21) as i64 % 1000) as f64) / 8.0 - 60.0)
            };
            rows.push((
                state,
                Row::new(vec![Value::Int(p), Value::Int(i / 3), v, f]),
            ));
        }
    }
    rows.sort_by_key(|(s, _)| *s);
    for (_, r) in rows {
        t.push(r);
    }
    t
}

/// Run TableScan → FS(p, k) → Window over the table; return the appended
/// column keyed by row identity (p, k, v-as-debug, f-as-debug, position
/// within its sorted order) — positions are stable because the engine sort
/// is stable.
fn run_chain(
    table: &Table,
    func: WindowFunction,
    frame: Option<FrameSpec>,
    env: &ExecEnv,
) -> Vec<Row> {
    let key = SortSpec::new(vec![OrdElem::asc(a(0)), OrdElem::asc(a(1))]);
    let wpk = AttrSet::from_iter([a(0)]);
    let wok = SortSpec::new(vec![OrdElem::asc(a(1))]);
    let scan = TableScan::new(table, env.op_env().clone());
    let fs = FullSortOp::new(scan, key, env.op_env().clone())
        .with_recorded_prefixes(vec![wpk.clone(), wpk.union(&wok.attr_set())]);
    let mut win = WindowOp::new(fs, wpk, wok, func, frame, env.op_env().clone());
    drain(&mut win).unwrap().into_rows()
}

/// Independent reference over a *given* row order (the engine's sorted
/// output with the appended column stripped — external merge sort is not
/// stable for tied keys, so the reference derives frames from the physical
/// order actually produced and recomputes every value by first principles).
fn brute_force(rows: &[Row], func: &WindowFunction, frame: Option<FrameSpec>) -> Vec<Row> {
    let rows: Vec<Row> = rows.to_vec();
    let frame = frame.unwrap_or(FrameSpec {
        units: FrameUnits::Range,
        start: Bound::UnboundedPreceding,
        end: Bound::CurrentRow,
    });
    let col = match func {
        WindowFunction::Count(c) => *c,
        WindowFunction::Sum(c)
        | WindowFunction::Avg(c)
        | WindowFunction::Min(c)
        | WindowFunction::Max(c) => Some(*c),
        other => panic!("not covered here: {other:?}"),
    };
    let n = rows.len();
    let mut out = rows.clone();
    let mut start = 0usize;
    while start < n {
        let p = rows[start].get(a(0)).as_int().unwrap();
        let mut end = start;
        while end < n && rows[end].get(a(0)).as_int().unwrap() == p {
            end += 1;
        }
        let part = &rows[start..end];
        let m = part.len();
        let key = |i: usize| part[i].get(a(1)).as_int().unwrap();
        for i in 0..m {
            // Resolve the frame as [s, e) over the partition.
            let (s, e) = match frame.units {
                FrameUnits::Rows => {
                    let s = match frame.start {
                        Bound::UnboundedPreceding => 0,
                        Bound::Preceding(k) => i.saturating_sub(k as usize),
                        Bound::CurrentRow => i,
                        Bound::Following(k) => (i + k as usize).min(m),
                        Bound::UnboundedFollowing => m,
                    };
                    let e = match frame.end {
                        Bound::UnboundedPreceding => 0,
                        Bound::Preceding(k) => (i + 1).saturating_sub(k as usize),
                        Bound::CurrentRow => i + 1,
                        Bound::Following(k) => (i + 1 + k as usize).min(m),
                        Bound::UnboundedFollowing => m,
                    };
                    (s.min(m), e.max(s).min(m))
                }
                FrameUnits::Range => {
                    let s = match frame.start {
                        Bound::UnboundedPreceding => 0,
                        Bound::Preceding(k) => {
                            (0..m).position(|j| key(j) >= key(i) - k).unwrap_or(m)
                        }
                        Bound::CurrentRow => (0..m).position(|j| key(j) == key(i)).unwrap(),
                        _ => panic!("unused in this suite"),
                    };
                    let e = match frame.end {
                        Bound::CurrentRow => {
                            m - (0..m).rev().position(|j| key(j) == key(i)).unwrap()
                        }
                        Bound::Following(k) => {
                            m - (0..m).rev().position(|j| key(j) <= key(i) + k).unwrap_or(m)
                        }
                        Bound::UnboundedFollowing => m,
                        _ => panic!("unused in this suite"),
                    };
                    (s, e.max(s))
                }
            };
            let vals: Vec<&Value> = (s..e)
                .map(|j| part[j].get(col.unwrap_or(a(2))))
                .filter(|v| !v.is_null())
                .collect();
            let value = match func {
                WindowFunction::Count(None) => Value::Int((e - s) as i64),
                WindowFunction::Count(Some(_)) => Value::Int(vals.len() as i64),
                WindowFunction::Sum(_) => {
                    if vals.is_empty() {
                        Value::Null
                    } else if vals.iter().all(|v| v.as_int().is_some()) {
                        let s: i128 = vals.iter().map(|v| v.as_int().unwrap() as i128).sum();
                        Value::Int(s.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
                    } else {
                        Value::Float(vals.iter().map(|v| v.as_f64().unwrap()).sum())
                    }
                }
                WindowFunction::Avg(_) => {
                    if vals.is_empty() {
                        Value::Null
                    } else if vals.iter().all(|v| v.as_int().is_some()) {
                        let s: i128 = vals.iter().map(|v| v.as_int().unwrap() as i128).sum();
                        Value::Float(s as f64 / vals.len() as f64)
                    } else {
                        Value::Float(
                            vals.iter().map(|v| v.as_f64().unwrap()).sum::<f64>()
                                / vals.len() as f64,
                        )
                    }
                }
                WindowFunction::Min(_) => {
                    vals.iter().min().cloned().cloned().unwrap_or(Value::Null)
                }
                WindowFunction::Max(_) => {
                    vals.iter().max().cloned().cloned().unwrap_or(Value::Null)
                }
                other => panic!("not covered here: {other:?}"),
            };
            out[start + i].push(value);
        }
        start = end;
    }
    out
}

fn frames() -> Vec<(&'static str, Option<FrameSpec>)> {
    vec![
        ("default-range", None),
        (
            "rows-sliding",
            Some(FrameSpec {
                units: FrameUnits::Rows,
                start: Bound::Preceding(2),
                end: Bound::CurrentRow,
            }),
        ),
        (
            "rows-centered",
            Some(FrameSpec {
                units: FrameUnits::Rows,
                start: Bound::Preceding(1),
                end: Bound::Following(3),
            }),
        ),
        (
            "rows-unbounded-following",
            Some(FrameSpec {
                units: FrameUnits::Rows,
                start: Bound::CurrentRow,
                end: Bound::UnboundedFollowing,
            }),
        ),
        (
            "range-offset",
            Some(FrameSpec {
                units: FrameUnits::Range,
                start: Bound::Preceding(2),
                end: Bound::CurrentRow,
            }),
        ),
    ]
}

fn funcs(col: AttrId) -> Vec<(&'static str, WindowFunction)> {
    vec![
        ("count-star", WindowFunction::Count(None)),
        ("count", WindowFunction::Count(Some(col))),
        ("sum", WindowFunction::Sum(col)),
        ("avg", WindowFunction::Avg(col)),
        ("min", WindowFunction::Min(col)),
        ("max", WindowFunction::Max(col)),
    ]
}

/// The main matrix: 3 partitions × 1200 rows each — every partition is
/// several times the 2-block budget — across count/sum/avg/min/max, ROWS
/// and RANGE frames, int and float value columns.
#[test]
fn oversized_partitions_match_brute_force_across_frames_and_functions() {
    let table = build_table(3, 1200);
    let strip = |rows: &[Row]| -> Vec<Row> {
        rows.iter()
            .map(|r| {
                let mut v = r.values().to_vec();
                v.pop();
                Row::new(v)
            })
            .collect()
    };
    for value_col in [a(2), a(3)] {
        for (fname, frame) in frames() {
            for (gname, func) in funcs(value_col) {
                // Tiny M: partitions ≫ budget, streaming paths.
                let env_small = ExecEnv::with_memory_blocks(2);
                let small = run_chain(&table, func.clone(), frame, &env_small);
                let reference = brute_force(&strip(&small), &func, frame);
                assert_eq!(
                    small, reference,
                    "tiny-M {gname} over {fname} (col {value_col:?})"
                );
                assert!(
                    env_small.store_snapshot().spill_blocks_written > 0,
                    "{gname}/{fname}: tiny pool must actually spill segments"
                );

                // Large M: resident path, same reference machinery.
                let env_big = ExecEnv::with_memory_blocks(1024);
                let big = run_chain(&table, func.clone(), frame, &env_big);
                let reference_big = brute_force(&strip(&big), &func, frame);
                assert_eq!(
                    big, reference_big,
                    "large-M {gname} over {fname} (col {value_col:?})"
                );

                // Bounded vs unbounded pool at tiny M: identical rows and
                // identical modeled counters.
                let env_unbounded = ExecEnv::with_memory_blocks(2).with_unbounded_pool();
                let legacy = run_chain(&table, func.clone(), frame, &env_unbounded);
                assert_eq!(small, legacy, "{gname}/{fname}: rows vs unbounded pool");
                assert_eq!(
                    env_small.tracker().snapshot(),
                    env_unbounded.tracker().snapshot(),
                    "{gname}/{fname}: modeled counters must not see the pool"
                );
                assert_eq!(
                    env_unbounded.store_snapshot().spill_blocks_written,
                    0,
                    "unbounded pool must never spill"
                );
            }
        }
    }
}

/// The streaming one-pass aggregation stays within the pool budget even
/// when a single partition dwarfs it: peak tracked residency is O(M), not
/// O(partition).
#[test]
fn default_frame_streaming_agg_residency_is_o_of_m() {
    let table = build_table(1, 4000); // one partition, ~44 KiB ≫ 2 blocks
    let env = ExecEnv::with_memory_blocks(2);
    let _ = run_chain(&table, WindowFunction::Sum(a(2)), None, &env);
    let snap = env.store_snapshot();
    let budget = 2 * wfopt::storage::BLOCK_SIZE;
    assert!(
        snap.peak_resident_bytes <= 2 * budget,
        "one-pass aggregation must hold O(M): peak {} vs budget {}",
        snap.peak_resident_bytes,
        budget
    );
    assert!(snap.spill_blocks_written > 0);
}

/// The buffered-partition path holds exactly one partition: peak tracked
/// residency is O(M + largest partition) even with many partitions.
#[test]
fn buffered_partition_residency_is_o_of_m_plus_unit() {
    let table = build_table(6, 800);
    let frame = FrameSpec {
        units: FrameUnits::Rows,
        start: Bound::Preceding(2),
        end: Bound::CurrentRow,
    };
    let env = ExecEnv::with_memory_blocks(2);
    let _ = run_chain(&table, WindowFunction::Sum(a(2)), Some(frame), &env);
    let snap = env.store_snapshot();
    let budget = 2 * wfopt::storage::BLOCK_SIZE;
    let partition_bytes = table.byte_size() / 6;
    assert!(
        snap.peak_resident_bytes <= 2 * budget + 2 * partition_bytes,
        "peak {} vs budget {} + partition {}",
        snap.peak_resident_bytes,
        budget,
        partition_bytes
    );
    // And it is genuinely partition-sized, not relation-sized.
    assert!(snap.peak_resident_bytes < table.byte_size() / 2);
}
