//! Oversized-partition window evaluation: brute-force equivalence at tiny
//! `M`, where every partition is far larger than the sort/pool budget and
//! the window operator must run its spill-backed streaming paths — the
//! one-pass spilling aggregation / staged `ntile` (`O(M)`), the
//! ring-buffer path for ranking, navigation and bounded-ROWS frame readers
//! (`O(M + frame)`), and the one-buffered-partition fallback
//! (`O(M + partition)`).
//!
//! Each case is checked three ways:
//! * engine at tiny `M` (spilled segments, streaming evaluation) vs an
//!   independent brute-force evaluator,
//! * engine at large `M` (resident segments, materialized evaluation) vs
//!   the same reference,
//! * tiny-`M` bounded pool vs tiny-`M` **unbounded** pool (the pre-store
//!   pipeline): identical rows and identical modeled counters — pool spill
//!   traffic is physical, never modeled.
//!
//! The ring-class cases additionally assert the store's high-water mark at
//! `M = 1` over partitions ≥ 100× the pool: tracked residency must stay
//! within a small constant of `M + frame`, far below the one-buffered-
//! partition path's `M + partition`.

use wfopt::exec::window::{Bound, FrameSpec, FrameUnits, StreamableEval, WindowFunction};
use wfopt::exec::{drain, FullSortOp, TableScan, WindowOp};
use wfopt::prelude::*;

fn a(i: usize) -> AttrId {
    AttrId::new(i)
}

/// (part, order-key with ties, int value w/ NULLs, float value w/ NULLs).
fn build_table(parts: i64, rows_per_part: i64) -> Table {
    let schema = Schema::of(&[
        ("p", DataType::Int),
        ("k", DataType::Int),
        ("v", DataType::Int),
        ("f", DataType::Float),
    ]);
    let mut t = Table::new(schema);
    // Deterministic scramble so the sort actually works for a living.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rows = Vec::new();
    for p in 0..parts {
        for i in 0..rows_per_part {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = if i % 7 == 3 {
                Value::Null
            } else {
                Value::Int(((state >> 33) as i64 % 1000) - 500)
            };
            let f = if i % 5 == 2 {
                Value::Null
            } else {
                Value::Float((((state >> 21) as i64 % 1000) as f64) / 8.0 - 60.0)
            };
            rows.push((
                state,
                Row::new(vec![Value::Int(p), Value::Int(i / 3), v, f]),
            ));
        }
    }
    rows.sort_by_key(|(s, _)| *s);
    for (_, r) in rows {
        t.push(r);
    }
    t
}

/// Run TableScan → FS(p, k) → Window over the table; return the appended
/// column keyed by row identity (p, k, v-as-debug, f-as-debug, position
/// within its sorted order) — positions are stable because the engine sort
/// is stable.
fn run_chain(
    table: &Table,
    func: WindowFunction,
    frame: Option<FrameSpec>,
    env: &ExecEnv,
) -> Vec<Row> {
    let key = SortSpec::new(vec![OrdElem::asc(a(0)), OrdElem::asc(a(1))]);
    let wpk = AttrSet::from_iter([a(0)]);
    let wok = SortSpec::new(vec![OrdElem::asc(a(1))]);
    let scan = TableScan::new(table, env.op_env().clone());
    let fs = FullSortOp::new(scan, key, env.op_env().clone())
        .with_recorded_prefixes(vec![wpk.clone(), wpk.union(&wok.attr_set())]);
    let mut win = WindowOp::new(fs, wpk, wok, func, frame, env.op_env().clone());
    drain(&mut win).unwrap().into_rows()
}

/// Independent reference over a *given* row order (the engine's sorted
/// output with the appended column stripped — external merge sort is not
/// stable for tied keys, so the reference derives frames from the physical
/// order actually produced and recomputes every value by first principles).
fn brute_force(rows: &[Row], func: &WindowFunction, frame: Option<FrameSpec>) -> Vec<Row> {
    let rows: Vec<Row> = rows.to_vec();
    let frame = frame.unwrap_or(FrameSpec {
        units: FrameUnits::Range,
        start: Bound::UnboundedPreceding,
        end: Bound::CurrentRow,
    });
    let col = match func {
        WindowFunction::Count(c) => *c,
        WindowFunction::Sum(c)
        | WindowFunction::Avg(c)
        | WindowFunction::Min(c)
        | WindowFunction::Max(c)
        | WindowFunction::VarPop(c)
        | WindowFunction::VarSamp(c)
        | WindowFunction::StddevPop(c)
        | WindowFunction::StddevSamp(c) => Some(*c),
        other => panic!("not covered here: {other:?}"),
    };
    let n = rows.len();
    let mut out = rows.clone();
    let mut start = 0usize;
    while start < n {
        let p = rows[start].get(a(0)).as_int().unwrap();
        let mut end = start;
        while end < n && rows[end].get(a(0)).as_int().unwrap() == p {
            end += 1;
        }
        let part = &rows[start..end];
        let m = part.len();
        let key = |i: usize| part[i].get(a(1)).as_int().unwrap();
        for i in 0..m {
            // Resolve the frame as [s, e) over the partition.
            let (s, e) = match frame.units {
                FrameUnits::Rows => {
                    let s = match frame.start {
                        Bound::UnboundedPreceding => 0,
                        Bound::Preceding(k) => i.saturating_sub(k as usize),
                        Bound::CurrentRow => i,
                        Bound::Following(k) => (i + k as usize).min(m),
                        Bound::UnboundedFollowing => m,
                    };
                    let e = match frame.end {
                        Bound::UnboundedPreceding => 0,
                        Bound::Preceding(k) => (i + 1).saturating_sub(k as usize),
                        Bound::CurrentRow => i + 1,
                        Bound::Following(k) => (i + 1 + k as usize).min(m),
                        Bound::UnboundedFollowing => m,
                    };
                    (s.min(m), e.max(s).min(m))
                }
                FrameUnits::Range => {
                    // The key column is sorted within the partition, so
                    // "first index with key ≥ t" / "one past the last with
                    // key ≤ t" are partition points — O(log m) instead of
                    // a linear scan, which matters on the 24k-row
                    // partitions of the M=1 test.
                    let first_ge =
                        |t: i64| part.partition_point(|r| r.get(a(1)).as_int().unwrap() < t);
                    let past_le =
                        |t: i64| part.partition_point(|r| r.get(a(1)).as_int().unwrap() <= t);
                    let s = match frame.start {
                        Bound::UnboundedPreceding => 0,
                        Bound::Preceding(k) => first_ge(key(i) - k),
                        Bound::CurrentRow => first_ge(key(i)),
                        Bound::Following(k) => first_ge(key(i) + k),
                        _ => panic!("unused in this suite"),
                    };
                    let e = match frame.end {
                        Bound::CurrentRow => past_le(key(i)),
                        Bound::Preceding(k) => past_le(key(i) - k),
                        Bound::Following(k) => past_le(key(i) + k),
                        Bound::UnboundedFollowing => m,
                        _ => panic!("unused in this suite"),
                    };
                    (s, e.max(s))
                }
            };
            let vals: Vec<&Value> = (s..e)
                .map(|j| part[j].get(col.unwrap_or(a(2))))
                .filter(|v| !v.is_null())
                .collect();
            let value = match func {
                WindowFunction::Count(None) => Value::Int((e - s) as i64),
                WindowFunction::Count(Some(_)) => Value::Int(vals.len() as i64),
                WindowFunction::Sum(_) => {
                    if vals.is_empty() {
                        Value::Null
                    } else if vals.iter().all(|v| v.as_int().is_some()) {
                        let s: i128 = vals.iter().map(|v| v.as_int().unwrap() as i128).sum();
                        Value::Int(s.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
                    } else {
                        Value::Float(vals.iter().map(|v| v.as_f64().unwrap()).sum())
                    }
                }
                WindowFunction::Avg(_) => {
                    if vals.is_empty() {
                        Value::Null
                    } else if vals.iter().all(|v| v.as_int().is_some()) {
                        let s: i128 = vals.iter().map(|v| v.as_int().unwrap() as i128).sum();
                        Value::Float(s as f64 / vals.len() as f64)
                    } else {
                        Value::Float(
                            vals.iter().map(|v| v.as_f64().unwrap()).sum::<f64>()
                                / vals.len() as f64,
                        )
                    }
                }
                WindowFunction::Min(_) => {
                    vals.iter().min().cloned().cloned().unwrap_or(Value::Null)
                }
                WindowFunction::Max(_) => {
                    vals.iter().max().cloned().cloned().unwrap_or(Value::Null)
                }
                WindowFunction::VarPop(_)
                | WindowFunction::VarSamp(_)
                | WindowFunction::StddevPop(_)
                | WindowFunction::StddevSamp(_) => {
                    // The engine's sum-of-squares identity. The table's
                    // values are small dyadic rationals, so every partial
                    // sum here is exact and the naive accumulation agrees
                    // bit for bit with the engine's prefix differences.
                    let sample = matches!(
                        func,
                        WindowFunction::VarSamp(_) | WindowFunction::StddevSamp(_)
                    );
                    let sqrt = matches!(
                        func,
                        WindowFunction::StddevPop(_) | WindowFunction::StddevSamp(_)
                    );
                    let cnt = vals.len() as f64;
                    let min_n = if sample { 2.0 } else { 1.0 };
                    if cnt < min_n {
                        Value::Null
                    } else {
                        let sum: f64 = vals.iter().map(|v| v.as_f64().unwrap()).sum();
                        let sq: f64 = vals
                            .iter()
                            .map(|v| {
                                let x = v.as_f64().unwrap();
                                x * x
                            })
                            .sum();
                        let ssd = (sq - sum * sum / cnt).max(0.0);
                        let var = ssd / if sample { cnt - 1.0 } else { cnt };
                        Value::Float(if sqrt { var.sqrt() } else { var })
                    }
                }
                other => panic!("not covered here: {other:?}"),
            };
            out[start + i].push(value);
        }
        start = end;
    }
    out
}

fn frames() -> Vec<(&'static str, Option<FrameSpec>)> {
    vec![
        ("default-range", None),
        (
            "rows-sliding",
            Some(FrameSpec {
                units: FrameUnits::Rows,
                start: Bound::Preceding(2),
                end: Bound::CurrentRow,
            }),
        ),
        (
            "rows-centered",
            Some(FrameSpec {
                units: FrameUnits::Rows,
                start: Bound::Preceding(1),
                end: Bound::Following(3),
            }),
        ),
        (
            "rows-unbounded-following",
            Some(FrameSpec {
                units: FrameUnits::Rows,
                start: Bound::CurrentRow,
                end: Bound::UnboundedFollowing,
            }),
        ),
        (
            "range-offset",
            Some(FrameSpec {
                units: FrameUnits::Range,
                start: Bound::Preceding(2),
                end: Bound::CurrentRow,
            }),
        ),
        // Pure-offset RANGE: no CURRENT ROW anchor, so the sliding
        // aggregates take the ring-streaming path when spilled.
        (
            "range-window",
            Some(FrameSpec {
                units: FrameUnits::Range,
                start: Bound::Preceding(2),
                end: Bound::Following(2),
            }),
        ),
    ]
}

fn funcs(col: AttrId) -> Vec<(&'static str, WindowFunction)> {
    vec![
        ("count-star", WindowFunction::Count(None)),
        ("count", WindowFunction::Count(Some(col))),
        ("sum", WindowFunction::Sum(col)),
        ("avg", WindowFunction::Avg(col)),
        ("min", WindowFunction::Min(col)),
        ("max", WindowFunction::Max(col)),
    ]
}

/// The main matrix: 3 partitions × 1200 rows each — every partition is
/// several times the 2-block budget — across count/sum/avg/min/max, ROWS
/// and RANGE frames, int and float value columns.
#[test]
fn oversized_partitions_match_brute_force_across_frames_and_functions() {
    let table = build_table(3, 1200);
    let strip = |rows: &[Row]| -> Vec<Row> {
        rows.iter()
            .map(|r| {
                let mut v = r.values().to_vec();
                v.pop();
                Row::new(v)
            })
            .collect()
    };
    for value_col in [a(2), a(3)] {
        for (fname, frame) in frames() {
            for (gname, func) in funcs(value_col) {
                // Tiny M: partitions ≫ budget, streaming paths.
                let env_small = ExecEnv::with_memory_blocks(2);
                let small = run_chain(&table, func.clone(), frame, &env_small);
                let reference = brute_force(&strip(&small), &func, frame);
                assert_eq!(
                    small, reference,
                    "tiny-M {gname} over {fname} (col {value_col:?})"
                );
                assert!(
                    env_small.store_snapshot().spill_blocks_written > 0,
                    "{gname}/{fname}: tiny pool must actually spill segments"
                );

                // Large M: resident path, same reference machinery.
                let env_big = ExecEnv::with_memory_blocks(1024);
                let big = run_chain(&table, func.clone(), frame, &env_big);
                let reference_big = brute_force(&strip(&big), &func, frame);
                assert_eq!(
                    big, reference_big,
                    "large-M {gname} over {fname} (col {value_col:?})"
                );

                // Bounded vs unbounded pool at tiny M: identical rows and
                // identical modeled counters.
                let env_unbounded = ExecEnv::with_memory_blocks(2).with_unbounded_pool();
                let legacy = run_chain(&table, func.clone(), frame, &env_unbounded);
                assert_eq!(small, legacy, "{gname}/{fname}: rows vs unbounded pool");
                assert_eq!(
                    env_small.tracker().snapshot(),
                    env_unbounded.tracker().snapshot(),
                    "{gname}/{fname}: modeled counters must not see the pool"
                );
                assert_eq!(
                    env_unbounded.store_snapshot().spill_blocks_written,
                    0,
                    "unbounded pool must never spill"
                );
            }
        }
    }
}

/// The streaming one-pass aggregation stays within the pool budget even
/// when a single partition dwarfs it: peak tracked residency is O(M), not
/// O(partition).
#[test]
fn default_frame_streaming_agg_residency_is_o_of_m() {
    let table = build_table(1, 4000); // one partition, ~44 KiB ≫ 2 blocks
    let env = ExecEnv::with_memory_blocks(2);
    let _ = run_chain(&table, WindowFunction::Sum(a(2)), None, &env);
    let snap = env.store_snapshot();
    let budget = 2 * wfopt::storage::BLOCK_SIZE;
    assert!(
        snap.peak_resident_bytes <= 2 * budget,
        "one-pass aggregation must hold O(M): peak {} vs budget {}",
        snap.peak_resident_bytes,
        budget
    );
    assert!(snap.spill_blocks_written > 0);
}

/// The buffered-partition fallback (here: a RANGE-offset frame, which
/// needs random access) holds exactly one partition: peak tracked
/// residency is O(M + largest partition) even with many partitions.
#[test]
fn buffered_partition_residency_is_o_of_m_plus_unit() {
    let table = build_table(6, 800);
    let frame = FrameSpec {
        units: FrameUnits::Range,
        start: Bound::Preceding(2),
        end: Bound::CurrentRow,
    };
    assert_eq!(
        StreamableEval::classify(&WindowFunction::Sum(a(2)), &frame),
        StreamableEval::Buffered
    );
    let env = ExecEnv::with_memory_blocks(2);
    let _ = run_chain(&table, WindowFunction::Sum(a(2)), Some(frame), &env);
    let snap = env.store_snapshot();
    let budget = 2 * wfopt::storage::BLOCK_SIZE;
    let partition_bytes = table.byte_size() / 6;
    assert!(
        snap.peak_resident_bytes <= 2 * budget + 2 * partition_bytes,
        "peak {} vs budget {} + partition {}",
        snap.peak_resident_bytes,
        budget,
        partition_bytes
    );
    // And it is genuinely partition-sized, not relation-sized.
    assert!(snap.peak_resident_bytes < table.byte_size() / 2);
    // ... but also genuinely partition-sized from below: the buffered path
    // must have held (at least most of) one partition, which is what the
    // ring-class assertions below rule out for the streamed functions.
    assert!(snap.peak_resident_bytes > partition_bytes / 2);
}

/// First-principles reference for the ranking / distribution / navigation
/// / value functions the ring and staged paths stream (row_number, rank,
/// dense_rank, percent_rank, cume_dist, ntile, lag, lead, first_value,
/// last_value, nth_value), evaluated over the engine's physical row order
/// like [`brute_force`]. Supports bounded-ROWS frames and the SQL-default
/// RANGE frame.
fn nav_reference(rows: &[Row], func: &WindowFunction, frame: Option<FrameSpec>) -> Vec<Row> {
    let frame = frame.unwrap_or(FrameSpec {
        units: FrameUnits::Range,
        start: Bound::UnboundedPreceding,
        end: Bound::CurrentRow,
    });
    let n = rows.len();
    let mut out = rows.to_vec();
    let mut start = 0usize;
    while start < n {
        let p = rows[start].get(a(0)).as_int().unwrap();
        let mut end = start;
        while end < n && rows[end].get(a(0)).as_int().unwrap() == p {
            end += 1;
        }
        let part = &rows[start..end];
        let m = part.len();
        let key = |i: usize| part[i].get(a(1)).as_int().unwrap();
        // Peer groups: maximal runs of equal order key.
        let mut gs = vec![0usize; m]; // group start per row
        let mut ord = vec![0usize; m]; // 0-based group ordinal per row
        let mut ge = vec![m; m]; // group end per row
        {
            let mut g = 0usize;
            let mut o = 0usize;
            for i in 0..m {
                if i > 0 && key(i) != key(i - 1) {
                    for slot in ge.iter_mut().take(i).skip(g) {
                        *slot = i;
                    }
                    g = i;
                    o += 1;
                }
                gs[i] = g;
                ord[i] = o;
            }
            for slot in ge.iter_mut().skip(g) {
                *slot = m;
            }
        }
        // Resolve frames as [s, e) (bounded ROWS or the default RANGE).
        let frame_of = |i: usize| -> (usize, usize) {
            match frame.units {
                FrameUnits::Rows => {
                    let s = match frame.start {
                        Bound::UnboundedPreceding => 0,
                        Bound::Preceding(k) => i.saturating_sub(k as usize),
                        Bound::CurrentRow => i,
                        Bound::Following(k) => (i + k as usize).min(m),
                        Bound::UnboundedFollowing => m,
                    };
                    let e = match frame.end {
                        Bound::UnboundedPreceding => 0,
                        Bound::Preceding(k) => (i + 1).saturating_sub(k as usize),
                        Bound::CurrentRow => i + 1,
                        Bound::Following(k) => (i + 1 + k as usize).min(m),
                        Bound::UnboundedFollowing => m,
                    };
                    (s.min(m), e.max(s).min(m))
                }
                FrameUnits::Range => (0, ge[i]), // the SQL default
            }
        };
        for i in 0..m {
            let value = match func {
                WindowFunction::RowNumber => Value::Int(i as i64 + 1),
                WindowFunction::Rank => Value::Int(gs[i] as i64 + 1),
                WindowFunction::DenseRank => Value::Int(ord[i] as i64 + 1),
                WindowFunction::PercentRank => {
                    if m <= 1 {
                        Value::Float(0.0)
                    } else {
                        Value::Float(gs[i] as f64 / (m - 1) as f64)
                    }
                }
                WindowFunction::CumeDist => Value::Float(ge[i] as f64 / m as f64),
                WindowFunction::Ntile(t) => {
                    let t = (*t).max(1) as usize;
                    let base = m / t;
                    let extra = m % t;
                    let tile = if i < extra * (base + 1) {
                        i / (base + 1)
                    } else {
                        extra + (i - extra * (base + 1)) / base.max(1)
                    };
                    Value::Int(tile as i64 + 1)
                }
                WindowFunction::Lag {
                    col,
                    offset,
                    default,
                } => i
                    .checked_sub(*offset as usize)
                    .map(|j| part[j].get(*col).clone())
                    .unwrap_or_else(|| default.clone().unwrap_or(Value::Null)),
                WindowFunction::Lead {
                    col,
                    offset,
                    default,
                } => {
                    let j = i + *offset as usize;
                    if j < m {
                        part[j].get(*col).clone()
                    } else {
                        default.clone().unwrap_or(Value::Null)
                    }
                }
                WindowFunction::FirstValue(col) => {
                    let (s, e) = frame_of(i);
                    if s < e {
                        part[s].get(*col).clone()
                    } else {
                        Value::Null
                    }
                }
                WindowFunction::LastValue(col) => {
                    let (s, e) = frame_of(i);
                    if s < e {
                        part[e - 1].get(*col).clone()
                    } else {
                        Value::Null
                    }
                }
                WindowFunction::NthValue(col, k) => {
                    let (s, e) = frame_of(i);
                    let idx = s + (*k).max(1) as usize - 1;
                    if idx < e {
                        part[idx].get(*col).clone()
                    } else {
                        Value::Null
                    }
                }
                other => panic!("not covered by nav_reference: {other:?}"),
            };
            out[start + i].push(value);
        }
        start = end;
    }
    out
}

fn strip_last(rows: &[Row]) -> Vec<Row> {
    rows.iter()
        .map(|r| {
            let mut v = r.values().to_vec();
            v.pop();
            Row::new(v)
        })
        .collect()
}

/// Pure-offset RANGE window shared by the streamed cases.
const RANGE_WINDOW: FrameSpec = FrameSpec {
    units: FrameUnits::Range,
    start: Bound::Preceding(2),
    end: Bound::Following(2),
};

/// One case of the newly streamed function family: the function, its frame,
/// the expected spilled-evaluation class, and the frame extent in rows
/// (`hist + delay + 1`, or the physical span of the key window) for the
/// residency bound.
fn streamed_cases() -> Vec<(&'static str, WindowFunction, Option<FrameSpec>, usize)> {
    let sliding = FrameSpec {
        units: FrameUnits::Rows,
        start: Bound::Preceding(2),
        end: Bound::CurrentRow,
    };
    let centered = FrameSpec {
        units: FrameUnits::Rows,
        start: Bound::Preceding(1),
        end: Bound::Following(3),
    };
    vec![
        ("row_number", WindowFunction::RowNumber, None, 1),
        ("rank", WindowFunction::Rank, None, 1),
        ("dense_rank", WindowFunction::DenseRank, None, 1),
        ("ntile", WindowFunction::Ntile(7), None, 1),
        // The distribution family: staged replay (partition cardinality
        // first pass), closing the streaming-window story.
        ("percent_rank", WindowFunction::PercentRank, None, 1),
        ("cume_dist", WindowFunction::CumeDist, None, 1),
        (
            "lag2",
            WindowFunction::Lag {
                col: a(2),
                offset: 2,
                default: Some(Value::Int(-1)),
            },
            None,
            3,
        ),
        (
            "lead3",
            WindowFunction::Lead {
                col: a(2),
                offset: 3,
                default: None,
            },
            None,
            4,
        ),
        (
            "first_value",
            WindowFunction::FirstValue(a(2)),
            Some(centered),
            5,
        ),
        (
            "last_value",
            WindowFunction::LastValue(a(2)),
            Some(sliding),
            3,
        ),
        (
            "nth_value2",
            WindowFunction::NthValue(a(2), 2),
            Some(centered),
            5,
        ),
        ("count", WindowFunction::Count(Some(a(2))), Some(sliding), 3),
        ("sum_int", WindowFunction::Sum(a(2)), Some(sliding), 3),
        ("sum_float", WindowFunction::Sum(a(3)), Some(centered), 5),
        ("avg_float", WindowFunction::Avg(a(3)), Some(sliding), 3),
        ("min", WindowFunction::Min(a(2)), Some(centered), 5),
        ("max", WindowFunction::Max(a(2)), Some(sliding), 3),
        // Frames sitting entirely ahead of the current row, and frames
        // that are empty for every row — the monotonic deque's jump and
        // stale-entry edges.
        (
            "min_ahead",
            WindowFunction::Min(a(2)),
            Some(FrameSpec {
                units: FrameUnits::Rows,
                start: Bound::Following(1),
                end: Bound::Following(3),
            }),
            4,
        ),
        (
            "max_empty",
            WindowFunction::Max(a(2)),
            Some(FrameSpec {
                units: FrameUnits::Rows,
                start: Bound::Following(3),
                end: Bound::Following(2),
            }),
            4,
        ),
        // The variance family over bounded ROWS frames: ring-streamed via
        // the sum-of-squares prefix lane.
        ("var_samp", WindowFunction::VarSamp(a(3)), Some(sliding), 3),
        (
            "stddev_pop",
            WindowFunction::StddevPop(a(2)),
            Some(centered),
            5,
        ),
        // Pure-offset RANGE frames: both edges are key distances, resolved
        // by the monotone pointer sweeps. The order key repeats every 3
        // rows, so a ±2-key window spans ≤ 15 physical rows; the extents
        // below also cover the emission gate's lookahead.
        (
            "sum_range",
            WindowFunction::Sum(a(2)),
            Some(RANGE_WINDOW),
            24,
        ),
        (
            "avg_range",
            WindowFunction::Avg(a(3)),
            Some(RANGE_WINDOW),
            24,
        ),
        (
            "min_range",
            WindowFunction::Min(a(2)),
            Some(RANGE_WINDOW),
            24,
        ),
        (
            "count_range",
            WindowFunction::Count(Some(a(2))),
            Some(RANGE_WINDOW),
            24,
        ),
        // Frames sitting entirely ahead of / behind the current key, and
        // a key window that is empty for every row.
        (
            "max_range_ahead",
            WindowFunction::Max(a(2)),
            Some(FrameSpec {
                units: FrameUnits::Range,
                start: Bound::Following(1),
                end: Bound::Following(3),
            }),
            30,
        ),
        (
            "min_range_behind",
            WindowFunction::Min(a(2)),
            Some(FrameSpec {
                units: FrameUnits::Range,
                start: Bound::Preceding(4),
                end: Bound::Preceding(2),
            }),
            30,
        ),
        (
            "max_range_empty",
            WindowFunction::Max(a(2)),
            Some(FrameSpec {
                units: FrameUnits::Range,
                start: Bound::Following(3),
                end: Bound::Following(2),
            }),
            30,
        ),
    ]
}

/// Reference values for one case: aggregates go through [`brute_force`],
/// the ranking/navigation/value functions through [`nav_reference`].
fn reference_for(rows: &[Row], func: &WindowFunction, frame: Option<FrameSpec>) -> Vec<Row> {
    match func {
        WindowFunction::Count(_)
        | WindowFunction::Sum(_)
        | WindowFunction::Avg(_)
        | WindowFunction::Min(_)
        | WindowFunction::Max(_)
        | WindowFunction::VarPop(_)
        | WindowFunction::VarSamp(_)
        | WindowFunction::StddevPop(_)
        | WindowFunction::StddevSamp(_) => brute_force(rows, func, frame),
        _ => nav_reference(rows, func, frame),
    }
}

/// The acceptance matrix: every newly streamed function at `M = 1` over
/// partitions ≥ 100× the pool. Rows and modeled counters must be
/// bit-identical to the unbounded-pool pipeline, and for the ring class
/// the store's high-water mark must stay `O(M + frame)` — a small constant
/// times pool-plus-frame, far below the buffered path's partition-sized
/// footprint.
#[test]
fn streamed_functions_at_m1_over_100x_partitions() {
    // 2 partitions × 24000 rows ≈ 850 KB each ≥ 100 × the 1-block pool.
    let table = build_table(2, 24_000);
    let partition_bytes = table.byte_size() / 2;
    assert!(
        partition_bytes >= 100 * wfopt::storage::BLOCK_SIZE,
        "test table must dwarf the pool"
    );
    let avg_row = table.byte_size() / table.row_count();
    for (name, func, frame, extent) in streamed_cases() {
        let class = StreamableEval::classify(
            &func,
            &frame.unwrap_or_else(|| FrameSpec::default_for(true)),
        );
        assert_ne!(
            class,
            StreamableEval::Buffered,
            "{name} must be newly streamed"
        );

        let env = ExecEnv::with_memory_blocks(1);
        let got = run_chain(&table, func.clone(), frame, &env);
        let expect = reference_for(&strip_last(&got), &func, frame);
        assert_eq!(got, expect, "{name}: rows vs first-principles reference");
        let snap = env.store_snapshot();
        assert!(
            snap.spill_blocks_written > 0,
            "{name}: the tiny pool must actually spill"
        );

        // Residency: a small constant times (pool + frame), never the
        // partition. The chain also holds the sort's output builder and
        // the window's output builder within the same pool budget, hence
        // the constant.
        let budget = wfopt::storage::BLOCK_SIZE;
        let frame_bytes = extent * avg_row;
        assert!(
            snap.peak_resident_bytes <= 4 * (budget + frame_bytes),
            "{name}: peak {} exceeds c·(M + frame) = {}",
            snap.peak_resident_bytes,
            4 * (budget + frame_bytes)
        );
        assert!(
            snap.peak_resident_bytes < partition_bytes / 4,
            "{name}: peak {} is partition-sized ({partition_bytes}) — \
             the buffered path would have held this much",
            snap.peak_resident_bytes
        );

        // Bounded vs unbounded pool: identical rows, identical modeled
        // counters — pool traffic is physical, never modeled.
        let env_unbounded = ExecEnv::with_memory_blocks(1).with_unbounded_pool();
        let legacy = run_chain(&table, func.clone(), frame, &env_unbounded);
        assert_eq!(got, legacy, "{name}: rows vs unbounded pool");
        assert_eq!(
            env.tracker().snapshot(),
            env_unbounded.tracker().snapshot(),
            "{name}: modeled counters must not see the pool"
        );
        assert_eq!(env_unbounded.store_snapshot().spill_blocks_written, 0);
    }
}

/// Streaming (tiny-`M`) vs materialized (large-`M`) equivalence for
/// pure-offset RANGE frames over *descending* and *NULL-bearing float*
/// order keys — key shapes the main matrix's ascending integer key never
/// produces. The engine is its own reference: the resident path is pinned
/// by the unit suite, and the spilled ring path must reproduce its values.
/// External merge is not stable for tied keys, so outputs are compared as
/// canonically sorted multisets — a row's window value depends only on its
/// key and partition, never on its position within a tie group.
#[test]
fn range_offset_streaming_matches_materialized_on_desc_and_null_keys() {
    let schema = Schema::of(&[
        ("p", DataType::Int),
        ("k", DataType::Float),
        ("v", DataType::Int),
    ]);
    let mut table = Table::new(schema);
    let mut state = 0x51a7b2c9d3e4f605u64;
    let mut rows = Vec::new();
    for p in 0..2i64 {
        for i in 0..900i64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = if i % 11 == 7 {
                Value::Null
            } else {
                Value::Float((i / 3) as f64 / 2.0)
            };
            let v = if i % 7 == 3 {
                Value::Null
            } else {
                Value::Int(((state >> 33) as i64 % 1000) - 500)
            };
            rows.push((state, Row::new(vec![Value::Int(p), k, v])));
        }
    }
    rows.sort_by_key(|(s, _)| *s);
    for (_, r) in rows {
        table.push(r);
    }

    let run_dir = |func: WindowFunction, frame: FrameSpec, env: &ExecEnv, desc: bool| {
        let dir = if desc {
            OrdElem::desc(a(1))
        } else {
            OrdElem::asc(a(1))
        };
        let key = SortSpec::new(vec![OrdElem::asc(a(0)), dir]);
        let wpk = AttrSet::from_iter([a(0)]);
        let wok = SortSpec::new(vec![dir]);
        let scan = TableScan::new(&table, env.op_env().clone());
        let fs = FullSortOp::new(scan, key, env.op_env().clone())
            .with_recorded_prefixes(vec![wpk.clone(), wpk.union(&wok.attr_set())]);
        let mut win = WindowOp::new(fs, wpk, wok, func, Some(frame), env.op_env().clone());
        let mut out = drain(&mut win).unwrap().into_rows();
        out.sort_by(|x, y| x.values().cmp(y.values()));
        out
    };

    let frames = [
        RANGE_WINDOW,
        FrameSpec {
            units: FrameUnits::Range,
            start: Bound::Following(0),
            end: Bound::Following(2),
        },
        FrameSpec {
            units: FrameUnits::Range,
            start: Bound::Preceding(3),
            end: Bound::Preceding(1),
        },
    ];
    let funcs = [
        WindowFunction::Sum(a(2)),
        WindowFunction::Avg(a(2)),
        WindowFunction::Min(a(2)),
        WindowFunction::Count(Some(a(2))),
    ];
    for desc in [false, true] {
        for frame in frames {
            for func in &funcs {
                assert_eq!(
                    StreamableEval::classify(func, &frame),
                    StreamableEval::Ring,
                    "{func:?} must ring-stream a pure-offset RANGE frame"
                );
                let env_small = ExecEnv::with_memory_blocks(2);
                let small = run_dir(func.clone(), frame, &env_small, desc);
                assert!(
                    env_small.store_snapshot().spill_blocks_written > 0,
                    "{func:?}/{frame:?} desc={desc}: tiny pool must spill"
                );
                let env_big = ExecEnv::with_memory_blocks(1024);
                let big = run_dir(func.clone(), frame, &env_big, desc);
                assert_eq!(
                    small, big,
                    "{func:?}/{frame:?} desc={desc}: streamed vs materialized"
                );
                // Bounded vs unbounded pool: identical modeled counters.
                let env_unbounded = ExecEnv::with_memory_blocks(2).with_unbounded_pool();
                let legacy = run_dir(func.clone(), frame, &env_unbounded, desc);
                assert_eq!(small, legacy, "{func:?}/{frame:?} desc={desc}: pool rows");
                assert_eq!(
                    env_small.tracker().snapshot(),
                    env_unbounded.tracker().snapshot(),
                    "{func:?}/{frame:?} desc={desc}: modeled counters must not see the pool"
                );
            }
        }
    }
}

/// The same function family at `M = 2` on a smaller many-partition table,
/// against the first-principles references — breadth over the partition
/// layout rather than sheer size — plus the resident (large-`M`) twin.
#[test]
fn streamed_functions_at_m2_match_references() {
    let table = build_table(3, 1200);
    for (name, func, frame, _) in streamed_cases() {
        let env = ExecEnv::with_memory_blocks(2);
        let got = run_chain(&table, func.clone(), frame, &env);
        let expect = reference_for(&strip_last(&got), &func, frame);
        assert_eq!(got, expect, "{name} at M=2 vs reference");

        let env_big = ExecEnv::with_memory_blocks(1024);
        let big = run_chain(&table, func.clone(), frame, &env_big);
        let expect_big = reference_for(&strip_last(&big), &func, frame);
        assert_eq!(big, expect_big, "{name} at large M vs reference");
    }
}
