//! The parallel execution scheduler — partition-sharded reordering over a
//! worker pool (paper §3.5, made planner-visible by `ReorderOp::Par`).
//!
//! [`ParallelSortOp`] is the physical operator behind a planned
//! `Par { inner: Fs, workers }` node. One pull runs four phases:
//!
//! 1. **Scatter** — the upstream row stream is hash-partitioned on the
//!    shard key (a subset of the window partition key, so every window
//!    partition lands wholly inside one shard) into `workers` store-managed
//!    shard buffers, charging one hash per row exactly like
//!    [`crate::parallel::parallel_partitioned`]. Shard assignment is a pure
//!    function of the row values — never of timing.
//! 2. **Parallel sort** — each shard is sorted by the shared
//!    [`sort machinery`](crate::sorter) inside its own worker environment:
//!    a **fresh tracker** and a **ledger sub-account** of the chain's
//!    [`wf_storage::SegmentStore`] sized to the per-worker unit reorder
//!    memory `M_w = ⌊M / workers⌋`. Shards are distributed over at most
//!    `threads` OS threads (`std::thread::scope`) with a fixed shard →
//!    worker assignment (worker `t` takes shards `t, t + threads, …`);
//!    because every shard's work happens against shard-private state, the
//!    thread count changes wall clock and nothing else.
//! 3. **Deterministic reassembly** — the workers' private trackers are
//!    absorbed into the chain's tracker **in shard order**, and the sorted
//!    shards are k-way **ordered-merged** by the full sort key into one
//!    totally ordered, store-managed output segment. Rows equal on the
//!    whole key always share a shard (the shard key is a subset of the key
//!    and each shard preserves input order through a stable sort), so the
//!    merged output is bit-identical to a serial Full Sort of the same
//!    input — including the boundary layers recorded for free during the
//!    merge.
//! 4. **Residency fold-back** — the workers' high-water marks are folded
//!    into the chain store with
//!    [`wf_storage::SegmentStore::absorb_concurrent`], so a parallel
//!    chain's tracked residency is governed at `O(Σ_w (M_w + unit_w))` and
//!    reported deterministically (sum of worker peaks, independent of how
//!    worker lifetimes overlapped).
//!
//! **Determinism contract.** For a fixed plan (fixed `workers`), output
//! rows, boundary layers, modeled counters *and* pool counters are
//! bit-identical whatever `threads` resolves to — the scheduler only ever
//! parallelizes work that lives in shard-private state. Output rows and
//! layers additionally equal the serial `Fs` node's; modeled counters of
//! the `Par` step itself differ from `Fs` (that difference is exactly what
//! the planner's cost decision weighs).

use crate::env::OpEnv;
use crate::operator::{Operator, Segment};
use crate::sorter::{merge_sorted_handles, sort_stream_to_handle, SortKey};
use crate::util::hash_row_on;
use std::sync::Arc;
use wf_common::{AttrSet, Error, Result, SortSpec};
use wf_storage::SegmentHandle;

/// Resolve how many OS threads a parallel operator may use: the
/// environment's [`OpEnv::worker_threads`] override when set (the
/// `WF_WORKERS` toggle), else the plan node's worker count — clamped to
/// `[1, shards]` since extra threads would idle.
pub fn resolve_threads(env: &OpEnv, plan_workers: usize, shards: usize) -> usize {
    let t = if env.worker_threads > 0 {
        env.worker_threads
    } else {
        plan_workers
    };
    t.clamp(1, shards.max(1))
}

/// Per-worker unit reorder memory for `workers` shards of an `M`-block
/// budget: `M_w = ⌊M / workers⌋`, floor one block — the executor-side twin
/// of the cost model's `workers × M_w ≤ M` constraint.
pub fn per_worker_blocks(mem_blocks: u64, workers: usize) -> u64 {
    (mem_blocks / workers.max(1) as u64).max(1)
}

/// Run shard-indexed `jobs` over at most `threads` scoped worker threads
/// with the fixed shard→worker assignment (worker `t` takes jobs
/// `t, t + threads, …`) — the one orchestration both
/// [`ParallelSortOp`] and [`crate::parallel::parallel_partitioned`] use,
/// so the determinism choreography cannot drift between them. Returns one
/// slot per shard in `0..shards`: `Some(result)` for jobs that ran, `None`
/// where the owning thread panicked (a panicking thread loses its whole
/// batch, completed siblings included — callers should report the panic,
/// not blame a specific unaccounted shard).
pub(crate) fn run_sharded<J, R>(
    shards: usize,
    threads: usize,
    jobs: Vec<(usize, J)>,
    f: impl Fn(usize, J) -> Result<R> + Sync,
) -> Vec<Option<Result<R>>>
where
    J: Send,
    R: Send,
{
    let threads = threads.max(1);
    let mut batches: Vec<Vec<(usize, J)>> = (0..threads).map(|_| Vec::new()).collect();
    for job in jobs {
        batches[job.0 % threads].push(job);
    }
    let f = &f;
    let outputs: Vec<Vec<(usize, Result<R>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                scope.spawn(move || {
                    batch
                        .into_iter()
                        .map(|(i, j)| (i, f(i, j)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let mut slots: Vec<Option<Result<R>>> = (0..shards).map(|_| None).collect();
    for out in outputs {
        for (i, r) in out {
            slots[i] = Some(r);
        }
    }
    slots
}

/// Fold the workers' private trackers into the chain's tracker **in
/// worker order** — the counter half of the deterministic reassembly
/// choreography (shared by [`ParallelSortOp`] and
/// [`crate::parallel::parallel_partitioned`]).
pub(crate) fn absorb_worker_trackers(env: &OpEnv, worker_envs: &[OpEnv]) {
    for w in worker_envs {
        env.tracker.absorb(&w.tracker.snapshot());
    }
}

/// Fold the workers' residency high-water marks into the chain's store —
/// the residency half of the reassembly choreography. Call once the
/// workers' output handles have been consumed (their sub-account peaks are
/// final).
pub(crate) fn absorb_worker_stores(env: &OpEnv, worker_envs: &[OpEnv]) {
    let snaps: Vec<_> = worker_envs.iter().map(|e| e.store.snapshot()).collect();
    env.store.absorb_concurrent(&snaps);
}

/// The parallel reordering operator: shard on `shard_attrs`, sort every
/// shard on `key` concurrently, ordered-merge back into one totally
/// ordered segment. Blocking, like the serial Full Sort it replaces.
pub struct ParallelSortOp<I> {
    input: I,
    key_spec: SortSpec,
    key: SortKey,
    shard_attrs: AttrSet,
    workers: usize,
    record: Vec<AttrSet>,
    env: OpEnv,
    done: bool,
}

impl<I: Operator> ParallelSortOp<I> {
    /// Sort everything `input` yields on `key`, sharded on `shard_attrs`
    /// (must be a subset of `key`'s attributes for the merge to restore the
    /// serial order; an empty set degenerates to one shard's worth of work
    /// in shard 0). `workers` is the plan's shard count — the determinism
    /// domain — not the thread count, which [`resolve_threads`] picks at
    /// run time.
    pub fn new(input: I, key: SortSpec, shard_attrs: AttrSet, workers: usize, env: OpEnv) -> Self {
        debug_assert!(
            shard_attrs.is_subset(&key.attr_set()),
            "shard key must be a subset of the sort key"
        );
        ParallelSortOp {
            input,
            key: SortKey::new(&key),
            key_spec: key,
            shard_attrs,
            workers: workers.max(1),
            record: Vec::new(),
            env,
            done: false,
        }
    }

    /// Record boundary layers for these attribute-set prefixes of the sort
    /// key during the ordered merge — same contract (and same free price)
    /// as [`crate::full_sort::FullSortOp::with_recorded_prefixes`].
    pub fn with_recorded_prefixes(mut self, sets: Vec<AttrSet>) -> Self {
        self.record = sets;
        self
    }

    /// The sort key (tests, diagnostics).
    pub fn key_spec(&self) -> &SortSpec {
        &self.key_spec
    }
}

impl<I: Operator> Operator for ParallelSortOp<I> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let shards = self.workers;
        let env = &self.env;
        // Everything from the scatter on belongs to one concurrent phase:
        // the fold-back in phase 4 bounds the combined peak against the
        // parent's in-phase watermark.
        env.store.begin_concurrent_phase();

        // Phase 1 — scatter the upstream stream into shard buffers (store-
        // managed: they spill past the pool budget, so the scatter holds
        // O(pool), never the relation).
        let mut builders: Vec<_> = (0..shards).map(|_| env.store.builder()).collect();
        while let Some(seg) = self.input.next_segment()? {
            let batch = if env.columnar {
                seg.shared_batch().map(Arc::clone)
            } else {
                None
            };
            if let Some(batch) = batch {
                // Per-lane scatter: hash rows straight off the column lanes
                // (bit-identical u64s to `hash_row_on` on the row shim).
                env.tracker.hash(batch.len() as u64);
                for i in 0..batch.len() {
                    let idx = (batch.hash_row(i, &self.shard_attrs) % shards as u64) as usize;
                    builders[idx].push(batch.row(i))?;
                }
            } else {
                let (_, mut stream, _) = seg.into_stream();
                while let Some(row) = stream.next_row()? {
                    env.tracker.hash(1);
                    let idx = (hash_row_on(&row, &self.shard_attrs) % shards as u64) as usize;
                    builders[idx].push(row)?;
                }
            }
        }
        let total: usize = builders.iter().map(|b| b.len()).sum();
        if total == 0 {
            return Ok(None);
        }

        // Phase 2 — per-shard environments (fresh tracker + ledger
        // sub-account at M_w) and the scoped worker pool.
        let m_w = per_worker_blocks(env.mem_blocks, shards);
        let mut jobs: Vec<(usize, (SegmentHandle, OpEnv))> = Vec::with_capacity(shards);
        for (i, b) in builders.into_iter().enumerate() {
            jobs.push((i, (b.finish()?, env.shard_env(m_w))));
        }
        let shard_envs: Vec<OpEnv> = jobs.iter().map(|(_, (_, e))| e.clone()).collect();
        let threads = resolve_threads(env, shards, shards);
        let key = &self.key;
        let sorted = run_sharded(shards, threads, jobs, |_, (shard, shard_env)| {
            sort_stream_to_handle(shard.read(), key, &shard_env, &[]).map(|(handle, _, _)| handle)
        });

        // Phase 3 — deterministic reassembly: absorb worker trackers in
        // shard order, surface the first error (by shard index), then
        // ordered-merge the sorted shards into one output segment.
        absorb_worker_trackers(env, &shard_envs);
        let mut shard_handles = Vec::with_capacity(shards);
        for (i, slot) in sorted.into_iter().enumerate() {
            match slot {
                Some(Ok(h)) => shard_handles.push(h),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(Error::Execution(format!(
                        "a parallel sort worker thread panicked (shard {i} unaccounted)"
                    )))
                }
            }
        }
        let (out, bounds, n) = merge_sorted_handles(shard_handles, key, env, &self.record)?;
        debug_assert_eq!(n, total, "merge must reassemble every scattered row");

        // Phase 4 — fold the workers' high-water marks into the chain's
        // store (handles were consumed by the merge, so the sub-accounts'
        // peaks are final).
        absorb_worker_stores(env, &shard_envs);
        Ok(Some(Segment::from_handle(out, bounds)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_sort::FullSortOp;
    use crate::operator::SegmentSource;
    use crate::segment::SegmentedRows;
    use wf_common::{row, AttrId, OrdElem, Row, RowComparator};

    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect())
    }
    fn aset(ids: &[usize]) -> AttrSet {
        AttrSet::from_iter(ids.iter().map(|&i| AttrId::new(i)))
    }
    fn sample(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                row![
                    (i * 37 % 23) as i64,
                    (i * 13 % 101) as i64,
                    i as i64,
                    "padding-padding-padding"
                ]
            })
            .collect()
    }

    fn run_par(rows: Vec<Row>, workers: usize, threads: usize, m: u64) -> (Vec<Row>, OpEnv) {
        let env = OpEnv::with_memory_blocks(m).with_worker_threads(threads);
        let mut op = ParallelSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows)),
            key(&[0, 1]),
            aset(&[0]),
            workers,
            env.clone(),
        )
        .with_recorded_prefixes(vec![aset(&[0])]);
        let seg = op.next_segment().unwrap().unwrap();
        assert!(op.next_segment().unwrap().is_none(), "blocking single emit");
        (seg.into_rows().unwrap(), env)
    }

    /// The merged output equals a serial Full Sort's output bit for bit —
    /// including tie order (shards preserve input order, stable sorts).
    #[test]
    fn matches_serial_full_sort_rows() {
        let rows = sample(3000);
        let env = OpEnv::with_memory_blocks(4);
        let mut fs = FullSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows.clone())),
            key(&[0, 1]),
            env.clone(),
        );
        let serial = fs.next_segment().unwrap().unwrap().into_rows().unwrap();
        for workers in [1usize, 2, 4] {
            let (par, _) = run_par(rows.clone(), workers, workers, 4);
            assert_eq!(par, serial, "workers={workers}");
        }
        let cmp = RowComparator::new(&key(&[0, 1]));
        assert!(serial
            .windows(2)
            .all(|w| cmp.compare(&w[0], &w[1]) != std::cmp::Ordering::Greater));
    }

    /// Thread count changes nothing but wall clock: rows, boundary layers,
    /// modeled counters and pool counters are identical across overrides.
    #[test]
    fn thread_count_is_invisible_to_counters() {
        let rows = sample(2500);
        let mut reference: Option<(Vec<Row>, wf_storage::CostSnapshot, u64)> = None;
        for threads in [1usize, 2, 4] {
            let env = OpEnv::with_memory_blocks(2).with_worker_threads(threads);
            let mut op = ParallelSortOp::new(
                SegmentSource::new(SegmentedRows::single_segment(rows.clone())),
                key(&[0, 1]),
                aset(&[0]),
                4,
                env.clone(),
            );
            let seg = op.next_segment().unwrap().unwrap();
            let layers = seg.bounds.layers().to_vec();
            let out = seg.into_rows().unwrap();
            let snap = env.tracker.snapshot();
            let pool_writes = env.store.snapshot().spill_blocks_written;
            match &reference {
                None => reference = Some((out, snap, pool_writes)),
                Some((r_rows, r_snap, r_pool)) => {
                    assert_eq!(&out, r_rows, "threads={threads}");
                    assert_eq!(&snap, r_snap, "threads={threads}");
                    assert_eq!(pool_writes, *r_pool, "threads={threads}");
                }
            }
            let _ = layers;
        }
    }

    /// Recorded prefix layers equal the serial sort's (same output order,
    /// same change positions).
    #[test]
    fn records_same_layers_as_serial_sort() {
        let rows = sample(1200);
        let env = OpEnv::with_memory_blocks(4);
        let mut fs = FullSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows.clone())),
            key(&[0, 1]),
            env.clone(),
        )
        .with_recorded_prefixes(vec![aset(&[0])]);
        let serial = fs.next_segment().unwrap().unwrap();
        let serial_layer = serial
            .bounds
            .layers()
            .iter()
            .find(|l| l.attrs == aset(&[0]))
            .unwrap()
            .clone();

        let env2 = OpEnv::with_memory_blocks(4);
        let mut par = ParallelSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows)),
            key(&[0, 1]),
            aset(&[0]),
            4,
            env2.clone(),
        )
        .with_recorded_prefixes(vec![aset(&[0])]);
        let seg = par.next_segment().unwrap().unwrap();
        let par_layer = seg
            .bounds
            .layers()
            .iter()
            .find(|l| l.attrs == aset(&[0]))
            .unwrap()
            .clone();
        assert_eq!(par_layer, serial_layer);
    }

    /// Bounded vs unbounded pool: identical rows and identical modeled
    /// counters — the parallel path preserves the store invariant.
    #[test]
    fn bounded_and_unbounded_pools_agree() {
        let rows = sample(2000);
        let (bounded, env_b) = run_par(rows.clone(), 4, 4, 2);
        let env_u = OpEnv::with_memory_blocks(2).with_unbounded_pool();
        let mut op = ParallelSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows)),
            key(&[0, 1]),
            aset(&[0]),
            4,
            env_u.clone(),
        )
        .with_recorded_prefixes(vec![aset(&[0])]);
        let unbounded = op.next_segment().unwrap().unwrap().into_rows().unwrap();
        assert_eq!(bounded, unbounded);
        assert_eq!(env_b.tracker.snapshot(), env_u.tracker.snapshot());
        assert_eq!(env_u.store.snapshot().spill_blocks_written, 0);
    }

    #[test]
    fn empty_input_yields_nothing() {
        let env = OpEnv::with_memory_blocks(2);
        let mut op = ParallelSortOp::new(
            SegmentSource::new(SegmentedRows::empty()),
            key(&[0]),
            aset(&[0]),
            4,
            env,
        );
        assert!(op.next_segment().unwrap().is_none());
    }

    #[test]
    fn helpers_clamp_sanely() {
        let env = OpEnv::with_memory_blocks(4).with_worker_threads(0);
        assert_eq!(resolve_threads(&env, 4, 4), 4);
        assert_eq!(resolve_threads(&env, 8, 4), 4, "clamped to shard count");
        let forced = env.with_worker_threads(2);
        assert_eq!(resolve_threads(&forced, 4, 4), 2);
        assert_eq!(per_worker_blocks(8, 4), 2);
        assert_eq!(per_worker_blocks(2, 4), 1, "floor one block");
        assert_eq!(per_worker_blocks(8, 0), 8);
    }
}
