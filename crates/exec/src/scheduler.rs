//! The parallel execution scheduler — partition-sharded reordering over a
//! worker pool (paper §3.5, made planner-visible by `ReorderOp::Par`).
//!
//! [`ParallelSortOp`] is the physical operator behind a planned
//! `Par { inner: Fs, workers }` node. One pull runs four phases:
//!
//! 1. **Scatter** — the upstream row stream is hash-partitioned on the
//!    shard key (a subset of the window partition key, so every window
//!    partition lands wholly inside one shard) into `workers` store-managed
//!    shard buffers, charging one hash per row exactly like
//!    [`crate::parallel::parallel_partitioned`]. Shard assignment is a pure
//!    function of the row values — never of timing.
//! 2. **Parallel sort** — each shard is sorted by the shared
//!    [`sort machinery`](crate::sorter) inside its own worker environment:
//!    a **fresh tracker** and a **ledger sub-account** of the chain's
//!    [`wf_storage::SegmentStore`] sized to the per-worker unit reorder
//!    memory `M_w = ⌊M / workers⌋`. Shards are distributed over at most
//!    `threads` OS threads (`std::thread::scope`) with a fixed shard →
//!    worker assignment (worker `t` takes shards `t, t + threads, …`);
//!    because every shard's work happens against shard-private state, the
//!    thread count changes wall clock and nothing else.
//! 3. **Deterministic reassembly** — the workers' private trackers are
//!    absorbed into the chain's tracker **in shard order**, and the sorted
//!    shards are k-way **ordered-merged** by the full sort key into one
//!    totally ordered, store-managed output segment. Rows equal on the
//!    whole key always share a shard (the shard key is a subset of the key
//!    and each shard preserves input order through a stable sort), so the
//!    merged output is bit-identical to a serial Full Sort of the same
//!    input — including the boundary layers recorded for free during the
//!    merge.
//! 4. **Residency fold-back** — the workers' high-water marks are folded
//!    into the chain store with
//!    [`wf_storage::SegmentStore::absorb_concurrent`], so a parallel
//!    chain's tracked residency is governed at `O(Σ_w (M_w + unit_w))` and
//!    reported deterministically (sum of worker peaks, independent of how
//!    worker lifetimes overlapped).
//!
//! [`ParallelChainOp`] generalizes the same choreography to a **chain
//! span**: after the per-worker reorder (FS *or* HS — [`ParInner`]), the
//! worker keeps going — it runs the window call itself and any follow-up
//! SS + window stages whose partition keys cover the shard key
//! ([`ChainStage`]) — and only *finished rows* are reassembled: a k-way
//! ordered merge for an FS head, an ascending-global-bucket interleave for
//! an HS head.
//!
//! **Determinism contract.** For a fixed plan (fixed `workers`), output
//! rows, boundary layers, modeled counters *and* pool counters are
//! bit-identical whatever `threads` resolves to — the scheduler only ever
//! parallelizes work that lives in shard-private state. Output rows and
//! layers additionally equal the serial `Fs` node's; modeled counters of
//! the `Par` step itself differ from `Fs` (that difference is exactly what
//! the planner's cost decision weighs).

use crate::env::OpEnv;
use crate::full_sort::FullSortOp;
use crate::hashed_sort::{HashedSortOp, HsOptions};
use crate::operator::{Operator, Segment};
use crate::segment::SegmentBounds;
use crate::segmented_sort::SegmentedSortOp;
use crate::sorter::{merge_sorted_handles, sort_stream_to_handle, SortKey};
use crate::util::hash_row_on;
use crate::window::{FrameSpec, WindowFunction, WindowOp};
use std::collections::VecDeque;
use std::sync::Arc;
use wf_common::{AttrSet, Error, Result, SortSpec};
use wf_storage::SegmentHandle;

/// Resolve how many OS threads a parallel operator may use: the
/// environment's [`OpEnv::worker_threads`] override when set (the
/// `WF_WORKERS` toggle), else the plan node's worker count — clamped to
/// `[1, shards]` since extra threads would idle.
pub fn resolve_threads(env: &OpEnv, plan_workers: usize, shards: usize) -> usize {
    let t = if env.worker_threads > 0 {
        env.worker_threads
    } else {
        plan_workers
    };
    t.clamp(1, shards.max(1))
}

/// Per-worker unit reorder memory for `workers` shards of an `M`-block
/// budget: `M_w = ⌊M / workers⌋`, floor one block — the executor-side twin
/// of the cost model's `workers × M_w ≤ M` constraint.
pub fn per_worker_blocks(mem_blocks: u64, workers: usize) -> u64 {
    (mem_blocks / workers.max(1) as u64).max(1)
}

/// Run shard-indexed `jobs` over at most `threads` scoped worker threads
/// with the fixed shard→worker assignment (worker `t` takes jobs
/// `t, t + threads, …`) — the one orchestration both
/// [`ParallelSortOp`] and [`crate::parallel::parallel_partitioned`] use,
/// so the determinism choreography cannot drift between them. Returns one
/// slot per shard in `0..shards`: `Some(result)` for jobs that ran, `None`
/// where the owning thread panicked (a panicking thread loses its whole
/// batch, completed siblings included — callers should report the panic,
/// not blame a specific unaccounted shard).
pub(crate) fn run_sharded<J, R>(
    shards: usize,
    threads: usize,
    jobs: Vec<(usize, J)>,
    f: impl Fn(usize, J) -> Result<R> + Sync,
) -> Vec<Option<Result<R>>>
where
    J: Send,
    R: Send,
{
    let threads = threads.max(1);
    let mut batches: Vec<Vec<(usize, J)>> = (0..threads).map(|_| Vec::new()).collect();
    for job in jobs {
        batches[job.0 % threads].push(job);
    }
    let f = &f;
    let outputs: Vec<Vec<(usize, Result<R>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                scope.spawn(move || {
                    batch
                        .into_iter()
                        .map(|(i, j)| (i, f(i, j)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let mut slots: Vec<Option<Result<R>>> = (0..shards).map(|_| None).collect();
    for out in outputs {
        for (i, r) in out {
            slots[i] = Some(r);
        }
    }
    slots
}

/// Fold the workers' private trackers into the chain's tracker **in
/// worker order** — the counter half of the deterministic reassembly
/// choreography (shared by [`ParallelSortOp`] and
/// [`crate::parallel::parallel_partitioned`]).
pub(crate) fn absorb_worker_trackers(env: &OpEnv, worker_envs: &[OpEnv]) {
    for w in worker_envs {
        env.tracker.absorb(&w.tracker.snapshot());
    }
}

/// Fold the workers' residency high-water marks into the chain's store —
/// the residency half of the reassembly choreography. Call once the
/// workers' output handles have been consumed (their sub-account peaks are
/// final).
pub(crate) fn absorb_worker_stores(env: &OpEnv, worker_envs: &[OpEnv]) {
    let snaps: Vec<_> = worker_envs.iter().map(|e| e.store.snapshot()).collect();
    env.store.absorb_concurrent(&snaps);
}

/// The parallel reordering operator: shard on `shard_attrs`, sort every
/// shard on `key` concurrently, ordered-merge back into one totally
/// ordered segment. Blocking, like the serial Full Sort it replaces.
pub struct ParallelSortOp<I> {
    input: I,
    key_spec: SortSpec,
    key: SortKey,
    shard_attrs: AttrSet,
    workers: usize,
    record: Vec<AttrSet>,
    env: OpEnv,
    done: bool,
}

impl<I: Operator> ParallelSortOp<I> {
    /// Sort everything `input` yields on `key`, sharded on `shard_attrs`
    /// (must be a subset of `key`'s attributes for the merge to restore the
    /// serial order; an empty set degenerates to one shard's worth of work
    /// in shard 0). `workers` is the plan's shard count — the determinism
    /// domain — not the thread count, which [`resolve_threads`] picks at
    /// run time.
    pub fn new(input: I, key: SortSpec, shard_attrs: AttrSet, workers: usize, env: OpEnv) -> Self {
        debug_assert!(
            shard_attrs.is_subset(&key.attr_set()),
            "shard key must be a subset of the sort key"
        );
        ParallelSortOp {
            input,
            key: SortKey::new(&key),
            key_spec: key,
            shard_attrs,
            workers: workers.max(1),
            record: Vec::new(),
            env,
            done: false,
        }
    }

    /// Record boundary layers for these attribute-set prefixes of the sort
    /// key during the ordered merge — same contract (and same free price)
    /// as [`crate::full_sort::FullSortOp::with_recorded_prefixes`].
    pub fn with_recorded_prefixes(mut self, sets: Vec<AttrSet>) -> Self {
        self.record = sets;
        self
    }

    /// The sort key (tests, diagnostics).
    pub fn key_spec(&self) -> &SortSpec {
        &self.key_spec
    }
}

impl<I: Operator> Operator for ParallelSortOp<I> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let shards = self.workers;
        let env = &self.env;
        // Everything from the scatter on belongs to one concurrent phase:
        // the fold-back in phase 4 bounds the combined peak against the
        // parent's in-phase watermark.
        env.store.begin_concurrent_phase();

        // Phase 1 — scatter the upstream stream into shard buffers (store-
        // managed: they spill past the pool budget, so the scatter holds
        // O(pool), never the relation).
        let scatter_span = env
            .trace
            .span_with("par", || format!("scatter shards={shards}"));
        let mut builders: Vec<_> = (0..shards).map(|_| env.store.builder()).collect();
        while let Some(seg) = self.input.next_segment()? {
            let batch = if env.columnar {
                seg.shared_batch().map(Arc::clone)
            } else {
                None
            };
            if let Some(batch) = batch {
                // Per-lane scatter: hash rows straight off the column lanes
                // (bit-identical u64s to `hash_row_on` on the row shim).
                env.tracker.hash(batch.len() as u64);
                for i in 0..batch.len() {
                    let idx = (batch.hash_row(i, &self.shard_attrs) % shards as u64) as usize;
                    builders[idx].push(batch.row(i))?;
                }
            } else {
                let (_, mut stream, _) = seg.into_stream();
                while let Some(row) = stream.next_row()? {
                    env.tracker.hash(1);
                    let idx = (hash_row_on(&row, &self.shard_attrs) % shards as u64) as usize;
                    builders[idx].push(row)?;
                }
            }
        }
        let total: usize = builders.iter().map(|b| b.len()).sum();
        if total == 0 {
            return Ok(None);
        }
        drop(scatter_span);

        // Phase 2 — per-shard environments (fresh tracker + ledger
        // sub-account at M_w) and the scoped worker pool.
        let m_w = per_worker_blocks(env.mem_blocks, shards);
        let mut jobs: Vec<(usize, (SegmentHandle, OpEnv))> = Vec::with_capacity(shards);
        for (i, b) in builders.into_iter().enumerate() {
            jobs.push((i, (b.finish()?, env.shard_env(m_w))));
        }
        let shard_envs: Vec<OpEnv> = jobs.iter().map(|(_, (_, e))| e.clone()).collect();
        let threads = resolve_threads(env, shards, shards);
        let key = &self.key;
        let sorted = run_sharded(shards, threads, jobs, |i, (shard, shard_env)| {
            // The worker span opens on the worker's own OS thread, so each
            // worker lands on its own timeline lane.
            let _span = shard_env
                .trace
                .span_with("worker", || format!("sort_worker shard={i}"));
            sort_stream_to_handle(shard.read(), key, &shard_env, &[]).map(|(handle, _, _)| handle)
        });

        // Phase 3 — deterministic reassembly: absorb worker trackers in
        // shard order, surface the first error (by shard index), then
        // ordered-merge the sorted shards into one output segment.
        absorb_worker_trackers(env, &shard_envs);
        let mut shard_handles = Vec::with_capacity(shards);
        for (i, slot) in sorted.into_iter().enumerate() {
            match slot {
                Some(Ok(h)) => shard_handles.push(h),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(Error::Execution(format!(
                        "a parallel sort worker thread panicked (shard {i} unaccounted)"
                    )))
                }
            }
        }
        let merge_span = env.trace.span("par", "merge");
        let (out, bounds, n) = merge_sorted_handles(shard_handles, key, env, &self.record)?;
        debug_assert_eq!(n, total, "merge must reassemble every scattered row");
        drop(merge_span);

        // Phase 4 — fold the workers' high-water marks into the chain's
        // store (handles were consumed by the merge, so the sub-accounts'
        // peaks are final).
        absorb_worker_stores(env, &shard_envs);
        Ok(Some(Segment::from_handle(out, bounds)))
    }
}

/// Leaf operator yielding exactly one store-managed segment — the input of
/// an in-worker chain (its shard buffer) and of the parallel GROUP BY
/// workers.
pub(crate) struct HandleSource {
    seg: Option<Segment>,
}

impl HandleSource {
    pub(crate) fn new(handle: SegmentHandle) -> Self {
        HandleSource {
            seg: Some(Segment::from_handle(handle, SegmentBounds::none())),
        }
    }
}

impl Operator for HandleSource {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        Ok(self.seg.take())
    }
}

/// The reorder at the head of a chain-parallel span — what `ReorderOp::Par`
/// carries as its inner node, lowered to per-worker operators.
#[derive(Debug, Clone)]
pub enum ParInner {
    /// Per-shard Full Sort; the final row merge restores the serial total
    /// order (the shard key is a subset of the sort key, so key-equal rows
    /// never straddle shards).
    Fs {
        /// The full sort key `perm(WPK) ∘ WOK`.
        key: SortSpec,
    },
    /// Per-worker Hashed Sort over **globally numbered** buckets: the
    /// scatter assigns bucket `b = hash % n_buckets` to worker
    /// `b % workers`, and each worker re-derives the same bucket ids with
    /// the same hash function, so the final emission can interleave worker
    /// outputs in ascending global bucket order — a pure function of the
    /// row values, never of which buckets happened to spill.
    Hs {
        /// Hash key `WHK ⊆ WPK`.
        whk: AttrSet,
        /// Per-bucket sort key.
        key: SortSpec,
        /// Global bucket count (shared by the scatter and every worker).
        n_buckets: usize,
    },
}

/// One fused stage of a chain-parallel span: an optional SS reorder (whose
/// `α` covers the shard key, so units never straddle shards) followed by a
/// window call — both run inside the worker against its ledger sub-account.
#[derive(Debug, Clone)]
pub struct ChainStage {
    /// `Some((alpha, beta))` — run SS in front of this stage's window.
    /// Stage 0 never carries one (the span's head reorder fills that role).
    pub ss: Option<(SortSpec, SortSpec)>,
    /// Window partition key of this stage's call.
    pub wpk: AttrSet,
    /// Window order key of this stage's call.
    pub wok: SortSpec,
    /// The window computation.
    pub func: WindowFunction,
    /// Explicit frame, `None` for the SQL default.
    pub frame: Option<FrameSpec>,
}

/// Run one worker's whole span chain over its shard: head reorder (FS or
/// HS), then every fused stage's SS + window. Returns the finished
/// segments in emission order — at most one for an FS head, one per
/// non-empty bucket (ascending bucket id) for an HS head.
fn run_worker_chain(
    shard: SegmentHandle,
    inner: &ParInner,
    head_record: &[AttrSet],
    stages: &[ChainStage],
    env: &OpEnv,
) -> Result<Vec<(SegmentHandle, SegmentBounds)>> {
    let source = HandleSource::new(shard);
    let mut op: Box<dyn Operator> = match inner {
        ParInner::Fs { key } => Box::new(
            FullSortOp::new(source, key.clone(), env.clone())
                .with_recorded_prefixes(head_record.to_vec()),
        ),
        ParInner::Hs {
            whk,
            key,
            n_buckets,
        } => Box::new(
            HashedSortOp::new(
                source,
                whk.clone(),
                key.clone(),
                HsOptions {
                    n_buckets: *n_buckets,
                    mfv_values: Vec::new(),
                    stable_emission: true,
                },
                env.clone(),
            )
            .with_recorded_prefixes(head_record.to_vec()),
        ),
    };
    for stage in stages {
        if let Some((alpha, beta)) = &stage.ss {
            op = Box::new(SegmentedSortOp::new(
                op,
                alpha.clone(),
                beta.clone(),
                env.clone(),
            ));
        }
        op = Box::new(WindowOp::new(
            op,
            stage.wpk.clone(),
            stage.wok.clone(),
            stage.func.clone(),
            stage.frame,
            env.clone(),
        ));
    }
    let mut out = Vec::new();
    while let Some(seg) = op.next_segment()? {
        out.push(seg.into_handle(&env.store)?);
    }
    Ok(out)
}

enum ChainState {
    /// Nothing pulled yet — the scatter and the workers run on first pull.
    Pending,
    /// HS head: finished bucket segments queued in ascending global bucket
    /// order; the workers' residency folds back when the queue drains.
    Emitting {
        queue: VecDeque<(SegmentHandle, SegmentBounds)>,
        shard_envs: Vec<OpEnv>,
    },
    Done,
}

/// The chain-parallel operator behind a planned `Par` span: scatter on the
/// shard key, run the **whole span** — head reorder, window evaluation and
/// any SS-compatible follow-up stages — inside each worker, then reassemble
/// *finished rows* deterministically:
///
/// * **FS head** — each worker emits at most one finished segment (FS is
///   single-segment and every later stage is 1:1); the non-empty worker
///   outputs are k-way ordered-merged on the span's final ordering, with the
///   boundary layers every worker proved re-recorded for free during the
///   merge. Rows, layers and the segment structure equal the serial chain's.
/// * **HS head** — each worker emits one finished segment per non-empty
///   bucket in ascending global bucket id; the final emission interleaves
///   them back into one ascending bucket-id sequence (pure concatenation —
///   no row merge), one segment per pull. The output is a deterministic
///   permutation of the serial `Hs` chain's segments, invariant across
///   worker, thread and pool configurations.
///
/// Counter and residency choreography is [`ParallelSortOp`]'s: fresh
/// per-worker trackers absorbed in shard order, ledger sub-accounts at
/// `M_w = ⌊M / workers⌋` folded back via `absorb_concurrent` — so for a
/// fixed plan, modeled and pool counters are invariant under the thread
/// count and the residency stays governed at `O(M + Σ_w (M_w + unit_w))`.
pub struct ParallelChainOp<I> {
    input: I,
    inner: ParInner,
    /// Scatter key: the head spec's WPK for an FS head, `WHK` for HS.
    shard_attrs: AttrSet,
    workers: usize,
    head_record: Vec<AttrSet>,
    stages: Vec<ChainStage>,
    env: OpEnv,
    state: ChainState,
}

impl<I: Operator> ParallelChainOp<I> {
    /// A span over `input`: `inner` at the head, then `stages` in order
    /// (stage 0 is the head reorder's own window call). `shard_attrs` is
    /// the scatter key — the head spec's WPK for FS (must be a subset of
    /// the sort key), the hash key for HS (must equal `inner`'s `whk`).
    pub fn new(
        input: I,
        inner: ParInner,
        shard_attrs: AttrSet,
        workers: usize,
        stages: Vec<ChainStage>,
        env: OpEnv,
    ) -> Self {
        debug_assert!(!stages.is_empty(), "a span carries at least its own window");
        match &inner {
            ParInner::Fs { key } => debug_assert!(
                shard_attrs.is_subset(&key.attr_set()),
                "shard key must be a subset of the sort key"
            ),
            ParInner::Hs { whk, .. } => {
                debug_assert_eq!(&shard_attrs, whk, "HS spans scatter on the hash key")
            }
        }
        ParallelChainOp {
            input,
            inner,
            shard_attrs,
            workers: workers.max(1),
            head_record: Vec::new(),
            stages,
            env,
            state: ChainState::Pending,
        }
    }

    /// Record boundary layers for these prefixes of the head sort key in
    /// every worker — the same sets the serial chain would hand its first
    /// window step.
    pub fn with_recorded_prefixes(mut self, sets: Vec<AttrSet>) -> Self {
        self.head_record = sets;
        self
    }

    /// The ordering the span's rows end in: the last SS stage's `α ∘ β`,
    /// else the head sort key — the key the FS-head merge reassembles on.
    fn final_order(&self) -> SortSpec {
        let mut order = match &self.inner {
            ParInner::Fs { key } | ParInner::Hs { key, .. } => key.clone(),
        };
        for stage in &self.stages {
            if let Some((alpha, beta)) = &stage.ss {
                order = alpha.concat(beta);
            }
        }
        order
    }

    /// Scatter, workers, and (for FS) the final merge — everything up to
    /// the first emission.
    fn run_span(&mut self) -> Result<ChainState> {
        let shards = self.workers;
        let env = &self.env;
        env.store.begin_concurrent_phase();

        // Scatter the upstream stream into per-worker shard buffers. An HS
        // head additionally notes which global buckets are non-empty — the
        // interleave order of the final emission.
        let n_buckets = match &self.inner {
            ParInner::Hs { n_buckets, .. } => (*n_buckets).max(1),
            ParInner::Fs { .. } => 0,
        };
        let mut bucket_nonempty = vec![false; n_buckets];
        let scatter_span = env
            .trace
            .span_with("par", || format!("scatter shards={shards}"));
        let mut builders: Vec<_> = (0..shards).map(|_| env.store.builder()).collect();
        let mut route = |h: u64| -> usize {
            if n_buckets == 0 {
                (h % shards as u64) as usize
            } else {
                let b = (h % n_buckets as u64) as usize;
                bucket_nonempty[b] = true;
                b % shards
            }
        };
        while let Some(seg) = self.input.next_segment()? {
            let batch = if env.columnar {
                seg.shared_batch().map(Arc::clone)
            } else {
                None
            };
            if let Some(batch) = batch {
                env.tracker.hash(batch.len() as u64);
                for i in 0..batch.len() {
                    let idx = route(batch.hash_row(i, &self.shard_attrs));
                    builders[idx].push(batch.row(i))?;
                }
            } else {
                let (_, mut stream, _) = seg.into_stream();
                while let Some(row) = stream.next_row()? {
                    env.tracker.hash(1);
                    let idx = route(hash_row_on(&row, &self.shard_attrs));
                    builders[idx].push(row)?;
                }
            }
        }
        let total: usize = builders.iter().map(|b| b.len()).sum();
        if total == 0 {
            return Ok(ChainState::Done);
        }
        drop(scatter_span);

        // Per-worker environments and the scoped pool: every worker runs the
        // whole span chain over its shard.
        let m_w = per_worker_blocks(env.mem_blocks, shards);
        let mut jobs: Vec<(usize, (SegmentHandle, OpEnv))> = Vec::with_capacity(shards);
        for (i, b) in builders.into_iter().enumerate() {
            jobs.push((i, (b.finish()?, env.shard_env(m_w))));
        }
        let shard_envs: Vec<OpEnv> = jobs.iter().map(|(_, (_, e))| e.clone()).collect();
        let threads = resolve_threads(env, shards, shards);
        let (inner, head_record, stages) = (&self.inner, &self.head_record, &self.stages);
        let finished = run_sharded(shards, threads, jobs, |i, (shard, shard_env)| {
            // Opened on the worker's OS thread → one timeline lane per
            // worker, with the whole in-worker chain nested beneath it.
            let _span = shard_env
                .trace
                .span_with("worker", || format!("chain_worker shard={i}"));
            run_worker_chain(shard, inner, head_record, stages, &shard_env)
        });

        // Deterministic reassembly: trackers in shard order, first error by
        // shard index.
        absorb_worker_trackers(env, &shard_envs);
        let mut per_worker: Vec<VecDeque<(SegmentHandle, SegmentBounds)>> =
            Vec::with_capacity(shards);
        for (i, slot) in finished.into_iter().enumerate() {
            match slot {
                Some(Ok(segs)) => per_worker.push(segs.into()),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(Error::Execution(format!(
                        "a parallel chain worker thread panicked (shard {i} unaccounted)"
                    )))
                }
            }
        }

        if n_buckets == 0 {
            // FS head: merge the non-empty workers' finished rows on the
            // span's final ordering, re-recording exactly the boundary
            // layers every worker proved (their attribute sets agree by
            // construction; intersect defensively, in first-worker order).
            let mut handles: Vec<SegmentHandle> = Vec::new();
            let mut record: Option<Vec<AttrSet>> = None;
            for queue in per_worker {
                for (handle, bounds) in queue {
                    match &mut record {
                        None => {
                            record = Some(bounds.layers().iter().map(|l| l.attrs.clone()).collect())
                        }
                        Some(sets) => {
                            sets.retain(|a| bounds.layers().iter().any(|l| &l.attrs == a))
                        }
                    }
                    handles.push(handle);
                }
            }
            let key = SortKey::new(&self.final_order());
            let merge_span = env.trace.span("par", "merge");
            let (out, bounds, n) =
                merge_sorted_handles(handles, &key, env, &record.unwrap_or_default())?;
            debug_assert_eq!(n, total, "merge must reassemble every scattered row");
            drop(merge_span);
            absorb_worker_stores(env, &shard_envs);
            let mut queue = VecDeque::new();
            queue.push_back((out, bounds));
            return Ok(ChainState::Emitting {
                queue,
                shard_envs: Vec::new(),
            });
        }

        // HS head: interleave the workers' finished buckets back into
        // ascending global bucket order. Worker `b % workers` emitted its
        // non-empty buckets ascending, and every stage is 1:1 per segment,
        // so the fronts line up exactly with the scatter's non-empty set.
        let mut queue = VecDeque::new();
        for (b, nonempty) in bucket_nonempty.iter().enumerate() {
            if *nonempty {
                let w = b % shards;
                let seg = per_worker[w].pop_front().ok_or_else(|| {
                    Error::Execution(format!(
                        "parallel chain bucket {b} missing from worker {w}'s output"
                    ))
                })?;
                queue.push_back(seg);
            }
        }
        debug_assert!(
            per_worker.iter().all(|q| q.is_empty()),
            "workers must emit exactly the scattered non-empty buckets"
        );
        Ok(ChainState::Emitting { queue, shard_envs })
    }
}

impl<I: Operator> Operator for ParallelChainOp<I> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        if matches!(self.state, ChainState::Pending) {
            self.state = self.run_span()?;
        }
        match &mut self.state {
            ChainState::Pending => unreachable!("span ran above"),
            ChainState::Done => Ok(None),
            ChainState::Emitting { queue, shard_envs } => match queue.pop_front() {
                Some((handle, bounds)) => Ok(Some(Segment::from_handle(handle, bounds))),
                None => {
                    // The workers' handles are fully consumed — their
                    // sub-account peaks are final, fold them back. (An FS
                    // head already folded back at merge time and left the
                    // list empty.)
                    if !shard_envs.is_empty() {
                        absorb_worker_stores(&self.env, shard_envs);
                    }
                    self.state = ChainState::Done;
                    Ok(None)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_sort::FullSortOp;
    use crate::operator::SegmentSource;
    use crate::segment::SegmentedRows;
    use wf_common::{row, AttrId, OrdElem, Row, RowComparator};

    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect())
    }
    fn aset(ids: &[usize]) -> AttrSet {
        AttrSet::from_iter(ids.iter().map(|&i| AttrId::new(i)))
    }
    fn sample(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                row![
                    (i * 37 % 23) as i64,
                    (i * 13 % 101) as i64,
                    i as i64,
                    "padding-padding-padding"
                ]
            })
            .collect()
    }

    fn run_par(rows: Vec<Row>, workers: usize, threads: usize, m: u64) -> (Vec<Row>, OpEnv) {
        let env = OpEnv::with_memory_blocks(m).with_worker_threads(threads);
        let mut op = ParallelSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows)),
            key(&[0, 1]),
            aset(&[0]),
            workers,
            env.clone(),
        )
        .with_recorded_prefixes(vec![aset(&[0])]);
        let seg = op.next_segment().unwrap().unwrap();
        assert!(op.next_segment().unwrap().is_none(), "blocking single emit");
        (seg.into_rows().unwrap(), env)
    }

    /// The merged output equals a serial Full Sort's output bit for bit —
    /// including tie order (shards preserve input order, stable sorts).
    #[test]
    fn matches_serial_full_sort_rows() {
        let rows = sample(3000);
        let env = OpEnv::with_memory_blocks(4);
        let mut fs = FullSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows.clone())),
            key(&[0, 1]),
            env.clone(),
        );
        let serial = fs.next_segment().unwrap().unwrap().into_rows().unwrap();
        for workers in [1usize, 2, 4] {
            let (par, _) = run_par(rows.clone(), workers, workers, 4);
            assert_eq!(par, serial, "workers={workers}");
        }
        let cmp = RowComparator::new(&key(&[0, 1]));
        assert!(serial
            .windows(2)
            .all(|w| cmp.compare(&w[0], &w[1]) != std::cmp::Ordering::Greater));
    }

    /// Thread count changes nothing but wall clock: rows, boundary layers,
    /// modeled counters and pool counters are identical across overrides.
    #[test]
    fn thread_count_is_invisible_to_counters() {
        let rows = sample(2500);
        let mut reference: Option<(Vec<Row>, wf_storage::CostSnapshot, u64)> = None;
        for threads in [1usize, 2, 4] {
            let env = OpEnv::with_memory_blocks(2).with_worker_threads(threads);
            let mut op = ParallelSortOp::new(
                SegmentSource::new(SegmentedRows::single_segment(rows.clone())),
                key(&[0, 1]),
                aset(&[0]),
                4,
                env.clone(),
            );
            let seg = op.next_segment().unwrap().unwrap();
            let layers = seg.bounds.layers().to_vec();
            let out = seg.into_rows().unwrap();
            let snap = env.tracker.snapshot();
            let pool_writes = env.store.snapshot().spill_blocks_written;
            match &reference {
                None => reference = Some((out, snap, pool_writes)),
                Some((r_rows, r_snap, r_pool)) => {
                    assert_eq!(&out, r_rows, "threads={threads}");
                    assert_eq!(&snap, r_snap, "threads={threads}");
                    assert_eq!(pool_writes, *r_pool, "threads={threads}");
                }
            }
            let _ = layers;
        }
    }

    /// Recorded prefix layers equal the serial sort's (same output order,
    /// same change positions).
    #[test]
    fn records_same_layers_as_serial_sort() {
        let rows = sample(1200);
        let env = OpEnv::with_memory_blocks(4);
        let mut fs = FullSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows.clone())),
            key(&[0, 1]),
            env.clone(),
        )
        .with_recorded_prefixes(vec![aset(&[0])]);
        let serial = fs.next_segment().unwrap().unwrap();
        let serial_layer = serial
            .bounds
            .layers()
            .iter()
            .find(|l| l.attrs == aset(&[0]))
            .unwrap()
            .clone();

        let env2 = OpEnv::with_memory_blocks(4);
        let mut par = ParallelSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows)),
            key(&[0, 1]),
            aset(&[0]),
            4,
            env2.clone(),
        )
        .with_recorded_prefixes(vec![aset(&[0])]);
        let seg = par.next_segment().unwrap().unwrap();
        let par_layer = seg
            .bounds
            .layers()
            .iter()
            .find(|l| l.attrs == aset(&[0]))
            .unwrap()
            .clone();
        assert_eq!(par_layer, serial_layer);
    }

    /// Bounded vs unbounded pool: identical rows and identical modeled
    /// counters — the parallel path preserves the store invariant.
    #[test]
    fn bounded_and_unbounded_pools_agree() {
        let rows = sample(2000);
        let (bounded, env_b) = run_par(rows.clone(), 4, 4, 2);
        let env_u = OpEnv::with_memory_blocks(2).with_unbounded_pool();
        let mut op = ParallelSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows)),
            key(&[0, 1]),
            aset(&[0]),
            4,
            env_u.clone(),
        )
        .with_recorded_prefixes(vec![aset(&[0])]);
        let unbounded = op.next_segment().unwrap().unwrap().into_rows().unwrap();
        assert_eq!(bounded, unbounded);
        assert_eq!(env_b.tracker.snapshot(), env_u.tracker.snapshot());
        assert_eq!(env_u.store.snapshot().spill_blocks_written, 0);
    }

    #[test]
    fn empty_input_yields_nothing() {
        let env = OpEnv::with_memory_blocks(2);
        let mut op = ParallelSortOp::new(
            SegmentSource::new(SegmentedRows::empty()),
            key(&[0]),
            aset(&[0]),
            4,
            env,
        );
        assert!(op.next_segment().unwrap().is_none());
    }

    #[test]
    fn helpers_clamp_sanely() {
        let env = OpEnv::with_memory_blocks(4).with_worker_threads(0);
        assert_eq!(resolve_threads(&env, 4, 4), 4);
        assert_eq!(resolve_threads(&env, 8, 4), 4, "clamped to shard count");
        let forced = env.with_worker_threads(2);
        assert_eq!(resolve_threads(&forced, 4, 4), 2);
        assert_eq!(per_worker_blocks(8, 4), 2);
        assert_eq!(per_worker_blocks(2, 4), 1, "floor one block");
        assert_eq!(per_worker_blocks(8, 0), 8);
    }

    /// Degenerate budgets and shard counts stay sane: a pool smaller than
    /// the worker count still grants every worker one block, and a zero
    /// shard count resolves to one thread instead of zero.
    #[test]
    fn helpers_survive_degenerate_budgets() {
        assert_eq!(per_worker_blocks(1, 4), 1, "M < workers floors at 1");
        assert_eq!(per_worker_blocks(0, 4), 1, "M = 0 floors at 1");
        assert_eq!(per_worker_blocks(0, 0), 1);
        let env = OpEnv::with_memory_blocks(4).with_worker_threads(0);
        assert_eq!(resolve_threads(&env, 4, 0), 1, "no shards → one thread");
        let forced = env.with_worker_threads(16);
        assert_eq!(resolve_threads(&forced, 2, 3), 3, "override clamps too");
    }

    fn rank_stage(wpk: &[usize], wok: &[usize]) -> ChainStage {
        ChainStage {
            ss: None,
            wpk: aset(wpk),
            wok: key(wok),
            func: WindowFunction::Rank,
            frame: None,
        }
    }

    /// Rows with heavy ties on the sort key `(0, 1)` and a distinguishing
    /// payload column: stability violations show up as row-order diffs.
    fn tied_sample(n: usize) -> Vec<Row> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = state >> 16;
                row![(r % 24) as i64, ((r >> 8) % 50) as i64, (r >> 16) as i64]
            })
            .collect()
    }

    /// Tie order within equal sort keys survives the span: scatter, the
    /// in-worker stable sort, the in-worker window and the merge all
    /// preserve arrival order, matching the serial chain row-for-row.
    #[test]
    fn fs_chain_span_preserves_tie_order() {
        let rows = tied_sample(4000);
        let env = OpEnv::with_memory_blocks(4);
        let serial = serial_fs_chain(rows.clone(), &env);
        for workers in [2usize, 4] {
            let env_p = OpEnv::with_memory_blocks(2);
            let mut op = ParallelChainOp::new(
                SegmentSource::new(SegmentedRows::single_segment(rows.clone())),
                ParInner::Fs { key: key(&[0, 1]) },
                aset(&[0]),
                workers,
                vec![rank_stage(&[0], &[1])],
                env_p.clone(),
            )
            .with_recorded_prefixes(vec![aset(&[0]), aset(&[0, 1])]);
            let seg = op.next_segment().unwrap().unwrap();
            let out = seg.into_rows().unwrap();
            assert_eq!(out, serial[0].0, "workers={workers}");
        }

        // Same probe through the one-pass (staged) window path: a running
        // sum over the SQL-default frame.
        let sum_stage = || ChainStage {
            ss: None,
            wpk: aset(&[0]),
            wok: key(&[1]),
            func: WindowFunction::Sum(AttrId::new(2)),
            frame: None,
        };
        let serial_sum = {
            let env = OpEnv::with_memory_blocks(4);
            let fs = FullSortOp::new(
                SegmentSource::new(SegmentedRows::single_segment(rows.clone())),
                key(&[0, 1]),
                env.clone(),
            )
            .with_recorded_prefixes(vec![aset(&[0]), aset(&[0, 1])]);
            let mut win = WindowOp::new(
                fs,
                aset(&[0]),
                key(&[1]),
                WindowFunction::Sum(AttrId::new(2)),
                None,
                env.clone(),
            );
            let mut out = Vec::new();
            while let Some(seg) = win.next_segment().unwrap() {
                out.extend(seg.into_rows().unwrap());
            }
            out
        };
        for workers in [2usize, 4] {
            let env_p = OpEnv::with_memory_blocks(2);
            let mut op = ParallelChainOp::new(
                SegmentSource::new(SegmentedRows::single_segment(rows.clone())),
                ParInner::Fs { key: key(&[0, 1]) },
                aset(&[0]),
                workers,
                vec![sum_stage()],
                env_p.clone(),
            )
            .with_recorded_prefixes(vec![aset(&[0]), aset(&[0, 1])]);
            let mut out = Vec::new();
            while let Some(seg) = op.next_segment().unwrap() {
                out.extend(seg.into_rows().unwrap());
            }
            assert_eq!(out, serial_sum, "sum workers={workers}");
        }
    }

    fn serial_fs_chain(
        rows: Vec<Row>,
        env: &OpEnv,
    ) -> Vec<(Vec<Row>, Vec<crate::segment::BoundaryLayer>)> {
        let fs = FullSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows)),
            key(&[0, 1]),
            env.clone(),
        )
        .with_recorded_prefixes(vec![aset(&[0]), aset(&[0, 1])]);
        let mut win = WindowOp::new(
            fs,
            aset(&[0]),
            key(&[1]),
            WindowFunction::Rank,
            None,
            env.clone(),
        );
        let mut out = Vec::new();
        while let Some(seg) = win.next_segment().unwrap() {
            let layers = seg.bounds.layers().to_vec();
            out.push((seg.into_rows().unwrap(), layers));
        }
        out
    }

    /// FS-head chain span: rows *and* boundary layers equal the serial
    /// FS → Window chain's, for every worker count — including workers
    /// exceeding the distinct shard values and a pool smaller than the
    /// worker count.
    #[test]
    fn fs_chain_span_matches_serial_chain() {
        let rows = sample(2_000);
        let env = OpEnv::with_memory_blocks(4);
        let serial = serial_fs_chain(rows.clone(), &env);
        assert_eq!(serial.len(), 1, "FS chain emits one segment");
        for (workers, m) in [(1usize, 4u64), (2, 4), (4, 4), (4, 2), (31, 4)] {
            let env_p = OpEnv::with_memory_blocks(m);
            let mut op = ParallelChainOp::new(
                SegmentSource::new(SegmentedRows::single_segment(rows.clone())),
                ParInner::Fs { key: key(&[0, 1]) },
                aset(&[0]),
                workers,
                vec![rank_stage(&[0], &[1])],
                env_p.clone(),
            )
            .with_recorded_prefixes(vec![aset(&[0]), aset(&[0, 1])]);
            let seg = op.next_segment().unwrap().unwrap();
            let layers = seg.bounds.layers().to_vec();
            let out = seg.into_rows().unwrap();
            assert!(op.next_segment().unwrap().is_none());
            assert_eq!(out, serial[0].0, "workers={workers} M={m}");
            assert_eq!(layers, serial[0].1, "workers={workers} M={m}");
        }
    }

    /// HS-head chain span: one finished bucket per pull in ascending global
    /// bucket order — the exact same segments whatever the worker count,
    /// and the same rows (as a multiset, per bucket) as the serial
    /// HS → Window chain.
    #[test]
    fn hs_chain_span_is_worker_count_invariant() {
        let rows = sample(2_000);
        let n_buckets = 16usize;

        // Serial chain, stable emission so bucket order is comparable.
        let env_s = OpEnv::with_memory_blocks(4);
        let hs = HashedSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows.clone())),
            aset(&[0]),
            key(&[0, 1]),
            HsOptions {
                n_buckets,
                mfv_values: Vec::new(),
                stable_emission: true,
            },
            env_s.clone(),
        );
        let mut win = WindowOp::new(
            hs,
            aset(&[0]),
            key(&[1]),
            WindowFunction::Rank,
            None,
            env_s.clone(),
        );
        let mut serial = Vec::new();
        while let Some(seg) = win.next_segment().unwrap() {
            serial.push(seg.into_rows().unwrap());
        }

        for workers in [1usize, 2, 4] {
            let env_p = OpEnv::with_memory_blocks(4);
            let mut op = ParallelChainOp::new(
                SegmentSource::new(SegmentedRows::single_segment(rows.clone())),
                ParInner::Hs {
                    whk: aset(&[0]),
                    key: key(&[0, 1]),
                    n_buckets,
                },
                aset(&[0]),
                workers,
                vec![rank_stage(&[0], &[1])],
                env_p.clone(),
            );
            let mut par = Vec::new();
            while let Some(seg) = op.next_segment().unwrap() {
                par.push(seg.into_rows().unwrap());
            }
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn chain_span_empty_input_yields_nothing() {
        let env = OpEnv::with_memory_blocks(2);
        let mut op = ParallelChainOp::new(
            SegmentSource::new(SegmentedRows::empty()),
            ParInner::Fs { key: key(&[0, 1]) },
            aset(&[0]),
            4,
            vec![rank_stage(&[0], &[1])],
            env,
        );
        assert!(op.next_segment().unwrap().is_none());
    }
}
