//! The pull-based, segment-at-a-time operator interface.
//!
//! The paper's operators (§3) pipeline **complete window partitions**
//! between Segmented Sort and window evaluation: a reorder operator emits a
//! *segment* — a bucket (HS), a sorted run of complete partitions (FS), or a
//! refined unit run (SS) — and the window operator consumes it without ever
//! needing to see the rest of the relation. [`Operator`] is the physical
//! realization of that contract:
//!
//! ```text
//! trait Operator { fn next_segment(&mut self) -> Result<Option<Vec<Row>>>; }
//! ```
//!
//! Every physical operator implements it:
//!
//! * [`TableScan`] — leaf over a [`wf_storage::Table`]; one segment (a heap
//!   table is trivially `R_{∅,ε}`), scan I/O charged on first pull,
//! * [`crate::full_sort::FullSortOp`] — blocking; one totally ordered
//!   segment,
//! * [`crate::hashed_sort::HashedSortOp`] — partition phase on first pull,
//!   then **one bucket per pull**, each sorted lazily at emission (the
//!   streaming refinement of §3.2: downstream sees bucket *k* while buckets
//!   *k+1..n* are still unsorted),
//! * [`crate::segmented_sort::SegmentedSortOp`] — fully streaming; pulls one
//!   upstream segment, sorts its α-groups, emits it,
//! * [`crate::window::WindowOp`] — fully streaming; pulls one segment,
//!   appends the derived column partition by partition, emits it,
//! * [`crate::relational::FilterOp`], [`crate::relational::GroupByHashOp`],
//!   [`crate::relational::GroupBySortOp`] — the upstream relational ops,
//! * [`crate::parallel::ParallelOp`] — scatter on first pull, then worker
//!   outputs segment by segment.
//!
//! Memory behaviour follows: once a blocking reorder has formed segments,
//! everything downstream holds **one segment at a time** (bounded by the
//! largest bucket / unit), instead of the whole relation. The free functions
//! (`full_sort`, `hashed_sort`, …) remain as thin wrappers that build the
//! operator over a [`SegmentSource`] and [`drain`] it, so batch callers and
//! the old-vs-new equivalence tests keep working unchanged.
//!
//! Cost accounting is unchanged by construction: operators charge the same
//! [`wf_storage::CostTracker`] counters at the same granularity as the
//! batch implementations did — the tests in `tests/pipeline_equivalence.rs`
//! assert exact equality of outputs *and* work counters.

use crate::env::OpEnv;
use crate::segment::{SegmentBounds, SegmentedRows};
use std::collections::VecDeque;
use wf_common::{Result, Row};
use wf_storage::Table;

/// One segment flowing between operators: rows in order plus the boundary
/// layers the chain has already proven over them (see [`SegmentBounds`]).
/// Operators that reorder rows must drop or filter the bounds; operators
/// that preserve row order pass them through and may add layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    pub rows: Vec<Row>,
    pub bounds: SegmentBounds,
}

impl Segment {
    /// A segment with no boundary metadata.
    pub fn plain(rows: Vec<Row>) -> Self {
        Segment {
            rows,
            bounds: SegmentBounds::none(),
        }
    }

    /// A segment carrying boundary layers.
    pub fn with_bounds(rows: Vec<Row>, bounds: SegmentBounds) -> Self {
        Segment { rows, bounds }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A pull-based operator yielding one segment of complete window partitions
/// at a time. `Ok(None)` signals exhaustion; implementations need not be
/// fused (behaviour after exhaustion is `Ok(None)` for all in-tree
/// operators).
pub trait Operator {
    /// Pull the next segment. Segments are non-empty unless documented
    /// otherwise; [`drain`] skips empty ones defensively.
    fn next_segment(&mut self) -> Result<Option<Segment>>;
}

// Box<dyn Operator> chains need the trait on the box itself.
impl<O: Operator + ?Sized> Operator for Box<O> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        (**self).next_segment()
    }
}

/// Drain an operator into a materialized [`SegmentedRows`], preserving the
/// segment boundaries and bounds metadata it emitted.
pub fn drain(op: &mut dyn Operator) -> Result<SegmentedRows> {
    let mut rows: Vec<Row> = Vec::new();
    let mut seg_starts: Vec<usize> = Vec::new();
    let mut bounds: Vec<SegmentBounds> = Vec::new();
    while let Some(seg) = op.next_segment()? {
        if seg.is_empty() {
            continue;
        }
        seg_starts.push(rows.len());
        bounds.push(seg.bounds);
        rows.extend(seg.rows);
    }
    Ok(SegmentedRows::from_parts_with_bounds(
        rows, seg_starts, bounds,
    ))
}

/// Leaf operator over an already-materialized segmented relation: yields its
/// segments (with any carried bounds) in order. The adapter behind every
/// free-function wrapper.
pub struct SegmentSource {
    segments: VecDeque<Segment>,
}

impl SegmentSource {
    /// Split a segmented relation into its segments.
    pub fn new(input: SegmentedRows) -> Self {
        SegmentSource {
            segments: input
                .into_segments()
                .into_iter()
                .map(|(rows, bounds)| Segment::with_bounds(rows, bounds))
                .collect(),
        }
    }
}

impl Operator for SegmentSource {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        Ok(self.segments.pop_front())
    }
}

/// Leaf operator scanning a heap table: charges one sequential scan on the
/// first pull and emits all rows as a single segment (an unordered table is
/// the trivial segmented relation `R_{∅,ε}`).
pub struct TableScan<'a> {
    table: &'a Table,
    env: OpEnv,
    done: bool,
}

impl<'a> TableScan<'a> {
    /// Scan over `table` charging `env`'s tracker.
    pub fn new(table: &'a Table, env: OpEnv) -> Self {
        TableScan {
            table,
            env,
            done: false,
        }
    }
}

impl Operator for TableScan<'_> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        self.table.charge_scan(&self.env.tracker);
        if self.table.is_empty() {
            return Ok(None);
        }
        Ok(Some(Segment::plain(self.table.rows().to_vec())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, DataType, Schema};

    #[test]
    fn segment_source_yields_segments_in_order() {
        let s = SegmentedRows::from_parts(vec![row![1], row![2], row![3], row![4]], vec![0, 2, 3]);
        let mut src = SegmentSource::new(s.clone());
        let rows = |o: Option<Segment>| o.map(|s| s.rows);
        assert_eq!(
            rows(src.next_segment().unwrap()),
            Some(vec![row![1], row![2]])
        );
        assert_eq!(rows(src.next_segment().unwrap()), Some(vec![row![3]]));
        assert_eq!(rows(src.next_segment().unwrap()), Some(vec![row![4]]));
        assert_eq!(src.next_segment().unwrap(), None);
        // Round trip through drain.
        let mut src2 = SegmentSource::new(s.clone());
        assert_eq!(drain(&mut src2).unwrap(), s);
    }

    #[test]
    fn empty_source_drains_empty() {
        let mut src = SegmentSource::new(SegmentedRows::empty());
        assert_eq!(drain(&mut src).unwrap(), SegmentedRows::empty());
    }

    #[test]
    fn table_scan_charges_once_and_is_fused() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let mut t = Table::new(schema);
        t.push(row![1]);
        t.push(row![2]);
        let env = OpEnv::with_memory_blocks(4);
        let mut scan = TableScan::new(&t, env.clone());
        let seg = scan.next_segment().unwrap().unwrap();
        assert_eq!(seg.len(), 2);
        assert_eq!(scan.next_segment().unwrap(), None);
        assert_eq!(scan.next_segment().unwrap(), None);
        let s = env.tracker.snapshot();
        assert_eq!(s.blocks_read, t.block_count());
        assert_eq!(s.rows_moved, 2);
    }

    #[test]
    fn empty_table_scan_still_charges_scan() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let t = Table::new(schema);
        let env = OpEnv::with_memory_blocks(4);
        let mut scan = TableScan::new(&t, env.clone());
        assert_eq!(scan.next_segment().unwrap(), None);
        assert_eq!(env.tracker.snapshot().blocks_read, 0);
    }
}
