//! The pull-based, segment-at-a-time operator interface.
//!
//! The paper's operators (§3) pipeline **complete window partitions**
//! between Segmented Sort and window evaluation: a reorder operator emits a
//! *segment* — a bucket (HS), a sorted run of complete partitions (FS), or a
//! refined unit run (SS) — and the window operator consumes it without ever
//! needing to see the rest of the relation. [`Operator`] is the physical
//! realization of that contract:
//!
//! ```text
//! trait Operator { fn next_segment(&mut self) -> Result<Option<Segment>>; }
//! ```
//!
//! A [`Segment`] pairs boundary metadata ([`SegmentBounds`]) with its rows,
//! which live either inline (`Vec<Row>`, the batch wrappers' form) or in a
//! [`wf_storage::SegmentHandle`] managed by the environment's
//! [`wf_storage::SegmentStore`] — transparently memory-resident or spilled.
//! Operators *consume* segments as streaming block iterators
//! ([`Segment::into_stream`]) or materialize them ([`Segment::into_parts`])
//! when an algorithm genuinely needs random access; they *produce* segments
//! through the store, so a chain's physical resident set is bounded by the
//! pool budget plus the largest unit any single operator must hold.
//!
//! Every physical operator implements it:
//!
//! * [`TableScan`] — leaf over a [`wf_storage::Table`]; one segment backed
//!   by a zero-copy shared handle (a heap table is trivially `R_{∅,ε}`);
//!   downstream operators stream it block-at-a-time instead of receiving a
//!   clone of the relation. Scan I/O is charged on the first pull,
//! * [`crate::full_sort::FullSortOp`] — blocking; one totally ordered
//!   segment, fed to the external sorter as a row stream,
//! * [`crate::hashed_sort::HashedSortOp`] — partition phase on first pull,
//!   then **one bucket per pull**, each sorted lazily at emission,
//! * [`crate::segmented_sort::SegmentedSortOp`] — fully streaming; holds
//!   one unit at a time even for spilled segments,
//! * [`crate::window::WindowOp`] — fully streaming; spilled segments are
//!   evaluated partition-at-a-time (Shi & Wang-style spilling aggregation
//!   for the SQL-default frame) instead of materialized,
//! * [`crate::relational::FilterOp`], [`crate::relational::GroupByHashOp`],
//!   [`crate::relational::GroupBySortOp`] — the upstream relational ops,
//! * [`crate::parallel::ParallelOp`] — scatter on first pull, then worker
//!   outputs segment by segment.
//!
//! Cost accounting is unchanged by construction: operators charge the same
//! [`wf_storage::CostTracker`] counters at the same granularity as the
//! materialized implementations, and the segment store's pool traffic is
//! metered separately (see `wf_storage::segstore`) — the tests in
//! `tests/pipeline_equivalence.rs` and `tests/memory_stress.rs` assert
//! exact equality of outputs *and* work counters across both the
//! batch/streaming and the bounded/unbounded-pool axes.

use crate::env::OpEnv;
use crate::segment::{SegmentBounds, SegmentedRows};
use std::collections::VecDeque;
use std::sync::Arc;
use wf_common::{Result, Row};
use wf_storage::{RowBatch, SegmentHandle, SegmentReader, SegmentStore, Table};

/// One segment flowing between operators: rows in order plus the boundary
/// layers the chain has already proven over them (see [`SegmentBounds`]).
/// Operators that reorder rows must drop or filter the bounds; operators
/// that preserve row order pass them through and may add layers.
#[derive(Debug)]
pub struct Segment {
    data: SegData,
    pub bounds: SegmentBounds,
}

#[derive(Debug)]
enum SegData {
    /// Inline rows (batch wrappers, tiny segments).
    Rows(Vec<Row>),
    /// Store-managed rows — resident in the pool or spilled.
    Handle(SegmentHandle),
}

/// Streaming row iterator over a consumed segment.
pub enum SegStream {
    Rows(std::vec::IntoIter<Row>),
    Handle(SegmentReader),
}

impl SegStream {
    /// Next row, or `None` at the end.
    pub fn next_row(&mut self) -> Result<Option<Row>> {
        match self {
            SegStream::Rows(it) => Ok(it.next()),
            SegStream::Handle(r) => r.next_row(),
        }
    }
}

impl Iterator for SegStream {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Result<Row>> {
        self.next_row().transpose()
    }
}

impl Segment {
    /// A segment with no boundary metadata.
    pub fn plain(rows: Vec<Row>) -> Self {
        Segment {
            data: SegData::Rows(rows),
            bounds: SegmentBounds::none(),
        }
    }

    /// A segment carrying boundary layers.
    pub fn with_bounds(rows: Vec<Row>, bounds: SegmentBounds) -> Self {
        Segment {
            data: SegData::Rows(rows),
            bounds,
        }
    }

    /// A store-managed segment.
    pub fn from_handle(handle: SegmentHandle, bounds: SegmentBounds) -> Self {
        Segment {
            data: SegData::Handle(handle),
            bounds,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            SegData::Rows(r) => r.len(),
            SegData::Handle(h) => h.len(),
        }
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the rows live on the spill device (streaming consumption
    /// is then the only way to stay within the residency bound).
    pub fn is_spilled(&self) -> bool {
        matches!(&self.data, SegData::Handle(h) if h.is_spilled())
    }

    /// True when the segment is managed by the store (operators mirror this
    /// on their outputs so batch wrappers stay pool-free while streaming
    /// chains stay residency-tracked).
    pub fn is_store_backed(&self) -> bool {
        matches!(&self.data, SegData::Handle(_))
    }

    /// The shared columnar batch behind this segment, if it carries one —
    /// operators with per-column fast paths (filter masks, scatter hashing)
    /// peek here before falling back to the row stream.
    pub fn shared_batch(&self) -> Option<&Arc<RowBatch>> {
        match &self.data {
            SegData::Handle(h) => h.as_batch(),
            SegData::Rows(_) => None,
        }
    }

    /// Materialize into rows plus bounds (charges pool reads for a spilled
    /// segment; releases the pool charge of a resident one).
    pub fn into_parts(self) -> Result<(Vec<Row>, SegmentBounds)> {
        let rows = match self.data {
            SegData::Rows(r) => r,
            SegData::Handle(h) => h.into_rows()?,
        };
        Ok((rows, self.bounds))
    }

    /// Materialize into rows, discarding bounds.
    pub fn into_rows(self) -> Result<Vec<Row>> {
        Ok(self.into_parts()?.0)
    }

    /// Decompose into the underlying store handle plus bounds, admitting
    /// inline rows to `store` first — how the parallel scheduler ships
    /// finished worker segments across the reassembly step.
    pub(crate) fn into_handle(
        self,
        store: &Arc<SegmentStore>,
    ) -> Result<(SegmentHandle, SegmentBounds)> {
        match self.data {
            SegData::Handle(h) => Ok((h, self.bounds)),
            SegData::Rows(r) => Ok((store.admit(r)?, self.bounds)),
        }
    }

    /// Consume as a streaming row iterator; returns `(row count, stream,
    /// bounds)`.
    pub fn into_stream(self) -> (usize, SegStream, SegmentBounds) {
        let n = self.len();
        let stream = match self.data {
            SegData::Rows(r) => SegStream::Rows(r.into_iter()),
            SegData::Handle(h) => SegStream::Handle(h.read()),
        };
        (n, stream, self.bounds)
    }
}

/// A pull-based operator yielding one segment of complete window partitions
/// at a time. `Ok(None)` signals exhaustion; implementations need not be
/// fused (behaviour after exhaustion is `Ok(None)` for all in-tree
/// operators).
pub trait Operator {
    /// Pull the next segment. Segments are non-empty unless documented
    /// otherwise; [`drain`] skips empty ones defensively.
    fn next_segment(&mut self) -> Result<Option<Segment>>;
}

// Box<dyn Operator> chains need the trait on the box itself.
impl<O: Operator + ?Sized> Operator for Box<O> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        (**self).next_segment()
    }
}

/// Drain an operator into a materialized [`SegmentedRows`], preserving the
/// segment boundaries and bounds metadata it emitted.
pub fn drain(op: &mut dyn Operator) -> Result<SegmentedRows> {
    let mut rows: Vec<Row> = Vec::new();
    let mut seg_starts: Vec<usize> = Vec::new();
    let mut bounds: Vec<SegmentBounds> = Vec::new();
    while let Some(seg) = op.next_segment()? {
        if seg.is_empty() {
            continue;
        }
        seg_starts.push(rows.len());
        let (seg_rows, seg_bounds) = seg.into_parts()?;
        bounds.push(seg_bounds);
        rows.extend(seg_rows);
    }
    Ok(SegmentedRows::from_parts_with_bounds(
        rows, seg_starts, bounds,
    ))
}

/// Leaf operator over an already-materialized segmented relation: yields its
/// segments (with any carried bounds) in order. The adapter behind every
/// free-function wrapper.
pub struct SegmentSource {
    segments: VecDeque<Segment>,
}

impl SegmentSource {
    /// Split a segmented relation into its segments.
    pub fn new(input: SegmentedRows) -> Self {
        SegmentSource {
            segments: input
                .into_segments()
                .into_iter()
                .map(|(rows, bounds)| Segment::with_bounds(rows, bounds))
                .collect(),
        }
    }
}

impl Operator for SegmentSource {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        Ok(self.segments.pop_front())
    }
}

/// Leaf operator scanning a heap table: charges one sequential scan on the
/// first pull and emits all rows as a single segment (an unordered table is
/// the trivial segmented relation `R_{∅,ε}`). The segment is backed by a
/// **zero-copy shared handle** over the table's rows — the heap table is
/// modeled as on-disk, so it never counts toward pipeline residency, and
/// downstream operators stream it block-at-a-time instead of receiving a
/// clone of the whole relation.
pub struct TableScan<'a> {
    table: &'a Table,
    env: OpEnv,
    done: bool,
}

impl<'a> TableScan<'a> {
    /// Scan over `table` charging `env`'s tracker.
    pub fn new(table: &'a Table, env: OpEnv) -> Self {
        TableScan {
            table,
            env,
            done: false,
        }
    }
}

impl Operator for TableScan<'_> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        self.table.charge_scan(&self.env.tracker);
        if self.table.is_empty() {
            return Ok(None);
        }
        let handle = if self.env.columnar {
            SegmentStore::shared_batch(self.table.shared_batch())
        } else {
            SegmentStore::shared(self.table.shared_rows())
        };
        Ok(Some(Segment::from_handle(handle, SegmentBounds::none())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, DataType, Schema};

    #[test]
    fn segment_source_yields_segments_in_order() {
        let s = SegmentedRows::from_parts(vec![row![1], row![2], row![3], row![4]], vec![0, 2, 3]);
        let mut src = SegmentSource::new(s.clone());
        let rows = |o: Option<Segment>| o.map(|s| s.into_rows().unwrap());
        assert_eq!(
            rows(src.next_segment().unwrap()),
            Some(vec![row![1], row![2]])
        );
        assert_eq!(rows(src.next_segment().unwrap()), Some(vec![row![3]]));
        assert_eq!(rows(src.next_segment().unwrap()), Some(vec![row![4]]));
        assert!(src.next_segment().unwrap().is_none());
        // Round trip through drain.
        let mut src2 = SegmentSource::new(s.clone());
        assert_eq!(drain(&mut src2).unwrap(), s);
    }

    #[test]
    fn empty_source_drains_empty() {
        let mut src = SegmentSource::new(SegmentedRows::empty());
        assert_eq!(drain(&mut src).unwrap(), SegmentedRows::empty());
    }

    #[test]
    fn table_scan_charges_once_and_is_fused() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let mut t = Table::new(schema);
        t.push(row![1]);
        t.push(row![2]);
        let env = OpEnv::with_memory_blocks(4);
        let mut scan = TableScan::new(&t, env.clone());
        let seg = scan.next_segment().unwrap().unwrap();
        assert_eq!(seg.len(), 2);
        // The scan's segment is a zero-copy view, never pool-charged.
        assert!(seg.is_store_backed() && !seg.is_spilled());
        assert_eq!(env.store.snapshot().resident_bytes, 0);
        assert!(scan.next_segment().unwrap().is_none());
        assert!(scan.next_segment().unwrap().is_none());
        let s = env.tracker.snapshot();
        assert_eq!(s.blocks_read, t.block_count());
        assert_eq!(s.rows_moved, 2);
    }

    #[test]
    fn table_scan_segment_streams_rows() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let mut t = Table::new(schema);
        for i in 0..5 {
            t.push(row![i]);
        }
        let env = OpEnv::with_memory_blocks(4);
        let mut scan = TableScan::new(&t, env.clone());
        let seg = scan.next_segment().unwrap().unwrap();
        let (n, stream, _) = seg.into_stream();
        assert_eq!(n, 5);
        let got: Vec<Row> = stream.map(|r| r.unwrap()).collect();
        assert_eq!(got, t.rows());
    }

    #[test]
    fn empty_table_scan_still_charges_scan() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let t = Table::new(schema);
        let env = OpEnv::with_memory_blocks(4);
        let mut scan = TableScan::new(&t, env.clone());
        assert!(scan.next_segment().unwrap().is_none());
        assert_eq!(env.tracker.snapshot().blocks_read, 0);
    }
}
