//! # wf-exec
//!
//! Physical operators for the wfopt engine, all implementing the pull-based
//! segment-at-a-time [`Operator`] trait ([`operator`] module):
//!
//! * [`operator`] — the `Operator` trait itself plus the leaves
//!   ([`TableScan`], [`SegmentSource`]) and the [`drain`] adapter that
//!   materializes a chain into a [`SegmentedRows`],
//! * [`full_sort`](mod@full_sort) — **FS**: external merge sort (replacement-selection run
//!   formation + F-way merge bounded by the memory budget `M`); blocking,
//!   emits one totally ordered segment,
//! * [`hashed_sort`](mod@hashed_sort) — **HS**: hash partitioning into buckets of complete
//!   window partitions with victim spilling and the MFV optimization
//!   (paper §3.2); emits **one lazily sorted bucket per pull**,
//! * [`segmented_sort`](mod@segmented_sort) — **SS**: per-unit sorts of `α`-groups inside the
//!   segments of an already-segmented input (paper §3.3); fully streaming,
//! * [`window`] — the window-function operator proper: partition and peer
//!   detection, ranking / distribution / reference / aggregate functions
//!   with ROWS and RANGE frames; fully streaming,
//! * [`relational`] — filter and hash/sort GROUP BY upstream operators,
//! * [`parallel`] — hash-partitioned parallel evaluation (paper §3.5),
//! * [`scheduler`] — the planner-driven parallel execution subsystem:
//!   partition-sharded worker pool, per-worker ledger sub-accounts, whole
//!   chain-parallel spans (in-worker window evaluation behind the
//!   `ReorderOp::Par` plan node) and their deterministic reassembly,
//! * [`segment`] — the segmented-rows representation flowing between
//!   operators (segment boundaries are physical metadata, mirroring how the
//!   paper's PostgreSQL operators pipeline window partitions).
//!
//! The free functions (`full_sort`, `hashed_sort`, `segmented_sort`,
//! `evaluate_window`, …) are thin wrappers that build the corresponding
//! operator over a [`SegmentSource`] and drain it — batch callers and the
//! streaming runtime share one implementation.
//!
//! All operators charge their I/O (in blocks), comparisons and hashes to a
//! shared [`wf_storage::CostTracker`], which is what the benchmark harness
//! converts into modeled execution time.

pub mod env;
pub mod full_sort;
pub mod hashed_sort;
pub mod operator;
pub mod parallel;
pub mod relational;
pub mod scheduler;
pub mod segment;
pub mod segmented_sort;
pub mod sorter;
pub mod util;
pub mod window;

pub use env::OpEnv;
pub use full_sort::{full_sort, FullSortOp};
pub use hashed_sort::{hashed_sort, HashedSortOp, HsOptions};
pub use operator::{drain, Operator, SegStream, Segment, SegmentSource, TableScan};
pub use parallel::ParallelOp;
pub use relational::{
    filter, group_by_hash, group_by_hash_par, group_by_sort, group_by_sort_par, FilterOp, GroupAgg,
    GroupByHashOp, GroupBySortOp, Predicate,
};
pub use scheduler::{
    per_worker_blocks, resolve_threads, ChainStage, ParInner, ParallelChainOp, ParallelSortOp,
};
pub use segment::{BoundaryLayer, RunSplitter, SegmentBounds, SegmentedRows};
pub use segmented_sort::{segmented_sort, SegmentedSortOp};
pub use sorter::SortKey;
pub use window::{
    evaluate_window, Bound, FrameSpec, FrameUnits, StreamableEval, WindowFunction, WindowOp,
};
