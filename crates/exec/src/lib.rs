//! # wf-exec
//!
//! Physical operators for the wfopt engine:
//!
//! * [`full_sort`] — **FS**: external merge sort (replacement-selection run
//!   formation + F-way merge bounded by the memory budget `M`),
//! * [`hashed_sort`] — **HS**: hash partitioning into buckets of complete
//!   window partitions with victim spilling and the MFV optimization, then
//!   per-bucket sorts (paper §3.2),
//! * [`segmented_sort`] — **SS**: per-unit sorts of `α`-groups inside the
//!   segments of an already-segmented input (paper §3.3),
//! * [`window`] — the window-function operator proper: partition and peer
//!   detection, ranking / distribution / reference / aggregate functions
//!   with ROWS and RANGE frames,
//! * [`parallel`] — hash-partitioned parallel evaluation (paper §3.5),
//! * [`segment`] — the segmented-rows representation flowing between
//!   operators (segment boundaries are physical metadata, mirroring how the
//!   paper's PostgreSQL operators pipeline window partitions).
//!
//! All operators charge their I/O (in blocks), comparisons and hashes to a
//! shared [`wf_storage::CostTracker`], which is what the benchmark harness
//! converts into modeled execution time.

pub mod env;
pub mod full_sort;
pub mod hashed_sort;
pub mod parallel;
pub mod relational;
pub mod segment;
pub mod segmented_sort;
pub mod sorter;
pub mod util;
pub mod window;

pub use env::OpEnv;
pub use full_sort::full_sort;
pub use hashed_sort::{hashed_sort, HsOptions};
pub use relational::{filter, group_by_hash, group_by_sort, GroupAgg, Predicate};
pub use segment::SegmentedRows;
pub use segmented_sort::segmented_sort;
pub use window::{evaluate_window, Bound, FrameSpec, FrameUnits, WindowFunction};
