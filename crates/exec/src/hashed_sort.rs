//! **Hashed Sort (HS)** — hash partitioning followed by per-bucket sorts
//! (paper §3.2).
//!
//! The partitioning phase hashes every row on the hash key `WHK ⊆ WPK` into
//! one of `n_buckets` buckets, consuming the upstream segments as row
//! streams (never materializing the input). Buckets stay memory-resident
//! while the unit reorder memory `M` allows; when memory fills, the largest
//! in-memory bucket is chosen as the victim and flushed to a spill file, and
//! any subsequent tuple for a spilled bucket goes straight to its file. At
//! the end of the phase, memory-resident buckets are sorted (internally)
//! before the disk-resident ones, exactly as §3.2 prescribes.
//!
//! The **MFV optimization**: rows whose hash-key value is declared "most
//! frequent" (its partition alone would overflow `M`) bypass partitioning
//! and are pipelined directly into a sort that runs before any bucket,
//! saving up to one round-trip of I/O for them.
//!
//! Output: one segment per non-empty bucket, each handed to the segment
//! store (resident within the pool budget, spilled past it). Spilled
//! buckets are *streamed* from their file into the sorter — never
//! materialized first — so HS's resident set stays `O(M)` even when a
//! bucket is far larger. Buckets are disjoint on `WHK` by construction, and
//! each is sorted on the sort key, so the output is the segmented relation
//! `R_{WHK, key}`. Like FS, the per-bucket sorts record partition-boundary
//! layers for free when asked ([`HashedSortOp::with_recorded_prefixes`]).

use crate::env::OpEnv;
use crate::operator::{drain, Operator, Segment, SegmentSource};
use crate::segment::SegmentedRows;
use crate::sorter::{record_prefix_layers, sort_in_memory, sort_stream_to_handle, SortKey};
use crate::util::hash_row_on;
use std::collections::{HashSet, VecDeque};
use wf_common::{AttrSet, Error, Result, Row, SortSpec, Value};
use wf_storage::{IoMeter, MemoryLedger, SpillFile};

/// Tuning knobs for Hashed Sort.
#[derive(Debug, Clone)]
pub struct HsOptions {
    /// Number of physical buckets. The planner usually passes
    /// `min(D(WHK), cap)`; capped because real systems bound partition
    /// fan-out by available buffers.
    pub n_buckets: usize,
    /// Hash-key values (projected on `WHK`, in canonical attribute order)
    /// whose rows are pipelined directly to the first sort (MFV
    /// optimization). Empty disables the optimization.
    pub mfv_values: Vec<Vec<Value>>,
    /// Emit buckets in ascending bucket-index order instead of §3.2's
    /// memory-then-disk order. The default order depends on which buckets
    /// victim-spilling happened to evict — a function of `M` — while the
    /// parallel scheduler's `Par{Hs}` path needs an emission order that is
    /// a pure function of the hash, identical in every worker and pool
    /// configuration. (MFV rows, when configured, still go first.)
    pub stable_emission: bool,
}

impl HsOptions {
    /// `n` buckets, no MFV optimization, §3.2 emission order.
    pub fn with_buckets(n_buckets: usize) -> Self {
        HsOptions {
            n_buckets,
            mfv_values: Vec::new(),
            stable_emission: false,
        }
    }
}

enum Bucket {
    Mem { rows: Vec<Row>, bytes: usize },
    Spilled { file: SpillFile },
}

/// One bucket awaiting emission. The sort happens lazily, at the moment the
/// downstream pulls the bucket — that is what makes HS a *per-segment*
/// streaming operator: bucket `k` flows through window evaluation while
/// buckets `k+1..n` still sit unsorted in memory or on disk.
enum PendingBucket {
    /// §3.2's MFV rows: pipelined past partitioning, sorted before any
    /// bucket (externally if needed).
    Mfv(Vec<Row>),
    /// Memory-resident bucket: internal sort at emission.
    Mem(Vec<Row>),
    /// Spilled bucket: streamed from its file into the sorter.
    Disk(SpillFile),
}

/// The HS operator: hash-partitions its whole input on the first pull
/// (partitioning is blocking), then emits **one sorted bucket per pull** —
/// MFV rows first, then memory-resident buckets, then spilled buckets,
/// exactly the emission order §3.2 prescribes.
pub struct HashedSortOp<I> {
    input: Option<I>,
    whk: AttrSet,
    key: SortKey,
    options: HsOptions,
    record: Vec<AttrSet>,
    env: OpEnv,
    queue: VecDeque<PendingBucket>,
}

impl<I: Operator> HashedSortOp<I> {
    /// Hash-partition everything `input` yields on `whk`, sorting each
    /// bucket on `key`.
    pub fn new(input: I, whk: AttrSet, key: SortSpec, options: HsOptions, env: OpEnv) -> Self {
        HashedSortOp {
            input: Some(input),
            whk,
            key: SortKey::new(&key),
            options,
            record: Vec::new(),
            env,
            queue: VecDeque::new(),
        }
    }

    /// Record boundary layers for these sort-key prefixes on every emitted
    /// bucket (see [`crate::full_sort::FullSortOp::with_recorded_prefixes`]).
    pub fn with_recorded_prefixes(mut self, sets: Vec<AttrSet>) -> Self {
        self.record = sets;
        self
    }

    /// The blocking partitioning phase (run on first pull): scatter rows
    /// into buckets with victim spilling, then queue non-empty buckets for
    /// lazy emission.
    fn partition_phase(&mut self, mut input: I) -> Result<()> {
        if self.whk.is_empty() {
            return Err(Error::Execution(
                "hashed sort requires a non-empty hash key".into(),
            ));
        }
        if self.options.n_buckets == 0 {
            return Err(Error::Execution(
                "hashed sort requires at least one bucket".into(),
            ));
        }
        let env = &self.env;
        let mut ledger = env.ledger()?;
        let n = self.options.n_buckets;
        let _span = env
            .trace
            .span_with("sort", || format!("hs.partition buckets={n}"));

        let mfv: HashSet<Vec<Value>> = self.options.mfv_values.iter().cloned().collect();
        let mut mfv_rows: Vec<Row> = Vec::new();

        let mut buckets: Vec<Bucket> = (0..n)
            .map(|_| Bucket::Mem {
                rows: Vec::new(),
                bytes: 0,
            })
            .collect();

        while let Some(seg) = input.next_segment()? {
            let batch = if env.columnar {
                seg.shared_batch().map(std::sync::Arc::clone)
            } else {
                None
            };
            let (_, mut stream, _) = seg.into_stream();
            let mut next_idx = 0usize;
            loop {
                // Batch segments hash per-lane (identical u64s to
                // `hash_row_on`); everything else streams row-at-a-time.
                let (row, idx_hint) = match &batch {
                    Some(b) => {
                        if next_idx >= b.len() {
                            break;
                        }
                        let i = next_idx;
                        next_idx += 1;
                        (
                            b.row(i),
                            Some((b.hash_row(i, &self.whk) % n as u64) as usize),
                        )
                    }
                    None => match stream.next_row()? {
                        Some(r) => (r, None),
                        None => break,
                    },
                };
                env.tracker.hash(1);
                if !mfv.is_empty() {
                    let key_val: Vec<Value> = self.whk.iter().map(|a| row.get(a).clone()).collect();
                    if mfv.contains(&key_val) {
                        // Pipelined straight to the (first) sort: no
                        // partition I/O, no ledger charge — the sort owns
                        // its memory.
                        mfv_rows.push(row);
                        continue;
                    }
                }
                let idx =
                    idx_hint.unwrap_or_else(|| (hash_row_on(&row, &self.whk) % n as u64) as usize);
                let bytes = row.encoded_len();
                match &mut buckets[idx] {
                    Bucket::Spilled { file } => {
                        file.push(&row)?;
                        env.tracker.move_rows(1);
                    }
                    Bucket::Mem { .. } => {
                        while !ledger.fits(bytes) {
                            if !spill_victim(&mut buckets, &mut ledger, env, idx)? {
                                break; // nothing left to evict; force-charge below
                            }
                        }
                        match &mut buckets[idx] {
                            Bucket::Mem { rows, bytes: b } => {
                                ledger.charge(bytes);
                                *b += bytes;
                                rows.push(row);
                                env.tracker.move_rows(1);
                            }
                            Bucket::Spilled { file } => {
                                // The current bucket itself became the victim.
                                file.push(&row)?;
                                env.tracker.move_rows(1);
                            }
                        }
                    }
                }
            }
        }

        // Emission order: MFV first, then — by default — memory-resident
        // buckets before spilled ones (§3.2); with `stable_emission`,
        // buckets go out in ascending index order regardless of residency.
        if !mfv_rows.is_empty() {
            self.queue.push_back(PendingBucket::Mfv(mfv_rows));
        }
        if self.options.stable_emission {
            for bucket in buckets {
                match bucket {
                    Bucket::Mem { rows, .. } if !rows.is_empty() => {
                        self.queue.push_back(PendingBucket::Mem(rows))
                    }
                    Bucket::Spilled { file } if file.row_count() > 0 => {
                        self.queue.push_back(PendingBucket::Disk(file))
                    }
                    _ => {}
                }
            }
            return Ok(());
        }
        let (mem_buckets, disk_buckets): (Vec<Bucket>, Vec<Bucket>) = buckets
            .into_iter()
            .partition(|b| matches!(b, Bucket::Mem { .. }));
        for bucket in mem_buckets {
            if let Bucket::Mem { rows, .. } = bucket {
                if !rows.is_empty() {
                    self.queue.push_back(PendingBucket::Mem(rows));
                }
            }
        }
        for bucket in disk_buckets {
            if let Bucket::Spilled { file } = bucket {
                if file.row_count() > 0 {
                    self.queue.push_back(PendingBucket::Disk(file));
                }
            }
        }
        Ok(())
    }

    /// Sort a materialized bucket and hand it to the store.
    fn emit_rows(&self, rows: Vec<Row>) -> Result<Segment> {
        let (handle, bounds, _) =
            sort_stream_to_handle(rows.into_iter().map(Ok), &self.key, &self.env, &self.record)?;
        Ok(Segment::from_handle(handle, bounds))
    }
}

impl<I: Operator> Operator for HashedSortOp<I> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        if let Some(input) = self.input.take() {
            self.partition_phase(input)?;
        }
        let pending = self.queue.pop_front();
        let _span = pending
            .is_some()
            .then(|| self.env.trace.span("sort", "hs.bucket_sort"));
        match pending {
            None => Ok(None),
            Some(PendingBucket::Mfv(rows)) => Ok(Some(self.emit_rows(rows)?)),
            Some(PendingBucket::Mem(mut rows)) => {
                sort_in_memory(&mut rows, &self.key, &self.env);
                let bounds = record_prefix_layers(&rows, &self.record, &self.env);
                Ok(Some(Segment::from_handle(
                    self.env.store.admit(rows)?,
                    bounds,
                )))
            }
            Some(PendingBucket::Disk(file)) => {
                // Stream the spilled bucket straight into the sorter: the
                // read-back charges the same blocks the old materialize-
                // then-sort path did, but at most `M` of the bucket is ever
                // resident.
                let mut reader = file.into_reader()?;
                let (handle, bounds, _) = sort_stream_to_handle(
                    std::iter::from_fn(move || reader.next_row().transpose()),
                    &self.key,
                    &self.env,
                    &self.record,
                )?;
                Ok(Some(Segment::from_handle(handle, bounds)))
            }
        }
    }
}

/// Hash-partition `input` on `whk` and sort each bucket on `key`. Thin
/// wrapper over [`HashedSortOp`] for batch callers.
pub fn hashed_sort(
    input: SegmentedRows,
    whk: &AttrSet,
    key: &SortSpec,
    options: &HsOptions,
    env: &OpEnv,
) -> Result<SegmentedRows> {
    let mut op = HashedSortOp::new(
        SegmentSource::new(input),
        whk.clone(),
        key.clone(),
        options.clone(),
        env.clone(),
    );
    drain(&mut op)
}

/// Flush the largest memory-resident bucket to disk. Returns false when no
/// in-memory bucket with rows remains. `prefer_not` is only evicted last
/// (it is the bucket currently being appended to).
fn spill_victim(
    buckets: &mut [Bucket],
    ledger: &mut MemoryLedger,
    env: &OpEnv,
    prefer_not: usize,
) -> Result<bool> {
    let mut victim: Option<(usize, usize)> = None; // (index, bytes)
    for (i, b) in buckets.iter().enumerate() {
        if let Bucket::Mem { bytes, rows } = b {
            if rows.is_empty() {
                continue;
            }
            let better = match victim {
                None => true,
                Some((vi, vb)) => {
                    // Largest first; avoid the active bucket unless it is
                    // the only candidate.
                    if (vi == prefer_not) != (i == prefer_not) {
                        vi == prefer_not
                    } else {
                        *bytes > vb
                    }
                }
            };
            if better {
                victim = Some((i, *bytes));
            }
        }
    }
    let Some((idx, bytes)) = victim else {
        return Ok(false);
    };
    let mut file = SpillFile::with_config(&env.spill, IoMeter::Model(env.tracker.clone()))?;
    if let Bucket::Mem { rows, .. } = &mut buckets[idx] {
        for row in rows.drain(..) {
            file.push(&row)?;
        }
    }
    ledger.release(bytes);
    buckets[idx] = Bucket::Spilled { file };
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, AttrId, OrdElem, RowComparator};

    fn aset(ids: &[usize]) -> AttrSet {
        AttrSet::from_iter(ids.iter().map(|&i| AttrId::new(i)))
    }
    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect())
    }

    fn input(n: usize, distinct: i64) -> SegmentedRows {
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                let k = (i as i64 * 2654435761) % distinct;
                row![k, (n - i) as i64, "some-padding-to-make-rows-wider"]
            })
            .collect();
        SegmentedRows::single_segment(rows)
    }

    fn check_valid_output(out: &SegmentedRows, whk: &AttrSet, sort: &SortSpec, n: usize) {
        assert_eq!(out.len(), n);
        assert!(
            out.segments_disjoint_on(whk),
            "buckets must be disjoint on WHK"
        );
        assert!(
            out.segments_sorted_by(&RowComparator::new(sort)),
            "buckets must be sorted"
        );
    }

    #[test]
    fn in_memory_buckets_no_io() {
        let env = OpEnv::with_memory_blocks(1024);
        let out = hashed_sort(
            input(2000, 50),
            &aset(&[0]),
            &key(&[0, 1]),
            &HsOptions::with_buckets(50),
            &env,
        )
        .unwrap();
        check_valid_output(&out, &aset(&[0]), &key(&[0, 1]), 2000);
        assert_eq!(env.tracker.snapshot().io_blocks(), 0);
        assert_eq!(env.tracker.snapshot().hashes, 2000);
    }

    #[test]
    fn small_memory_spills_and_still_correct() {
        let env = OpEnv::with_memory_blocks(2);
        let out = hashed_sort(
            input(3000, 40),
            &aset(&[0]),
            &key(&[0, 1]),
            &HsOptions::with_buckets(40),
            &env,
        )
        .unwrap();
        check_valid_output(&out, &aset(&[0]), &key(&[0, 1]), 3000);
        assert!(
            env.tracker.snapshot().blocks_written > 0,
            "tiny M must spill"
        );
    }

    #[test]
    fn more_buckets_than_values_leaves_empty_buckets_out() {
        let env = OpEnv::with_memory_blocks(64);
        let out = hashed_sort(
            input(100, 3),
            &aset(&[0]),
            &key(&[0]),
            &HsOptions::with_buckets(64),
            &env,
        )
        .unwrap();
        assert!(out.segment_count() <= 3);
        check_valid_output(&out, &aset(&[0]), &key(&[0]), 100);
    }

    #[test]
    fn single_bucket_degenerates_to_sorted_whole() {
        let env = OpEnv::with_memory_blocks(8);
        let out = hashed_sort(
            input(500, 10),
            &aset(&[0]),
            &key(&[0, 1]),
            &HsOptions::with_buckets(1),
            &env,
        )
        .unwrap();
        assert_eq!(out.segment_count(), 1);
        assert!(out.segments_sorted_by(&RowComparator::new(&key(&[0, 1]))));
    }

    #[test]
    fn mfv_rows_bypass_partitioning() {
        let env = OpEnv::with_memory_blocks(512);
        let mut opts = HsOptions::with_buckets(8);
        opts.mfv_values = vec![vec![Value::Int(0)]];
        let out = hashed_sort(input(400, 4), &aset(&[0]), &key(&[0, 1]), &opts, &env).unwrap();
        check_valid_output(&out, &aset(&[0]), &key(&[0, 1]), 400);
        // First segment must be exactly the MFV value's rows.
        let first = out.segment(0);
        assert!(first
            .iter()
            .all(|r| r.get(AttrId::new(0)).as_int() == Some(0)));
        assert_eq!(first.len(), 100);
    }

    #[test]
    fn empty_hash_key_rejected() {
        let env = OpEnv::with_memory_blocks(8);
        let r = hashed_sort(
            input(10, 2),
            &AttrSet::empty(),
            &key(&[0]),
            &HsOptions::with_buckets(4),
            &env,
        );
        assert!(r.is_err());
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let env = OpEnv::with_memory_blocks(8);
        let out = hashed_sort(
            SegmentedRows::empty(),
            &aset(&[0]),
            &key(&[0]),
            &HsOptions::with_buckets(4),
            &env,
        )
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(out.segment_count(), 0);
    }

    #[test]
    fn hs_io_is_stable_across_memory_sizes() {
        // The paper's observation: HS performance is flat w.r.t. M because
        // partition+read-back is ~2 passes regardless (Fig. 3). I/O at
        // moderate M must not exceed a small multiple of I/O at large M.
        // Both budgets stay well below B(R) — the regime the paper studies.
        let base = input(12000, 64);
        let env_small = OpEnv::with_memory_blocks(4);
        let env_large = OpEnv::with_memory_blocks(16);
        hashed_sort(
            base.clone(),
            &aset(&[0]),
            &key(&[0, 1]),
            &HsOptions::with_buckets(64),
            &env_small,
        )
        .unwrap();
        hashed_sort(
            base,
            &aset(&[0]),
            &key(&[0, 1]),
            &HsOptions::with_buckets(64),
            &env_large,
        )
        .unwrap();
        let small = env_small.tracker.snapshot().io_blocks() as f64;
        let large = (env_large.tracker.snapshot().io_blocks() as f64).max(1.0);
        assert!(
            small / large < 3.0,
            "HS I/O should be roughly flat: {small} vs {large}"
        );
    }

    /// With `stable_emission`, buckets come out in ascending bucket-index
    /// order — a pure function of the hash — so a memory budget small
    /// enough to force victim spilling emits the exact same sequence as an
    /// ample one, where the default §3.2 order would shuffle spilled
    /// buckets to the back.
    #[test]
    fn stable_emission_is_pool_independent() {
        let whk = aset(&[0]);
        let sort = key(&[0, 1]);
        let opts = HsOptions {
            n_buckets: 24,
            mfv_values: Vec::new(),
            stable_emission: true,
        };
        let mut reference: Option<Vec<Vec<Row>>> = None;
        for mem in [2u64, 512] {
            let env = OpEnv::with_memory_blocks(mem);
            let out = hashed_sort(input(3000, 24), &whk, &sort, &opts, &env).unwrap();
            check_valid_output(&out, &whk, &sort, 3000);
            let segs: Vec<Vec<Row>> = (0..out.segment_count())
                .map(|i| out.segment(i).to_vec())
                .collect();
            match &reference {
                None => {
                    assert!(env.tracker.snapshot().blocks_written > 0, "M=2 must spill");
                    reference = Some(segs);
                }
                Some(r) => assert_eq!(&segs, r, "emission order must not depend on M"),
            }
        }
    }

    /// Emitted buckets carry recorded WHK layers when asked.
    #[test]
    fn buckets_record_prefix_layers() {
        let env = OpEnv::with_memory_blocks(64);
        let mut op = HashedSortOp::new(
            SegmentSource::new(input(600, 12)),
            aset(&[0]),
            key(&[0, 1]),
            HsOptions::with_buckets(4),
            env.clone(),
        )
        .with_recorded_prefixes(vec![aset(&[0])]);
        let mut buckets = 0;
        while let Some(seg) = op.next_segment().unwrap() {
            let layer = seg
                .bounds
                .layers()
                .iter()
                .find(|l| l.attrs == aset(&[0]))
                .expect("whk layer");
            assert!(!layer.starts.is_empty());
            buckets += 1;
        }
        assert!(buckets > 1);
    }
}
