//! The window-function operator: sequentially scans a matched (reordered)
//! input and appends one derived column (paper §1's evaluation model).
//!
//! Partition boundaries are detected by a change in the `WPK` values or a
//! segment boundary — sound because a matched input delivers every
//! `WPK`-group contiguously and adjacent segments are disjoint on a subset
//! of `WPK`. Within a partition the rows are ordered on `WOK`, which is how
//! peers (ties) are detected.
//!
//! **Boundary reuse (§3.3/§3.5).** When the incoming segment carries a
//! [`SegmentBounds`] layer covering `WPK` (or `WPK ∪ attr(WOK)` for peers)
//! — proven by an upstream window step over a shared key prefix, by SS
//! unit detection, or recorded for free by an FS/HS final merge — the
//! operator takes the boundaries from the layer instead of re-running
//! equality comparisons over every adjacent row pair. Symmetrically, the
//! boundaries this step *does* establish are attached to the outgoing
//! segment, so the next step of the chain pays for them at most once.
//!
//! **Spilled segments (Shi & Wang, arXiv:2007.10385).** A segment that the
//! store spilled is *streamed*, never materialized: partitions are split
//! off on the fly (with the exact comparison charging of the materialized
//! path), and a per-call [`StreamableEval`] class decides the evaluation
//! discipline:
//!
//! * **one-pass** (`O(M)`) — SQL-default-frame `count`/`sum`/`avg`/`min`/
//!   `max` run the spilling aggregation: rows flow through a store-managed
//!   staging segment while a running accumulator snapshots one value per
//!   peer group, then rows and values are zipped back out. `ntile` stages
//!   the same way (bucket sizes need the partition's cardinality), and so
//!   do `percent_rank`/`cume_dist` (peer groups resolve on the first pass,
//!   the cardinality is known at partition end, the staged rows replay
//!   with their group's value);
//! * **ring-buffer** (`O(M + frame)`) — `row_number`/`rank`/`dense_rank`,
//!   `lag`/`lead`, and bounded-ROWS-frame readers (`first_value`/
//!   `last_value`/`nth_value` and the aggregates) evaluate from a ring of
//!   at most the frame extent plus per-peer-group rank state (see
//!   [`RingEval`](StreamableEval::Ring));
//! * **buffered** (`O(M + partition)`) — everything else buffers **one
//!   partition at a time** (registered with the store's residency ledger:
//!   the `largest unit` term of the bound) and reuses the materialized
//!   evaluation code verbatim.
//!
//! Across all three, rows and modeled counters are bit-identical to the
//! resident (materialized) path — the oversized-partition equivalence
//! suite is the proof obligation.
//!
//! Functions implemented: the ranking family (`row_number`, `rank`,
//! `dense_rank`, `ntile`), the distribution family (`percent_rank`,
//! `cume_dist`), the reference family (`lag`, `lead`, `first_value`,
//! `last_value`, `nth_value`) and frame-aware aggregates (`count`, `sum`,
//! `avg`, `min`, `max`, variance/stddev) with ROWS and RANGE frames. The
//! SQL-default frame `RANGE UNBOUNDED PRECEDING..CURRENT ROW` takes a
//! running-accumulator fast path: one forward pass per partition, no
//! prefix arrays.

use crate::env::OpEnv;
use crate::operator::{drain, Operator, Segment, SegmentSource};
use crate::segment::{RunSplitter, SegmentBounds, SegmentedRows};
use wf_common::{
    AttrId, AttrSet, DataType, Error, Result, Row, RowComparator, Schema, SortSpec, Value,
};

/// A window function. `WPK`/`WOK`/frames live in the enclosing spec
/// (`wf-core`); this enum is the computation per partition.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowFunction {
    /// 1-based position within the partition.
    RowNumber,
    /// Rank with gaps.
    Rank,
    /// Rank without gaps.
    DenseRank,
    /// `(rank - 1) / (rows - 1)`, 0 for a single-row partition.
    PercentRank,
    /// `peers_end / rows`.
    CumeDist,
    /// Bucket number 1..=n, larger buckets first.
    Ntile(u64),
    /// Value of `col` `offset` rows before the current row.
    Lag {
        col: AttrId,
        offset: u64,
        default: Option<Value>,
    },
    /// Value of `col` `offset` rows after the current row.
    Lead {
        col: AttrId,
        offset: u64,
        default: Option<Value>,
    },
    /// First value of `col` in the frame.
    FirstValue(AttrId),
    /// Last value of `col` in the frame.
    LastValue(AttrId),
    /// `n`-th (1-based) value of `col` in the frame.
    NthValue(AttrId, u64),
    /// `count(*)` (None) or `count(col)` (non-null) over the frame.
    Count(Option<AttrId>),
    /// Sum over the frame (NULLs skipped; NULL for an all-null frame).
    Sum(AttrId),
    /// Average over the frame.
    Avg(AttrId),
    /// Minimum over the frame.
    Min(AttrId),
    /// Maximum over the frame.
    Max(AttrId),
    /// Population variance over the frame (NULL for an empty frame).
    VarPop(AttrId),
    /// Sample variance over the frame (NULL when fewer than two rows).
    VarSamp(AttrId),
    /// Population standard deviation.
    StddevPop(AttrId),
    /// Sample standard deviation.
    StddevSamp(AttrId),
}

impl WindowFunction {
    /// Result column type given the input schema.
    pub fn result_type(&self, schema: &Schema) -> DataType {
        match self {
            WindowFunction::RowNumber
            | WindowFunction::Rank
            | WindowFunction::DenseRank
            | WindowFunction::Ntile(_)
            | WindowFunction::Count(_) => DataType::Int,
            WindowFunction::PercentRank
            | WindowFunction::CumeDist
            | WindowFunction::Avg(_)
            | WindowFunction::VarPop(_)
            | WindowFunction::VarSamp(_)
            | WindowFunction::StddevPop(_)
            | WindowFunction::StddevSamp(_) => DataType::Float,
            WindowFunction::Lag { col, .. }
            | WindowFunction::Lead { col, .. }
            | WindowFunction::FirstValue(col)
            | WindowFunction::LastValue(col)
            | WindowFunction::NthValue(col, _)
            | WindowFunction::Min(col)
            | WindowFunction::Max(col) => schema.field(*col).data_type,
            WindowFunction::Sum(col) => schema.field(*col).data_type,
        }
    }

    /// True for functions that read a frame (aggregates and value
    /// functions); ranking and row-reference functions ignore frames.
    pub fn uses_frame(&self) -> bool {
        matches!(
            self,
            WindowFunction::FirstValue(_)
                | WindowFunction::LastValue(_)
                | WindowFunction::NthValue(..)
                | WindowFunction::Count(_)
                | WindowFunction::Sum(_)
                | WindowFunction::Avg(_)
                | WindowFunction::Min(_)
                | WindowFunction::Max(_)
                | WindowFunction::VarPop(_)
                | WindowFunction::VarSamp(_)
                | WindowFunction::StddevPop(_)
                | WindowFunction::StddevSamp(_)
        )
    }
}

/// ROWS counts physical rows; RANGE works on peer groups / key distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameUnits {
    Rows,
    Range,
}

/// One frame bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    UnboundedPreceding,
    /// ROWS: row offset; RANGE: key distance (numeric WOK required).
    Preceding(i64),
    CurrentRow,
    Following(i64),
    UnboundedFollowing,
}

/// A window frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameSpec {
    pub units: FrameUnits,
    pub start: Bound,
    pub end: Bound,
}

impl FrameSpec {
    /// SQL's default frame: `RANGE UNBOUNDED PRECEDING .. CURRENT ROW` when
    /// an ORDER BY is present, else the whole partition.
    pub fn default_for(has_order: bool) -> FrameSpec {
        if has_order {
            FrameSpec {
                units: FrameUnits::Range,
                start: Bound::UnboundedPreceding,
                end: Bound::CurrentRow,
            }
        } else {
            FrameSpec {
                units: FrameUnits::Range,
                start: Bound::UnboundedPreceding,
                end: Bound::UnboundedFollowing,
            }
        }
    }

    /// Whole-partition frame.
    pub fn whole_partition() -> FrameSpec {
        FrameSpec::default_for(false)
    }

    /// True for `RANGE UNBOUNDED PRECEDING .. CURRENT ROW` — SQL's default
    /// frame under an ORDER BY, the one-pass spilling aggregation's case.
    pub fn is_sql_default(&self) -> bool {
        self.units == FrameUnits::Range
            && self.start == Bound::UnboundedPreceding
            && self.end == Bound::CurrentRow
    }

    /// True when both bounds are physical-row offsets (`PRECEDING(k)`,
    /// `CURRENT ROW`, `FOLLOWING(k)`): the frame spans at most a constant
    /// number of rows around the current one, which is what makes
    /// ring-buffer evaluation `O(frame)`.
    pub fn is_bounded_rows(&self) -> bool {
        let bounded = |b: Bound| {
            matches!(
                b,
                Bound::Preceding(_) | Bound::CurrentRow | Bound::Following(_)
            )
        };
        self.units == FrameUnits::Rows && bounded(self.start) && bounded(self.end)
    }

    /// True when both bounds are numeric RANGE offsets (`x PRECEDING` /
    /// `y FOLLOWING`): the frame is a key-distance window around the
    /// current row's key. Neither bound touches CURRENT ROW, so no peer
    /// resolution is involved, and both frame edges slide monotonically
    /// with the (sorted) key — which is what lets the sliding aggregates
    /// ring-stream these frames instead of buffering the partition.
    pub fn is_offset_range(&self) -> bool {
        let off = |b: Bound| matches!(b, Bound::Preceding(_) | Bound::Following(_));
        self.units == FrameUnits::Range && off(self.start) && off(self.end)
    }
}

/// How the window operator evaluates **spilled** partitions for one window
/// call — the per-call dispatch over the three streaming disciplines.
/// Resident segments always take the materialized path; this class only
/// governs segments the store spilled, where it decides the tracked
/// residency of the evaluation:
///
/// * [`StreamableEval::OnePass`] — Shi & Wang-style single pass with
///   store-staged rows (the stage spills past the pool budget): `O(M)`.
/// * [`StreamableEval::Ring`] — ring buffer of at most the frame extent
///   plus per-peer-group rank state: `O(M + frame)`.
/// * [`StreamableEval::Buffered`] — one whole partition buffered:
///   `O(M + partition)`, the fallback for frames that genuinely need
///   random access (peer-anchored RANGE frames, unbounded ROWS lookahead).
///
/// Variants are ordered weakest-first so a chain mixing several window
/// calls is governed by the `min` (weakest) member — see
/// [`StreamableEval::weakest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StreamableEval {
    /// One whole partition buffered: `O(M + partition)` residency.
    Buffered,
    /// Ring buffer of the frame extent: `O(M + frame)` residency.
    Ring,
    /// Single streaming pass with store-staged rows: `O(M)` residency.
    OnePass,
}

impl StreamableEval {
    /// Classify one window call. `frame` must already be resolved (the
    /// SQL-default substitution applied).
    pub fn classify(func: &WindowFunction, frame: &FrameSpec) -> Self {
        use WindowFunction::*;
        if frame.is_sql_default() && matches!(func, Count(_) | Sum(_) | Avg(_) | Min(_) | Max(_)) {
            return StreamableEval::OnePass;
        }
        match func {
            // Frame-less: rank state / row counters stream with O(1) state;
            // ntile stages the partition through the store (it needs the
            // partition's cardinality before the first bucket is known),
            // and the distribution functions stage the same way — the
            // staged-replay trick: peer groups resolve on the first pass,
            // the partition cardinality is known at partition end, and the
            // staged rows replay with their group's value.
            RowNumber | Rank | DenseRank => StreamableEval::Ring,
            Ntile(_) | PercentRank | CumeDist => StreamableEval::OnePass,
            // Row references: a ring of `offset` rows.
            Lag { .. } | Lead { .. } => StreamableEval::Ring,
            // Frame readers over a bounded physical-row window. The
            // variance family joins via its sum/sum-of-squares prefix
            // lanes — same sliding-window discipline as SUM/AVG.
            FirstValue(_) | LastValue(_) | NthValue(..) | Count(_) | Sum(_) | Avg(_) | Min(_)
            | Max(_) | VarPop(_) | VarSamp(_) | StddevPop(_) | StddevSamp(_)
                if frame.is_bounded_rows() =>
            {
                StreamableEval::Ring
            }
            // Pure-offset RANGE frames: both edges are key-distance bounds
            // that slide monotonically with the sorted key, so the sliding
            // aggregates resolve them with two monotone pointers over a
            // ring instead of buffering the partition.
            Count(_) | Sum(_) | Avg(_) | Min(_) | Max(_) if frame.is_offset_range() => {
                StreamableEval::Ring
            }
            _ => StreamableEval::Buffered,
        }
    }

    /// The weakest class among several calls — what governs a chain's
    /// overall residency when window calls of different classes mix
    /// (`OnePass` for an empty iterator: no window step holds anything).
    pub fn weakest(classes: impl IntoIterator<Item = StreamableEval>) -> Self {
        classes.into_iter().min().unwrap_or(StreamableEval::OnePass)
    }

    /// Stable lowercase label (reports, plan explain, bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            StreamableEval::Buffered => "buffered",
            StreamableEval::Ring => "ring",
            StreamableEval::OnePass => "one-pass",
        }
    }

    /// Tracked-residency bound of the class, for display.
    pub fn bound(self) -> &'static str {
        match self {
            StreamableEval::Buffered => "O(M + partition)",
            StreamableEval::Ring => "O(M + frame)",
            StreamableEval::OnePass => "O(M)",
        }
    }
}

impl std::fmt::Display for StreamableEval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The window-function operator as a pull-based pipeline stage — **fully
/// streaming**: each pull takes one upstream segment (which contains only
/// complete window partitions by the segmented-relation contract), appends
/// the derived column partition by partition, and emits the segment with
/// row order and boundaries untouched.
pub struct WindowOp<I> {
    input: I,
    wpk: AttrSet,
    wok: SortSpec,
    wok_cmp: RowComparator,
    /// `WPK ∪ attr(WOK)` — peer groups are exactly the maximal runs equal
    /// on this set (the `WPK` part never changes within a partition).
    union_attrs: AttrSet,
    func: WindowFunction,
    frame: FrameSpec,
    env: OpEnv,
}

impl<I: Operator> WindowOp<I> {
    /// Evaluate `func` over a matched input. `frame` defaults per SQL when
    /// `None` (see [`FrameSpec::default_for`]).
    pub fn new(
        input: I,
        wpk: AttrSet,
        wok: SortSpec,
        func: WindowFunction,
        frame: Option<FrameSpec>,
        env: OpEnv,
    ) -> Self {
        let frame = frame.unwrap_or_else(|| FrameSpec::default_for(!wok.is_empty()));
        WindowOp {
            input,
            wok_cmp: RowComparator::new(&wok),
            union_attrs: wpk.union(&wok.attr_set()),
            wpk,
            wok,
            func,
            frame,
            env,
        }
    }

    /// Append the derived column to one segment. A segment boundary always
    /// starts a new partition (adjacent segments are disjoint on a subset of
    /// `WPK`); within the segment partitions break on `WPK`-value changes —
    /// taken from a carried boundary layer when the chain already proved
    /// them, detected by scanning otherwise. The materialized path, used
    /// for segments already in memory.
    fn eval_segment(&self, seg: Segment) -> Result<Segment> {
        let store_backed = seg.is_store_backed();
        let (mut rows, mut bounds) = seg.into_parts()?;
        let env = &self.env;
        let n = rows.len();
        let wpk_eq = |a: &Row, b: &Row| self.wpk_eq(a, b);
        let part_starts: Vec<usize> = (if env.reuse_bounds {
            bounds.runs_equal_on(&self.wpk, &rows, 0, n, wpk_eq, &env.tracker)
        } else {
            None
        })
        .unwrap_or_else(|| crate::segment::scan_runs(&rows, 0, n, wpk_eq, &env.tracker));
        let (peer_starts, peers_complete) = {
            let mut peers = PeerResolver::new(&bounds, &self.union_attrs, env.reuse_bounds);
            for (pi, &start) in part_starts.iter().enumerate() {
                let end = part_starts.get(pi + 1).copied().unwrap_or(n);
                let values = eval_partition(
                    &rows,
                    start,
                    end,
                    &self.wok_cmp,
                    &self.wok,
                    &self.func,
                    &self.frame,
                    env,
                    &mut peers,
                )?;
                for (off, v) in values.into_iter().enumerate() {
                    rows[start + off].push(v);
                }
            }
            (
                peers.collected,
                peers.partitions_resolved == part_starts.len(),
            )
        };
        env.tracker.move_rows(n as u64);
        // Hand the boundaries this step established to the next one. The
        // union (peer) layer is only sound when every partition actually
        // resolved its peer groups.
        if n > 0 {
            if peers_complete {
                bounds.add_layer(self.union_attrs.clone(), peer_starts);
            }
            bounds.add_layer(self.wpk.clone(), part_starts);
        }
        if store_backed {
            Ok(Segment::from_handle(env.store.admit(rows)?, bounds))
        } else {
            Ok(Segment::with_bounds(rows, bounds))
        }
    }

    /// The evaluation class of this operator's call (see
    /// [`StreamableEval::classify`]): which streaming discipline spilled
    /// segments take, and therefore the operator's tracked residency.
    pub fn eval_class(&self) -> StreamableEval {
        StreamableEval::classify(&self.func, &self.frame)
    }

    /// The streaming path for spilled segments: split partitions on the
    /// fly, evaluate each within the residency bound of the call's
    /// [`StreamableEval`] class, and stream the output through a store
    /// builder. Outputs — rows, boundary layers, modeled counters — are
    /// bit-identical to [`WindowOp::eval_segment`].
    fn eval_spilled(&self, seg: Segment) -> Result<Segment> {
        let env = &self.env;
        let (n, stream, bounds) = seg.into_stream();
        let mut out = env.store.builder();
        let mut part_starts: Vec<usize> = Vec::new();
        let mut peer_starts: Vec<usize> = Vec::new();
        let mut resolved = 0usize;
        let mut nparts = 0usize;
        match self.eval_class() {
            StreamableEval::OnePass if matches!(self.func, WindowFunction::Ntile(_)) => {
                self.stream_ntile(n, stream, &bounds, &mut out, &mut part_starts, &mut nparts)?
            }
            StreamableEval::OnePass
                if matches!(
                    self.func,
                    WindowFunction::PercentRank | WindowFunction::CumeDist
                ) =>
            {
                self.stream_distribution(
                    n,
                    stream,
                    &bounds,
                    &mut out,
                    &mut part_starts,
                    &mut peer_starts,
                    &mut resolved,
                    &mut nparts,
                )?
            }
            StreamableEval::OnePass => self.stream_default_agg(
                n,
                stream,
                &bounds,
                &mut out,
                &mut part_starts,
                &mut peer_starts,
                &mut resolved,
                &mut nparts,
            )?,
            StreamableEval::Ring => self.stream_ring(
                n,
                stream,
                &bounds,
                &mut out,
                &mut part_starts,
                &mut peer_starts,
                &mut resolved,
                &mut nparts,
            )?,
            StreamableEval::Buffered => self.stream_buffered_partitions(
                n,
                stream,
                &bounds,
                &mut out,
                &mut part_starts,
                &mut peer_starts,
                &mut resolved,
                &mut nparts,
            )?,
        }
        env.tracker.move_rows(n as u64);
        let mut out_bounds = bounds;
        if n > 0 {
            if resolved == nparts && nparts == part_starts.len() {
                out_bounds.add_layer(self.union_attrs.clone(), peer_starts);
            }
            out_bounds.add_layer(self.wpk.clone(), part_starts);
        }
        Ok(Segment::from_handle(out.finish()?, out_bounds))
    }

    /// Generic spilled evaluation: buffer one partition at a time (the
    /// `largest unit` term of the residency bound, registered with the
    /// store) and reuse the materialized per-partition evaluator.
    #[allow(clippy::too_many_arguments)]
    fn stream_buffered_partitions(
        &self,
        n: usize,
        mut stream: crate::operator::SegStream,
        bounds: &SegmentBounds,
        out: &mut wf_storage::SegmentBuilder,
        part_starts: &mut Vec<usize>,
        peer_starts: &mut Vec<usize>,
        resolved: &mut usize,
        nparts: &mut usize,
    ) -> Result<()> {
        let env = &self.env;
        let wpk_eq = |a: &Row, b: &Row| self.wpk_eq(a, b);
        let mut splitter = RunSplitter::new(bounds, &self.wpk, n, env.reuse_bounds);
        let mut cur: Vec<Row> = Vec::new();
        let mut hold = env.store.hold(0, 0);
        let mut lo = 0usize;
        let mut idx = 0usize;
        while let Some(row) = stream.next_row()? {
            let boundary = match cur.last() {
                None => true,
                Some(prev) => splitter.is_boundary(idx, prev, &row, wpk_eq, false, &env.tracker),
            };
            if boundary && !cur.is_empty() {
                self.flush_partition(
                    std::mem::take(&mut cur),
                    lo,
                    bounds,
                    out,
                    part_starts,
                    peer_starts,
                    resolved,
                    nparts,
                )?;
                hold = env.store.hold(0, 0);
                lo = idx;
            }
            hold.grow(row.encoded_len(), 1);
            cur.push(row);
            idx += 1;
        }
        if !cur.is_empty() {
            self.flush_partition(
                cur,
                lo,
                bounds,
                out,
                part_starts,
                peer_starts,
                resolved,
                nparts,
            )?;
        }
        drop(hold);
        Ok(())
    }

    /// Evaluate one buffered partition (rows relative, `lo` absolute) and
    /// stream it out with its derived column.
    #[allow(clippy::too_many_arguments)]
    fn flush_partition(
        &self,
        mut rows: Vec<Row>,
        lo: usize,
        bounds: &SegmentBounds,
        out: &mut wf_storage::SegmentBuilder,
        part_starts: &mut Vec<usize>,
        peer_starts: &mut Vec<usize>,
        resolved: &mut usize,
        nparts: &mut usize,
    ) -> Result<()> {
        let env = &self.env;
        let len = rows.len();
        part_starts.push(lo);
        // A window of the carried bounds answers peer queries with the
        // exact boundaries and comparison charges of the absolute view.
        let wbounds = bounds.window(lo, lo + len);
        let mut peers = PeerResolver::new(&wbounds, &self.union_attrs, env.reuse_bounds);
        let values = eval_partition(
            &rows,
            0,
            len,
            &self.wok_cmp,
            &self.wok,
            &self.func,
            &self.frame,
            env,
            &mut peers,
        )?;
        for (row, v) in rows.iter_mut().zip(values) {
            row.push(v);
        }
        if peers.partitions_resolved > 0 {
            *resolved += 1;
            peer_starts.extend(peers.collected.iter().map(|s| s + lo));
        }
        *nparts += 1;
        for row in rows {
            out.push(row)?;
        }
        Ok(())
    }

    /// Shi & Wang-style one-pass spilling aggregation for the SQL-default
    /// frame: partition rows are staged through the store while a running
    /// accumulator snapshots one value per peer group; at partition end the
    /// staged rows are read back and zipped with their group's value. Never
    /// holds more than the pool budget, even for partitions ≫ `M`.
    #[allow(clippy::too_many_arguments)]
    fn stream_default_agg(
        &self,
        n: usize,
        mut stream: crate::operator::SegStream,
        bounds: &SegmentBounds,
        out: &mut wf_storage::SegmentBuilder,
        part_starts: &mut Vec<usize>,
        peer_starts: &mut Vec<usize>,
        resolved: &mut usize,
        nparts: &mut usize,
    ) -> Result<()> {
        let env = &self.env;
        let wpk_eq = |a: &Row, b: &Row| self.wpk_eq(a, b);
        let mut part_split = RunSplitter::new(bounds, &self.wpk, n, env.reuse_bounds);
        let mut peer_split = RunSplitter::new(bounds, &self.union_attrs, n, env.reuse_bounds);
        let mut agg = RunningAgg::new(&self.func, env);
        let mut prev: Option<Row> = None;
        let mut lo = 0usize;
        let mut idx = 0usize;
        while let Some(row) = stream.next_row()? {
            let part_boundary = match &prev {
                None => true,
                Some(p) => part_split.is_boundary(idx, p, &row, wpk_eq, false, &env.tracker),
            };
            if part_boundary && idx > 0 {
                agg.finish_partition(env, out, lo, peer_starts)?;
                *resolved += 1;
                *nparts += 1;
                lo = idx;
            }
            if part_boundary {
                part_starts.push(idx);
            }
            let peer_boundary = match &prev {
                None => true,
                Some(p) => peer_split.is_boundary(
                    idx,
                    p,
                    &row,
                    |a, b| self.wok_cmp.equal(a, b),
                    part_boundary,
                    &env.tracker,
                ),
            };
            if peer_boundary {
                agg.close_group();
            }
            agg.consume(&row, env)?;
            prev = Some(self.key_shadow(&row));
            agg.stage(row)?;
            idx += 1;
        }
        if idx > 0 {
            agg.finish_partition(env, out, lo, peer_starts)?;
            *resolved += 1;
            *nparts += 1;
        }
        Ok(())
    }

    /// Row equality on exactly the partition key `WPK` — the one
    /// definition every evaluation path (materialized, one-pass, ring,
    /// buffered) splits partitions with, so their boundary decisions can
    /// never drift apart.
    fn wpk_eq(&self, a: &Row, b: &Row) -> bool {
        self.wpk.iter().all(|attr| a.get(attr) == b.get(attr))
    }

    /// Projection of `row` to `WPK ∪ attr(WOK)` (other columns NULL).
    /// Boundary checks only read those attributes, so the streaming paths
    /// keep this shadow of the previous row instead of cloning whole rows
    /// through their hot loops.
    fn key_shadow(&self, row: &Row) -> Row {
        Row::new(
            (0..row.arity())
                .map(|i| {
                    let id = wf_common::AttrId::new(i);
                    if self.union_attrs.contains(id) {
                        row.get(id).clone()
                    } else {
                        Value::Null
                    }
                })
                .collect(),
        )
    }

    /// One-pass `ntile` over spilled partitions: rows are staged through
    /// the store (the stage spills past the pool budget, so residency stays
    /// `O(M)` even for partitions ≫ `M`) while a row counter runs; at
    /// partition end the bucket sizes are known and the staged rows are
    /// replayed with their tile numbers. No peer resolution and no
    /// comparison charges — exactly like the materialized `ntile`.
    #[allow(clippy::too_many_arguments)]
    fn stream_ntile(
        &self,
        n: usize,
        mut stream: crate::operator::SegStream,
        bounds: &SegmentBounds,
        out: &mut wf_storage::SegmentBuilder,
        part_starts: &mut Vec<usize>,
        nparts: &mut usize,
    ) -> Result<()> {
        let env = &self.env;
        let tiles = match self.func {
            WindowFunction::Ntile(t) => t.max(1) as usize,
            _ => unreachable!("dispatched on Ntile"),
        };
        let wpk_eq = |a: &Row, b: &Row| self.wpk_eq(a, b);
        let mut part_split = RunSplitter::new(bounds, &self.wpk, n, env.reuse_bounds);
        let mut stage = env.store.builder();
        let flush = |stage: &mut wf_storage::SegmentBuilder,
                     out: &mut wf_storage::SegmentBuilder|
         -> Result<()> {
            let staged = std::mem::replace(stage, env.store.builder()).finish()?;
            let len = staged.len();
            let base = len / tiles;
            let extra = len % tiles;
            let mut reader = staged.read();
            let mut j = 0usize;
            while let Some(mut row) = reader.next_row()? {
                // Tiles 0..extra hold base+1 rows, the rest base rows —
                // the same spread-the-remainder rule as the materialized
                // path.
                let tile = if j < extra * (base + 1) {
                    j / (base + 1)
                } else {
                    extra + (j - extra * (base + 1)) / base.max(1)
                };
                row.push(Value::Int(tile as i64 + 1));
                out.push(row)?;
                j += 1;
            }
            Ok(())
        };
        let mut prev: Option<Row> = None;
        let mut idx = 0usize;
        while let Some(row) = stream.next_row()? {
            let part_boundary = match &prev {
                None => true,
                Some(p) => part_split.is_boundary(idx, p, &row, wpk_eq, false, &env.tracker),
            };
            if part_boundary && idx > 0 {
                flush(&mut stage, out)?;
                *nparts += 1;
            }
            if part_boundary {
                part_starts.push(idx);
            }
            prev = Some(self.key_shadow(&row));
            stage.push(row)?;
            idx += 1;
        }
        if idx > 0 {
            flush(&mut stage, out)?;
            *nparts += 1;
        }
        Ok(())
    }

    /// One-pass streaming of the distribution functions (`percent_rank`,
    /// `cume_dist`) over spilled partitions — the staged-replay trick:
    /// rows are staged through the store (the stage spills past the pool
    /// budget, keeping residency `O(M)` for partitions ≫ `M`) while peer
    /// groups resolve on the fly with the exact comparison charges of the
    /// materialized path; at partition end the cardinality is known, so
    /// the staged rows replay with their group's value — `gs / (n - 1)`
    /// for `percent_rank` (0 for a single-row partition), `ge / n` for
    /// `cume_dist`, in the materialized path's exact float arithmetic.
    #[allow(clippy::too_many_arguments)]
    fn stream_distribution(
        &self,
        n: usize,
        mut stream: crate::operator::SegStream,
        bounds: &SegmentBounds,
        out: &mut wf_storage::SegmentBuilder,
        part_starts: &mut Vec<usize>,
        peer_starts: &mut Vec<usize>,
        resolved: &mut usize,
        nparts: &mut usize,
    ) -> Result<()> {
        let env = &self.env;
        let want_pr = matches!(self.func, WindowFunction::PercentRank);
        let wpk_eq = |a: &Row, b: &Row| self.wpk_eq(a, b);
        let mut part_split = RunSplitter::new(bounds, &self.wpk, n, env.reuse_bounds);
        let mut peer_split = RunSplitter::new(bounds, &self.union_attrs, n, env.reuse_bounds);
        let mut stage = env.store.builder();
        // Rows per closed peer group of the open partition, plus the open
        // group's row count — O(groups) state, never the rows themselves.
        let mut groups: Vec<usize> = Vec::new();
        let mut open = 0usize;
        let flush = |stage: &mut wf_storage::SegmentBuilder,
                     groups: &mut Vec<usize>,
                     open: &mut usize,
                     lo: usize,
                     out: &mut wf_storage::SegmentBuilder,
                     peer_starts: &mut Vec<usize>|
         -> Result<()> {
            if *open > 0 {
                groups.push(std::mem::take(open));
            }
            let staged = std::mem::replace(stage, env.store.builder()).finish()?;
            let len = staged.len();
            let mut reader = staged.read();
            let mut gs = 0usize;
            for &g in groups.iter() {
                peer_starts.push(lo + gs);
                let ge = gs + g;
                let value = if want_pr {
                    if len <= 1 {
                        Value::Float(0.0)
                    } else {
                        Value::Float(gs as f64 / (len - 1) as f64)
                    }
                } else {
                    Value::Float(ge as f64 / len as f64)
                };
                for _ in 0..g {
                    let mut row = reader
                        .next_row()?
                        .ok_or_else(|| Error::Execution("staged partition truncated".into()))?;
                    row.push(value.clone());
                    out.push(row)?;
                }
                gs = ge;
            }
            groups.clear();
            Ok(())
        };
        let mut prev: Option<Row> = None;
        let mut lo = 0usize;
        let mut idx = 0usize;
        while let Some(row) = stream.next_row()? {
            let part_boundary = match &prev {
                None => true,
                Some(p) => part_split.is_boundary(idx, p, &row, wpk_eq, false, &env.tracker),
            };
            if part_boundary && idx > 0 {
                flush(&mut stage, &mut groups, &mut open, lo, out, peer_starts)?;
                *resolved += 1;
                *nparts += 1;
                lo = idx;
            }
            if part_boundary {
                part_starts.push(idx);
            }
            let peer_boundary = match &prev {
                None => true,
                Some(p) => peer_split.is_boundary(
                    idx,
                    p,
                    &row,
                    |a, b| self.wok_cmp.equal(a, b),
                    part_boundary,
                    &env.tracker,
                ),
            };
            if peer_boundary && open > 0 {
                groups.push(std::mem::take(&mut open));
            }
            open += 1;
            prev = Some(self.key_shadow(&row));
            stage.push(row)?;
            idx += 1;
        }
        if idx > 0 {
            flush(&mut stage, &mut groups, &mut open, lo, out, peer_starts)?;
            *resolved += 1;
            *nparts += 1;
        }
        Ok(())
    }

    /// Ring-buffer streaming for spilled partitions: ranking functions,
    /// `lag`/`lead`, bounded-ROWS frame readers (including the variance
    /// family), and pure-offset RANGE aggregates evaluate with at most the
    /// frame extent staged plus per-peer-group rank state — `O(M + frame)`
    /// tracked residency instead of buffering the partition. Partition and
    /// peer boundaries are detected with the
    /// exact comparison charges of the materialized path (via
    /// [`RunSplitter`]); value computation mirrors the materialized
    /// evaluators bit for bit (see [`RingEval`]).
    #[allow(clippy::too_many_arguments)]
    fn stream_ring(
        &self,
        n: usize,
        mut stream: crate::operator::SegStream,
        bounds: &SegmentBounds,
        out: &mut wf_storage::SegmentBuilder,
        part_starts: &mut Vec<usize>,
        peer_starts: &mut Vec<usize>,
        resolved: &mut usize,
        nparts: &mut usize,
    ) -> Result<()> {
        let env = &self.env;
        let wpk_eq = |a: &Row, b: &Row| self.wpk_eq(a, b);
        let mut part_split = RunSplitter::new(bounds, &self.wpk, n, env.reuse_bounds);
        // Only the ranking functions resolve peers (the materialized path
        // calls `peer_bounds` for exactly those) — resolving them for other
        // functions would charge comparisons the materialized path never
        // pays.
        let needs_peers = matches!(self.func, WindowFunction::Rank | WindowFunction::DenseRank);
        let mut peer_split =
            needs_peers.then(|| RunSplitter::new(bounds, &self.union_attrs, n, env.reuse_bounds));
        let mut ring = RingEval::new(&self.func, &self.frame, &self.wok, env)?;
        let mut prev: Option<Row> = None;
        let mut idx = 0usize;
        while let Some(row) = stream.next_row()? {
            let part_boundary = match &prev {
                None => true,
                Some(p) => part_split.is_boundary(idx, p, &row, wpk_eq, false, &env.tracker),
            };
            if part_boundary && idx > 0 {
                ring.finish_partition(env, out)?;
                if needs_peers {
                    *resolved += 1;
                }
                *nparts += 1;
            }
            if part_boundary {
                part_starts.push(idx);
            }
            let peer_boundary = match &mut peer_split {
                None => false,
                Some(split) => match &prev {
                    None => true,
                    Some(p) => split.is_boundary(
                        idx,
                        p,
                        &row,
                        |a, b| self.wok_cmp.equal(a, b),
                        part_boundary,
                        &env.tracker,
                    ),
                },
            };
            if peer_boundary {
                peer_starts.push(idx);
            }
            prev = Some(self.key_shadow(&row));
            ring.push(row, peer_boundary, out)?;
            idx += 1;
        }
        if idx > 0 {
            ring.finish_partition(env, out)?;
            if needs_peers {
                *resolved += 1;
            }
            *nparts += 1;
        }
        Ok(())
    }
}

impl<I: Operator> Operator for WindowOp<I> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        match self.input.next_segment()? {
            None => Ok(None),
            Some(seg) if seg.is_spilled() => {
                let _span = self.env.trace.span("window", "eval_spilled");
                Ok(Some(self.eval_spilled(seg)?))
            }
            Some(seg) => {
                let _span = self.env.trace.span("window", "eval");
                Ok(Some(self.eval_segment(seg)?))
            }
        }
    }
}

/// Per-partition running state of the streaming default-frame aggregation.
/// Accumulates exactly like [`running_default_frame`] — integer sums in
/// `i128`, float classification over the whole partition, min/max charging
/// one comparison per non-null value after the first — and snapshots the
/// state at every peer-group close so the staged rows can be zipped with
/// their group's value at partition end.
struct RunningAgg {
    func: WindowFunction,
    /// Staged partition rows (store-managed; spills past the pool budget).
    stage: Option<wf_storage::SegmentBuilder>,
    /// `(rows in group, state snapshot at group end)` per closed group.
    groups: Vec<(usize, GroupSnap)>,
    open_rows: usize,
    cnt: i64,
    sum_i: i128,
    sum_f: f64,
    all_int: bool,
    extremum: Option<Value>,
}

/// Accumulator snapshot at a peer-group close.
struct GroupSnap {
    cnt: i64,
    sum_i: i128,
    sum_f: f64,
    extremum: Option<Value>,
}

impl RunningAgg {
    fn new(func: &WindowFunction, env: &OpEnv) -> Self {
        RunningAgg {
            func: func.clone(),
            stage: Some(env.store.builder()),
            groups: Vec::new(),
            open_rows: 0,
            cnt: 0,
            sum_i: 0,
            sum_f: 0.0,
            all_int: true,
            extremum: None,
        }
    }

    /// Close the currently open peer group (no-op when empty).
    fn close_group(&mut self) {
        if self.open_rows == 0 {
            return;
        }
        self.groups.push((
            self.open_rows,
            GroupSnap {
                cnt: self.cnt,
                sum_i: self.sum_i,
                sum_f: self.sum_f,
                extremum: self.extremum.clone(),
            },
        ));
        self.open_rows = 0;
    }

    /// Fold one row's value into the running state.
    fn consume(&mut self, row: &Row, env: &OpEnv) -> Result<()> {
        use WindowFunction::*;
        match &self.func {
            Count(col) => {
                self.cnt += match col {
                    None => 1,
                    Some(c) => i64::from(!row.get(*c).is_null()),
                };
            }
            Sum(col) | Avg(col) => match row.get(*col) {
                Value::Int(x) => {
                    self.sum_i += *x as i128;
                    self.sum_f += *x as f64;
                    self.cnt += 1;
                }
                Value::Float(x) => {
                    self.all_int = false;
                    self.sum_f += *x;
                    self.cnt += 1;
                }
                Value::Null => {}
                other => {
                    return Err(Error::TypeMismatch {
                        expected: "numeric".into(),
                        found: other.type_name().into(),
                    })
                }
            },
            Min(col) | Max(col) => {
                let v = row.get(*col);
                if !v.is_null() {
                    let want_min = matches!(self.func, Min(_));
                    match &self.extremum {
                        None => self.extremum = Some(v.clone()),
                        Some(c) => {
                            env.tracker.compare(1);
                            if (want_min && v < c) || (!want_min && v > c) {
                                self.extremum = Some(v.clone());
                            }
                        }
                    }
                }
            }
            other => {
                return Err(Error::Execution(format!(
                    "{other:?} is not a streamable default-frame aggregate"
                )))
            }
        }
        self.open_rows += 1;
        Ok(())
    }

    /// Stage the row itself for the end-of-partition zip.
    fn stage(&mut self, row: Row) -> Result<()> {
        self.stage.as_mut().expect("stage open").push(row)
    }

    /// Finalize the partition: resolve each group's value (the type
    /// classification is partition-global, exactly like the materialized
    /// path), read the staged rows back and emit them with their values.
    fn finish_partition(
        &mut self,
        env: &OpEnv,
        out: &mut wf_storage::SegmentBuilder,
        lo: usize,
        peer_starts: &mut Vec<usize>,
    ) -> Result<()> {
        use WindowFunction::*;
        self.close_group();
        let values: Vec<Value> = self
            .groups
            .iter()
            .map(|(_, s)| match &self.func {
                Count(_) => Value::Int(s.cnt),
                Sum(_) => {
                    if s.cnt == 0 {
                        Value::Null
                    } else if self.all_int {
                        Value::Int(s.sum_i.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
                    } else {
                        Value::Float(s.sum_f)
                    }
                }
                Avg(_) => {
                    if s.cnt == 0 {
                        Value::Null
                    } else if self.all_int {
                        Value::Float(s.sum_i as f64 / s.cnt as f64)
                    } else {
                        Value::Float(s.sum_f / s.cnt as f64)
                    }
                }
                Min(_) | Max(_) => s.extremum.clone().unwrap_or(Value::Null),
                _ => unreachable!("gated in consume"),
            })
            .collect();
        let stage = self.stage.take().expect("stage open").finish()?;
        let mut reader = stage.read();
        let mut pos = lo;
        for ((group_rows, _), value) in self.groups.iter().zip(values) {
            peer_starts.push(pos);
            pos += group_rows;
            for _ in 0..*group_rows {
                let mut row = reader
                    .next_row()?
                    .ok_or_else(|| Error::Execution("staged partition truncated".into()))?;
                row.push(value.clone());
                out.push(row)?;
            }
        }
        // Reset for the next partition.
        self.stage = Some(env.store.builder());
        self.groups.clear();
        self.open_rows = 0;
        self.cnt = 0;
        self.sum_i = 0;
        self.sum_f = 0.0;
        self.all_int = true;
        self.extremum = None;
        Ok(())
    }
}

/// Per-partition state of the ring-buffer streaming path
/// ([`StreamableEval::Ring`]).
///
/// The ring stages at most `hist + delay + 1` rows — the frame extent:
/// `delay` rows of lookahead (a row is evaluated once the last row its
/// frame can read has arrived, or the partition ends) plus `hist` rows of
/// lookback (rows an upcoming frame may still read). Residency is tracked
/// row by row through a [`wf_storage::RingCharge`], never a unit hold, so
/// the store's high-water mark shows `O(M + frame)`.
///
/// Bit-identity with the materialized evaluators:
/// * `rank`/`dense_rank` take their values from the peer boundaries the
///   caller detects (with the materialized path's exact comparison
///   charges); `row_number` and `lag`/`lead` are pure index arithmetic;
/// * `sum`/`avg` answer frames from *sequential prefix accumulators* — the
///   same association order as the materialized prefix arrays, so float
///   results match bit for bit — and stage provisionally-valued rows until
///   partition end, when the partition-global int/float classification
///   (the materialized path's rule) is known;
/// * `count(col)` answers frames from the same prefix deque (`O(1)` per
///   row); `min`/`max` run a monotonic deque over the sliding frame —
///   popping strictly-worse entries keeps the *leftmost* extremum, exactly
///   the sparse table's tie rule, in `O(n)` total — and charge the sparse
///   table's deterministic build comparisons at partition end, keeping
///   modeled counters identical;
/// * the variance family (`var_pop`/`var_samp`/`stddev_pop`/`stddev_samp`)
///   adds a sum-of-squares prefix lane and applies the materialized path's
///   sum-of-squares identity verbatim (same association order, same
///   clamping) — bit-identical floats, zero extra comparisons;
/// * pure-offset RANGE frames resolve through [`RangeState`]'s monotone
///   pointers — the same half-open ranges as the materialized binary
///   searches (NULL peer regions included), equally uncharged.
struct RingEval {
    func: WindowFunction,
    frame: FrameSpec,
    /// Rows before the current one that upcoming frames may still read.
    hist: usize,
    /// Rows after row `i` that must arrive before `i` can be evaluated.
    delay: usize,
    /// Staged rows `[base, received)`, partition-relative.
    ring: std::collections::VecDeque<Row>,
    base: usize,
    next_emit: usize,
    received: usize,
    charge: wf_storage::RingCharge,
    /// Ranking state of the open peer group.
    rank: i64,
    dense: i64,
    /// Sum/Avg/Count(col)/variance: prefix accumulators for indexes
    /// `[pbase, received]` — `(exact int sum, float sum, float sum of
    /// squares, non-null count)` over rows `0..j`. The sum-of-squares lane
    /// is populated by the variance family only.
    prefixes: std::collections::VecDeque<(i128, f64, f64, i64)>,
    pbase: usize,
    all_int: bool,
    /// Pure-offset RANGE frames: streamed mirror of the materialized
    /// binary-search frame resolution (see [`RangeState`]). `None` in
    /// ROWS / frame-less modes.
    range: Option<RangeState>,
    /// Min/Max: monotonic deque of rel indices with non-null values —
    /// front is the frame's leftmost extremum; `next_add` is the first
    /// index not yet offered to it. O(n) total over a partition.
    minmax: std::collections::VecDeque<usize>,
    next_add: usize,
    /// Sum/Avg: provisionally valued rows awaiting the partition-global
    /// type class (store-staged; spills past the pool budget).
    stage: Option<wf_storage::SegmentBuilder>,
}

/// Streaming state for pure-offset RANGE frames (`x PRECEDING .. y
/// FOLLOWING` in key space). Because the partition arrives sorted on the
/// single numeric ordering key, both frame edges are monotone in the row
/// index: the materialized path's per-row binary searches collapse into two
/// pointers (`fs`/`fe`) that only ever advance — `O(n)` per partition, and
/// (like the binary searches) uncharged. NULL-key rows form their own peer
/// region at whichever end the sort placed them.
struct RangeState {
    /// The single ordering key (validated lazily, per row, exactly like
    /// [`range_key`] — so an empty input never errors).
    wok: SortSpec,
    /// Frame-start key delta: `Preceding(k) → -k`, `Following(k) → +k`.
    start_delta: i64,
    /// Frame-end key delta, same encoding.
    end_delta: i64,
    /// Ascending-normalized keys of rows `[kbase, received)`, aligned with
    /// the row ring; `(key, is_null)` as produced by [`range_key_row`].
    keys: std::collections::VecDeque<(f64, bool)>,
    kbase: usize,
    /// Monotone frame pointers: `fs` = first index with key ≥ key(i) +
    /// start_delta, `fe` = one past the last with key ≤ key(i) + end_delta.
    fs: usize,
    fe: usize,
    /// The NULL peer region `[null_start, null_end)`; `null_end == None`
    /// means it runs to the partition end (NULLs sorted last).
    null_start: Option<usize>,
    null_end: Option<usize>,
}

impl RingEval {
    fn new(func: &WindowFunction, frame: &FrameSpec, wok: &SortSpec, env: &OpEnv) -> Result<Self> {
        use WindowFunction::*;
        if func.uses_frame() {
            // Mirror `frame_ranges`' offset validation.
            for b in [frame.start, frame.end] {
                if let Bound::Preceding(k) | Bound::Following(k) = b {
                    if k < 0 {
                        return Err(Error::InvalidQuery(
                            "frame offset must not be negative".into(),
                        ));
                    }
                }
            }
        }
        let preceding = |b: Bound| match b {
            Bound::Preceding(k) => k.max(0) as usize,
            _ => 0,
        };
        let following = |b: Bound| match b {
            Bound::Following(k) => k.max(0) as usize,
            _ => 0,
        };
        let (hist, delay) = match func {
            Lag { offset, .. } => (*offset as usize, 0),
            Lead { offset, .. } => (0, *offset as usize),
            // RANGE offsets are key distances, not row counts: retention
            // and readiness come from the key pointers instead (see
            // `RangeState`), so hist/delay stay zero there.
            _ if func.uses_frame() && frame.units == FrameUnits::Rows => (
                preceding(frame.start).max(preceding(frame.end)),
                following(frame.start).max(following(frame.end)),
            ),
            _ => (0, 0),
        };
        let range = (func.uses_frame() && frame.units == FrameUnits::Range).then(|| {
            let delta = |b: Bound| match b {
                Bound::Preceding(k) => -k,
                Bound::Following(k) => k,
                _ => 0,
            };
            RangeState {
                wok: wok.clone(),
                start_delta: delta(frame.start),
                end_delta: delta(frame.end),
                keys: std::collections::VecDeque::new(),
                kbase: 0,
                fs: 0,
                fe: 0,
                null_start: None,
                null_end: None,
            }
        });
        let stage = matches!(func, Sum(_) | Avg(_)).then(|| env.store.builder());
        Ok(RingEval {
            func: func.clone(),
            frame: *frame,
            hist,
            delay,
            ring: std::collections::VecDeque::new(),
            base: 0,
            next_emit: 0,
            received: 0,
            charge: env.store.ring_charge(),
            rank: 0,
            dense: 0,
            prefixes: std::collections::VecDeque::from([(0i128, 0f64, 0f64, 0i64)]),
            pbase: 0,
            all_int: true,
            range,
            minmax: std::collections::VecDeque::new(),
            next_add: 0,
            stage,
        })
    }

    /// One partition row arrived (`peer_boundary`: it starts a new peer
    /// group — meaningful for the ranking functions only). Emits every row
    /// whose lookahead is now satisfied.
    fn push(
        &mut self,
        row: Row,
        peer_boundary: bool,
        out: &mut wf_storage::SegmentBuilder,
    ) -> Result<()> {
        use WindowFunction::*;
        if peer_boundary {
            self.rank = self.received as i64 + 1;
            self.dense += 1;
        }
        if let Some(r) = &mut self.range {
            // Resolve the ordering key first — the materialized path
            // validates it (in `frame_ranges`) before touching the
            // aggregate column.
            let (k, knull) = range_key_row(&r.wok, &row)?;
            if knull {
                if r.null_start.is_none() {
                    r.null_start = Some(self.received);
                }
            } else if r.null_start.is_some() && r.null_end.is_none() {
                r.null_end = Some(self.received);
            }
            r.keys.push_back((k, knull));
        }
        match &self.func {
            Sum(col) | Avg(col) => {
                let &(pi, pf, pq, pc) = self.prefixes.back().expect("prefix seeded");
                let (di, df, dc) = match row.get(*col) {
                    Value::Int(x) => (*x as i128, *x as f64, 1),
                    Value::Float(x) => {
                        self.all_int = false;
                        (0, *x, 1)
                    }
                    Value::Null => (0, 0.0, 0),
                    other => {
                        return Err(Error::TypeMismatch {
                            expected: "numeric".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                self.prefixes.push_back((pi + di, pf + df, pq, pc + dc));
            }
            VarPop(col) | VarSamp(col) | StddevPop(col) | StddevSamp(col) => {
                let &(pi, pf, pq, pc) = self.prefixes.back().expect("prefix seeded");
                let (x, dc) = match row.get(*col) {
                    Value::Int(v) => (*v as f64, 1),
                    Value::Float(v) => (*v, 1),
                    Value::Null => (0.0, 0),
                    other => {
                        return Err(Error::TypeMismatch {
                            expected: "numeric".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                self.prefixes.push_back((pi, pf + x, pq + x * x, pc + dc));
            }
            Count(Some(col)) => {
                let &(pi, pf, pq, pc) = self.prefixes.back().expect("prefix seeded");
                self.prefixes
                    .push_back((pi, pf, pq, pc + i64::from(!row.get(*col).is_null())));
            }
            _ => {}
        }
        self.charge.enter(row.encoded_len());
        self.ring.push_back(row);
        self.received += 1;
        if self.range.is_some() {
            while self.range_ready() {
                self.emit_next(self.received, out)?;
            }
        } else {
            while self.next_emit + self.delay < self.received {
                self.emit_next(self.received, out)?;
            }
        }
        Ok(())
    }

    /// Pure-offset RANGE emission gate for row `next_emit`: the partition
    /// arrives key-sorted, so once the *latest* key passes the frame's end
    /// target the frame can no longer grow. A NULL-key row's frame is the
    /// NULL peer region, complete once a non-NULL key follows it (NULLs
    /// are contiguous under the sort); rows the gate never releases are
    /// flushed at partition end, when the length is exact.
    fn range_ready(&self) -> bool {
        let Some(r) = &self.range else { return false };
        if self.next_emit >= self.received {
            return false;
        }
        let (ki, inull) = r.keys[self.next_emit - r.kbase];
        let (kl, lnull) = r.keys[self.received - 1 - r.kbase];
        if inull {
            !lnull
        } else {
            // A NULL key in the tail sorts past every numeric target —
            // the same side rule the materialized binary search applies.
            lnull || kl > ki + r.end_delta as f64
        }
    }

    /// Resolve the pure-offset RANGE frame of row `i` — the same half-open
    /// range the materialized binary searches produce, computed with the
    /// monotone `fs`/`fe` sweeps (each pointer passes a row at most once:
    /// `O(n)` per partition). Uncharged, like the binary searches.
    fn range_frame(&mut self, i: usize, avail: usize) -> (usize, usize) {
        let r = self.range.as_mut().expect("range mode");
        let (ki, inull) = r.keys[i - r.kbase];
        if inull {
            let s = r.null_start.expect("null key was recorded");
            let e = r.null_end.unwrap_or(avail);
            return (s.min(avail), e.max(s).min(avail));
        }
        let ts = ki + r.start_delta as f64;
        let te = ki + r.end_delta as f64;
        // NULL keys before the current row count as "below any numeric
        // target" (the binary searches' `mid < i` side rule); ones at or
        // past it stop the sweep.
        while r.fs < self.received {
            let (k, knull) = r.keys[r.fs - r.kbase];
            if (knull && r.fs < i) || (!knull && k < ts) {
                r.fs += 1;
            } else {
                break;
            }
        }
        while r.fe < self.received {
            let (k, knull) = r.keys[r.fe - r.kbase];
            if (knull && r.fe < i) || (!knull && k <= te) {
                r.fe += 1;
            } else {
                break;
            }
        }
        let s = r.fs.min(avail);
        (s, r.fe.max(s).min(avail))
    }

    /// Evaluate and emit the next pending row. `avail` is the number of
    /// partition rows known so far — the exact partition length at
    /// partition end, and large enough mid-stream that the frame clamps
    /// cannot bite (lookahead guarantees every readable row has arrived).
    fn emit_next(&mut self, avail: usize, out: &mut wf_storage::SegmentBuilder) -> Result<()> {
        use WindowFunction::*;
        let i = self.next_emit;
        let mut row = self.ring[i - self.base].clone();
        match &self.func {
            RowNumber => row.push(Value::Int(i as i64 + 1)),
            Rank => row.push(Value::Int(self.rank)),
            DenseRank => row.push(Value::Int(self.dense)),
            Lag {
                col,
                offset,
                default,
            } => {
                let v = i
                    .checked_sub(*offset as usize)
                    .map(|j| self.ring[j - self.base].get(*col).clone())
                    .unwrap_or_else(|| default.clone().unwrap_or(Value::Null));
                row.push(v);
            }
            Lead {
                col,
                offset,
                default,
            } => {
                let j = i + *offset as usize;
                let v = if j < avail {
                    self.ring[j - self.base].get(*col).clone()
                } else {
                    default.clone().unwrap_or(Value::Null)
                };
                row.push(v);
            }
            _ => {
                // Frame readers: bounded-ROWS frames resolve exactly like
                // `frame_ranges`; pure-offset RANGE frames replay the
                // materialized binary searches via the monotone pointers.
                let (s, e) = if self.range.is_some() {
                    self.range_frame(i, avail)
                } else {
                    let s = rows_bound_start(self.frame.start, i, avail).min(avail);
                    let e = rows_bound_end(self.frame.end, i, avail).max(s).min(avail);
                    (s, e)
                };
                if let Sum(_) | Avg(_) = &self.func {
                    // Provisional value: prefix differences, resolved at
                    // partition end once the type class is known.
                    let (si, sf, _, sc) = self.prefix_diff(s, e);
                    row.push(Value::Int(sc));
                    row.push(Value::Int((si >> 64) as i64));
                    row.push(Value::Int(si as u64 as i64));
                    row.push(Value::Float(sf));
                    self.stage.as_mut().expect("sum/avg stage").push(row)?;
                    self.next_emit += 1;
                    self.evict();
                    return Ok(());
                }
                if let Min(col) | Max(col) = self.func {
                    row.push(self.slide_minmax(col, s, e));
                } else {
                    row.push(self.frame_value(s, e));
                }
            }
        }
        out.push(row)?;
        self.next_emit += 1;
        self.evict();
        Ok(())
    }

    /// Value of a direct-emission frame reader over `[s, e)`.
    fn frame_value(&self, s: usize, e: usize) -> Value {
        use WindowFunction::*;
        let at = |j: usize| &self.ring[j - self.base];
        match &self.func {
            FirstValue(col) => {
                if s < e {
                    at(s).get(*col).clone()
                } else {
                    Value::Null
                }
            }
            LastValue(col) => {
                if s < e {
                    at(e - 1).get(*col).clone()
                } else {
                    Value::Null
                }
            }
            NthValue(col, k) => {
                let idx = s + (*k).max(1) as usize - 1;
                if idx < e {
                    at(idx).get(*col).clone()
                } else {
                    Value::Null
                }
            }
            Count(None) => Value::Int((e - s) as i64),
            // Non-null count from the prefix deque: O(1), exact integers.
            Count(Some(_)) => Value::Int(self.prefix_diff(s, e).3),
            // Variance family: the materialized path's sum-of-squares
            // identity over the same f64 prefix lanes — identical
            // association order, so results match bit for bit.
            VarPop(_) | VarSamp(_) | StddevPop(_) | StddevSamp(_) => {
                let (_, sum, sq, cnt) = self.prefix_diff(s, e);
                let sample = matches!(self.func, VarSamp(_) | StddevSamp(_));
                let sqrt = matches!(self.func, StddevPop(_) | StddevSamp(_));
                let cnt = cnt as f64;
                let min_n = if sample { 2.0 } else { 1.0 };
                if cnt < min_n {
                    Value::Null
                } else {
                    let ssd = (sq - sum * sum / cnt).max(0.0);
                    let var = ssd / if sample { cnt - 1.0 } else { cnt };
                    Value::Float(if sqrt { var.sqrt() } else { var })
                }
            }
            other => unreachable!("{other:?} is not a ring frame reader"),
        }
    }

    /// Sliding min/max over `[s, e)` via the monotonic deque: each row is
    /// offered and evicted at most once across a partition (`O(n)` total).
    /// Popping only *strictly* worse back entries keeps the earliest of
    /// equal values, so the front is the frame's **leftmost** extremum —
    /// exactly the sparse table's tie rule. Actual comparisons here are
    /// not charged: the sparse table's deterministic build charge is
    /// mirrored at partition end.
    fn slide_minmax(&mut self, col: AttrId, s: usize, e: usize) -> Value {
        let want_min = matches!(self.func, WindowFunction::Min(_));
        // Evict entries the frame has slid past *first*: they may already
        // have aged out of the ring (`s ≥ base` holds, indices below `s`
        // need not), so they must never be dereferenced again.
        while self.minmax.front().is_some_and(|&f| f < s) {
            self.minmax.pop_front();
        }
        while self.next_add < e {
            let j = self.next_add;
            self.next_add += 1;
            let v = self.ring[j - self.base].get(col);
            if v.is_null() {
                continue;
            }
            while let Some(&b) = self.minmax.back() {
                let bv = self.ring[b - self.base].get(col);
                if (want_min && bv > v) || (!want_min && bv < v) {
                    self.minmax.pop_back();
                } else {
                    break;
                }
            }
            self.minmax.push_back(j);
        }
        // Entries offered this round may still precede `s` when the frame
        // sits ahead of the current row (e.g. both bounds FOLLOWING) —
        // pop them too before answering; index compares only, no deref.
        while self.minmax.front().is_some_and(|&f| f < s) {
            self.minmax.pop_front();
        }
        match self.minmax.front() {
            Some(&f) if f < e => self.ring[f - self.base].get(col).clone(),
            _ => Value::Null,
        }
    }

    /// `prefix[e] - prefix[s]` — the materialized prefix arrays' exact
    /// arithmetic, including float association order.
    fn prefix_diff(&self, s: usize, e: usize) -> (i128, f64, f64, i64) {
        let pe = self.prefixes[e - self.pbase];
        let ps = self.prefixes[s - self.pbase];
        (pe.0 - ps.0, pe.1 - ps.1, pe.2 - ps.2, pe.3 - ps.3)
    }

    /// Drop ring rows (and prefix/key entries) no upcoming frame can read.
    fn evict(&mut self) {
        let keep = match &self.range {
            // Pure-offset RANGE: retain everything the slower frame
            // pointer (or a not-yet-emitted row) may still read. `fe`
            // joins the floor so degenerate end-before-start frames never
            // outrun their own start pointer's reads.
            Some(r) => self.next_emit.min(r.fs).min(r.fe),
            None => self.next_emit.saturating_sub(self.hist),
        };
        while self.base < keep {
            if let Some(row) = self.ring.pop_front() {
                self.charge.leave(row.encoded_len());
            }
            self.base += 1;
        }
        while self.pbase < keep {
            self.prefixes.pop_front();
            self.pbase += 1;
        }
        if let Some(r) = &mut self.range {
            while r.kbase < keep {
                r.keys.pop_front();
                r.kbase += 1;
            }
        }
    }

    /// The partition ended: flush pending rows (the partition length is now
    /// exact), settle the min/max model charge, resolve staged sum/avg
    /// rows, and reset for the next partition.
    fn finish_partition(
        &mut self,
        env: &OpEnv,
        out: &mut wf_storage::SegmentBuilder,
    ) -> Result<()> {
        use WindowFunction::*;
        let n = self.received;
        while self.next_emit < n {
            self.emit_next(n, out)?;
        }
        if matches!(self.func, Min(_) | Max(_)) {
            // Mirror of the materialized sparse-table build: its comparison
            // charge is a deterministic function of the partition length,
            // so charging it here keeps modeled counters bit-identical
            // across the resident and spilled paths.
            let mut width = 1usize;
            let mut total = 0u64;
            while width * 2 <= n {
                total += (n - width * 2 + 1) as u64;
                width *= 2;
            }
            env.tracker.compare(total);
        }
        if let Some(stage) = self.stage.take() {
            // Sum/Avg: the partition-global type class is now known —
            // resolve the provisionally valued rows in order.
            let want_avg = matches!(self.func, Avg(_));
            let staged = stage.finish()?;
            let mut reader = staged.read();
            while let Some(staged_row) = reader.next_row()? {
                let mut vals = staged_row.into_values();
                let (
                    Some(Value::Float(sf)),
                    Some(Value::Int(lo)),
                    Some(Value::Int(hi)),
                    Some(Value::Int(cnt)),
                ) = (vals.pop(), vals.pop(), vals.pop(), vals.pop())
                else {
                    return Err(Error::Execution("sum/avg stage layout corrupted".into()));
                };
                let si = ((hi as i128) << 64) | (lo as u64 as i128);
                let v = if cnt == 0 {
                    Value::Null
                } else if want_avg {
                    if self.all_int {
                        Value::Float(si as f64 / cnt as f64)
                    } else {
                        Value::Float(sf / cnt as f64)
                    }
                } else if self.all_int {
                    Value::Int(si.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
                } else {
                    Value::Float(sf)
                };
                let mut row = Row::new(vals);
                row.push(v);
                out.push(row)?;
            }
            self.stage = Some(env.store.builder());
        }
        while let Some(row) = self.ring.pop_front() {
            self.charge.leave(row.encoded_len());
        }
        self.base = 0;
        self.next_emit = 0;
        self.received = 0;
        self.rank = 0;
        self.dense = 0;
        self.prefixes.clear();
        self.prefixes.push_back((0, 0.0, 0.0, 0));
        self.pbase = 0;
        self.all_int = true;
        self.minmax.clear();
        self.next_add = 0;
        if let Some(r) = &mut self.range {
            r.keys.clear();
            r.kbase = 0;
            r.fs = 0;
            r.fe = 0;
            r.null_start = None;
            r.null_end = None;
        }
        Ok(())
    }
}

/// Evaluate `func` over a matched input: appends one column to every row and
/// preserves row order and segmentation. `frame` defaults per SQL when
/// `None`. Thin wrapper over [`WindowOp`] for batch callers.
pub fn evaluate_window(
    input: SegmentedRows,
    wpk: &AttrSet,
    wok: &SortSpec,
    func: &WindowFunction,
    frame: Option<FrameSpec>,
    env: &OpEnv,
) -> Result<SegmentedRows> {
    let mut op = WindowOp::new(
        SegmentSource::new(input),
        wpk.clone(),
        wok.clone(),
        func.clone(),
        frame,
        env.clone(),
    );
    drain(&mut op)
}

/// Resolves peer-group (tie) boundaries per partition, reusing a carried
/// boundary layer over `WPK ∪ attr(WOK)` when the chain already proved one
/// and collecting the resolved starts so the operator can emit them as a
/// layer for the *next* step.
struct PeerResolver<'a> {
    bounds: &'a SegmentBounds,
    union_attrs: &'a AttrSet,
    reuse: bool,
    /// Absolute peer-group starts across resolved partitions, in order.
    collected: Vec<usize>,
    /// Number of partitions that resolved their peers (the union layer is
    /// emitted only when every partition did).
    partitions_resolved: usize,
}

impl<'a> PeerResolver<'a> {
    fn new(bounds: &'a SegmentBounds, union_attrs: &'a AttrSet, reuse: bool) -> Self {
        PeerResolver {
            bounds,
            union_attrs,
            reuse,
            collected: Vec::new(),
            partitions_resolved: 0,
        }
    }

    /// Peer bounds of partition `rows[lo..hi]`: for each row (relative
    /// index) the start and end (exclusive, relative) of its peer group.
    ///
    /// Peer groups are maximal runs equal under the WOK comparator; since
    /// `WPK` values are constant within a partition, they coincide with the
    /// maximal runs equal on `WPK ∪ attr(WOK)` — which is what a carried
    /// union layer proves, making reuse sound.
    fn peer_bounds(
        &mut self,
        rows: &[Row],
        lo: usize,
        hi: usize,
        cmp: &RowComparator,
        env: &OpEnv,
    ) -> (Vec<usize>, Vec<usize>) {
        let n = hi - lo;
        let starts = if self.reuse {
            self.bounds.runs_equal_on(
                self.union_attrs,
                rows,
                lo,
                hi,
                |a, b| cmp.equal(a, b),
                &env.tracker,
            )
        } else {
            None
        }
        .unwrap_or_else(|| {
            crate::segment::scan_runs(rows, lo, hi, |a, b| cmp.equal(a, b), &env.tracker)
        });
        let mut gs = vec![0usize; n];
        let mut ge = vec![n; n];
        for (k, &s) in starts.iter().enumerate() {
            let e = starts.get(k + 1).copied().unwrap_or(hi);
            for i in s..e {
                gs[i - lo] = s - lo;
                ge[i - lo] = e - lo;
            }
        }
        self.partitions_resolved += 1;
        self.collected.extend(starts);
        (gs, ge)
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_partition(
    rows: &[Row],
    lo: usize,
    hi: usize,
    wok_cmp: &RowComparator,
    wok: &SortSpec,
    func: &WindowFunction,
    frame: &FrameSpec,
    env: &OpEnv,
    peers: &mut PeerResolver<'_>,
) -> Result<Vec<Value>> {
    let part = &rows[lo..hi];
    let n = part.len();
    match func {
        WindowFunction::RowNumber => Ok((1..=n as i64).map(Value::Int).collect()),
        WindowFunction::Rank => {
            let (gs, _) = peers.peer_bounds(rows, lo, hi, wok_cmp, env);
            Ok(gs.iter().map(|&s| Value::Int(s as i64 + 1)).collect())
        }
        WindowFunction::DenseRank => {
            let (gs, _) = peers.peer_bounds(rows, lo, hi, wok_cmp, env);
            let mut dense = 0i64;
            let mut out = Vec::with_capacity(n);
            let mut last = usize::MAX;
            for &s in &gs {
                if s != last {
                    dense += 1;
                    last = s;
                }
                out.push(Value::Int(dense));
            }
            Ok(out)
        }
        WindowFunction::PercentRank => {
            let (gs, _) = peers.peer_bounds(rows, lo, hi, wok_cmp, env);
            Ok(gs
                .iter()
                .map(|&s| {
                    if n <= 1 {
                        Value::Float(0.0)
                    } else {
                        Value::Float(s as f64 / (n - 1) as f64)
                    }
                })
                .collect())
        }
        WindowFunction::CumeDist => {
            let (_, ge) = peers.peer_bounds(rows, lo, hi, wok_cmp, env);
            Ok(ge
                .iter()
                .map(|&e| Value::Float(e as f64 / n as f64))
                .collect())
        }
        WindowFunction::Ntile(tiles) => {
            let t = (*tiles).max(1) as usize;
            let base = n / t;
            let extra = n % t;
            let mut out = Vec::with_capacity(n);
            for tile in 0..t {
                let size = base + usize::from(tile < extra);
                for _ in 0..size {
                    out.push(Value::Int(tile as i64 + 1));
                }
            }
            // n < t leaves the loop short; n rows always emitted.
            out.truncate(n);
            Ok(out)
        }
        WindowFunction::Lag {
            col,
            offset,
            default,
        } => {
            let d = default.clone().unwrap_or(Value::Null);
            Ok((0..n)
                .map(|i| {
                    i.checked_sub(*offset as usize)
                        .map(|j| part[j].get(*col).clone())
                        .unwrap_or_else(|| d.clone())
                })
                .collect())
        }
        WindowFunction::Lead {
            col,
            offset,
            default,
        } => {
            let d = default.clone().unwrap_or(Value::Null);
            Ok((0..n)
                .map(|i| {
                    let j = i + *offset as usize;
                    if j < n {
                        part[j].get(*col).clone()
                    } else {
                        d.clone()
                    }
                })
                .collect())
        }
        _ => eval_framed(rows, lo, hi, wok_cmp, wok, func, frame, env, peers),
    }
}

/// Resolve the frame of each row as a half-open index range.
#[allow(clippy::too_many_arguments)]
fn frame_ranges(
    rows: &[Row],
    lo: usize,
    hi: usize,
    wok_cmp: &RowComparator,
    wok: &SortSpec,
    frame: &FrameSpec,
    env: &OpEnv,
    peers: &mut PeerResolver<'_>,
) -> Result<Vec<(usize, usize)>> {
    let part = &rows[lo..hi];
    // SQL: "frame offset must not be negative" — reject rather than clamp
    // (ROWS) or flip direction (RANGE).
    for b in [frame.start, frame.end] {
        if let Bound::Preceding(k) | Bound::Following(k) = b {
            if k < 0 {
                return Err(Error::InvalidQuery(
                    "frame offset must not be negative".into(),
                ));
            }
        }
    }
    let n = part.len();
    match frame.units {
        FrameUnits::Rows => Ok((0..n)
            .map(|i| {
                let s = rows_bound_start(frame.start, i, n);
                let e = rows_bound_end(frame.end, i, n);
                (s.min(n), e.max(s).min(n))
            })
            .collect()),
        FrameUnits::Range => {
            let needs_peers =
                matches!(frame.start, Bound::CurrentRow) || matches!(frame.end, Bound::CurrentRow);
            let (gs, ge) = if needs_peers {
                peers.peer_bounds(rows, lo, hi, wok_cmp, env)
            } else {
                (vec![], vec![])
            };
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let s = match frame.start {
                    Bound::UnboundedPreceding => 0,
                    Bound::CurrentRow => gs[i],
                    Bound::Preceding(k) => range_offset_start(part, wok, i, -k)?,
                    Bound::Following(k) => range_offset_start(part, wok, i, k)?,
                    Bound::UnboundedFollowing => {
                        return Err(Error::InvalidQuery(
                            "frame start cannot be UNBOUNDED FOLLOWING".into(),
                        ))
                    }
                };
                let e = match frame.end {
                    Bound::UnboundedFollowing => n,
                    Bound::CurrentRow => ge[i],
                    Bound::Preceding(k) => range_offset_end(part, wok, i, -k)?,
                    Bound::Following(k) => range_offset_end(part, wok, i, k)?,
                    Bound::UnboundedPreceding => {
                        return Err(Error::InvalidQuery(
                            "frame end cannot be UNBOUNDED PRECEDING".into(),
                        ))
                    }
                };
                out.push((s.min(n), e.max(s).min(n)));
            }
            Ok(out)
        }
    }
}

fn rows_bound_start(b: Bound, i: usize, n: usize) -> usize {
    match b {
        Bound::UnboundedPreceding => 0,
        Bound::Preceding(k) => i.saturating_sub(k.max(0) as usize),
        Bound::CurrentRow => i,
        Bound::Following(k) => (i + k.max(0) as usize).min(n),
        Bound::UnboundedFollowing => n,
    }
}

fn rows_bound_end(b: Bound, i: usize, n: usize) -> usize {
    match b {
        Bound::UnboundedPreceding => 0,
        Bound::Preceding(k) => (i + 1).saturating_sub(k.max(0) as usize),
        Bound::CurrentRow => i + 1,
        Bound::Following(k) => (i + 1 + k.max(0) as usize).min(n),
        Bound::UnboundedFollowing => n,
    }
}

/// RANGE with a numeric offset needs a single numeric ordering key.
fn range_key(part: &[Row], wok: &SortSpec, i: usize) -> Result<(f64, bool)> {
    range_key_row(wok, &part[i])
}

/// [`range_key`] over a single streamed row: the ascending-normalized
/// numeric key (or the NULL marker), with the materialized path's exact
/// validation and error messages.
fn range_key_row(wok: &SortSpec, row: &Row) -> Result<(f64, bool)> {
    if wok.len() != 1 {
        return Err(Error::InvalidQuery(
            "RANGE with offset requires exactly one ORDER BY key".into(),
        ));
    }
    let e = wok.elems()[0];
    let v = row.get(e.attr);
    if v.is_null() {
        return Ok((0.0, true));
    }
    let f = v.as_f64().ok_or_else(|| {
        Error::InvalidQuery("RANGE with offset requires a numeric ORDER BY key".into())
    })?;
    // Normalize to ascending space.
    Ok((
        if e.dir == wf_common::Direction::Desc {
            -f
        } else {
            f
        },
        false,
    ))
}

/// First index whose key ≥ key(i) + delta (ascending-normalized); NULLs form
/// their own peer region at whichever end the sort placed them.
fn range_offset_start(part: &[Row], wok: &SortSpec, i: usize, delta: i64) -> Result<usize> {
    let (ki, null) = range_key(part, wok, i)?;
    if null {
        // NULL frame = the NULL peer region.
        return null_region(part, wok, i).map(|(s, _)| s);
    }
    let target = ki + delta as f64;
    // Binary search over non-null ascending keys.
    let mut lo = 0usize;
    let mut hi = part.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (km, is_null) = range_key(part, wok, mid)?;
        if is_null {
            // NULLs sit at one end; decide side by comparing to i.
            if mid < i {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        } else if km < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// One past the last index whose key ≤ key(i) + delta.
fn range_offset_end(part: &[Row], wok: &SortSpec, i: usize, delta: i64) -> Result<usize> {
    let (ki, null) = range_key(part, wok, i)?;
    if null {
        return null_region(part, wok, i).map(|(_, e)| e);
    }
    let target = ki + delta as f64;
    let mut lo = 0usize;
    let mut hi = part.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (km, is_null) = range_key(part, wok, mid)?;
        if is_null {
            if mid < i {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        } else if km <= target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// The contiguous run of NULL-key rows containing `i`.
fn null_region(part: &[Row], wok: &SortSpec, i: usize) -> Result<(usize, usize)> {
    let attr = wok.elems()[0].attr;
    let mut s = i;
    while s > 0 && part[s - 1].get(attr).is_null() {
        s -= 1;
    }
    let mut e = i + 1;
    while e < part.len() && part[e].get(attr).is_null() {
        e += 1;
    }
    Ok((s, e))
}

/// Drive an incremental running aggregate over monotone (ROWS-frame) ranges
/// with two pointers: `update(state, row_index, add)` is called exactly once
/// per row entering (`add = true`) and leaving (`add = false`) the sliding
/// window, and the state is snapshotted per frame — O(n) total instead of
/// O(n·frame) recomputation. Degenerate empty frames that jump past the
/// current window restart it.
fn sliding_rows_agg<S: Clone>(
    ranges: &[(usize, usize)],
    init: S,
    mut update: impl FnMut(&mut S, usize, bool),
) -> Vec<S> {
    let mut lo = 0usize;
    let mut hi = 0usize;
    let mut state = init.clone();
    let mut out = Vec::with_capacity(ranges.len());
    for &(s, e) in ranges {
        debug_assert!(s <= e);
        if s >= hi {
            // Disjoint jump: restart the window rather than draining
            // row-by-row through rows the frame never contained.
            lo = s;
            hi = s;
            state = init.clone();
        }
        while hi < e {
            update(&mut state, hi, true);
            hi += 1;
        }
        while lo < s {
            update(&mut state, lo, false);
            lo += 1;
        }
        out.push(state.clone());
    }
    out
}

/// The SQL-default frame `RANGE UNBOUNDED PRECEDING .. CURRENT ROW`
/// evaluated as a **running accumulator**: every frame is `[0, peer_end)`,
/// so one forward pass per partition answers every row — no prefix arrays,
/// no sparse table, no per-frame allocation. Returns `None` for functions
/// the generic frame machinery must handle.
///
/// Outputs are bit-identical to the generic path: integer sums accumulate
/// exactly in `i128`; float sums add the same values in the same order the
/// prefix arrays did.
fn running_default_frame(
    rows: &[Row],
    lo: usize,
    hi: usize,
    wok_cmp: &RowComparator,
    func: &WindowFunction,
    env: &OpEnv,
    peers: &mut PeerResolver<'_>,
) -> Result<Option<Vec<Value>>> {
    use WindowFunction::*;
    if !matches!(func, Count(_) | Sum(_) | Avg(_) | Min(_) | Max(_)) {
        return Ok(None);
    }
    let part = &rows[lo..hi];
    let n = part.len();
    let (_, ge) = peers.peer_bounds(rows, lo, hi, wok_cmp, env);
    let mut out = Vec::with_capacity(n);
    match func {
        Count(col) => {
            let qualifies = |i: usize| -> i64 {
                match col {
                    None => 1,
                    Some(c) => i64::from(!part[i].get(*c).is_null()),
                }
            };
            let mut cnt = 0i64;
            let mut consumed = 0usize;
            for &e in &ge {
                while consumed < e {
                    cnt += qualifies(consumed);
                    consumed += 1;
                }
                out.push(Value::Int(cnt));
            }
        }
        Sum(col) | Avg(col) => {
            // Classify the column once (same rule as the generic path): any
            // float anywhere makes the whole partition float-typed.
            let mut all_int = true;
            for row in part {
                match row.get(*col) {
                    Value::Int(_) | Value::Null => {}
                    Value::Float(_) => all_int = false,
                    other => {
                        return Err(Error::TypeMismatch {
                            expected: "numeric".into(),
                            found: other.type_name().into(),
                        })
                    }
                }
            }
            let want_avg = matches!(func, Avg(_));
            let mut sum_i = 0i128;
            let mut sum_f = 0f64;
            let mut cnt = 0i64;
            let mut consumed = 0usize;
            for &e in &ge {
                while consumed < e {
                    match part[consumed].get(*col) {
                        Value::Int(x) => {
                            sum_i += *x as i128;
                            sum_f += *x as f64;
                            cnt += 1;
                        }
                        Value::Float(x) => {
                            sum_f += *x;
                            cnt += 1;
                        }
                        _ => {}
                    }
                    consumed += 1;
                }
                out.push(if cnt == 0 {
                    Value::Null
                } else if want_avg {
                    if all_int {
                        Value::Float(sum_i as f64 / cnt as f64)
                    } else {
                        Value::Float(sum_f / cnt as f64)
                    }
                } else if all_int {
                    Value::Int(sum_i.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
                } else {
                    Value::Float(sum_f)
                });
            }
        }
        Min(col) | Max(col) => {
            let want_min = matches!(func, Min(_));
            let mut cur: Option<Value> = None;
            let mut consumed = 0usize;
            for &e in &ge {
                while consumed < e {
                    let v = part[consumed].get(*col);
                    if !v.is_null() {
                        match &cur {
                            None => cur = Some(v.clone()),
                            Some(c) => {
                                env.tracker.compare(1);
                                if (want_min && v < c) || (!want_min && v > c) {
                                    cur = Some(v.clone());
                                }
                            }
                        }
                    }
                    consumed += 1;
                }
                out.push(cur.clone().unwrap_or(Value::Null));
            }
        }
        _ => unreachable!("gated above"),
    }
    Ok(Some(out))
}

#[allow(clippy::too_many_arguments)]
fn eval_framed(
    rows: &[Row],
    lo: usize,
    hi: usize,
    wok_cmp: &RowComparator,
    wok: &SortSpec,
    func: &WindowFunction,
    frame: &FrameSpec,
    env: &OpEnv,
    peers: &mut PeerResolver<'_>,
) -> Result<Vec<Value>> {
    // Running-accumulator fast path for the SQL-default frame.
    if frame.units == FrameUnits::Range
        && frame.start == Bound::UnboundedPreceding
        && frame.end == Bound::CurrentRow
    {
        if let Some(vals) = running_default_frame(rows, lo, hi, wok_cmp, func, env, peers)? {
            return Ok(vals);
        }
    }
    let part = &rows[lo..hi];
    let n = part.len();
    let ranges = frame_ranges(rows, lo, hi, wok_cmp, wok, frame, env, peers)?;
    match func {
        WindowFunction::FirstValue(col) => Ok(ranges
            .iter()
            .map(|&(s, e)| {
                if s < e {
                    part[s].get(*col).clone()
                } else {
                    Value::Null
                }
            })
            .collect()),
        WindowFunction::LastValue(col) => Ok(ranges
            .iter()
            .map(|&(s, e)| {
                if s < e {
                    part[e - 1].get(*col).clone()
                } else {
                    Value::Null
                }
            })
            .collect()),
        WindowFunction::NthValue(col, k) => {
            let k = (*k).max(1) as usize;
            Ok(ranges
                .iter()
                .map(|&(s, e)| {
                    let idx = s + k - 1;
                    if idx < e {
                        part[idx].get(*col).clone()
                    } else {
                        Value::Null
                    }
                })
                .collect())
        }
        WindowFunction::Count(col) => {
            let qualifies = |i: usize| -> i64 {
                match col {
                    None => 1,
                    Some(c) => i64::from(!part[i].get(*c).is_null()),
                }
            };
            if frame.units == FrameUnits::Rows {
                // Incremental two-pointer count: ROWS-frame bounds are
                // monotone in the row index, so the window slides — each
                // row is added and removed exactly once, O(n) total with no
                // prefix array.
                return Ok(sliding_rows_agg(&ranges, 0i64, |cnt, i, add| {
                    if add {
                        *cnt += qualifies(i);
                    } else {
                        *cnt -= qualifies(i);
                    }
                })
                .into_iter()
                .map(Value::Int)
                .collect());
            }
            // RANGE bounds come from peer groups / binary searches; answer
            // from prefix counts instead.
            let mut prefix = vec![0i64; n + 1];
            for i in 0..n {
                prefix[i + 1] = prefix[i] + qualifies(i);
            }
            Ok(ranges
                .iter()
                .map(|&(s, e)| Value::Int(prefix[e] - prefix[s]))
                .collect())
        }
        WindowFunction::Sum(col) | WindowFunction::Avg(col) => {
            // Classify the column once: integer columns take the exact
            // incremental path; any float falls back to prefix sums (see
            // below).
            let mut all_int = true;
            for row in part {
                match row.get(*col) {
                    Value::Int(_) | Value::Null => {}
                    Value::Float(_) => all_int = false,
                    other => {
                        return Err(Error::TypeMismatch {
                            expected: "numeric".into(),
                            found: other.type_name().into(),
                        })
                    }
                }
            }
            let want_avg = matches!(func, WindowFunction::Avg(_));
            let finish = |sum: i128, cnt: i64| -> Value {
                if cnt == 0 {
                    Value::Null
                } else if want_avg {
                    Value::Float(sum as f64 / cnt as f64)
                } else {
                    // The i128 accumulator cannot overflow, but the i64
                    // result type can; saturate rather than wrap.
                    Value::Int(sum.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
                }
            };
            if all_int && frame.units == FrameUnits::Rows {
                // Incremental two-pointer running aggregate with *exact*
                // integer accumulation (i128 — the frame-internal running
                // sum cannot overflow): each row enters and leaves the
                // running sum once, O(n) total and no f64 rounding on the
                // int path.
                let val = |i: usize| -> Option<i64> { part[i].get(*col).as_int() };
                return Ok(
                    sliding_rows_agg(&ranges, (0i128, 0i64), |(sum, cnt), i, add| {
                        if let Some(x) = val(i) {
                            if add {
                                *sum += x as i128;
                                *cnt += 1;
                            } else {
                                *sum -= x as i128;
                                *cnt -= 1;
                            }
                        }
                    })
                    .into_iter()
                    .map(|(sum, cnt)| finish(sum, cnt))
                    .collect(),
                );
            }
            if all_int {
                // RANGE over an integer column: exact i128 prefix sums.
                let mut pref_sum = vec![0i128; n + 1];
                let mut pref_cnt = vec![0i64; n + 1];
                for i in 0..n {
                    let (add, cnt) = match part[i].get(*col).as_int() {
                        Some(x) => (x as i128, 1),
                        None => (0, 0),
                    };
                    pref_sum[i + 1] = pref_sum[i] + add;
                    pref_cnt[i + 1] = pref_cnt[i] + cnt;
                }
                return Ok(ranges
                    .iter()
                    .map(|&(s, e)| finish(pref_sum[e] - pref_sum[s], pref_cnt[e] - pref_cnt[s]))
                    .collect());
            }
            // Numeric-safety fallback for floats: incremental add/remove
            // drifts under cancellation, so float frames are answered from
            // prefix sums (two reads per frame, no row revisits).
            let mut pref_sum = vec![0f64; n + 1];
            let mut pref_cnt = vec![0i64; n + 1];
            for i in 0..n {
                let (add, cnt) = match part[i].get(*col) {
                    Value::Int(x) => (*x as f64, 1),
                    Value::Float(x) => (*x, 1),
                    Value::Null => (0.0, 0),
                    _ => unreachable!("non-numeric rejected above"),
                };
                pref_sum[i + 1] = pref_sum[i] + add;
                pref_cnt[i + 1] = pref_cnt[i] + cnt;
            }
            Ok(ranges
                .iter()
                .map(|&(s, e)| {
                    let cnt = pref_cnt[e] - pref_cnt[s];
                    if cnt == 0 {
                        return Value::Null;
                    }
                    let sum = pref_sum[e] - pref_sum[s];
                    if want_avg {
                        Value::Float(sum / cnt as f64)
                    } else {
                        Value::Float(sum)
                    }
                })
                .collect())
        }
        WindowFunction::VarPop(col)
        | WindowFunction::VarSamp(col)
        | WindowFunction::StddevPop(col)
        | WindowFunction::StddevSamp(col) => {
            // Prefix sums of x and x² give every frame's variance in O(1).
            let mut pref_sum = vec![0f64; n + 1];
            let mut pref_sq = vec![0f64; n + 1];
            let mut pref_cnt = vec![0i64; n + 1];
            for i in 0..n {
                let v = part[i].get(*col);
                let (x, cnt) = match v {
                    Value::Int(x) => (*x as f64, 1),
                    Value::Float(x) => (*x, 1),
                    Value::Null => (0.0, 0),
                    other => {
                        return Err(Error::TypeMismatch {
                            expected: "numeric".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                pref_sum[i + 1] = pref_sum[i] + x;
                pref_sq[i + 1] = pref_sq[i] + x * x;
                pref_cnt[i + 1] = pref_cnt[i] + cnt;
            }
            let sample = matches!(
                func,
                WindowFunction::VarSamp(_) | WindowFunction::StddevSamp(_)
            );
            let sqrt = matches!(
                func,
                WindowFunction::StddevPop(_) | WindowFunction::StddevSamp(_)
            );
            Ok(ranges
                .iter()
                .map(|&(s, e)| {
                    let cnt = (pref_cnt[e] - pref_cnt[s]) as f64;
                    let min_n = if sample { 2.0 } else { 1.0 };
                    if cnt < min_n {
                        return Value::Null;
                    }
                    let sum = pref_sum[e] - pref_sum[s];
                    let sq = pref_sq[e] - pref_sq[s];
                    // Numerically clamped: catastrophic cancellation can
                    // produce tiny negatives for constant frames.
                    let ssd = (sq - sum * sum / cnt).max(0.0);
                    let var = ssd / if sample { cnt - 1.0 } else { cnt };
                    Value::Float(if sqrt { var.sqrt() } else { var })
                })
                .collect())
        }
        WindowFunction::Min(col) | WindowFunction::Max(col) => {
            let want_min = matches!(func, WindowFunction::Min(_));
            let table = SparseExtrema::build(part, *col, want_min, env);
            Ok(ranges.iter().map(|&(s, e)| table.query(s, e)).collect())
        }
        other => Err(Error::Execution(format!(
            "{other:?} is not a framed function"
        ))),
    }
}

/// Sparse table for O(1) min/max over arbitrary frames, skipping NULLs.
struct SparseExtrema {
    levels: Vec<Vec<Value>>, // levels[j][i] = extremum of [i, i + 2^j)
    want_min: bool,
}

impl SparseExtrema {
    fn build(part: &[Row], col: AttrId, want_min: bool, env: &OpEnv) -> Self {
        let n = part.len();
        let base: Vec<Value> = part.iter().map(|r| r.get(col).clone()).collect();
        let mut levels = vec![base];
        let mut width = 1usize;
        while width * 2 <= n {
            let prev = levels.last().expect("at least base level");
            let mut next = Vec::with_capacity(n - width * 2 + 1);
            for i in 0..=(n - width * 2) {
                env.tracker.compare(1);
                next.push(Self::pick(&prev[i], &prev[i + width], want_min));
            }
            levels.push(next);
            width *= 2;
        }
        SparseExtrema { levels, want_min }
    }

    fn pick(a: &Value, b: &Value, want_min: bool) -> Value {
        match (a.is_null(), b.is_null()) {
            (true, true) => Value::Null,
            (true, false) => b.clone(),
            (false, true) => a.clone(),
            (false, false) => {
                let a_wins = if want_min { a <= b } else { a >= b };
                if a_wins {
                    a.clone()
                } else {
                    b.clone()
                }
            }
        }
    }

    fn query(&self, s: usize, e: usize) -> Value {
        if s >= e {
            return Value::Null;
        }
        let len = e - s;
        let j = (usize::BITS - 1 - len.leading_zeros()) as usize; // floor(log2)
        let left = &self.levels[j][s];
        let right = &self.levels[j][e - (1 << j)];
        Self::pick(left, right, self.want_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, OrdElem};

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }
    fn aset(ids: &[usize]) -> AttrSet {
        AttrSet::from_iter(ids.iter().map(|&i| a(i)))
    }
    fn spec(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
    }

    fn run(
        rows: Vec<Row>,
        wpk: &[usize],
        wok: &SortSpec,
        func: WindowFunction,
        frame: Option<FrameSpec>,
    ) -> Vec<Value> {
        let env = OpEnv::with_memory_blocks(64);
        let out = evaluate_window(
            SegmentedRows::single_segment(rows),
            &aset(wpk),
            wok,
            &func,
            frame,
            &env,
        )
        .unwrap();
        let last = out.rows()[0].arity() - 1;
        out.rows().iter().map(|r| r.get(a(last)).clone()).collect()
    }

    /// The paper's Example 1: rank over salary desc nulls last, global.
    #[test]
    fn example1_globalrank() {
        // (empnum, salary); sorted by salary desc nulls last already.
        let rows = vec![
            row![1, 84000],
            row![6, 79000],
            row![4, 78000],
            row![5, 75000],
            row![10, 75000],
            row![8, 55000],
            row![9, 53000],
            row![7, 51000],
            row![3, Value::Null],
            row![2, Value::Null],
        ];
        let wok = SortSpec::new(vec![OrdElem::desc(a(1))]);
        let vals = run(rows, &[], &wok, WindowFunction::Rank, None);
        let got: Vec<i64> = vals.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3, 4, 4, 6, 7, 8, 9, 9]);
    }

    #[test]
    fn rank_within_partitions() {
        // (dept, salary) grouped by dept, each sorted desc.
        let rows = vec![
            row![1, 78000],
            row![1, 75000],
            row![1, 53000],
            row![2, 51000],
            row![2, Value::Null],
        ];
        let wok = SortSpec::new(vec![OrdElem::desc(a(1))]);
        let vals = run(rows, &[0], &wok, WindowFunction::Rank, None);
        let got: Vec<i64> = vals.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3, 1, 2]);
    }

    #[test]
    fn row_number_and_dense_rank() {
        let rows = vec![row![1, 5], row![1, 5], row![1, 7], row![2, 1]];
        let wok = spec(&[1]);
        let rn: Vec<i64> = run(rows.clone(), &[0], &wok, WindowFunction::RowNumber, None)
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(rn, vec![1, 2, 3, 1]);
        let dr: Vec<i64> = run(rows, &[0], &wok, WindowFunction::DenseRank, None)
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(dr, vec![1, 1, 2, 1]);
    }

    #[test]
    fn percent_rank_and_cume_dist() {
        let rows = vec![row![10], row![20], row![20], row![30]];
        let wok = spec(&[0]);
        let pr: Vec<f64> = run(rows.clone(), &[], &wok, WindowFunction::PercentRank, None)
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(pr, vec![0.0, 1.0 / 3.0, 1.0 / 3.0, 1.0]);
        let cd: Vec<f64> = run(rows, &[], &wok, WindowFunction::CumeDist, None)
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(cd, vec![0.25, 0.75, 0.75, 1.0]);
    }

    #[test]
    fn ntile_spreads_remainder() {
        let rows: Vec<Row> = (0..7).map(|i| row![i as i64]).collect();
        let tiles: Vec<i64> = run(rows, &[], &spec(&[0]), WindowFunction::Ntile(3), None)
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(tiles, vec![1, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn lag_lead_with_defaults() {
        let rows: Vec<Row> = (1..=4).map(|i| row![i as i64]).collect();
        let lag = run(
            rows.clone(),
            &[],
            &spec(&[0]),
            WindowFunction::Lag {
                col: a(0),
                offset: 1,
                default: Some(Value::Int(-1)),
            },
            None,
        );
        assert_eq!(
            lag,
            vec![Value::Int(-1), Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        let lead = run(
            rows,
            &[],
            &spec(&[0]),
            WindowFunction::Lead {
                col: a(0),
                offset: 2,
                default: None,
            },
            None,
        );
        assert_eq!(
            lead,
            vec![Value::Int(3), Value::Int(4), Value::Null, Value::Null]
        );
    }

    #[test]
    fn running_sum_default_frame_respects_peers() {
        // Default RANGE frame: peers included in the running sum.
        let rows = vec![row![1, 10], row![1, 20], row![2, 5]];
        let wok = spec(&[0]);
        let sums = run(rows, &[], &wok, WindowFunction::Sum(a(1)), None);
        // Rows 1 and 2 are peers on key=1 → both see 30.
        assert_eq!(sums, vec![Value::Int(30), Value::Int(30), Value::Int(35)]);
    }

    #[test]
    fn rows_frame_moving_average() {
        let rows: Vec<Row> = [1, 2, 3, 4, 5].iter().map(|&i| row![i as i64]).collect();
        let frame = FrameSpec {
            units: FrameUnits::Rows,
            start: Bound::Preceding(1),
            end: Bound::CurrentRow,
        };
        let avgs: Vec<f64> = run(
            rows,
            &[],
            &spec(&[0]),
            WindowFunction::Avg(a(0)),
            Some(frame),
        )
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
        assert_eq!(avgs, vec![1.0, 1.5, 2.5, 3.5, 4.5]);
    }

    #[test]
    fn rows_frame_centered_window_count() {
        let rows: Vec<Row> = (0..5).map(|i| row![i as i64]).collect();
        let frame = FrameSpec {
            units: FrameUnits::Rows,
            start: Bound::Preceding(1),
            end: Bound::Following(1),
        };
        let counts: Vec<i64> = run(
            rows,
            &[],
            &spec(&[0]),
            WindowFunction::Count(None),
            Some(frame),
        )
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
        assert_eq!(counts, vec![2, 3, 3, 3, 2]);
    }

    #[test]
    fn range_numeric_offset_frame() {
        // Keys 1,2,4,7: RANGE BETWEEN 2 PRECEDING AND CURRENT ROW.
        let rows = vec![row![1], row![2], row![4], row![7]];
        let frame = FrameSpec {
            units: FrameUnits::Range,
            start: Bound::Preceding(2),
            end: Bound::CurrentRow,
        };
        let counts: Vec<i64> = run(
            rows,
            &[],
            &spec(&[0]),
            WindowFunction::Count(None),
            Some(frame),
        )
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
        assert_eq!(counts, vec![1, 2, 2, 1]);
    }

    #[test]
    fn min_max_over_frames_with_nulls() {
        let rows = vec![row![Value::Null], row![3], row![1], row![2]];
        let frame = FrameSpec {
            units: FrameUnits::Rows,
            start: Bound::UnboundedPreceding,
            end: Bound::CurrentRow,
        };
        // Input deliberately unordered on the value column; ROWS frames.
        let mins = run(
            rows.clone(),
            &[],
            &SortSpec::empty(),
            WindowFunction::Min(a(0)),
            Some(frame),
        );
        assert_eq!(
            mins,
            vec![Value::Null, Value::Int(3), Value::Int(1), Value::Int(1)]
        );
        let maxs = run(
            rows,
            &[],
            &SortSpec::empty(),
            WindowFunction::Max(a(0)),
            Some(frame),
        );
        assert_eq!(
            maxs,
            vec![Value::Null, Value::Int(3), Value::Int(3), Value::Int(3)]
        );
    }

    #[test]
    fn first_last_nth_value() {
        let rows = vec![row![10], row![20], row![30]];
        let whole = FrameSpec::whole_partition();
        assert_eq!(
            run(
                rows.clone(),
                &[],
                &spec(&[0]),
                WindowFunction::FirstValue(a(0)),
                Some(whole)
            ),
            vec![Value::Int(10); 3]
        );
        assert_eq!(
            run(
                rows.clone(),
                &[],
                &spec(&[0]),
                WindowFunction::LastValue(a(0)),
                Some(whole)
            ),
            vec![Value::Int(30); 3]
        );
        assert_eq!(
            run(
                rows.clone(),
                &[],
                &spec(&[0]),
                WindowFunction::NthValue(a(0), 2),
                Some(whole)
            ),
            vec![Value::Int(20); 3]
        );
        assert_eq!(
            run(
                rows,
                &[],
                &spec(&[0]),
                WindowFunction::NthValue(a(0), 9),
                Some(whole)
            ),
            vec![Value::Null; 3]
        );
    }

    #[test]
    fn sum_skips_nulls_and_empty_frame_is_null() {
        let rows = vec![row![Value::Null], row![Value::Null]];
        let sums = run(rows, &[], &spec(&[0]), WindowFunction::Sum(a(0)), None);
        assert_eq!(sums, vec![Value::Null, Value::Null]);
    }

    #[test]
    fn segment_boundary_forces_partition_break() {
        // Same WPK value in two different segments must be two partitions
        // (segments are disjoint on X ⊆ WPK, so this cannot happen for valid
        // inputs, but the operator must not rely on it).
        let env = OpEnv::with_memory_blocks(8);
        let segs = SegmentedRows::from_parts(vec![row![1, 1], row![1, 2]], vec![0, 1]);
        let out = evaluate_window(
            segs,
            &aset(&[0]),
            &spec(&[1]),
            &WindowFunction::RowNumber,
            None,
            &env,
        )
        .unwrap();
        let rn: Vec<i64> = out
            .rows()
            .iter()
            .map(|r| r.get(a(2)).as_int().unwrap())
            .collect();
        assert_eq!(rn, vec![1, 1]);
    }

    #[test]
    fn empty_input_ok() {
        let env = OpEnv::with_memory_blocks(8);
        let out = evaluate_window(
            SegmentedRows::empty(),
            &aset(&[0]),
            &spec(&[1]),
            &WindowFunction::Rank,
            None,
            &env,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn variance_and_stddev() {
        let rows = vec![
            row![2],
            row![4],
            row![4],
            row![4],
            row![5],
            row![5],
            row![7],
            row![9],
        ];
        let whole = FrameSpec::whole_partition();
        let vp = run(
            rows.clone(),
            &[],
            &SortSpec::empty(),
            WindowFunction::VarPop(a(0)),
            Some(whole),
        );
        assert_eq!(vp[0], Value::Float(4.0));
        let sp = run(
            rows.clone(),
            &[],
            &SortSpec::empty(),
            WindowFunction::StddevPop(a(0)),
            Some(whole),
        );
        assert_eq!(sp[0], Value::Float(2.0));
        let vs = run(
            rows.clone(),
            &[],
            &SortSpec::empty(),
            WindowFunction::VarSamp(a(0)),
            Some(whole),
        );
        let v = vs[0].as_f64().unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
        // Sample variance of a single row is NULL.
        let single = run(
            vec![row![3]],
            &[],
            &SortSpec::empty(),
            WindowFunction::VarSamp(a(0)),
            Some(whole),
        );
        assert_eq!(single, vec![Value::Null]);
        // Population variance of a constant frame is exactly zero.
        let consts = run(
            vec![row![5], row![5], row![5]],
            &[],
            &SortSpec::empty(),
            WindowFunction::VarPop(a(0)),
            Some(whole),
        );
        assert!(consts.iter().all(|v| v == &Value::Float(0.0)));
    }

    #[test]
    fn variance_skips_nulls() {
        let rows = vec![row![Value::Null], row![2], row![4]];
        let whole = FrameSpec::whole_partition();
        let vp = run(
            rows,
            &[],
            &SortSpec::empty(),
            WindowFunction::VarPop(a(0)),
            Some(whole),
        );
        assert_eq!(vp[0], Value::Float(1.0));
    }

    #[test]
    fn sliding_stddev_over_rows_frame() {
        let rows: Vec<Row> = [1i64, 2, 3, 4].iter().map(|&v| row![v]).collect();
        let frame = FrameSpec {
            units: FrameUnits::Rows,
            start: Bound::Preceding(1),
            end: Bound::CurrentRow,
        };
        let sd = run(
            rows,
            &[],
            &spec(&[0]),
            WindowFunction::StddevPop(a(0)),
            Some(frame),
        );
        assert_eq!(sd[0], Value::Float(0.0));
        assert_eq!(sd[1], Value::Float(0.5));
        assert_eq!(sd[2], Value::Float(0.5));
    }

    #[test]
    fn range_offset_with_descending_key() {
        // Keys 9,7,4,1 descending; RANGE BETWEEN 2 PRECEDING AND CURRENT
        // ROW counts rows whose key is within 2 *above* the current one.
        let rows = vec![row![9], row![7], row![4], row![1]];
        let wok = SortSpec::new(vec![OrdElem::desc(a(0))]);
        let frame = FrameSpec {
            units: FrameUnits::Range,
            start: Bound::Preceding(2),
            end: Bound::CurrentRow,
        };
        let counts: Vec<i64> = run(rows, &[], &wok, WindowFunction::Count(None), Some(frame))
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(counts, vec![1, 2, 1, 1]);
    }

    #[test]
    fn range_offset_null_rows_form_their_own_frame() {
        // NULLS LAST ascending: the two NULL rows see only each other.
        let rows = vec![row![1], row![2], row![Value::Null], row![Value::Null]];
        let frame = FrameSpec {
            units: FrameUnits::Range,
            start: Bound::Preceding(10),
            end: Bound::CurrentRow,
        };
        let counts: Vec<i64> = run(
            rows,
            &[],
            &spec(&[0]),
            WindowFunction::Count(None),
            Some(frame),
        )
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
        assert_eq!(counts, vec![1, 2, 2, 2]);
    }

    #[test]
    fn range_offset_requires_single_numeric_key() {
        let rows = vec![row![1, 2], row![2, 3]];
        let frame = FrameSpec {
            units: FrameUnits::Range,
            start: Bound::Preceding(1),
            end: Bound::CurrentRow,
        };
        let env = OpEnv::with_memory_blocks(8);
        // Two ORDER BY keys → error.
        let r = evaluate_window(
            SegmentedRows::single_segment(rows.clone()),
            &aset(&[]),
            &spec(&[0, 1]),
            &WindowFunction::Sum(a(0)),
            Some(frame),
            &env,
        );
        assert!(r.is_err());
        // String key → error.
        let srows = vec![row!["x"], row!["y"]];
        let r2 = evaluate_window(
            SegmentedRows::single_segment(srows),
            &aset(&[]),
            &spec(&[0]),
            &WindowFunction::Sum(a(0)),
            Some(frame),
            &env,
        );
        assert!(r2.is_err());
    }

    #[test]
    fn ntile_more_tiles_than_rows() {
        let rows: Vec<Row> = (0..3).map(|i| row![i as i64]).collect();
        let tiles: Vec<i64> = run(rows, &[], &spec(&[0]), WindowFunction::Ntile(10), None)
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(tiles, vec![1, 2, 3]);
    }

    #[test]
    fn empty_rows_frame_yields_null_aggregates() {
        // ROWS BETWEEN 3 FOLLOWING AND 2 FOLLOWING is empty for every row.
        let rows: Vec<Row> = (0..4).map(|i| row![i as i64]).collect();
        let frame = FrameSpec {
            units: FrameUnits::Rows,
            start: Bound::Following(3),
            end: Bound::Following(2),
        };
        let sums = run(
            rows,
            &[],
            &spec(&[0]),
            WindowFunction::Sum(a(0)),
            Some(frame),
        );
        assert!(sums.iter().all(|v| v.is_null()));
    }

    /// The running-accumulator fast path for the SQL-default frame must
    /// match a brute-force per-row aggregation over `[0, peer_end)` —
    /// including the i64 clamp on huge integer sums, NULL skipping, float
    /// partitions and value-function tie handling. This is the pin against
    /// the generic prefix-array policy drifting from the fast path.
    #[test]
    fn running_default_frame_matches_brute_force() {
        // (key, value): peers on key; values mix ints (incl. near-overflow),
        // floats and NULLs across separate partitions per type class.
        let int_rows = vec![
            row![1, 5],
            row![1, Value::Null],
            row![2, i64::MAX - 1],
            row![2, i64::MAX - 2],
            row![3, -7],
        ];
        let float_rows = vec![
            row![1, 0.25],
            row![1, -0.25],
            row![2, Value::Null],
            row![2, 3.5],
            row![3, 0.125],
        ];
        let wok = spec(&[0]);
        let cmp = RowComparator::new(&wok);
        let peer_end = |rows: &[Row], i: usize| {
            let mut e = i + 1;
            while e < rows.len() && cmp.equal(&rows[e - 1], &rows[e]) {
                e += 1;
            }
            let mut s = i;
            while s > 0 && cmp.equal(&rows[s - 1], &rows[s]) {
                s -= 1;
            }
            let mut e2 = s + 1;
            while e2 < rows.len() && cmp.equal(&rows[e2 - 1], &rows[e2]) {
                e2 += 1;
            }
            e.max(e2)
        };
        for rows in [int_rows, float_rows] {
            // Brute force: aggregate part[0..peer_end) per row.
            let frame_vals = |i: usize| -> Vec<&Value> {
                (0..peer_end(&rows, i))
                    .map(|j| rows[j].get(a(1)))
                    .filter(|v| !v.is_null())
                    .collect()
            };
            let expect_sum: Vec<Value> = (0..rows.len())
                .map(|i| {
                    let vals = frame_vals(i);
                    if vals.is_empty() {
                        return Value::Null;
                    }
                    if vals.iter().all(|v| v.as_int().is_some()) {
                        let s: i128 = vals.iter().map(|v| v.as_int().unwrap() as i128).sum();
                        Value::Int(s.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
                    } else {
                        Value::Float(vals.iter().map(|v| v.as_f64().unwrap()).sum())
                    }
                })
                .collect();
            let got_sum = run(rows.clone(), &[], &wok, WindowFunction::Sum(a(1)), None);
            assert_eq!(got_sum, expect_sum, "sum over {rows:?}");

            let expect_cnt: Vec<Value> = (0..rows.len())
                .map(|i| Value::Int(frame_vals(i).len() as i64))
                .collect();
            let got_cnt = run(
                rows.clone(),
                &[],
                &wok,
                WindowFunction::Count(Some(a(1))),
                None,
            );
            assert_eq!(got_cnt, expect_cnt, "count over {rows:?}");

            let expect_min: Vec<Value> = (0..rows.len())
                .map(|i| {
                    frame_vals(i)
                        .into_iter()
                        .min()
                        .cloned()
                        .unwrap_or(Value::Null)
                })
                .collect();
            let got_min = run(rows.clone(), &[], &wok, WindowFunction::Min(a(1)), None);
            assert_eq!(got_min, expect_min, "min over {rows:?}");

            let expect_max: Vec<Value> = (0..rows.len())
                .map(|i| {
                    frame_vals(i)
                        .into_iter()
                        .max()
                        .cloned()
                        .unwrap_or(Value::Null)
                })
                .collect();
            let got_max = run(rows.clone(), &[], &wok, WindowFunction::Max(a(1)), None);
            assert_eq!(got_max, expect_max, "max over {rows:?}");
        }
    }

    /// The fast path clamps an overflowing running integer sum exactly like
    /// the generic path: saturate at the i64 boundary, never wrap.
    #[test]
    fn running_default_frame_sum_saturates() {
        let rows = vec![row![1, i64::MAX], row![2, i64::MAX], row![3, 1]];
        let sums = run(rows, &[], &spec(&[0]), WindowFunction::Sum(a(1)), None);
        assert_eq!(sums[1], Value::Int(i64::MAX));
        assert_eq!(sums[2], Value::Int(i64::MAX));
    }

    /// The dispatch table: which (function, frame) pairs stream one-pass,
    /// which ring-buffer, and which fall back to buffering a partition.
    #[test]
    fn streamable_eval_classification() {
        use StreamableEval::*;
        let default = FrameSpec::default_for(true);
        let whole = FrameSpec::whole_partition();
        let sliding = FrameSpec {
            units: FrameUnits::Rows,
            start: Bound::Preceding(2),
            end: Bound::CurrentRow,
        };
        let rows_unbounded = FrameSpec {
            units: FrameUnits::Rows,
            start: Bound::UnboundedPreceding,
            end: Bound::CurrentRow,
        };
        let range_offset = FrameSpec {
            units: FrameUnits::Range,
            start: Bound::Preceding(2),
            end: Bound::CurrentRow,
        };
        let range_window = FrameSpec {
            units: FrameUnits::Range,
            start: Bound::Preceding(2),
            end: Bound::Following(2),
        };
        let cases = [
            // SQL-default-frame aggregates: the Shi & Wang one-pass.
            (WindowFunction::Sum(AttrId::new(0)), default, OnePass),
            (WindowFunction::Count(None), default, OnePass),
            // ntile stages one pass through the store.
            (WindowFunction::Ntile(4), default, OnePass),
            // Ranking and navigation stream with ring/rank state.
            (WindowFunction::RowNumber, default, Ring),
            (WindowFunction::Rank, default, Ring),
            (WindowFunction::DenseRank, whole, Ring),
            (
                WindowFunction::Lag {
                    col: AttrId::new(0),
                    offset: 3,
                    default: None,
                },
                default,
                Ring,
            ),
            // Bounded-ROWS frame readers ring; other frames buffer.
            (WindowFunction::Sum(AttrId::new(0)), sliding, Ring),
            (WindowFunction::Min(AttrId::new(0)), sliding, Ring),
            (WindowFunction::FirstValue(AttrId::new(0)), sliding, Ring),
            (WindowFunction::NthValue(AttrId::new(0), 2), sliding, Ring),
            (
                WindowFunction::Sum(AttrId::new(0)),
                rows_unbounded,
                Buffered,
            ),
            // A CURRENT ROW bound makes the RANGE frame peer-anchored:
            // that still buffers. Pure-offset RANGE rings for the sliding
            // aggregates, but not for positional readers or variance.
            (WindowFunction::Sum(AttrId::new(0)), range_offset, Buffered),
            (WindowFunction::Sum(AttrId::new(0)), range_window, Ring),
            (WindowFunction::Min(AttrId::new(0)), range_window, Ring),
            (WindowFunction::Count(None), range_window, Ring),
            (
                WindowFunction::FirstValue(AttrId::new(0)),
                range_window,
                Buffered,
            ),
            (
                WindowFunction::VarPop(AttrId::new(0)),
                range_window,
                Buffered,
            ),
            (WindowFunction::LastValue(AttrId::new(0)), whole, Buffered),
            // Distribution functions stage one pass through the store
            // (staged replay: partition cardinality first); the variance
            // family rings over bounded ROWS frames like sum/avg.
            (WindowFunction::PercentRank, default, OnePass),
            (WindowFunction::CumeDist, default, OnePass),
            (WindowFunction::PercentRank, whole, OnePass),
            (WindowFunction::VarPop(AttrId::new(0)), sliding, Ring),
            (WindowFunction::StddevSamp(AttrId::new(0)), sliding, Ring),
            (
                WindowFunction::VarSamp(AttrId::new(0)),
                rows_unbounded,
                Buffered,
            ),
        ];
        for (func, frame, expect) in cases {
            assert_eq!(
                StreamableEval::classify(&func, &frame),
                expect,
                "{func:?} over {frame:?}"
            );
        }
        // Mixed-call chains are governed by the weakest member.
        assert_eq!(StreamableEval::weakest([OnePass, Ring, Buffered]), Buffered);
        assert_eq!(StreamableEval::weakest([OnePass, Ring]), Ring);
        assert_eq!(StreamableEval::weakest([]), OnePass);
    }

    #[test]
    fn result_type_mapping() {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Float)]);
        assert_eq!(WindowFunction::Rank.result_type(&schema), DataType::Int);
        assert_eq!(
            WindowFunction::Avg(a(1)).result_type(&schema),
            DataType::Float
        );
        assert_eq!(
            WindowFunction::Min(a(1)).result_type(&schema),
            DataType::Float
        );
        assert_eq!(
            WindowFunction::CumeDist.result_type(&schema),
            DataType::Float
        );
        assert_eq!(
            WindowFunction::Lag {
                col: a(0),
                offset: 1,
                default: None
            }
            .result_type(&schema),
            DataType::Int
        );
    }
}
