//! Parallel window evaluation (paper §3.5).
//!
//! A window function over `(WPK, WOK)` parallelizes by hash-partitioning the
//! input on (a subset of) `WPK`: every window partition lands wholly inside
//! one data partition, so each worker can reorder and evaluate
//! independently. Every worker runs against its own environment — a fresh
//! tracker and a **ledger sub-account** of the chain's segment store (one
//! unit reorder memory each) — so worker-local spill decisions never depend
//! on sibling timing. When the workers finish, their trackers are absorbed
//! into the caller's **in worker order** and their residency high-water
//! marks folded into the chain store
//! ([`wf_storage::SegmentStore::absorb_concurrent`]), which makes the
//! helper's counters deterministic across thread interleavings. Outputs are
//! concatenated with their segment boundaries preserved — the result is a
//! valid segmented relation because data partitions are disjoint on the
//! partitioning attributes.
//!
//! This is the batch-shaped §3.5 helper; planned chains use the
//! [`crate::scheduler`] subsystem, whose ordered merge additionally
//! restores the serial row order.

use crate::env::OpEnv;
use crate::operator::{drain, Operator, Segment, SegmentSource};
use crate::segment::SegmentedRows;
use crate::util::hash_row_on;
use wf_common::{AttrSet, Error, Result};

/// Hash-partition `input` on `attrs` into `workers` parts, run `work` on
/// each part concurrently, and concatenate the results in worker order.
///
/// `work` receives `(worker_index, part, worker_env)` and must be `Sync` —
/// it is shared across threads; per-call state belongs inside the closure.
/// The worker environment is a sub-account of `env` with the same unit
/// reorder memory (each worker models one unit, following §3.5).
pub fn parallel_partitioned<F>(
    input: SegmentedRows,
    attrs: &AttrSet,
    workers: usize,
    env: &OpEnv,
    work: F,
) -> Result<SegmentedRows>
where
    F: Fn(usize, SegmentedRows, &OpEnv) -> Result<SegmentedRows> + Sync,
{
    if attrs.is_empty() {
        return Err(Error::Execution(
            "parallel evaluation requires a non-empty partitioning key".into(),
        ));
    }
    let workers = workers.max(1);
    if workers == 1 {
        return work(0, input, env);
    }

    // Scatter rows by hash; each partition becomes one unordered segment.
    env.store.begin_concurrent_phase();
    let mut parts: Vec<Vec<wf_common::Row>> = (0..workers).map(|_| Vec::new()).collect();
    for row in input.into_rows() {
        env.tracker.hash(1);
        let idx = (hash_row_on(&row, attrs) % workers as u64) as usize;
        parts[idx].push(row);
    }

    // Run the partitions over the worker-thread pool, each in its own
    // environment. The thread count honors the environment's override
    // ([`crate::scheduler::resolve_threads`]) with the scheduler's fixed
    // partition→thread assignment (thread `t` takes partitions
    // `t, t + threads, …`), so `WF_WORKERS=1` really executes this helper
    // serially — per-partition results and counters are invariant either
    // way.
    let envs: Vec<OpEnv> = (0..workers)
        .map(|_| env.shard_env(env.mem_blocks))
        .collect();
    let threads = crate::scheduler::resolve_threads(env, workers, workers);
    let jobs: Vec<(usize, Vec<wf_common::Row>)> = parts.into_iter().enumerate().collect();
    let envs_ref = &envs;
    let results = crate::scheduler::run_sharded(workers, threads, jobs, |i, rows| {
        work(i, SegmentedRows::single_segment(rows), &envs_ref[i])
    });

    // Deterministic reassembly: absorb worker trackers and residency peaks
    // in worker order before surfacing any worker error (worker outputs
    // are plain rows, so the sub-account peaks are already final here).
    crate::scheduler::absorb_worker_trackers(env, &envs);
    crate::scheduler::absorb_worker_stores(env, &envs);
    let mut outputs = Vec::with_capacity(workers);
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Some(r) => outputs.push(r?),
            None => {
                return Err(Error::Execution(format!(
                    "a parallel worker thread panicked (partition {i} unaccounted)"
                )))
            }
        }
    }
    Ok(SegmentedRows::concat(outputs))
}

/// Parallel evaluation as a pipeline stage: on the first pull it drains its
/// input, hash-scatters the rows on `attrs`, runs `work` on every partition
/// concurrently (each worker typically builds its own reorder → window
/// operator chain against the worker environment it is handed), and then
/// yields the stitched worker outputs **one segment at a time** in worker
/// order.
pub struct ParallelOp<I, F> {
    input: Option<I>,
    attrs: AttrSet,
    workers: usize,
    env: OpEnv,
    work: F,
    output: Option<SegmentSource>,
}

impl<I, F> ParallelOp<I, F>
where
    I: Operator,
    F: Fn(usize, SegmentedRows, &OpEnv) -> Result<SegmentedRows> + Sync,
{
    /// Partition on `attrs` into `workers` parts and run `work` on each.
    pub fn new(input: I, attrs: AttrSet, workers: usize, env: OpEnv, work: F) -> Self {
        ParallelOp {
            input: Some(input),
            attrs,
            workers,
            env,
            work,
            output: None,
        }
    }
}

impl<I, F> Operator for ParallelOp<I, F>
where
    I: Operator,
    F: Fn(usize, SegmentedRows, &OpEnv) -> Result<SegmentedRows> + Sync,
{
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        if let Some(mut input) = self.input.take() {
            let gathered = drain(&mut input)?;
            let out =
                parallel_partitioned(gathered, &self.attrs, self.workers, &self.env, &self.work)?;
            self.output = Some(SegmentSource::new(out));
        }
        match &mut self.output {
            Some(src) => src.next_segment(),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_sort::full_sort;
    use crate::window::{evaluate_window, WindowFunction};
    use wf_common::{row, AttrId, OrdElem, Row, SortSpec};

    fn aset(ids: &[usize]) -> AttrSet {
        AttrSet::from_iter(ids.iter().map(|&i| AttrId::new(i)))
    }
    fn spec(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect())
    }

    fn sample(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| row![(i % 17) as i64, ((i * 31) % 101) as i64, i as i64])
            .collect()
    }

    /// Parallel rank equals sequential rank for every input row (keyed by
    /// the unique id column).
    #[test]
    fn parallel_rank_matches_sequential() {
        let rows = sample(600);
        let wpk = aset(&[0]);
        let wok = spec(&[1]);
        let sort_key = spec(&[0, 1]);

        let run_chain = |input: SegmentedRows, env: &OpEnv| -> Result<SegmentedRows> {
            let sorted = full_sort(input, &sort_key, env)?;
            evaluate_window(sorted, &wpk, &wok, &WindowFunction::Rank, None, env)
        };

        let env_seq = OpEnv::with_memory_blocks(64);
        let seq = run_chain(SegmentedRows::single_segment(rows.clone()), &env_seq).unwrap();

        let env_par = OpEnv::with_memory_blocks(64);
        let par = parallel_partitioned(
            SegmentedRows::single_segment(rows),
            &wpk,
            4,
            &env_par,
            |_, part, worker_env| run_chain(part, worker_env),
        )
        .unwrap();

        let extract = |s: &SegmentedRows| {
            let mut v: Vec<(i64, i64)> = s
                .rows()
                .iter()
                .map(|r| {
                    (
                        r.get(AttrId::new(2)).as_int().unwrap(),
                        r.get(AttrId::new(3)).as_int().unwrap(),
                    )
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(extract(&seq), extract(&par));
    }

    /// Worker work lands in the caller's tracker (absorbed in worker
    /// order), so the helper's counters are deterministic.
    #[test]
    fn worker_counters_are_absorbed_deterministically() {
        let rows = sample(600);
        let snapshot_of = |_run: usize| {
            let env = OpEnv::with_memory_blocks(8);
            parallel_partitioned(
                SegmentedRows::single_segment(rows.clone()),
                &aset(&[0]),
                4,
                &env,
                |_, part, worker_env| full_sort(part, &spec(&[0, 1]), worker_env),
            )
            .unwrap();
            env.tracker.snapshot()
        };
        let first = snapshot_of(0);
        assert!(first.comparisons > 0, "worker sorts must be visible");
        for run in 1..4 {
            assert_eq!(snapshot_of(run), first, "run {run}");
        }
    }

    /// The thread override changes nothing but concurrency: a forced
    /// serial execution of the helper yields the same rows and counters.
    #[test]
    fn thread_override_is_invisible_to_results() {
        let rows = sample(400);
        let run_with = |threads: usize| {
            let env = OpEnv::with_memory_blocks(8).with_worker_threads(threads);
            let out = parallel_partitioned(
                SegmentedRows::single_segment(rows.clone()),
                &aset(&[0]),
                4,
                &env,
                |_, part, worker_env| full_sort(part, &spec(&[0, 1]), worker_env),
            )
            .unwrap();
            (out, env.tracker.snapshot())
        };
        let (serial, serial_work) = run_with(1);
        let (pooled, pooled_work) = run_with(4);
        assert_eq!(serial, pooled);
        assert_eq!(serial_work, pooled_work);
    }

    #[test]
    fn empty_partition_key_rejected() {
        let env = OpEnv::with_memory_blocks(8);
        let r = parallel_partitioned(
            SegmentedRows::empty(),
            &AttrSet::empty(),
            2,
            &env,
            |_, p, _| Ok(p),
        );
        assert!(r.is_err());
    }

    #[test]
    fn single_worker_shortcut() {
        let env = OpEnv::with_memory_blocks(8);
        let rows = sample(10);
        let out = parallel_partitioned(
            SegmentedRows::single_segment(rows.clone()),
            &aset(&[0]),
            1,
            &env,
            |i, p, _| {
                assert_eq!(i, 0);
                Ok(p)
            },
        )
        .unwrap();
        assert_eq!(out.len(), rows.len());
        // No hashing charged on the shortcut.
        assert_eq!(env.tracker.snapshot().hashes, 0);
    }

    #[test]
    fn worker_errors_propagate() {
        let env = OpEnv::with_memory_blocks(8);
        let r = parallel_partitioned(
            SegmentedRows::single_segment(sample(50)),
            &aset(&[0]),
            3,
            &env,
            |i, p, _| {
                if i == 1 {
                    Err(Error::Execution("boom".into()))
                } else {
                    Ok(p)
                }
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn partitions_are_disjoint_on_key() {
        let env = OpEnv::with_memory_blocks(8);
        let out = parallel_partitioned(
            SegmentedRows::single_segment(sample(500)),
            &aset(&[0]),
            4,
            &env,
            |_, p, _| Ok(p),
        )
        .unwrap();
        assert_eq!(out.len(), 500);
        assert!(out.segments_disjoint_on(&aset(&[0])));
    }
}
