//! **Full Sort (FS)** — the conventional reordering operator.
//!
//! Sorts the entire input on `perm(WPK) ∘ WOK` with the external merge sort
//! from [`crate::sorter`]. The output is a single segment, totally ordered
//! on the sort key (`R_{∅, key}` in the paper's notation).
//!
//! The input is consumed as a **row stream** — upstream segments are read
//! block at a time straight into replacement-selection run formation, never
//! buffered as a whole — and the output goes through the environment's
//! segment store, so FS holds `M` during the sort and the pool budget for
//! its output. When asked ([`FullSortOp::with_recorded_prefixes`]) it
//! records partition-boundary layers for free during the final merge: the
//! positions where a leading key prefix changes are known from rows the
//! merge already visits, so downstream window steps start with a boundary
//! layer even after a total reorder.

use crate::env::OpEnv;
use crate::operator::{drain, Operator, SegStream, Segment, SegmentSource};
use crate::segment::SegmentedRows;
use crate::sorter::{sort_stream_to_handle, SortKey};
use wf_common::{AttrSet, Result, Row, SortSpec};

/// Iterator over every row an upstream operator yields, pulling segments
/// lazily so only one segment's stream is open at a time.
pub(crate) struct UpstreamRows<'a, I: Operator> {
    op: &'a mut I,
    cur: Option<SegStream>,
}

impl<'a, I: Operator> UpstreamRows<'a, I> {
    pub(crate) fn new(op: &'a mut I) -> Self {
        UpstreamRows { op, cur: None }
    }
}

impl<I: Operator> Iterator for UpstreamRows<'_, I> {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Result<Row>> {
        loop {
            if let Some(stream) = &mut self.cur {
                match stream.next_row() {
                    Ok(Some(row)) => return Some(Ok(row)),
                    Ok(None) => self.cur = None,
                    Err(e) => return Some(Err(e)),
                }
            }
            match self.op.next_segment() {
                Ok(Some(seg)) => {
                    let (_, stream, _) = seg.into_stream();
                    self.cur = Some(stream);
                }
                Ok(None) => return None,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// The FS operator: consumes its input as a row stream on the first pull (a
/// total sort is blocking by nature), sorts within the memory budget, and
/// emits the result as one totally ordered, store-managed segment. A total
/// reorder invalidates any upstream boundary metadata; the output carries
/// only the layers FS itself recorded during the final merge.
pub struct FullSortOp<I> {
    input: I,
    key: SortKey,
    record: Vec<AttrSet>,
    env: OpEnv,
    done: bool,
}

impl<I: Operator> FullSortOp<I> {
    /// Sort everything `input` yields on `key`.
    pub fn new(input: I, key: SortSpec, env: OpEnv) -> Self {
        FullSortOp {
            input,
            key: SortKey::new(&key),
            record: Vec::new(),
            env,
            done: false,
        }
    }

    /// Record boundary layers for these attribute-set prefixes of the sort
    /// key during the final merge (free — the merge visits every adjacent
    /// output pair anyway). The sets must be prefixes of the sort key's
    /// attribute sequence for the layers to be maximal runs.
    pub fn with_recorded_prefixes(mut self, sets: Vec<AttrSet>) -> Self {
        self.record = sets;
        self
    }
}

impl<I: Operator> Operator for FullSortOp<I> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let (handle, bounds, n) = sort_stream_to_handle(
            UpstreamRows::new(&mut self.input),
            &self.key,
            &self.env,
            &self.record,
        )?;
        if n == 0 {
            return Ok(None);
        }
        Ok(Some(Segment::from_handle(handle, bounds)))
    }
}

/// Sort all rows on `key`; returns one totally ordered segment. Thin wrapper
/// over [`FullSortOp`] for batch callers.
pub fn full_sort(input: SegmentedRows, key: &SortSpec, env: &OpEnv) -> Result<SegmentedRows> {
    let mut op = FullSortOp::new(SegmentSource::new(input), key.clone(), env.clone());
    drain(&mut op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, AttrId, OrdElem, Row, RowComparator};

    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect())
    }

    #[test]
    fn produces_single_totally_ordered_segment() {
        let env = OpEnv::with_memory_blocks(2);
        let rows: Vec<Row> = (0..2000)
            .map(|i| {
                row![
                    (i * 37 % 101) as i64,
                    (i * 13 % 7) as i64,
                    "padding-padding"
                ]
            })
            .collect();
        let out = full_sort(SegmentedRows::single_segment(rows), &key(&[0, 1]), &env).unwrap();
        assert_eq!(out.segment_count(), 1);
        assert_eq!(out.len(), 2000);
        let cmp = RowComparator::new(&key(&[0, 1]));
        assert!(out.segments_sorted_by(&cmp));
    }

    #[test]
    fn respects_descending_keys() {
        let env = OpEnv::with_memory_blocks(16);
        let rows: Vec<Row> = (0..50).map(|i| row![i as i64]).collect();
        let spec = SortSpec::new(vec![OrdElem::desc(AttrId::new(0))]);
        let out = full_sort(SegmentedRows::single_segment(rows), &spec, &env).unwrap();
        let first = out.rows()[0].get(AttrId::new(0)).as_int().unwrap();
        let last = out.rows()[49].get(AttrId::new(0)).as_int().unwrap();
        assert_eq!((first, last), (49, 0));
    }

    #[test]
    fn empty_input() {
        let env = OpEnv::with_memory_blocks(2);
        let out = full_sort(SegmentedRows::empty(), &key(&[0]), &env).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.segment_count(), 0);
    }

    #[test]
    fn ignores_input_segmentation() {
        let env = OpEnv::with_memory_blocks(8);
        let s = SegmentedRows::from_parts(vec![row![3], row![1], row![2]], vec![0, 1, 2]);
        let out = full_sort(s, &key(&[0]), &env).unwrap();
        assert_eq!(out.segment_count(), 1);
        let vals: Vec<i64> = out
            .rows()
            .iter()
            .map(|r| r.get(AttrId::new(0)).as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    /// At a tiny pool the FS output is a spilled segment, and its resident
    /// footprint never approaches the relation.
    #[test]
    fn output_spills_at_tiny_pool() {
        let env = OpEnv::with_memory_blocks(2);
        let rows: Vec<Row> = (0..3000)
            .map(|i| row![(i * 37 % 101) as i64, "padding-padding-padding"])
            .collect();
        let total_bytes: usize = rows.iter().map(Row::encoded_len).sum();
        let mut op = FullSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows)),
            key(&[0]),
            env.clone(),
        );
        let seg = op.next_segment().unwrap().unwrap();
        assert!(seg.is_spilled());
        assert_eq!(seg.len(), 3000);
        let snap = env.store.snapshot();
        assert!(snap.spill_blocks_written > 0);
        assert!(
            snap.peak_resident_bytes < total_bytes / 4,
            "peak {} vs total {}",
            snap.peak_resident_bytes,
            total_bytes
        );
    }

    /// Recorded prefix layers ride on the output segment.
    #[test]
    fn records_prefix_layers_when_asked() {
        let env = OpEnv::with_memory_blocks(4);
        let rows: Vec<Row> = (0..500)
            .map(|i| row![(i % 5) as i64, (i % 17) as i64, "pad-pad-pad-pad-pad"])
            .collect();
        let wpk = AttrSet::from_iter([AttrId::new(0)]);
        let mut op = FullSortOp::new(
            SegmentSource::new(SegmentedRows::single_segment(rows)),
            key(&[0, 1]),
            env.clone(),
        )
        .with_recorded_prefixes(vec![wpk.clone()]);
        let seg = op.next_segment().unwrap().unwrap();
        let layer = seg
            .bounds
            .layers()
            .iter()
            .find(|l| l.attrs == wpk)
            .expect("recorded layer");
        assert_eq!(layer.starts.len(), 5, "one run per distinct WPK value");
    }
}
