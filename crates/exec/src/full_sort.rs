//! **Full Sort (FS)** — the conventional reordering operator.
//!
//! Sorts the entire input on `perm(WPK) ∘ WOK` with the external merge sort
//! from [`crate::sorter`]. The output is a single segment, totally ordered
//! on the sort key (`R_{∅, key}` in the paper's notation).

use crate::env::OpEnv;
use crate::operator::{drain, Operator, Segment, SegmentSource};
use crate::segment::SegmentedRows;
use crate::sorter::{sort_rows, SortKey};
use wf_common::{Result, Row, SortSpec};

/// The FS operator: drains its input on the first pull (a total sort is
/// blocking by nature), sorts within the memory budget, and emits the
/// result as one totally ordered segment. A total reorder invalidates any
/// upstream boundary metadata, so the output segment carries none.
pub struct FullSortOp<I> {
    input: I,
    key: SortKey,
    env: OpEnv,
    done: bool,
}

impl<I: Operator> FullSortOp<I> {
    /// Sort everything `input` yields on `key`.
    pub fn new(input: I, key: SortSpec, env: OpEnv) -> Self {
        FullSortOp {
            input,
            key: SortKey::new(&key),
            env,
            done: false,
        }
    }
}

impl<I: Operator> Operator for FullSortOp<I> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut rows: Vec<Row> = Vec::new();
        while let Some(seg) = self.input.next_segment()? {
            rows.extend(seg.rows);
        }
        if rows.is_empty() {
            return Ok(None);
        }
        Ok(Some(Segment::plain(sort_rows(rows, &self.key, &self.env)?)))
    }
}

/// Sort all rows on `key`; returns one totally ordered segment. Thin wrapper
/// over [`FullSortOp`] for batch callers.
pub fn full_sort(input: SegmentedRows, key: &SortSpec, env: &OpEnv) -> Result<SegmentedRows> {
    let mut op = FullSortOp::new(SegmentSource::new(input), key.clone(), env.clone());
    drain(&mut op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, AttrId, OrdElem, Row, RowComparator};

    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect())
    }

    #[test]
    fn produces_single_totally_ordered_segment() {
        let env = OpEnv::with_memory_blocks(2);
        let rows: Vec<Row> = (0..2000)
            .map(|i| {
                row![
                    (i * 37 % 101) as i64,
                    (i * 13 % 7) as i64,
                    "padding-padding"
                ]
            })
            .collect();
        let out = full_sort(SegmentedRows::single_segment(rows), &key(&[0, 1]), &env).unwrap();
        assert_eq!(out.segment_count(), 1);
        assert_eq!(out.len(), 2000);
        let cmp = RowComparator::new(&key(&[0, 1]));
        assert!(out.segments_sorted_by(&cmp));
    }

    #[test]
    fn respects_descending_keys() {
        let env = OpEnv::with_memory_blocks(16);
        let rows: Vec<Row> = (0..50).map(|i| row![i as i64]).collect();
        let spec = SortSpec::new(vec![OrdElem::desc(AttrId::new(0))]);
        let out = full_sort(SegmentedRows::single_segment(rows), &spec, &env).unwrap();
        let first = out.rows()[0].get(AttrId::new(0)).as_int().unwrap();
        let last = out.rows()[49].get(AttrId::new(0)).as_int().unwrap();
        assert_eq!((first, last), (49, 0));
    }

    #[test]
    fn empty_input() {
        let env = OpEnv::with_memory_blocks(2);
        let out = full_sort(SegmentedRows::empty(), &key(&[0]), &env).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.segment_count(), 0);
    }

    #[test]
    fn ignores_input_segmentation() {
        let env = OpEnv::with_memory_blocks(8);
        let s = SegmentedRows::from_parts(vec![row![3], row![1], row![2]], vec![0, 1, 2]);
        let out = full_sort(s, &key(&[0]), &env).unwrap();
        assert_eq!(out.segment_count(), 1);
        let vals: Vec<i64> = out
            .rows()
            .iter()
            .map(|r| r.get(AttrId::new(0)).as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }
}
