//! Per-operator execution environment.

use std::sync::Arc;
use wf_common::Result;
use wf_storage::spill::SpillMedium;
use wf_storage::{CostTracker, MemoryLedger};

/// Everything a reordering operator needs: the shared cost tracker, the
/// spill medium, and the size of its unit reorder memory (the paper's `M`,
/// in blocks).
#[derive(Clone)]
pub struct OpEnv {
    /// Shared work counters.
    pub tracker: Arc<CostTracker>,
    /// Where spills go.
    pub medium: SpillMedium,
    /// Unit reorder memory in blocks.
    pub mem_blocks: u64,
    /// Compare byte-comparable normalized sort keys instead of dispatching
    /// through `RowComparator` (on by default; the comparator path remains
    /// as the reference for equivalence tests and as the fallback for
    /// non-normalizable values).
    pub norm_keys: bool,
    /// Let downstream operators reuse partition/peer boundary layers
    /// carried on segments instead of re-running equality comparisons
    /// (paper §3.3/§3.5 matched-prefix pipelining; on by default).
    pub reuse_bounds: bool,
}

impl OpEnv {
    /// Environment with a fresh tracker, simulated spill device and the
    /// given memory budget.
    pub fn with_memory_blocks(mem_blocks: u64) -> Self {
        OpEnv {
            tracker: Arc::new(CostTracker::new()),
            medium: SpillMedium::Simulated,
            mem_blocks,
            norm_keys: true,
            reuse_bounds: true,
        }
    }

    /// New ledger sized to this environment's budget.
    pub fn ledger(&self) -> Result<MemoryLedger> {
        MemoryLedger::with_blocks(self.mem_blocks)
    }

    /// Same environment with a different memory budget.
    pub fn with_blocks(&self, mem_blocks: u64) -> Self {
        OpEnv {
            mem_blocks,
            ..self.clone()
        }
    }

    /// Same environment with the fast paths toggled (reference/ablation
    /// configuration for equivalence tests and benchmarks).
    pub fn with_toggles(&self, norm_keys: bool, reuse_bounds: bool) -> Self {
        OpEnv {
            norm_keys,
            reuse_bounds,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_matches_budget() {
        let env = OpEnv::with_memory_blocks(4);
        assert_eq!(env.ledger().unwrap().budget_blocks(), 4);
        assert_eq!(env.with_blocks(9).ledger().unwrap().budget_blocks(), 9);
    }

    #[test]
    fn zero_budget_ledger_errors() {
        let env = OpEnv::with_memory_blocks(0);
        assert!(env.ledger().is_err());
    }
}
