//! Per-operator execution environment.

use std::sync::Arc;
use wf_common::{Result, TraceSink};
use wf_storage::{CostTracker, MemoryLedger, SegmentStore, SpillConfig};

/// Everything a reordering operator needs: the shared cost tracker, the
/// spill configuration, the size of its unit reorder memory (the paper's
/// `M`, in blocks), and the shared segment store governing inter-operator
/// segment residency.
#[derive(Clone)]
pub struct OpEnv {
    /// Shared work counters.
    pub tracker: Arc<CostTracker>,
    /// Where spills go (backend + compression + read-ahead). Defaults from
    /// `WF_SPILL_BACKEND` / `WF_SPILL_COMPRESS` / `WF_PREFETCH_BLOCKS`;
    /// rows, modeled counters, and pool counters are bit-identical across
    /// every setting — only wall time may move.
    pub spill: SpillConfig,
    /// Unit reorder memory in blocks.
    pub mem_blocks: u64,
    /// Compare byte-comparable normalized sort keys instead of dispatching
    /// through `RowComparator` (on by default; the comparator path remains
    /// as the reference for equivalence tests and as the fallback for
    /// non-normalizable values).
    pub norm_keys: bool,
    /// Let downstream operators reuse partition/peer boundary layers
    /// carried on segments instead of re-running equality comparisons
    /// (paper §3.3/§3.5 matched-prefix pipelining; on by default).
    pub reuse_bounds: bool,
    /// The chain's segment store: every segment an operator emits lives in
    /// it, resident while the pool budget allows and spilled past it. The
    /// default pool budget equals `mem_blocks`; an unbounded pool
    /// ([`OpEnv::with_unbounded_pool`]) reproduces the pre-store pipeline
    /// (everything resident) with bit-identical modeled counters.
    pub store: Arc<SegmentStore>,
    /// Worker-thread override for parallel operators: `0` means "use the
    /// plan node's worker count"; any other value forces that many OS
    /// threads without changing the plan's shard count — output rows and
    /// modeled counters are invariant under this knob (the scheduler's
    /// determinism contract). Defaults from the `WF_WORKERS` environment
    /// variable so CI can force a serial or 4-worker execution of the whole
    /// suite.
    pub worker_threads: usize,
    /// Stream columnar batches from table scans and use per-column fast
    /// paths in filters and scatter hashing (on by default). Off reproduces
    /// the row-at-a-time pipeline; modeled counters are bit-identical either
    /// way — vectorization changes wall time, never the cost model.
    pub columnar: bool,
    /// Span recorder for the wall-clock metric domain (defaults to the
    /// shared no-op sink). Shard environments and rebudgeted environments
    /// inherit it, so every phase of a chain — including worker threads —
    /// lands in one timeline. Tracing only reads the clock: rows, modeled
    /// counters, and pool counters are bit-identical with it on or off.
    pub trace: Arc<TraceSink>,
}

/// Parse the `WF_WORKERS` environment variable (`0`/unset → no override).
pub(crate) fn env_worker_threads() -> usize {
    std::env::var("WF_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0)
}

impl OpEnv {
    /// Environment with a fresh tracker, the environment-selected spill
    /// configuration, the given memory budget, and a segment pool of the
    /// same size.
    pub fn with_memory_blocks(mem_blocks: u64) -> Self {
        let spill = SpillConfig::from_env();
        OpEnv {
            tracker: Arc::new(CostTracker::new()),
            store: SegmentStore::with_spill(Some(mem_blocks.max(1)), spill.clone()),
            spill,
            mem_blocks,
            norm_keys: true,
            reuse_bounds: true,
            worker_threads: env_worker_threads(),
            columnar: true,
            trace: TraceSink::disabled(),
        }
    }

    /// Environment executing inside a **caller-provided segment store** —
    /// the admission path: the governor hands each admitted query a pooled
    /// sub-account of the shared store, and the whole chain (unit reorder
    /// memory included) is budgeted by that account. `mem_blocks` is derived
    /// from the store's budget (unbounded store → a large effective `M`).
    pub fn with_store(store: Arc<SegmentStore>) -> Self {
        let mem_blocks = store
            .budget_bytes()
            .map(|b| (b / wf_storage::BLOCK_SIZE).max(1) as u64)
            .unwrap_or(u64::MAX / wf_storage::BLOCK_SIZE as u64);
        OpEnv {
            tracker: Arc::new(CostTracker::new()),
            spill: store.spill_config().clone(),
            store,
            mem_blocks,
            norm_keys: true,
            reuse_bounds: true,
            worker_threads: env_worker_threads(),
            columnar: true,
            trace: TraceSink::disabled(),
        }
    }

    /// Same environment with the given span recorder (see [`OpEnv::trace`]).
    /// The segment store picks it up too, so pool spill-outs land in the
    /// same timeline.
    pub fn with_trace(&self, trace: Arc<TraceSink>) -> Self {
        self.store.set_trace(Arc::clone(&trace));
        OpEnv {
            trace,
            ..self.clone()
        }
    }

    /// Same environment with the columnar fast paths toggled (the row
    /// pipeline is the reference configuration for the columnar equivalence
    /// suite).
    pub fn with_columnar(&self, columnar: bool) -> Self {
        OpEnv {
            columnar,
            ..self.clone()
        }
    }

    /// Same environment with the worker-thread override pinned (see
    /// [`OpEnv::worker_threads`]); tests use this to prove thread-count
    /// invariance without racing on the process environment.
    pub fn with_worker_threads(&self, worker_threads: usize) -> Self {
        OpEnv {
            worker_threads,
            ..self.clone()
        }
    }

    /// A per-worker environment for one shard of a parallel operator: a
    /// **fresh tracker** (absorbed into the parent's in shard order when the
    /// workers finish), a ledger **sub-account** of the parent store sized
    /// to `mem_blocks`, and the same toggles. The sub-account keeps the
    /// worker's spill decisions independent of its siblings, which is what
    /// makes parallel executions bit-identical across thread counts.
    pub fn shard_env(&self, mem_blocks: u64) -> Self {
        let mem_blocks = mem_blocks.max(1);
        OpEnv {
            tracker: Arc::new(CostTracker::new()),
            store: self.store.sub_store(Some(mem_blocks)),
            mem_blocks,
            ..self.clone()
        }
    }

    /// New ledger sized to this environment's budget.
    pub fn ledger(&self) -> Result<MemoryLedger> {
        MemoryLedger::with_blocks(self.mem_blocks)
    }

    /// Same environment with a different spill configuration; the segment
    /// pool is rebuilt on the new backend with the same budget.
    pub fn with_spill(&self, spill: SpillConfig) -> Self {
        let budget = self
            .store
            .budget_bytes()
            .map(|b| (b / wf_storage::BLOCK_SIZE) as u64);
        let store = SegmentStore::with_spill(budget, spill.clone());
        store.set_trace(Arc::clone(&self.trace));
        OpEnv {
            spill,
            store,
            ..self.clone()
        }
    }

    /// Same environment with a different memory budget (and a fresh segment
    /// pool of the same size; the tracker stays shared).
    pub fn with_blocks(&self, mem_blocks: u64) -> Self {
        let store = SegmentStore::with_spill(Some(mem_blocks.max(1)), self.spill.clone());
        store.set_trace(Arc::clone(&self.trace));
        OpEnv {
            mem_blocks,
            store,
            ..self.clone()
        }
    }

    /// Same environment with the fast paths toggled (reference/ablation
    /// configuration for equivalence tests and benchmarks).
    pub fn with_toggles(&self, norm_keys: bool, reuse_bounds: bool) -> Self {
        OpEnv {
            norm_keys,
            reuse_bounds,
            ..self.clone()
        }
    }

    /// Same environment with an unbounded segment pool — the pre-store
    /// pipeline's residency behaviour (every inter-operator segment stays
    /// in memory, nothing pool-spills). The reference configuration for the
    /// residency equivalence suite.
    pub fn with_unbounded_pool(&self) -> Self {
        let store = SegmentStore::with_spill(None, self.spill.clone());
        store.set_trace(Arc::clone(&self.trace));
        OpEnv {
            store,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_matches_budget() {
        let env = OpEnv::with_memory_blocks(4);
        assert_eq!(env.ledger().unwrap().budget_blocks(), 4);
        assert_eq!(env.with_blocks(9).ledger().unwrap().budget_blocks(), 9);
    }

    #[test]
    fn zero_budget_ledger_errors() {
        let env = OpEnv::with_memory_blocks(0);
        assert!(env.ledger().is_err());
    }

    #[test]
    fn shard_env_is_a_sub_account_with_its_own_tracker() {
        let env = OpEnv::with_memory_blocks(8);
        env.tracker.compare(3);
        let shard = env.shard_env(2);
        assert_eq!(shard.mem_blocks, 2);
        assert_eq!(shard.tracker.snapshot().comparisons, 0, "fresh tracker");
        shard.tracker.compare(1);
        assert_eq!(env.tracker.snapshot().comparisons, 3, "parent untouched");
        // The shard's store is budgeted independently of the parent's.
        assert_eq!(shard.store.budget_bytes(), Some(2 * wf_storage::BLOCK_SIZE));
        // Unbounded parents hand out unbounded shard stores.
        let unbounded = env.with_unbounded_pool();
        assert_eq!(unbounded.shard_env(2).store.budget_bytes(), None);
    }

    #[test]
    fn trace_sink_is_inherited_by_shards_and_rebudgets() {
        let env = OpEnv::with_memory_blocks(4);
        assert!(!env.trace.is_enabled(), "default is the no-op sink");
        let traced = env.with_trace(TraceSink::enabled());
        assert!(traced.trace.is_enabled());
        assert!(traced.shard_env(2).trace.is_enabled());
        assert!(traced.with_blocks(8).trace.is_enabled());
        assert!(traced.with_unbounded_pool().trace.is_enabled());
        assert!(traced.with_toggles(false, false).trace.is_enabled());
    }

    #[test]
    fn worker_thread_override_is_pinned_not_inherited() {
        let env = OpEnv::with_memory_blocks(4).with_worker_threads(3);
        assert_eq!(env.worker_threads, 3);
        assert_eq!(env.with_blocks(8).worker_threads, 3);
        assert_eq!(env.shard_env(2).worker_threads, 3);
    }
}
