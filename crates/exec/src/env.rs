//! Per-operator execution environment.

use std::sync::Arc;
use wf_common::Result;
use wf_storage::spill::SpillMedium;
use wf_storage::{CostTracker, MemoryLedger, SegmentStore};

/// Everything a reordering operator needs: the shared cost tracker, the
/// spill medium, the size of its unit reorder memory (the paper's `M`,
/// in blocks), and the shared segment store governing inter-operator
/// segment residency.
#[derive(Clone)]
pub struct OpEnv {
    /// Shared work counters.
    pub tracker: Arc<CostTracker>,
    /// Where spills go.
    pub medium: SpillMedium,
    /// Unit reorder memory in blocks.
    pub mem_blocks: u64,
    /// Compare byte-comparable normalized sort keys instead of dispatching
    /// through `RowComparator` (on by default; the comparator path remains
    /// as the reference for equivalence tests and as the fallback for
    /// non-normalizable values).
    pub norm_keys: bool,
    /// Let downstream operators reuse partition/peer boundary layers
    /// carried on segments instead of re-running equality comparisons
    /// (paper §3.3/§3.5 matched-prefix pipelining; on by default).
    pub reuse_bounds: bool,
    /// The chain's segment store: every segment an operator emits lives in
    /// it, resident while the pool budget allows and spilled past it. The
    /// default pool budget equals `mem_blocks`; an unbounded pool
    /// ([`OpEnv::with_unbounded_pool`]) reproduces the pre-store pipeline
    /// (everything resident) with bit-identical modeled counters.
    pub store: Arc<SegmentStore>,
}

impl OpEnv {
    /// Environment with a fresh tracker, simulated spill device, the given
    /// memory budget, and a segment pool of the same size.
    pub fn with_memory_blocks(mem_blocks: u64) -> Self {
        OpEnv {
            tracker: Arc::new(CostTracker::new()),
            medium: SpillMedium::Simulated,
            store: SegmentStore::new(Some(mem_blocks.max(1)), SpillMedium::Simulated),
            mem_blocks,
            norm_keys: true,
            reuse_bounds: true,
        }
    }

    /// New ledger sized to this environment's budget.
    pub fn ledger(&self) -> Result<MemoryLedger> {
        MemoryLedger::with_blocks(self.mem_blocks)
    }

    /// Same environment with a different memory budget (and a fresh segment
    /// pool of the same size; the tracker stays shared).
    pub fn with_blocks(&self, mem_blocks: u64) -> Self {
        OpEnv {
            mem_blocks,
            store: SegmentStore::new(Some(mem_blocks.max(1)), self.medium),
            ..self.clone()
        }
    }

    /// Same environment with the fast paths toggled (reference/ablation
    /// configuration for equivalence tests and benchmarks).
    pub fn with_toggles(&self, norm_keys: bool, reuse_bounds: bool) -> Self {
        OpEnv {
            norm_keys,
            reuse_bounds,
            ..self.clone()
        }
    }

    /// Same environment with an unbounded segment pool — the pre-store
    /// pipeline's residency behaviour (every inter-operator segment stays
    /// in memory, nothing pool-spills). The reference configuration for the
    /// residency equivalence suite.
    pub fn with_unbounded_pool(&self) -> Self {
        OpEnv {
            store: SegmentStore::new(None, self.medium),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_matches_budget() {
        let env = OpEnv::with_memory_blocks(4);
        assert_eq!(env.ledger().unwrap().budget_blocks(), 4);
        assert_eq!(env.with_blocks(9).ledger().unwrap().budget_blocks(), 9);
    }

    #[test]
    fn zero_budget_ledger_errors() {
        let env = OpEnv::with_memory_blocks(0);
        assert!(env.ledger().is_err());
    }
}
