//! Minimal relational operators for the non-window part of a window query.
//!
//! The paper's §5 integrates window planning with the rest of the query:
//! the windowed table is *produced* by some plan (scan, filter, GROUP BY),
//! and different upstream plans deliver different physical properties at
//! different costs. This module supplies that upstream machinery:
//!
//! * [`filter`] — predicate scan,
//! * [`group_by_hash`] — hash aggregation; output is *grouped* on the keys
//!   (`R^g_{keys, ε}`: every group contiguous, groups unordered),
//! * [`group_by_sort`] — sort-based aggregation; output is *sorted* on the
//!   keys (`R_{∅, keys}`),
//!
//! so `wf_core::integrated` can weigh "hash GROUP BY + cheap chain" against
//! "sort GROUP BY + even cheaper chain" exactly as §5 describes.

use crate::env::OpEnv;
use crate::operator::{Operator, Segment, TableScan};
use crate::scheduler::{
    absorb_worker_stores, absorb_worker_trackers, per_worker_blocks, resolve_threads, run_sharded,
    HandleSource,
};
use crate::segment::SegmentBounds;
use crate::sorter::SortKey;
use crate::util::hash_row_on;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use wf_common::{
    AttrId, AttrSet, DataType, Error, Field, Result, Row, RowComparator, Schema, SortSpec, Value,
};
use wf_storage::{ColumnVec, RowBatch, SegmentHandle, Table};

/// A simple column-vs-literal predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    Eq(AttrId, Value),
    Ne(AttrId, Value),
    Lt(AttrId, Value),
    Le(AttrId, Value),
    Gt(AttrId, Value),
    Ge(AttrId, Value),
    /// Inclusive range.
    Between(AttrId, Value, Value),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Evaluate against a row. SQL three-valued logic collapsed to boolean:
    /// comparisons with NULL are false.
    pub fn matches(&self, row: &Row) -> bool {
        use Predicate::*;
        let cmp = |a: &AttrId, v: &Value| -> Option<std::cmp::Ordering> {
            let lhs = row.get(*a);
            if lhs.is_null() || v.is_null() {
                None
            } else {
                Some(lhs.cmp_nulls_first(v))
            }
        };
        match self {
            Eq(a, v) => cmp(a, v) == Some(std::cmp::Ordering::Equal),
            Ne(a, v) => matches!(cmp(a, v), Some(o) if o != std::cmp::Ordering::Equal),
            Lt(a, v) => cmp(a, v) == Some(std::cmp::Ordering::Less),
            Le(a, v) => matches!(cmp(a, v), Some(o) if o != std::cmp::Ordering::Greater),
            Gt(a, v) => cmp(a, v) == Some(std::cmp::Ordering::Greater),
            Ge(a, v) => matches!(cmp(a, v), Some(o) if o != std::cmp::Ordering::Less),
            Between(a, lo, hi) => {
                matches!(cmp(a, lo), Some(o) if o != std::cmp::Ordering::Less)
                    && matches!(cmp(a, hi), Some(o) if o != std::cmp::Ordering::Greater)
            }
            And(l, r) => l.matches(row) && r.matches(row),
        }
    }

    /// Evaluate against every row of a columnar batch in one pass, with a
    /// typed per-lane loop per atom. `mask[i]` ⇔ `self.matches(&batch.row(i))`
    /// — the vectorized and row paths are interchangeable by construction.
    pub fn eval_mask(&self, batch: &RowBatch) -> Vec<bool> {
        use std::cmp::Ordering::*;
        use Predicate::*;
        match self {
            Eq(a, v) => atom_mask(batch.column(a.index()), v, |o| o == Equal),
            Ne(a, v) => atom_mask(batch.column(a.index()), v, |o| o != Equal),
            Lt(a, v) => atom_mask(batch.column(a.index()), v, |o| o == Less),
            Le(a, v) => atom_mask(batch.column(a.index()), v, |o| o != Greater),
            Gt(a, v) => atom_mask(batch.column(a.index()), v, |o| o == Greater),
            Ge(a, v) => atom_mask(batch.column(a.index()), v, |o| o != Less),
            Between(a, lo, hi) => {
                let col = batch.column(a.index());
                let mut m = atom_mask(col, lo, |o| o != Less);
                let hi_m = atom_mask(col, hi, |o| o != Greater);
                for (x, y) in m.iter_mut().zip(hi_m) {
                    *x = *x && y;
                }
                m
            }
            And(l, r) => {
                let mut m = l.eval_mask(batch);
                let rm = r.eval_mask(batch);
                for (x, y) in m.iter_mut().zip(rm) {
                    *x = *x && y;
                }
                m
            }
        }
    }
}

/// Column-vs-literal comparison mask: `ok` maps the ordering to the atom's
/// truth value; NULL on either side is false (the same three-valued-logic
/// collapse as `Predicate::matches`). The match hoists type dispatch out of
/// the row loop — each arm is a tight monomorphic scan over one lane.
fn atom_mask(col: &ColumnVec, v: &Value, ok: impl Fn(std::cmp::Ordering) -> bool) -> Vec<bool> {
    use std::cmp::Ordering;
    let n = col.len();
    let mut out = vec![false; n];
    match (col, v) {
        (_, Value::Null) => {}
        (ColumnVec::Int { vals, valid }, Value::Int(b)) => {
            for (i, m) in out.iter_mut().enumerate() {
                *m = valid.get(i) && ok(vals[i].cmp(b));
            }
        }
        (ColumnVec::Int { vals, valid }, Value::Float(b)) => {
            for (i, m) in out.iter_mut().enumerate() {
                *m = valid.get(i) && ok((vals[i] as f64).total_cmp(b));
            }
        }
        (ColumnVec::Float { vals, valid }, Value::Float(b)) => {
            for (i, m) in out.iter_mut().enumerate() {
                *m = valid.get(i) && ok(vals[i].total_cmp(b));
            }
        }
        (ColumnVec::Float { vals, valid }, Value::Int(b)) => {
            let bf = *b as f64;
            for (i, m) in out.iter_mut().enumerate() {
                *m = valid.get(i) && ok(vals[i].total_cmp(&bf));
            }
        }
        (ColumnVec::Str { vals, valid }, Value::Str(b)) => {
            for (i, m) in out.iter_mut().enumerate() {
                *m = valid.get(i) && ok(vals[i].as_ref().cmp(b.as_ref()));
            }
        }
        // Fixed cross-type rank: numbers < strings (`Value::cmp_nulls_first`).
        (ColumnVec::Int { valid, .. } | ColumnVec::Float { valid, .. }, Value::Str(_)) => {
            let hit = ok(Ordering::Less);
            for (i, m) in out.iter_mut().enumerate() {
                *m = valid.get(i) && hit;
            }
        }
        (ColumnVec::Str { valid, .. }, Value::Int(_) | Value::Float(_)) => {
            let hit = ok(Ordering::Greater);
            for (i, m) in out.iter_mut().enumerate() {
                *m = valid.get(i) && hit;
            }
        }
        (ColumnVec::Mixed(vals), _) => {
            for (i, m) in out.iter_mut().enumerate() {
                let lhs = &vals[i];
                *m = !lhs.is_null() && ok(lhs.cmp_nulls_first(v));
            }
        }
    }
    out
}

/// The filter operator: streams segments through the predicate, preserving
/// segmentation (a subset of a segment of complete partitions is still a
/// run of complete partitions of the filtered relation). Charges one
/// comparison per input row and one row move per surviving row; segments
/// filtered down to nothing are skipped.
///
/// Carried boundary layers are **remapped** through the kept-row mapping
/// instead of dropped: deleting rows inside a run keeps the remaining rows
/// equal on the layer's attributes, so each surviving run's boundary moves
/// to the count of rows kept before it. A layer is only discarded when one
/// of its runs is filtered out entirely — the two newly adjacent runs could
/// then hold equal values, which would break the maximal-runs invariant.
pub struct FilterOp<I> {
    input: I,
    pred: Predicate,
    env: OpEnv,
}

impl<I: Operator> FilterOp<I> {
    /// Keep only rows matching `pred`.
    pub fn new(input: I, pred: Predicate, env: OpEnv) -> Self {
        FilterOp { input, pred, env }
    }
}

/// One carried layer being remapped through the kept-row mapping.
struct LayerRemap {
    attrs: AttrSet,
    old_starts: Vec<usize>,
    pos: usize,
    /// Kept-row count at each old boundary, in order.
    new_starts: Vec<usize>,
}

impl LayerRemap {
    /// Note that input row `idx` is about to be processed with `kept` rows
    /// already emitted.
    fn observe(&mut self, idx: usize, kept: usize) {
        if self.pos < self.old_starts.len() && self.old_starts[self.pos] == idx {
            self.pos += 1;
            self.new_starts.push(kept);
        }
    }

    /// Finish: `Some(starts)` when every run kept at least one row (the
    /// remap is then exact), `None` otherwise.
    fn finish(self, kept: usize) -> Option<Vec<usize>> {
        if kept == 0 {
            return None;
        }
        // A run emptied ⇔ two boundaries map to the same kept count, or the
        // last run kept nothing.
        let distinct = self.new_starts.windows(2).all(|w| w[0] < w[1]);
        let last_nonempty = self.new_starts.last().is_none_or(|&s| s < kept);
        (distinct && last_nonempty).then_some(self.new_starts)
    }
}

impl<I: Operator> Operator for FilterOp<I> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        loop {
            let Some(seg) = self.input.next_segment()? else {
                return Ok(None);
            };
            let store_backed = seg.is_store_backed();
            let batch = if self.env.columnar {
                seg.shared_batch().map(Arc::clone)
            } else {
                None
            };
            let (_, mut stream, bounds) = seg.into_stream();
            let mut remaps: Vec<LayerRemap> = bounds
                .layers()
                .iter()
                .map(|l| LayerRemap {
                    attrs: l.attrs.clone(),
                    old_starts: l.starts.clone(),
                    pos: 0,
                    new_starts: Vec::new(),
                })
                .collect();
            let mut builder = store_backed.then(|| self.env.store.builder());
            let mut rows: Vec<Row> = Vec::new();
            let mut kept = 0usize;
            if let Some(batch) = batch {
                // Vectorized: one typed mask pass over the lanes, then a
                // gather of the kept rows. Charges are bulk but identical in
                // total to the row loop below.
                let mask = self.pred.eval_mask(&batch);
                self.env.tracker.compare(batch.len() as u64);
                for (idx, keep) in mask.iter().enumerate() {
                    for r in &mut remaps {
                        r.observe(idx, kept);
                    }
                    if *keep {
                        self.env.tracker.move_rows(1);
                        kept += 1;
                        let row = batch.row(idx);
                        match &mut builder {
                            Some(b) => b.push(row)?,
                            None => rows.push(row),
                        }
                    }
                }
            } else {
                let mut idx = 0usize;
                while let Some(row) = stream.next_row()? {
                    for r in &mut remaps {
                        r.observe(idx, kept);
                    }
                    idx += 1;
                    self.env.tracker.compare(1);
                    if self.pred.matches(&row) {
                        self.env.tracker.move_rows(1);
                        kept += 1;
                        match &mut builder {
                            Some(b) => b.push(row)?,
                            None => rows.push(row),
                        }
                    }
                }
            }
            if kept == 0 {
                continue;
            }
            let mut out_bounds = SegmentBounds::none();
            for r in remaps {
                let attrs = r.attrs.clone();
                if let Some(starts) = r.finish(kept) {
                    out_bounds.add_layer(attrs, starts);
                }
            }
            return Ok(Some(match builder {
                Some(b) => Segment::from_handle(b.finish()?, out_bounds),
                None => Segment::with_bounds(rows, out_bounds),
            }));
        }
    }
}

/// Filter a table; charges one scan plus the output rows moved. Thin
/// wrapper over [`TableScan`] → [`FilterOp`] for batch callers.
pub fn filter(table: &Table, pred: &Predicate, env: &OpEnv) -> Result<Table> {
    let mut op = FilterOp::new(
        TableScan::new(table, env.clone()),
        pred.clone(),
        env.clone(),
    );
    let mut out = Table::new(table.schema().clone());
    while let Some(seg) = op.next_segment()? {
        for row in seg.into_rows()? {
            out.push(row);
        }
    }
    Ok(out)
}

/// Aggregates supported by the GROUP BY operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupAgg {
    CountStar,
    Count(AttrId),
    Sum(AttrId),
    Min(AttrId),
    Max(AttrId),
    Avg(AttrId),
}

impl GroupAgg {
    fn name(&self, schema: &Schema) -> String {
        match self {
            GroupAgg::CountStar => "count".into(),
            GroupAgg::Count(a) => format!("count_{}", schema.name(*a)),
            GroupAgg::Sum(a) => format!("sum_{}", schema.name(*a)),
            GroupAgg::Min(a) => format!("min_{}", schema.name(*a)),
            GroupAgg::Max(a) => format!("max_{}", schema.name(*a)),
            GroupAgg::Avg(a) => format!("avg_{}", schema.name(*a)),
        }
    }

    fn data_type(&self, schema: &Schema) -> DataType {
        match self {
            GroupAgg::CountStar | GroupAgg::Count(_) => DataType::Int,
            GroupAgg::Avg(_) => DataType::Float,
            GroupAgg::Sum(a) | GroupAgg::Min(a) | GroupAgg::Max(a) => schema.field(*a).data_type,
        }
    }
}

/// Running state of one aggregate for one group.
#[derive(Debug, Clone)]
struct AggState {
    count: i64,
    sum: f64,
    all_int: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new() -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            all_int: true,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, agg: &GroupAgg, row: &Row) -> Result<()> {
        let col = match agg {
            GroupAgg::CountStar => {
                self.count += 1;
                return Ok(());
            }
            GroupAgg::Count(a)
            | GroupAgg::Sum(a)
            | GroupAgg::Min(a)
            | GroupAgg::Max(a)
            | GroupAgg::Avg(a) => *a,
        };
        let v = row.get(col);
        if v.is_null() {
            return Ok(());
        }
        self.count += 1;
        match v {
            Value::Int(x) => self.sum += *x as f64,
            Value::Float(x) => {
                self.all_int = false;
                self.sum += *x;
            }
            _ if matches!(agg, GroupAgg::Sum(_) | GroupAgg::Avg(_)) => {
                return Err(Error::TypeMismatch {
                    expected: "numeric".into(),
                    found: v.type_name().into(),
                })
            }
            _ => {}
        }
        if self.min.as_ref().is_none_or(|m| v < m) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v > m) {
            self.max = Some(v.clone());
        }
        Ok(())
    }

    fn finish(&self, agg: &GroupAgg) -> Value {
        match agg {
            GroupAgg::CountStar | GroupAgg::Count(_) => Value::Int(self.count),
            GroupAgg::Sum(_) => {
                if self.count == 0 {
                    Value::Null
                } else if self.all_int {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            GroupAgg::Avg(_) => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            GroupAgg::Min(_) => self.min.clone().unwrap_or(Value::Null),
            GroupAgg::Max(_) => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Output schema of a GROUP BY: key columns (in given order) then one
/// column per aggregate.
pub fn group_by_schema(schema: &Schema, keys: &[AttrId], aggs: &[GroupAgg]) -> Result<Schema> {
    let mut fields: Vec<Field> = keys.iter().map(|&a| schema.field(a).clone()).collect();
    for agg in aggs {
        fields.push(Field::new(agg.name(schema), agg.data_type(schema)));
    }
    Schema::new(fields)
}

/// Hash-based GROUP BY as an operator. The output relation is *grouped* on
/// the keys with every output row its own group, so it is emitted as **one
/// segment per group row** — the physical form of `R^g_{keys, ε}`, §5's
/// "interesting grouping" variant. The aggregation itself is blocking (runs
/// on the first pull); emission is row-at-a-time.
pub struct GroupByHashOp<I> {
    input: Option<I>,
    keys: Vec<AttrId>,
    aggs: Vec<GroupAgg>,
    env: OpEnv,
    out: VecDeque<Row>,
}

impl<I: Operator> GroupByHashOp<I> {
    /// Aggregate `aggs` grouped on `keys`.
    pub fn new(input: I, keys: Vec<AttrId>, aggs: Vec<GroupAgg>, env: OpEnv) -> Self {
        GroupByHashOp {
            input: Some(input),
            keys,
            aggs,
            env,
            out: VecDeque::new(),
        }
    }

    fn aggregate(&mut self, mut input: I) -> Result<()> {
        let rows = crate::full_sort::UpstreamRows::new(&mut input);
        for (_, row) in hash_aggregate(rows, &self.keys, &self.aggs, &self.env)? {
            self.out.push_back(row);
        }
        Ok(())
    }
}

/// The hash-aggregation core: consume a row stream, return the finished
/// group rows as `(key hash, row)` pairs in ascending hash then insertion
/// order — exactly the emission order [`GroupByHashOp`] uses, exposed so
/// the parallel scatter/merge ([`group_by_hash_par`]) can reproduce the
/// serial output bit for bit (groups with equal hashes always live in one
/// worker, so merging per-worker outputs by ascending head hash restores
/// the serial sequence).
fn hash_aggregate(
    rows: impl Iterator<Item = Result<Row>>,
    keys: &[AttrId],
    aggs: &[GroupAgg],
    env: &OpEnv,
) -> Result<Vec<(u64, Row)>> {
    let key_set = AttrSet::from_iter(keys.iter().copied());
    // Hash → collided groups, each (key values, aggregate states).
    type GroupBucket = Vec<(Vec<Value>, Vec<AggState>)>;
    let mut groups: HashMap<u64, GroupBucket> = HashMap::new();
    for row in rows {
        let row = row?;
        env.tracker.hash(1);
        let h = hash_row_on(&row, &key_set);
        let key_vals: Vec<Value> = keys.iter().map(|&a| row.get(a).clone()).collect();
        let bucket = groups.entry(h).or_default();
        let state = match bucket.iter_mut().find(|(k, _)| *k == key_vals) {
            Some((_, s)) => s,
            None => {
                bucket.push((key_vals.clone(), vec![AggState::new(); aggs.len()]));
                &mut bucket.last_mut().expect("just pushed").1
            }
        };
        for (agg, st) in aggs.iter().zip(state.iter_mut()) {
            st.update(agg, &row)?;
        }
    }
    let mut hashes: Vec<u64> = groups.keys().copied().collect();
    hashes.sort_unstable(); // deterministic (but not key-ordered) output
    let mut out = Vec::new();
    for h in hashes {
        for (key_vals, states) in &groups[&h] {
            let mut vals = key_vals.clone();
            for (agg, st) in aggs.iter().zip(states) {
                vals.push(st.finish(agg));
            }
            out.push((h, Row::new(vals)));
        }
    }
    Ok(out)
}

impl<I: Operator> Operator for GroupByHashOp<I> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        if let Some(input) = self.input.take() {
            self.aggregate(input)?;
        }
        match self.out.pop_front() {
            None => Ok(None),
            Some(row) => {
                self.env.tracker.move_rows(1);
                Ok(Some(Segment::plain(vec![row])))
            }
        }
    }
}

/// Hash-based GROUP BY over a table. Thin wrapper over [`TableScan`] →
/// [`GroupByHashOp`] for batch callers; the table output flattens the
/// one-segment-per-group structure.
pub fn group_by_hash(
    table: &Table,
    keys: &[AttrId],
    aggs: &[GroupAgg],
    env: &OpEnv,
) -> Result<Table> {
    let schema = group_by_schema(table.schema(), keys, aggs)?;
    let mut op = GroupByHashOp::new(
        TableScan::new(table, env.clone()),
        keys.to_vec(),
        aggs.to_vec(),
        env.clone(),
    );
    let mut out = Table::new(schema);
    while let Some(seg) = op.next_segment()? {
        for row in seg.into_rows()? {
            out.push(row);
        }
    }
    Ok(out)
}

/// Sort-based GROUP BY as an operator: sorts its input on the keys
/// (streamed through the shared external sorter, charged like any
/// reorder), aggregates adjacent runs off the sorted stream — holding one
/// group's state, never the sorted relation — and emits a single totally
/// ordered segment — `R_{∅, keys}`, §5's "interesting order" variant.
pub struct GroupBySortOp<I> {
    input: Option<I>,
    keys: Vec<AttrId>,
    aggs: Vec<GroupAgg>,
    env: OpEnv,
}

impl<I: Operator> GroupBySortOp<I> {
    /// Aggregate `aggs` grouped on `keys`, output sorted on `keys`.
    pub fn new(input: I, keys: Vec<AttrId>, aggs: Vec<GroupAgg>, env: OpEnv) -> Self {
        GroupBySortOp {
            input: Some(input),
            keys,
            aggs,
            env,
        }
    }
}

impl<I: Operator> Operator for GroupBySortOp<I> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        let Some(mut input) = self.input.take() else {
            return Ok(None);
        };
        let env = &self.env;
        let key_spec = SortSpec::new(
            self.keys
                .iter()
                .map(|&a| wf_common::OrdElem::asc(a))
                .collect(),
        );
        let key = SortKey::new(&key_spec);
        let cmp = key.comparator();
        let (sorted, _, _) = crate::sorter::sort_stream_to_handle(
            crate::full_sort::UpstreamRows::new(&mut input),
            &key,
            env,
            &[],
        )?;

        let mut out: Vec<Row> = Vec::new();
        let mut reader = sorted.read();
        let mut run_start: Option<Row> = None;
        let mut states = vec![AggState::new(); self.aggs.len()];
        let finish_group = |start: &Row, states: &mut Vec<AggState>, out: &mut Vec<Row>| {
            let mut vals: Vec<Value> = self.keys.iter().map(|&a| start.get(a).clone()).collect();
            for (agg, st) in self.aggs.iter().zip(states.iter()) {
                vals.push(st.finish(agg));
            }
            out.push(Row::new(vals));
            env.tracker.move_rows(1);
            *states = vec![AggState::new(); self.aggs.len()];
        };
        while let Some(row) = reader.next_row()? {
            let same_group = match &run_start {
                None => true,
                Some(start) => {
                    env.tracker.compare(1);
                    cmp.equal(start, &row)
                }
            };
            if !same_group {
                let start = run_start.take().expect("open run");
                finish_group(&start, &mut states, &mut out);
            }
            if run_start.is_none() {
                run_start = Some(row.clone());
            }
            for (agg, st) in self.aggs.iter().zip(states.iter_mut()) {
                st.update(agg, &row)?;
            }
        }
        if let Some(start) = run_start {
            finish_group(&start, &mut states, &mut out);
        }
        if out.is_empty() {
            return Ok(None);
        }
        Ok(Some(Segment::plain(out)))
    }
}

/// Sort-based GROUP BY over a table. Thin wrapper over [`TableScan`] →
/// [`GroupBySortOp`] for batch callers.
pub fn group_by_sort(
    table: &Table,
    keys: &[AttrId],
    aggs: &[GroupAgg],
    env: &OpEnv,
) -> Result<Table> {
    let schema = group_by_schema(table.schema(), keys, aggs)?;
    let mut op = GroupBySortOp::new(
        TableScan::new(table, env.clone()),
        keys.to_vec(),
        aggs.to_vec(),
        env.clone(),
    );
    let mut out = Table::new(schema);
    while let Some(seg) = op.next_segment()? {
        for row in seg.into_rows()? {
            out.push(row);
        }
    }
    Ok(out)
}

/// Scatter the table's rows into `workers` store-managed shard buffers by
/// `hash % workers` on the key set — the GROUP BY twin of the chain
/// scheduler's scatter. Charges one scan plus one hash per row; equal keys
/// always land in one shard, which is what lets both parallel GROUP BYs
/// merge without cross-worker ties.
fn scatter_by_key(
    table: &Table,
    key_set: &AttrSet,
    workers: usize,
    env: &OpEnv,
) -> Result<Vec<(usize, (SegmentHandle, OpEnv))>> {
    table.charge_scan(&env.tracker);
    let mut builders: Vec<_> = (0..workers).map(|_| env.store.builder()).collect();
    for row in table.rows() {
        env.tracker.hash(1);
        let w = (hash_row_on(row, key_set) % workers as u64) as usize;
        builders[w].push(row.clone())?;
    }
    let m_w = per_worker_blocks(env.mem_blocks, workers);
    let mut jobs = Vec::with_capacity(workers);
    for (i, b) in builders.into_iter().enumerate() {
        jobs.push((i, (b.finish()?, env.shard_env(m_w))));
    }
    Ok(jobs)
}

/// Unwrap `run_sharded`'s per-shard slots, surfacing the first worker error
/// (by shard index) or a panic.
fn collect_worker_outputs<R>(slots: Vec<Option<Result<R>>>) -> Result<Vec<R>> {
    let mut out = Vec::with_capacity(slots.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            None => {
                return Err(Error::Execution(format!(
                    "a parallel GROUP BY worker thread panicked (shard {i} unaccounted)"
                )))
            }
        }
    }
    Ok(out)
}

/// Parallel hash GROUP BY: scatter rows by `hash % workers` on the keys
/// into store-managed shard buffers, run the serial hash-aggregation core
/// in every worker (fresh tracker, ledger sub-account at `M_w`), then merge
/// the per-worker outputs by **ascending head hash** — since a group's
/// worker is a function of its hash, the merged sequence is bit-identical
/// to [`group_by_hash`]'s ascending-hash emission. Modeled counters charge
/// the scatter's extra `t` hashes (2 per row total) whatever the worker
/// count; `workers <= 1` delegates to the serial operator.
pub fn group_by_hash_par(
    table: &Table,
    keys: &[AttrId],
    aggs: &[GroupAgg],
    workers: usize,
    env: &OpEnv,
) -> Result<Table> {
    if workers <= 1 {
        return group_by_hash(table, keys, aggs, env);
    }
    let schema = group_by_schema(table.schema(), keys, aggs)?;
    env.store.begin_concurrent_phase();
    let key_set = AttrSet::from_iter(keys.iter().copied());
    let jobs = scatter_by_key(table, &key_set, workers, env)?;
    let shard_envs: Vec<OpEnv> = jobs.iter().map(|(_, (_, e))| e.clone()).collect();
    let threads = resolve_threads(env, workers, workers);
    let grouped = run_sharded(workers, threads, jobs, |i, (shard, shard_env)| {
        let _span = shard_env
            .trace
            .span_with("worker", || format!("groupby_hash_worker shard={i}"));
        let mut source = HandleSource::new(shard);
        let rows = crate::full_sort::UpstreamRows::new(&mut source);
        hash_aggregate(rows, keys, aggs, &shard_env)
    });
    absorb_worker_trackers(env, &shard_envs);
    let mut per_worker: Vec<VecDeque<(u64, Row)>> = collect_worker_outputs(grouped)?
        .into_iter()
        .map(Into::into)
        .collect();

    // Merge by ascending head hash. Group hashes never tie across workers
    // (worker = hash % workers), so the pick is unambiguous.
    let mut out = Table::new(schema);
    loop {
        let mut best: Option<(usize, u64)> = None;
        for (w, q) in per_worker.iter().enumerate() {
            if let Some((h, _)) = q.front() {
                if best.is_none_or(|(_, bh)| *h < bh) {
                    best = Some((w, *h));
                }
            }
        }
        let Some((w, _)) = best else { break };
        let (_, row) = per_worker[w].pop_front().expect("non-empty head");
        env.tracker.move_rows(1);
        out.push(row);
    }
    absorb_worker_stores(env, &shard_envs);
    Ok(out)
}

/// Parallel sort GROUP BY: the same scatter as [`group_by_hash_par`], a
/// full [`GroupBySortOp`] per worker, and a k-way ordered merge of the
/// per-worker group rows on the output key columns. Equal keys share a
/// shard, so the merge restores exactly [`group_by_sort`]'s total key
/// order; `workers <= 1` delegates to the serial operator.
pub fn group_by_sort_par(
    table: &Table,
    keys: &[AttrId],
    aggs: &[GroupAgg],
    workers: usize,
    env: &OpEnv,
) -> Result<Table> {
    if workers <= 1 {
        return group_by_sort(table, keys, aggs, env);
    }
    let schema = group_by_schema(table.schema(), keys, aggs)?;
    env.store.begin_concurrent_phase();
    let key_set = AttrSet::from_iter(keys.iter().copied());
    let jobs = scatter_by_key(table, &key_set, workers, env)?;
    let shard_envs: Vec<OpEnv> = jobs.iter().map(|(_, (_, e))| e.clone()).collect();
    let threads = resolve_threads(env, workers, workers);
    let grouped = run_sharded(workers, threads, jobs, |i, (shard, shard_env)| {
        let trace = Arc::clone(&shard_env.trace);
        let _span = trace.span_with("worker", || format!("groupby_sort_worker shard={i}"));
        let mut op = GroupBySortOp::new(
            HandleSource::new(shard),
            keys.to_vec(),
            aggs.to_vec(),
            shard_env,
        );
        let mut rows = Vec::new();
        while let Some(seg) = op.next_segment()? {
            rows.extend(seg.into_rows()?);
        }
        Ok(rows)
    });
    absorb_worker_trackers(env, &shard_envs);
    let mut per_worker: Vec<VecDeque<Row>> = collect_worker_outputs(grouped)?
        .into_iter()
        .map(Into::into)
        .collect();

    // K-way merge on the *output* key columns (keys come first in the
    // GROUP BY schema). Equal keys never straddle workers, so worker index
    // only breaks ties that cannot occur.
    let out_key = SortSpec::new(
        (0..keys.len())
            .map(|i| wf_common::OrdElem::asc(AttrId::new(i)))
            .collect(),
    );
    let cmp = RowComparator::new(&out_key);
    let mut out = Table::new(schema);
    loop {
        let mut best: Option<usize> = None;
        for (w, q) in per_worker.iter().enumerate() {
            let Some(head) = q.front() else { continue };
            match best {
                None => best = Some(w),
                Some(b) => {
                    env.tracker.compare(1);
                    if cmp.compare(head, per_worker[b].front().expect("tracked head"))
                        == std::cmp::Ordering::Less
                    {
                        best = Some(w);
                    }
                }
            }
        }
        let Some(w) = best else { break };
        let row = per_worker[w].pop_front().expect("non-empty head");
        env.tracker.move_rows(1);
        out.push(row);
    }
    absorb_worker_stores(env, &shard_envs);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::row;

    fn sample() -> Table {
        let schema = Schema::of(&[
            ("g", DataType::Int),
            ("v", DataType::Int),
            ("w", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for (g, v, w) in [
            (2, 10, 1.5),
            (1, 5, 2.0),
            (2, 20, 0.5),
            (1, 7, 1.0),
            (3, 1, 9.0),
            (1, 9, 4.5),
        ] {
            t.push(row![g, v, w]);
        }
        t
    }

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }

    #[test]
    fn predicates() {
        let r = row![5, Value::Null];
        assert!(Predicate::Eq(a(0), Value::Int(5)).matches(&r));
        assert!(Predicate::Between(a(0), Value::Int(5), Value::Int(9)).matches(&r));
        assert!(!Predicate::Lt(a(0), Value::Int(5)).matches(&r));
        assert!(Predicate::Le(a(0), Value::Int(5)).matches(&r));
        assert!(Predicate::Ne(a(0), Value::Int(4)).matches(&r));
        // NULL comparisons are false.
        assert!(!Predicate::Eq(a(1), Value::Null).matches(&r));
        assert!(!Predicate::Gt(a(1), Value::Int(0)).matches(&r));
        let both = Predicate::And(
            Box::new(Predicate::Ge(a(0), Value::Int(5))),
            Box::new(Predicate::Lt(a(0), Value::Int(6))),
        );
        assert!(both.matches(&r));
    }

    #[test]
    fn eval_mask_agrees_with_row_matches() {
        let rows = vec![
            row![1, 2.5, "a"],
            row![Value::Null, Value::Null, Value::Null],
            row![5, -0.0, ""],
            row![-3, f64::NAN, "zz"],
        ];
        let batch = RowBatch::from_rows(&rows).unwrap();
        let preds = vec![
            Predicate::Eq(a(0), Value::Int(5)),
            Predicate::Ne(a(0), Value::Int(1)),
            Predicate::Lt(a(0), Value::Float(2.0)),
            Predicate::Le(a(1), Value::Int(0)),
            Predicate::Gt(a(1), Value::Float(0.0)),
            Predicate::Ge(a(2), Value::str("a")),
            Predicate::Between(a(0), Value::Int(-3), Value::Int(1)),
            Predicate::Eq(a(0), Value::Null),
            Predicate::Lt(a(0), Value::str("x")),
            Predicate::Gt(a(2), Value::Int(100)),
            Predicate::And(
                Box::new(Predicate::Ge(a(0), Value::Int(-3))),
                Box::new(Predicate::Lt(a(1), Value::Float(3.0))),
            ),
        ];
        for p in preds {
            let mask = p.eval_mask(&batch);
            let want: Vec<bool> = rows.iter().map(|r| p.matches(r)).collect();
            assert_eq!(mask, want, "predicate {p:?}");
        }
    }

    #[test]
    fn vectorized_filter_matches_row_filter_exactly() {
        let t = sample();
        let pred = Predicate::And(
            Box::new(Predicate::Ge(a(1), Value::Int(5))),
            Box::new(Predicate::Lt(a(2), Value::Float(3.0))),
        );
        let col_env = OpEnv::with_memory_blocks(8);
        let col = filter(&t, &pred, &col_env).unwrap();
        let row_env = OpEnv::with_memory_blocks(8).with_columnar(false);
        let row = filter(&t, &pred, &row_env).unwrap();
        assert_eq!(col.rows(), row.rows());
        assert_eq!(
            col_env.tracker.snapshot().modeled_counters(),
            row_env.tracker.snapshot().modeled_counters()
        );
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let t = sample();
        let env = OpEnv::with_memory_blocks(8);
        let out = filter(&t, &Predicate::Eq(a(0), Value::Int(1)), &env).unwrap();
        assert_eq!(out.row_count(), 3);
        assert!(out.rows().iter().all(|r| r.get(a(0)).as_int() == Some(1)));
        assert!(env.tracker.snapshot().blocks_read >= t.block_count());
    }

    fn check_groups(out: &Table) {
        // Expected: g=1 → count 3, sum 21, min 5, max 9, avg 7.0
        //           g=2 → count 2, sum 30; g=3 → count 1, sum 1.
        let mut seen = std::collections::HashMap::new();
        for r in out.rows() {
            let g = r.get(a(0)).as_int().unwrap();
            let cnt = r.get(a(1)).as_int().unwrap();
            let sum = r.get(a(2)).as_int().unwrap();
            let mn = r.get(a(3)).as_int().unwrap();
            let mx = r.get(a(4)).as_int().unwrap();
            let avg = r.get(a(5)).as_f64().unwrap();
            seen.insert(g, (cnt, sum, mn, mx, avg));
        }
        assert_eq!(seen[&1], (3, 21, 5, 9, 7.0));
        assert_eq!(seen[&2], (2, 30, 10, 20, 15.0));
        assert_eq!(seen[&3], (1, 1, 1, 1, 1.0));
        assert_eq!(seen.len(), 3);
    }

    fn aggs() -> Vec<GroupAgg> {
        vec![
            GroupAgg::CountStar,
            GroupAgg::Sum(a(1)),
            GroupAgg::Min(a(1)),
            GroupAgg::Max(a(1)),
            GroupAgg::Avg(a(1)),
        ]
    }

    #[test]
    fn hash_and_sort_group_by_agree() {
        let t = sample();
        let env = OpEnv::with_memory_blocks(8);
        let hashed = group_by_hash(&t, &[a(0)], &aggs(), &env).unwrap();
        check_groups(&hashed);
        let sorted = group_by_sort(&t, &[a(0)], &aggs(), &env).unwrap();
        check_groups(&sorted);
        // Sort-based output is ordered on the key.
        let gs: Vec<i64> = sorted
            .rows()
            .iter()
            .map(|r| r.get(a(0)).as_int().unwrap())
            .collect();
        assert_eq!(gs, vec![1, 2, 3]);
    }

    #[test]
    fn group_by_schema_names_and_types() {
        let t = sample();
        let s = group_by_schema(t.schema(), &[a(0)], &aggs()).unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.field(a(1)).name, "count");
        assert_eq!(s.field(a(2)).name, "sum_v");
        assert_eq!(s.field(a(5)).data_type, DataType::Float);
    }

    #[test]
    fn sum_of_floats_stays_float() {
        let t = sample();
        let env = OpEnv::with_memory_blocks(8);
        let out = group_by_hash(&t, &[a(0)], &[GroupAgg::Sum(a(2))], &env).unwrap();
        let g1 = out
            .rows()
            .iter()
            .find(|r| r.get(a(0)).as_int() == Some(1))
            .unwrap();
        assert_eq!(g1.get(a(1)), &Value::Float(7.5));
    }

    #[test]
    fn null_keys_form_their_own_group() {
        let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
        let mut t = Table::new(schema);
        t.push(row![Value::Null, 1]);
        t.push(row![Value::Null, 2]);
        t.push(row![1, 3]);
        let env = OpEnv::with_memory_blocks(8);
        let out = group_by_hash(&t, &[a(0)], &[GroupAgg::CountStar], &env).unwrap();
        assert_eq!(out.row_count(), 2);
        let null_group = out.rows().iter().find(|r| r.get(a(0)).is_null()).unwrap();
        assert_eq!(null_group.get(a(1)).as_int(), Some(2));
    }

    #[test]
    fn empty_input_empty_output() {
        let t = Table::new(sample().schema().clone());
        let env = OpEnv::with_memory_blocks(8);
        assert!(group_by_hash(&t, &[a(0)], &aggs(), &env)
            .unwrap()
            .is_empty());
        assert!(group_by_sort(&t, &[a(0)], &aggs(), &env)
            .unwrap()
            .is_empty());
        for f in [group_by_hash_par, group_by_sort_par] {
            assert!(f(&t, &[a(0)], &aggs(), 4, &env).unwrap().is_empty());
        }
    }

    /// A bigger table so groups actually spread over the workers.
    fn big(n: usize) -> Table {
        let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
        let mut t = Table::new(schema);
        let mut x = 41u64;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.push(row![(x >> 33) as i64 % 97, (x >> 13) as i64 % 1000]);
        }
        t
    }

    /// Parallel hash GROUP BY reproduces the serial operator's rows **in
    /// order** for every worker count, and its modeled counters (scatter +
    /// worker hashes) are invariant across worker counts > 1.
    #[test]
    fn hash_par_matches_serial_rows_in_order() {
        let t = big(5_000);
        let keys = [a(0)];
        let aggs = aggs();
        let serial_env = OpEnv::with_memory_blocks(8);
        let serial = group_by_hash(&t, &keys, &aggs, &serial_env).unwrap();
        let mut par_counters = None;
        for workers in [1usize, 2, 4] {
            let env = OpEnv::with_memory_blocks(8);
            let par = group_by_hash_par(&t, &keys, &aggs, workers, &env).unwrap();
            assert_eq!(par.rows(), serial.rows(), "workers={workers}");
            if workers > 1 {
                let snap = env.tracker.snapshot();
                match &par_counters {
                    None => par_counters = Some(snap),
                    Some(r) => assert_eq!(&snap, r, "workers={workers}: counters drifted"),
                }
            }
        }
    }

    /// Parallel sort GROUP BY restores the serial total key order exactly,
    /// for every worker and thread count.
    #[test]
    fn sort_par_matches_serial_rows_in_order() {
        let t = big(5_000);
        let keys = [a(0)];
        let aggs = aggs();
        let serial_env = OpEnv::with_memory_blocks(8);
        let serial = group_by_sort(&t, &keys, &aggs, &serial_env).unwrap();
        for workers in [1usize, 2, 4] {
            for threads in [1usize, 3] {
                let env = OpEnv::with_memory_blocks(8).with_worker_threads(threads);
                let par = group_by_sort_par(&t, &keys, &aggs, workers, &env).unwrap();
                assert_eq!(
                    par.rows(),
                    serial.rows(),
                    "workers={workers} threads={threads}"
                );
            }
        }
    }

    /// Thread count and pool boundedness are invisible to the parallel
    /// GROUP BY's rows and modeled counters.
    #[test]
    fn hash_par_counters_invariant_across_threads_and_pools() {
        let t = big(4_000);
        let keys = [a(0)];
        let aggs = [GroupAgg::CountStar, GroupAgg::Sum(a(1))];
        let mut reference = None;
        for threads in [1usize, 2, 4] {
            for unbounded in [false, true] {
                let mut env = OpEnv::with_memory_blocks(2).with_worker_threads(threads);
                if unbounded {
                    env = env.with_unbounded_pool();
                }
                let out = group_by_hash_par(&t, &keys, &aggs, 4, &env).unwrap();
                let snap = env.tracker.snapshot();
                match &reference {
                    None => reference = Some((out, snap)),
                    Some((r_out, r_snap)) => {
                        assert_eq!(out.rows(), r_out.rows(), "threads={threads}");
                        assert_eq!(&snap, r_snap, "threads={threads} unbounded={unbounded}");
                    }
                }
            }
        }
    }
}
