//! Small executor utilities: a comparator-driven binary heap with
//! comparison counting, and a hash helper for partition keys.

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use wf_common::{AttrSet, Row};

/// A binary min-heap ordered by an explicit comparator. `std`'s
/// `BinaryHeap` requires `Ord`, which rows don't have for arbitrary sort
/// specs; this heap also counts every comparison it performs so executors
/// can charge CPU work faithfully (replacement selection's comparison count
/// grows with heap size — the effect behind Fig. 3(c)).
pub struct HeapBy<T, F> {
    items: Vec<T>,
    cmp: F,
    comparisons: u64,
}

impl<T, F: FnMut(&T, &T) -> Ordering> HeapBy<T, F> {
    /// Empty heap with the comparator.
    pub fn new(cmp: F) -> Self {
        HeapBy {
            items: Vec::new(),
            cmp,
            comparisons: 0,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Comparisons performed since construction (drain with
    /// [`Self::take_comparisons`]).
    pub fn take_comparisons(&mut self) -> u64 {
        std::mem::take(&mut self.comparisons)
    }

    /// Smallest item, if any.
    pub fn peek(&self) -> Option<&T> {
        self.items.first()
    }

    /// Insert an item.
    pub fn push(&mut self, item: T) {
        self.items.push(item);
        self.sift_up(self.items.len() - 1);
    }

    /// Remove and return the smallest item.
    pub fn pop(&mut self) -> Option<T> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let out = self.items.pop();
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        out
    }

    /// Pop the smallest and push a replacement in one pass (the inner loop
    /// of replacement selection and k-way merge).
    pub fn replace_top(&mut self, item: T) -> Option<T> {
        if self.items.is_empty() {
            self.items.push(item);
            return None;
        }
        let out = std::mem::replace(&mut self.items[0], item);
        self.sift_down(0);
        Some(out)
    }

    #[inline]
    fn less(&mut self, a: usize, b: usize) -> bool {
        self.comparisons += 1;
        // Safety: indices come from the sift loops, always in range.
        (self.cmp)(&self.items[a], &self.items[b]) == Ordering::Less
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent) {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.items.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < n && self.less(l, smallest) {
                smallest = l;
            }
            if r < n && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.items.swap(i, smallest);
            i = smallest;
        }
    }
}

/// Hash a row's values on the given attributes (order-insensitive key set:
/// attributes are hashed in their canonical sorted order). Used by Hashed
/// Sort's partitioning phase and by parallel execution.
pub fn hash_row_on(row: &Row, attrs: &AttrSet) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for a in attrs.iter() {
        row.get(a).hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, AttrId};

    #[test]
    fn heap_sorts_ints() {
        let mut h = HeapBy::new(|a: &i32, b: &i32| a.cmp(b));
        for v in [5, 3, 8, 1, 9, 2, 2] {
            h.push(v);
        }
        let mut out = Vec::new();
        while let Some(v) = h.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 2, 2, 3, 5, 8, 9]);
    }

    #[test]
    fn heap_counts_comparisons() {
        let mut h = HeapBy::new(|a: &i32, b: &i32| a.cmp(b));
        h.push(1);
        assert_eq!(h.take_comparisons(), 0);
        h.push(2);
        assert!(h.take_comparisons() > 0);
        assert_eq!(h.take_comparisons(), 0);
    }

    #[test]
    fn replace_top_keeps_heap_property() {
        let mut h = HeapBy::new(|a: &i32, b: &i32| a.cmp(b));
        for v in [4, 7, 9] {
            h.push(v);
        }
        assert_eq!(h.replace_top(1), Some(4));
        assert_eq!(h.peek(), Some(&1));
        assert_eq!(h.replace_top(100), Some(1));
        assert_eq!(h.pop(), Some(7));
        assert_eq!(h.pop(), Some(9));
        assert_eq!(h.pop(), Some(100));
        assert_eq!(h.pop(), None);
        // replace_top on empty pushes.
        assert_eq!(h.replace_top(5), None);
        assert_eq!(h.peek(), Some(&5));
    }

    #[test]
    fn heap_with_reverse_comparator_is_max_heap() {
        let mut h = HeapBy::new(|a: &i32, b: &i32| b.cmp(a));
        for v in [1, 5, 3] {
            h.push(v);
        }
        assert_eq!(h.pop(), Some(5));
    }

    #[test]
    fn hash_row_on_is_stable_and_key_sensitive() {
        let attrs01 = AttrSet::from_iter([AttrId::new(0), AttrId::new(1)]);
        let attrs0 = AttrSet::from_iter([AttrId::new(0)]);
        let r1 = row![1, "x"];
        let r2 = row![1, "y"];
        assert_eq!(hash_row_on(&r1, &attrs01), hash_row_on(&r1, &attrs01));
        assert_eq!(hash_row_on(&r1, &attrs0), hash_row_on(&r2, &attrs0));
        assert_ne!(hash_row_on(&r1, &attrs01), hash_row_on(&r2, &attrs01));
    }
}
