//! The segmented-rows representation flowing between operators.
//!
//! A [`SegmentedRows`] is the physical realization of the paper's segmented
//! relation `R_{X,Y}`: rows in order plus the start index of every segment.
//! FS produces a single segment; HS produces one segment per bucket; SS
//! refines or coarsens unit boundaries; window evaluation preserves
//! boundaries untouched. Keeping boundaries as explicit metadata mirrors how
//! the paper's PostgreSQL operators pipeline complete window partitions and
//! lets Segmented Sort handle the `α = ε` case (sort whole segments) without
//! guessing boundaries from values.

use wf_common::{AttrSet, Row, RowComparator};

/// Rows plus segment boundaries. Invariant: `seg_starts` is strictly
/// increasing, starts with 0 when non-empty, and every entry is a valid row
/// index. An empty relation has no segments.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedRows {
    rows: Vec<Row>,
    seg_starts: Vec<usize>,
}

impl SegmentedRows {
    /// A single segment holding all rows (FS output; also any unordered
    /// input, which is trivially one segment).
    pub fn single_segment(rows: Vec<Row>) -> Self {
        let seg_starts = if rows.is_empty() { vec![] } else { vec![0] };
        SegmentedRows { rows, seg_starts }
    }

    /// Build from explicit parts; debug-asserts the invariant.
    pub fn from_parts(rows: Vec<Row>, seg_starts: Vec<usize>) -> Self {
        debug_assert!(
            seg_starts.windows(2).all(|w| w[0] < w[1]),
            "segment starts must be strictly increasing"
        );
        debug_assert!(rows.is_empty() && seg_starts.is_empty() || seg_starts.first() == Some(&0));
        debug_assert!(seg_starts.iter().all(|&s| s < rows.len().max(1)));
        SegmentedRows { rows, seg_starts }
    }

    /// Empty relation.
    pub fn empty() -> Self {
        SegmentedRows {
            rows: vec![],
            seg_starts: vec![],
        }
    }

    /// All rows in physical order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume into rows, discarding boundaries.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of segments (`k` in the cost models).
    pub fn segment_count(&self) -> usize {
        self.seg_starts.len()
    }

    /// Segment start indices.
    pub fn seg_starts(&self) -> &[usize] {
        &self.seg_starts
    }

    /// Iterate `(start, end)` half-open ranges of segments.
    pub fn segment_ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.rows.len();
        self.seg_starts
            .iter()
            .enumerate()
            .map(move |(i, &s)| (s, self.seg_starts.get(i + 1).copied().unwrap_or(n)))
    }

    /// Slice of one segment by index.
    pub fn segment(&self, i: usize) -> &[Row] {
        let start = self.seg_starts[i];
        let end = self
            .seg_starts
            .get(i + 1)
            .copied()
            .unwrap_or(self.rows.len());
        &self.rows[start..end]
    }

    /// Verify that every segment is sorted under `cmp` (test helper; does
    /// not charge comparisons).
    pub fn segments_sorted_by(&self, cmp: &RowComparator) -> bool {
        self.segment_ranges().all(|(s, e)| {
            self.rows[s..e]
                .windows(2)
                .all(|w| cmp.compare(&w[0], &w[1]) != std::cmp::Ordering::Greater)
        })
    }

    /// Verify pairwise disjointness of segments on `attrs` (test helper,
    /// O(n²) over segments).
    pub fn segments_disjoint_on(&self, attrs: &AttrSet) -> bool {
        use std::collections::HashSet;
        let mut seen: HashSet<Vec<wf_common::Value>> = HashSet::new();
        for (s, e) in self.segment_ranges() {
            let mut local: HashSet<Vec<wf_common::Value>> = HashSet::new();
            for row in &self.rows[s..e] {
                let key: Vec<wf_common::Value> = attrs.iter().map(|a| row.get(a).clone()).collect();
                local.insert(key);
            }
            for key in local {
                if !seen.insert(key) {
                    return false;
                }
            }
        }
        true
    }

    /// Concatenate several segmented relations, keeping each input's
    /// boundaries (used by parallel execution to stitch worker outputs).
    pub fn concat(parts: Vec<SegmentedRows>) -> SegmentedRows {
        let mut rows = Vec::new();
        let mut seg_starts = Vec::new();
        for part in parts {
            let offset = rows.len();
            seg_starts.extend(part.seg_starts.iter().map(|s| s + offset));
            rows.extend(part.rows);
        }
        SegmentedRows { rows, seg_starts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, AttrId, OrdElem, SortSpec};

    fn aset(ids: &[usize]) -> AttrSet {
        AttrSet::from_iter(ids.iter().map(|&i| AttrId::new(i)))
    }

    #[test]
    fn single_segment_shape() {
        let s = SegmentedRows::single_segment(vec![row![1], row![2]]);
        assert_eq!(s.segment_count(), 1);
        assert_eq!(s.segment(0).len(), 2);
        let e = SegmentedRows::single_segment(vec![]);
        assert_eq!(e.segment_count(), 0);
        assert!(e.is_empty());
    }

    #[test]
    fn segment_ranges_cover_rows() {
        let s = SegmentedRows::from_parts(vec![row![1], row![2], row![3], row![4]], vec![0, 2, 3]);
        let ranges: Vec<_> = s.segment_ranges().collect();
        assert_eq!(ranges, vec![(0, 2), (2, 3), (3, 4)]);
        assert_eq!(s.segment(1), &[row![3]]);
    }

    #[test]
    fn sortedness_check() {
        let spec = SortSpec::new(vec![OrdElem::asc(AttrId::new(0))]);
        let cmp = RowComparator::new(&spec);
        let good = SegmentedRows::from_parts(vec![row![1], row![2], row![0]], vec![0, 2]);
        assert!(good.segments_sorted_by(&cmp));
        let bad = SegmentedRows::from_parts(vec![row![2], row![1], row![0]], vec![0, 2]);
        assert!(!bad.segments_sorted_by(&cmp));
    }

    #[test]
    fn disjointness_check() {
        let s = SegmentedRows::from_parts(vec![row![1, 9], row![1, 8], row![2, 7]], vec![0, 2]);
        assert!(s.segments_disjoint_on(&aset(&[0])));
        let overlapping =
            SegmentedRows::from_parts(vec![row![1, 9], row![2, 8], row![2, 7]], vec![0, 2]);
        assert!(!overlapping.segments_disjoint_on(&aset(&[0])));
        // Disjoint on (a,b) pairs even though `a` overlaps.
        assert!(overlapping.segments_disjoint_on(&aset(&[0, 1])));
    }

    #[test]
    fn concat_offsets_boundaries() {
        let a = SegmentedRows::from_parts(vec![row![1], row![2]], vec![0, 1]);
        let b = SegmentedRows::from_parts(vec![row![3]], vec![0]);
        let c = SegmentedRows::concat(vec![a, b, SegmentedRows::empty()]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.seg_starts(), &[0, 1, 2]);
    }
}
