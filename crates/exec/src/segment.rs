//! The segmented-rows representation flowing between operators.
//!
//! A [`SegmentedRows`] is the physical realization of the paper's segmented
//! relation `R_{X,Y}`: rows in order plus the start index of every segment.
//! FS produces a single segment; HS produces one segment per bucket; SS
//! refines or coarsens unit boundaries; window evaluation preserves
//! boundaries untouched. Keeping boundaries as explicit metadata mirrors how
//! the paper's PostgreSQL operators pipeline complete window partitions and
//! lets Segmented Sort handle the `α = ε` case (sort whole segments) without
//! guessing boundaries from values.

use wf_common::{AttrSet, Row, RowComparator};
use wf_storage::CostTracker;

/// One boundary layer: the invariant is that `starts` are exactly the
/// start indices of the **maximal runs** of segment rows that are equal on
/// every attribute in `attrs` (`starts[0] == 0` for a non-empty segment).
/// Layers are produced where the equality comparisons are paid anyway —
/// window partition/peer detection, SS unit detection — and reused
/// downstream instead of re-deriving the same boundaries (§3.3/§3.5
/// matched-prefix pipelining).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryLayer {
    /// Attribute set the runs are equal on.
    pub attrs: AttrSet,
    /// Start index of each maximal run, strictly increasing from 0.
    pub starts: Vec<usize>,
}

/// Boundary metadata carried on one segment: a small set of layers keyed by
/// attribute set. Valid only while the segment's row *order* is unchanged
/// (appending columns is fine — layers address attributes by stable index).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentBounds {
    layers: Vec<BoundaryLayer>,
}

impl SegmentBounds {
    /// No layers.
    pub fn none() -> Self {
        SegmentBounds::default()
    }

    /// True when no layer is carried.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer view.
    pub fn layers(&self) -> &[BoundaryLayer] {
        &self.layers
    }

    /// Record a layer. Empty attribute sets carry no information and are
    /// skipped; a layer for an already-known attribute set is replaced.
    pub fn add_layer(&mut self, attrs: AttrSet, starts: Vec<usize>) {
        if attrs.is_empty() {
            return;
        }
        debug_assert!(starts.first().is_none_or(|&s| s == 0));
        debug_assert!(starts.windows(2).all(|w| w[0] < w[1]));
        if let Some(existing) = self.layers.iter_mut().find(|l| l.attrs == attrs) {
            existing.starts = starts;
        } else {
            self.layers.push(BoundaryLayer { attrs, starts });
        }
    }

    /// Keep only layers whose attribute set is a subset of `keep` — the
    /// layers that stay valid when rows are permuted only *within* runs of
    /// equal `keep` values (SS unit sorts).
    pub fn retain_subsets_of(&mut self, keep: &AttrSet) {
        self.layers.retain(|l| l.attrs.is_subset(keep));
    }

    /// Start indices of the maximal runs of `rows[lo..hi]` equal on
    /// `target`, derived from the carried layers; `None` when no layer
    /// applies (the caller falls back to a scan).
    ///
    /// * A layer with `attrs == target` answers with **zero** comparisons:
    ///   its starts *are* the run boundaries.
    /// * A layer with `attrs ⊇ target` has finer runs (rows equal on a
    ///   superset are equal on the subset), so target boundaries can only
    ///   occur at layer starts: one `eq` check per candidate start instead
    ///   of one per row. The cheapest superset layer — fewest candidate
    ///   starts strictly inside `(lo, hi)` — wins; counting *in range*
    ///   keeps the choice identical whether a caller sees the full segment
    ///   or a [`SegmentBounds::window`] of it, which is what makes the
    ///   streaming (spill-backed) operator paths charge exactly the
    ///   comparisons the materialized paths do.
    ///
    /// `eq` must implement equality on exactly `target`'s attributes; each
    /// invocation charges one comparison to `tracker`.
    pub fn runs_equal_on(
        &self,
        target: &AttrSet,
        rows: &[Row],
        lo: usize,
        hi: usize,
        mut eq: impl FnMut(&Row, &Row) -> bool,
        tracker: &CostTracker,
    ) -> Option<Vec<usize>> {
        debug_assert!(lo <= hi && hi <= rows.len());
        if lo >= hi {
            return Some(Vec::new());
        }
        if target.is_empty() {
            // Every row is trivially equal on the empty attribute set: one
            // run, no comparisons (a global window's partition detection).
            return Some(vec![lo]);
        }
        if let Some(layer) = self.layers.iter().find(|l| l.attrs == *target) {
            let mut out = vec![lo];
            out.extend(layer.starts.iter().copied().filter(|&s| s > lo && s < hi));
            return Some(out);
        }
        let in_range = |l: &BoundaryLayer| l.starts.iter().filter(|&&s| s > lo && s < hi).count();
        let layer = self
            .layers
            .iter()
            .filter(|l| target.is_subset(&l.attrs))
            .min_by_key(|l| in_range(l))?;
        let mut out = vec![lo];
        let mut checks = 0u64;
        for &s in layer.starts.iter().filter(|&&s| s > lo && s < hi) {
            checks += 1;
            if !eq(&rows[s - 1], &rows[s]) {
                out.push(s);
            }
        }
        tracker.compare(checks);
        Some(out)
    }

    /// A view of these bounds restricted to the row window `[lo, hi)`, with
    /// starts re-based to the window (`lo` becomes 0). Layers stay valid
    /// because a window of maximal runs is still a set of maximal runs
    /// (split at most at the window edges). Used by the streaming operator
    /// paths, which buffer one partition/unit at a time: calling
    /// [`SegmentBounds::runs_equal_on`] on the window with relative indices
    /// yields the same boundaries and charges the same comparisons as
    /// calling it on the full segment with `(lo, hi)`.
    pub fn window(&self, lo: usize, hi: usize) -> SegmentBounds {
        let layers = self
            .layers
            .iter()
            .map(|l| BoundaryLayer {
                attrs: l.attrs.clone(),
                starts: std::iter::once(0)
                    .chain(
                        l.starts
                            .iter()
                            .filter(|&&s| s > lo && s < hi)
                            .map(|&s| s - lo),
                    )
                    .collect(),
            })
            .collect();
        SegmentBounds { layers }
    }
}

/// Streaming run detection with the exact charging of
/// [`SegmentBounds::runs_equal_on`] / [`scan_runs`]: built once per segment
/// from the carried layers, then asked row by row whether index `idx`
/// starts a new run. The spill-backed operator paths (window partitions, SS
/// units, peer groups) use this so their comparison counters stay
/// bit-identical to the materialized paths.
pub struct RunSplitter {
    mode: SplitMode,
}

enum SplitMode {
    /// An exact layer: boundaries are its starts, zero comparisons.
    Exact { starts: Vec<usize>, pos: usize },
    /// A superset layer: boundaries only at its starts, one charged `eq`
    /// per candidate.
    Candidates { starts: Vec<usize>, pos: usize },
    /// No applicable layer: one charged `eq` per adjacent pair.
    Scan,
}

impl RunSplitter {
    /// Splitter for runs equal on `target` over a segment of `n` rows with
    /// the given carried bounds (ignored when `reuse` is off).
    pub fn new(bounds: &SegmentBounds, target: &AttrSet, n: usize, reuse: bool) -> Self {
        if reuse && target.is_empty() {
            // Trivially one run (see `runs_equal_on`): no boundaries, no
            // comparisons.
            return RunSplitter {
                mode: SplitMode::Exact {
                    starts: Vec::new(),
                    pos: 0,
                },
            };
        }
        if reuse {
            if let Some(layer) = bounds.layers.iter().find(|l| l.attrs == *target) {
                return RunSplitter {
                    mode: SplitMode::Exact {
                        starts: layer.starts.iter().copied().filter(|&s| s < n).collect(),
                        pos: 0,
                    },
                };
            }
            let in_range = |l: &BoundaryLayer| l.starts.iter().filter(|&&s| s > 0 && s < n).count();
            if let Some(layer) = bounds
                .layers
                .iter()
                .filter(|l| target.is_subset(&l.attrs))
                .min_by_key(|l| in_range(l))
            {
                return RunSplitter {
                    mode: SplitMode::Candidates {
                        starts: layer.starts.iter().copied().filter(|&s| s < n).collect(),
                        pos: 0,
                    },
                };
            }
        }
        RunSplitter {
            mode: SplitMode::Scan,
        }
    }

    /// Does row `idx` (≥ 1) start a new run? `prev`/`cur` are the adjacent
    /// rows `idx - 1` and `idx`. When `forced` the caller has already
    /// proven a boundary at `idx` (e.g. a partition start forcing a peer
    /// boundary): the splitter records it without charging — mirroring the
    /// materialized paths, which never compare across such boundaries.
    pub fn is_boundary(
        &mut self,
        idx: usize,
        prev: &Row,
        cur: &Row,
        mut eq: impl FnMut(&Row, &Row) -> bool,
        forced: bool,
        tracker: &CostTracker,
    ) -> bool {
        let candidate = match &mut self.mode {
            SplitMode::Exact { starts, pos } | SplitMode::Candidates { starts, pos } => {
                while *pos < starts.len() && starts[*pos] < idx {
                    *pos += 1;
                }
                let hit = *pos < starts.len() && starts[*pos] == idx;
                if hit {
                    *pos += 1;
                }
                hit
            }
            SplitMode::Scan => true,
        };
        if forced {
            return true;
        }
        match self.mode {
            SplitMode::Exact { .. } => candidate,
            SplitMode::Candidates { .. } | SplitMode::Scan => {
                if !candidate {
                    return false;
                }
                tracker.compare(1);
                !eq(prev, cur)
            }
        }
    }
}

/// Start indices of the maximal runs of `rows[lo..hi]` equal under `eq`,
/// found by scanning adjacent pairs — one comparison charged per pair.
/// The scan fallback behind [`SegmentBounds::runs_equal_on`]: operators
/// call this when no carried layer applies, so run detection and its
/// counter accounting live in one place.
pub fn scan_runs(
    rows: &[Row],
    lo: usize,
    hi: usize,
    mut eq: impl FnMut(&Row, &Row) -> bool,
    tracker: &CostTracker,
) -> Vec<usize> {
    debug_assert!(lo <= hi && hi <= rows.len());
    if lo >= hi {
        return Vec::new();
    }
    let mut starts = vec![lo];
    let mut checks = 0u64;
    for i in lo + 1..hi {
        checks += 1;
        if !eq(&rows[i - 1], &rows[i]) {
            starts.push(i);
        }
    }
    tracker.compare(checks);
    starts
}

/// Rows plus segment boundaries. Invariant: `seg_starts` is strictly
/// increasing, starts with 0 when non-empty, and every entry is a valid row
/// index. An empty relation has no segments. Each segment may carry
/// [`SegmentBounds`] (boundary layers proven upstream); `bounds` is either
/// empty (no metadata) or exactly one entry per segment.
#[derive(Debug, Clone)]
pub struct SegmentedRows {
    rows: Vec<Row>,
    seg_starts: Vec<usize>,
    bounds: Vec<SegmentBounds>,
}

impl PartialEq for SegmentedRows {
    /// Equality is over the physical relation (rows + boundaries); carried
    /// bounds metadata is derived state and never affects row output.
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.seg_starts == other.seg_starts
    }
}

impl SegmentedRows {
    /// A single segment holding all rows (FS output; also any unordered
    /// input, which is trivially one segment).
    pub fn single_segment(rows: Vec<Row>) -> Self {
        let seg_starts = if rows.is_empty() { vec![] } else { vec![0] };
        SegmentedRows {
            rows,
            seg_starts,
            bounds: Vec::new(),
        }
    }

    /// Build from explicit parts; debug-asserts the invariant.
    pub fn from_parts(rows: Vec<Row>, seg_starts: Vec<usize>) -> Self {
        debug_assert!(
            seg_starts.windows(2).all(|w| w[0] < w[1]),
            "segment starts must be strictly increasing"
        );
        debug_assert!(rows.is_empty() && seg_starts.is_empty() || seg_starts.first() == Some(&0));
        debug_assert!(seg_starts.iter().all(|&s| s < rows.len().max(1)));
        SegmentedRows {
            rows,
            seg_starts,
            bounds: Vec::new(),
        }
    }

    /// Like [`SegmentedRows::from_parts`] with per-segment boundary
    /// metadata (`bounds.len()` must be `seg_starts.len()` or 0).
    pub fn from_parts_with_bounds(
        rows: Vec<Row>,
        seg_starts: Vec<usize>,
        bounds: Vec<SegmentBounds>,
    ) -> Self {
        debug_assert!(bounds.is_empty() || bounds.len() == seg_starts.len());
        let mut out = SegmentedRows::from_parts(rows, seg_starts);
        out.bounds = bounds;
        out
    }

    /// Empty relation.
    pub fn empty() -> Self {
        SegmentedRows {
            rows: vec![],
            seg_starts: vec![],
            bounds: vec![],
        }
    }

    /// All rows in physical order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume into rows, discarding boundaries.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of segments (`k` in the cost models).
    pub fn segment_count(&self) -> usize {
        self.seg_starts.len()
    }

    /// Segment start indices.
    pub fn seg_starts(&self) -> &[usize] {
        &self.seg_starts
    }

    /// Boundary metadata of segment `i` (empty when none was carried).
    pub fn segment_bounds(&self, i: usize) -> SegmentBounds {
        self.bounds.get(i).cloned().unwrap_or_default()
    }

    /// Consume into per-segment `(rows, bounds)` pairs, front to back.
    pub fn into_segments(self) -> Vec<(Vec<Row>, SegmentBounds)> {
        let SegmentedRows {
            mut rows,
            seg_starts,
            mut bounds,
        } = self;
        if bounds.is_empty() {
            bounds = vec![SegmentBounds::none(); seg_starts.len()];
        }
        let mut out: Vec<(Vec<Row>, SegmentBounds)> = Vec::with_capacity(seg_starts.len());
        // Split back to front so each split_off is O(segment).
        for (&start, b) in seg_starts.iter().zip(bounds).rev() {
            out.push((rows.split_off(start), b));
        }
        debug_assert!(rows.is_empty());
        out.reverse();
        out
    }

    /// Iterate `(start, end)` half-open ranges of segments.
    pub fn segment_ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.rows.len();
        self.seg_starts
            .iter()
            .enumerate()
            .map(move |(i, &s)| (s, self.seg_starts.get(i + 1).copied().unwrap_or(n)))
    }

    /// Slice of one segment by index.
    pub fn segment(&self, i: usize) -> &[Row] {
        let start = self.seg_starts[i];
        let end = self
            .seg_starts
            .get(i + 1)
            .copied()
            .unwrap_or(self.rows.len());
        &self.rows[start..end]
    }

    /// Verify that every segment is sorted under `cmp` (test helper; does
    /// not charge comparisons).
    pub fn segments_sorted_by(&self, cmp: &RowComparator) -> bool {
        self.segment_ranges().all(|(s, e)| {
            self.rows[s..e]
                .windows(2)
                .all(|w| cmp.compare(&w[0], &w[1]) != std::cmp::Ordering::Greater)
        })
    }

    /// Verify pairwise disjointness of segments on `attrs` (test helper,
    /// O(n²) over segments).
    pub fn segments_disjoint_on(&self, attrs: &AttrSet) -> bool {
        use std::collections::HashSet;
        let mut seen: HashSet<Vec<wf_common::Value>> = HashSet::new();
        for (s, e) in self.segment_ranges() {
            let mut local: HashSet<Vec<wf_common::Value>> = HashSet::new();
            for row in &self.rows[s..e] {
                let key: Vec<wf_common::Value> = attrs.iter().map(|a| row.get(a).clone()).collect();
                local.insert(key);
            }
            for key in local {
                if !seen.insert(key) {
                    return false;
                }
            }
        }
        true
    }

    /// Concatenate several segmented relations, keeping each input's
    /// boundaries (used by parallel execution to stitch worker outputs).
    pub fn concat(parts: Vec<SegmentedRows>) -> SegmentedRows {
        let mut rows = Vec::new();
        let mut seg_starts = Vec::new();
        let mut bounds: Vec<SegmentBounds> = Vec::new();
        let any_bounds = parts.iter().any(|p| !p.bounds.is_empty());
        for part in parts {
            let offset = rows.len();
            seg_starts.extend(part.seg_starts.iter().map(|s| s + offset));
            if any_bounds {
                let n = part.seg_starts.len();
                if part.bounds.is_empty() {
                    bounds.extend((0..n).map(|_| SegmentBounds::none()));
                } else {
                    bounds.extend(part.bounds);
                }
            }
            rows.extend(part.rows);
        }
        SegmentedRows {
            rows,
            seg_starts,
            bounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, AttrId, OrdElem, SortSpec};

    fn aset(ids: &[usize]) -> AttrSet {
        AttrSet::from_iter(ids.iter().map(|&i| AttrId::new(i)))
    }

    #[test]
    fn single_segment_shape() {
        let s = SegmentedRows::single_segment(vec![row![1], row![2]]);
        assert_eq!(s.segment_count(), 1);
        assert_eq!(s.segment(0).len(), 2);
        let e = SegmentedRows::single_segment(vec![]);
        assert_eq!(e.segment_count(), 0);
        assert!(e.is_empty());
    }

    #[test]
    fn segment_ranges_cover_rows() {
        let s = SegmentedRows::from_parts(vec![row![1], row![2], row![3], row![4]], vec![0, 2, 3]);
        let ranges: Vec<_> = s.segment_ranges().collect();
        assert_eq!(ranges, vec![(0, 2), (2, 3), (3, 4)]);
        assert_eq!(s.segment(1), &[row![3]]);
    }

    #[test]
    fn sortedness_check() {
        let spec = SortSpec::new(vec![OrdElem::asc(AttrId::new(0))]);
        let cmp = RowComparator::new(&spec);
        let good = SegmentedRows::from_parts(vec![row![1], row![2], row![0]], vec![0, 2]);
        assert!(good.segments_sorted_by(&cmp));
        let bad = SegmentedRows::from_parts(vec![row![2], row![1], row![0]], vec![0, 2]);
        assert!(!bad.segments_sorted_by(&cmp));
    }

    #[test]
    fn disjointness_check() {
        let s = SegmentedRows::from_parts(vec![row![1, 9], row![1, 8], row![2, 7]], vec![0, 2]);
        assert!(s.segments_disjoint_on(&aset(&[0])));
        let overlapping =
            SegmentedRows::from_parts(vec![row![1, 9], row![2, 8], row![2, 7]], vec![0, 2]);
        assert!(!overlapping.segments_disjoint_on(&aset(&[0])));
        // Disjoint on (a,b) pairs even though `a` overlaps.
        assert!(overlapping.segments_disjoint_on(&aset(&[0, 1])));
    }

    #[test]
    fn concat_offsets_boundaries() {
        let a = SegmentedRows::from_parts(vec![row![1], row![2]], vec![0, 1]);
        let b = SegmentedRows::from_parts(vec![row![3]], vec![0]);
        let c = SegmentedRows::concat(vec![a, b, SegmentedRows::empty()]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.seg_starts(), &[0, 1, 2]);
    }
}
