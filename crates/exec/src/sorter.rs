//! The shared sort machinery: in-memory sorts with comparison counting and
//! the external merge sort used by FS (whole relation), HS (oversized
//! buckets) and SS (oversized units).
//!
//! External sort follows the paper's cost-model assumptions (§3.4): run
//! formation by **replacement selection** (expected run length `2M`) and
//! **F-way merge** where `F` is bounded by the memory budget, iterating
//! until a single run remains. The final merge streams its output without
//! writing it back, which is why Eq. 1 charges `2·B·(⌈log_F(B/2M)⌉ + 1)`
//! including the output but not the input read.

use crate::env::OpEnv;
use crate::util::HeapBy;
use std::cmp::Ordering;
use wf_common::{Result, Row, RowComparator};
use wf_storage::{MemoryLedger, SpillFile, SpillReader};

/// Sort a slice in memory, charging one comparison per comparator call.
pub fn sort_in_memory(rows: &mut [Row], cmp: &RowComparator, env: &OpEnv) {
    let mut count: u64 = 0;
    rows.sort_by(|a, b| {
        count += 1;
        cmp.compare(a, b)
    });
    env.tracker.compare(count);
}

/// Sort `rows` under `cmp` within the environment's memory budget.
///
/// If the rows fit in `M` they are sorted in place with no I/O; otherwise
/// the external path (replacement selection + F-way merge) runs, charging
/// block reads/writes to the tracker. The result is fully sorted either way.
pub fn sort_rows(rows: Vec<Row>, cmp: &RowComparator, env: &OpEnv) -> Result<Vec<Row>> {
    let mut ledger = env.ledger()?;
    let total_bytes: usize = rows.iter().map(Row::encoded_len).sum();
    if ledger.fits(total_bytes) {
        let mut rows = rows;
        sort_in_memory(&mut rows, cmp, env);
        return Ok(rows);
    }
    external_sort(rows, cmp, env, &mut ledger)
}

/// One sorted run on the spill device.
struct Run {
    reader: SpillReader,
}

/// Replacement-selection run formation.
///
/// The heap holds as many rows as fit in `M`; each output row is appended to
/// the current run, and an incoming row joins the current run if it does not
/// precede the last row written, otherwise it is tagged for the next run.
/// Random input therefore yields runs of about `2M` (Knuth), matching Eq. 1.
fn form_runs(
    rows: Vec<Row>,
    cmp: &RowComparator,
    env: &OpEnv,
    ledger: &mut MemoryLedger,
) -> Result<Vec<Run>> {
    let mut input = rows.into_iter();
    // (run_tag, row) ordered by tag then key.
    let mut heap = HeapBy::new(|a: &(u64, Row), b: &(u64, Row)| match a.0.cmp(&b.0) {
        Ordering::Equal => cmp.compare(&a.1, &b.1),
        other => other,
    });

    // Fill the heap up to the budget (a single oversized row is force-charged
    // so progress is always possible).
    for row in input.by_ref() {
        let bytes = row.encoded_len();
        if heap.is_empty() || ledger.fits(bytes) {
            ledger.charge(bytes);
            heap.push((0, row));
            if !ledger.fits(0) {
                break;
            }
        } else {
            // Put it back conceptually: handle below by chaining.
            return drain_with_pending(row, input, heap, cmp, env, ledger);
        }
        if ledger.used_bytes() >= ledger.budget_bytes() {
            break;
        }
    }
    drain_heap_with_input(None, input, heap, cmp, env, ledger)
}

/// Continue run formation when a row arrived that did not fit the heap.
fn drain_with_pending(
    pending: Row,
    input: std::vec::IntoIter<Row>,
    heap: HeapBy<(u64, Row), impl FnMut(&(u64, Row), &(u64, Row)) -> Ordering>,
    cmp: &RowComparator,
    env: &OpEnv,
    ledger: &mut MemoryLedger,
) -> Result<Vec<Run>> {
    drain_heap_with_input(Some(pending), input, heap, cmp, env, ledger)
}

fn drain_heap_with_input(
    mut pending: Option<Row>,
    mut input: std::vec::IntoIter<Row>,
    mut heap: HeapBy<(u64, Row), impl FnMut(&(u64, Row), &(u64, Row)) -> Ordering>,
    cmp: &RowComparator,
    env: &OpEnv,
    ledger: &mut MemoryLedger,
) -> Result<Vec<Run>> {
    let mut runs: Vec<Run> = Vec::new();
    let mut current_tag = 0u64;
    let mut current_file: Option<SpillFile> = None;
    let mut extra_cmp: u64 = 0;

    while let Some((tag, row)) = heap.pop() {
        ledger.release(row.encoded_len());
        if tag != current_tag || current_file.is_none() {
            if let Some(f) = current_file.take() {
                runs.push(Run {
                    reader: f.into_reader()?,
                });
            }
            current_file = Some(SpillFile::create(env.medium, env.tracker.clone())?);
            current_tag = tag;
        }
        let file = current_file.as_mut().expect("file just ensured");
        file.push(&row)?;
        env.tracker.move_rows(1);
        // `row` is now the last tuple written to the current run; incoming
        // tuples that precede it must wait for the next run.
        loop {
            let next = match pending.take() {
                Some(r) => Some(r),
                None => input.next(),
            };
            let Some(next) = next else { break };
            let bytes = next.encoded_len();
            if !ledger.fits(bytes) && !heap.is_empty() {
                pending = Some(next);
                break;
            }
            ledger.charge(bytes);
            extra_cmp += 1;
            let tag_for_next = if cmp.compare(&next, &row) == Ordering::Less {
                current_tag + 1
            } else {
                current_tag
            };
            heap.push((tag_for_next, next));
            if !ledger.fits(0) {
                break;
            }
        }
        env.tracker
            .compare(heap.take_comparisons() + std::mem::take(&mut extra_cmp));
    }
    if let Some(f) = current_file.take() {
        runs.push(Run {
            reader: f.into_reader()?,
        });
    }
    env.tracker.compare(heap.take_comparisons() + extra_cmp);
    Ok(runs)
}

/// Merge fan-in: one block per input run plus one output block, minimum 2.
pub fn merge_fan_in(mem_blocks: u64) -> usize {
    (mem_blocks.saturating_sub(1)).max(2) as usize
}

/// Merge runs down to a single stream; intermediate passes write new runs,
/// the final pass emits rows directly.
fn merge_runs(mut runs: Vec<Run>, cmp: &RowComparator, env: &OpEnv) -> Result<Vec<Row>> {
    let f = merge_fan_in(env.mem_blocks);
    // Intermediate passes.
    while runs.len() > f {
        let batch: Vec<Run> = runs.drain(..f).collect();
        let mut out = SpillFile::create(env.medium, env.tracker.clone())?;
        merge_into(batch, cmp, env, |row| {
            out.push(row)?;
            Ok(())
        })?;
        runs.push(Run {
            reader: out.into_reader()?,
        });
    }
    // Final pass.
    let mut result = Vec::new();
    merge_into(runs, cmp, env, |row| {
        result.push(row.clone());
        Ok(())
    })?;
    Ok(result)
}

/// Core k-way merge over run readers; `emit` receives rows in order.
fn merge_into(
    runs: Vec<Run>,
    cmp: &RowComparator,
    env: &OpEnv,
    mut emit: impl FnMut(&Row) -> Result<()>,
) -> Result<()> {
    let mut readers: Vec<SpillReader> = runs.into_iter().map(|r| r.reader).collect();
    let mut heap = HeapBy::new(|a: &(Row, usize), b: &(Row, usize)| cmp.compare(&a.0, &b.0));
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some(row) = r.next_row()? {
            heap.push((row, i));
        }
    }
    while let Some((row, i)) = heap.pop() {
        emit(&row)?;
        env.tracker.move_rows(1);
        if let Some(next) = readers[i].next_row()? {
            heap.push((next, i));
        }
    }
    env.tracker.compare(heap.take_comparisons());
    Ok(())
}

/// External sort entry point (runs + merge). Public so HS can externally
/// sort spilled buckets through the same code path.
pub fn external_sort(
    rows: Vec<Row>,
    cmp: &RowComparator,
    env: &OpEnv,
    ledger: &mut MemoryLedger,
) -> Result<Vec<Row>> {
    if rows.len() <= 1 {
        return Ok(rows);
    }
    ledger.release_all();
    let runs = form_runs(rows, cmp, env, ledger)?;
    ledger.release_all();
    merge_runs(runs, cmp, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, AttrId, OrdElem, SortSpec};
    use wf_storage::BLOCK_SIZE;

    fn cmp_on0() -> RowComparator {
        RowComparator::new(&SortSpec::new(vec![OrdElem::asc(AttrId::new(0))]))
    }

    fn make_rows(n: usize, seed: u64) -> Vec<Row> {
        // Simple LCG keeps the crate free of dev-only rand here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                row![(state >> 33) as i64 % 10_000, "padding-padding-padding"]
            })
            .collect()
    }

    fn assert_sorted(rows: &[Row], cmp: &RowComparator) {
        for w in rows.windows(2) {
            assert_ne!(
                cmp.compare(&w[0], &w[1]),
                Ordering::Greater,
                "rows out of order"
            );
        }
    }

    #[test]
    fn in_memory_path_no_io() {
        let env = OpEnv::with_memory_blocks(1024);
        let rows = make_rows(500, 1);
        let sorted = sort_rows(rows.clone(), &cmp_on0(), &env).unwrap();
        assert_eq!(sorted.len(), rows.len());
        assert_sorted(&sorted, &cmp_on0());
        let s = env.tracker.snapshot();
        assert_eq!(s.io_blocks(), 0, "in-memory sort must not touch the device");
        assert!(s.comparisons > 0);
    }

    #[test]
    fn external_path_sorts_and_charges_io() {
        // ~40 rows per block; 4000 rows ≈ 100+ blocks against a 4-block M.
        let env = OpEnv::with_memory_blocks(4);
        let rows = make_rows(4000, 2);
        let sorted = sort_rows(rows.clone(), &cmp_on0(), &env).unwrap();
        assert_eq!(sorted.len(), rows.len());
        assert_sorted(&sorted, &cmp_on0());
        let s = env.tracker.snapshot();
        assert!(s.blocks_written > 0);
        assert!(
            s.blocks_read >= s.blocks_written,
            "every written block is read back"
        );
    }

    #[test]
    fn external_sort_is_multiset_preserving() {
        let env = OpEnv::with_memory_blocks(2);
        let rows = make_rows(1500, 3);
        let mut expected: Vec<i64> = rows
            .iter()
            .map(|r| r.get(AttrId::new(0)).as_int().unwrap())
            .collect();
        expected.sort_unstable();
        let sorted = sort_rows(rows, &cmp_on0(), &env).unwrap();
        let got: Vec<i64> = sorted
            .iter()
            .map(|r| r.get(AttrId::new(0)).as_int().unwrap())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn replacement_selection_runs_are_about_2m() {
        // Sorted-ish input would give one run; random gives ~2M runs.
        let env = OpEnv::with_memory_blocks(4);
        let rows = make_rows(4000, 4);
        let bytes: usize = rows.iter().map(Row::encoded_len).sum();
        let blocks = bytes.div_ceil(BLOCK_SIZE) as u64;
        let mut ledger = env.ledger().unwrap();
        let runs = form_runs(rows, &cmp_on0(), &env, &mut ledger).unwrap();
        // Expected ≈ B / 2M, allow generous slack either way.
        let expected = blocks.div_ceil(2 * env.mem_blocks);
        assert!(
            (runs.len() as u64) <= expected * 2 && (runs.len() as u64) >= expected / 2,
            "runs={} expected≈{}",
            runs.len(),
            expected
        );
    }

    #[test]
    fn presorted_input_forms_single_run() {
        let env = OpEnv::with_memory_blocks(4);
        let mut rows = make_rows(3000, 5);
        rows.sort_by(|a, b| cmp_on0().compare(a, b));
        let mut ledger = env.ledger().unwrap();
        let runs = form_runs(rows, &cmp_on0(), &env, &mut ledger).unwrap();
        assert_eq!(
            runs.len(),
            1,
            "replacement selection turns sorted input into one run"
        );
    }

    #[test]
    fn tiny_memory_still_sorts() {
        let env = OpEnv::with_memory_blocks(1);
        let rows = make_rows(800, 6);
        let sorted = sort_rows(rows, &cmp_on0(), &env).unwrap();
        assert_sorted(&sorted, &cmp_on0());
        assert_eq!(sorted.len(), 800);
    }

    #[test]
    fn empty_and_single_inputs() {
        let env = OpEnv::with_memory_blocks(2);
        assert!(sort_rows(vec![], &cmp_on0(), &env).unwrap().is_empty());
        let one = sort_rows(vec![row![42, "x"]], &cmp_on0(), &env).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn duplicates_preserved() {
        let env = OpEnv::with_memory_blocks(1);
        let rows: Vec<Row> = (0..1000)
            .map(|i| row![i % 3, "padpadpadpadpadpad"])
            .collect();
        let sorted = sort_rows(rows, &cmp_on0(), &env).unwrap();
        assert_eq!(sorted.len(), 1000);
        let zeros = sorted
            .iter()
            .filter(|r| r.get(AttrId::new(0)).as_int() == Some(0))
            .count();
        assert!((333..=334).contains(&zeros));
        assert_sorted(&sorted, &cmp_on0());
    }

    #[test]
    fn merge_fan_in_floor() {
        assert_eq!(merge_fan_in(1), 2);
        assert_eq!(merge_fan_in(2), 2);
        assert_eq!(merge_fan_in(3), 2);
        assert_eq!(merge_fan_in(10), 9);
    }

    #[test]
    fn more_memory_means_fewer_or_equal_io_blocks() {
        let rows = make_rows(6000, 7);
        let env_small = OpEnv::with_memory_blocks(2);
        let env_large = OpEnv::with_memory_blocks(64);
        sort_rows(rows.clone(), &cmp_on0(), &env_small).unwrap();
        sort_rows(rows, &cmp_on0(), &env_large).unwrap();
        let small = env_small.tracker.snapshot().io_blocks();
        let large = env_large.tracker.snapshot().io_blocks();
        assert!(
            large <= small,
            "large-M I/O ({large}) must not exceed small-M I/O ({small})"
        );
    }
}
