//! The shared sort machinery: in-memory sorts with comparison counting and
//! the external merge sort used by FS (whole relation), HS (oversized
//! buckets) and SS (oversized units).
//!
//! External sort follows the paper's cost-model assumptions (§3.4): run
//! formation by **replacement selection** (expected run length `2M`) and
//! **F-way merge** where `F` is bounded by the memory budget, iterating
//! until a single run remains. The final merge streams its output without
//! writing it back, which is why Eq. 1 charges `2·B·(⌈log_F(B/2M)⌉ + 1)`
//! including the output but not the input read.
//!
//! **Streaming inputs.** Run formation consumes a row *iterator*, not a
//! buffered `Vec<Row>`: [`sort_stream_to_handle`] feeds rows straight from
//! upstream segment readers into the replacement-selection heap and emits
//! the final merge into a [`wf_storage::SegmentStore`] builder, so a
//! blocking sort's resident set is `M` plus the pool budget — never the
//! relation. The `Vec` entry point [`sort_rows`] remains for unit sorts and
//! makes the identical in-memory/external decision (accumulating rows
//! against the ledger overflows exactly when the total exceeds `M`), so
//! both paths charge bit-identical counters on the same input.
//!
//! **Normalized keys.** Every sort path compares rows through a
//! [`SortKey`], which pairs the [`RowComparator`] with a
//! [`wf_common::KeyNormalizer`]. When the environment enables
//! `norm_keys` (the default), each row's sort key is encoded once into a
//! byte-comparable buffer and every subsequent comparison is a `memcmp` —
//! the byte order is proven equal to the comparator order, so outputs,
//! comparison *counts* and spill I/O are bit-identical to the comparator
//! path (a row whose key cannot be normalized simply falls back to the
//! comparator for its comparisons). Keys carried through the external-sort
//! heaps are stored in a **fixed-width inline buffer** (`InlineKey`) when
//! they fit (the common case: a handful of numeric key columns), so keying
//! a row costs zero heap allocations; only oversized keys spill to a
//! `Vec<u8>`. Run spills **carry their keys** (`SpillFile::push_keyed`):
//! merge read-back rebuilds each heap entry from the stored bytes instead
//! of re-normalizing, so a row's key is encoded exactly once per sort, and
//! the keyed codec's modeled-byte accounting keeps block counters identical
//! to a plain row file. The in-memory sort is an **LSD radix sort** over
//! 8-byte big-endian key prefixes (comparator fallback for non-normalizable
//! inputs, full-key resolution for prefix ties) with the row index as the
//! final tie-break — stable output, no merge buffer, and in the common case
//! no comparator dispatch at all. Its comparison charge is the model's
//! deterministic `n·⌈log₂n⌉` in every configuration.
//!
//! **Stability.** Every sort path is **stable**: the in-memory sort breaks
//! ties on the original index, replacement selection breaks heap ties on
//! arrival order (tied keys are never demoted to a later run, so runs hold
//! ties in arrival order and later runs hold later ties), and the merges
//! break ties on run formation rank. The engine's sorted output is
//! therefore a deterministic function of the input order alone — the same
//! rows in the same order at any `M`, which is the property that lets the
//! parallel scheduler (`crate::scheduler`) sort disjoint shards
//! independently and reassemble the exact serial output by ordered merge.
//! The tie-breaks ride on comparisons that were already charged, so
//! comparison *counts* stay the model's.
//!
//! **Boundary recording.** The sorted output visits every adjacent row pair
//! anyway, so FS/HS record partition-boundary layers *for free* during the
//! final merge (or the in-memory output scan): [`sort_stream_to_handle`]
//! takes the attribute-set prefixes to watch and returns a
//! [`SegmentBounds`] with one layer per prefix — the §3.3/§3.5 matched-
//! prefix layers a downstream window step starts from without re-deriving.
//! The equality checks are metadata derivation piggybacked on rows the
//! merge already moved; like key encoding they never enter modeled time.

use crate::env::OpEnv;
use crate::segment::SegmentBounds;
use crate::util::HeapBy;
use std::cmp::Ordering;
use wf_common::{AttrSet, KeyNormalizer, Result, Row, RowComparator, SortSpec};
use wf_storage::{IoMeter, MemoryLedger, SegmentHandle, SpillFile, SpillReader};

/// A sort key: the comparator plus the normalized-key encoder for the same
/// specification. Build once per operator, share across segments.
#[derive(Clone)]
pub struct SortKey {
    cmp: RowComparator,
    norm: KeyNormalizer,
}

impl SortKey {
    /// Key machinery for `spec`.
    pub fn new(spec: &SortSpec) -> Self {
        SortKey {
            cmp: RowComparator::new(spec),
            norm: KeyNormalizer::new(spec),
        }
    }

    /// The underlying comparator (boundary detection, tests).
    pub fn comparator(&self) -> &RowComparator {
        &self.cmp
    }
}

/// Inline capacity of a carried normalized key. 23 bytes + 1 length byte
/// keeps the enum at 24 bytes and covers two numeric key columns (9 bytes
/// each) with room to spare; longer keys (strings, wide composites) fall
/// back to one heap allocation.
const INLINE_KEY_CAP: usize = 23;

/// A normalized sort key as carried through the external-sort heaps:
/// fixed-width inline storage for small keys, heap fallback for large ones.
/// Replaces the one-`Vec<u8>`-per-keyed-row allocation the heaps used to
/// make (see the fig3 microbench's allocation counts).
pub(crate) enum InlineKey {
    Inline { len: u8, buf: [u8; INLINE_KEY_CAP] },
    Heap(Vec<u8>),
}

impl InlineKey {
    fn from_slice(s: &[u8]) -> Self {
        if s.len() <= INLINE_KEY_CAP {
            let mut buf = [0u8; INLINE_KEY_CAP];
            buf[..s.len()].copy_from_slice(s);
            InlineKey::Inline {
                len: s.len() as u8,
                buf,
            }
        } else {
            InlineKey::Heap(s.to_vec())
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            InlineKey::Inline { len, buf } => &buf[..*len as usize],
            InlineKey::Heap(v) => v,
        }
    }
}

/// A row with its (optional) normalized key, as carried through the
/// external-sort heaps.
struct KeyedRow {
    key: Option<InlineKey>,
    row: Row,
}

impl KeyedRow {
    /// Key `row`, encoding through `scratch` (reused across rows so small
    /// keys never allocate).
    fn new(row: Row, sk: &SortKey, env: &OpEnv, scratch: &mut Vec<u8>) -> Self {
        let key = if env.norm_keys {
            scratch.clear();
            if sk.norm.encode_into(&row, scratch) {
                env.tracker.encode_keys(1);
                Some(InlineKey::from_slice(scratch))
            } else {
                None
            }
        } else {
            None
        };
        KeyedRow { key, row }
    }

    /// Rebuild a keyed row from a key persisted alongside it in a spilled
    /// run ("normalized keys, phase 2"): read-back reuses the bytes written
    /// at run formation, so no re-encode happens and no `encode_keys` is
    /// charged — each row's key is now encoded exactly once per sort.
    fn from_stored(key: Option<Vec<u8>>, row: Row) -> Self {
        KeyedRow {
            key: key.map(|k| InlineKey::from_slice(&k)),
            row,
        }
    }

    /// Byte comparison when both sides are normalized, comparator
    /// otherwise. Both define the same total order, so mixing is sound.
    #[inline]
    fn compare(&self, other: &KeyedRow, cmp: &RowComparator) -> Ordering {
        match (&self.key, &other.key) {
            (Some(a), Some(b)) => a.as_slice().cmp(b.as_slice()),
            _ => cmp.compare(&self.row, &other.row),
        }
    }
}

/// Sort a slice in memory, charging the model's `n·⌈log₂n⌉` comparisons.
///
/// Two backends produce the identical stable permutation:
///
/// * **LSD radix** (taken whenever every row's key normalized): stable
///   counting-sort passes over the 8-byte big-endian key prefix, least
///   significant byte first, skipping bytes that are uniform across the
///   input; equal-prefix runs (keys longer than the prefix, or genuinely
///   tied) are resolved by the full arena slices with the original index as
///   the final tie-break. No comparator callbacks at all in the common case.
/// * **Comparator fallback** (normalization off, or any lossy value):
///   `sort_unstable_by` over `(prefix, index)` exactly as before.
///
/// Because the radix backend makes no comparator callbacks, the comparison
/// *charge* is the model's deterministic `n·⌈log₂n⌉` in **every**
/// configuration — the count is a function of `n` alone, so equivalence
/// suites that flip `norm_keys`/`columnar` or swap backends still see
/// bit-identical modeled counters.
pub fn sort_in_memory(rows: &mut [Row], key: &SortKey, env: &OpEnv) {
    let n = rows.len();
    if n <= 1 {
        return;
    }
    // Encode all keys into a shared arena; spans[i] = None → fallback row.
    let (arena, spans) = if env.norm_keys {
        let mut arena: Vec<u8> = Vec::with_capacity(n * 12);
        let mut spans: Vec<Option<(u32, u32)>> = Vec::with_capacity(n);
        let mut encoded = 0u64;
        for row in rows.iter() {
            let start = arena.len() as u32;
            if key.norm.encode_into(row, &mut arena) {
                spans.push(Some((start, arena.len() as u32)));
                encoded += 1;
            } else {
                spans.push(None);
            }
        }
        env.tracker.encode_keys(encoded);
        (arena, spans)
    } else {
        (Vec::new(), vec![None; n])
    };

    // Decorate each index with the key's first 8 bytes (zero-padded,
    // big-endian): the radix backend's digit source, and a register compare
    // for most fallback comparisons. Zero padding is sound: two distinct
    // keys of one spec differ at a byte before either ends, so a padded
    // prefix never contradicts the full comparison — it can only tie.
    let all_encoded = spans.iter().all(Option::is_some);
    let mut perm: Vec<(u64, u32)> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let p = match s {
                Some((start, end)) if all_encoded => {
                    let k = &arena[*start as usize..*end as usize];
                    let mut p = [0u8; 8];
                    let take = k.len().min(8);
                    p[..take].copy_from_slice(&k[..take]);
                    u64::from_be_bytes(p)
                }
                _ => 0,
            };
            (p, i as u32)
        })
        .collect();
    // Model charge: n·⌈log₂n⌉ — deterministic in n so both backends (and
    // every toggle configuration) charge the same comparisons.
    let log2_ceil = (usize::BITS - (n - 1).leading_zeros()) as u64;
    env.tracker.compare(n as u64 * log2_ceil);
    if all_encoded {
        let _span = env
            .trace
            .span_with("sort", || format!("in_memory.radix n={n}"));
        radix_sort_prefixes(&mut perm);
        // Radix is stable and `perm` started in index order, so equal-prefix
        // runs are already index-ordered; only runs whose *full* keys may
        // still differ (key longer than the prefix) need the slice compare.
        let full = |i: u32| {
            let (s, e) = spans[i as usize].expect("all rows encoded on this path");
            &arena[s as usize..e as usize]
        };
        let mut i = 0usize;
        while i < n {
            let mut j = i + 1;
            while j < n && perm[j].0 == perm[i].0 {
                j += 1;
            }
            if j - i > 1 && full(perm[i].1).len() > 8 {
                perm[i..j].sort_unstable_by(|&(_, ia), &(_, ib)| {
                    full(ia).cmp(full(ib)).then(ia.cmp(&ib))
                });
            }
            i = j;
        }
    } else {
        let _span = env
            .trace
            .span_with("sort", || format!("in_memory.comparator n={n}"));
        perm.sort_unstable_by(|&(pa, ia), &(pb, ib)| {
            pa.cmp(&pb)
                .then_with(|| match (spans[ia as usize], spans[ib as usize]) {
                    (Some((sa, ea)), Some((sb, eb))) => {
                        arena[sa as usize..ea as usize].cmp(&arena[sb as usize..eb as usize])
                    }
                    _ => key.cmp.compare(&rows[ia as usize], &rows[ib as usize]),
                })
                .then(ia.cmp(&ib))
        });
    }
    apply_permutation(rows, perm.into_iter().map(|(_, i)| i).collect());
}

/// LSD radix sort of `(prefix, index)` pairs on the 8 prefix bytes: one
/// stable counting-sort pass per byte, least significant first, skipping
/// bytes that are uniform across the input (sorted data's high bytes, short
/// keys' padding). Ping-pongs between two buffers; O(n) per pass.
fn radix_sort_prefixes(perm: &mut [(u64, u32)]) {
    let n = perm.len();
    let mut aux: Vec<(u64, u32)> = vec![(0, 0); n];
    let mut in_perm = true; // which buffer currently holds the data
    for byte in 0..8u32 {
        let shift = byte * 8;
        let src: &[(u64, u32)] = if in_perm { perm } else { &aux };
        let mut counts = [0usize; 256];
        for &(p, _) in src {
            counts[((p >> shift) & 0xFF) as usize] += 1;
        }
        if counts.contains(&n) {
            continue; // every key shares this byte — the pass is a no-op
        }
        let mut sum = 0usize;
        for c in counts.iter_mut() {
            let here = *c;
            *c = sum;
            sum += here;
        }
        // Split borrows: counting-scatter from one buffer into the other.
        if in_perm {
            for &e in perm.iter() {
                let b = ((e.0 >> shift) & 0xFF) as usize;
                aux[counts[b]] = e;
                counts[b] += 1;
            }
        } else {
            for &e in aux.iter() {
                let b = ((e.0 >> shift) & 0xFF) as usize;
                perm[counts[b]] = e;
                counts[b] += 1;
            }
        }
        in_perm = !in_perm;
    }
    if !in_perm {
        perm.copy_from_slice(&aux);
    }
}

/// Rearrange `rows` so that position `i` holds the row previously at
/// `perm[i]` (in-place cycle walk; consumes the permutation).
fn apply_permutation(rows: &mut [Row], mut perm: Vec<u32>) {
    for i in 0..rows.len() {
        if perm[i] as usize == i {
            continue;
        }
        let mut cur = i;
        loop {
            let src = perm[cur] as usize;
            perm[cur] = cur as u32;
            if src == i {
                break;
            }
            rows.swap(cur, src);
            cur = src;
        }
    }
}

/// Sort `rows` under `key` within the environment's memory budget.
///
/// If the rows fit in `M` they are sorted in place with no I/O; otherwise
/// the external path (replacement selection + F-way merge) runs, charging
/// block reads/writes to the tracker. The result is fully sorted either way.
pub fn sort_rows(rows: Vec<Row>, key: &SortKey, env: &OpEnv) -> Result<Vec<Row>> {
    let mut ledger = env.ledger()?;
    let total_bytes: usize = rows.iter().map(Row::encoded_len).sum();
    if ledger.fits(total_bytes) {
        let mut rows = rows;
        sort_in_memory(&mut rows, key, env);
        return Ok(rows);
    }
    external_sort(rows, key, env, &mut ledger)
}

/// Sort a row *stream* under `key` into a store-managed segment handle,
/// never holding more than `M` (sort working memory) plus the pool budget.
///
/// Rows are accumulated against a fresh ledger; if the stream ends within
/// budget the buffered rows are sorted in memory (the identical decision
/// [`sort_rows`] makes from the total byte count), otherwise run formation
/// takes over the not-yet-consumed remainder of the stream. The sorted
/// output goes through the environment's segment store — resident when it
/// fits the pool, spilled when it does not — and `record` names the
/// attribute-set prefixes whose change positions are recorded as boundary
/// layers on the way out (gated on `env.reuse_bounds`; see module docs).
///
/// Returns `(handle, bounds, row count)`.
pub fn sort_stream_to_handle(
    mut rows: impl Iterator<Item = Result<Row>>,
    key: &SortKey,
    env: &OpEnv,
    record: &[AttrSet],
) -> Result<(SegmentHandle, SegmentBounds, usize)> {
    let mut ledger = env.ledger()?;
    let mut buf: Vec<Row> = Vec::new();
    let mut overflow: Option<Row> = None;
    for r in rows.by_ref() {
        let row = r?;
        let bytes = row.encoded_len();
        if ledger.fits(bytes) {
            ledger.charge(bytes);
            buf.push(row);
        } else {
            overflow = Some(row);
            break;
        }
    }
    if overflow.is_none() {
        // Everything fits `M`: in-memory sort, then hand to the store.
        sort_in_memory(&mut buf, key, env);
        let n = buf.len();
        let bounds = record_prefix_layers(&buf, record, env);
        return Ok((env.store.admit(buf)?, bounds, n));
    }
    // External path — the same decision point as `sort_rows`: the total
    // exceeds the budget exactly when accumulation overflowed.
    ledger.release_all();
    let chained = buf.into_iter().chain(overflow).map(Ok).chain(rows.by_ref());
    let runs = form_runs_from(chained, key, env, &mut ledger)?;
    ledger.release_all();
    merge_runs_to_handle(runs, key, env, record)
}

/// Scan `rows` once and record, for every attribute set in `record`, the
/// start positions of its maximal equal runs — the boundary layers a sort
/// can emit for free. Uncharged metadata derivation (see module docs);
/// disabled when boundary reuse is off.
pub(crate) fn record_prefix_layers(rows: &[Row], record: &[AttrSet], env: &OpEnv) -> SegmentBounds {
    let mut bounds = SegmentBounds::none();
    if !env.reuse_bounds || rows.is_empty() {
        return bounds;
    }
    for attrs in record {
        if attrs.is_empty() {
            continue;
        }
        let mut starts = vec![0usize];
        for i in 1..rows.len() {
            if !attrs.iter().all(|a| rows[i - 1].get(a) == rows[i].get(a)) {
                starts.push(i);
            }
        }
        bounds.add_layer(attrs.clone(), starts);
    }
    bounds
}

/// Streaming equivalent of [`record_prefix_layers`] for the final merge:
/// observes rows in output order and accumulates one layer per prefix.
/// Shared with the parallel scheduler's ordered merge, which records the
/// same layers at the same (free) price.
pub(crate) struct PrefixRecorder {
    sets: Vec<(AttrSet, Vec<usize>)>,
    prev: Option<Row>,
    idx: usize,
}

impl PrefixRecorder {
    pub(crate) fn new(record: &[AttrSet], env: &OpEnv) -> Self {
        let sets = if env.reuse_bounds {
            record
                .iter()
                .filter(|a| !a.is_empty())
                .map(|a| (a.clone(), Vec::new()))
                .collect()
        } else {
            Vec::new()
        };
        PrefixRecorder {
            sets,
            prev: None,
            idx: 0,
        }
    }

    pub(crate) fn observe(&mut self, row: &Row) {
        if self.sets.is_empty() {
            return;
        }
        for (attrs, starts) in &mut self.sets {
            let boundary = match &self.prev {
                None => true,
                Some(p) => !attrs.iter().all(|a| p.get(a) == row.get(a)),
            };
            if boundary {
                starts.push(self.idx);
            }
        }
        self.prev = Some(row.clone());
        self.idx += 1;
    }

    pub(crate) fn finish(self) -> SegmentBounds {
        let mut bounds = SegmentBounds::none();
        for (attrs, starts) in self.sets {
            if !starts.is_empty() {
                bounds.add_layer(attrs, starts);
            }
        }
        bounds
    }
}

/// One sorted run on the spill device. `rank` is the run's formation rank
/// (arrival precedence): replacement selection emits tied keys into the
/// earliest-formed run that can take them, so merging ties rank-first
/// reproduces input arrival order. Intermediate merge passes propagate the
/// minimum rank of their inputs.
struct Run {
    reader: SpillReader,
    rank: u64,
}

/// Replacement-selection run formation over a row stream.
///
/// The heap holds as many rows as fit in `M`; each output row is appended to
/// the current run, and an incoming row joins the current run if it does not
/// precede the last row written, otherwise it is tagged for the next run.
/// Random input therefore yields runs of about `2M` (Knuth), matching Eq. 1.
/// Rows are normalized once on entry; heap comparisons are then `memcmp`s.
fn form_runs_from(
    mut input: impl Iterator<Item = Result<Row>>,
    key: &SortKey,
    env: &OpEnv,
    ledger: &mut MemoryLedger,
) -> Result<Vec<Run>> {
    // Covers replacement selection *and* the run writes it interleaves with
    // (the external sort's spill-write phase).
    let _span = env.trace.span("sort", "run_formation");
    let cmp = key.cmp.clone();
    let mut scratch: Vec<u8> = Vec::new();
    // (run_tag, arrival seq, keyed row) ordered by tag, then key, then
    // arrival — the arrival tie-break makes run formation **stable**: tied
    // keys leave the heap in input order (they are never demoted to the
    // next run, so stability within a run is stability overall). A
    // deterministic, M-independent tie order is what lets the parallel
    // scheduler's sharded sorts reassemble the exact serial output.
    let mut heap = HeapBy::new(move |a: &(u64, u64, KeyedRow), b: &(u64, u64, KeyedRow)| {
        match a.0.cmp(&b.0) {
            Ordering::Equal => a.2.compare(&b.2, &cmp).then(a.1.cmp(&b.1)),
            other => other,
        }
    });

    // Fill the heap up to the budget (a single oversized row is force-charged
    // so progress is always possible).
    let mut pending: Option<Row> = None;
    let mut seq = 0u64;
    for r in input.by_ref() {
        let row = r?;
        let bytes = row.encoded_len();
        if heap.is_empty() || ledger.fits(bytes) {
            ledger.charge(bytes);
            heap.push((0, seq, KeyedRow::new(row, key, env, &mut scratch)));
            seq += 1;
            if !ledger.fits(0) {
                break;
            }
        } else {
            pending = Some(row);
            break;
        }
        if ledger.used_bytes() >= ledger.budget_bytes() {
            break;
        }
    }
    drain_heap_with_input(pending, input, heap, seq, key, env, ledger, &mut scratch)
}

#[allow(clippy::too_many_arguments)]
fn drain_heap_with_input(
    mut pending: Option<Row>,
    mut input: impl Iterator<Item = Result<Row>>,
    mut heap: HeapBy<
        (u64, u64, KeyedRow),
        impl FnMut(&(u64, u64, KeyedRow), &(u64, u64, KeyedRow)) -> Ordering,
    >,
    mut seq: u64,
    key: &SortKey,
    env: &OpEnv,
    ledger: &mut MemoryLedger,
    scratch: &mut Vec<u8>,
) -> Result<Vec<Run>> {
    let mut runs: Vec<Run> = Vec::new();
    let mut current_tag = 0u64;
    let mut current_file: Option<SpillFile> = None;
    let mut extra_cmp: u64 = 0;

    while let Some((tag, _, keyed)) = heap.pop() {
        ledger.release(keyed.row.encoded_len());
        if tag != current_tag || current_file.is_none() {
            if let Some(f) = current_file.take() {
                let rank = runs.len() as u64;
                runs.push(Run {
                    reader: f.into_reader()?,
                    rank,
                });
            }
            current_file = Some(SpillFile::with_config(
                &env.spill,
                IoMeter::Model(env.tracker.clone()),
            )?);
            current_tag = tag;
        }
        let file = current_file.as_mut().expect("file just ensured");
        file.push_keyed(keyed.key.as_ref().map(InlineKey::as_slice), &keyed.row)?;
        env.tracker.move_rows(1);
        // `keyed` is now the last tuple written to the current run; incoming
        // tuples that precede it must wait for the next run. Ties join the
        // current run (preserving stability).
        loop {
            let next = match pending.take() {
                Some(r) => Some(r),
                None => input.next().transpose()?,
            };
            let Some(next) = next else { break };
            let bytes = next.encoded_len();
            if !ledger.fits(bytes) && !heap.is_empty() {
                pending = Some(next);
                break;
            }
            ledger.charge(bytes);
            extra_cmp += 1;
            let next = KeyedRow::new(next, key, env, scratch);
            let tag_for_next = if next.compare(&keyed, &key.cmp) == Ordering::Less {
                current_tag + 1
            } else {
                current_tag
            };
            heap.push((tag_for_next, seq, next));
            seq += 1;
            if !ledger.fits(0) {
                break;
            }
        }
        env.tracker
            .compare(heap.take_comparisons() + std::mem::take(&mut extra_cmp));
    }
    if let Some(f) = current_file.take() {
        let rank = runs.len() as u64;
        runs.push(Run {
            reader: f.into_reader()?,
            rank,
        });
    }
    env.tracker.compare(heap.take_comparisons() + extra_cmp);
    Ok(runs)
}

/// Merge fan-in: one block per input run plus one output block, minimum 2.
pub fn merge_fan_in(mem_blocks: u64) -> usize {
    (mem_blocks.saturating_sub(1)).max(2) as usize
}

/// Reduce `runs` to at most one merge fan-in's worth with balanced
/// intermediate passes, **in formation-rank order**: each pass merges
/// adjacent groups of `f` runs into a fresh pass output, so every
/// intermediate run covers a contiguous arrival interval and the min-rank
/// tie-break in [`merge_into`] stays faithful to arrival order at every
/// level. (Appending merged runs back onto the same work list would let a
/// later batch mix non-contiguous ranks — e.g. `[run 4, merged(0,1)]`
/// carrying min-rank 0 — which breaks ties differently per fan-in and
/// makes the tie order depend on `M`.)
fn reduce_runs(mut runs: Vec<Run>, key: &SortKey, env: &OpEnv) -> Result<Vec<Run>> {
    let f = merge_fan_in(env.mem_blocks);
    while runs.len() > f {
        // One span per intermediate pass: each reads every remaining run
        // back from the spill device and writes the merged outputs to it.
        let n_runs = runs.len();
        let _span = env
            .trace
            .span_with("sort", || format!("merge_pass runs={n_runs} fan_in={f}"));
        let mut next: Vec<Run> = Vec::with_capacity(runs.len().div_ceil(f));
        let mut iter = runs.into_iter().peekable();
        while iter.peek().is_some() {
            let batch: Vec<Run> = iter.by_ref().take(f).collect();
            if batch.len() == 1 {
                next.extend(batch);
                continue;
            }
            let rank = batch.iter().map(|r| r.rank).min().unwrap_or(0);
            let mut out = SpillFile::with_config(&env.spill, IoMeter::Model(env.tracker.clone()))?;
            merge_into(batch, key, env, |key, row| {
                out.push_keyed(key, row)?;
                Ok(())
            })?;
            next.push(Run {
                reader: out.into_reader()?,
                rank,
            });
        }
        runs = next;
    }
    Ok(runs)
}

/// Merge runs down to a single materialized stream; intermediate passes
/// write new runs, the final pass emits rows directly.
fn merge_runs(runs: Vec<Run>, key: &SortKey, env: &OpEnv) -> Result<Vec<Row>> {
    let runs = reduce_runs(runs, key, env)?;
    let _span = env.trace.span("sort", "final_merge");
    let mut result = Vec::new();
    merge_into(runs, key, env, |_, row| {
        result.push(row.clone());
        Ok(())
    })?;
    Ok(result)
}

/// Like [`merge_runs`] but the final pass streams into a segment-store
/// builder (bounded residency) and records boundary layers on the way.
fn merge_runs_to_handle(
    runs: Vec<Run>,
    key: &SortKey,
    env: &OpEnv,
    record: &[AttrSet],
) -> Result<(SegmentHandle, SegmentBounds, usize)> {
    let runs = reduce_runs(runs, key, env)?;
    let _span = env.trace.span("sort", "final_merge");
    let mut builder = env.store.builder();
    let mut recorder = PrefixRecorder::new(record, env);
    let mut n = 0usize;
    merge_into(runs, key, env, |_, row| {
        recorder.observe(row);
        builder.push(row.clone())?;
        n += 1;
        Ok(())
    })?;
    Ok((builder.finish()?, recorder.finish(), n))
}

/// Core k-way merge over run readers; `emit` receives each row in order
/// together with its stored normalized key (so intermediate passes can
/// re-spill the key without re-encoding). Runs carry their keys on the
/// spill device — read-back rebuilds each `KeyedRow` from the stored bytes
/// instead of re-normalizing, and the keyed codec's modeled-byte accounting
/// keeps block counts identical to a plain row file. Ties break by run
/// formation rank: replacement selection puts tied keys into the current
/// run in arrival order (never a later one), so rank order *is* arrival
/// order for ties — the merge preserves the stable total order end to end.
fn merge_into(
    runs: Vec<Run>,
    key: &SortKey,
    env: &OpEnv,
    mut emit: impl FnMut(Option<&[u8]>, &Row) -> Result<()>,
) -> Result<()> {
    let ranks: Vec<u64> = runs.iter().map(|r| r.rank).collect();
    let mut readers: Vec<SpillReader> = runs.into_iter().map(|r| r.reader).collect();
    let cmp = key.cmp.clone();
    let mut heap = HeapBy::new(move |a: &(KeyedRow, usize), b: &(KeyedRow, usize)| {
        a.0.compare(&b.0, &cmp).then(ranks[a.1].cmp(&ranks[b.1]))
    });
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some((stored, row)) = r.next_keyed()? {
            heap.push((KeyedRow::from_stored(stored, row), i));
        }
    }
    while let Some((keyed, i)) = heap.pop() {
        emit(keyed.key.as_ref().map(InlineKey::as_slice), &keyed.row)?;
        env.tracker.move_rows(1);
        if let Some((stored, next)) = readers[i].next_keyed()? {
            heap.push((KeyedRow::from_stored(stored, next), i));
        }
    }
    env.tracker.compare(heap.take_comparisons());
    Ok(())
}

/// K-way ordered merge of already-sorted, store-managed segments into one
/// store-managed segment — the parallel scheduler's reassembly step
/// (`wf_exec::scheduler`). Charges one comparison per heap comparison and
/// one row move per emitted row to the *caller's* tracker (the merge is
/// serial chain work, not worker work), and records boundary layers for
/// the `record` prefixes exactly like the final merge of a serial sort.
/// Ties across inputs break by input index; inputs whose key sets include
/// the shard key never produce such ties, so the merged order equals the
/// serial sort's.
pub(crate) fn merge_sorted_handles(
    handles: Vec<SegmentHandle>,
    key: &SortKey,
    env: &OpEnv,
    record: &[AttrSet],
) -> Result<(SegmentHandle, SegmentBounds, usize)> {
    let n_handles = handles.len();
    let _span = env
        .trace
        .span_with("sort", || format!("merge_handles inputs={n_handles}"));
    let mut readers: Vec<wf_storage::SegmentReader> =
        handles.into_iter().map(|h| h.read()).collect();
    let cmp = key.cmp.clone();
    let mut scratch: Vec<u8> = Vec::new();
    let mut heap = HeapBy::new(move |a: &(KeyedRow, usize), b: &(KeyedRow, usize)| {
        a.0.compare(&b.0, &cmp).then(a.1.cmp(&b.1))
    });
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some(row) = r.next_row()? {
            heap.push((KeyedRow::new(row, key, env, &mut scratch), i));
        }
    }
    let mut builder = env.store.builder();
    let mut recorder = PrefixRecorder::new(record, env);
    let mut n = 0usize;
    while let Some((keyed, i)) = heap.pop() {
        recorder.observe(&keyed.row);
        builder.push(keyed.row)?;
        env.tracker.move_rows(1);
        n += 1;
        if let Some(next) = readers[i].next_row()? {
            heap.push((KeyedRow::new(next, key, env, &mut scratch), i));
        }
    }
    env.tracker.compare(heap.take_comparisons());
    Ok((builder.finish()?, recorder.finish(), n))
}

/// External sort entry point (runs + merge). Public so HS can externally
/// sort spilled buckets through the same code path.
pub fn external_sort(
    rows: Vec<Row>,
    key: &SortKey,
    env: &OpEnv,
    ledger: &mut MemoryLedger,
) -> Result<Vec<Row>> {
    if rows.len() <= 1 {
        return Ok(rows);
    }
    ledger.release_all();
    let runs = form_runs_from(rows.into_iter().map(Ok), key, env, ledger)?;
    ledger.release_all();
    merge_runs(runs, key, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, AttrId, OrdElem, SortSpec};
    use wf_storage::BLOCK_SIZE;

    fn cmp_on0() -> SortKey {
        SortKey::new(&SortSpec::new(vec![OrdElem::asc(AttrId::new(0))]))
    }

    fn make_rows(n: usize, seed: u64) -> Vec<Row> {
        // Simple LCG keeps the crate free of dev-only rand here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                row![(state >> 33) as i64 % 10_000, "padding-padding-padding"]
            })
            .collect()
    }

    fn assert_sorted(rows: &[Row], key: &SortKey) {
        for w in rows.windows(2) {
            assert_ne!(
                key.comparator().compare(&w[0], &w[1]),
                Ordering::Greater,
                "rows out of order"
            );
        }
    }

    fn form_runs(
        rows: Vec<Row>,
        key: &SortKey,
        env: &OpEnv,
        ledger: &mut MemoryLedger,
    ) -> Result<Vec<Run>> {
        form_runs_from(rows.into_iter().map(Ok), key, env, ledger)
    }

    #[test]
    fn in_memory_path_no_io() {
        let env = OpEnv::with_memory_blocks(1024);
        let rows = make_rows(500, 1);
        let sorted = sort_rows(rows.clone(), &cmp_on0(), &env).unwrap();
        assert_eq!(sorted.len(), rows.len());
        assert_sorted(&sorted, &cmp_on0());
        let s = env.tracker.snapshot();
        assert_eq!(s.io_blocks(), 0, "in-memory sort must not touch the device");
        assert!(s.comparisons > 0);
    }

    #[test]
    fn external_path_sorts_and_charges_io() {
        // ~40 rows per block; 4000 rows ≈ 100+ blocks against a 4-block M.
        let env = OpEnv::with_memory_blocks(4);
        let rows = make_rows(4000, 2);
        let sorted = sort_rows(rows.clone(), &cmp_on0(), &env).unwrap();
        assert_eq!(sorted.len(), rows.len());
        assert_sorted(&sorted, &cmp_on0());
        let s = env.tracker.snapshot();
        assert!(s.blocks_written > 0);
        assert!(
            s.blocks_read >= s.blocks_written,
            "every written block is read back"
        );
    }

    #[test]
    fn external_sort_is_multiset_preserving() {
        let env = OpEnv::with_memory_blocks(2);
        let rows = make_rows(1500, 3);
        let mut expected: Vec<i64> = rows
            .iter()
            .map(|r| r.get(AttrId::new(0)).as_int().unwrap())
            .collect();
        expected.sort_unstable();
        let sorted = sort_rows(rows, &cmp_on0(), &env).unwrap();
        let got: Vec<i64> = sorted
            .iter()
            .map(|r| r.get(AttrId::new(0)).as_int().unwrap())
            .collect();
        assert_eq!(got, expected);
    }

    /// Tie order is stable (arrival order) and independent of `M` — even
    /// when a small fan-in forces multi-level intermediate merges. The
    /// payload column distinguishes tied keys, so any rank-propagation
    /// slip in the merge cascade shows up as a row-order diff.
    #[test]
    fn external_sort_tie_order_is_m_independent() {
        let mut state = 7u64;
        let rows: Vec<Row> = (0..4000)
            .map(|i: i64| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                row![((state >> 33) % 40) as i64, i, "padding-padding-padding"]
            })
            .collect();
        let reference =
            sort_rows(rows.clone(), &cmp_on0(), &OpEnv::with_memory_blocks(1024)).unwrap();
        // In-memory reference is stable by construction: ties in arrival order.
        for w in reference.windows(2) {
            if w[0].get(AttrId::new(0)) == w[1].get(AttrId::new(0)) {
                assert!(
                    w[0].get(AttrId::new(1)).as_int().unwrap()
                        < w[1].get(AttrId::new(1)).as_int().unwrap(),
                    "reference must be stable"
                );
            }
        }
        for m in [1u64, 2, 3, 4, 7] {
            let sorted =
                sort_rows(rows.clone(), &cmp_on0(), &OpEnv::with_memory_blocks(m)).unwrap();
            assert_eq!(sorted, reference, "M={m}");
        }
    }

    #[test]
    fn replacement_selection_runs_are_about_2m() {
        // Sorted-ish input would give one run; random gives ~2M runs.
        let env = OpEnv::with_memory_blocks(4);
        let rows = make_rows(4000, 4);
        let bytes: usize = rows.iter().map(Row::encoded_len).sum();
        let blocks = bytes.div_ceil(BLOCK_SIZE) as u64;
        let mut ledger = env.ledger().unwrap();
        let runs = form_runs(rows, &cmp_on0(), &env, &mut ledger).unwrap();
        // Expected ≈ B / 2M, allow generous slack either way.
        let expected = blocks.div_ceil(2 * env.mem_blocks);
        assert!(
            (runs.len() as u64) <= expected * 2 && (runs.len() as u64) >= expected / 2,
            "runs={} expected≈{}",
            runs.len(),
            expected
        );
    }

    #[test]
    fn presorted_input_forms_single_run() {
        let env = OpEnv::with_memory_blocks(4);
        let mut rows = make_rows(3000, 5);
        rows.sort_by(|a, b| cmp_on0().comparator().compare(a, b));
        let mut ledger = env.ledger().unwrap();
        let runs = form_runs(rows, &cmp_on0(), &env, &mut ledger).unwrap();
        assert_eq!(
            runs.len(),
            1,
            "replacement selection turns sorted input into one run"
        );
    }

    #[test]
    fn tiny_memory_still_sorts() {
        let env = OpEnv::with_memory_blocks(1);
        let rows = make_rows(800, 6);
        let sorted = sort_rows(rows, &cmp_on0(), &env).unwrap();
        assert_sorted(&sorted, &cmp_on0());
        assert_eq!(sorted.len(), 800);
    }

    #[test]
    fn empty_and_single_inputs() {
        let env = OpEnv::with_memory_blocks(2);
        assert!(sort_rows(vec![], &cmp_on0(), &env).unwrap().is_empty());
        let one = sort_rows(vec![row![42, "x"]], &cmp_on0(), &env).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn duplicates_preserved() {
        let env = OpEnv::with_memory_blocks(1);
        let rows: Vec<Row> = (0..1000)
            .map(|i| row![i % 3, "padpadpadpadpadpad"])
            .collect();
        let sorted = sort_rows(rows, &cmp_on0(), &env).unwrap();
        assert_eq!(sorted.len(), 1000);
        let zeros = sorted
            .iter()
            .filter(|r| r.get(AttrId::new(0)).as_int() == Some(0))
            .count();
        assert!((333..=334).contains(&zeros));
        assert_sorted(&sorted, &cmp_on0());
    }

    #[test]
    fn merge_fan_in_floor() {
        assert_eq!(merge_fan_in(1), 2);
        assert_eq!(merge_fan_in(2), 2);
        assert_eq!(merge_fan_in(3), 2);
        assert_eq!(merge_fan_in(10), 9);
    }

    #[test]
    fn more_memory_means_fewer_or_equal_io_blocks() {
        let rows = make_rows(6000, 7);
        let env_small = OpEnv::with_memory_blocks(2);
        let env_large = OpEnv::with_memory_blocks(64);
        sort_rows(rows.clone(), &cmp_on0(), &env_small).unwrap();
        sort_rows(rows, &cmp_on0(), &env_large).unwrap();
        let small = env_small.tracker.snapshot().io_blocks();
        let large = env_large.tracker.snapshot().io_blocks();
        assert!(
            large <= small,
            "large-M I/O ({large}) must not exceed small-M I/O ({small})"
        );
    }

    /// The streaming entry point makes the same in-memory/external decision
    /// and charges the same modeled counters as the `Vec` entry point.
    #[test]
    fn stream_and_vec_sorts_charge_identical_counters() {
        for (n, mem) in [(400usize, 1024u64), (4000, 4), (1500, 2)] {
            let rows = make_rows(n, 8);
            let env_vec = OpEnv::with_memory_blocks(mem);
            let sorted_vec = sort_rows(rows.clone(), &cmp_on0(), &env_vec).unwrap();

            let env_stream = OpEnv::with_memory_blocks(mem);
            let (handle, _, count) =
                sort_stream_to_handle(rows.into_iter().map(Ok), &cmp_on0(), &env_stream, &[])
                    .unwrap();
            assert_eq!(count, n);
            let sorted_stream = handle.into_rows().unwrap();
            assert_eq!(sorted_vec, sorted_stream, "n={n} M={mem}");
            assert_eq!(
                env_vec.tracker.snapshot().modeled_counters(),
                env_stream.tracker.snapshot().modeled_counters(),
                "n={n} M={mem}"
            );
        }
    }

    /// Boundary recording marks exactly the prefix-change positions of the
    /// sorted output, on both the in-memory and external paths.
    #[test]
    fn recorded_layers_match_output_runs() {
        let spec = SortSpec::new(vec![
            OrdElem::asc(AttrId::new(0)),
            OrdElem::asc(AttrId::new(1)),
        ]);
        let sk = SortKey::new(&spec);
        let wpk = AttrSet::from_iter([AttrId::new(0)]);
        for mem in [1024u64, 2] {
            let rows: Vec<Row> = (0..1000)
                .map(|i| row![(i % 7) as i64, ((i * 31) % 11) as i64, "pad-pad-pad-pad"])
                .collect();
            let env = OpEnv::with_memory_blocks(mem);
            let (handle, bounds, _) = sort_stream_to_handle(
                rows.into_iter().map(Ok),
                &sk,
                &env,
                std::slice::from_ref(&wpk),
            )
            .unwrap();
            let sorted = handle.into_rows().unwrap();
            let layer = bounds
                .layers()
                .iter()
                .find(|l| l.attrs == wpk)
                .expect("wpk layer recorded");
            let mut expect = vec![0usize];
            for i in 1..sorted.len() {
                if sorted[i - 1].get(AttrId::new(0)) != sorted[i].get(AttrId::new(0)) {
                    expect.push(i);
                }
            }
            assert_eq!(layer.starts, expect, "M={mem}");
        }
    }

    /// SplitMix64 — independent streams per seed, good avalanche; drives
    /// the adversarial-value generators below.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Rows whose sort keys hit every normalization edge: NaN and ±0.0
    /// floats, empty strings and strings containing NUL bytes, ints beyond
    /// 2^53 (lossy under an f64 cast, so normalization refuses them and the
    /// whole sort falls back to the comparator), NULLs, and plain values.
    fn adversarial_rows(n: usize, seed: u64, include_lossy: bool) -> Vec<Row> {
        use wf_common::Value;
        let mut st = seed;
        (0..n)
            .map(|_| {
                let r = splitmix64(&mut st);
                let v = match r % 12 {
                    0 => Value::Float(f64::NAN),
                    1 => Value::Float(0.0),
                    2 => Value::Float(-0.0),
                    3 => Value::Str("".into()),
                    4 => Value::Str("a\0b".into()),
                    5 => Value::Str("\0".into()),
                    6 if include_lossy => Value::Int((1i64 << 53) + 1 + (r >> 32) as i64),
                    7 => Value::Null,
                    8 => Value::Float(((r >> 16) as i64 as f64) / 7.0),
                    9 => Value::Str(format!("s{}", r % 50).into()),
                    _ => Value::Int((r % 1000) as i64 - 500),
                };
                Row::new(vec![v, Value::Int((splitmix64(&mut st) % 97) as i64)])
            })
            .collect()
    }

    /// The radix backend (normalized keys) and the comparator backend must
    /// produce the identical stable order and identical modeled counters on
    /// adversarial key distributions — including inputs where a lossy int
    /// forces the whole sort onto the comparator path.
    #[test]
    fn radix_matches_comparator_on_adversarial_values() {
        let spec = SortSpec::new(vec![
            OrdElem::asc(AttrId::new(0)),
            OrdElem::desc(AttrId::new(1)),
        ]);
        let sk = SortKey::new(&spec);
        for (seed, include_lossy) in [(11u64, false), (12, true), (13, false), (14, true)] {
            for mem in [1024u64, 3] {
                let rows = adversarial_rows(1200, seed, include_lossy);
                let env_norm = OpEnv::with_memory_blocks(mem);
                let env_cmp = env_norm.with_toggles(false, true);
                let a = sort_rows(rows.clone(), &sk, &env_norm).unwrap();
                let b = sort_rows(rows, &sk, &env_cmp).unwrap();
                assert_eq!(a, b, "seed={seed} lossy={include_lossy} M={mem}");
                assert_eq!(
                    env_norm.tracker.snapshot().modeled_counters(),
                    env_cmp.tracker.snapshot().modeled_counters(),
                    "seed={seed} lossy={include_lossy} M={mem}"
                );
            }
        }
    }

    /// The in-memory comparison charge is the deterministic `n·⌈log₂n⌉`
    /// regardless of backend or key distribution.
    #[test]
    fn in_memory_comparison_charge_is_the_model_formula() {
        for n in [2usize, 3, 4, 500, 1000] {
            let expected = n as u64 * (usize::BITS - (n - 1).leading_zeros()) as u64;
            for norm in [true, false] {
                let env = OpEnv::with_memory_blocks(1 << 20).with_toggles(norm, true);
                let mut rows = make_rows(n, n as u64);
                sort_in_memory(&mut rows, &cmp_on0(), &env);
                assert_eq!(
                    env.tracker.snapshot().comparisons,
                    expected,
                    "n={n} norm={norm}"
                );
            }
        }
    }

    /// Stability under the radix backend: rows with equal keys keep input
    /// order, including keys that tie only in the 8-byte prefix.
    #[test]
    fn radix_sort_is_stable() {
        // Key 9 bytes (int column): values differing only in the low byte
        // share the 8-byte prefix, so the full-key resolve pass runs.
        let rows: Vec<Row> = (0..800).map(|i| row![(i % 5) as i64, i as i64]).collect();
        let env = OpEnv::with_memory_blocks(1 << 20);
        let mut sorted = rows.clone();
        sort_in_memory(&mut sorted, &cmp_on0(), &env);
        let mut expect = rows;
        expect.sort_by(|a, b| {
            a.get(AttrId::new(0))
                .as_int()
                .cmp(&b.get(AttrId::new(0)).as_int())
        });
        assert_eq!(sorted, expect, "stable sort must preserve arrival order");
    }

    /// External runs carry their normalized keys to the spill device and
    /// back; outputs and modeled counters still match the comparator path.
    #[test]
    fn keyed_runs_round_trip_through_external_sort() {
        let spec = SortSpec::new(vec![OrdElem::asc(AttrId::new(0))]);
        let sk = SortKey::new(&spec);
        let rows = adversarial_rows(3000, 21, false);
        let env_norm = OpEnv::with_memory_blocks(2);
        let env_cmp = env_norm.with_toggles(false, true);
        let a = sort_rows(rows.clone(), &sk, &env_norm).unwrap();
        let b = sort_rows(rows, &sk, &env_cmp).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            env_norm.tracker.snapshot().modeled_counters(),
            env_cmp.tracker.snapshot().modeled_counters(),
            "key-carrying spills must not change modeled I/O"
        );
    }

    #[test]
    fn inline_key_round_trips() {
        let small = InlineKey::from_slice(&[1, 2, 3]);
        assert_eq!(small.as_slice(), &[1, 2, 3]);
        assert!(matches!(small, InlineKey::Inline { .. }));
        let big_bytes: Vec<u8> = (0..100).collect();
        let big = InlineKey::from_slice(&big_bytes);
        assert_eq!(big.as_slice(), big_bytes.as_slice());
        assert!(matches!(big, InlineKey::Heap(_)));
        // Boundary: exactly the inline capacity stays inline.
        let edge = InlineKey::from_slice(&[7u8; INLINE_KEY_CAP]);
        assert!(matches!(edge, InlineKey::Inline { .. }));
    }
}
