//! The shared sort machinery: in-memory sorts with comparison counting and
//! the external merge sort used by FS (whole relation), HS (oversized
//! buckets) and SS (oversized units).
//!
//! External sort follows the paper's cost-model assumptions (§3.4): run
//! formation by **replacement selection** (expected run length `2M`) and
//! **F-way merge** where `F` is bounded by the memory budget, iterating
//! until a single run remains. The final merge streams its output without
//! writing it back, which is why Eq. 1 charges `2·B·(⌈log_F(B/2M)⌉ + 1)`
//! including the output but not the input read.
//!
//! **Normalized keys.** Every sort path compares rows through a
//! [`SortKey`], which pairs the [`RowComparator`] with a
//! [`wf_common::KeyNormalizer`]. When the environment enables
//! `norm_keys` (the default), each row's sort key is encoded once into a
//! byte-comparable buffer and every subsequent comparison is a `memcmp` —
//! the byte order is proven equal to the comparator order, so outputs,
//! comparison *counts* and spill I/O are bit-identical to the comparator
//! path (a row whose key cannot be normalized simply falls back to the
//! comparator for its comparisons). The in-memory sort runs
//! `sort_unstable_by` over `(key, row-index)` with the index as the final
//! tie-break, which preserves the stable-sort semantics the operators rely
//! on while avoiding the merge sort's allocation.

use crate::env::OpEnv;
use crate::util::HeapBy;
use std::cmp::Ordering;
use wf_common::{KeyNormalizer, Result, Row, RowComparator, SortSpec};
use wf_storage::{MemoryLedger, SpillFile, SpillReader};

/// A sort key: the comparator plus the normalized-key encoder for the same
/// specification. Build once per operator, share across segments.
#[derive(Clone)]
pub struct SortKey {
    cmp: RowComparator,
    norm: KeyNormalizer,
}

impl SortKey {
    /// Key machinery for `spec`.
    pub fn new(spec: &SortSpec) -> Self {
        SortKey {
            cmp: RowComparator::new(spec),
            norm: KeyNormalizer::new(spec),
        }
    }

    /// The underlying comparator (boundary detection, tests).
    pub fn comparator(&self) -> &RowComparator {
        &self.cmp
    }

    /// Encode `row`'s normalized key, charging the encode to the tracker.
    /// `None` when normalization is disabled in `env` or the row holds a
    /// non-normalizable value — comparisons then dispatch through the
    /// comparator, which is order-consistent with the byte keys.
    fn encode(&self, row: &Row, env: &OpEnv) -> Option<Vec<u8>> {
        if !env.norm_keys {
            return None;
        }
        let key = self.norm.encode(row)?;
        env.tracker.encode_keys(1);
        Some(key)
    }
}

/// A row with its (optional) normalized key, as carried through the
/// external-sort heaps.
struct KeyedRow {
    key: Option<Vec<u8>>,
    row: Row,
}

impl KeyedRow {
    fn new(row: Row, sk: &SortKey, env: &OpEnv) -> Self {
        KeyedRow {
            key: sk.encode(&row, env),
            row,
        }
    }

    /// Byte comparison when both sides are normalized, comparator
    /// otherwise. Both define the same total order, so mixing is sound.
    #[inline]
    fn compare(&self, other: &KeyedRow, cmp: &RowComparator) -> Ordering {
        match (&self.key, &other.key) {
            (Some(a), Some(b)) => a.cmp(b),
            _ => cmp.compare(&self.row, &other.row),
        }
    }
}

/// Sort a slice in memory, charging one comparison per key comparison.
///
/// The sort is `sort_unstable_by` over a permutation of row indices with
/// the original index as the final tie-break — stable output, no merge
/// buffer. Normalized keys live in one arena; rows whose keys failed to
/// normalize compare through the comparator (same order, so the sequence of
/// orderings — and therefore the comparison count — is identical whether
/// normalization is on, off, or partial).
pub fn sort_in_memory(rows: &mut [Row], key: &SortKey, env: &OpEnv) {
    let n = rows.len();
    if n <= 1 {
        return;
    }
    // Encode all keys into a shared arena; spans[i] = None → fallback row.
    let (arena, spans) = if env.norm_keys {
        let mut arena: Vec<u8> = Vec::with_capacity(n * 12);
        let mut spans: Vec<Option<(u32, u32)>> = Vec::with_capacity(n);
        let mut encoded = 0u64;
        for row in rows.iter() {
            let start = arena.len() as u32;
            if key.norm.encode_into(row, &mut arena) {
                spans.push(Some((start, arena.len() as u32)));
                encoded += 1;
            } else {
                spans.push(None);
            }
        }
        env.tracker.encode_keys(encoded);
        (arena, spans)
    } else {
        (Vec::new(), vec![None; n])
    };

    // Decorate each index with the key's first 8 bytes (zero-padded,
    // big-endian) so most comparisons resolve on a register compare; ties
    // fall through to the full arena slices. Zero padding is sound: two
    // distinct keys of one spec differ at a byte before either ends, so a
    // padded prefix never contradicts the full comparison — it can only
    // tie. When any row lacks a key (normalization off or a lossy value),
    // every prefix is 0 and all pairs fall through — the decorated element
    // type stays identical across configurations, which keeps the standard
    // library's size-specialized sort making the *same* comparison
    // sequence, so comparison counters match the reference path exactly.
    let all_encoded = spans.iter().all(Option::is_some);
    let mut perm: Vec<(u64, u32)> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let p = match s {
                Some((start, end)) if all_encoded => {
                    let k = &arena[*start as usize..*end as usize];
                    let mut p = [0u8; 8];
                    let take = k.len().min(8);
                    p[..take].copy_from_slice(&k[..take]);
                    u64::from_be_bytes(p)
                }
                _ => 0,
            };
            (p, i as u32)
        })
        .collect();
    let mut count: u64 = 0;
    perm.sort_unstable_by(|&(pa, ia), &(pb, ib)| {
        count += 1;
        pa.cmp(&pb)
            .then_with(|| match (spans[ia as usize], spans[ib as usize]) {
                (Some((sa, ea)), Some((sb, eb))) => {
                    arena[sa as usize..ea as usize].cmp(&arena[sb as usize..eb as usize])
                }
                _ => key.cmp.compare(&rows[ia as usize], &rows[ib as usize]),
            })
            .then(ia.cmp(&ib))
    });
    env.tracker.compare(count);
    apply_permutation(rows, perm.into_iter().map(|(_, i)| i).collect());
}

/// Rearrange `rows` so that position `i` holds the row previously at
/// `perm[i]` (in-place cycle walk; consumes the permutation).
fn apply_permutation(rows: &mut [Row], mut perm: Vec<u32>) {
    for i in 0..rows.len() {
        if perm[i] as usize == i {
            continue;
        }
        let mut cur = i;
        loop {
            let src = perm[cur] as usize;
            perm[cur] = cur as u32;
            if src == i {
                break;
            }
            rows.swap(cur, src);
            cur = src;
        }
    }
}

/// Sort `rows` under `key` within the environment's memory budget.
///
/// If the rows fit in `M` they are sorted in place with no I/O; otherwise
/// the external path (replacement selection + F-way merge) runs, charging
/// block reads/writes to the tracker. The result is fully sorted either way.
pub fn sort_rows(rows: Vec<Row>, key: &SortKey, env: &OpEnv) -> Result<Vec<Row>> {
    let mut ledger = env.ledger()?;
    let total_bytes: usize = rows.iter().map(Row::encoded_len).sum();
    if ledger.fits(total_bytes) {
        let mut rows = rows;
        sort_in_memory(&mut rows, key, env);
        return Ok(rows);
    }
    external_sort(rows, key, env, &mut ledger)
}

/// One sorted run on the spill device.
struct Run {
    reader: SpillReader,
}

/// Replacement-selection run formation.
///
/// The heap holds as many rows as fit in `M`; each output row is appended to
/// the current run, and an incoming row joins the current run if it does not
/// precede the last row written, otherwise it is tagged for the next run.
/// Random input therefore yields runs of about `2M` (Knuth), matching Eq. 1.
/// Rows are normalized once on entry; heap comparisons are then `memcmp`s.
fn form_runs(
    rows: Vec<Row>,
    key: &SortKey,
    env: &OpEnv,
    ledger: &mut MemoryLedger,
) -> Result<Vec<Run>> {
    let mut input = rows.into_iter();
    let cmp = key.cmp.clone();
    // (run_tag, keyed row) ordered by tag then key.
    let mut heap =
        HeapBy::new(
            move |a: &(u64, KeyedRow), b: &(u64, KeyedRow)| match a.0.cmp(&b.0) {
                Ordering::Equal => a.1.compare(&b.1, &cmp),
                other => other,
            },
        );

    // Fill the heap up to the budget (a single oversized row is force-charged
    // so progress is always possible).
    for row in input.by_ref() {
        let bytes = row.encoded_len();
        if heap.is_empty() || ledger.fits(bytes) {
            ledger.charge(bytes);
            heap.push((0, KeyedRow::new(row, key, env)));
            if !ledger.fits(0) {
                break;
            }
        } else {
            // Put it back conceptually: handle below by chaining.
            return drain_heap_with_input(Some(row), input, heap, key, env, ledger);
        }
        if ledger.used_bytes() >= ledger.budget_bytes() {
            break;
        }
    }
    drain_heap_with_input(None, input, heap, key, env, ledger)
}

fn drain_heap_with_input(
    mut pending: Option<Row>,
    mut input: std::vec::IntoIter<Row>,
    mut heap: HeapBy<(u64, KeyedRow), impl FnMut(&(u64, KeyedRow), &(u64, KeyedRow)) -> Ordering>,
    key: &SortKey,
    env: &OpEnv,
    ledger: &mut MemoryLedger,
) -> Result<Vec<Run>> {
    let mut runs: Vec<Run> = Vec::new();
    let mut current_tag = 0u64;
    let mut current_file: Option<SpillFile> = None;
    let mut extra_cmp: u64 = 0;

    while let Some((tag, keyed)) = heap.pop() {
        ledger.release(keyed.row.encoded_len());
        if tag != current_tag || current_file.is_none() {
            if let Some(f) = current_file.take() {
                runs.push(Run {
                    reader: f.into_reader()?,
                });
            }
            current_file = Some(SpillFile::create(env.medium, env.tracker.clone())?);
            current_tag = tag;
        }
        let file = current_file.as_mut().expect("file just ensured");
        file.push(&keyed.row)?;
        env.tracker.move_rows(1);
        // `keyed` is now the last tuple written to the current run; incoming
        // tuples that precede it must wait for the next run.
        loop {
            let next = match pending.take() {
                Some(r) => Some(r),
                None => input.next(),
            };
            let Some(next) = next else { break };
            let bytes = next.encoded_len();
            if !ledger.fits(bytes) && !heap.is_empty() {
                pending = Some(next);
                break;
            }
            ledger.charge(bytes);
            extra_cmp += 1;
            let next = KeyedRow::new(next, key, env);
            let tag_for_next = if next.compare(&keyed, &key.cmp) == Ordering::Less {
                current_tag + 1
            } else {
                current_tag
            };
            heap.push((tag_for_next, next));
            if !ledger.fits(0) {
                break;
            }
        }
        env.tracker
            .compare(heap.take_comparisons() + std::mem::take(&mut extra_cmp));
    }
    if let Some(f) = current_file.take() {
        runs.push(Run {
            reader: f.into_reader()?,
        });
    }
    env.tracker.compare(heap.take_comparisons() + extra_cmp);
    Ok(runs)
}

/// Merge fan-in: one block per input run plus one output block, minimum 2.
pub fn merge_fan_in(mem_blocks: u64) -> usize {
    (mem_blocks.saturating_sub(1)).max(2) as usize
}

/// Merge runs down to a single stream; intermediate passes write new runs,
/// the final pass emits rows directly.
fn merge_runs(mut runs: Vec<Run>, key: &SortKey, env: &OpEnv) -> Result<Vec<Row>> {
    let f = merge_fan_in(env.mem_blocks);
    // Intermediate passes.
    while runs.len() > f {
        let batch: Vec<Run> = runs.drain(..f).collect();
        let mut out = SpillFile::create(env.medium, env.tracker.clone())?;
        merge_into(batch, key, env, |row| {
            out.push(row)?;
            Ok(())
        })?;
        runs.push(Run {
            reader: out.into_reader()?,
        });
    }
    // Final pass.
    let mut result = Vec::new();
    merge_into(runs, key, env, |row| {
        result.push(row.clone());
        Ok(())
    })?;
    Ok(result)
}

/// Core k-way merge over run readers; `emit` receives rows in order. Each
/// row is re-normalized as it is read back (spilled runs store rows, not
/// keys, so block counts are identical to the comparator path).
fn merge_into(
    runs: Vec<Run>,
    key: &SortKey,
    env: &OpEnv,
    mut emit: impl FnMut(&Row) -> Result<()>,
) -> Result<()> {
    let mut readers: Vec<SpillReader> = runs.into_iter().map(|r| r.reader).collect();
    let cmp = key.cmp.clone();
    let mut heap =
        HeapBy::new(move |a: &(KeyedRow, usize), b: &(KeyedRow, usize)| a.0.compare(&b.0, &cmp));
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some(row) = r.next_row()? {
            heap.push((KeyedRow::new(row, key, env), i));
        }
    }
    while let Some((keyed, i)) = heap.pop() {
        emit(&keyed.row)?;
        env.tracker.move_rows(1);
        if let Some(next) = readers[i].next_row()? {
            heap.push((KeyedRow::new(next, key, env), i));
        }
    }
    env.tracker.compare(heap.take_comparisons());
    Ok(())
}

/// External sort entry point (runs + merge). Public so HS can externally
/// sort spilled buckets through the same code path.
pub fn external_sort(
    rows: Vec<Row>,
    key: &SortKey,
    env: &OpEnv,
    ledger: &mut MemoryLedger,
) -> Result<Vec<Row>> {
    if rows.len() <= 1 {
        return Ok(rows);
    }
    ledger.release_all();
    let runs = form_runs(rows, key, env, ledger)?;
    ledger.release_all();
    merge_runs(runs, key, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, AttrId, OrdElem, SortSpec};
    use wf_storage::BLOCK_SIZE;

    fn cmp_on0() -> SortKey {
        SortKey::new(&SortSpec::new(vec![OrdElem::asc(AttrId::new(0))]))
    }

    fn make_rows(n: usize, seed: u64) -> Vec<Row> {
        // Simple LCG keeps the crate free of dev-only rand here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                row![(state >> 33) as i64 % 10_000, "padding-padding-padding"]
            })
            .collect()
    }

    fn assert_sorted(rows: &[Row], key: &SortKey) {
        for w in rows.windows(2) {
            assert_ne!(
                key.comparator().compare(&w[0], &w[1]),
                Ordering::Greater,
                "rows out of order"
            );
        }
    }

    #[test]
    fn in_memory_path_no_io() {
        let env = OpEnv::with_memory_blocks(1024);
        let rows = make_rows(500, 1);
        let sorted = sort_rows(rows.clone(), &cmp_on0(), &env).unwrap();
        assert_eq!(sorted.len(), rows.len());
        assert_sorted(&sorted, &cmp_on0());
        let s = env.tracker.snapshot();
        assert_eq!(s.io_blocks(), 0, "in-memory sort must not touch the device");
        assert!(s.comparisons > 0);
    }

    #[test]
    fn external_path_sorts_and_charges_io() {
        // ~40 rows per block; 4000 rows ≈ 100+ blocks against a 4-block M.
        let env = OpEnv::with_memory_blocks(4);
        let rows = make_rows(4000, 2);
        let sorted = sort_rows(rows.clone(), &cmp_on0(), &env).unwrap();
        assert_eq!(sorted.len(), rows.len());
        assert_sorted(&sorted, &cmp_on0());
        let s = env.tracker.snapshot();
        assert!(s.blocks_written > 0);
        assert!(
            s.blocks_read >= s.blocks_written,
            "every written block is read back"
        );
    }

    #[test]
    fn external_sort_is_multiset_preserving() {
        let env = OpEnv::with_memory_blocks(2);
        let rows = make_rows(1500, 3);
        let mut expected: Vec<i64> = rows
            .iter()
            .map(|r| r.get(AttrId::new(0)).as_int().unwrap())
            .collect();
        expected.sort_unstable();
        let sorted = sort_rows(rows, &cmp_on0(), &env).unwrap();
        let got: Vec<i64> = sorted
            .iter()
            .map(|r| r.get(AttrId::new(0)).as_int().unwrap())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn replacement_selection_runs_are_about_2m() {
        // Sorted-ish input would give one run; random gives ~2M runs.
        let env = OpEnv::with_memory_blocks(4);
        let rows = make_rows(4000, 4);
        let bytes: usize = rows.iter().map(Row::encoded_len).sum();
        let blocks = bytes.div_ceil(BLOCK_SIZE) as u64;
        let mut ledger = env.ledger().unwrap();
        let runs = form_runs(rows, &cmp_on0(), &env, &mut ledger).unwrap();
        // Expected ≈ B / 2M, allow generous slack either way.
        let expected = blocks.div_ceil(2 * env.mem_blocks);
        assert!(
            (runs.len() as u64) <= expected * 2 && (runs.len() as u64) >= expected / 2,
            "runs={} expected≈{}",
            runs.len(),
            expected
        );
    }

    #[test]
    fn presorted_input_forms_single_run() {
        let env = OpEnv::with_memory_blocks(4);
        let mut rows = make_rows(3000, 5);
        rows.sort_by(|a, b| cmp_on0().comparator().compare(a, b));
        let mut ledger = env.ledger().unwrap();
        let runs = form_runs(rows, &cmp_on0(), &env, &mut ledger).unwrap();
        assert_eq!(
            runs.len(),
            1,
            "replacement selection turns sorted input into one run"
        );
    }

    #[test]
    fn tiny_memory_still_sorts() {
        let env = OpEnv::with_memory_blocks(1);
        let rows = make_rows(800, 6);
        let sorted = sort_rows(rows, &cmp_on0(), &env).unwrap();
        assert_sorted(&sorted, &cmp_on0());
        assert_eq!(sorted.len(), 800);
    }

    #[test]
    fn empty_and_single_inputs() {
        let env = OpEnv::with_memory_blocks(2);
        assert!(sort_rows(vec![], &cmp_on0(), &env).unwrap().is_empty());
        let one = sort_rows(vec![row![42, "x"]], &cmp_on0(), &env).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn duplicates_preserved() {
        let env = OpEnv::with_memory_blocks(1);
        let rows: Vec<Row> = (0..1000)
            .map(|i| row![i % 3, "padpadpadpadpadpad"])
            .collect();
        let sorted = sort_rows(rows, &cmp_on0(), &env).unwrap();
        assert_eq!(sorted.len(), 1000);
        let zeros = sorted
            .iter()
            .filter(|r| r.get(AttrId::new(0)).as_int() == Some(0))
            .count();
        assert!((333..=334).contains(&zeros));
        assert_sorted(&sorted, &cmp_on0());
    }

    #[test]
    fn merge_fan_in_floor() {
        assert_eq!(merge_fan_in(1), 2);
        assert_eq!(merge_fan_in(2), 2);
        assert_eq!(merge_fan_in(3), 2);
        assert_eq!(merge_fan_in(10), 9);
    }

    #[test]
    fn more_memory_means_fewer_or_equal_io_blocks() {
        let rows = make_rows(6000, 7);
        let env_small = OpEnv::with_memory_blocks(2);
        let env_large = OpEnv::with_memory_blocks(64);
        sort_rows(rows.clone(), &cmp_on0(), &env_small).unwrap();
        sort_rows(rows, &cmp_on0(), &env_large).unwrap();
        let small = env_small.tracker.snapshot().io_blocks();
        let large = env_large.tracker.snapshot().io_blocks();
        assert!(
            large <= small,
            "large-M I/O ({large}) must not exceed small-M I/O ({small})"
        );
    }
}
