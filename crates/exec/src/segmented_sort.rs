//! **Segmented Sort (SS)** — reorder an already-segmented relation by
//! sorting only the pieces that need it (paper §3.3).
//!
//! Given input `R_{X,Y}` and a target key `perm(WPK) ∘ WOK = α ∘ β` where
//! `α = (perm(WPK) ∘ WOK) ∧ Y` is the prefix the input already satisfies:
//!
//! * if `α` is non-empty, each segment is a sequence of `α`-groups; sorting
//!   every `α`-group on `β` yields `R_{X, α∘β}`;
//! * if `α` is empty (possible only when `X ≠ ∅`), each whole segment is
//!   sorted on `β`.
//!
//! Units are detected by `α`-value change *within* segments — segment
//! boundaries always terminate a unit — so the input's segmentation is
//! preserved exactly. Units normally fit in memory (that is SS's whole
//! advantage); oversized units fall back to the shared external sort.

use crate::env::OpEnv;
use crate::operator::{drain, Operator, Segment, SegmentSource};
use crate::segment::{RunSplitter, SegmentedRows};
use crate::sorter::{sort_rows, sort_stream_to_handle, SortKey};
use wf_common::{AttrSet, Result, Row, RowComparator, SortSpec};

/// The SS operator — the one the paper's pipelining argument is really
/// about: it is **fully streaming**. Each pull takes exactly one upstream
/// segment, sorts the `α`-groups inside it, and emits it; memory is bounded
/// by the largest segment, never the relation.
///
/// Boundary reuse (§3.3/§3.5): when the segment carries a boundary layer
/// covering `α`'s attributes — e.g. the partition layer a preceding window
/// step proved — unit boundaries are taken from it instead of comparing
/// every adjacent row pair. The emitted segment keeps the incoming layers
/// that survive within-unit permutation (attribute sets ⊆ `attr(α)`) and
/// adds the `α` layer itself, so the *next* window step detects its
/// partitions for free.
pub struct SegmentedSortOp<I> {
    input: I,
    alpha: SortSpec,
    alpha_cmp: RowComparator,
    alpha_attrs: AttrSet,
    beta: SortKey,
    env: OpEnv,
}

impl<I: Operator> SegmentedSortOp<I> {
    /// Sort each `α`-group (or each whole segment when `alpha` is empty) on
    /// `beta`.
    pub fn new(input: I, alpha: SortSpec, beta: SortSpec, env: OpEnv) -> Self {
        SegmentedSortOp {
            alpha_cmp: RowComparator::new(&alpha),
            alpha_attrs: alpha.attr_set(),
            alpha,
            input,
            beta: SortKey::new(&beta),
            env,
        }
    }

    /// Sort one segment's units, preserving the segment as a whole. The
    /// materialized path — used when the segment is already in memory.
    fn sort_segment(&self, seg: Segment) -> Result<Segment> {
        let store_backed = seg.is_store_backed();
        let (rows, mut bounds) = seg.into_parts()?;
        let env = &self.env;
        let end = rows.len();
        if self.alpha.is_empty() {
            // Whole segment is one unit; the full reorder invalidates any
            // carried layers.
            env.tracker.move_rows(rows.len() as u64);
            let sorted = sort_rows(rows, &self.beta, env)?;
            return if store_backed {
                Ok(Segment::from_handle(
                    env.store.admit(sorted)?,
                    crate::segment::SegmentBounds::none(),
                ))
            } else {
                Ok(Segment::plain(sorted))
            };
        }
        // Unit starts: reuse a carried boundary layer when one covers α's
        // attributes, else walk the segment comparing adjacent α values.
        let unit_starts: Vec<usize> = if env.reuse_bounds {
            bounds.runs_equal_on(
                &self.alpha_attrs,
                &rows,
                0,
                end,
                |a, b| self.alpha_cmp.equal(a, b),
                &env.tracker,
            )
        } else {
            None
        }
        .unwrap_or_else(|| {
            crate::segment::scan_runs(
                &rows,
                0,
                end,
                |a, b| self.alpha_cmp.equal(a, b),
                &env.tracker,
            )
        });

        let mut out: Vec<Row> = Vec::with_capacity(end);
        for (k, &start) in unit_starts.iter().enumerate() {
            let stop = unit_starts.get(k + 1).copied().unwrap_or(end);
            let unit: Vec<Row> = rows[start..stop].to_vec();
            env.tracker.move_rows(unit.len() as u64);
            out.extend(sort_rows(unit, &self.beta, env)?);
        }
        // Within-unit permutation preserves exactly the layers whose runs
        // are unions of units.
        bounds.retain_subsets_of(&self.alpha_attrs);
        bounds.add_layer(self.alpha_attrs.clone(), unit_starts);
        if store_backed {
            Ok(Segment::from_handle(self.env.store.admit(out)?, bounds))
        } else {
            Ok(Segment::with_bounds(out, bounds))
        }
    }

    /// The streaming path for spilled segments: detect unit boundaries on
    /// the fly (reusing carried layers with the exact charging of the
    /// materialized path), hold **one unit at a time** — registered with
    /// the store's residency ledger — sort it, and stream the output
    /// through a store builder. Residency: `O(M + largest unit)`.
    fn sort_segment_streaming(&self, seg: Segment) -> Result<Segment> {
        let env = &self.env;
        let (n, mut stream, mut bounds) = seg.into_stream();
        if self.alpha.is_empty() {
            // Whole segment is one unit sorted on β; stream it straight
            // into the external sorter.
            env.tracker.move_rows(n as u64);
            let (handle, _, _) = sort_stream_to_handle(stream, &self.beta, env, &[])?;
            return Ok(Segment::from_handle(
                handle,
                crate::segment::SegmentBounds::none(),
            ));
        }
        let mut splitter = RunSplitter::new(&bounds, &self.alpha_attrs, n, env.reuse_bounds);
        let mut out = env.store.builder();
        let mut unit_starts: Vec<usize> = Vec::new();
        let mut unit: Vec<Row> = Vec::new();
        let mut hold = env.store.hold(0, 0);
        let mut lo = 0usize;
        let mut idx = 0usize;
        while let Some(row) = stream.next_row()? {
            let boundary = match unit.last() {
                None => true,
                Some(prev) => splitter.is_boundary(
                    idx,
                    prev,
                    &row,
                    |a, b| self.alpha_cmp.equal(a, b),
                    false,
                    &env.tracker,
                ),
            };
            if boundary && !unit.is_empty() {
                env.tracker.move_rows(unit.len() as u64);
                unit_starts.push(lo);
                for r in sort_rows(std::mem::take(&mut unit), &self.beta, env)? {
                    out.push(r)?;
                }
                hold = env.store.hold(0, 0);
                lo = idx;
            }
            hold.grow(row.encoded_len(), 1);
            unit.push(row);
            idx += 1;
        }
        if !unit.is_empty() {
            env.tracker.move_rows(unit.len() as u64);
            unit_starts.push(lo);
            for r in sort_rows(unit, &self.beta, env)? {
                out.push(r)?;
            }
        }
        drop(hold);
        bounds.retain_subsets_of(&self.alpha_attrs);
        bounds.add_layer(self.alpha_attrs.clone(), unit_starts);
        Ok(Segment::from_handle(out.finish()?, bounds))
    }
}

impl<I: Operator> Operator for SegmentedSortOp<I> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        match self.input.next_segment()? {
            None => Ok(None),
            Some(seg) if seg.is_spilled() => Ok(Some(self.sort_segment_streaming(seg)?)),
            Some(seg) => Ok(Some(self.sort_segment(seg)?)),
        }
    }
}

/// Sort each `α`-group (or each segment when `alpha` is empty) on `beta`.
///
/// `alpha` must be a prefix the input already satisfies; this operator does
/// not re-verify it (the planner's property algebra guarantees it), but unit
/// detection only relies on equality of `alpha` values, so a violated
/// precondition degrades to smaller sorted pieces rather than UB. Thin
/// wrapper over [`SegmentedSortOp`] for batch callers.
pub fn segmented_sort(
    input: SegmentedRows,
    alpha: &SortSpec,
    beta: &SortSpec,
    env: &OpEnv,
) -> Result<SegmentedRows> {
    let mut op = SegmentedSortOp::new(
        SegmentSource::new(input),
        alpha.clone(),
        beta.clone(),
        env.clone(),
    );
    drain(&mut op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, AttrId, OrdElem};

    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(AttrId::new(i))).collect())
    }

    /// Input sorted on (a): α=(a), sort α-groups on (b).
    #[test]
    fn sorts_alpha_groups_on_beta() {
        let rows = vec![
            row![1, 9],
            row![1, 3],
            row![1, 5],
            row![2, 2],
            row![2, 1],
            row![3, 7],
        ];
        let env = OpEnv::with_memory_blocks(8);
        let out = segmented_sort(
            SegmentedRows::single_segment(rows),
            &key(&[0]),
            &key(&[1]),
            &env,
        )
        .unwrap();
        let pairs: Vec<(i64, i64)> = out
            .rows()
            .iter()
            .map(|r| {
                (
                    r.get(AttrId::new(0)).as_int().unwrap(),
                    r.get(AttrId::new(1)).as_int().unwrap(),
                )
            })
            .collect();
        assert_eq!(pairs, vec![(1, 3), (1, 5), (1, 9), (2, 1), (2, 2), (3, 7)]);
        assert_eq!(out.segment_count(), 1);
        // No I/O: units are tiny.
        assert_eq!(env.tracker.snapshot().io_blocks(), 0);
    }

    /// α empty: sort whole segments on β, preserving boundaries.
    #[test]
    fn empty_alpha_sorts_whole_segments() {
        let rows = vec![row![5], row![1], row![3], row![9], row![2]];
        let segs = SegmentedRows::from_parts(rows, vec![0, 3]);
        let env = OpEnv::with_memory_blocks(8);
        let out = segmented_sort(segs, &SortSpec::empty(), &key(&[0]), &env).unwrap();
        let vals: Vec<i64> = out
            .rows()
            .iter()
            .map(|r| r.get(AttrId::new(0)).as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 3, 5, 2, 9]);
        assert_eq!(out.seg_starts(), &[0, 3]);
    }

    /// Units never cross segment boundaries even when α values repeat
    /// across adjacent segments.
    #[test]
    fn units_stop_at_segment_boundaries() {
        // Two segments, both with α-value a=1; b values must be sorted
        // within each segment only.
        let rows = vec![
            row![1, 9, 100],
            row![1, 5, 100],
            row![1, 8, 200],
            row![1, 2, 200],
        ];
        let segs = SegmentedRows::from_parts(rows, vec![0, 2]);
        let env = OpEnv::with_memory_blocks(8);
        let out = segmented_sort(segs, &key(&[0]), &key(&[1]), &env).unwrap();
        let b: Vec<i64> = out
            .rows()
            .iter()
            .map(|r| r.get(AttrId::new(1)).as_int().unwrap())
            .collect();
        assert_eq!(b, vec![5, 9, 2, 8]);
        // Segment membership (column c) untouched.
        let c: Vec<i64> = out
            .rows()
            .iter()
            .map(|r| r.get(AttrId::new(2)).as_int().unwrap())
            .collect();
        assert_eq!(c, vec![100, 100, 200, 200]);
    }

    /// Oversized units fall back to external sort and stay correct.
    #[test]
    fn oversized_unit_spills() {
        let rows: Vec<Row> = (0..3000)
            .map(|i| {
                row![
                    1i64,
                    ((i * 7919) % 3000) as i64,
                    "padding-padding-padding-pad"
                ]
            })
            .collect();
        let env = OpEnv::with_memory_blocks(2);
        let out = segmented_sort(
            SegmentedRows::single_segment(rows),
            &key(&[0]),
            &key(&[1]),
            &env,
        )
        .unwrap();
        assert_eq!(out.len(), 3000);
        assert!(out.segments_sorted_by(&RowComparator::new(&key(&[0, 1]))));
        assert!(env.tracker.snapshot().io_blocks() > 0);
    }

    #[test]
    fn multi_alpha_groups_multi_segments() {
        // Segments: [a=1, a=2], [a=2, a=3]; α=(a); β=(b).
        let rows = vec![
            row![1, 4],
            row![1, 2],
            row![2, 8],
            row![2, 6],
            // -- new segment
            row![2, 3],
            row![2, 1],
            row![3, 5],
        ];
        let segs = SegmentedRows::from_parts(rows, vec![0, 4]);
        let env = OpEnv::with_memory_blocks(8);
        let out = segmented_sort(segs, &key(&[0]), &key(&[1]), &env).unwrap();
        let pairs: Vec<(i64, i64)> = out
            .rows()
            .iter()
            .map(|r| {
                (
                    r.get(AttrId::new(0)).as_int().unwrap(),
                    r.get(AttrId::new(1)).as_int().unwrap(),
                )
            })
            .collect();
        assert_eq!(
            pairs,
            vec![(1, 2), (1, 4), (2, 6), (2, 8), (2, 1), (2, 3), (3, 5)]
        );
    }

    #[test]
    fn empty_input() {
        let env = OpEnv::with_memory_blocks(2);
        let out = segmented_sort(SegmentedRows::empty(), &key(&[0]), &key(&[1]), &env).unwrap();
        assert!(out.is_empty());
    }

    /// SS must do far less comparison work than a full sort when the input
    /// is already segmented into many small units (the paper's
    /// O(n log(n/k)) vs O(n log n) argument).
    #[test]
    fn cheaper_than_full_sort_on_many_units() {
        let rows: Vec<Row> = (0..4000)
            .map(|i| row![(i / 10) as i64, ((i * 31) % 97) as i64, "pad-pad-pad-pad"]) // 400 α-groups
            .collect();
        let env_ss = OpEnv::with_memory_blocks(4);
        segmented_sort(
            SegmentedRows::single_segment(rows.clone()),
            &key(&[0]),
            &key(&[1]),
            &env_ss,
        )
        .unwrap();
        let env_fs = OpEnv::with_memory_blocks(4);
        crate::full_sort::full_sort(SegmentedRows::single_segment(rows), &key(&[0, 1]), &env_fs)
            .unwrap();
        let ss = env_ss.tracker.snapshot();
        let fs = env_fs.tracker.snapshot();
        assert!(ss.io_blocks() == 0, "small units should not spill");
        assert!(fs.io_blocks() > 0, "full sort at tiny M must spill");
        assert!(ss.comparisons < fs.comparisons);
    }
}
