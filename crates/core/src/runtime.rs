//! Plan execution: compiles a [`Plan`] into a chained tree of pull-based
//! [`Operator`]s and drives it **one segment at a time**.
//!
//! The chain for `ws FS→ wf2 HS→ wf1` is
//!
//! ```text
//! TableScan → FullSortOp → WindowOp(wf2) → HashedSortOp → WindowOp(wf1)
//! ```
//!
//! and the driver pulls segments off the last operator: after a Hashed Sort,
//! each bucket flows through window evaluation while the remaining buckets
//! are still unsorted — the paper's complete-partition pipelining (§3.2/3.3)
//! rather than fully-materialized hand-offs between steps.
//!
//! Cost attribution: every step's operators are wrapped in a `Metered`
//! shim that charges the shared tracker delta of each pull to its step,
//! minus whatever nested upstream steps charged during the same pull — so
//! the per-step breakdown in [`ExecReport::steps`] is exact even though the
//! steps' work interleaves in time. Totals are unchanged from the batch
//! executor: the operators charge the identical counters.

use crate::plan::{Plan, ReorderOp};
use crate::spec::WindowSpec;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wf_common::{json, Field, Result, Row, TraceSink};
use wf_exec::{
    FilterOp, FullSortOp, HashedSortOp, HsOptions, OpEnv, Operator, Segment, SegmentedSortOp,
    TableScan, WindowOp,
};
use wf_storage::{CostSnapshot, CostTracker, CostWeights, StoreSnapshot, Table, BLOCK_SIZE};

/// Execution environment: unit reorder memory, spill backend, cost weights.
#[derive(Clone)]
pub struct ExecEnv {
    op_env: OpEnv,
    weights: CostWeights,
    /// Worker budget the planners may spend on `ReorderOp::Par` nodes
    /// (shard count of emitted parallel reorders). `1` keeps plans serial.
    /// Defaults from the `WF_WORKERS` environment variable (unset → 1) so a
    /// CI matrix can force parallel planning across a whole suite; pin with
    /// [`ExecEnv::with_par_workers`] where plans must stay reproducible.
    par_workers: usize,
}

impl ExecEnv {
    /// Environment with the given unit reorder memory (in blocks), a fresh
    /// tracker and the environment-selected spill backend (in-memory by
    /// default).
    pub fn with_memory_blocks(blocks: u64) -> Self {
        let op_env = OpEnv::with_memory_blocks(blocks);
        ExecEnv {
            par_workers: op_env.worker_threads.max(1),
            op_env,
            weights: CostWeights::default(),
        }
    }

    /// Environment running inside a **caller-provided segment store** — the
    /// serving path: the admission governor budgets each admitted query with
    /// a pooled sub-account of the shared store, and this constructor turns
    /// that account into a full execution environment (`M` derived from the
    /// account's budget, fresh tracker, default toggles).
    pub fn with_store(store: Arc<wf_storage::SegmentStore>) -> Self {
        let op_env = OpEnv::with_store(store);
        ExecEnv {
            par_workers: op_env.worker_threads.max(1),
            op_env,
            weights: CostWeights::default(),
        }
    }

    /// Same environment with the planner worker budget pinned (shares the
    /// tracker and store).
    pub fn with_par_workers(&self, workers: usize) -> Self {
        ExecEnv {
            par_workers: workers.max(1),
            ..self.clone()
        }
    }

    /// Worker budget for parallel planning (≥ 1).
    pub fn par_workers(&self) -> usize {
        self.par_workers
    }

    /// Same environment with the executor's worker-thread override pinned
    /// (see `wf_exec::OpEnv::worker_threads`); plan shapes are unaffected.
    pub fn with_worker_threads(&self, threads: usize) -> Self {
        ExecEnv {
            op_env: self.op_env.with_worker_threads(threads),
            ..self.clone()
        }
    }

    /// Memory budget in blocks (the paper's `M`).
    pub fn mem_blocks(&self) -> u64 {
        self.op_env.mem_blocks
    }

    /// The shared work counters.
    pub fn tracker(&self) -> &Arc<CostTracker> {
        &self.op_env.tracker
    }

    /// Time-model weights.
    pub fn weights(&self) -> CostWeights {
        self.weights
    }

    /// The operator-level environment.
    pub fn op_env(&self) -> &OpEnv {
        &self.op_env
    }

    /// Same environment with a different memory budget (shares the
    /// tracker).
    pub fn with_blocks(&self, blocks: u64) -> Self {
        ExecEnv {
            op_env: self.op_env.with_blocks(blocks),
            ..self.clone()
        }
    }

    /// Same environment with a different spill configuration (backend,
    /// compression, read-ahead); rows and all counters are invariant under
    /// this knob — only wall time may move.
    pub fn with_spill(&self, spill: wf_storage::SpillConfig) -> Self {
        ExecEnv {
            op_env: self.op_env.with_spill(spill),
            ..self.clone()
        }
    }

    /// Same environment with the executor fast paths toggled (normalized
    /// byte keys; boundary-layer reuse). Reference configuration for the
    /// equivalence suite and ablation benchmarks.
    pub fn with_toggles(&self, norm_keys: bool, reuse_bounds: bool) -> Self {
        ExecEnv {
            op_env: self.op_env.with_toggles(norm_keys, reuse_bounds),
            ..self.clone()
        }
    }

    /// Same environment with the columnar block path toggled (default on).
    /// `false` is the row-at-a-time reference configuration of the
    /// columnar equivalence suite.
    pub fn with_columnar(&self, columnar: bool) -> Self {
        ExecEnv {
            op_env: self.op_env.with_columnar(columnar),
            ..self.clone()
        }
    }

    /// Same environment with an unbounded segment pool — the pre-store
    /// pipeline's residency behaviour, used as the reference side of the
    /// residency equivalence suite.
    pub fn with_unbounded_pool(&self) -> Self {
        ExecEnv {
            op_env: self.op_env.with_unbounded_pool(),
            ..self.clone()
        }
    }

    /// Residency and pool-spill statistics of this environment's segment
    /// store.
    pub fn store_snapshot(&self) -> StoreSnapshot {
        self.op_env.store.snapshot()
    }

    /// Same environment with the given span recorder attached: operators,
    /// sorter phases, scheduler workers and the segment store all record
    /// wall-clock spans on it. Tracing only reads the clock — rows, modeled
    /// counters and pool counters are bit-identical with it on or off.
    pub fn with_trace(&self, trace: Arc<TraceSink>) -> Self {
        ExecEnv {
            op_env: self.op_env.with_trace(trace),
            ..self.clone()
        }
    }

    /// The environment's span recorder (the shared no-op sink by default).
    pub fn trace(&self) -> &Arc<TraceSink> {
        &self.op_env.trace
    }
}

/// Result of executing a plan.
#[derive(Debug)]
pub struct ExecReport {
    /// The windowed table with one appended column per function.
    pub table: Table,
    /// Work performed by this execution (tracker delta).
    pub work: CostSnapshot,
    /// Modeled execution time under the environment's weights.
    pub modeled_ms: f64,
    /// Wall-clock time (secondary metric; the simulated device makes I/O
    /// free in wall time).
    pub wall: Duration,
    /// Per-step `(label, work)` breakdown.
    pub steps: Vec<(String, CostSnapshot)>,
    /// Per-step measured execution metrics in chain order. Unlike
    /// [`ExecReport::steps`] this includes slot 0 (the table scan plus any
    /// WHERE filter) and carries the measured side — own wall time, rows
    /// and segments emitted — that EXPLAIN ANALYZE compares against the
    /// modeled counters.
    pub step_metrics: Vec<StepMetrics>,
    /// Peak resident pool blocks per parallel worker shard, recorded when
    /// scheduler phases absorb their workers (empty for serial plans).
    pub worker_peak_blocks: Vec<u64>,
    /// Segment-store residency and pool-spill statistics for this
    /// execution (peak resident bytes/rows, pool blocks moved). Pool
    /// traffic never enters `work` or `modeled_ms` — see
    /// `wf_storage::segstore`.
    pub store: StoreSnapshot,
    /// Per-step residency class of the window evaluation (`(label, class)`
    /// in chain order): which spilled-segment streaming discipline the
    /// step's `WindowOp` dispatches to — one-pass (`O(M)`), ring-buffer
    /// (`O(M + frame)`) or buffered (`O(M + partition)`). Resident
    /// segments always take the materialized path; the class governs what
    /// the store's high-water mark may charge to this step.
    pub eval_classes: Vec<(String, wf_exec::StreamableEval)>,
}

impl ExecReport {
    /// The weakest residency class across the chain — what bounds the
    /// execution's window-evaluation residency when calls of different
    /// classes mix.
    pub fn weakest_eval_class(&self) -> wf_exec::StreamableEval {
        wf_exec::StreamableEval::weakest(self.eval_classes.iter().map(|(_, c)| *c))
    }
}

/// One chain step's measured execution metrics (see
/// [`ExecReport::step_metrics`]).
#[derive(Debug, Clone)]
pub struct StepMetrics {
    /// Report label (`scan+filter` for slot 0, `ARROW name` per plan step).
    pub label: String,
    /// Modeled work counters attributed to this step.
    pub work: CostSnapshot,
    /// Wall time attributed to this step (elapsed in its pulls minus what
    /// nested upstream steps spent during the same pulls).
    pub wall: Duration,
    /// Rows this step emitted downstream.
    pub rows: u64,
    /// Segments this step emitted downstream.
    pub segments: u64,
    /// Residency class of the step's window evaluation (`None` for the
    /// scan slot).
    pub eval_class: Option<wf_exec::StreamableEval>,
}

/// One execution's three metric domains — modeled cost, pool traffic and
/// measured wall — flattened into a single serializable record. This is
/// what `repro regress` embeds per workload in BENCH JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecMetrics {
    /// Modeled execution time under the environment's weights.
    pub modeled_ms: f64,
    /// Measured wall-clock time.
    pub wall_ms: f64,
    /// Modeled work counters (tracker delta of the execution).
    pub blocks_read: u64,
    pub blocks_written: u64,
    pub comparisons: u64,
    pub hashes: u64,
    pub rows_moved: u64,
    pub key_encodes: u64,
    /// Segment-pool residency and traffic (never part of the modeled cost).
    pub peak_resident_blocks: u64,
    pub peak_resident_rows: u64,
    pub pool_spill_blocks_written: u64,
    pub pool_spill_blocks_read: u64,
    /// Peak resident pool blocks per parallel worker shard (empty when the
    /// plan ran serially).
    pub worker_peak_blocks: Vec<u64>,
}

impl ExecMetrics {
    /// Snapshot a finished execution's report.
    pub fn from_report(report: &ExecReport) -> Self {
        ExecMetrics {
            modeled_ms: report.modeled_ms,
            wall_ms: report.wall.as_secs_f64() * 1e3,
            blocks_read: report.work.blocks_read,
            blocks_written: report.work.blocks_written,
            comparisons: report.work.comparisons,
            hashes: report.work.hashes,
            rows_moved: report.work.rows_moved,
            key_encodes: report.work.key_encodes,
            peak_resident_blocks: report.store.peak_resident_blocks(),
            peak_resident_rows: report.store.peak_resident_rows as u64,
            pool_spill_blocks_written: report.store.spill_blocks_written,
            pool_spill_blocks_read: report.store.spill_blocks_read,
            worker_peak_blocks: report.worker_peak_blocks.clone(),
        }
    }

    /// Single-line JSON object (hand-rolled; field order is stable).
    pub fn to_json(&self) -> String {
        let peaks = self
            .worker_peak_blocks
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"modeled_ms\":{:.3},\"wall_ms\":{:.3},\"blocks_read\":{},\
             \"blocks_written\":{},\"comparisons\":{},\"hashes\":{},\
             \"rows_moved\":{},\"key_encodes\":{},\"peak_resident_blocks\":{},\
             \"peak_resident_rows\":{},\"pool_spill_blocks_written\":{},\
             \"pool_spill_blocks_read\":{},\"worker_peak_blocks\":[{}]}}",
            self.modeled_ms,
            self.wall_ms,
            self.blocks_read,
            self.blocks_written,
            self.comparisons,
            self.hashes,
            self.rows_moved,
            self.key_encodes,
            self.peak_resident_blocks,
            self.peak_resident_rows,
            self.pool_spill_blocks_written,
            self.pool_spill_blocks_read,
            peaks,
        )
    }

    /// Parse a value produced by [`ExecMetrics::to_json`]. Returns `None`
    /// when a field is missing or mistyped (old baselines degrade
    /// gracefully).
    pub fn from_json(v: &json::Json) -> Option<Self> {
        let u = |k: &str| v.get(k)?.as_u64();
        Some(ExecMetrics {
            modeled_ms: v.get("modeled_ms")?.as_f64()?,
            wall_ms: v.get("wall_ms")?.as_f64()?,
            blocks_read: u("blocks_read")?,
            blocks_written: u("blocks_written")?,
            comparisons: u("comparisons")?,
            hashes: u("hashes")?,
            rows_moved: u("rows_moved")?,
            key_encodes: u("key_encodes")?,
            peak_resident_blocks: u("peak_resident_blocks")?,
            peak_resident_rows: u("peak_resident_rows")?,
            pool_spill_blocks_written: u("pool_spill_blocks_written")?,
            pool_spill_blocks_read: u("pool_spill_blocks_read")?,
            worker_peak_blocks: v
                .get("worker_peak_blocks")?
                .as_array()?
                .iter()
                .map(|p| p.as_u64())
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// Execute a finalized plan over `table`.
///
/// The initial table scan is charged (the windowed table is read once);
/// intermediate results flow in memory, and every reorder charges its own
/// spill I/O and comparisons, exactly like the paper's measured plan
/// execution times.
pub fn execute_plan(plan: &Plan, table: &Table, env: &ExecEnv) -> Result<ExecReport> {
    execute_plan_with_specs(plan, &plan.specs, table, env)
}

/// One slot of per-step execution accounting: the modeled work counters
/// plus the measured side EXPLAIN ANALYZE compares them against (own wall
/// time, rows and segments emitted).
#[derive(Clone, Copy, Default)]
struct StepExec {
    work: CostSnapshot,
    wall: Duration,
    rows: u64,
    segments: u64,
}

/// Shared per-step accounting. Slot 0 is the table scan; slot `k + 1`
/// is plan step `k` (its reorder plus its window evaluation).
type MeterCells = Rc<RefCell<Vec<StepExec>>>;

/// Wraps one step's operator subtree and attributes tracker deltas to its
/// slot. Because pulls recurse into upstream (already-metered) operators,
/// the shim subtracts whatever upstream slots accumulated during the same
/// pull — the remainder is exactly this step's own work. Wall time is
/// attributed the same way (elapsed minus upstream wall), and each pull is
/// wrapped in a `step` span so the timeline shows the chain's nesting;
/// neither touches the tracker, so tracing never changes modeled counters.
struct Metered<O> {
    inner: O,
    tracker: Arc<CostTracker>,
    cells: MeterCells,
    idx: usize,
    label: Rc<str>,
    trace: Arc<TraceSink>,
}

impl<O> Metered<O> {
    fn new(
        inner: O,
        tracker: Arc<CostTracker>,
        cells: MeterCells,
        idx: usize,
        label: Rc<str>,
        trace: Arc<TraceSink>,
    ) -> Self {
        Metered {
            inner,
            tracker,
            cells,
            idx,
            label,
            trace,
        }
    }

    fn upstream_sum(&self) -> (CostSnapshot, Duration) {
        self.cells.borrow()[..self.idx].iter().fold(
            (CostSnapshot::default(), Duration::ZERO),
            |(work, wall), c| (work.plus(&c.work), wall + c.wall),
        )
    }
}

impl<O: Operator> Operator for Metered<O> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        let _span = self.trace.span_with("step", || self.label.to_string());
        let (upstream_before, upstream_wall_before) = self.upstream_sum();
        let before = self.tracker.snapshot();
        let start = Instant::now();
        let result = self.inner.next_segment();
        let elapsed = start.elapsed();
        let delta = self.tracker.snapshot().since(&before);
        let (upstream_after, upstream_wall_after) = self.upstream_sum();
        let upstream_delta = upstream_after.since(&upstream_before);
        let own = delta.since(&upstream_delta);
        let own_wall = elapsed.saturating_sub(upstream_wall_after - upstream_wall_before);
        let mut cells = self.cells.borrow_mut();
        let slot = &mut cells[self.idx];
        slot.work = slot.work.plus(&own);
        slot.wall += own_wall;
        if let Ok(Some(seg)) = &result {
            slot.rows += seg.len() as u64;
            slot.segments += 1;
        }
        result
    }
}

/// Report label of plan step `k` (shared by [`ExecReport::steps`] and the
/// EXPLAIN ANALYZE table).
fn step_label(step: &crate::plan::PlanStep, specs: &[WindowSpec]) -> String {
    format!("{} {}", step.reorder.arrow(), specs[step.wf].name)
}

/// Compile a plan into its operator chain over `table`. Returns the chain's
/// sink plus the evaluation order of specs (the chain may evaluate window
/// functions in a different order than the SELECT list).
fn build_chain<'a>(
    plan: &Plan,
    specs: &[WindowSpec],
    table: &'a Table,
    env: &ExecEnv,
    cells: &MeterCells,
) -> (Box<dyn Operator + 'a>, Vec<usize>) {
    let tracker = Arc::clone(env.tracker());
    let op_env = env.op_env().clone();
    // Slot 0 is the scan plus the WHERE filter (when the plan carries one):
    // filtering streams through the scan's segments before any reorder.
    let scan = TableScan::new(table, op_env.clone());
    let source: Box<dyn Operator + 'a> = match &plan.filter {
        Some(pred) => Box::new(FilterOp::new(scan, pred.clone(), op_env.clone())),
        None => Box::new(scan),
    };
    let mut op: Box<dyn Operator + 'a> = Box::new(Metered::new(
        source,
        Arc::clone(&tracker),
        Rc::clone(cells),
        0,
        Rc::from("scan+filter"),
        Arc::clone(&op_env.trace),
    ));
    let mut eval_order: Vec<usize> = Vec::with_capacity(plan.steps.len());
    let mut k = 0;
    while k < plan.steps.len() {
        let step = &plan.steps[k];
        let spec = &specs[step.wf];
        // Sort-key prefixes whose boundary layers FS/HS record for free
        // during their final merge: the partition key and the partition ∪
        // order key (peer groups) — exactly what this step's window
        // evaluation (and any matched-prefix successor) starts from.
        let mut record = Vec::new();
        if !spec.wpk().is_empty() {
            record.push(spec.wpk().clone());
        }
        let union = spec.wpk().union(&spec.wok().attr_set());
        if !union.is_empty() && Some(&union) != record.first() {
            record.push(union);
        }
        op = match &step.reorder {
            ReorderOp::None => op,
            ReorderOp::Fs { key } => Box::new(
                FullSortOp::new(op, key.clone(), op_env.clone()).with_recorded_prefixes(record),
            ),
            ReorderOp::Hs {
                whk,
                key,
                n_buckets,
                mfv,
            } => {
                let opts = HsOptions {
                    n_buckets: *n_buckets,
                    mfv_values: mfv.clone(),
                    stable_emission: false,
                };
                Box::new(
                    HashedSortOp::new(op, whk.clone(), key.clone(), opts, op_env.clone())
                        .with_recorded_prefixes(record),
                )
            }
            ReorderOp::Ss { alpha, beta } => Box::new(SegmentedSortOp::new(
                op,
                alpha.clone(),
                beta.clone(),
                op_env.clone(),
            )),
            // Chain-parallel span: shard on the head's scatter key, then
            // keep going *inside* each worker — head reorder, this step's
            // window, and every fused SS-compatible successor — and merge
            // finished rows shard by shard (wf_exec::scheduler). The
            // finalizer guarantees an FS or HS inner; a hand-built plan
            // with any other inner falls back to a serial Full Sort rather
            // than mis-executing.
            ReorderOp::Par { inner, workers } => {
                let par_inner = match inner.as_ref() {
                    ReorderOp::Fs { key } => Some(wf_exec::ParInner::Fs { key: key.clone() }),
                    ReorderOp::Hs {
                        whk,
                        key,
                        n_buckets,
                        ..
                    } => Some(wf_exec::ParInner::Hs {
                        whk: whk.clone(),
                        key: key.clone(),
                        n_buckets: *n_buckets,
                    }),
                    _ => None,
                };
                if let Some(par_inner) = par_inner {
                    let span = crate::plan::par_span_len(&plan.steps, specs, k);
                    let shard = crate::plan::par_shard_attrs(step, specs);
                    let stages: Vec<wf_exec::ChainStage> = plan.steps[k..k + span]
                        .iter()
                        .map(|s| {
                            let sp = &specs[s.wf];
                            wf_exec::ChainStage {
                                ss: match &s.reorder {
                                    ReorderOp::Ss { alpha, beta } => {
                                        Some((alpha.clone(), beta.clone()))
                                    }
                                    _ => None,
                                },
                                wpk: sp.wpk().clone(),
                                wok: sp.wok().clone(),
                                func: sp.func.clone(),
                                frame: sp.frame,
                            }
                        })
                        .collect();
                    op = Box::new(
                        wf_exec::ParallelChainOp::new(
                            op,
                            par_inner,
                            shard,
                            *workers,
                            stages,
                            op_env.clone(),
                        )
                        .with_recorded_prefixes(record),
                    );
                    // One `Metered` shim per fused slot keeps the report at
                    // one entry per plan step. The innermost shim (the Par
                    // step's own slot) absorbs the whole span's work; the
                    // outer shims see it already attributed upstream and
                    // report zero — elapsed work inside the workers is not
                    // separable per stage.
                    for slot in k..k + span {
                        op = Box::new(Metered::new(
                            op,
                            Arc::clone(&tracker),
                            Rc::clone(cells),
                            slot + 1,
                            Rc::from(step_label(&plan.steps[slot], specs)),
                            Arc::clone(&op_env.trace),
                        ));
                    }
                    for s in &plan.steps[k..k + span] {
                        eval_order.push(s.wf);
                    }
                    k += span;
                    continue;
                }
                debug_assert!(false, "Par node with unsupported inner: {inner:?}");
                Box::new(
                    FullSortOp::new(op, crate::plan::default_fs_key(spec), op_env.clone())
                        .with_recorded_prefixes(record),
                )
            }
        };
        op = Box::new(WindowOp::new(
            op,
            spec.wpk().clone(),
            spec.wok().clone(),
            spec.func.clone(),
            spec.frame,
            op_env.clone(),
        ));
        op = Box::new(Metered::new(
            op,
            Arc::clone(&tracker),
            Rc::clone(cells),
            k + 1,
            Rc::from(step_label(step, specs)),
            Arc::clone(&op_env.trace),
        ));
        eval_order.push(step.wf);
        k += 1;
    }
    (op, eval_order)
}

/// Execute a plan against an explicit spec list (normally `plan.specs`).
pub fn execute_plan_with_specs(
    plan: &Plan,
    specs: &[WindowSpec],
    table: &Table,
    env: &ExecEnv,
) -> Result<ExecReport> {
    let tracker = env.tracker();
    let start_snapshot = tracker.snapshot();
    let start = Instant::now();
    let base_len = table.schema().len();

    // Compile the chain and drive it segment by segment: downstream steps
    // consume each bucket / run while upstream ones still hold the rest.
    let cells: MeterCells = Rc::new(RefCell::new(vec![
        StepExec::default();
        plan.steps.len() + 1
    ]));
    let (mut op, eval_order) = build_chain(plan, specs, table, env, &cells);
    let mut rows: Vec<Row> = Vec::new();
    while let Some(seg) = op.next_segment()? {
        rows.extend(seg.into_rows()?);
    }
    drop(op);

    let steps_report: Vec<(String, CostSnapshot)> = plan
        .steps
        .iter()
        .zip(cells.borrow().iter().skip(1))
        .map(|(step, exec)| (step_label(step, specs), exec.work))
        .collect();
    // Measured per-step metrics, scan slot included. A step's residency
    // class comes from the plan (recorded at finalize time, same source as
    // `eval_classes` below).
    let step_metrics: Vec<StepMetrics> = cells
        .borrow()
        .iter()
        .enumerate()
        .map(|(idx, exec)| StepMetrics {
            label: match idx {
                0 => "scan+filter".to_string(),
                k => step_label(&plan.steps[k - 1], specs),
            },
            work: exec.work,
            wall: exec.wall,
            rows: exec.rows,
            segments: exec.segments,
            eval_class: idx.checked_sub(1).map(|k| plan.eval_classes[k]),
        })
        .collect();

    // Output schema in SELECT order.
    let mut schema = table.schema().clone();
    for spec in specs {
        let dt = spec.func.result_type(table.schema());
        schema = schema.with_appended(Field::new(spec.name.clone(), dt))?;
    }
    // Project appended columns from evaluation order back to SELECT order.
    let identity = eval_order.iter().copied().eq(0..specs.len());
    if !identity {
        // position_of_spec[s] = which appended slot holds spec s's values.
        let mut position_of_spec = vec![usize::MAX; specs.len()];
        for (k, &s) in eval_order.iter().enumerate() {
            position_of_spec[s] = k;
        }
        for row in &mut rows {
            let mut vals = std::mem::replace(row, wf_common::Row::new(vec![])).into_values();
            let tail = vals.split_off(base_len);
            for &pos in &position_of_spec {
                vals.push(tail[pos].clone());
            }
            *row = wf_common::Row::new(vals);
        }
    }

    let work = tracker.snapshot().since(&start_snapshot);
    let table_out = Table::from_rows(schema, rows)?;
    // The classes were recorded on the plan at finalize time — the single
    // source of truth; the executed specs must classify identically (the
    // chain dispatches on the same (function, frame) pairs).
    debug_assert!(
        plan.steps
            .iter()
            .zip(&plan.eval_classes)
            .all(|(step, &class)| specs[step.wf].eval_class() == class),
        "plan eval classes diverged from the executed specs"
    );
    let eval_classes = plan
        .steps
        .iter()
        .zip(&plan.eval_classes)
        .map(|(step, &class)| (specs[step.wf].name.clone(), class))
        .collect();
    Ok(ExecReport {
        table: table_out,
        modeled_ms: env.weights.modeled_ms(&work),
        work,
        wall: start.elapsed(),
        steps: steps_report,
        step_metrics,
        worker_peak_blocks: env.op_env().store.worker_peak_blocks(),
        store: env.store_snapshot(),
        eval_classes,
    })
}

/// EXPLAIN ANALYZE: execute `plan` and render its EXPLAIN tree followed by
/// a per-step table comparing the modeled time against the measured wall —
/// the modeled-vs-measured delta is the headline — alongside actual rows,
/// segments, comparison and spill-byte counters and each step's residency
/// class, with store residency/pool-traffic footers. Returns the report
/// too, so callers can reuse the execution instead of re-running it.
pub fn explain_analyze(plan: &Plan, table: &Table, env: &ExecEnv) -> Result<(ExecReport, String)> {
    let report = execute_plan(plan, table, env)?;
    let text = render_analyze(plan, table.schema(), &report, env.weights());
    Ok((report, text))
}

fn render_analyze(
    plan: &Plan,
    schema: &wf_common::Schema,
    report: &ExecReport,
    weights: CostWeights,
) -> String {
    const HEADERS: [&str; 9] = [
        "step", "wall ms", "model ms", "Δ ms", "rows", "segs", "cmp", "spill B", "class",
    ];
    let spill_bytes = |work: &CostSnapshot| work.io_blocks() * BLOCK_SIZE as u64;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for m in &report.step_metrics {
        let wall_ms = m.wall.as_secs_f64() * 1e3;
        let model_ms = weights.modeled_ms(&m.work);
        rows.push(vec![
            m.label.clone(),
            format!("{wall_ms:.3}"),
            format!("{model_ms:.3}"),
            format!("{:+.3}", model_ms - wall_ms),
            m.rows.to_string(),
            m.segments.to_string(),
            m.work.comparisons.to_string(),
            spill_bytes(&m.work).to_string(),
            m.eval_class
                .map_or_else(|| "-".to_string(), |c| c.to_string()),
        ]);
    }
    let total_wall = report.wall.as_secs_f64() * 1e3;
    rows.push(vec![
        "total".to_string(),
        format!("{total_wall:.3}"),
        format!("{:.3}", report.modeled_ms),
        format!("{:+.3}", report.modeled_ms - total_wall),
        report.table.row_count().to_string(),
        report
            .step_metrics
            .iter()
            .map(|m| m.segments)
            .sum::<u64>()
            .to_string(),
        report.work.comparisons.to_string(),
        spill_bytes(&report.work).to_string(),
        if report.eval_classes.is_empty() {
            "-".to_string()
        } else {
            report.weakest_eval_class().to_string()
        },
    ]);

    // Hand-aligned table: first column left-aligned, numeric columns right-
    // aligned. Widths count chars, not bytes (the Δ header is multi-byte).
    let mut widths: Vec<usize> = HEADERS.iter().map(|h| h.chars().count()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let pad = " ".repeat(w - cell.chars().count());
            if i == 0 {
                line.push_str(cell);
                line.push_str(&pad);
            } else {
                line.push_str(&pad);
                line.push_str(cell);
            }
        }
        line.truncate(line.trim_end().len());
        line.push('\n');
        line
    };
    let rule = widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("  ");

    let mut out = plan.explain(schema);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push('\n');
    out.push_str(&fmt_row(&HEADERS.map(String::from)));
    out.push_str(&rule);
    out.push('\n');
    let (steps, total) = rows.split_at(rows.len() - 1);
    for row in steps {
        out.push_str(&fmt_row(row));
    }
    out.push_str(&rule);
    out.push('\n');
    out.push_str(&fmt_row(&total[0]));
    out.push_str(&format!(
        "peak residency: {} blocks ({} rows)\n",
        report.store.peak_resident_blocks(),
        report.store.peak_resident_rows
    ));
    if !report.worker_peak_blocks.is_empty() {
        let peaks = report
            .worker_peak_blocks
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("worker peaks: [{peaks}] blocks\n"));
    }
    out.push_str(&format!(
        "pool traffic: {} blocks out, {} blocks in ({} segments spilled)\n",
        report.store.spill_blocks_written,
        report.store.spill_blocks_read,
        report.store.spilled_segments
    ));
    out
}

/// Project a table to the given output columns (SELECT-list projection;
/// applied after any final ORDER BY so sort keys may reference dropped
/// columns).
pub fn project(table: Table, columns: &[wf_common::AttrId]) -> Result<Table> {
    let schema_in = table.schema().clone();
    let fields: Vec<Field> = columns
        .iter()
        .map(|&a| schema_in.field(a).clone())
        .collect();
    let schema = wf_common::Schema::new(fields)?;
    let mut out = Table::new(schema);
    for row in table.into_rows() {
        let vals: Vec<wf_common::Value> = columns.iter().map(|&a| row.get(a).clone()).collect();
        out.push(wf_common::Row::new(vals));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableStats;
    use crate::planner::{optimize, Scheme};
    use crate::query::QueryBuilder;
    use wf_common::{row, DataType, Schema};

    fn sample_table() -> Table {
        let schema = Schema::of(&[
            ("empnum", DataType::Int),
            ("dept", DataType::Int),
            ("salary", DataType::Int),
        ]);
        let mut t = Table::new(schema);
        // The paper's Example 1 data (dept NULL → Value::Null).
        let rows: Vec<(i64, Option<i64>, Option<i64>)> = vec![
            (1, None, None),
            (2, None, Some(84000)),
            (3, Some(2), None),
            (4, Some(1), Some(78000)),
            (5, Some(1), Some(75000)),
            (6, Some(3), Some(79000)),
            (7, Some(2), Some(51000)),
            (8, Some(3), Some(55000)),
            (9, Some(1), Some(53000)),
            (10, Some(3), Some(75000)),
        ];
        for (e, d, s) in rows {
            t.push(row![e, d, s]);
        }
        t
    }

    /// End-to-end reproduction of the paper's Example 1 output columns.
    #[test]
    fn example1_end_to_end() {
        let table = sample_table();
        let schema = table.schema().clone();
        let query = QueryBuilder::new(&schema)
            .rank("rank_in_dept", &["dept"], &[("salary", true)])
            .rank("globalrank", &[], &[("salary", true)])
            .build()
            .unwrap();
        let stats = TableStats::from_table(&table);
        let env = ExecEnv::with_memory_blocks(64);
        for scheme in [Scheme::Cso, Scheme::Psql, Scheme::Orcl, Scheme::Bfo] {
            let plan = optimize(&query, &stats, scheme, &env).unwrap();
            let report = execute_plan_with_specs(&plan, &query.specs, &table, &env).unwrap();
            let out = &report.table;
            assert_eq!(out.row_count(), 10);
            let s = out.schema().clone();
            let empnum = s.resolve("empnum").unwrap();
            let rid = s.resolve("rank_in_dept").unwrap();
            let gr = s.resolve("globalrank").unwrap();
            // Expected from the paper's sample output.
            let expected: std::collections::HashMap<i64, (i64, i64)> = [
                (4, (1, 3)),
                (5, (2, 4)),
                (9, (3, 7)),
                (7, (1, 8)),
                (3, (2, 9)),
                (6, (1, 2)),
                (10, (2, 4)),
                (8, (3, 6)),
                (2, (1, 1)),
                (1, (2, 9)),
            ]
            .into_iter()
            .collect();
            for r in out.rows() {
                let e = r.get(empnum).as_int().unwrap();
                let got = (r.get(rid).as_int().unwrap(), r.get(gr).as_int().unwrap());
                assert_eq!(got, expected[&e], "scheme {scheme}: empnum {e}");
            }
        }
    }

    #[test]
    fn report_contains_per_step_breakdown() {
        let table = sample_table();
        let schema = table.schema().clone();
        let query = QueryBuilder::new(&schema)
            .rank("r", &["dept"], &[("salary", false)])
            .build()
            .unwrap();
        let stats = TableStats::from_table(&table);
        let env = ExecEnv::with_memory_blocks(64);
        let plan = optimize(&query, &stats, Scheme::Cso, &env).unwrap();
        let report = execute_plan_with_specs(&plan, &query.specs, &table, &env).unwrap();
        assert_eq!(report.steps.len(), 1);
        assert!(report.modeled_ms > 0.0);
        assert!(report.work.rows_moved > 0);
    }

    /// The report carries one residency class per chain step, and the
    /// weakest member governs — here a rank (ring class) chain.
    #[test]
    fn report_records_eval_classes() {
        let table = sample_table();
        let schema = table.schema().clone();
        let query = QueryBuilder::new(&schema)
            .rank("r", &["dept"], &[("salary", false)])
            .build()
            .unwrap();
        let stats = TableStats::from_table(&table);
        let env = ExecEnv::with_memory_blocks(64);
        let plan = optimize(&query, &stats, Scheme::Cso, &env).unwrap();
        assert_eq!(plan.eval_classes, vec![wf_exec::StreamableEval::Ring]);
        assert_eq!(plan.weakest_eval_class(), wf_exec::StreamableEval::Ring);
        let report = execute_plan_with_specs(&plan, &query.specs, &table, &env).unwrap();
        assert_eq!(report.eval_classes.len(), 1);
        assert_eq!(report.eval_classes[0].0, "r");
        assert_eq!(report.eval_classes[0].1, wf_exec::StreamableEval::Ring);
        assert_eq!(report.weakest_eval_class(), wf_exec::StreamableEval::Ring);
    }

    /// `step_metrics` carries one slot per chain stage plus the scan, its
    /// work column agrees with `steps`, and the totals reconcile.
    #[test]
    fn step_metrics_cover_scan_and_reconcile_with_steps() {
        let table = sample_table();
        let schema = table.schema().clone();
        let query = QueryBuilder::new(&schema)
            .rank("r", &["dept"], &[("salary", false)])
            .build()
            .unwrap();
        let stats = TableStats::from_table(&table);
        let env = ExecEnv::with_memory_blocks(64);
        let plan = optimize(&query, &stats, Scheme::Cso, &env).unwrap();
        let report = execute_plan_with_specs(&plan, &query.specs, &table, &env).unwrap();
        assert_eq!(report.step_metrics.len(), report.steps.len() + 1);
        assert_eq!(report.step_metrics[0].label, "scan+filter");
        assert_eq!(report.step_metrics[0].eval_class, None);
        for (m, (label, work)) in report.step_metrics[1..].iter().zip(&report.steps) {
            assert_eq!(&m.label, label);
            assert_eq!(m.work, *work);
            assert!(m.eval_class.is_some());
        }
        // The last step emits the chain's output rows.
        assert_eq!(report.step_metrics.last().unwrap().rows, 10);
        assert!(report.step_metrics.iter().all(|m| m.segments >= 1));
        assert!(report.worker_peak_blocks.is_empty(), "serial plan");
    }

    #[test]
    fn explain_analyze_renders_per_step_table() {
        let table = sample_table();
        let schema = table.schema().clone();
        let query = QueryBuilder::new(&schema)
            .rank("a", &["dept"], &[("salary", false)])
            .rank("b", &[], &[("salary", false)])
            .build()
            .unwrap();
        let stats = TableStats::from_table(&table);
        let env = ExecEnv::with_memory_blocks(64);
        let plan = optimize(&query, &stats, Scheme::Cso, &env).unwrap();
        let (report, text) = explain_analyze(&plan, &table, &env).unwrap();
        assert_eq!(report.table.row_count(), 10);
        // EXPLAIN tree first, then the measured table and footers.
        assert!(text.starts_with("input:"), "{text}");
        for needle in [
            "wall ms",
            "model ms",
            "Δ ms",
            "spill B",
            "scan+filter",
            "total",
            "peak residency:",
            "pool traffic:",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // One table line per step metric, plus header/rules/total.
        let table_lines = text
            .lines()
            .filter(|l| l.starts_with("scan+filter") || l.contains('→') && l.contains('.'))
            .count();
        assert!(table_lines >= report.step_metrics.len(), "{text}");
    }

    #[test]
    fn exec_metrics_roundtrip_through_json() {
        let table = sample_table();
        let schema = table.schema().clone();
        let query = QueryBuilder::new(&schema)
            .rank("r", &["dept"], &[("salary", false)])
            .build()
            .unwrap();
        let stats = TableStats::from_table(&table);
        let env = ExecEnv::with_memory_blocks(64);
        let plan = optimize(&query, &stats, Scheme::Cso, &env).unwrap();
        let report = execute_plan_with_specs(&plan, &query.specs, &table, &env).unwrap();
        let metrics = ExecMetrics::from_report(&report);
        let parsed = json::Json::parse(&metrics.to_json()).unwrap();
        let back = ExecMetrics::from_json(&parsed).unwrap();
        assert_eq!(back.comparisons, metrics.comparisons);
        assert_eq!(back.rows_moved, metrics.rows_moved);
        assert_eq!(back.peak_resident_blocks, metrics.peak_resident_blocks);
        assert_eq!(back.worker_peak_blocks, metrics.worker_peak_blocks);
        assert!((back.modeled_ms - metrics.modeled_ms).abs() < 1e-3);
    }

    #[test]
    fn env_with_blocks_shares_tracker() {
        let env = ExecEnv::with_memory_blocks(8);
        let env2 = env.with_blocks(16);
        env.tracker().compare(5);
        assert_eq!(env2.tracker().snapshot().comparisons, 5);
        assert_eq!(env2.mem_blocks(), 16);
    }
}
