//! Plan execution: compiles a [`Plan`] into a chained tree of pull-based
//! [`Operator`]s and drives it **one segment at a time**.
//!
//! The chain for `ws FS→ wf2 HS→ wf1` is
//!
//! ```text
//! TableScan → FullSortOp → WindowOp(wf2) → HashedSortOp → WindowOp(wf1)
//! ```
//!
//! and the driver pulls segments off the last operator: after a Hashed Sort,
//! each bucket flows through window evaluation while the remaining buckets
//! are still unsorted — the paper's complete-partition pipelining (§3.2/3.3)
//! rather than fully-materialized hand-offs between steps.
//!
//! Cost attribution: every step's operators are wrapped in a `Metered`
//! shim that charges the shared tracker delta of each pull to its step,
//! minus whatever nested upstream steps charged during the same pull — so
//! the per-step breakdown in [`ExecReport::steps`] is exact even though the
//! steps' work interleaves in time. Totals are unchanged from the batch
//! executor: the operators charge the identical counters.

use crate::plan::{Plan, ReorderOp};
use crate::spec::WindowSpec;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wf_common::{Field, Result, Row};
use wf_exec::{
    FilterOp, FullSortOp, HashedSortOp, HsOptions, OpEnv, Operator, Segment, SegmentedSortOp,
    TableScan, WindowOp,
};
use wf_storage::{CostSnapshot, CostTracker, CostWeights, StoreSnapshot, Table};

/// Execution environment: unit reorder memory, spill medium, cost weights.
#[derive(Clone)]
pub struct ExecEnv {
    op_env: OpEnv,
    weights: CostWeights,
    /// Worker budget the planners may spend on `ReorderOp::Par` nodes
    /// (shard count of emitted parallel reorders). `1` keeps plans serial.
    /// Defaults from the `WF_WORKERS` environment variable (unset → 1) so a
    /// CI matrix can force parallel planning across a whole suite; pin with
    /// [`ExecEnv::with_par_workers`] where plans must stay reproducible.
    par_workers: usize,
}

impl ExecEnv {
    /// Environment with the given unit reorder memory (in blocks), a fresh
    /// tracker and the simulated spill device.
    pub fn with_memory_blocks(blocks: u64) -> Self {
        let op_env = OpEnv::with_memory_blocks(blocks);
        ExecEnv {
            par_workers: op_env.worker_threads.max(1),
            op_env,
            weights: CostWeights::default(),
        }
    }

    /// Same environment with the planner worker budget pinned (shares the
    /// tracker and store).
    pub fn with_par_workers(&self, workers: usize) -> Self {
        ExecEnv {
            par_workers: workers.max(1),
            ..self.clone()
        }
    }

    /// Worker budget for parallel planning (≥ 1).
    pub fn par_workers(&self) -> usize {
        self.par_workers
    }

    /// Same environment with the executor's worker-thread override pinned
    /// (see `wf_exec::OpEnv::worker_threads`); plan shapes are unaffected.
    pub fn with_worker_threads(&self, threads: usize) -> Self {
        ExecEnv {
            op_env: self.op_env.with_worker_threads(threads),
            ..self.clone()
        }
    }

    /// Memory budget in blocks (the paper's `M`).
    pub fn mem_blocks(&self) -> u64 {
        self.op_env.mem_blocks
    }

    /// The shared work counters.
    pub fn tracker(&self) -> &Arc<CostTracker> {
        &self.op_env.tracker
    }

    /// Time-model weights.
    pub fn weights(&self) -> CostWeights {
        self.weights
    }

    /// The operator-level environment.
    pub fn op_env(&self) -> &OpEnv {
        &self.op_env
    }

    /// Same environment with a different memory budget (shares the
    /// tracker).
    pub fn with_blocks(&self, blocks: u64) -> Self {
        ExecEnv {
            op_env: self.op_env.with_blocks(blocks),
            ..self.clone()
        }
    }

    /// Same environment with the executor fast paths toggled (normalized
    /// byte keys; boundary-layer reuse). Reference configuration for the
    /// equivalence suite and ablation benchmarks.
    pub fn with_toggles(&self, norm_keys: bool, reuse_bounds: bool) -> Self {
        ExecEnv {
            op_env: self.op_env.with_toggles(norm_keys, reuse_bounds),
            ..self.clone()
        }
    }

    /// Same environment with the columnar block path toggled (default on).
    /// `false` is the row-at-a-time reference configuration of the
    /// columnar equivalence suite.
    pub fn with_columnar(&self, columnar: bool) -> Self {
        ExecEnv {
            op_env: self.op_env.with_columnar(columnar),
            ..self.clone()
        }
    }

    /// Same environment with an unbounded segment pool — the pre-store
    /// pipeline's residency behaviour, used as the reference side of the
    /// residency equivalence suite.
    pub fn with_unbounded_pool(&self) -> Self {
        ExecEnv {
            op_env: self.op_env.with_unbounded_pool(),
            ..self.clone()
        }
    }

    /// Residency and pool-spill statistics of this environment's segment
    /// store.
    pub fn store_snapshot(&self) -> StoreSnapshot {
        self.op_env.store.snapshot()
    }
}

/// Result of executing a plan.
#[derive(Debug)]
pub struct ExecReport {
    /// The windowed table with one appended column per function.
    pub table: Table,
    /// Work performed by this execution (tracker delta).
    pub work: CostSnapshot,
    /// Modeled execution time under the environment's weights.
    pub modeled_ms: f64,
    /// Wall-clock time (secondary metric; the simulated device makes I/O
    /// free in wall time).
    pub wall: Duration,
    /// Per-step `(label, work)` breakdown.
    pub steps: Vec<(String, CostSnapshot)>,
    /// Segment-store residency and pool-spill statistics for this
    /// execution (peak resident bytes/rows, pool blocks moved). Pool
    /// traffic never enters `work` or `modeled_ms` — see
    /// `wf_storage::segstore`.
    pub store: StoreSnapshot,
    /// Per-step residency class of the window evaluation (`(label, class)`
    /// in chain order): which spilled-segment streaming discipline the
    /// step's `WindowOp` dispatches to — one-pass (`O(M)`), ring-buffer
    /// (`O(M + frame)`) or buffered (`O(M + partition)`). Resident
    /// segments always take the materialized path; the class governs what
    /// the store's high-water mark may charge to this step.
    pub eval_classes: Vec<(String, wf_exec::StreamableEval)>,
}

impl ExecReport {
    /// The weakest residency class across the chain — what bounds the
    /// execution's window-evaluation residency when calls of different
    /// classes mix.
    pub fn weakest_eval_class(&self) -> wf_exec::StreamableEval {
        wf_exec::StreamableEval::weakest(self.eval_classes.iter().map(|(_, c)| *c))
    }
}

/// Execute a finalized plan over `table`.
///
/// The initial table scan is charged (the windowed table is read once);
/// intermediate results flow in memory, and every reorder charges its own
/// spill I/O and comparisons, exactly like the paper's measured plan
/// execution times.
pub fn execute_plan(plan: &Plan, table: &Table, env: &ExecEnv) -> Result<ExecReport> {
    execute_plan_with_specs(plan, &plan.specs, table, env)
}

/// Shared per-step work accounting. Slot 0 is the table scan; slot `k + 1`
/// is plan step `k` (its reorder plus its window evaluation).
type MeterCells = Rc<RefCell<Vec<CostSnapshot>>>;

/// Wraps one step's operator subtree and attributes tracker deltas to its
/// slot. Because pulls recurse into upstream (already-metered) operators,
/// the shim subtracts whatever upstream slots accumulated during the same
/// pull — the remainder is exactly this step's own work.
struct Metered<O> {
    inner: O,
    tracker: Arc<CostTracker>,
    cells: MeterCells,
    idx: usize,
}

impl<O> Metered<O> {
    fn new(inner: O, tracker: Arc<CostTracker>, cells: MeterCells, idx: usize) -> Self {
        Metered {
            inner,
            tracker,
            cells,
            idx,
        }
    }

    fn upstream_sum(&self) -> CostSnapshot {
        self.cells.borrow()[..self.idx]
            .iter()
            .fold(CostSnapshot::default(), |acc, c| acc.plus(c))
    }
}

impl<O: Operator> Operator for Metered<O> {
    fn next_segment(&mut self) -> Result<Option<Segment>> {
        let upstream_before = self.upstream_sum();
        let before = self.tracker.snapshot();
        let result = self.inner.next_segment();
        let delta = self.tracker.snapshot().since(&before);
        let upstream_delta = self.upstream_sum().since(&upstream_before);
        let own = delta.since(&upstream_delta);
        let mut cells = self.cells.borrow_mut();
        let slot = &mut cells[self.idx];
        *slot = slot.plus(&own);
        result
    }
}

/// Compile a plan into its operator chain over `table`. Returns the chain's
/// sink plus the evaluation order of specs (the chain may evaluate window
/// functions in a different order than the SELECT list).
fn build_chain<'a>(
    plan: &Plan,
    specs: &[WindowSpec],
    table: &'a Table,
    env: &ExecEnv,
    cells: &MeterCells,
) -> (Box<dyn Operator + 'a>, Vec<usize>) {
    let tracker = Arc::clone(env.tracker());
    let op_env = env.op_env().clone();
    // Slot 0 is the scan plus the WHERE filter (when the plan carries one):
    // filtering streams through the scan's segments before any reorder.
    let scan = TableScan::new(table, op_env.clone());
    let source: Box<dyn Operator + 'a> = match &plan.filter {
        Some(pred) => Box::new(FilterOp::new(scan, pred.clone(), op_env.clone())),
        None => Box::new(scan),
    };
    let mut op: Box<dyn Operator + 'a> = Box::new(Metered::new(
        source,
        Arc::clone(&tracker),
        Rc::clone(cells),
        0,
    ));
    let mut eval_order: Vec<usize> = Vec::with_capacity(plan.steps.len());
    let mut k = 0;
    while k < plan.steps.len() {
        let step = &plan.steps[k];
        let spec = &specs[step.wf];
        // Sort-key prefixes whose boundary layers FS/HS record for free
        // during their final merge: the partition key and the partition ∪
        // order key (peer groups) — exactly what this step's window
        // evaluation (and any matched-prefix successor) starts from.
        let mut record = Vec::new();
        if !spec.wpk().is_empty() {
            record.push(spec.wpk().clone());
        }
        let union = spec.wpk().union(&spec.wok().attr_set());
        if !union.is_empty() && Some(&union) != record.first() {
            record.push(union);
        }
        op = match &step.reorder {
            ReorderOp::None => op,
            ReorderOp::Fs { key } => Box::new(
                FullSortOp::new(op, key.clone(), op_env.clone()).with_recorded_prefixes(record),
            ),
            ReorderOp::Hs {
                whk,
                key,
                n_buckets,
                mfv,
            } => {
                let opts = HsOptions {
                    n_buckets: *n_buckets,
                    mfv_values: mfv.clone(),
                    stable_emission: false,
                };
                Box::new(
                    HashedSortOp::new(op, whk.clone(), key.clone(), opts, op_env.clone())
                        .with_recorded_prefixes(record),
                )
            }
            ReorderOp::Ss { alpha, beta } => Box::new(SegmentedSortOp::new(
                op,
                alpha.clone(),
                beta.clone(),
                op_env.clone(),
            )),
            // Chain-parallel span: shard on the head's scatter key, then
            // keep going *inside* each worker — head reorder, this step's
            // window, and every fused SS-compatible successor — and merge
            // finished rows shard by shard (wf_exec::scheduler). The
            // finalizer guarantees an FS or HS inner; a hand-built plan
            // with any other inner falls back to a serial Full Sort rather
            // than mis-executing.
            ReorderOp::Par { inner, workers } => {
                let par_inner = match inner.as_ref() {
                    ReorderOp::Fs { key } => Some(wf_exec::ParInner::Fs { key: key.clone() }),
                    ReorderOp::Hs {
                        whk,
                        key,
                        n_buckets,
                        ..
                    } => Some(wf_exec::ParInner::Hs {
                        whk: whk.clone(),
                        key: key.clone(),
                        n_buckets: *n_buckets,
                    }),
                    _ => None,
                };
                if let Some(par_inner) = par_inner {
                    let span = crate::plan::par_span_len(&plan.steps, specs, k);
                    let shard = crate::plan::par_shard_attrs(step, specs);
                    let stages: Vec<wf_exec::ChainStage> = plan.steps[k..k + span]
                        .iter()
                        .map(|s| {
                            let sp = &specs[s.wf];
                            wf_exec::ChainStage {
                                ss: match &s.reorder {
                                    ReorderOp::Ss { alpha, beta } => {
                                        Some((alpha.clone(), beta.clone()))
                                    }
                                    _ => None,
                                },
                                wpk: sp.wpk().clone(),
                                wok: sp.wok().clone(),
                                func: sp.func.clone(),
                                frame: sp.frame,
                            }
                        })
                        .collect();
                    op = Box::new(
                        wf_exec::ParallelChainOp::new(
                            op,
                            par_inner,
                            shard,
                            *workers,
                            stages,
                            op_env.clone(),
                        )
                        .with_recorded_prefixes(record),
                    );
                    // One `Metered` shim per fused slot keeps the report at
                    // one entry per plan step. The innermost shim (the Par
                    // step's own slot) absorbs the whole span's work; the
                    // outer shims see it already attributed upstream and
                    // report zero — elapsed work inside the workers is not
                    // separable per stage.
                    for slot in k..k + span {
                        op = Box::new(Metered::new(
                            op,
                            Arc::clone(&tracker),
                            Rc::clone(cells),
                            slot + 1,
                        ));
                    }
                    for s in &plan.steps[k..k + span] {
                        eval_order.push(s.wf);
                    }
                    k += span;
                    continue;
                }
                debug_assert!(false, "Par node with unsupported inner: {inner:?}");
                Box::new(
                    FullSortOp::new(op, crate::plan::default_fs_key(spec), op_env.clone())
                        .with_recorded_prefixes(record),
                )
            }
        };
        op = Box::new(WindowOp::new(
            op,
            spec.wpk().clone(),
            spec.wok().clone(),
            spec.func.clone(),
            spec.frame,
            op_env.clone(),
        ));
        op = Box::new(Metered::new(
            op,
            Arc::clone(&tracker),
            Rc::clone(cells),
            k + 1,
        ));
        eval_order.push(step.wf);
        k += 1;
    }
    (op, eval_order)
}

/// Execute a plan against an explicit spec list (normally `plan.specs`).
pub fn execute_plan_with_specs(
    plan: &Plan,
    specs: &[WindowSpec],
    table: &Table,
    env: &ExecEnv,
) -> Result<ExecReport> {
    let tracker = env.tracker();
    let start_snapshot = tracker.snapshot();
    let start = Instant::now();
    let base_len = table.schema().len();

    // Compile the chain and drive it segment by segment: downstream steps
    // consume each bucket / run while upstream ones still hold the rest.
    let cells: MeterCells = Rc::new(RefCell::new(vec![
        CostSnapshot::default();
        plan.steps.len() + 1
    ]));
    let (mut op, eval_order) = build_chain(plan, specs, table, env, &cells);
    let mut rows: Vec<Row> = Vec::new();
    while let Some(seg) = op.next_segment()? {
        rows.extend(seg.into_rows()?);
    }
    drop(op);

    let steps_report: Vec<(String, CostSnapshot)> = plan
        .steps
        .iter()
        .zip(cells.borrow().iter().skip(1))
        .map(|(step, work)| {
            (
                format!("{} {}", step.reorder.arrow(), specs[step.wf].name),
                *work,
            )
        })
        .collect();

    // Output schema in SELECT order.
    let mut schema = table.schema().clone();
    for spec in specs {
        let dt = spec.func.result_type(table.schema());
        schema = schema.with_appended(Field::new(spec.name.clone(), dt))?;
    }
    // Project appended columns from evaluation order back to SELECT order.
    let identity = eval_order.iter().copied().eq(0..specs.len());
    if !identity {
        // position_of_spec[s] = which appended slot holds spec s's values.
        let mut position_of_spec = vec![usize::MAX; specs.len()];
        for (k, &s) in eval_order.iter().enumerate() {
            position_of_spec[s] = k;
        }
        for row in &mut rows {
            let mut vals = std::mem::replace(row, wf_common::Row::new(vec![])).into_values();
            let tail = vals.split_off(base_len);
            for &pos in &position_of_spec {
                vals.push(tail[pos].clone());
            }
            *row = wf_common::Row::new(vals);
        }
    }

    let work = tracker.snapshot().since(&start_snapshot);
    let table_out = Table::from_rows(schema, rows)?;
    // The classes were recorded on the plan at finalize time — the single
    // source of truth; the executed specs must classify identically (the
    // chain dispatches on the same (function, frame) pairs).
    debug_assert!(
        plan.steps
            .iter()
            .zip(&plan.eval_classes)
            .all(|(step, &class)| specs[step.wf].eval_class() == class),
        "plan eval classes diverged from the executed specs"
    );
    let eval_classes = plan
        .steps
        .iter()
        .zip(&plan.eval_classes)
        .map(|(step, &class)| (specs[step.wf].name.clone(), class))
        .collect();
    Ok(ExecReport {
        table: table_out,
        modeled_ms: env.weights.modeled_ms(&work),
        work,
        wall: start.elapsed(),
        steps: steps_report,
        store: env.store_snapshot(),
        eval_classes,
    })
}

/// Project a table to the given output columns (SELECT-list projection;
/// applied after any final ORDER BY so sort keys may reference dropped
/// columns).
pub fn project(table: Table, columns: &[wf_common::AttrId]) -> Result<Table> {
    let schema_in = table.schema().clone();
    let fields: Vec<Field> = columns
        .iter()
        .map(|&a| schema_in.field(a).clone())
        .collect();
    let schema = wf_common::Schema::new(fields)?;
    let mut out = Table::new(schema);
    for row in table.into_rows() {
        let vals: Vec<wf_common::Value> = columns.iter().map(|&a| row.get(a).clone()).collect();
        out.push(wf_common::Row::new(vals));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableStats;
    use crate::planner::{optimize, Scheme};
    use crate::query::QueryBuilder;
    use wf_common::{row, DataType, Schema};

    fn sample_table() -> Table {
        let schema = Schema::of(&[
            ("empnum", DataType::Int),
            ("dept", DataType::Int),
            ("salary", DataType::Int),
        ]);
        let mut t = Table::new(schema);
        // The paper's Example 1 data (dept NULL → Value::Null).
        let rows: Vec<(i64, Option<i64>, Option<i64>)> = vec![
            (1, None, None),
            (2, None, Some(84000)),
            (3, Some(2), None),
            (4, Some(1), Some(78000)),
            (5, Some(1), Some(75000)),
            (6, Some(3), Some(79000)),
            (7, Some(2), Some(51000)),
            (8, Some(3), Some(55000)),
            (9, Some(1), Some(53000)),
            (10, Some(3), Some(75000)),
        ];
        for (e, d, s) in rows {
            t.push(row![e, d, s]);
        }
        t
    }

    /// End-to-end reproduction of the paper's Example 1 output columns.
    #[test]
    fn example1_end_to_end() {
        let table = sample_table();
        let schema = table.schema().clone();
        let query = QueryBuilder::new(&schema)
            .rank("rank_in_dept", &["dept"], &[("salary", true)])
            .rank("globalrank", &[], &[("salary", true)])
            .build()
            .unwrap();
        let stats = TableStats::from_table(&table);
        let env = ExecEnv::with_memory_blocks(64);
        for scheme in [Scheme::Cso, Scheme::Psql, Scheme::Orcl, Scheme::Bfo] {
            let plan = optimize(&query, &stats, scheme, &env).unwrap();
            let report = execute_plan_with_specs(&plan, &query.specs, &table, &env).unwrap();
            let out = &report.table;
            assert_eq!(out.row_count(), 10);
            let s = out.schema().clone();
            let empnum = s.resolve("empnum").unwrap();
            let rid = s.resolve("rank_in_dept").unwrap();
            let gr = s.resolve("globalrank").unwrap();
            // Expected from the paper's sample output.
            let expected: std::collections::HashMap<i64, (i64, i64)> = [
                (4, (1, 3)),
                (5, (2, 4)),
                (9, (3, 7)),
                (7, (1, 8)),
                (3, (2, 9)),
                (6, (1, 2)),
                (10, (2, 4)),
                (8, (3, 6)),
                (2, (1, 1)),
                (1, (2, 9)),
            ]
            .into_iter()
            .collect();
            for r in out.rows() {
                let e = r.get(empnum).as_int().unwrap();
                let got = (r.get(rid).as_int().unwrap(), r.get(gr).as_int().unwrap());
                assert_eq!(got, expected[&e], "scheme {scheme}: empnum {e}");
            }
        }
    }

    #[test]
    fn report_contains_per_step_breakdown() {
        let table = sample_table();
        let schema = table.schema().clone();
        let query = QueryBuilder::new(&schema)
            .rank("r", &["dept"], &[("salary", false)])
            .build()
            .unwrap();
        let stats = TableStats::from_table(&table);
        let env = ExecEnv::with_memory_blocks(64);
        let plan = optimize(&query, &stats, Scheme::Cso, &env).unwrap();
        let report = execute_plan_with_specs(&plan, &query.specs, &table, &env).unwrap();
        assert_eq!(report.steps.len(), 1);
        assert!(report.modeled_ms > 0.0);
        assert!(report.work.rows_moved > 0);
    }

    /// The report carries one residency class per chain step, and the
    /// weakest member governs — here a rank (ring class) chain.
    #[test]
    fn report_records_eval_classes() {
        let table = sample_table();
        let schema = table.schema().clone();
        let query = QueryBuilder::new(&schema)
            .rank("r", &["dept"], &[("salary", false)])
            .build()
            .unwrap();
        let stats = TableStats::from_table(&table);
        let env = ExecEnv::with_memory_blocks(64);
        let plan = optimize(&query, &stats, Scheme::Cso, &env).unwrap();
        assert_eq!(plan.eval_classes, vec![wf_exec::StreamableEval::Ring]);
        assert_eq!(plan.weakest_eval_class(), wf_exec::StreamableEval::Ring);
        let report = execute_plan_with_specs(&plan, &query.specs, &table, &env).unwrap();
        assert_eq!(report.eval_classes.len(), 1);
        assert_eq!(report.eval_classes[0].0, "r");
        assert_eq!(report.eval_classes[0].1, wf_exec::StreamableEval::Ring);
        assert_eq!(report.weakest_eval_class(), wf_exec::StreamableEval::Ring);
    }

    #[test]
    fn env_with_blocks_shares_tracker() {
        let env = ExecEnv::with_memory_blocks(8);
        let env2 = env.with_blocks(16);
        env.tracker().compare(5);
        assert_eq!(env2.tracker().snapshot().comparisons, 5);
        assert_eq!(env2.mem_blocks(), 16);
    }
}
