//! **BFO** — brute-force enumeration of window-function chains (§6).
//!
//! Explores every evaluation order, every applicable reordering operator
//! and (bounded) every sort-key permutation / hash-key subset, so it finds
//! the optimal plan under the cost models. The default configuration
//! memoizes on `(evaluated set, physical properties)`; the *enumerative*
//! configuration disables memoization, exhibiting the exponential blow-up
//! the paper reports in Table 11 (2.7 hours at 10 functions on their
//! hardware). A node budget bounds runaway enumerations; hitting it marks
//! the plan as truncated (best found so far).

use crate::cost::{hs_bucket_count, window_scan_cost};
use crate::plan::{
    apply_reorder, default_fs_key, finalize_chain, reorder_cost, Plan, PlanContext, PlanStep,
    ReorderOp,
};
use crate::props::SegProps;
use crate::query::WindowQuery;
use crate::spec::WindowSpec;
use std::collections::HashMap;
use wf_common::{AttrId, AttrSet, Error, OrdElem, Result, SortSpec};

/// Search configuration.
#[derive(Debug, Clone)]
pub struct BfoOptions {
    /// Enumerate all WPK permutations / WHK subsets up to this WPK size
    /// (larger keys fall back to the canonical choice).
    pub perm_limit: usize,
    /// Memoize on (mask, props); disable to demonstrate Table 11's blow-up.
    pub memoize: bool,
    /// Abort after this many search nodes (plan marked truncated).
    pub node_budget: u64,
}

impl Default for BfoOptions {
    fn default() -> Self {
        BfoOptions {
            perm_limit: 4,
            memoize: true,
            node_budget: 50_000_000,
        }
    }
}

struct Search<'a> {
    specs: &'a [WindowSpec],
    ctx: &'a PlanContext<'a>,
    opts: &'a BfoOptions,
    memo: HashMap<(u32, SegProps, u64), (f64, Vec<PlanStep>)>,
    nodes: u64,
    truncated: bool,
}

/// All permutations of a small attribute set.
fn permutations(attrs: &AttrSet) -> Vec<Vec<AttrId>> {
    let items: Vec<AttrId> = attrs.iter().collect();
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(items.len());
    let mut used = vec![false; items.len()];
    fn rec(
        items: &[AttrId],
        used: &mut [bool],
        current: &mut Vec<AttrId>,
        out: &mut Vec<Vec<AttrId>>,
    ) {
        if current.len() == items.len() {
            out.push(current.clone());
            return;
        }
        for i in 0..items.len() {
            if !used[i] {
                used[i] = true;
                current.push(items[i]);
                rec(items, used, current, out);
                current.pop();
                used[i] = false;
            }
        }
    }
    rec(&items, &mut used, &mut current, &mut out);
    out
}

/// Non-empty subsets of a small attribute set.
fn subsets(attrs: &AttrSet) -> Vec<AttrSet> {
    let items: Vec<AttrId> = attrs.iter().collect();
    let mut out = Vec::new();
    for mask in 1u32..(1 << items.len()) {
        out.push(AttrSet::from_iter(
            items
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &a)| a),
        ));
    }
    out
}

impl<'a> Search<'a> {
    /// Candidate reorders for evaluating `spec` on `props`.
    fn options(&self, props: &SegProps, segments: u64, spec: &WindowSpec) -> Vec<ReorderOp> {
        if props.matches(spec) {
            return vec![ReorderOp::None];
        }
        let mut out = Vec::new();
        let keys: Vec<SortSpec> = if spec.wpk().len() <= self.opts.perm_limit {
            permutations(spec.wpk())
                .into_iter()
                .map(|perm| {
                    let head: Vec<OrdElem> = perm.iter().map(|&a| OrdElem::asc(a)).collect();
                    SortSpec::new(head).concat(spec.wok())
                })
                .collect()
        } else {
            vec![default_fs_key(spec)]
        };
        if self.ctx.allow_ss && props.ss_reorderable(spec) {
            // α is determined by the input; enumerate β arrangements via
            // the same key permutations (α = satisfied prefix of each key).
            for key in &keys {
                let n = props.satisfied_prefix_of(key);
                if n > 0 || !props.x().is_empty() {
                    let op = ReorderOp::Ss {
                        alpha: key.prefix(n),
                        beta: key.suffix(n),
                    };
                    if !out.contains(&op) {
                        out.push(op);
                    }
                }
            }
            if out.is_empty() {
                let split = props.alpha_split(spec);
                out.push(ReorderOp::Ss {
                    alpha: split.alpha,
                    beta: split.beta,
                });
            }
        }
        for key in &keys {
            out.push(ReorderOp::Fs { key: key.clone() });
        }
        if self.ctx.allow_hs && !spec.wpk().is_empty() {
            let whks = if spec.wpk().len() <= self.opts.perm_limit {
                subsets(spec.wpk())
            } else {
                vec![spec.wpk().clone()]
            };
            for whk in whks {
                let n_buckets = hs_bucket_count(self.ctx.stats, &whk, self.ctx.mem_blocks);
                let mfv = self.ctx.stats.mfv_for(&whk, self.ctx.mem_blocks);
                for key in &keys {
                    out.push(ReorderOp::Hs {
                        whk: whk.clone(),
                        key: key.clone(),
                        n_buckets,
                        mfv: mfv.clone(),
                    });
                }
            }
        }
        // Partition-parallel reorders when the context has a worker budget:
        // same resulting properties as the serial inner on each key,
        // different cost. The HS inner scatters on the WPK itself (worker
        // bucket tables sized for the per-worker budget share, no MFV).
        if self.ctx.workers > 1 && !spec.wpk().is_empty() {
            for key in &keys {
                out.push(ReorderOp::Par {
                    inner: Box::new(ReorderOp::Fs { key: key.clone() }),
                    workers: self.ctx.workers,
                });
            }
            if self.ctx.allow_hs {
                let whk = spec.wpk().clone();
                let m_w = wf_exec::per_worker_blocks(self.ctx.mem_blocks, self.ctx.workers);
                let n_buckets = hs_bucket_count(self.ctx.stats, &whk, m_w);
                for key in &keys {
                    out.push(ReorderOp::Par {
                        inner: Box::new(ReorderOp::Hs {
                            whk: whk.clone(),
                            key: key.clone(),
                            n_buckets,
                            mfv: vec![],
                        }),
                        workers: self.ctx.workers,
                    });
                }
            }
        }
        let _ = segments;
        out
    }

    fn solve(&mut self, mask: u32, props: &SegProps, segments: u64) -> (f64, Vec<PlanStep>) {
        let full = (1u32 << self.specs.len()) - 1;
        if mask == full {
            return (0.0, vec![]);
        }
        if self.opts.memoize {
            if let Some(hit) = self.memo.get(&(mask, props.clone(), segments)) {
                return hit.clone();
            }
        }
        self.nodes += 1;
        if self.nodes > self.opts.node_budget {
            self.truncated = true;
            // Fall back: finish greedily in index order.
            let mut steps = Vec::new();
            let mut p = props.clone();
            let mut seg = segments;
            let mut cost = 0.0;
            for i in 0..self.specs.len() {
                if mask & (1 << i) != 0 {
                    continue;
                }
                let spec = &self.specs[i];
                let op = if p.matches(spec) {
                    ReorderOp::None
                } else {
                    crate::plan::cheapest_reorder(&p, seg, spec, self.ctx).0
                };
                cost += reorder_cost(&op, &p, seg, spec, self.ctx).ms(&self.ctx.weights);
                cost += window_scan_cost(self.ctx.stats).ms(&self.ctx.weights);
                let (p2, s2) = apply_reorder(&op, &p, seg, spec, self.ctx.stats);
                p = p2;
                seg = s2;
                steps.push(PlanStep { wf: i, reorder: op });
            }
            return (cost, steps);
        }

        // Residency rank of a chain: its weakest (largest-unit) reorder —
        // the equal-cost tiebreak prefers the chain whose weakest member is
        // strongest (ROADMAP's pool-aware planning remainder).
        let worst_rank =
            |steps: &[PlanStep]| steps.iter().map(|s| s.reorder.residency_rank()).max();
        let mut best: Option<(f64, Vec<PlanStep>)> = None;
        for i in 0..self.specs.len() {
            if mask & (1 << i) != 0 {
                continue;
            }
            let spec = &self.specs[i];
            for op in self.options(props, segments, spec) {
                let step_cost = reorder_cost(&op, props, segments, spec, self.ctx)
                    .ms(&self.ctx.weights)
                    + window_scan_cost(self.ctx.stats).ms(&self.ctx.weights);
                let (p2, s2) = apply_reorder(&op, props, segments, spec, self.ctx.stats);
                if !p2.matches(spec) {
                    continue; // key choice did not realize a matching order
                }
                let (rest_cost, rest_steps) = self.solve(mask | (1 << i), &p2, s2);
                let total = step_cost + rest_cost;
                let better = match &best {
                    None => true,
                    Some((c, bsteps)) => {
                        if crate::plan::costs_tie(total, *c) {
                            let cand = worst_rank(&rest_steps)
                                .unwrap_or(0)
                                .max(op.residency_rank());
                            cand < worst_rank(bsteps).unwrap_or(0)
                        } else {
                            total < *c
                        }
                    }
                };
                if better {
                    let mut steps = Vec::with_capacity(rest_steps.len() + 1);
                    steps.push(PlanStep { wf: i, reorder: op });
                    steps.extend(rest_steps);
                    best = Some((total, steps));
                }
            }
        }
        let best = best.expect("FS is always applicable, some option must match");
        if self.opts.memoize {
            self.memo
                .insert((mask, props.clone(), segments), best.clone());
        }
        best
    }
}

/// Run the brute-force search and finalize the best chain.
pub fn plan_bfo(query: &WindowQuery, ctx: &PlanContext<'_>, opts: &BfoOptions) -> Result<Plan> {
    if query.specs.len() > 20 {
        return Err(Error::Planning(format!(
            "BFO limited to 20 window functions, got {}",
            query.specs.len()
        )));
    }
    let mut search = Search {
        specs: &query.specs,
        ctx,
        opts,
        memo: HashMap::new(),
        nodes: 0,
        truncated: false,
    };
    let (_, steps) = search.solve(0, &query.input_props, query.input_segments);
    let mut plan = finalize_chain(
        if search.truncated {
            "BFO(truncated)"
        } else {
            "BFO"
        },
        &query.specs,
        &query.input_props,
        query.input_segments,
        steps,
        ctx,
    );
    if search.truncated {
        plan.scheme = "BFO(truncated)".into();
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableStats;
    use crate::planner::{plan_cso, plan_psql};
    use wf_common::{DataType, Schema};

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }
    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
    }
    fn wf(name: &str, wpk: &[usize], wok: &[usize]) -> WindowSpec {
        WindowSpec::rank(name, wpk.iter().map(|&i| a(i)).collect(), key(wok))
    }
    fn stats() -> TableStats {
        TableStats::synthetic(
            400_000,
            10_600 * wf_storage::BLOCK_SIZE as u64,
            vec![
                (a(0), 1_800),
                (a(1), 86_400),
                (a(2), 1_800),
                (a(3), 20_000),
                (a(4), 40_000),
            ],
        )
    }
    fn schema5() -> Schema {
        Schema::of(&[
            ("date", DataType::Int),
            ("time", DataType::Int),
            ("ship", DataType::Int),
            ("item", DataType::Int),
            ("bill", DataType::Int),
        ])
    }

    #[test]
    fn permutations_and_subsets() {
        let s = AttrSet::from_iter([a(0), a(1), a(2)]);
        assert_eq!(permutations(&s).len(), 6);
        assert_eq!(subsets(&s).len(), 7);
    }

    /// Q6 at 50 MB-equivalent: BFO finds the paper's plan HS→SS.
    #[test]
    fn q6_bfo_matches_paper() {
        let q = WindowQuery::new(
            schema5(),
            vec![wf("wf1", &[3], &[0]), wf("wf2", &[3], &[4])],
        );
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let plan = plan_bfo(&q, &ctx, &BfoOptions::default()).unwrap();
        assert_eq!(plan.repairs, 0);
        let chain = plan.chain_string();
        assert!(
            chain == "ws HS→ wf1 SS→ wf2" || chain == "ws HS→ wf2 SS→ wf1",
            "{chain}"
        );
    }

    /// BFO is never worse than CSO or PSQL under the same cost model.
    #[test]
    fn bfo_is_lower_bound() {
        let q = WindowQuery::new(
            schema5(),
            vec![
                wf("wf1", &[0, 1, 2], &[]),
                wf("wf2", &[1, 0], &[]),
                wf("wf3", &[3], &[]),
                wf("wf4", &[], &[3, 4]),
                wf("wf5", &[0, 1, 3, 4], &[2]),
            ],
        );
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let bfo = plan_bfo(&q, &ctx, &BfoOptions::default()).unwrap();
        let cso = plan_cso(&q, &ctx).unwrap();
        let psql = plan_psql(&q, &ctx).unwrap();
        let w = ctx.weights;
        assert!(bfo.est_cost.ms(&w) <= cso.est_cost.ms(&w) + 1e-6);
        assert!(bfo.est_cost.ms(&w) <= psql.est_cost.ms(&w) + 1e-6);
        // And CSO is near-optimal on the paper's queries.
        assert!(cso.est_cost.ms(&w) <= 1.05 * bfo.est_cost.ms(&w));
    }

    /// Example 7's insight: the FS key permutation matters. With
    /// wf1 = ({a,b}, ε) then wf2 = ({a},(c)), BFO must sort (a,b) — not
    /// (b,a) — so that wf2 is SS-reorderable afterwards.
    #[test]
    fn example7_key_permutation() {
        let q = WindowQuery::new(
            schema5(),
            vec![wf("wf1", &[0, 1], &[]), wf("wf2", &[0], &[2])],
        );
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let plan = plan_bfo(&q, &ctx, &BfoOptions::default()).unwrap();
        // One FS/HS + one SS, never two full reorders.
        let fs_hs = plan
            .steps
            .iter()
            .filter(|st| matches!(st.reorder, ReorderOp::Fs { .. } | ReorderOp::Hs { .. }))
            .count();
        let ss = plan
            .steps
            .iter()
            .filter(|st| matches!(st.reorder, ReorderOp::Ss { .. }))
            .count();
        assert_eq!((fs_hs, ss), (1, 1), "{}", plan.chain_string());
    }

    /// Tiny node budget triggers truncation but still yields a valid plan.
    #[test]
    fn node_budget_truncates_gracefully() {
        let q = WindowQuery::new(
            schema5(),
            vec![
                wf("wf1", &[0, 1], &[2]),
                wf("wf2", &[3], &[0]),
                wf("wf3", &[4], &[1]),
                wf("wf4", &[], &[2, 3]),
            ],
        );
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let opts = BfoOptions {
            node_budget: 3,
            ..Default::default()
        };
        let plan = plan_bfo(&q, &ctx, &opts).unwrap();
        assert_eq!(plan.scheme, "BFO(truncated)");
        assert_eq!(plan.steps.len(), 4);
        assert!(plan
            .final_props
            .matches(&q.specs[plan.steps.last().unwrap().wf]));
    }

    #[test]
    fn too_many_functions_rejected() {
        let specs: Vec<WindowSpec> = (0..21).map(|i| wf(&format!("w{i}"), &[0], &[])).collect();
        // Names must be unique but WindowQuery::new does not enforce;
        // plan_bfo still rejects on count.
        let q = WindowQuery::new(schema5(), specs);
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        assert!(plan_bfo(&q, &ctx, &BfoOptions::default()).is_err());
    }
}
