//! The PSQL baseline: PostgreSQL 9.1's naive scheme (§6).
//!
//! Window functions are evaluated strictly in SELECT-clause order; every
//! unmatched function is reordered with a Full Sort whose key is the
//! *written* order of its PARTITION BY attributes followed by its ORDER BY.
//! The only optimization is skipping the sort when the input already
//! matches (which is why the paper's Q9 PSQL plan still shares one sort
//! between wf2 and wf3).

use crate::plan::{apply_reorder, finalize_chain, Plan, PlanContext, PlanStep, ReorderOp};
use crate::props::SegProps;
use crate::query::WindowQuery;
use crate::spec::WindowSpec;
use wf_common::Result;

/// PostgreSQL 9.1's match test is purely positional: the current sort key
/// must start with the function's *written* key, element for element. It
/// cannot see that `(time, date)` is satisfied by a `(date, time, …)` sort —
/// the gap the paper's Q7 exposes (its wf1/wf2 pair is never shared).
fn psql_matches(props: &SegProps, spec: &WindowSpec) -> bool {
    props.x().is_empty() && spec.written_key().is_prefix_of(props.y())
}

/// Produce the PSQL chain.
pub fn plan_psql(query: &WindowQuery, ctx: &PlanContext<'_>) -> Result<Plan> {
    let specs = &query.specs;
    let mut props = query.input_props.clone();
    let mut segments = query.input_segments;
    let mut steps = Vec::with_capacity(specs.len());

    for (i, spec) in specs.iter().enumerate() {
        let reorder = if psql_matches(&props, spec) {
            ReorderOp::None
        } else {
            ReorderOp::Fs {
                key: spec.written_key(),
            }
        };
        let (p2, s2) = apply_reorder(&reorder, &props, segments, spec, ctx.stats);
        props = p2;
        segments = s2;
        steps.push(PlanStep { wf: i, reorder });
    }
    Ok(finalize_chain(
        "PSQL",
        specs,
        &query.input_props,
        query.input_segments,
        steps,
        ctx,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableStats;
    use crate::spec::WindowSpec;
    use wf_common::{AttrId, OrdElem, SortSpec};

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }
    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
    }
    fn stats() -> TableStats {
        TableStats::synthetic(
            400_000,
            10_600 * wf_storage::BLOCK_SIZE as u64,
            vec![(a(0), 1800), (a(1), 20_000), (a(2), 80_000), (a(3), 40_000)],
        )
    }
    fn query(specs: Vec<WindowSpec>) -> WindowQuery {
        let schema = wf_common::Schema::of(&[
            ("date", wf_common::DataType::Int),
            ("item", wf_common::DataType::Int),
            ("time", wf_common::DataType::Int),
            ("bill", wf_common::DataType::Int),
        ]);
        WindowQuery::new(schema, specs)
    }

    /// Q9's PSQL sharing: wf2 = ({item,time},(date)) sorted on its written
    /// key (item,time,date) leaves wf3 = ({item},(time)) matched.
    #[test]
    fn psql_shares_sort_when_matched() {
        let wf2 = WindowSpec::rank("wf2", vec![a(1), a(2)], key(&[0]));
        let wf3 = WindowSpec::rank("wf3", vec![a(1)], key(&[2]));
        let q = query(vec![wf2, wf3]);
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let plan = plan_psql(&q, &ctx).unwrap();
        assert_eq!(plan.repairs, 0);
        assert!(matches!(plan.steps[0].reorder, ReorderOp::Fs { .. }));
        assert_eq!(plan.steps[1].reorder, ReorderOp::None);
    }

    /// Q7's gap: wf1 = ({date,time,ship}, ε) sorts on (date,time,ship);
    /// wf2 = ({time,date}, ε) is *semantically* matched but PSQL's
    /// positional check cannot see it, so it sorts again (paper Table 6).
    #[test]
    fn psql_misses_permuted_match() {
        let wf1 = WindowSpec::rank("wf1", vec![a(0), a(2), a(3)], key(&[]));
        let wf2 = WindowSpec::rank("wf2", vec![a(2), a(0)], key(&[]));
        let q = query(vec![wf1, wf2]);
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let plan = plan_psql(&q, &ctx).unwrap();
        assert_eq!(plan.reorder_count(), 2, "{}", plan.chain_string());
    }

    /// PSQL uses the *written* WPK order, so ({b,a},...) sorts on (b,a,...).
    #[test]
    fn psql_written_order_key() {
        let wf1 = WindowSpec::rank("wf1", vec![a(3), a(1)], key(&[0]));
        let q = query(vec![wf1]);
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let plan = plan_psql(&q, &ctx).unwrap();
        match &plan.steps[0].reorder {
            ReorderOp::Fs { key } => {
                assert_eq!(key.attr_seq().as_slice(), &[a(3), a(1), a(0)]);
            }
            other => panic!("expected FS, got {other:?}"),
        }
    }

    /// Every reorder is an FS: PSQL never uses HS or SS even when SS would
    /// apply.
    #[test]
    fn psql_is_fs_only() {
        let wf1 = WindowSpec::rank("wf1", vec![a(1)], key(&[0]));
        let wf2 = WindowSpec::rank("wf2", vec![a(1)], key(&[2]));
        let q = query(vec![wf1, wf2]);
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let plan = plan_psql(&q, &ctx).unwrap();
        assert_eq!(plan.reorder_count(), 2);
        assert!(plan
            .steps
            .iter()
            .all(|st| matches!(st.reorder, ReorderOp::Fs { .. } | ReorderOp::None)));
    }
}
