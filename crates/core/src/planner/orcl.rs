//! The ORCL baseline: Oracle 8i's ordering-group scheme (§6, [5]).
//!
//! Window functions are clustered into a minimum number of *ordering
//! groups* — equivalent to the paper's cover sets — but the leading
//! function of each group may only be reordered with a Full Sort. The
//! clustering heuristic processes functions in SELECT order and joins the
//! first group whose covering key can absorb the newcomer (Oracle's exact
//! tie-breaking is unpublished; group *counts* match the paper, membership
//! can differ on ties — see EXPERIMENTS.md).
//!
//! Groups are evaluated largest-first (then by smallest member index);
//! within a group the covering function runs first.

use crate::cover::try_cover_set;
use crate::plan::{apply_reorder, finalize_chain, Plan, PlanContext, PlanStep, ReorderOp};
use crate::query::WindowQuery;
use wf_common::Result;

/// Produce the ORCL chain.
pub fn plan_orcl(query: &WindowQuery, ctx: &PlanContext<'_>) -> Result<Plan> {
    let specs = &query.specs;

    // Greedy ordering-group formation in SELECT order.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..specs.len() {
        let mut joined = false;
        for g in groups.iter_mut() {
            let mut trial = g.clone();
            trial.push(i);
            if try_cover_set(specs, &trial, None).is_some() {
                g.push(i);
                joined = true;
                break;
            }
        }
        if !joined {
            groups.push(vec![i]);
        }
    }

    // Evaluation order: size desc, then smallest member index.
    groups.sort_by_key(|g| {
        (
            std::cmp::Reverse(g.len()),
            g.iter().copied().min().unwrap_or(usize::MAX),
        )
    });

    let mut props = query.input_props.clone();
    let mut segments = query.input_segments;
    let mut steps = Vec::with_capacity(specs.len());
    for g in &groups {
        let cs = try_cover_set(specs, g, None).expect("groups were built as cover sets");
        let gamma = cs.key();
        for (j, &wf) in cs.members.iter().enumerate() {
            let reorder = if j == 0 {
                if props.matches_all(cs.members.iter().map(|&m| &specs[m])) {
                    ReorderOp::None
                } else {
                    ReorderOp::Fs { key: gamma.clone() }
                }
            } else {
                ReorderOp::None
            };
            let (p2, s2) = apply_reorder(&reorder, &props, segments, &specs[wf], ctx.stats);
            props = p2;
            segments = s2;
            steps.push(PlanStep { wf, reorder });
        }
    }
    Ok(finalize_chain(
        "ORCL",
        specs,
        &query.input_props,
        query.input_segments,
        steps,
        ctx,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableStats;
    use crate::spec::WindowSpec;
    use wf_common::{AttrId, OrdElem, SortSpec};

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }
    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
    }
    fn wf(name: &str, wpk: &[usize], wok: &[usize]) -> WindowSpec {
        WindowSpec::rank(name, wpk.iter().map(|&i| a(i)).collect(), key(wok))
    }
    fn stats() -> TableStats {
        TableStats::synthetic(
            400_000,
            10_600 * wf_storage::BLOCK_SIZE as u64,
            vec![
                (a(0), 1800),
                (a(1), 80_000),
                (a(2), 200),
                (a(3), 20_000),
                (a(4), 40_000),
            ],
        )
    }
    /// Attrs: date=0, time=1, ship=2, item=3, bill=4.
    fn q7() -> WindowQuery {
        let schema = wf_common::Schema::of(&[
            ("date", wf_common::DataType::Int),
            ("time", wf_common::DataType::Int),
            ("ship", wf_common::DataType::Int),
            ("item", wf_common::DataType::Int),
            ("bill", wf_common::DataType::Int),
        ]);
        WindowQuery::new(
            schema,
            vec![
                wf("wf1", &[0, 1, 2], &[]),
                wf("wf2", &[1, 0], &[]),
                wf("wf3", &[3], &[]),
                wf("wf4", &[], &[3, 4]),
                wf("wf5", &[0, 1, 3, 4], &[2]),
            ],
        )
    }

    /// Paper Table 6, ORCL row: ws FS→ wf5 → wf4 → wf3 FS→ wf1 → wf2.
    #[test]
    fn q7_orcl_plan_matches_paper() {
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let plan = plan_orcl(&q7(), &ctx).unwrap();
        assert_eq!(plan.repairs, 0);
        assert_eq!(plan.chain_string(), "ws FS→ wf5 → wf4 → wf3 FS→ wf1 → wf2");
        assert_eq!(plan.reorder_count(), 2);
    }

    /// ORCL never emits HS or SS.
    #[test]
    fn orcl_is_fs_only() {
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let plan = plan_orcl(&q7(), &ctx).unwrap();
        assert!(plan
            .steps
            .iter()
            .all(|st| matches!(st.reorder, ReorderOp::Fs { .. } | ReorderOp::None)));
    }

    /// A matched leading group evaluates with no sort at all.
    #[test]
    fn orcl_skips_sort_when_input_matches() {
        let schema = wf_common::Schema::of(&[
            ("x", wf_common::DataType::Int),
            ("y", wf_common::DataType::Int),
        ]);
        let mut q = WindowQuery::new(schema, vec![wf("w", &[0], &[1])]);
        q.input_props = crate::props::SegProps::sorted(key(&[0, 1]));
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let plan = plan_orcl(&q, &ctx).unwrap();
        assert_eq!(plan.reorder_count(), 0);
    }
}
