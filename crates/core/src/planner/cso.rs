//! **CSO** — the paper's cover-set based optimization scheme (§4).
//!
//! The window functions split into three classes:
//!
//! * `C0` — matched by the input relation: evaluated first, no reordering
//!   (Cor. 1),
//! * `C1` — SS-reorderable from the input: partitioned into a minimum
//!   number of cover sets (§4.4), each evaluated with exactly one SS,
//! * `C2` — the rest: partitioned into a minimum number of *prefixable*
//!   subsets `P_i` (§4.5), each evaluated with exactly one FS/HS (chosen by
//!   the cost models; sort key `γ ⊇ θ(P_i)`, hash key from `θ'`) for its
//!   first cover set and one SS per remaining cover set.
//!
//! Order heuristics (the paper's TR leaves them open; see DESIGN.md §6):
//! prefixable subsets run in ascending induced-cover-set count (ties:
//! descending size, then SELECT index); within a subset, cover sets run in
//! ascending (size, covering key length, SELECT index); within a cover set
//! the covering function runs first. Every produced chain passes the
//! finalizer, so a heuristic miss can only cost, never corrupt.

use crate::cost::{fs_cost, hs_bucket_count, hs_cost, par_fs_cost, par_hs_cost};
use crate::cover::{partition_into_cover_sets, CoverSet, ThetaElem};
use crate::plan::{
    apply_reorder, better_reorder, finalize_chain, Plan, PlanContext, PlanStep, ReorderOp,
};
use crate::prefixable::{partition_into_prefixable, theta, theta_prime};
use crate::props::SegProps;
use crate::query::WindowQuery;
use crate::spec::WindowSpec;
use wf_common::{AttrSet, Result, SortSpec};

/// Produce the CSO chain.
pub fn plan_cso(query: &WindowQuery, ctx: &PlanContext<'_>) -> Result<Plan> {
    let specs = &query.specs;
    let mut props = query.input_props.clone();
    let mut segments = query.input_segments;
    let mut steps: Vec<PlanStep> = Vec::with_capacity(specs.len());

    // --- C0: already matched -------------------------------------------------
    let mut rest: Vec<usize> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        if props.matches(spec) {
            steps.push(PlanStep {
                wf: i,
                reorder: ReorderOp::None,
            });
        } else {
            rest.push(i);
        }
    }

    // --- C1: SS-reorderable from the input -----------------------------------
    let (c1, c2): (Vec<usize>, Vec<usize>) = rest
        .into_iter()
        .partition(|&i| ctx.allow_ss && props.ss_reorderable(&specs[i]));
    let mut c1_sets = partition_into_cover_sets(specs, &c1, None);
    sort_cover_sets(specs, &mut c1_sets);
    for cs in &c1_sets {
        emit_ss_cover_set(specs, cs, &mut props, &mut segments, &mut steps, ctx);
    }

    // --- C2: prefixable subsets ----------------------------------------------
    let parts = partition_into_prefixable(specs, &c2);
    // Plan each part: θ, θ-constrained cover sets.
    struct PlannedPart {
        idxs: Vec<usize>,
        theta: Vec<ThetaElem>,
        sets: Vec<CoverSet>,
        min_idx: usize,
    }
    let mut planned: Vec<PlannedPart> = parts
        .into_iter()
        .map(|idxs| {
            let th = theta(specs, &idxs);
            let mut sets = partition_into_cover_sets(specs, &idxs, theta_opt(&th));
            sort_cover_sets(specs, &mut sets);
            let min_idx = idxs.iter().copied().min().unwrap_or(usize::MAX);
            PlannedPart {
                idxs,
                theta: th,
                sets,
                min_idx,
            }
        })
        .collect();
    // Evaluation order of the P_i.
    planned.sort_by_key(|p| (p.sets.len(), std::cmp::Reverse(p.idxs.len()), p.min_idx));

    for part in &planned {
        for (j, cs) in part.sets.iter().enumerate() {
            if j == 0 || !ctx.allow_ss {
                // Without SS (CSO(v2)), every cover set pays its own FS/HS.
                emit_fs_hs_cover_set(
                    specs,
                    part.idxs.as_slice(),
                    &part.theta,
                    cs,
                    &mut props,
                    &mut segments,
                    &mut steps,
                    ctx,
                );
            } else {
                emit_ss_cover_set(specs, cs, &mut props, &mut segments, &mut steps, ctx);
            }
        }
    }

    Ok(finalize_chain(
        scheme_name(ctx),
        specs,
        &query.input_props,
        query.input_segments,
        steps,
        ctx,
    ))
}

fn scheme_name(ctx: &PlanContext<'_>) -> &'static str {
    match (ctx.allow_hs, ctx.allow_ss) {
        (true, true) => "CSO",
        (false, true) => "CSO(v1)",
        (true, false) => "CSO(v2)",
        (false, false) => "CSO(v1+v2)",
    }
}

fn theta_opt(theta: &[ThetaElem]) -> Option<&[ThetaElem]> {
    if theta.is_empty() {
        None
    } else {
        Some(theta)
    }
}

/// Within-group evaluation order: size asc, covering key length asc,
/// SELECT index asc (reproduces the paper's Q6/Q8/Q9-bill chains; see
/// EXPERIMENTS.md for the two cost-equivalent deviations).
fn sort_cover_sets(specs: &[WindowSpec], sets: &mut [CoverSet]) {
    sets.sort_by_key(|cs| {
        (
            cs.members.len(),
            specs[cs.covering].key_len(),
            cs.members.iter().copied().min().unwrap_or(usize::MAX),
        )
    });
}

/// Align a cover set's key pattern to the current input ordering so the
/// Segmented Sort's `α` is as long as possible (§3.3's permutation choice,
/// lifted to covering permutations).
fn aligned_key(cs: &CoverSet, props: &SegProps) -> SortSpec {
    let mut taken: Vec<ThetaElem> = Vec::new();
    let mut pattern = cs.pattern.clone();
    for e in props.y().elems() {
        let mut trial_prefix = taken.clone();
        trial_prefix.push(ThetaElem::fixed(*e));
        let mut fresh = cs.pattern.clone();
        if fresh.constrain_theta(&trial_prefix) {
            taken = trial_prefix;
            pattern = fresh;
        } else {
            break;
        }
    }
    pattern.linearize()
}

/// Emit one cover set evaluated with a single Segmented Sort on its
/// (input-aligned) covering permutation.
fn emit_ss_cover_set(
    specs: &[WindowSpec],
    cs: &CoverSet,
    props: &mut SegProps,
    segments: &mut u64,
    steps: &mut Vec<PlanStep>,
    ctx: &PlanContext<'_>,
) {
    let gamma = aligned_key(cs, props);
    let n_alpha = props.satisfied_prefix_of(&gamma);
    let reorder = if props.matches_all(cs.members.iter().map(|&m| &specs[m])) {
        ReorderOp::None
    } else {
        ReorderOp::Ss {
            alpha: gamma.prefix(n_alpha),
            beta: gamma.suffix(n_alpha),
        }
    };
    push_cover_set(specs, cs, reorder, props, segments, steps, ctx);
}

/// Emit the first cover set of a prefixable subset with one FS or HS,
/// chosen by the cost models (§4.5.1–4.5.2).
#[allow(clippy::too_many_arguments)]
fn emit_fs_hs_cover_set(
    specs: &[WindowSpec],
    part: &[usize],
    theta: &[ThetaElem],
    cs: &CoverSet,
    props: &mut SegProps,
    segments: &mut u64,
    steps: &mut Vec<PlanStep>,
    ctx: &PlanContext<'_>,
) {
    let gamma = aligned_key(cs, props);
    if props.matches_all(cs.members.iter().map(|&m| &specs[m])) {
        push_cover_set(specs, cs, ReorderOp::None, props, segments, steps, ctx);
        return;
    }
    // Candidates, compared on modeled cost with the residency tiebreak
    // (prefer the smaller largest unit at equal cost): FS on γ, HS when a
    // hash key exists, and the partition-parallel FS when the context has a
    // worker budget and the covering member has a WPK to shard on.
    let mut candidates: Vec<(ReorderOp, f64)> = vec![(
        ReorderOp::Fs { key: gamma.clone() },
        fs_cost(ctx.stats, ctx.mem_blocks).ms(&ctx.weights),
    )];
    // Hash-key pool: θ' limited to attributes in *every* member of the
    // whole prefixable subset — later cover sets reorder with SS, which
    // requires X ⊆ WPK for each of them.
    let pool = theta_prime(theta, specs, part);
    let whk: AttrSet = AttrSet::from_iter(pool.iter().map(|t| t.attr));
    if ctx.allow_hs && !whk.is_empty() {
        let hs_ms = hs_cost(ctx.stats, &whk, ctx.mem_blocks).ms(&ctx.weights);
        let n_buckets = hs_bucket_count(ctx.stats, &whk, ctx.mem_blocks);
        let mfv = ctx.stats.mfv_for(&whk, ctx.mem_blocks);
        candidates.push((
            ReorderOp::Hs {
                whk: whk.clone(),
                key: gamma.clone(),
                n_buckets,
                mfv,
            },
            hs_ms,
        ));
    }
    if ctx.workers > 1 && !specs[cs.members[0]].wpk().is_empty() {
        let shard = specs[cs.members[0]].wpk();
        candidates.push((
            ReorderOp::Par {
                inner: Box::new(ReorderOp::Fs { key: gamma.clone() }),
                workers: ctx.workers,
            },
            par_fs_cost(ctx.stats, ctx.mem_blocks, ctx.workers, shard).ms(&ctx.weights),
        ));
        // Chain-parallel HS over the same hash-key pool: per-worker bucket
        // tables sized for the per-worker share of the budget, no MFV (the
        // workers see disjoint row subsets, so a global MFV list would
        // misestimate).
        if ctx.allow_hs && !whk.is_empty() {
            let m_w = wf_exec::per_worker_blocks(ctx.mem_blocks, ctx.workers);
            candidates.push((
                ReorderOp::Par {
                    inner: Box::new(ReorderOp::Hs {
                        whk: whk.clone(),
                        key: gamma,
                        n_buckets: hs_bucket_count(ctx.stats, &whk, m_w),
                        mfv: vec![],
                    }),
                    workers: ctx.workers,
                },
                par_hs_cost(ctx.stats, &whk, ctx.mem_blocks, ctx.workers).ms(&ctx.weights),
            ));
        }
    }
    let reorder = candidates
        .into_iter()
        .reduce(|best, cand| {
            if better_reorder((&cand.0, cand.1), (&best.0, best.1)) {
                cand
            } else {
                best
            }
        })
        .expect("FS candidate always present")
        .0;
    push_cover_set(specs, cs, reorder, props, segments, steps, ctx);
}

fn push_cover_set(
    specs: &[WindowSpec],
    cs: &CoverSet,
    reorder: ReorderOp,
    props: &mut SegProps,
    segments: &mut u64,
    steps: &mut Vec<PlanStep>,
    ctx: &PlanContext<'_>,
) {
    for (j, &wf) in cs.members.iter().enumerate() {
        let op = if j == 0 {
            reorder.clone()
        } else {
            ReorderOp::None
        };
        let (p2, s2) = apply_reorder(&op, props, *segments, &specs[wf], ctx.stats);
        *props = p2;
        *segments = s2;
        steps.push(PlanStep { wf, reorder: op });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableStats;
    use wf_common::{AttrId, DataType, OrdElem, Schema};

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }
    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
    }
    fn wf(name: &str, wpk: &[usize], wok: &[usize]) -> WindowSpec {
        WindowSpec::rank(name, wpk.iter().map(|&i| a(i)).collect(), key(wok))
    }

    /// web_sales-scale statistics; attrs 0..5 with paper-like cardinality.
    fn stats() -> TableStats {
        TableStats::synthetic(
            400_000,
            10_600 * wf_storage::BLOCK_SIZE as u64,
            vec![
                (a(0), 1_800),  // date
                (a(1), 86_400), // time
                (a(2), 1_800),  // ship
                (a(3), 20_000), // item
                (a(4), 40_000), // bill
            ],
        )
    }

    fn schema5() -> Schema {
        Schema::of(&[
            ("date", DataType::Int),
            ("time", DataType::Int),
            ("ship", DataType::Int),
            ("item", DataType::Int),
            ("bill", DataType::Int),
        ])
    }

    const M50: u64 = 37;
    const M150: u64 = 111;

    /// Paper Table 4 — Q6 = {wf1=({item},(date)), wf2=({item},(bill))}:
    /// `ws HS→ wf1 SS→ wf2` at 50/75 MB, `ws FS→ wf1 SS→ wf2` at 150 MB.
    #[test]
    fn q6_plans_match_paper() {
        let q = WindowQuery::new(
            schema5(),
            vec![wf("wf1", &[3], &[0]), wf("wf2", &[3], &[4])],
        );
        let s = stats();
        let plan50 = plan_cso(&q, &PlanContext::new(&s, M50)).unwrap();
        assert_eq!(plan50.chain_string(), "ws HS→ wf1 SS→ wf2");
        assert_eq!(plan50.repairs, 0);
        let plan150 = plan_cso(&q, &PlanContext::new(&s, M150)).unwrap();
        assert_eq!(plan150.chain_string(), "ws FS→ wf1 SS→ wf2");
    }

    /// Q6 ablations (Fig. 5): CSO(v1) = FS+SS at all M; CSO(v2) = two
    /// HS (50/75) or two FS (150).
    #[test]
    fn q6_ablations() {
        let q = WindowQuery::new(
            schema5(),
            vec![wf("wf1", &[3], &[0]), wf("wf2", &[3], &[4])],
        );
        let s = stats();
        let mut ctx = PlanContext::new(&s, M50);
        ctx.allow_hs = false;
        let v1 = plan_cso(&q, &ctx).unwrap();
        assert_eq!(v1.chain_string(), "ws FS→ wf1 SS→ wf2");

        let mut ctx2 = PlanContext::new(&s, M50);
        ctx2.allow_ss = false;
        let v2 = plan_cso(&q, &ctx2).unwrap();
        assert_eq!(v2.chain_string(), "ws HS→ wf1 HS→ wf2");
        let mut ctx3 = PlanContext::new(&s, M150);
        ctx3.allow_ss = false;
        let v2b = plan_cso(&q, &ctx3).unwrap();
        assert_eq!(v2b.chain_string(), "ws FS→ wf1 FS→ wf2");
    }

    /// Paper Table 6 — Q7: `ws FS→ wf5 → wf4 → wf3 HS→ wf1 → wf2` at
    /// 50/75, with FS instead of HS at 150.
    #[test]
    fn q7_plans_match_paper() {
        let q = WindowQuery::new(
            schema5(),
            vec![
                wf("wf1", &[0, 1, 2], &[]),
                wf("wf2", &[1, 0], &[]),
                wf("wf3", &[3], &[]),
                wf("wf4", &[], &[3, 4]),
                wf("wf5", &[0, 1, 3, 4], &[2]),
            ],
        );
        let s = stats();
        let plan50 = plan_cso(&q, &PlanContext::new(&s, M50)).unwrap();
        assert_eq!(
            plan50.chain_string(),
            "ws FS→ wf5 → wf4 → wf3 HS→ wf1 → wf2"
        );
        assert_eq!(plan50.repairs, 0);
        let plan150 = plan_cso(&q, &PlanContext::new(&s, M150)).unwrap();
        assert_eq!(
            plan150.chain_string(),
            "ws FS→ wf5 → wf4 → wf3 FS→ wf1 → wf2"
        );
    }

    /// Paper Table 8 — Q8 plan shape: our P-order differs (cost-equivalent,
    /// see EXPERIMENTS.md) but the operator multiset must match the paper:
    /// {HS, SS, HS} at 50/75 with the same cover sets.
    #[test]
    fn q8_operator_multiset_matches_paper() {
        let q = WindowQuery::new(
            schema5(),
            vec![
                wf("wf1", &[0, 1, 2], &[]),
                wf("wf2", &[1, 0], &[]),
                wf("wf3", &[3], &[]),
                wf("wf4", &[3], &[4]),
                wf("wf5", &[0, 1, 3], &[4, 2]),
            ],
        );
        let s = stats();
        let plan = plan_cso(&q, &PlanContext::new(&s, M50)).unwrap();
        assert_eq!(plan.repairs, 0);
        let mut ops: Vec<&str> = plan
            .steps
            .iter()
            .filter(|st| st.reorder != ReorderOp::None)
            .map(|st| st.reorder.arrow())
            .collect();
        ops.sort_unstable();
        assert_eq!(ops, vec!["HS→", "HS→", "SS→"]);
        // 3 cover sets → exactly 3 reorders for 5 functions.
        assert_eq!(plan.reorder_count(), 3);
    }

    /// Paper Table 10 — Q9 at 50/75: the chain must use 6 reorders
    /// (3 FS/HS + 3 SS) over 8 functions, with the item-subset on FS
    /// (wf4's empty WPK empties the hash-key pool), the bill-subset on HS
    /// and the time-subset on FS.
    #[test]
    fn q9_plan_structure() {
        // Attrs: date=0, time=1, item=3, bill=4.
        let q = WindowQuery::new(
            schema5(),
            vec![
                wf("wf1", &[3], &[4, 0]),
                wf("wf2", &[3, 1], &[0]),
                wf("wf3", &[3], &[1]),
                wf("wf4", &[], &[3, 0]),
                wf("wf5", &[4, 0], &[1]),
                wf("wf6", &[4], &[1]),
                wf("wf7", &[0, 1], &[]),
                wf("wf8", &[], &[1]),
            ],
        );
        let s = stats();
        let plan = plan_cso(&q, &PlanContext::new(&s, M50)).unwrap();
        assert_eq!(plan.repairs, 0);
        assert_eq!(plan.reorder_count(), 6, "{}", plan.chain_string());
        let chain = plan.chain_string();
        // Time-subset first (1 cover set), FS-forced by wf8's empty WPK.
        assert!(chain.starts_with("ws FS→ wf7 → wf8"), "chain: {chain}");
        // Bill-subset on HS at small memory.
        assert!(chain.contains("HS→ wf6 SS→ wf5"), "chain: {chain}");
        let ss_count = plan
            .steps
            .iter()
            .filter(|st| matches!(st.reorder, ReorderOp::Ss { .. }))
            .count();
        assert_eq!(ss_count, 3);
    }

    /// C0: functions matched by the input evaluate first with no reorder.
    #[test]
    fn c0_matched_first() {
        let mut q = WindowQuery::new(
            schema5(),
            vec![wf("w_matched", &[0], &[1]), wf("w_other", &[3], &[])],
        );
        q.input_props = SegProps::sorted(key(&[0, 1]));
        let s = stats();
        let plan = plan_cso(&q, &PlanContext::new(&s, M50)).unwrap();
        assert_eq!(plan.steps[0].wf, 0);
        assert_eq!(plan.steps[0].reorder, ReorderOp::None);
    }

    /// C1: SS-reorderable functions use SS directly from the input
    /// (the Fig. 4 scenario: web_sales_s sorted on quantity).
    #[test]
    fn c1_uses_ss_from_input() {
        let mut q = WindowQuery::new(schema5(), vec![wf("w", &[0], &[3])]); // ({date},(item))
        q.input_props = SegProps::sorted(key(&[0])); // sorted on date
        let s = stats();
        let plan = plan_cso(&q, &PlanContext::new(&s, M50)).unwrap();
        assert!(matches!(plan.steps[0].reorder, ReorderOp::Ss { .. }));
        assert_eq!(plan.repairs, 0);
    }

    /// Single-function query degenerates to the cost-based FS/HS choice.
    #[test]
    fn single_function_cost_based() {
        let q = WindowQuery::new(schema5(), vec![wf("w", &[3], &[1])]);
        let s = stats();
        let plan50 = plan_cso(&q, &PlanContext::new(&s, M50)).unwrap();
        assert!(matches!(plan50.steps[0].reorder, ReorderOp::Hs { .. }));
        let plan150 = plan_cso(&q, &PlanContext::new(&s, M150)).unwrap();
        assert!(matches!(plan150.steps[0].reorder, ReorderOp::Fs { .. }));
    }
}
