//! The four optimization schemes the paper evaluates (§6), plus the CSO
//! ablations used for Q6 (Fig. 5).

mod bfo;
mod cso;
mod orcl;
mod psql;

pub use bfo::{plan_bfo, BfoOptions};
pub use cso::plan_cso;
pub use orcl::plan_orcl;
pub use psql::plan_psql;

use crate::cost::TableStats;
use crate::plan::{Plan, PlanContext};
use crate::query::WindowQuery;
use crate::runtime::ExecEnv;
use wf_common::Result;

/// Which optimizer to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Cover-set based optimization (§4) — the paper's contribution.
    Cso,
    /// CSO with Hashed Sort disabled (Q6's CSO(v1)).
    CsoNoHs,
    /// CSO with Segmented Sort disabled (Q6's CSO(v2)).
    CsoNoSs,
    /// Brute force: exhaustive search over orders, operators and keys.
    Bfo,
    /// Oracle 8i: ordering groups (= cover sets) with FS-only reordering.
    Orcl,
    /// PostgreSQL 9.1: SELECT order, FS-only, written-order sort keys,
    /// reorder skipped when the input matches.
    Psql,
}

impl Scheme {
    /// All schemes, in the order the paper's figures list them.
    pub fn all() -> [Scheme; 6] {
        [
            Scheme::Bfo,
            Scheme::Cso,
            Scheme::CsoNoHs,
            Scheme::CsoNoSs,
            Scheme::Orcl,
            Scheme::Psql,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Cso => "CSO",
            Scheme::CsoNoHs => "CSO(v1)",
            Scheme::CsoNoSs => "CSO(v2)",
            Scheme::Bfo => "BFO",
            Scheme::Orcl => "ORCL",
            Scheme::Psql => "PSQL",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Optimize a window query under the given scheme. `env` supplies the unit
/// reorder memory; `stats` the table statistics the cost models need.
pub fn optimize(
    query: &WindowQuery,
    stats: &TableStats,
    scheme: Scheme,
    env: &ExecEnv,
) -> Result<Plan> {
    let mut ctx = PlanContext::new(stats, env.mem_blocks());
    ctx.weights = env.weights();
    let mut plan = match scheme {
        Scheme::Cso => plan_cso(query, &ctx),
        Scheme::CsoNoHs => {
            ctx.allow_hs = false;
            plan_cso(query, &ctx)
        }
        Scheme::CsoNoSs => {
            ctx.allow_ss = false;
            plan_cso(query, &ctx)
        }
        Scheme::Bfo => plan_bfo(query, &ctx, &BfoOptions::default()),
        Scheme::Orcl => plan_orcl(query, &ctx),
        Scheme::Psql => plan_psql(query, &ctx),
    }?;
    // The WHERE predicate (if any) rides on the plan: the runtime inserts a
    // FilterOp between the table scan and the first reorder.
    plan.filter = query.filter.clone();
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Cso.name(), "CSO");
        assert_eq!(Scheme::all().len(), 6);
        assert_eq!(Scheme::CsoNoHs.to_string(), "CSO(v1)");
    }
}
