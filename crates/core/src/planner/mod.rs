//! The four optimization schemes the paper evaluates (§6), plus the CSO
//! ablations used for Q6 (Fig. 5).

mod bfo;
mod cso;
mod orcl;
mod psql;

pub use bfo::{plan_bfo, BfoOptions};
pub use cso::plan_cso;
pub use orcl::plan_orcl;
pub use psql::plan_psql;

use crate::cost::TableStats;
use crate::plan::{Plan, PlanContext};
use crate::query::WindowQuery;
use crate::runtime::ExecEnv;
use wf_common::Result;

/// Which optimizer to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Cover-set based optimization (§4) — the paper's contribution.
    Cso,
    /// CSO with Hashed Sort disabled (Q6's CSO(v1)).
    CsoNoHs,
    /// CSO with Segmented Sort disabled (Q6's CSO(v2)).
    CsoNoSs,
    /// Brute force: exhaustive search over orders, operators and keys.
    Bfo,
    /// Oracle 8i: ordering groups (= cover sets) with FS-only reordering.
    Orcl,
    /// PostgreSQL 9.1: SELECT order, FS-only, written-order sort keys,
    /// reorder skipped when the input matches.
    Psql,
}

impl Scheme {
    /// All schemes, in the order the paper's figures list them.
    pub fn all() -> [Scheme; 6] {
        [
            Scheme::Bfo,
            Scheme::Cso,
            Scheme::CsoNoHs,
            Scheme::CsoNoSs,
            Scheme::Orcl,
            Scheme::Psql,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Cso => "CSO",
            Scheme::CsoNoHs => "CSO(v1)",
            Scheme::CsoNoSs => "CSO(v2)",
            Scheme::Bfo => "BFO",
            Scheme::Orcl => "ORCL",
            Scheme::Psql => "PSQL",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Optimize a window query under the given scheme. `env` supplies the unit
/// reorder memory and the parallel worker budget; `stats` the table
/// statistics the cost models need.
///
/// When the query carries a WHERE predicate, planning runs on the
/// **post-filter** statistics (`TableStats::with_predicate`): every reorder
/// executes downstream of the filter, so pre-filter cardinalities would
/// overestimate each operator uniformly *except* where they flip a
/// decision — the FS/HS crossover, HS bucket counts, and the parallel
/// worker trade all move with the surviving row count.
pub fn optimize(
    query: &WindowQuery,
    stats: &TableStats,
    scheme: Scheme,
    env: &ExecEnv,
) -> Result<Plan> {
    let filtered;
    let stats = match &query.filter {
        Some(pred) => {
            filtered = stats.with_predicate(pred);
            &filtered
        }
        None => stats,
    };
    let mut ctx = PlanContext::new(stats, env.mem_blocks());
    ctx.weights = env.weights();
    ctx.workers = env.par_workers();
    let mut plan = match scheme {
        Scheme::Cso => plan_cso(query, &ctx),
        Scheme::CsoNoHs => {
            ctx.allow_hs = false;
            plan_cso(query, &ctx)
        }
        Scheme::CsoNoSs => {
            ctx.allow_ss = false;
            plan_cso(query, &ctx)
        }
        Scheme::Bfo => plan_bfo(query, &ctx, &BfoOptions::default()),
        Scheme::Orcl => plan_orcl(query, &ctx),
        Scheme::Psql => plan_psql(query, &ctx),
    }?;
    // The WHERE predicate (if any) rides on the plan: the runtime inserts a
    // FilterOp between the table scan and the first reorder.
    plan.filter = query.filter.clone();
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ReorderOp;
    use crate::spec::WindowSpec;
    use wf_common::{AttrId, DataType, OrdElem, Schema, SortSpec, Value};

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Cso.name(), "CSO");
        assert_eq!(Scheme::all().len(), 6);
        assert_eq!(Scheme::CsoNoHs.to_string(), "CSO(v1)");
    }

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }

    fn schema5() -> Schema {
        Schema::of(&[
            ("date", DataType::Int),
            ("time", DataType::Int),
            ("ship", DataType::Int),
            ("item", DataType::Int),
            ("bill", DataType::Int),
        ])
    }

    fn stats() -> TableStats {
        TableStats::synthetic(
            400_000,
            10_600 * wf_storage::BLOCK_SIZE as u64,
            vec![
                (a(0), 1_800),
                (a(1), 86_400),
                (a(2), 1_800),
                (a(3), 20_000),
                (a(4), 40_000),
            ],
        )
    }

    fn one_rank_query() -> WindowQuery {
        WindowQuery::new(
            schema5(),
            vec![WindowSpec::rank(
                "w",
                vec![a(3)],
                SortSpec::new(vec![OrdElem::asc(a(1))]),
            )],
        )
    }

    /// WHERE selectivity drives the reorder decision: at large `M` the
    /// unfiltered plan takes FS (the paper's 150 MB regime), but a highly
    /// selective equality shrinks the post-filter input until HS's
    /// hash-then-tiny-sorts beats the full n·log n — plans must be costed
    /// on what actually flows into the reorder.
    #[test]
    fn filter_selectivity_flips_reorder_choice() {
        let s = stats();
        let env = ExecEnv::with_memory_blocks(111).with_par_workers(1);
        let unfiltered = optimize(&one_rank_query(), &s, Scheme::Cso, &env).unwrap();
        assert!(
            matches!(unfiltered.steps[0].reorder, ReorderOp::Fs { .. }),
            "{}",
            unfiltered.chain_string()
        );
        let mut q = one_rank_query();
        q.filter = Some(wf_exec::Predicate::Eq(a(0), Value::Int(7)));
        let filtered = optimize(&q, &s, Scheme::Cso, &env).unwrap();
        assert!(
            matches!(filtered.steps[0].reorder, ReorderOp::Hs { .. }),
            "{}",
            filtered.chain_string()
        );
        assert!(filtered.filter.is_some(), "predicate still rides the plan");
        assert!(filtered.est_cost.ms(&env.weights()) < unfiltered.est_cost.ms(&env.weights()));
    }

    /// The HS fan-out must be provisioned from what survives the WHERE:
    /// the emitted bucket count equals `hs_bucket_count` over the
    /// post-filter statistics, strictly below the pre-filter sizing under
    /// a selective predicate.
    #[test]
    fn hs_bucket_count_uses_post_filter_cardinality() {
        let s = stats();
        let m = 111u64;
        let env = ExecEnv::with_memory_blocks(m).with_par_workers(1);
        let pred = wf_exec::Predicate::Eq(a(0), Value::Int(7));
        let mut q = one_rank_query();
        q.filter = Some(pred.clone());
        let plan = optimize(&q, &s, Scheme::Cso, &env).unwrap();
        let ReorderOp::Hs { whk, n_buckets, .. } = &plan.steps[0].reorder else {
            panic!(
                "expected HS under the selective filter: {}",
                plan.chain_string()
            );
        };
        let post = crate::cost::hs_bucket_count(&s.with_predicate(&pred), whk, m);
        let pre = crate::cost::hs_bucket_count(&s, whk, m);
        assert_eq!(*n_buckets, post, "buckets sized from post-filter stats");
        assert!(
            post < pre,
            "selective WHERE must shrink the fan-out ({post} vs {pre})"
        );
    }

    /// With a worker budget, CSO and BFO emit the parallel reorder where
    /// the elapsed model favors it, and EXPLAIN prints the node with its
    /// worker count. Without the budget the same query plans serial.
    #[test]
    fn planners_emit_par_with_worker_budget() {
        let s = stats();
        let q = one_rank_query();
        for scheme in [Scheme::Cso, Scheme::Bfo] {
            let env = ExecEnv::with_memory_blocks(37).with_par_workers(4);
            let plan = optimize(&q, &s, scheme, &env).unwrap();
            let par_steps = plan
                .steps
                .iter()
                .filter(|st| matches!(st.reorder, ReorderOp::Par { .. }))
                .count();
            assert_eq!(par_steps, 1, "{scheme}: {}", plan.chain_string());
            assert_eq!(plan.repairs, 0, "{scheme}");
            let explain = plan.explain(&schema5());
            assert!(
                explain.contains("Parallel workers=4"),
                "{scheme}: {explain}"
            );
            assert!(explain.contains("shard={item}"), "{scheme}: {explain}");

            let serial_env = ExecEnv::with_memory_blocks(37).with_par_workers(1);
            let serial = optimize(&q, &s, scheme, &serial_env).unwrap();
            assert!(
                serial
                    .steps
                    .iter()
                    .all(|st| !matches!(st.reorder, ReorderOp::Par { .. })),
                "{scheme}: {}",
                serial.chain_string()
            );
        }
    }
}
