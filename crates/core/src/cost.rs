//! The paper's cost models (§3.4, Eqs. 1–3) plus CPU terms.
//!
//! The I/O formulas are the paper's, in blocks:
//!
//! * **FS** (Eq. 1): `2·B·(⌈log_F(B/2M)⌉ + 1)` — replacement-selection runs
//!   of `2M`, F-way merge.
//! * **HS** (Eq. 2): `2·B·(1 − N′/N) + Σ sort(Rᵢ)` with `N = D(WHK)`
//!   buckets, `N′ = ⌊M·N/B⌋` never-spilled.
//! * **SS** (Eq. 3): `Σ sort(Uᵢ)` over `k·u` units, `u` estimated from
//!   `D(α)` under the paper's uniformity assumptions.
//!
//! CPU terms (comparisons, hashes) follow the paper's complexity analysis
//! (`O(n log(n/k))` for SS vs `O(n log n)` for FS) and are converted to
//! time with the same [`CostWeights`] the tracker uses, so planned and
//! measured costs are directly comparable.

use crate::props::SegProps;
use crate::spec::WindowSpec;
use std::collections::HashMap;
use wf_common::{AttrId, AttrSet, SortSpec, Value};
use wf_storage::{blocks_for_bytes, CostWeights, Table};

/// Statistics about the windowed table: cardinality, width and per-column
/// distinct counts (the paper assumes uniform, uncorrelated attributes).
#[derive(Debug, Clone)]
pub struct TableStats {
    rows: u64,
    bytes: u64,
    distinct: HashMap<AttrId, u64>,
    /// Most frequent values per column (top few, with counts) — the
    /// histogram information §3.2's MFV optimization needs.
    hot: HashMap<AttrId, Vec<(Value, u64)>>,
}

impl TableStats {
    /// Exact statistics from a materialized table.
    pub fn from_table(table: &Table) -> Self {
        let mut distinct = HashMap::new();
        let mut hot = HashMap::new();
        for i in 0..table.schema().len() {
            let attr = AttrId::new(i);
            let mut counts: HashMap<&Value, u64> = HashMap::new();
            for row in table.rows() {
                *counts.entry(row.get(attr)).or_insert(0) += 1;
            }
            distinct.insert(attr, counts.len() as u64);
            let mut top: Vec<(Value, u64)> =
                counts.into_iter().map(|(v, c)| (v.clone(), c)).collect();
            top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            top.truncate(3);
            hot.insert(attr, top);
        }
        TableStats {
            rows: table.row_count() as u64,
            bytes: table.byte_size() as u64,
            distinct,
            hot,
        }
    }

    /// Synthetic statistics (for planning without data).
    pub fn synthetic(rows: u64, bytes: u64, distinct: Vec<(AttrId, u64)>) -> Self {
        TableStats {
            rows,
            bytes,
            distinct: distinct.into_iter().collect(),
            hot: HashMap::new(),
        }
    }

    /// Declare hot values for a column (synthetic histograms).
    pub fn with_hot_values(mut self, attr: AttrId, values: Vec<(Value, u64)>) -> Self {
        self.hot.insert(attr, values);
        self
    }

    /// Average encoded row width.
    pub fn avg_row_bytes(&self) -> u64 {
        self.bytes.checked_div(self.rows).unwrap_or(0)
    }

    /// The MFV set for a Hashed Sort on `whk` with memory `m` blocks
    /// (§3.2): hash-key values whose rows alone exceed the sorting memory
    /// are pipelined straight to the first sort. Only single-attribute hash
    /// keys carry histogram information.
    pub fn mfv_for(&self, whk: &AttrSet, m_blocks: u64) -> Vec<Vec<Value>> {
        if whk.len() != 1 {
            return Vec::new();
        }
        let attr = whk.iter().next().expect("len checked");
        let budget = m_blocks.saturating_mul(wf_storage::BLOCK_SIZE as u64);
        let row_bytes = self.avg_row_bytes().max(1);
        self.hot
            .get(&attr)
            .map(|tops| {
                tops.iter()
                    .filter(|(_, count)| count.saturating_mul(row_bytes) > budget)
                    .map(|(v, _)| vec![v.clone()])
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Statistics for the rows surviving a WHERE predicate, estimated with
    /// the classic selectivity heuristics (System R): equality selects
    /// `1/D(attr)`, inequality `1/3`, BETWEEN `1/4`, `<>` leaves
    /// `1 − 1/D`, AND multiplies. Cardinality and byte size scale by the
    /// selectivity; per-column distinct counts cap at the surviving row
    /// count (an equality predicate pins its column to one value); MFV
    /// counts scale the same way. Planners cost plans on these *post-filter*
    /// statistics, since every reorder runs downstream of the filter.
    pub fn with_predicate(&self, pred: &wf_exec::Predicate) -> TableStats {
        let sel = self.selectivity(pred).clamp(0.0, 1.0);
        let rows = ((self.rows as f64 * sel).round() as u64).max(1);
        let bytes = ((self.bytes as f64 * sel).round() as u64).max(1);
        let mut distinct = self.distinct.clone();
        for d in distinct.values_mut() {
            *d = (*d).min(rows);
        }
        let pinned = eq_pinned_attrs(pred);
        for (attr, _) in &pinned {
            distinct.insert(*attr, 1);
        }
        let mut hot: HashMap<AttrId, Vec<(Value, u64)>> = self
            .hot
            .iter()
            .map(|(a, tops)| {
                (
                    *a,
                    tops.iter()
                        .map(|(v, c)| (v.clone(), ((*c as f64 * sel).round() as u64).max(1)))
                        .collect(),
                )
            })
            .collect();
        // An equality-pinned column's histogram is exact: every surviving
        // row holds the predicate's value (uniform scaling would shrink
        // that value's count by 1/D and hide an oversized MFV partition
        // the filter in fact selects).
        for (attr, value) in pinned {
            hot.insert(attr, vec![(value, rows)]);
        }
        TableStats {
            rows,
            bytes,
            distinct,
            hot,
        }
    }

    /// Estimated fraction of rows satisfying `pred`.
    fn selectivity(&self, pred: &wf_exec::Predicate) -> f64 {
        use wf_exec::Predicate::*;
        match pred {
            Eq(a, _) => 1.0 / self.distinct(*a) as f64,
            Ne(a, _) => 1.0 - 1.0 / self.distinct(*a) as f64,
            Lt(..) | Le(..) | Gt(..) | Ge(..) => 1.0 / 3.0,
            Between(..) => 1.0 / 4.0,
            And(l, r) => self.selectivity(l) * self.selectivity(r),
        }
    }

    /// `T(R)`.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// `B(R)` in blocks.
    pub fn blocks(&self) -> u64 {
        blocks_for_bytes(self.bytes as usize).max(1)
    }

    /// `D(attr)`; defaults to `rows` (unique) when unknown.
    pub fn distinct(&self, attr: AttrId) -> u64 {
        self.distinct
            .get(&attr)
            .copied()
            .unwrap_or(self.rows)
            .max(1)
    }

    /// `D(attrs)` under independence: capped product of per-attribute
    /// distinct counts.
    pub fn distinct_set(&self, attrs: &AttrSet) -> u64 {
        let mut d: u64 = 1;
        for a in attrs.iter() {
            d = d.saturating_mul(self.distinct(a));
            if d >= self.rows {
                return self.rows.max(1);
            }
        }
        d.max(1)
    }

    /// `D` over the attributes of a sort key.
    pub fn distinct_key(&self, key: &SortSpec) -> u64 {
        self.distinct_set(&key.attr_set())
    }
}

/// Attributes pinned to a single value by an equality somewhere in the
/// conjunction (their post-filter distinct count is 1), with the value.
fn eq_pinned_attrs(pred: &wf_exec::Predicate) -> Vec<(AttrId, Value)> {
    use wf_exec::Predicate::*;
    match pred {
        Eq(a, v) => vec![(*a, v.clone())],
        And(l, r) => {
            let mut out = eq_pinned_attrs(l);
            out.extend(eq_pinned_attrs(r));
            out
        }
        _ => Vec::new(),
    }
}

/// A planned amount of work, in the same units the tracker counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cost {
    pub io_blocks: f64,
    pub comparisons: f64,
    pub hashes: f64,
}

impl Cost {
    /// Zero cost.
    pub fn zero() -> Self {
        Cost::default()
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &Cost) -> Cost {
        Cost {
            io_blocks: self.io_blocks + other.io_blocks,
            comparisons: self.comparisons + other.comparisons,
            hashes: self.hashes + other.hashes,
        }
    }

    /// Modeled milliseconds under the weights.
    pub fn ms(&self, w: &CostWeights) -> f64 {
        self.io_blocks * w.us_per_block_io / 1_000.0
            + self.comparisons * w.ns_per_comparison / 1_000_000.0
            + self.hashes * w.ns_per_hash / 1_000_000.0
    }

    /// Component-wise scaling — how the chain-parallel model turns a serial
    /// in-span stage cost into an elapsed (critical-path) estimate: the
    /// stage's work spreads over the effective workers, so its elapsed cost
    /// is the serial cost times `1/w_eff`.
    pub fn scaled(&self, f: f64) -> Cost {
        Cost {
            io_blocks: self.io_blocks * f,
            comparisons: self.comparisons * f,
            hashes: self.hashes * f,
        }
    }
}

fn log2(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// Merge fan-in for a budget of `m` blocks (mirrors the executor).
fn fan_in(m: u64) -> f64 {
    (m.saturating_sub(1)).max(2) as f64
}

/// Cost of sorting `b` blocks / `t` tuples with memory `m` (the common
/// subroutine of all three operator models).
///
/// I/O is `2·b·p` where `p = max(1, ⌈log_F(b/2M)⌉)`: one round trip for run
/// formation + read-back, plus one per *intermediate* merge level — the
/// final merge streams its output (Eq. 1 with the paper's "just one pass of
/// table I/O" reading at large `M`).
fn sort_cost(b: f64, t: f64, m: u64) -> Cost {
    let mf = m as f64;
    if b <= mf {
        // Internal sort: no I/O.
        return Cost {
            io_blocks: 0.0,
            comparisons: t * log2(t),
            hashes: 0.0,
        };
    }
    let runs0 = (b / (2.0 * mf)).ceil().max(1.0);
    let f = fan_in(m);
    let passes = if runs0 <= 1.0 {
        1.0
    } else {
        runs0.log(f).ceil().max(1.0)
    };
    let io = 2.0 * b * passes;
    // Run formation comparisons grow with the heap (rows in M), plus one
    // heap comparison chain per row per merge pass.
    let rows_in_m = (t * mf / b).max(2.0);
    let cmp = t * log2(rows_in_m) + t * passes * log2(f.min(runs0) + 1.0);
    Cost {
        io_blocks: io,
        comparisons: cmp,
        hashes: 0.0,
    }
}

/// HS partition traffic is scattered across all open bucket buffers rather
/// than one sequential stream; the paper's measurements (Fig. 3, large `M`)
/// show HS paying a small constant factor over FS's sequential passes. The
/// planner models that with this penalty on partition I/O.
const HS_PARTITION_IO_PENALTY: f64 = 1.15;

/// Eq. 1 — Full Sort of the whole relation.
pub fn fs_cost(stats: &TableStats, m: u64) -> Cost {
    sort_cost(stats.blocks() as f64, stats.rows() as f64, m)
}

/// Modeled **elapsed** cost of a partition-parallel Full Sort over `w`
/// workers (`ReorderOp::Par { inner: Fs }`): the relation is hash-scattered
/// (one hash per row, serial), every worker sorts `B/w` blocks with
/// `M_w = ⌊M/w⌋` of the unit reorder memory (`workers × M_w ≤ M`), and the
/// sorted shards are ordered-merged back serially (one heap comparison per
/// row over a `w`-ary heap).
///
/// Unlike the other operator models, this is a *critical-path* estimate:
/// the per-worker sort term appears once because the workers run
/// concurrently, so the value is comparable to the serial operators' costs
/// as elapsed time, while a parallel execution's *measured* counters sum
/// all workers' work. The planner trades this estimate against
/// [`fs_cost`]'s one big sort — the `workers × M_w ≤ M` vs `M` decision.
pub fn par_fs_cost(stats: &TableStats, m: u64, workers: usize, shard_key: &AttrSet) -> Cost {
    let w = workers.max(1) as u64;
    if w == 1 {
        return fs_cost(stats, m);
    }
    let b = stats.blocks() as f64;
    let t = stats.rows() as f64;
    // The executor's own formula, so planner and scheduler can never
    // disagree about a worker's memory grant.
    let m_w = wf_exec::per_worker_blocks(m, workers);
    // Rows can only spread over as many shards as the shard key has
    // distinct values: a low-cardinality WPK leaves workers idle, and the
    // busy ones still sort with the split memory grant. With one
    // effective shard the model correctly prices Par worse than the
    // serial FS (same sort at M/w, plus scatter and merge).
    let w_eff = w.min(stats.distinct_set(shard_key)).max(1) as f64;
    let unit = sort_cost(b / w_eff, t / w_eff, m_w);
    let merge_cmp = t * log2(w as f64 + 1.0);
    Cost {
        io_blocks: unit.io_blocks,
        comparisons: unit.comparisons + merge_cmp,
        hashes: t,
    }
}

/// Modeled **elapsed** cost of a partition-parallel Hashed Sort over `w`
/// workers (`ReorderOp::Par { inner: Hs }`): the relation is hash-scattered
/// on `WHK` (one hash per row, serial), and every worker runs Eq. 2 over
/// its `1/w_eff` share of the blocks, rows and buckets with
/// `M_w = ⌊M/w⌋` — the in-worker partitioning re-hashes the worker's share,
/// hence the `t + t/w_eff` hash term. The final reassembly is a pure
/// bucket-order interleave (no row merge), so no merge comparisons appear.
/// Effective parallelism caps at `D(WHK)` exactly like [`par_fs_cost`].
pub fn par_hs_cost(stats: &TableStats, whk: &AttrSet, m: u64, workers: usize) -> Cost {
    let w = workers.max(1) as u64;
    if w == 1 {
        return hs_cost(stats, whk, m);
    }
    let b = stats.blocks() as f64;
    let t = stats.rows() as f64;
    let m_w = wf_exec::per_worker_blocks(m, workers);
    let n = stats.distinct_set(whk) as f64;
    let w_eff = (w as f64).min(n).max(1.0);
    let b_w = b / w_eff;
    let t_w = t / w_eff;
    let n_w = (n / w_eff).max(1.0);
    let n_mem = ((m_w as f64) * n_w / b_w).floor().min(n_w);
    let partition_io = 2.0 * b_w * (1.0 - n_mem / n_w) * HS_PARTITION_IO_PENALTY;
    let bucket = sort_cost(b_w / n_w, t_w / n_w, m_w);
    Cost {
        io_blocks: partition_io + n_w * bucket.io_blocks,
        comparisons: n_w * bucket.comparisons,
        hashes: t + t / w_eff,
    }
}

/// Eq. 2 — Hashed Sort with hash key `whk`.
pub fn hs_cost(stats: &TableStats, whk: &AttrSet, m: u64) -> Cost {
    let b = stats.blocks() as f64;
    let t = stats.rows() as f64;
    let n = stats.distinct_set(whk) as f64;
    let n_mem = ((m as f64) * n / b).floor().min(n);
    let partition_io = 2.0 * b * (1.0 - n_mem / n) * HS_PARTITION_IO_PENALTY;
    let bucket = sort_cost(b / n, t / n, m);
    Cost {
        io_blocks: partition_io + n * bucket.io_blocks,
        comparisons: n * bucket.comparisons,
        hashes: t,
    }
}

/// Unit-count estimate for SS (§3.4): `u` units per segment given `k`
/// segments and the α attributes.
pub fn ss_units(stats: &TableStats, x: &AttrSet, alpha: &SortSpec, k: u64) -> u64 {
    if alpha.is_empty() {
        return 1;
    }
    let t = stats.rows().max(1);
    let k = k.max(1);
    let d_alpha = stats.distinct_key(alpha);
    let alpha_attrs = alpha.attr_set();
    let u = if alpha_attrs.intersect(x).is_empty() {
        (t / k).min(d_alpha)
    } else {
        (t / k).min((d_alpha / k).max(1))
    };
    u.max(1)
}

/// Eq. 3 — Segmented Sort over `k` segments × `u` units each.
pub fn ss_cost(stats: &TableStats, m: u64, k: u64, u: u64) -> Cost {
    let b = stats.blocks() as f64;
    let t = stats.rows() as f64;
    let units = (k.max(1) * u.max(1)) as f64;
    let unit = sort_cost(b / units, t / units, m);
    Cost {
        io_blocks: units * unit.io_blocks,
        // Boundary detection: one α comparison per row.
        comparisons: units * unit.comparisons + t,
        hashes: 0.0,
    }
}

/// Number of physical HS buckets the planner requests.
///
/// Fan-out is bounded (`MAX_BUCKETS`) like real systems, **but never so low
/// that an average bucket overflows the unit reorder memory**: with `B`
/// table blocks hashed over `n` buckets the expected bucket is `B/n`
/// blocks, so the pool budget demands `n ≥ ⌈B/M⌉`. More buckets than
/// distinct hash-key values cannot shrink buckets further (every value
/// hashes whole), so the pool-aware floor stops at `D(WHK)` — a single
/// oversized value is the MFV optimization's territory, not the bucket
/// count's.
pub fn hs_bucket_count(stats: &TableStats, whk: &AttrSet, mem_blocks: u64) -> usize {
    const MAX_BUCKETS: u64 = 1024;
    let d = stats.distinct_set(whk);
    let capped = d.clamp(1, MAX_BUCKETS);
    let pool_floor = stats.blocks().div_ceil(mem_blocks.max(1)).min(d.max(1));
    capped.max(pool_floor) as usize
}

/// Cost of the window-function invocation itself: one streaming pass.
pub fn window_scan_cost(stats: &TableStats) -> Cost {
    Cost {
        io_blocks: 0.0,
        comparisons: stats.rows() as f64,
        hashes: 0.0,
    }
}

/// Planner-facing estimate for one SS reorder given input properties.
pub fn ss_reorder_cost(
    stats: &TableStats,
    props: &SegProps,
    segments: u64,
    wf: &WindowSpec,
    m: u64,
) -> Cost {
    let split = props.alpha_split(wf);
    let u = ss_units(stats, props.x(), &split.alpha, segments);
    ss_cost(stats, m, segments, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, DataType, Schema};

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }

    fn stats(rows: u64, blocks: u64, d: &[(usize, u64)]) -> TableStats {
        TableStats::synthetic(
            rows,
            blocks * wf_storage::BLOCK_SIZE as u64,
            d.iter().map(|&(i, n)| (a(i), n)).collect(),
        )
    }

    #[test]
    fn from_table_counts_distincts() {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        let mut t = Table::new(schema);
        for i in 0..10 {
            t.push(row![i % 3, i]);
        }
        let s = TableStats::from_table(&t);
        assert_eq!(s.rows(), 10);
        assert_eq!(s.distinct(a(0)), 3);
        assert_eq!(s.distinct(a(1)), 10);
        assert_eq!(
            s.distinct_set(&AttrSet::from_iter([a(0), a(1)])),
            10,
            "capped at rows"
        );
    }

    #[test]
    fn fs_io_decreases_with_memory() {
        let s = stats(100_000, 10_000, &[]);
        let small = fs_cost(&s, 8);
        let medium = fs_cost(&s, 100);
        let large = fs_cost(&s, 20_000);
        assert!(small.io_blocks > medium.io_blocks);
        assert!(medium.io_blocks > large.io_blocks);
        assert_eq!(large.io_blocks, 0.0, "fits in memory → internal");
    }

    #[test]
    fn eq1_shape_single_merge_pass() {
        // B = 10_000, M = 200: runs = 25, F = 199 → one round trip → 2B.
        let s = stats(100_000, 10_000, &[]);
        let c = fs_cost(&s, 200);
        assert_eq!(c.io_blocks, 2.0 * 10_000.0);
        // M = 8: runs = 625, F = 7 → ⌈log₇ 625⌉ = 4 passes → 8B.
        let c2 = fs_cost(&s, 8);
        assert_eq!(c2.io_blocks, 8.0 * 10_000.0);
    }

    /// The paper's Table 4/6/8/10 regime: the cost models must pick HS at
    /// the 50/75 paper-MB equivalents and FS at the 150 one (B ≈ 10.6k
    /// blocks ↔ the paper's 14.3 GB).
    #[test]
    fn fs_hs_crossover_matches_paper_memories() {
        let s = stats(400_000, 10_600, &[(0, 20_000)]);
        let whk = AttrSet::from_iter([a(0)]);
        let w = CostWeights::default();
        let m_50 = 37u64; // 50 MB-equivalent
        let m_75 = 56u64;
        let m_150 = 111u64;
        assert!(hs_cost(&s, &whk, m_50).ms(&w) < fs_cost(&s, m_50).ms(&w));
        assert!(hs_cost(&s, &whk, m_75).ms(&w) < fs_cost(&s, m_75).ms(&w));
        assert!(fs_cost(&s, m_150).ms(&w) < hs_cost(&s, &whk, m_150).ms(&w));
    }

    /// The parallel FS model: elapsed cost shrinks with workers (shards
    /// sort concurrently) despite the serial scatter and merge terms, and
    /// one worker degenerates to the serial model exactly.
    #[test]
    fn par_fs_cost_shrinks_with_workers() {
        let s = stats(400_000, 10_600, &[(0, 20_000), (1, 2)]);
        let wide = AttrSet::from_iter([a(0)]);
        let w = CostWeights::default();
        let m = 37;
        assert_eq!(par_fs_cost(&s, m, 1, &wide), fs_cost(&s, m));
        let serial = fs_cost(&s, m).ms(&w);
        let par4 = par_fs_cost(&s, m, 4, &wide).ms(&w);
        assert!(par4 < serial, "par {par4} vs serial {serial}");
        assert!(
            par_fs_cost(&s, m, 4, &wide).hashes > 0.0,
            "scatter is priced"
        );
        // More workers with the same M keep the memory constraint: the
        // model never assumes more than M across the pool.
        let par8 = par_fs_cost(&s, m, 8, &wide).ms(&w);
        assert!(par8 < serial);
        // A low-cardinality shard key caps the effective parallelism: one
        // distinct value means one busy worker sorting everything at the
        // split grant — priced worse than the serial sort, never better.
        let narrow = AttrSet::from_iter([a(1)]);
        let skewed = par_fs_cost(&s, m, 4, &narrow).ms(&w);
        assert!(
            par_fs_cost(&s, m, 4, &narrow).comparisons > par_fs_cost(&s, m, 4, &wide).comparisons
        );
        let single = stats(400_000, 10_600, &[(1, 1)]);
        let degenerate = par_fs_cost(&single, m, 4, &narrow).ms(&w);
        assert!(
            degenerate > fs_cost(&single, m).ms(&w),
            "one shard: Par must price worse than serial FS"
        );
        let _ = skewed;
    }

    /// WHERE-selectivity statistics: equality scales cardinality by
    /// `1/D(attr)` and pins the attribute's distinct count to one; other
    /// distinct counts cap at the surviving rows; AND multiplies.
    #[test]
    fn with_predicate_scales_cardinalities() {
        use wf_exec::Predicate;
        let s = stats(400_000, 10_600, &[(0, 1_800), (1, 20_000)]);
        let eq = s.with_predicate(&Predicate::Eq(a(0), Value::Int(7)));
        assert_eq!(eq.rows(), (400_000.0_f64 / 1_800.0).round() as u64);
        assert_eq!(eq.distinct(a(0)), 1, "equality pins the column");
        assert!(eq.distinct(a(1)) <= eq.rows(), "capped at survivors");
        assert!(eq.blocks() < s.blocks());

        let range = s.with_predicate(&Predicate::Gt(a(1), Value::Int(0)));
        assert_eq!(range.rows(), (400_000.0_f64 / 3.0).round() as u64);
        assert_eq!(range.distinct(a(0)), 1_800, "no pinning without equality");

        // An equality-pinned column's histogram becomes exact: every
        // surviving row holds the predicate's value, so an oversized MFV
        // partition the filter selects stays visible to mfv_for.
        let skewed = s
            .clone()
            .with_hot_values(a(0), vec![(Value::Int(7), 399_000)]);
        let hit = skewed.with_predicate(&Predicate::Eq(a(0), Value::Int(7)));
        assert_eq!(
            hit.mfv_for(&AttrSet::from_iter([a(0)]), 4),
            vec![vec![Value::Int(7)]],
            "selected hot value keeps its (surviving) mass"
        );

        let conj = s.with_predicate(&Predicate::And(
            Box::new(Predicate::Gt(a(1), Value::Int(0))),
            Box::new(Predicate::Between(a(0), Value::Int(1), Value::Int(9))),
        ));
        assert_eq!(conj.rows(), (400_000.0_f64 / 12.0).round() as u64);
        // Never below one row: planning stays well-defined.
        let tiny = stats(2, 1, &[(0, 2)]);
        assert!(
            tiny.with_predicate(&Predicate::Eq(a(0), Value::Int(0)))
                .rows()
                >= 1
        );
    }

    /// The parallel HS model: one worker degenerates to Eq. 2 exactly;
    /// more workers shrink the elapsed estimate (shares partition and sort
    /// concurrently) while the scatter's extra hashes stay priced; a
    /// low-cardinality hash key caps the effective parallelism.
    #[test]
    fn par_hs_cost_shrinks_with_workers() {
        let s = stats(400_000, 10_600, &[(0, 20_000), (1, 2)]);
        let wide = AttrSet::from_iter([a(0)]);
        let w = CostWeights::default();
        let m = 37;
        assert_eq!(par_hs_cost(&s, &wide, m, 1), hs_cost(&s, &wide, m));
        let serial = hs_cost(&s, &wide, m).ms(&w);
        let par4 = par_hs_cost(&s, &wide, m, 4);
        assert!(
            par4.ms(&w) < serial,
            "par {} vs serial {serial}",
            par4.ms(&w)
        );
        assert!(
            par4.hashes > hs_cost(&s, &wide, m).hashes,
            "scatter re-hash is priced"
        );
        // D(WHK)=2 caps w_eff at 2: the narrow key's elapsed estimate is
        // worse than the wide key's at the same worker count, and its
        // scatter still pays the bigger per-worker share's re-hash.
        let narrow = AttrSet::from_iter([a(1)]);
        let skewed = par_hs_cost(&s, &narrow, m, 4);
        assert!(skewed.ms(&w) > par4.ms(&w));
        assert!(skewed.hashes > par4.hashes);
    }

    #[test]
    fn cost_scaled_is_componentwise() {
        let c = Cost {
            io_blocks: 10.0,
            comparisons: 6.0,
            hashes: 4.0,
        };
        let half = c.scaled(0.5);
        assert_eq!(half.io_blocks, 5.0);
        assert_eq!(half.comparisons, 3.0);
        assert_eq!(half.hashes, 2.0);
    }

    #[test]
    fn hs_flat_io_and_beats_fs_at_small_memory() {
        // Medium partition count: buckets fit memory → HS ≈ 2B while FS
        // multi-passes.
        let s = stats(400_000, 10_000, &[(0, 20_000)]);
        let whk = AttrSet::from_iter([a(0)]);
        let m = 8;
        let hs = hs_cost(&s, &whk, m);
        let fs = fs_cost(&s, m);
        assert!(
            hs.io_blocks < fs.io_blocks,
            "HS {} vs FS {}",
            hs.io_blocks,
            fs.io_blocks
        );
        // Flatness: HS I/O barely moves across M.
        let hs_big = hs_cost(&s, &whk, 120);
        assert!((hs.io_blocks - hs_big.io_blocks).abs() / hs.io_blocks < 0.2);
    }

    #[test]
    fn fs_beats_hs_at_large_memory() {
        let s = stats(400_000, 10_000, &[(0, 20_000)]);
        let whk = AttrSet::from_iter([a(0)]);
        let w = CostWeights::default();
        // One-pass regime for FS.
        let m = 120;
        let fs = fs_cost(&s, m).ms(&w);
        let hs = hs_cost(&s, &whk, m).ms(&w);
        assert!(fs < hs, "FS {fs} should beat HS {hs} at M=120 blocks");
    }

    #[test]
    fn ss_cheapest_of_all() {
        let s = stats(400_000, 10_000, &[(0, 100), (1, 20_000)]);
        let m = 8;
        let alpha = SortSpec::new(vec![wf_common::OrdElem::asc(a(0))]);
        let u = ss_units(&s, &AttrSet::empty(), &alpha, 1);
        let ss = ss_cost(&s, m, 1, u);
        let fs = fs_cost(&s, m);
        let hs = hs_cost(&s, &AttrSet::from_iter([a(0)]), m);
        let w = CostWeights::default();
        assert!(ss.ms(&w) < fs.ms(&w));
        assert!(ss.ms(&w) < hs.ms(&w));
    }

    #[test]
    fn ss_units_paper_cases() {
        let s = stats(72_000, 1_000, &[(0, 100), (1, 7_200)]);
        // α empty → one unit per segment.
        assert_eq!(ss_units(&s, &AttrSet::empty(), &SortSpec::empty(), 5), 1);
        // α disjoint from X: u = min(T/k, D(α)).
        let alpha = SortSpec::new(vec![wf_common::OrdElem::asc(a(0))]);
        assert_eq!(ss_units(&s, &AttrSet::from_iter([a(1)]), &alpha, 10), 100);
        // α overlapping X: u = min(T/k, D(α)/k).
        let alpha_x = SortSpec::new(vec![wf_common::OrdElem::asc(a(1))]);
        assert_eq!(ss_units(&s, &AttrSet::from_iter([a(1)]), &alpha_x, 10), 720);
    }

    #[test]
    fn bucket_count_capped() {
        let s = stats(1_000_000, 50_000, &[(0, 5), (1, 900_000)]);
        // A generous budget leaves the classic clamp: min(D, 1024).
        let m = s.blocks();
        assert_eq!(hs_bucket_count(&s, &AttrSet::from_iter([a(0)]), m), 5);
        assert_eq!(hs_bucket_count(&s, &AttrSet::from_iter([a(1)]), m), 1024);
    }

    #[test]
    fn bucket_count_respects_pool_budget() {
        let s = stats(1_000_000, 50_000, &[(0, 5), (1, 900_000)]);
        let blocks = s.blocks();
        // Tiny budget: enough buckets that an expected bucket fits M —
        // ⌈B/M⌉, above the 1024 fan-out cap when the budget demands it.
        let m = 4;
        let n = hs_bucket_count(&s, &AttrSet::from_iter([a(1)]), m) as u64;
        assert_eq!(n, blocks.div_ceil(m));
        assert!(blocks.div_ceil(n) <= m, "expected bucket must fit M");
        // …but never more buckets than distinct values: extra buckets
        // cannot split a single hash-key value.
        assert_eq!(hs_bucket_count(&s, &AttrSet::from_iter([a(0)]), 1), 5);
    }

    #[test]
    fn mfv_detection_from_hot_values() {
        use wf_common::row;
        use wf_common::{DataType, Schema};
        // 60% of rows share item=0; its partition alone exceeds 4 blocks.
        let schema = Schema::of(&[("item", DataType::Int), ("pad", DataType::Str)]);
        let mut t = Table::new(schema);
        let pad = "x".repeat(120);
        for i in 0..1000 {
            t.push(row![if i % 10 < 6 { 0i64 } else { i as i64 }, pad.clone()]);
        }
        let s = TableStats::from_table(&t);
        let whk = AttrSet::from_iter([a(0)]);
        let mfv_small = s.mfv_for(&whk, 4);
        assert_eq!(mfv_small, vec![vec![Value::Int(0)]]);
        // With a huge budget nothing qualifies.
        assert!(s.mfv_for(&whk, 1_000_000).is_empty());
        // Multi-attribute hash keys carry no histogram.
        assert!(s.mfv_for(&AttrSet::from_iter([a(0), a(1)]), 4).is_empty());
        // Synthetic stats without hot values yield nothing.
        let syn = TableStats::synthetic(1000, 100_000, vec![(a(0), 10)]);
        assert!(syn.mfv_for(&whk, 4).is_empty());
        // ... unless declared explicitly.
        let syn2 = TableStats::synthetic(1000, 1_000_000, vec![(a(0), 10)])
            .with_hot_values(a(0), vec![(Value::Int(7), 900)]);
        assert_eq!(syn2.mfv_for(&whk, 4), vec![vec![Value::Int(7)]]);
    }

    #[test]
    fn cost_arithmetic() {
        let c1 = Cost {
            io_blocks: 10.0,
            comparisons: 5.0,
            hashes: 1.0,
        };
        let c2 = c1.plus(&Cost::zero());
        assert_eq!(c1, c2);
        let w = CostWeights::default();
        assert!(c1.ms(&w) > 0.0);
    }
}
