//! Integrated window-query optimization (paper §5).
//!
//! The loose approach optimizes the non-window query, the window chain and
//! the final ORDER BY separately; the tight approach enumerates *interesting
//! property* variants of the windowed table (e.g. a GROUP BY can deliver a
//! grouped or sorted table at some extra cost) and picks the combination
//! that minimizes chain cost **plus** the residual ORDER BY cost — which is
//! zero when the chain's final properties already satisfy the ORDER BY, a
//! partial (segmented) sort when a prefix is satisfied, and a full sort
//! otherwise.

use crate::cost::{fs_cost, ss_cost, ss_units, Cost, TableStats};
use crate::plan::Plan;
use crate::planner::{optimize, Scheme};
use crate::props::SegProps;
use crate::query::WindowQuery;
use crate::runtime::ExecEnv;
use wf_common::{Result, SortSpec};
use wf_exec::{full_sort, segmented_sort, SegmentedRows};
use wf_storage::Table;

/// One way the upstream plan could deliver the windowed table.
#[derive(Debug, Clone)]
pub struct InputVariant {
    /// Label for reports (e.g. "heap", "sorted by group-by").
    pub label: String,
    /// Physical properties delivered.
    pub props: SegProps,
    /// Physical segment count delivered.
    pub segments: u64,
    /// Extra cost (modeled ms) of producing this variant instead of the
    /// cheapest one.
    pub setup_cost_ms: f64,
}

impl InputVariant {
    /// The plain heap table: unordered, free.
    pub fn heap() -> Self {
        InputVariant {
            label: "heap".into(),
            props: SegProps::unordered(),
            segments: 1,
            setup_cost_ms: 0.0,
        }
    }
}

/// How the final ORDER BY will be satisfied.
#[derive(Debug, Clone, PartialEq)]
pub enum FinalOrder {
    /// No ORDER BY clause.
    NotRequired,
    /// The chain's output already satisfies it.
    Satisfied,
    /// A partial sort suffices: `prefix_len` leading elements already hold.
    PartialSort { prefix_len: usize },
    /// A full sort is needed.
    FullSort,
}

/// Result of integrated optimization.
#[derive(Debug)]
pub struct IntegratedPlan {
    /// Index of the chosen input variant.
    pub variant: usize,
    pub plan: Plan,
    pub final_order: FinalOrder,
    /// Chain + ORDER BY + variant setup, modeled ms.
    pub total_ms: f64,
}

/// Cost of satisfying `order` given the chain's final properties.
fn order_by_cost(
    props: &SegProps,
    order: &SortSpec,
    stats: &TableStats,
    mem_blocks: u64,
) -> (FinalOrder, Cost) {
    if order.is_empty() {
        return (FinalOrder::NotRequired, Cost::zero());
    }
    if props.satisfies_order(order) {
        return (FinalOrder::Satisfied, Cost::zero());
    }
    let prefix = props.satisfied_order_prefix(order);
    if prefix > 0 {
        // Partial sort: the satisfied prefix segments the work like SS.
        let alpha = order.prefix(prefix);
        let u = ss_units(stats, props.x(), &alpha, 1);
        return (
            FinalOrder::PartialSort { prefix_len: prefix },
            ss_cost(stats, mem_blocks, 1, u),
        );
    }
    (FinalOrder::FullSort, fs_cost(stats, mem_blocks))
}

/// Pick the best (variant, chain) combination for a query with an optional
/// ORDER BY (§5's tightly integrated approach).
pub fn optimize_integrated(
    query: &WindowQuery,
    variants: &[InputVariant],
    stats: &TableStats,
    scheme: Scheme,
    env: &ExecEnv,
) -> Result<IntegratedPlan> {
    let weights = env.weights();
    let order = query.order_by.clone().unwrap_or_else(SortSpec::empty);
    // The final ORDER BY runs downstream of any WHERE, like every reorder:
    // price it on post-filter statistics too (`optimize` applies the same
    // substitution internally for the chain itself).
    let filtered;
    let order_stats = match &query.filter {
        Some(pred) => {
            filtered = stats.with_predicate(pred);
            &filtered
        }
        None => stats,
    };
    let mut best: Option<IntegratedPlan> = None;
    for (vi, variant) in variants.iter().enumerate() {
        let mut q = query.clone();
        q.input_props = variant.props.clone();
        q.input_segments = variant.segments;
        let plan = optimize(&q, stats, scheme, env)?;
        let (final_order, oc) =
            order_by_cost(&plan.final_props, &order, order_stats, env.mem_blocks());
        let total_ms = variant.setup_cost_ms + plan.est_cost.ms(&weights) + oc.ms(&weights);
        if best.as_ref().is_none_or(|b| total_ms < b.total_ms) {
            best = Some(IntegratedPlan {
                variant: vi,
                plan,
                final_order,
                total_ms,
            });
        }
    }
    best.ok_or_else(|| wf_common::Error::Planning("no input variants supplied".into()))
}

/// Apply the final ORDER BY to an executed result, using a partial
/// (segmented) sort when a prefix of the order is already satisfied.
pub fn apply_final_order(
    table: Table,
    final_props: &SegProps,
    order: &SortSpec,
    env: &ExecEnv,
) -> Result<Table> {
    if order.is_empty() || final_props.satisfies_order(order) {
        return Ok(table);
    }
    let schema = table.schema().clone();
    let rows = SegmentedRows::single_segment(table.into_rows());
    let prefix = final_props.satisfied_order_prefix(order);
    let sorted = if prefix > 0 {
        segmented_sort(
            rows,
            &order.prefix(prefix),
            &order.suffix(prefix),
            env.op_env(),
        )?
    } else {
        full_sort(rows, order, env.op_env())?
    };
    Table::from_rows(schema, sorted.into_rows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use wf_common::{row, AttrId, DataType, OrdElem, Schema};

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }
    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
    }
    fn schema() -> Schema {
        Schema::of(&[
            ("g", DataType::Int),
            ("v", DataType::Int),
            ("w", DataType::Int),
        ])
    }
    fn stats() -> TableStats {
        TableStats::synthetic(
            400_000,
            10_600 * wf_storage::BLOCK_SIZE as u64,
            vec![(a(0), 500), (a(1), 50_000), (a(2), 50_000)],
        )
    }

    /// A GROUP BY-sorted variant is worth a modest setup cost because the
    /// chain then needs only SS.
    #[test]
    fn sorted_variant_wins_when_cheap_enough() {
        let s = schema();
        let q = QueryBuilder::new(&s)
            .rank("r", &["g"], &[("v", false)])
            .build()
            .unwrap();
        let st = stats();
        let env = ExecEnv::with_memory_blocks(37);
        let variants = vec![
            InputVariant::heap(),
            InputVariant {
                label: "sorted by g".into(),
                props: SegProps::sorted(key(&[0])),
                segments: 1,
                setup_cost_ms: 10.0,
            },
        ];
        let best = optimize_integrated(&q, &variants, &st, Scheme::Cso, &env).unwrap();
        assert_eq!(best.variant, 1, "sorted variant should win");
        // And with an absurd setup cost the heap wins.
        let pricey = vec![
            InputVariant::heap(),
            InputVariant {
                label: "sorted by g".into(),
                props: SegProps::sorted(key(&[0])),
                segments: 1,
                setup_cost_ms: 1e12,
            },
        ];
        let best2 = optimize_integrated(&q, &pricey, &st, Scheme::Cso, &env).unwrap();
        assert_eq!(best2.variant, 0);
    }

    /// ORDER BY satisfied by the chain output costs nothing; a conflicting
    /// one forces a final sort that the total reflects.
    #[test]
    fn order_by_influences_total() {
        let s = schema();
        let q_sat = QueryBuilder::new(&s)
            .rank("r", &["g"], &[("v", false)])
            .order_by(&[("g", false), ("v", false)])
            .build()
            .unwrap();
        let q_full = QueryBuilder::new(&s)
            .rank("r", &["g"], &[("v", false)])
            .order_by(&[("w", false)])
            .build()
            .unwrap();
        let st = stats();
        // Large memory → the serial chain ends with FS (total order) and
        // the satisfied case needs nothing. Pinned serial: under a worker
        // budget the planner may prefer a Par{Hs} chain whose grouped
        // output changes the final-order classification this test pins.
        let env = ExecEnv::with_memory_blocks(111).with_par_workers(1);
        let sat =
            optimize_integrated(&q_sat, &[InputVariant::heap()], &st, Scheme::Cso, &env).unwrap();
        assert_eq!(sat.final_order, FinalOrder::Satisfied);
        let full =
            optimize_integrated(&q_full, &[InputVariant::heap()], &st, Scheme::Cso, &env).unwrap();
        assert_eq!(full.final_order, FinalOrder::FullSort);
        assert!(full.total_ms > sat.total_ms);
    }

    #[test]
    fn partial_sort_detected() {
        let s = schema();
        let q = QueryBuilder::new(&s)
            .rank("r", &["g"], &[("v", false)])
            .order_by(&[("g", false), ("w", false)])
            .build()
            .unwrap();
        let st = stats();
        // Pinned serial for the same reason as `order_by_influences_total`.
        let env = ExecEnv::with_memory_blocks(111).with_par_workers(1);
        let best =
            optimize_integrated(&q, &[InputVariant::heap()], &st, Scheme::Cso, &env).unwrap();
        assert_eq!(best.final_order, FinalOrder::PartialSort { prefix_len: 1 });
    }

    #[test]
    fn apply_final_order_sorts() {
        let s = schema();
        let mut t = Table::new(s);
        for i in 0..100 {
            t.push(row![(100 - i) as i64, i as i64, (i % 7) as i64]);
        }
        let env = ExecEnv::with_memory_blocks(64);
        let order = key(&[0]);
        let sorted = apply_final_order(t, &SegProps::unordered(), &order, &env).unwrap();
        let vals: Vec<i64> = sorted
            .rows()
            .iter()
            .map(|r| r.get(a(0)).as_int().unwrap())
            .collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn no_variants_is_an_error() {
        let s = schema();
        let q = QueryBuilder::new(&s)
            .rank("r", &["g"], &[])
            .build()
            .unwrap();
        let st = stats();
        let env = ExecEnv::with_memory_blocks(37);
        assert!(optimize_integrated(&q, &[], &st, Scheme::Cso, &env).is_err());
    }
}
