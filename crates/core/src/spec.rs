//! Window-function specifications: `wf = (WPK, WOK)` plus the computed
//! function and frame.

use std::fmt;
use wf_common::{AttrId, AttrSet, OrdElem, Schema, SortSpec};
pub use wf_exec::window::{Bound, FrameSpec, FrameUnits, WindowFunction};

/// One window function as written in the query.
///
/// `WPK` (the PARTITION BY key) is kept in *written order* — the PSQL
/// baseline sorts on exactly that order — with the attribute set derived.
/// `WOK` (the ORDER BY key) is normalized on construction:
///
/// * later duplicates of an attribute are dropped (no extra ordering), and
/// * attributes already in `WPK` are dropped (constant within a partition).
///
/// After normalization `WPK ∩ attr(WOK) = ∅`, the precondition the paper's
/// algebra implicitly assumes.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    /// Output column name.
    pub name: String,
    /// The computed function.
    pub func: WindowFunction,
    /// Optional explicit frame (None = SQL default).
    pub frame: Option<FrameSpec>,
    wpk_written: Vec<AttrId>,
    wpk_set: AttrSet,
    wok: SortSpec,
}

impl WindowSpec {
    /// Build and normalize a specification.
    pub fn new(
        name: impl Into<String>,
        func: WindowFunction,
        partition_by: Vec<AttrId>,
        order_by: SortSpec,
    ) -> Self {
        // Dedup WPK preserving written order.
        let mut wpk_written = Vec::with_capacity(partition_by.len());
        let mut wpk_set = AttrSet::empty();
        for a in partition_by {
            if !wpk_set.contains(a) {
                wpk_set.insert(a);
                wpk_written.push(a);
            }
        }
        let wok = order_by.dedup_attrs().without_attrs(&wpk_set);
        WindowSpec {
            name: name.into(),
            func,
            frame: None,
            wpk_written,
            wpk_set,
            wok,
        }
    }

    /// Rank over the given keys — the function used throughout the paper's
    /// experiments.
    pub fn rank(name: impl Into<String>, partition_by: Vec<AttrId>, order_by: SortSpec) -> Self {
        WindowSpec::new(name, WindowFunction::Rank, partition_by, order_by)
    }

    /// With an explicit frame.
    pub fn with_frame(mut self, frame: FrameSpec) -> Self {
        self.frame = Some(frame);
        self
    }

    /// The partition-key set `WPK`.
    pub fn wpk(&self) -> &AttrSet {
        &self.wpk_set
    }

    /// `WPK` in the order it was written (used by the PSQL baseline).
    pub fn wpk_written(&self) -> &[AttrId] {
        &self.wpk_written
    }

    /// The normalized ordering key `WOK`.
    pub fn wok(&self) -> &SortSpec {
        &self.wok
    }

    /// `|WPK| + |WOK|` — the length of any `perm(WPK) ∘ WOK` key.
    pub fn key_len(&self) -> usize {
        self.wpk_set.len() + self.wok.len()
    }

    /// The frame this call actually evaluates with: the explicit frame, or
    /// SQL's default (which depends on whether an ORDER BY is present) —
    /// exactly the substitution the window operator applies.
    pub fn resolved_frame(&self) -> FrameSpec {
        self.frame
            .unwrap_or_else(|| FrameSpec::default_for(!self.wok.is_empty()))
    }

    /// The spilled-segment evaluation class of this call (one-pass /
    /// ring-buffer / buffered) — see [`wf_exec::StreamableEval`].
    pub fn eval_class(&self) -> wf_exec::StreamableEval {
        wf_exec::StreamableEval::classify(&self.func, &self.resolved_frame())
    }

    /// The sort key `perm(WPK) ∘ WOK` for a *given* permutation of `WPK`
    /// (elements for the permutation region default to ascending).
    pub fn key_with_perm(&self, perm: &[AttrId]) -> SortSpec {
        debug_assert_eq!(
            AttrSet::from_iter(perm.iter().copied()),
            self.wpk_set,
            "permutation must cover WPK exactly"
        );
        let head: Vec<OrdElem> = perm.iter().map(|&a| OrdElem::asc(a)).collect();
        SortSpec::new(head).concat(&self.wok)
    }

    /// The written-order sort key (what PSQL uses).
    pub fn written_key(&self) -> SortSpec {
        self.key_with_perm(&self.wpk_written.clone())
    }

    /// Human-readable form `({a,b}, (c))` with schema names.
    pub fn describe(&self, schema: &Schema) -> String {
        let wpk: Vec<&str> = self.wpk_written.iter().map(|&a| schema.name(a)).collect();
        let wok: Vec<String> = self
            .wok
            .elems()
            .iter()
            .map(|e| {
                let mut s = schema.name(e.attr).to_string();
                if e.dir == wf_common::Direction::Desc {
                    s.push_str(" desc");
                }
                s
            })
            .collect();
        format!("({{{}}}, ({}))", wpk.join(","), wok.join(","))
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}=({}, {})", self.name, self.wpk_set, self.wok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }
    fn spec_of(wpk: &[usize], wok: &[usize]) -> WindowSpec {
        WindowSpec::rank(
            "w",
            wpk.iter().map(|&i| a(i)).collect(),
            SortSpec::new(wok.iter().map(|&i| OrdElem::asc(a(i))).collect()),
        )
    }

    #[test]
    fn wok_drops_wpk_attrs_and_duplicates() {
        let s = WindowSpec::rank(
            "w",
            vec![a(0)],
            SortSpec::new(vec![
                OrdElem::asc(a(0)), // in WPK → dropped
                OrdElem::asc(a(1)),
                OrdElem::desc(a(1)), // duplicate attr → dropped
                OrdElem::asc(a(2)),
            ]),
        );
        assert_eq!(s.wok().len(), 2);
        assert_eq!(s.wok().attr_seq().as_slice(), &[a(1), a(2)]);
        assert_eq!(s.key_len(), 3);
    }

    #[test]
    fn wpk_written_order_preserved_dedup() {
        let s = WindowSpec::rank("w", vec![a(2), a(0), a(2)], SortSpec::empty());
        assert_eq!(s.wpk_written(), &[a(2), a(0)]);
        assert_eq!(s.wpk().len(), 2);
    }

    #[test]
    fn written_key_uses_written_order() {
        let s = spec_of(&[2, 0], &[1]);
        let key = s.written_key();
        assert_eq!(key.attr_seq().as_slice(), &[a(2), a(0), a(1)]);
    }

    #[test]
    fn key_with_perm_concats_wok() {
        let s = spec_of(&[0, 1], &[2]);
        let key = s.key_with_perm(&[a(1), a(0)]);
        assert_eq!(key.attr_seq().as_slice(), &[a(1), a(0), a(2)]);
    }

    #[test]
    fn wok_direction_survives_normalization() {
        let s = WindowSpec::rank("w", vec![a(0)], SortSpec::new(vec![OrdElem::desc(a(1))]));
        assert_eq!(s.wok().elems()[0], OrdElem::desc(a(1)));
    }
}
