//! Prefixable subsets and the common prefix `θ(P)` (paper §4.5, Def. 5,
//! Thm. 8).
//!
//! A set `W` is *prefixable* when a permutation of each member's key can be
//! chosen so that all keys share a non-empty common prefix; Thm. 8 shows
//! this is exactly the condition for evaluating `W` with one FS/HS plus SS
//! reorderings. Minimum partitioning into prefixable subsets is NP-hard
//! (Thm. 9, set cover); the greedy here repeatedly picks the attribute that
//! can lead the keys of the most remaining functions — tie-broken by the
//! number of cover sets the induced subset needs, which reproduces the
//! paper's partitions on Q7–Q9.

use crate::cover::{partition_into_cover_sets, ThetaElem};
use crate::spec::WindowSpec;
use wf_common::{AttrSet, Direction, NullOrder, OrdElem};

/// The attributes that can appear first in some `perm(WPK) ∘ WOK` of `wf`:
/// any WPK attribute, or the first WOK element when WPK is empty.
pub fn first_attrs(wf: &WindowSpec) -> AttrSet {
    if !wf.wpk().is_empty() {
        wf.wpk().clone()
    } else if let Some(e) = wf.wok().elems().first() {
        AttrSet::from_iter([e.attr])
    } else {
        AttrSet::empty()
    }
}

/// Def. 5: is there a common non-empty prefix across all members? (True
/// iff the members' first-attr sets intersect; members with an empty key
/// make the set non-prefixable — but such functions match everything and
/// never reach `C2`.)
pub fn is_prefixable(specs: &[WindowSpec], idxs: &[usize]) -> bool {
    !theta(specs, idxs).is_empty()
}

/// Compute a maximal common prefix `θ(P)` greedily.
///
/// State per member: the unconsumed part of its WPK (order free) or, once
/// exhausted, the position in its WOK (order and direction fixed). At each
/// step the candidate attributes are intersected across members; direction
/// conflicts (one member's WOK demands DESC, another's ASC) disqualify an
/// attribute. Ties break toward the lowest attribute id. `θ` may not be
/// unique (the paper notes `abc` vs `bac`); this function is deterministic.
pub fn theta(specs: &[WindowSpec], idxs: &[usize]) -> Vec<ThetaElem> {
    #[derive(Clone)]
    struct State {
        remaining_wpk: AttrSet,
        wok_pos: usize,
    }
    let mut states: Vec<State> = idxs
        .iter()
        .map(|&i| State {
            remaining_wpk: specs[i].wpk().clone(),
            wok_pos: 0,
        })
        .collect();
    if states.is_empty() {
        return vec![];
    }
    let mut out: Vec<ThetaElem> = Vec::new();

    loop {
        // Candidate (attr, forced element) pairs per member.
        let mut common: Option<Vec<(wf_common::AttrId, Option<OrdElem>)>> = None;
        for (si, state) in states.iter().enumerate() {
            let spec = &specs[idxs[si]];
            let cands: Vec<(wf_common::AttrId, Option<OrdElem>)> =
                if !state.remaining_wpk.is_empty() {
                    state.remaining_wpk.iter().map(|a| (a, None)).collect()
                } else if let Some(e) = spec.wok().elems().get(state.wok_pos) {
                    vec![(e.attr, Some(*e))]
                } else {
                    vec![] // key exhausted: θ cannot grow
                };
            common = Some(match common {
                None => cands,
                Some(prev) => prev
                    .into_iter()
                    .filter_map(|(a, d)| {
                        cands.iter().find(|(ca, _)| *ca == a).and_then(|(_, cd)| {
                            match (d, cd) {
                                (None, None) => Some((a, None)),
                                (None, Some(e)) => Some((a, Some(*e))),
                                (Some(e), None) => Some((a, Some(e))),
                                (Some(e1), Some(e2)) if e1 == *e2 => Some((a, Some(e1))),
                                _ => None, // direction conflict
                            }
                        })
                    })
                    .collect(),
            });
            if common.as_ref().is_some_and(Vec::is_empty) {
                break;
            }
        }
        let Some(mut cands) = common else { break };
        if cands.is_empty() {
            break;
        }
        cands.sort_by_key(|(a, _)| *a);
        let (attr, forced) = cands[0];
        out.push(match forced {
            Some(e) => ThetaElem::fixed(e),
            None => ThetaElem::free(attr),
        });
        // Advance every member.
        for (si, state) in states.iter_mut().enumerate() {
            let spec = &specs[idxs[si]];
            if !state.remaining_wpk.remove(attr) {
                debug_assert_eq!(
                    spec.wok().elems().get(state.wok_pos).map(|e| e.attr),
                    Some(attr)
                );
                state.wok_pos += 1;
            }
        }
    }
    out
}

/// `θ'`: the maximal prefix of `θ` whose attributes are contained in every
/// listed member's WPK (§4.5.2; the pool for HS hash keys).
pub fn theta_prime<'a>(
    theta: &'a [ThetaElem],
    specs: &[WindowSpec],
    idxs: &[usize],
) -> &'a [ThetaElem] {
    let mut n = 0;
    for t in theta {
        if idxs.iter().all(|&i| specs[i].wpk().contains(t.attr)) {
            n += 1;
        } else {
            break;
        }
    }
    &theta[..n]
}

/// Greedy partition of `idxs` into prefixable subsets: pick the attribute
/// that can lead the most members, tie-broken by (fewest induced cover
/// sets, lowest attribute id); repeat on the remainder. `O(|W|²)` cover
/// checks, as the paper's heuristic.
pub fn partition_into_prefixable(specs: &[WindowSpec], idxs: &[usize]) -> Vec<Vec<usize>> {
    let mut remaining: Vec<usize> = idxs.to_vec();
    let mut out: Vec<Vec<usize>> = Vec::new();
    while !remaining.is_empty() {
        // Count how many remaining members each attribute can lead.
        let mut counts: Vec<(wf_common::AttrId, usize)> = Vec::new();
        for &i in &remaining {
            for a in first_attrs(&specs[i]).iter() {
                match counts.iter_mut().find(|(ca, _)| *ca == a) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((a, 1)),
                }
            }
        }
        if counts.is_empty() {
            // Members with empty keys: each its own (trivially evaluable)
            // subset.
            out.extend(remaining.drain(..).map(|i| vec![i]));
            break;
        }
        let best_count = counts.iter().map(|&(_, c)| c).max().unwrap_or(0);
        let mut best_attr = None;
        let mut best_sets = usize::MAX;
        let mut tied: Vec<wf_common::AttrId> = counts
            .iter()
            .filter(|&&(_, c)| c == best_count)
            .map(|&(a, _)| a)
            .collect();
        tied.sort();
        for a in tied {
            let subset: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&i| first_attrs(&specs[i]).contains(a))
                .collect();
            let n_sets = partition_into_cover_sets(specs, &subset, None).len();
            if n_sets < best_sets {
                best_sets = n_sets;
                best_attr = Some(a);
            }
        }
        let attr = best_attr.expect("counts non-empty");
        let (subset, rest): (Vec<usize>, Vec<usize>) = remaining
            .into_iter()
            .partition(|&i| first_attrs(&specs[i]).contains(attr));
        out.push(subset);
        remaining = rest;
    }
    out
}

/// Convert direction-free θ elements to concrete sort elements (canonical
/// ascending, NULLS LAST) — used when a hash key or display needs values.
pub fn theta_as_elems(theta: &[ThetaElem]) -> Vec<OrdElem> {
    theta
        .iter()
        .map(|t| {
            t.elem.unwrap_or(OrdElem {
                attr: t.attr,
                dir: Direction::Asc,
                nulls: NullOrder::Last,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{AttrId, SortSpec};

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }
    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
    }
    fn wf(wpk: &[usize], wok: &[usize]) -> WindowSpec {
        WindowSpec::rank("t", wpk.iter().map(|&i| a(i)).collect(), key(wok))
    }

    #[test]
    fn first_attrs_rules() {
        assert_eq!(
            first_attrs(&wf(&[0, 1], &[2])),
            AttrSet::from_iter([a(0), a(1)])
        );
        assert_eq!(first_attrs(&wf(&[], &[2, 0])), AttrSet::from_iter([a(2)]));
        assert!(first_attrs(&wf(&[], &[])).is_empty());
    }

    /// Q6: {wf1=({item},(date)), wf2=({item},(bill))} is prefixable with
    /// θ=(item). Attrs: item=0, date=1, bill=2.
    #[test]
    fn q6_theta() {
        let specs = vec![wf(&[0], &[1]), wf(&[0], &[2])];
        assert!(is_prefixable(&specs, &[0, 1]));
        let t = theta(&specs, &[0, 1]);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].attr, a(0));
        assert!(t[0].elem.is_none());
    }

    /// Q8's P2 = {wf1=({date,time,ship},ε), wf2=({time,date},ε),
    /// wf5=({date,time,item},(bill,ship))}: θ = (date,time) (both orders
    /// valid; ours picks ascending attr ids). Attrs: date=0, time=1,
    /// ship=2, item=3, bill=4.
    #[test]
    fn q8_theta_two_attrs() {
        let specs = vec![
            wf(&[0, 1, 2], &[]),
            wf(&[1, 0], &[]),
            wf(&[0, 1, 3], &[4, 2]),
        ];
        let t = theta(&specs, &[0, 1, 2]);
        let attrs: Vec<AttrId> = t.iter().map(|e| e.attr).collect();
        assert_eq!(attrs, vec![a(0), a(1)]);
    }

    /// θ stops when one member's key is exhausted.
    #[test]
    fn theta_stops_at_shortest_key() {
        // wf1 = ({a}, ε), wf2 = ({a}, (b)): θ = (a) only.
        let specs = vec![wf(&[0], &[]), wf(&[0], &[1])];
        assert_eq!(theta(&specs, &[0, 1]).len(), 1);
    }

    /// θ can extend into WOK positions, adopting the fixed direction.
    #[test]
    fn theta_extends_into_wok() {
        let d = WindowSpec::rank("d", vec![a(0)], SortSpec::new(vec![OrdElem::desc(a(1))]));
        let e = wf(&[0, 1], &[]); // b direction free
        let specs = vec![d, e];
        let t = theta(&specs, &[0, 1]);
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].attr, a(1));
        assert_eq!(t[1].elem, Some(OrdElem::desc(a(1))));
    }

    #[test]
    fn theta_direction_conflict_blocks_attr() {
        let d1 = WindowSpec::rank("a", vec![], SortSpec::new(vec![OrdElem::desc(a(0))]));
        let d2 = WindowSpec::rank("b", vec![], SortSpec::new(vec![OrdElem::asc(a(0))]));
        assert!(theta(&[d1, d2], &[0, 1]).is_empty());
    }

    #[test]
    fn theta_prime_requires_wpk_membership() {
        // θ = (a, b); only a is in both WPKs.
        let specs = vec![wf(&[0], &[1]), wf(&[0, 1], &[])];
        let t = theta(&specs, &[0, 1]);
        assert_eq!(t.len(), 2);
        let tp = theta_prime(&t, &specs, &[0, 1]);
        assert_eq!(tp.len(), 1);
        assert_eq!(tp[0].attr, a(0));
    }

    /// Q7's C2 partition: the item-led subset {wf3, wf4, wf5} is chosen
    /// over the date/time-led one because it induces a single cover set.
    /// Attrs: date=0, time=1, ship=2, item=3, bill=4.
    #[test]
    fn q7_partition_prefers_fewer_cover_sets() {
        let specs = vec![
            wf(&[0, 1, 2], &[]),     // wf1
            wf(&[1, 0], &[]),        // wf2
            wf(&[3], &[]),           // wf3
            wf(&[], &[3, 4]),        // wf4
            wf(&[0, 1, 3, 4], &[2]), // wf5
        ];
        let parts = partition_into_prefixable(&specs, &[0, 1, 2, 3, 4]);
        assert_eq!(parts.len(), 2);
        let mut first = parts[0].clone();
        first.sort_unstable();
        assert_eq!(first, vec![2, 3, 4], "item-led subset must come first");
        let mut second = parts[1].clone();
        second.sort_unstable();
        assert_eq!(second, vec![0, 1]);
    }

    /// Q9's C2 partition: item(4) then time {wf7,wf8} then bill {wf5,wf6}.
    /// Attrs: date=0, item=1, time=2, bill=3.
    #[test]
    fn q9_partition() {
        let specs = vec![
            wf(&[1], &[3, 0]), // wf1
            wf(&[1, 2], &[0]), // wf2
            wf(&[1], &[2]),    // wf3
            wf(&[], &[1, 0]),  // wf4
            wf(&[3, 0], &[2]), // wf5
            wf(&[3], &[2]),    // wf6
            wf(&[0, 2], &[]),  // wf7
            wf(&[], &[2]),     // wf8
        ];
        let parts = partition_into_prefixable(&specs, &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(parts.len(), 3);
        let normalized: Vec<Vec<usize>> = parts
            .iter()
            .map(|p| {
                let mut v = p.clone();
                v.sort_unstable();
                v
            })
            .collect();
        assert_eq!(
            normalized[0],
            vec![0, 1, 2, 3],
            "item-led subset is largest"
        );
        assert!(normalized.contains(&vec![4, 5]), "bill-led subset");
        assert!(normalized.contains(&vec![6, 7]), "time-led subset");
    }

    #[test]
    fn empty_key_members_become_singletons() {
        let specs = vec![wf(&[], &[]), wf(&[0], &[])];
        let parts = partition_into_prefixable(&specs, &[0, 1]);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn non_prefixable_pair_splits() {
        let specs = vec![wf(&[0], &[]), wf(&[1], &[])];
        assert!(!is_prefixable(&specs, &[0, 1]));
        let parts = partition_into_prefixable(&specs, &[0, 1]);
        assert_eq!(parts.len(), 2);
    }
}
