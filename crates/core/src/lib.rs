//! # wf-core — Optimization of Analytic Window Functions
//!
//! The paper's contribution (Cao, Chan, Li, Tan; VLDB 2012), implemented on
//! top of the `wf-exec` operators:
//!
//! * [`spec`] — window-function specifications `wf = (WPK, WOK)`,
//! * [`props`] — the segmented-relation property algebra `R_{X,Y}`:
//!   matching (Def. 2, Thm. 1), FS/HS/SS-reorderability (Def. 3, §3.2–3.3)
//!   and property propagation (Thm. 2),
//! * [`cover`] — cover sets and covering permutations (Def. 4, Thm. 5/7),
//!   built on an exact key-pattern constraint solver,
//! * [`prefixable`] — prefixable subsets, `θ(P)` and `θ'` (Def. 5, Thm. 8),
//! * [`cost`] — the cost models of §3.4 (Eqs. 1–3) plus CPU terms,
//! * [`plan`] — executable window-function chains with validation/repair,
//! * [`planner`] — the four optimization schemes of §6: **CSO** (cover-set
//!   based, §4), **BFO** (brute force), **ORCL** (Oracle 8i ordering
//!   groups), **PSQL** (PostgreSQL 9.1 naive), plus CSO ablations,
//! * [`query`] / [`runtime`] — user-facing query description and plan
//!   execution,
//! * [`admission`] — cross-query admission control: a governed pool of
//!   ledger sub-accounts, FIFO queueing, timeout/cancel,
//! * [`integrated`] — §5's integrated optimization over input-property
//!   variants and ORDER BY requirements.

pub mod admission;
pub mod cost;
pub mod cover;
pub mod integrated;
pub mod plan;
pub mod planner;
pub mod prefixable;
pub mod props;
pub mod query;
pub mod runtime;
pub mod spec;

pub use admission::{AdmissionConfig, AdmissionPermit, AdmissionStats, CancelToken, QueryGovernor};
pub use plan::{Plan, PlanStep, ReorderOp};
pub use planner::{optimize, Scheme};
pub use props::SegProps;
pub use query::{QueryBuilder, WindowQuery};
pub use runtime::{execute_plan, explain_analyze, ExecEnv, ExecMetrics, ExecReport, StepMetrics};
pub use spec::WindowSpec;
pub use wf_exec::Predicate;
