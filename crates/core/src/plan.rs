//! Executable window-function chains.
//!
//! A [`Plan`] is the paper's *window function chain*: an ordered list of
//! window evaluations, each optionally preceded by a reordering operator.
//! Plans are produced by the planners in [`crate::planner`] and finalized
//! by [`finalize_chain`], which walks the chain through the property
//! algebra, verifies every evaluation is matched, *repairs* any gap with
//! the cheapest applicable reorder, and attaches cost estimates. Repair
//! guarantees that heuristic planners can never produce an incorrect plan —
//! only a more expensive one, which the estimate then reflects honestly.

use crate::cost::{
    fs_cost, hs_bucket_count, hs_cost, par_fs_cost, par_hs_cost, ss_reorder_cost, window_scan_cost,
    Cost, TableStats,
};
use crate::cover::KeyPattern;
use crate::props::SegProps;
use crate::spec::WindowSpec;
use wf_common::{AttrSet, Schema, SortSpec};
use wf_storage::CostWeights;

/// The reordering operator in front of one window evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ReorderOp {
    /// Input already matches — evaluate directly.
    None,
    /// Full Sort on `key`.
    Fs { key: SortSpec },
    /// Hashed Sort: hash on `whk`, sort buckets on `key`. `mfv` lists
    /// hash-key values pipelined straight to the first sort (§3.2's MFV
    /// optimization, chosen from the statistics' hot values).
    Hs {
        whk: AttrSet,
        key: SortSpec,
        n_buckets: usize,
        mfv: Vec<Vec<wf_common::Value>>,
    },
    /// Segmented Sort: `α`-groups sorted on `β`.
    Ss { alpha: SortSpec, beta: SortSpec },
    /// Partition-parallel reordering (paper §3.5 made planner-visible):
    /// shard on (a subset of) the step's `WPK`, run `inner` on every shard
    /// with one `workers`-th of the unit reorder memory each, and
    /// ordered-merge the shards back — output rows, boundary layers and
    /// physical properties are identical to executing `inner` serially
    /// (see `wf_exec::scheduler`); only the cost differs. `workers` is the
    /// shard count (the determinism domain), not the thread count.
    Par {
        inner: Box<ReorderOp>,
        workers: usize,
    },
}

impl ReorderOp {
    /// Paper-style arrow label (`→`, `FS→`, `HS→`, `SS→`, `PAR→`).
    pub fn arrow(&self) -> &'static str {
        match self {
            ReorderOp::None => "→",
            ReorderOp::Fs { .. } => "FS→",
            ReorderOp::Hs { .. } => "HS→",
            ReorderOp::Ss { .. } => "SS→",
            ReorderOp::Par { .. } => "PAR→",
        }
    }

    /// Residency rank of the reorder for the planner's equal-cost tiebreak:
    /// lower is better — a smaller "largest unit" the chain must keep
    /// around. `None` reorders nothing; SS holds one unit; HS one expected
    /// bucket; Par `M/w` of sort memory per worker plus the merge; FS
    /// streams the whole relation through `M`-bounded machinery but leaves
    /// the largest downstream segments.
    pub fn residency_rank(&self) -> u8 {
        match self {
            ReorderOp::None => 0,
            ReorderOp::Ss { .. } => 1,
            ReorderOp::Hs { .. } => 2,
            ReorderOp::Par { .. } => 3,
            ReorderOp::Fs { .. } => 4,
        }
    }
}

/// One link of the chain: reorder (maybe) then evaluate `specs[wf]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    pub wf: usize,
    pub reorder: ReorderOp,
}

/// A finalized, costed window-function chain.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Which scheme produced it (display only).
    pub scheme: String,
    /// The window functions the steps index into.
    pub specs: Vec<WindowSpec>,
    pub steps: Vec<PlanStep>,
    pub input_props: SegProps,
    pub final_props: SegProps,
    /// Estimated cost under the paper's models.
    pub est_cost: Cost,
    /// Number of reorders the finalizer had to insert (0 for a planner
    /// whose chain was already consistent).
    pub repairs: usize,
    /// WHERE predicate pushed below the chain (the runtime inserts a
    /// `FilterOp` directly after the table scan). Set by
    /// [`crate::planner::optimize`] from the query.
    pub filter: Option<wf_exec::Predicate>,
    /// Per-step spilled-segment evaluation class (one-pass / ring-buffer /
    /// buffered), recorded at finalize time — one entry per `steps` entry —
    /// so EXPLAIN output and `repro regress` can report which residency
    /// discipline each window call takes.
    pub eval_classes: Vec<wf_exec::StreamableEval>,
}

impl Plan {
    /// The weakest evaluation class across the chain's window calls — a
    /// mixed-call query's residency is governed by its weakest member
    /// (`O(M + partition)` dominates `O(M + frame)` dominates `O(M)`).
    pub fn weakest_eval_class(&self) -> wf_exec::StreamableEval {
        wf_exec::StreamableEval::weakest(self.eval_classes.iter().copied())
    }

    /// Number of FS/HS/SS reorders in the chain.
    pub fn reorder_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.reorder != ReorderOp::None)
            .count()
    }

    /// Paper-notation chain, e.g. `ws FS→ wf5 → wf4 → wf3 HS→ wf1 → wf2`.
    pub fn chain_string(&self) -> String {
        let mut out = String::from("ws");
        for step in &self.steps {
            out.push(' ');
            out.push_str(step.reorder.arrow());
            out.push(' ');
            out.push_str(&self.specs[step.wf].name);
        }
        out
    }

    /// Chain with schema-resolved key details (for EXPLAIN-style output).
    pub fn explain(&self, schema: &Schema) -> String {
        let specs = &self.specs;
        let mut out = format!("input: {}\n", self.input_props);
        if let Some(pred) = &self.filter {
            out.push_str(&format!("  ── Filter {pred:?}\n"));
        }
        let mut i = 0;
        while i < self.steps.len() {
            let step = &self.steps[i];
            let spec = &specs[step.wf];
            match &step.reorder {
                ReorderOp::None => out.push_str("  ── (matched)\n"),
                ReorderOp::Fs { key } => {
                    out.push_str(&format!("  ── FullSort key={}\n", names(key, schema)))
                }
                ReorderOp::Hs {
                    whk,
                    key,
                    n_buckets,
                    mfv,
                } => out.push_str(&format!(
                    "  ── HashedSort whk={{{}}} key={} buckets={}{}\n",
                    set_names(whk, schema),
                    names(key, schema),
                    n_buckets,
                    if mfv.is_empty() {
                        String::new()
                    } else {
                        format!(" mfv={}", mfv.len())
                    }
                )),
                ReorderOp::Ss { alpha, beta } => out.push_str(&format!(
                    "  ── SegmentedSort α={} β={}\n",
                    names(alpha, schema),
                    names(beta, schema)
                )),
                ReorderOp::Par { inner, workers } => {
                    // The whole span runs inside the workers: head reorder,
                    // this step's window, and every fused SS + window stage.
                    // Only finished rows come back through the merge.
                    let span = par_span_len(&self.steps, specs, i);
                    let shard = par_shard_attrs(step, specs);
                    let head = match inner.as_ref() {
                        ReorderOp::Fs { key } => format!("FullSort key={}", names(key, schema)),
                        ReorderOp::Hs {
                            whk,
                            key,
                            n_buckets,
                            ..
                        } => format!(
                            "HashedSort whk={{{}}} key={} buckets={}",
                            set_names(whk, schema),
                            names(key, schema),
                            n_buckets
                        ),
                        other => format!("{other:?}"),
                    };
                    let mut ops = vec![head];
                    for s in &self.steps[i..i + span] {
                        if let ReorderOp::Ss { alpha, beta } = &s.reorder {
                            ops.push(format!(
                                "SegmentedSort α={} β={}",
                                names(alpha, schema),
                                names(beta, schema)
                            ));
                        }
                        ops.push(format!("Window {}", specs[s.wf].name));
                    }
                    out.push_str(&format!(
                        "  ── Parallel workers={} shard={{{}}} [{}] ∘ Merge\n",
                        workers,
                        set_names(&shard, schema),
                        ops.join(" ∘ ")
                    ));
                    for s in &self.steps[i..i + span] {
                        let sp = &specs[s.wf];
                        out.push_str(&format!(
                            "  {} {} [{}] (in-worker)\n",
                            sp.name,
                            sp.describe(schema),
                            sp.eval_class()
                        ));
                    }
                    i += span;
                    continue;
                }
            }
            out.push_str(&format!(
                "  {} {} [{}]\n",
                spec.name,
                spec.describe(schema),
                spec.eval_class()
            ));
            i += 1;
        }
        out.push_str(&format!("output: {}", self.final_props));
        out
    }
}

fn set_names(attrs: &AttrSet, schema: &Schema) -> String {
    attrs
        .iter()
        .map(|a| schema.name(a).to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn names(key: &SortSpec, schema: &Schema) -> String {
    let parts: Vec<String> = key
        .elems()
        .iter()
        .map(|e| {
            let mut s = schema.name(e.attr).to_string();
            if e.dir == wf_common::Direction::Desc {
                s.push_str(" desc");
            }
            s
        })
        .collect();
    format!("({})", parts.join(","))
}

/// Planner context shared by all schemes.
#[derive(Clone)]
pub struct PlanContext<'a> {
    pub stats: &'a TableStats,
    /// Unit reorder memory in blocks (the paper's `M`).
    pub mem_blocks: u64,
    pub weights: CostWeights,
    /// CSO(v1) disables HS; CSO(v2) disables SS (§6.2's ablations).
    pub allow_hs: bool,
    pub allow_ss: bool,
    /// Worker budget for parallel reorders: `1` (the default) keeps every
    /// plan serial; `w > 1` lets the planners weigh `ReorderOp::Par` nodes
    /// that split the unit reorder memory `w` ways (`workers × M_w ≤ M`)
    /// against one big sort. Set from `ExecEnv::par_workers` by
    /// [`crate::planner::optimize`].
    pub workers: usize,
}

impl<'a> PlanContext<'a> {
    pub fn new(stats: &'a TableStats, mem_blocks: u64) -> Self {
        PlanContext {
            stats,
            mem_blocks,
            weights: CostWeights::default(),
            allow_hs: true,
            allow_ss: true,
            workers: 1,
        }
    }
}

/// The default FS key for a single function: its canonical covering
/// permutation.
pub fn default_fs_key(spec: &WindowSpec) -> SortSpec {
    KeyPattern::for_spec(spec).linearize()
}

/// The scatter key of a `Par` step: the step spec's WPK for an FS inner,
/// the hash key for an HS inner. Empty for non-`Par` steps.
pub fn par_shard_attrs(step: &PlanStep, specs: &[WindowSpec]) -> AttrSet {
    match &step.reorder {
        ReorderOp::Par { inner, .. } => match inner.as_ref() {
            ReorderOp::Hs { whk, .. } => whk.clone(),
            _ => specs[step.wf].wpk().clone(),
        },
        _ => AttrSet::empty(),
    }
}

/// Length of the chain-parallel span starting at step `k`, **including the
/// `Par` step itself** — 0 when step `k` is not a `Par` node. A follow-up
/// step fuses into the span (runs inside the workers, on the worker's shard)
/// when its reorder needs no cross-shard data movement and its window
/// partitions stay whole within a shard:
///
/// * `None` reorders — provided the step's WPK covers the shard key,
/// * `Ss` reorders — additionally the declared `α` must cover the shard key,
///   so SS units never straddle shards.
///
/// Any other reorder (FS, HS, a second Par) ends the span: it needs the
/// whole relation. This one predicate is shared by the cost model
/// ([`finalize_chain`]'s span discount), EXPLAIN ([`Plan::explain`]) and the
/// runtime's lowering, so they can never disagree about span membership.
pub fn par_span_len(steps: &[PlanStep], specs: &[WindowSpec], k: usize) -> usize {
    let ReorderOp::Par { .. } = &steps[k].reorder else {
        return 0;
    };
    let shard = par_shard_attrs(&steps[k], specs);
    let mut len = 1;
    for step in &steps[k + 1..] {
        let spec = &specs[step.wf];
        let joins = match &step.reorder {
            ReorderOp::None => shard.is_subset(spec.wpk()),
            ReorderOp::Ss { alpha, .. } => {
                shard.is_subset(spec.wpk()) && shard.is_subset(&alpha.attr_set())
            }
            _ => false,
        };
        if !joins {
            break;
        }
        len += 1;
    }
    len
}

/// At (near-)equal modeled cost, plans should prefer the reorder with the
/// gentler residency profile (smaller largest unit / stronger streaming
/// class downstream) — the pool-aware tiebreak. Cost comparisons treat
/// values within this relative tolerance as ties.
const COST_TIE_EPS: f64 = 1e-9;

/// True when two modeled costs are equal up to the planner's tolerance —
/// the single definition every scheme's tiebreak compares with.
pub fn costs_tie(a: f64, b: f64) -> bool {
    (a - b).abs() <= COST_TIE_EPS * b.abs().max(1.0)
}

/// `a` beats `b` under cost-then-residency: strictly cheaper wins; a tie
/// falls to [`ReorderOp::residency_rank`] (lower wins).
pub fn better_reorder(a: (&ReorderOp, f64), b: (&ReorderOp, f64)) -> bool {
    if costs_tie(a.1, b.1) {
        a.0.residency_rank() < b.0.residency_rank()
    } else {
        a.1 < b.1
    }
}

/// Choose the cheapest applicable reorder for `spec` given the current
/// properties (used for repair and by the PSQL/ORCL baselines' forced-FS
/// variants through the `allow_*` switches). Equal-cost candidates fall to
/// the residency tiebreak ([`better_reorder`]).
pub fn cheapest_reorder(
    props: &SegProps,
    segments: u64,
    spec: &WindowSpec,
    ctx: &PlanContext<'_>,
) -> (ReorderOp, Cost) {
    let mut best: Option<(ReorderOp, Cost)> = None;
    let mut consider = |op: ReorderOp, cost: Cost| {
        let better = match &best {
            None => true,
            Some((bop, c)) => {
                better_reorder((&op, cost.ms(&ctx.weights)), (bop, c.ms(&ctx.weights)))
            }
        };
        if better {
            best = Some((op, cost));
        }
    };

    if ctx.allow_ss && props.ss_reorderable(spec) {
        let split = props.alpha_split(spec);
        let cost = ss_reorder_cost(ctx.stats, props, segments, spec, ctx.mem_blocks);
        consider(
            ReorderOp::Ss {
                alpha: split.alpha.clone(),
                beta: split.beta.clone(),
            },
            cost,
        );
    }
    let key = default_fs_key(spec);
    consider(
        ReorderOp::Fs { key: key.clone() },
        fs_cost(ctx.stats, ctx.mem_blocks),
    );
    if ctx.allow_hs && !spec.wpk().is_empty() {
        let whk = spec.wpk().clone();
        let cost = hs_cost(ctx.stats, &whk, ctx.mem_blocks);
        let n_buckets = hs_bucket_count(ctx.stats, &whk, ctx.mem_blocks);
        let mfv = ctx.stats.mfv_for(&whk, ctx.mem_blocks);
        consider(
            ReorderOp::Hs {
                whk,
                key: key.clone(),
                n_buckets,
                mfv,
            },
            cost,
        );
    }
    // Partition-parallel reorders: only with a worker budget and a
    // non-empty WPK to shard on (the partition-sharded distribution rule).
    if ctx.workers > 1 && !spec.wpk().is_empty() {
        consider(
            ReorderOp::Par {
                inner: Box::new(ReorderOp::Fs { key: key.clone() }),
                workers: ctx.workers,
            },
            par_fs_cost(ctx.stats, ctx.mem_blocks, ctx.workers, spec.wpk()),
        );
        if ctx.allow_hs {
            // Per-worker Hashed Sort over globally numbered buckets. The
            // bucket count is sized to the *worker's* memory grant so an
            // expected bucket fits `M_w`; the MFV bypass stays off — its
            // emission order is residency-dependent, which the parallel
            // interleave cannot tolerate.
            let whk = spec.wpk().clone();
            let m_w = wf_exec::per_worker_blocks(ctx.mem_blocks, ctx.workers);
            let n_buckets = hs_bucket_count(ctx.stats, &whk, m_w);
            consider(
                ReorderOp::Par {
                    inner: Box::new(ReorderOp::Hs {
                        whk: whk.clone(),
                        key,
                        n_buckets,
                        mfv: Vec::new(),
                    }),
                    workers: ctx.workers,
                },
                par_hs_cost(ctx.stats, &whk, ctx.mem_blocks, ctx.workers),
            );
        }
    }
    best.expect("FS is always applicable")
}

/// Apply a reorder to the tracked `(props, segments)` planning state.
pub fn apply_reorder(
    op: &ReorderOp,
    props: &SegProps,
    segments: u64,
    spec: &WindowSpec,
    stats: &TableStats,
) -> (SegProps, u64) {
    match op {
        ReorderOp::None => (props.clone(), segments),
        ReorderOp::Fs { key } => (SegProps::after_fs(key.clone()), 1),
        ReorderOp::Hs {
            whk,
            key,
            n_buckets,
            ..
        } => (
            SegProps::after_hs(whk.clone(), key.clone()),
            stats.distinct_set(whk).min(*n_buckets as u64).max(1),
        ),
        ReorderOp::Ss { alpha, beta } => {
            let _ = spec;
            (
                SegProps::new(props.x().clone(), alpha.concat(beta), props.is_grouped()),
                segments,
            )
        }
        // The ordered merge restores the inner reorder's exact output: same
        // physical properties, same segment count.
        ReorderOp::Par { inner, .. } => apply_reorder(inner, props, segments, spec, stats),
    }
}

/// Estimated cost of executing a reorder in the current state.
pub fn reorder_cost(
    op: &ReorderOp,
    props: &SegProps,
    segments: u64,
    spec: &WindowSpec,
    ctx: &PlanContext<'_>,
) -> Cost {
    match op {
        ReorderOp::None => Cost::zero(),
        ReorderOp::Fs { .. } => fs_cost(ctx.stats, ctx.mem_blocks),
        ReorderOp::Hs { whk, .. } => hs_cost(ctx.stats, whk, ctx.mem_blocks),
        ReorderOp::Ss { alpha, .. } => {
            let _ = spec;
            let u = crate::cost::ss_units(ctx.stats, props.x(), alpha, segments);
            crate::cost::ss_cost(ctx.stats, ctx.mem_blocks, segments, u)
        }
        ReorderOp::Par { inner, workers } => match inner.as_ref() {
            ReorderOp::Fs { .. } => par_fs_cost(ctx.stats, ctx.mem_blocks, *workers, spec.wpk()),
            ReorderOp::Hs { whk, .. } => par_hs_cost(ctx.stats, whk, ctx.mem_blocks, *workers),
            other => reorder_cost(other, props, segments, spec, ctx),
        },
    }
}

/// Walk a raw chain, validate each step against the property algebra,
/// repair gaps with the cheapest applicable reorder, and cost the result.
pub fn finalize_chain(
    scheme: &str,
    specs: &[WindowSpec],
    input_props: &SegProps,
    input_segments: u64,
    raw_steps: Vec<PlanStep>,
    ctx: &PlanContext<'_>,
) -> Plan {
    let mut props = input_props.clone();
    let mut segments = input_segments;
    let mut steps = Vec::with_capacity(raw_steps.len());
    let mut step_costs: Vec<(Cost, Cost)> = Vec::with_capacity(raw_steps.len());
    let mut repairs = 0usize;

    for step in raw_steps {
        let spec = &specs[step.wf];
        // Validate the declared reorder; fall back to repair if it would
        // not leave the input matched.
        let valid = {
            let (p2, _) = apply_reorder(&step.reorder, &props, segments, spec, ctx.stats);
            let applicable = match &step.reorder {
                ReorderOp::None | ReorderOp::Fs { .. } => true,
                ReorderOp::Hs { whk, .. } => !whk.is_empty() && whk.is_subset(spec.wpk()),
                // The declared α must really be satisfied by the input —
                // the executor detects unit boundaries on α values.
                ReorderOp::Ss { alpha, .. } => {
                    props.ss_reorderable(spec) && props.satisfied_prefix_of(alpha) >= alpha.len()
                }
                // The executor shards on the step's WPK — or, for an HS
                // inner, on the hash key (a subset of the WPK) — so window
                // partitions stay whole inside one worker.
                ReorderOp::Par { inner, workers } => {
                    *workers >= 1
                        && match inner.as_ref() {
                            ReorderOp::Fs { .. } => !spec.wpk().is_empty(),
                            ReorderOp::Hs { whk, .. } => {
                                !whk.is_empty() && whk.is_subset(spec.wpk())
                            }
                            _ => false,
                        }
                }
            };
            applicable && p2.matches(spec)
        };
        let reorder = if valid {
            step.reorder
        } else {
            repairs += 1;
            cheapest_reorder(&props, segments, spec, ctx).0
        };
        let r_cost = reorder_cost(&reorder, &props, segments, spec, ctx);
        let (p2, s2) = apply_reorder(&reorder, &props, segments, spec, ctx.stats);
        debug_assert!(p2.matches(spec), "finalized step must be matched");
        props = p2;
        segments = s2;
        step_costs.push((r_cost, window_scan_cost(ctx.stats)));
        steps.push(PlanStep {
            wf: step.wf,
            reorder,
        });
    }

    // Cost the finalized chain span-aware: a `Par` head's own cost is
    // already an elapsed estimate, and everything fused into its span —
    // the in-worker window scans (the head step's included) and any SS
    // reorders — spreads over the effective workers, so those terms scale
    // by `1/w_eff`. Steps outside a span sum serially as before.
    let mut total = Cost::zero();
    let mut i = 0;
    while i < steps.len() {
        let span = par_span_len(&steps, specs, i);
        if span == 0 {
            total = total.plus(&step_costs[i].0).plus(&step_costs[i].1);
            i += 1;
            continue;
        }
        let ReorderOp::Par { workers, .. } = &steps[i].reorder else {
            unreachable!("span starts at a Par step");
        };
        let shard = par_shard_attrs(&steps[i], specs);
        let w_eff = (*workers as u64).min(ctx.stats.distinct_set(&shard)).max(1) as f64;
        let inv = 1.0 / w_eff;
        total = total
            .plus(&step_costs[i].0)
            .plus(&step_costs[i].1.scaled(inv));
        for cost in step_costs.iter().take(i + span).skip(i + 1) {
            total = total.plus(&cost.0.scaled(inv)).plus(&cost.1.scaled(inv));
        }
        i += span;
    }

    let eval_classes = steps.iter().map(|s| specs[s.wf].eval_class()).collect();
    Plan {
        scheme: scheme.to_string(),
        specs: specs.to_vec(),
        steps,
        input_props: input_props.clone(),
        final_props: props,
        est_cost: total,
        repairs,
        filter: None,
        eval_classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{AttrId, OrdElem};

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }
    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
    }
    fn wf(wpk: &[usize], wok: &[usize]) -> WindowSpec {
        WindowSpec::rank(
            format!("wf{}", wpk.first().copied().unwrap_or(9)),
            wpk.iter().map(|&i| a(i)).collect(),
            key(wok),
        )
    }
    fn stats() -> TableStats {
        TableStats::synthetic(
            400_000,
            10_600 * wf_storage::BLOCK_SIZE as u64,
            vec![(a(0), 20_000), (a(1), 40_000), (a(2), 100)],
        )
    }

    #[test]
    fn finalize_accepts_consistent_chain() {
        let specs = vec![wf(&[0], &[1]), wf(&[0], &[2])];
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let raw = vec![
            PlanStep {
                wf: 0,
                reorder: ReorderOp::Hs {
                    whk: AttrSet::from_iter([a(0)]),
                    key: key(&[0, 1]),
                    n_buckets: 64,
                    mfv: vec![],
                },
            },
            PlanStep {
                wf: 1,
                reorder: ReorderOp::Ss {
                    alpha: key(&[0]),
                    beta: key(&[2]),
                },
            },
        ];
        let plan = finalize_chain("test", &specs, &SegProps::unordered(), 1, raw, &ctx);
        assert_eq!(plan.repairs, 0);
        assert_eq!(plan.reorder_count(), 2);
        assert!(plan.est_cost.io_blocks > 0.0);
        assert_eq!(plan.chain_string(), "ws HS→ wf0 SS→ wf0");
    }

    #[test]
    fn finalize_repairs_missing_reorder() {
        let specs = vec![wf(&[0], &[1])];
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let raw = vec![PlanStep {
            wf: 0,
            reorder: ReorderOp::None,
        }];
        let plan = finalize_chain("test", &specs, &SegProps::unordered(), 1, raw, &ctx);
        assert_eq!(plan.repairs, 1);
        assert_ne!(plan.steps[0].reorder, ReorderOp::None);
        assert!(plan.final_props.matches(&specs[0]));
    }

    #[test]
    fn finalize_repairs_invalid_ss() {
        // SS declared but input is unordered → not SS-reorderable.
        let specs = vec![wf(&[0], &[1])];
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let raw = vec![PlanStep {
            wf: 0,
            reorder: ReorderOp::Ss {
                alpha: key(&[0]),
                beta: key(&[1]),
            },
        }];
        let plan = finalize_chain("test", &specs, &SegProps::unordered(), 1, raw, &ctx);
        assert_eq!(plan.repairs, 1);
    }

    #[test]
    fn matched_input_needs_no_reorder() {
        let specs = vec![wf(&[0], &[1])];
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let raw = vec![PlanStep {
            wf: 0,
            reorder: ReorderOp::None,
        }];
        let plan = finalize_chain(
            "test",
            &specs,
            &SegProps::sorted(key(&[0, 1])),
            1,
            raw,
            &ctx,
        );
        assert_eq!(plan.repairs, 0);
        assert_eq!(plan.reorder_count(), 0);
    }

    #[test]
    fn cheapest_reorder_prefers_ss_when_applicable() {
        let specs = [wf(&[0], &[1])];
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let props = SegProps::sorted(key(&[0, 2]));
        let (op, _) = cheapest_reorder(&props, 1, &specs[0], &ctx);
        assert!(matches!(op, ReorderOp::Ss { .. }));
    }

    #[test]
    fn cheapest_reorder_hs_vs_fs_by_memory() {
        let specs = [wf(&[0], &[1])];
        let s = stats();
        let small = PlanContext::new(&s, 37);
        let large = PlanContext::new(&s, 111);
        let (op_small, _) = cheapest_reorder(&SegProps::unordered(), 1, &specs[0], &small);
        let (op_large, _) = cheapest_reorder(&SegProps::unordered(), 1, &specs[0], &large);
        assert!(matches!(op_small, ReorderOp::Hs { .. }), "small M → HS");
        assert!(matches!(op_large, ReorderOp::Fs { .. }), "large M → FS");
    }

    #[test]
    fn disallowing_ops_respected() {
        let specs = [wf(&[0], &[1])];
        let s = stats();
        let mut ctx = PlanContext::new(&s, 37);
        ctx.allow_hs = false;
        let (op, _) = cheapest_reorder(&SegProps::unordered(), 1, &specs[0], &ctx);
        assert!(matches!(op, ReorderOp::Fs { .. }));
        let props = SegProps::sorted(key(&[0, 2]));
        ctx.allow_ss = false;
        ctx.allow_hs = true;
        let (op2, _) = cheapest_reorder(&props, 1, &specs[0], &ctx);
        assert!(!matches!(op2, ReorderOp::Ss { .. }));
    }

    /// With a worker budget, the repair/choice path weighs the partition-
    /// parallel reorders and picks one where the elapsed model favors it.
    #[test]
    fn cheapest_reorder_emits_par_with_worker_budget() {
        let specs = [wf(&[0], &[1])];
        let s = stats();
        let mut ctx = PlanContext::new(&s, 37);
        ctx.workers = 4;
        let (op, _) = cheapest_reorder(&SegProps::unordered(), 1, &specs[0], &ctx);
        match &op {
            ReorderOp::Par { inner, workers } => {
                assert_eq!(*workers, 4);
                assert!(
                    matches!(inner.as_ref(), ReorderOp::Fs { .. } | ReorderOp::Hs { .. }),
                    "parallel inner is a full or hashed sort, got {inner:?}"
                );
            }
            other => panic!("expected Par, got {other:?}"),
        }
        // No budget → never Par; empty WPK → nothing to shard on.
        ctx.workers = 1;
        let (serial, _) = cheapest_reorder(&SegProps::unordered(), 1, &specs[0], &ctx);
        assert!(!matches!(serial, ReorderOp::Par { .. }));
        ctx.workers = 4;
        let global = wf(&[], &[1]);
        let (op2, _) = cheapest_reorder(&SegProps::unordered(), 1, &global, &ctx);
        assert!(!matches!(op2, ReorderOp::Par { .. }));
    }

    /// The residency tiebreak: when every candidate costs the same (zero
    /// weights), the reorder with the smaller largest unit wins — SS over
    /// HS over Par over FS.
    #[test]
    fn equal_cost_falls_to_residency_rank() {
        let s = stats();
        let mut ctx = PlanContext::new(&s, 37);
        ctx.weights = wf_storage::CostWeights {
            us_per_block_io: 0.0,
            ns_per_comparison: 0.0,
            ns_per_hash: 0.0,
            ns_per_row_move: 0.0,
        };
        ctx.workers = 4;
        let spec = wf(&[0], &[1]);
        // SS applicable → SS wins the tie.
        let props = SegProps::sorted(key(&[0, 2]));
        let (op, _) = cheapest_reorder(&props, 1, &spec, &ctx);
        assert!(matches!(op, ReorderOp::Ss { .. }), "{op:?}");
        // No SS → HS beats Par beats FS.
        let (op2, _) = cheapest_reorder(&SegProps::unordered(), 1, &spec, &ctx);
        assert!(matches!(op2, ReorderOp::Hs { .. }), "{op2:?}");
        ctx.allow_hs = false;
        let (op3, _) = cheapest_reorder(&SegProps::unordered(), 1, &spec, &ctx);
        assert!(matches!(op3, ReorderOp::Par { .. }), "{op3:?}");
        assert!(ReorderOp::None.residency_rank() < op3.residency_rank());
    }

    /// The finalizer accepts a well-formed Par step (FS inner, non-empty
    /// WPK) and repairs malformed ones instead of executing them.
    #[test]
    fn finalize_validates_par_nodes() {
        let s = stats();
        let ctx = PlanContext::new(&s, 37);
        let specs = vec![wf(&[0], &[1])];
        let good = vec![PlanStep {
            wf: 0,
            reorder: ReorderOp::Par {
                inner: Box::new(ReorderOp::Fs { key: key(&[0, 1]) }),
                workers: 4,
            },
        }];
        let plan = finalize_chain("test", &specs, &SegProps::unordered(), 1, good, &ctx);
        assert_eq!(plan.repairs, 0);
        assert!(plan.final_props.matches(&specs[0]));
        assert_eq!(plan.chain_string(), "ws PAR→ wf0");

        // Non-FS inner → repaired.
        let bad_inner = vec![PlanStep {
            wf: 0,
            reorder: ReorderOp::Par {
                inner: Box::new(ReorderOp::None),
                workers: 4,
            },
        }];
        let plan2 = finalize_chain("test", &specs, &SegProps::unordered(), 1, bad_inner, &ctx);
        assert_eq!(plan2.repairs, 1);

        // Empty WPK → nothing to shard on → repaired.
        let global = vec![wf(&[], &[1])];
        let bad_wpk = vec![PlanStep {
            wf: 0,
            reorder: ReorderOp::Par {
                inner: Box::new(ReorderOp::Fs { key: key(&[1]) }),
                workers: 4,
            },
        }];
        let plan3 = finalize_chain("test", &global, &SegProps::unordered(), 1, bad_wpk, &ctx);
        assert_eq!(plan3.repairs, 1);
        assert!(!matches!(plan3.steps[0].reorder, ReorderOp::Par { .. }));
    }

    #[test]
    fn chain_string_formats_paper_style() {
        let specs = vec![wf(&[0], &[1]), wf(&[0], &[2])];
        let plan = Plan {
            scheme: "CSO".into(),
            specs: specs.clone(),
            steps: vec![
                PlanStep {
                    wf: 0,
                    reorder: ReorderOp::Fs { key: key(&[0, 1]) },
                },
                PlanStep {
                    wf: 1,
                    reorder: ReorderOp::None,
                },
            ],
            input_props: SegProps::unordered(),
            final_props: SegProps::unordered(),
            est_cost: Cost::zero(),
            repairs: 0,
            filter: None,
            eval_classes: vec![wf_exec::StreamableEval::Ring; 2],
        };
        assert_eq!(plan.chain_string(), "ws FS→ wf0 → wf0");
        assert_eq!(plan.weakest_eval_class(), wf_exec::StreamableEval::Ring);
    }
}
