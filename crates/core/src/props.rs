//! The segmented-relation property algebra (paper §3.1, Defs. 1–3).
//!
//! [`SegProps`] describes the physical property of the rows flowing between
//! operators: the relation is a sequence of segments pairwise disjoint on
//! `X`, each sorted on `Y` (`R_{X,Y}`); `grouped` marks the special case
//! `R^g_{X,Y}` where every segment is exactly one `X`-group, in which the
//! `X` attributes are *constant within each segment* and therefore act as
//! free ordering columns.
//!
//! Canonical form: when `grouped`, `X` attributes are removed from `Y`
//! (constants carry no ordering information), duplicate attributes in `Y`
//! are dropped, and `X = ∅` forces `grouped = false` (the whole relation is
//! one segment). All predicates below assume — and constructors enforce —
//! canonical form, which keeps matching a simple positional check.

use crate::spec::WindowSpec;
use wf_common::{AttrSet, OrdElem, SortSpec};

/// Physical property `R_{X,Y}` (+ grouped flag) of a row stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SegProps {
    x: AttrSet,
    y: SortSpec,
    grouped: bool,
}

impl SegProps {
    /// Canonicalizing constructor.
    pub fn new(x: AttrSet, y: SortSpec, grouped: bool) -> Self {
        let grouped = grouped && !x.is_empty();
        let y = if grouped { y.without_attrs(&x) } else { y };
        let y = y.dedup_attrs();
        SegProps { x, y, grouped }
    }

    /// A totally unordered relation (`X = ∅`, `Y = ε`): one segment, no
    /// known order.
    pub fn unordered() -> Self {
        SegProps {
            x: AttrSet::empty(),
            y: SortSpec::empty(),
            grouped: false,
        }
    }

    /// A totally ordered relation `R_{∅,key}` (FS output).
    pub fn sorted(key: SortSpec) -> Self {
        SegProps::new(AttrSet::empty(), key, false)
    }

    /// Segment-key set `X`.
    pub fn x(&self) -> &AttrSet {
        &self.x
    }

    /// Within-segment ordering `Y` (canonical).
    pub fn y(&self) -> &SortSpec {
        &self.y
    }

    /// True for `R^g_{X,Y}`.
    pub fn is_grouped(&self) -> bool {
        self.grouped
    }

    /// Attributes constant within each segment (`X` when grouped, else ∅).
    pub fn constants(&self) -> AttrSet {
        if self.grouped {
            self.x.clone()
        } else {
            AttrSet::empty()
        }
    }

    // ------------------------------------------------------------------
    // Matching (Def. 2 / Thm. 1)
    // ------------------------------------------------------------------

    /// Does this relation match `wf` — i.e. can `wf` be evaluated by one
    /// sequential scan with no reordering?
    ///
    /// `R_{X,Y}` matches `wf = (WPK, WOK)` iff `X ⊆ WPK` and some
    /// permutation of `WPK` concatenated with `WOK` is a prefix of the
    /// effective ordering. With constants `C` (grouped case) removed from
    /// both sides, that reduces to: the first `|WPK − C|` attributes of `Y`
    /// are exactly the set `WPK − C` (any order, any direction — grouping
    /// only needs contiguity), followed element-wise by `WOK` exactly.
    pub fn matches(&self, wf: &WindowSpec) -> bool {
        let wpk = wf.wpk();
        if !self.x.is_subset(wpk) {
            return false;
        }
        let c = self.constants();
        let d = wpk.difference(&c);
        let k = d.len();
        let wok = wf.wok();
        let m = wok.len();
        if self.y.len() < k + m {
            return false;
        }
        let head: AttrSet = self.y.elems()[..k].iter().map(|e| e.attr).collect();
        if head != d {
            return false;
        }
        self.y.elems()[k..k + m] == *wok.elems()
    }

    /// Does this relation match every function in `wfs`?
    pub fn matches_all<'a>(&self, wfs: impl IntoIterator<Item = &'a WindowSpec>) -> bool {
        wfs.into_iter().all(|wf| self.matches(wf))
    }

    // ------------------------------------------------------------------
    // Segmented Sort (§3.3)
    // ------------------------------------------------------------------

    /// SS-reorderability (Def. 3 applied to SS): either `X ≠ ∅ ∧ X ⊆ WPK`,
    /// or `X = ∅` and some `perm(WPK) ∘ WOK` shares a non-empty prefix with
    /// `Y` (otherwise SS would degenerate to a full sort).
    pub fn ss_reorderable(&self, wf: &WindowSpec) -> bool {
        if !self.x.is_empty() {
            return self.x.is_subset(wf.wpk());
        }
        self.alpha_split(wf).consumed_y > 0
    }

    /// Compute the `α / β` decomposition for reordering this relation to
    /// match `wf` with SS, choosing the `WPK` permutation that maximizes
    /// `|α|` (§3.3, footnote 2).
    ///
    /// * `alpha` — the prefix already satisfied (directions adopted from
    ///   `Y`; constants appended free of charge),
    /// * `beta` — what each unit must be sorted on,
    /// * `consumed_y` — how many `Y` elements `α` actually uses (the
    ///   degeneration guard: `X = ∅` requires `consumed_y > 0`).
    ///
    /// `alpha ∘ beta` is always a valid `perm(WPK) ∘ WOK`.
    pub fn alpha_split(&self, wf: &WindowSpec) -> AlphaSplit {
        let c = self.constants().intersect(wf.wpk());
        let mut remaining_d = wf.wpk().difference(&c);
        let y = self.y.elems();
        let mut alpha: Vec<OrdElem> = Vec::new();
        let mut pos = 0usize;

        // Phase 1: consume Y elements that are partition-key attributes.
        while pos < y.len() && remaining_d.contains(y[pos].attr) {
            alpha.push(y[pos]);
            remaining_d.remove(y[pos].attr);
            pos += 1;
        }
        // Constants are free: they extend α without consuming Y.
        for a in c.iter() {
            alpha.push(OrdElem::asc(a));
        }
        // Phase 2: if WPK is exhausted, α can extend into WOK.
        let mut wok_consumed = 0usize;
        if remaining_d.is_empty() {
            for e in wf.wok().elems() {
                if pos < y.len() && y[pos] == *e {
                    alpha.push(*e);
                    pos += 1;
                    wok_consumed += 1;
                } else {
                    break;
                }
            }
        }
        // β: remaining partition attrs (canonical ascending) then the
        // unconsumed WOK suffix.
        let mut beta: Vec<OrdElem> = remaining_d.iter().map(OrdElem::asc).collect();
        beta.extend_from_slice(&wf.wok().elems()[wok_consumed..]);

        AlphaSplit {
            alpha: SortSpec::new(alpha),
            beta: SortSpec::new(beta),
            consumed_y: pos,
        }
    }

    /// Longest prefix of `key` that each segment already satisfies:
    /// constants are free, other elements must follow `Y` element-wise.
    /// This is the `α` of a Segmented Sort targeting `key` (a covering
    /// permutation possibly spanning several window functions).
    pub fn satisfied_prefix_of(&self, key: &SortSpec) -> usize {
        let c = self.constants();
        let y = self.y.elems();
        let mut pos = 0usize;
        let mut n = 0usize;
        for e in key.elems() {
            if c.contains(e.attr) {
                n += 1;
                continue;
            }
            if pos < y.len() && y[pos] == *e {
                pos += 1;
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    // ------------------------------------------------------------------
    // Output properties (Thm. 2 and §3.2/3.3)
    // ------------------------------------------------------------------

    /// Property after a Full Sort on `key`: totally ordered.
    pub fn after_fs(key: SortSpec) -> SegProps {
        SegProps::sorted(key)
    }

    /// Property after a Hashed Sort on `whk` with per-bucket sort `key`:
    /// segments (buckets) disjoint on `whk`, each sorted on `key`. Buckets
    /// may hold several `whk`-groups, so the result is not grouped.
    pub fn after_hs(whk: AttrSet, key: SortSpec) -> SegProps {
        SegProps::new(whk, key, false)
    }

    /// Property after a Segmented Sort that reordered `self` to match `wf`:
    /// segmentation (and groupedness) preserved, within-segment ordering
    /// replaced by `α ∘ β`.
    pub fn after_ss(&self, split: &AlphaSplit) -> SegProps {
        SegProps::new(self.x.clone(), split.full_key(), self.grouped)
    }

    /// Window evaluation appends a column and never reorders: properties
    /// pass through unchanged (Thm. 4's premise).
    pub fn after_window(&self) -> SegProps {
        self.clone()
    }

    // ------------------------------------------------------------------
    // ORDER BY support (§5)
    // ------------------------------------------------------------------

    /// Length of the longest prefix of `order` this relation already
    /// satisfies globally. A relation with `X ≠ ∅` has multiple segments
    /// with no global order, so only `X = ∅` can satisfy anything.
    pub fn satisfied_order_prefix(&self, order: &SortSpec) -> usize {
        if !self.x.is_empty() {
            return 0;
        }
        order
            .elems()
            .iter()
            .zip(self.y.elems())
            .take_while(|(o, y)| o == y)
            .count()
    }

    /// Whether an ORDER BY is fully satisfied.
    pub fn satisfies_order(&self, order: &SortSpec) -> bool {
        self.satisfied_order_prefix(order) == order.len()
    }
}

impl std::fmt::Display for SegProps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.x.is_empty() && self.y.is_empty() {
            return write!(f, "R(unordered)");
        }
        write!(
            f,
            "R{}{},{}",
            if self.grouped { "g" } else { "" },
            self.x,
            self.y
        )
    }
}

/// Result of [`SegProps::alpha_split`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaSplit {
    /// Already-satisfied prefix (drives unit detection in the executor).
    pub alpha: SortSpec,
    /// Per-unit sort key.
    pub beta: SortSpec,
    /// Number of `Y` elements α consumes (0 ⇒ units are whole segments).
    pub consumed_y: usize,
}

impl AlphaSplit {
    /// The complete key `α ∘ β` — a valid `perm(WPK) ∘ WOK`.
    pub fn full_key(&self) -> SortSpec {
        self.alpha.concat(&self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::AttrId;

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }
    fn aset(ids: &[usize]) -> AttrSet {
        AttrSet::from_iter(ids.iter().map(|&i| a(i)))
    }
    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
    }
    /// wf = ({wpk}, (wok)) with ascending keys. Attrs: a=0, b=1, c=2, d=3.
    fn wf(wpk: &[usize], wok: &[usize]) -> WindowSpec {
        WindowSpec::rank("t", wpk.iter().map(|&i| a(i)).collect(), key(wok))
    }

    /// Paper Example 2: R∅,(a,b,c), R{a},(b,a,c), Rg{b},(a,c) all match
    /// wf = ({a,b}, (c)).
    #[test]
    fn example2_matching() {
        let target = wf(&[0, 1], &[2]);
        assert!(SegProps::sorted(key(&[0, 1, 2])).matches(&target));
        assert!(SegProps::new(aset(&[0]), key(&[1, 0, 2]), false).matches(&target));
        assert!(SegProps::new(aset(&[1]), key(&[0, 2]), true).matches(&target));
        // And some that must not match:
        assert!(!SegProps::sorted(key(&[0, 2, 1])).matches(&target));
        assert!(!SegProps::new(aset(&[3]), key(&[0, 1, 2]), false).matches(&target)); // X ⊄ WPK
        assert!(!SegProps::new(aset(&[1]), key(&[0, 2]), false).matches(&target)); // not grouped
        assert!(!SegProps::unordered().matches(&target));
    }

    #[test]
    fn trivial_spec_matches_single_segment_inputs_only() {
        let t = wf(&[], &[]);
        assert!(SegProps::unordered().matches(&t));
        assert!(SegProps::sorted(key(&[2])).matches(&t));
        // A multi-segment relation does NOT match (∅, ε): its single
        // window partition (the whole table) spans segment boundaries, and
        // Def. 2's X ⊆ WPK condition rejects exactly that.
        assert!(!SegProps::new(aset(&[0]), key(&[1]), true).matches(&t));
    }

    #[test]
    fn matching_requires_exact_wok_elements() {
        let target = WindowSpec::rank("t", vec![a(0)], SortSpec::new(vec![OrdElem::desc(a(1))]));
        assert!(!SegProps::sorted(key(&[0, 1])).matches(&target)); // asc b ≠ desc b
        let desc_y = SortSpec::new(vec![OrdElem::asc(a(0)), OrdElem::desc(a(1))]);
        assert!(SegProps::sorted(desc_y).matches(&target));
        // Direction inside the WPK region is irrelevant.
        let desc_head = SortSpec::new(vec![OrdElem::desc(a(0)), OrdElem::desc(a(1))]);
        assert!(SegProps::sorted(desc_head).matches(&target));
    }

    #[test]
    fn grouped_canonicalization_removes_x_from_y() {
        let p = SegProps::new(aset(&[1]), key(&[0, 1, 2]), true);
        assert_eq!(p.y().attr_seq().as_slice(), &[a(0), a(2)]);
        // Empty X cannot be grouped.
        let q = SegProps::new(AttrSet::empty(), key(&[0]), true);
        assert!(!q.is_grouped());
    }

    /// Paper Example 4: SS reordering targets for wf = ({a,b}, (c)).
    #[test]
    fn example4_alpha_splits() {
        let target = wf(&[0, 1], &[2]);

        // R∅,(a,d): α = (a), result R∅,(a,b,c).
        let r1 = SegProps::sorted(key(&[0, 3]));
        let s1 = r1.alpha_split(&target);
        assert_eq!(s1.alpha.attr_seq().as_slice(), &[a(0)]);
        assert_eq!(s1.beta.attr_seq().as_slice(), &[a(1), a(2)]);
        assert_eq!(s1.consumed_y, 1);
        assert!(r1.after_ss(&s1).matches(&target));

        // R{a},(a,b,d): α = (a,b), result R{a},(a,b,c).
        let r2 = SegProps::new(aset(&[0]), key(&[0, 1, 3]), false);
        let s2 = r2.alpha_split(&target);
        assert_eq!(s2.alpha.attr_seq().as_slice(), &[a(0), a(1)]);
        assert_eq!(s2.beta.attr_seq().as_slice(), &[a(2)]);
        assert!(r2.after_ss(&s2).matches(&target));

        // Rg{b},(a,d): α = (a,b) — the constant b extends α for free.
        let r3 = SegProps::new(aset(&[1]), key(&[0, 3]), true);
        let s3 = r3.alpha_split(&target);
        assert_eq!(s3.alpha.attr_seq().as_slice(), &[a(0), a(1)]);
        assert_eq!(s3.beta.attr_seq().as_slice(), &[a(2)]);
        assert_eq!(s3.consumed_y, 1);
        let out = r3.after_ss(&s3);
        assert!(out.matches(&target));
        assert!(out.is_grouped());
    }

    /// Paper Example 5: α empty, whole segments sorted.
    #[test]
    fn example5_empty_alpha() {
        let target = wf(&[0, 1], &[2]);
        // R{a},(d): α = ∅ (no prefix shared), β = perm(WPK)∘WOK.
        let r1 = SegProps::new(aset(&[0]), key(&[3]), false);
        assert!(r1.ss_reorderable(&target));
        let s1 = r1.alpha_split(&target);
        assert_eq!(s1.consumed_y, 0);
        assert!(s1.alpha.is_empty());
        assert_eq!(s1.beta.len(), 3);
        assert!(r1.after_ss(&s1).matches(&target));

        // R{b},(c): X={b} ⊆ WPK → SS-reorderable even though Y=(c) is not
        // usable as a prefix (c ∉ WPK, phase 1 stops immediately).
        let r2 = SegProps::new(aset(&[1]), key(&[2]), false);
        assert!(r2.ss_reorderable(&target));
        let s2 = r2.alpha_split(&target);
        assert_eq!(s2.consumed_y, 0);
        assert!(r2.after_ss(&s2).matches(&target));
    }

    #[test]
    fn ss_degeneration_guard_for_unsegmented_inputs() {
        // X = ∅ and no common prefix → SS would be a full sort → not
        // SS-reorderable (paper Example 6's setting).
        let target = wf(&[0], &[1]);
        assert!(!SegProps::unordered().ss_reorderable(&target));
        assert!(!SegProps::sorted(key(&[3])).ss_reorderable(&target));
        assert!(SegProps::sorted(key(&[0])).ss_reorderable(&target));
    }

    #[test]
    fn ss_requires_x_subset_of_wpk() {
        let target = wf(&[0], &[1]);
        let r = SegProps::new(aset(&[0, 2]), key(&[0]), false);
        assert!(!r.ss_reorderable(&target)); // {a,c} ⊄ {a}
    }

    /// Theorem 2 (spirit): SS-reorderability is preserved across SS
    /// reordering and window evaluation.
    #[test]
    fn theorem2_preservation() {
        let wf1 = wf(&[0], &[1]); // ({a},(b))
        let wf2 = wf(&[0], &[2]); // ({a},(c))
        let r = SegProps::sorted(key(&[0, 3])); // R∅,(a,d)
        assert!(r.ss_reorderable(&wf1));
        assert!(r.ss_reorderable(&wf2));
        let r1 = r.after_ss(&r.alpha_split(&wf1));
        // After reordering for wf1, wf2 is still SS-reorderable.
        assert!(r1.matches(&wf1));
        assert!(r1.ss_reorderable(&wf2));
        // And after "evaluating" wf1 (no property change).
        assert!(r1.after_window().ss_reorderable(&wf2));
    }

    #[test]
    fn after_hs_props() {
        let p = SegProps::after_hs(aset(&[0]), key(&[0, 1]));
        assert!(p.matches(&wf(&[0], &[1])));
        assert!(p.matches(&wf(&[0, 1], &[])));
        assert!(!p.matches(&wf(&[1], &[0])));
        assert!(!p.is_grouped());
    }

    #[test]
    fn order_by_support() {
        let p = SegProps::sorted(key(&[0, 1, 2]));
        assert!(p.satisfies_order(&key(&[0, 1])));
        assert_eq!(p.satisfied_order_prefix(&key(&[0, 2])), 1);
        let seg = SegProps::new(aset(&[0]), key(&[0, 1]), false);
        assert_eq!(
            seg.satisfied_order_prefix(&key(&[0])),
            0,
            "multi-segment ⇒ no global order"
        );
        assert!(SegProps::sorted(key(&[0])).satisfies_order(&SortSpec::empty()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SegProps::unordered().to_string(), "R(unordered)");
        let g = SegProps::new(aset(&[1]), key(&[0]), true);
        assert!(g.to_string().starts_with("Rg"));
    }

    #[test]
    fn satisfied_prefix_with_constants_and_directions() {
        // Grouped on {b}: b is constant, so (a, b, c) is satisfied up to c
        // by Y = (a, c...) — constants are free.
        let props = SegProps::new(aset(&[1]), key(&[0, 2]), true);
        let target = SortSpec::new(vec![
            OrdElem::asc(a(0)),
            OrdElem::asc(a(1)),
            OrdElem::asc(a(2)),
        ]);
        assert_eq!(props.satisfied_prefix_of(&target), 3);
        // Direction mismatch stops the prefix.
        let desc_target = SortSpec::new(vec![OrdElem::desc(a(0))]);
        assert_eq!(props.satisfied_prefix_of(&desc_target), 0);
        // Non-grouped: b is NOT constant.
        let flat = SegProps::new(aset(&[1]), key(&[0, 2]), false);
        assert_eq!(flat.satisfied_prefix_of(&target), 1);
    }

    #[test]
    fn alpha_split_with_desc_y_adopts_direction() {
        // Input sorted on (a desc): α must carry the desc element so the
        // executor's boundary detection runs over the real physical order.
        let y = SortSpec::new(vec![OrdElem::desc(a(0))]);
        let props = SegProps::new(AttrSet::empty(), y, false);
        let target = wf(&[0], &[1]);
        let split = props.alpha_split(&target);
        assert_eq!(split.alpha.elems()[0], OrdElem::desc(a(0)));
        assert_eq!(split.consumed_y, 1);
        assert!(props.after_ss(&split).matches(&target));
    }

    #[test]
    fn canonicalization_dedups_y() {
        let y = SortSpec::new(vec![
            OrdElem::asc(a(0)),
            OrdElem::asc(a(0)),
            OrdElem::asc(a(1)),
        ]);
        let p = SegProps::new(AttrSet::empty(), y, false);
        assert_eq!(p.y().len(), 2);
    }

    /// Matching implies SS-reorderable inputs stay consistent: a matched
    /// relation needs no reorder, and alpha_split on it consumes the whole
    /// key (β covers nothing new).
    #[test]
    fn matched_relation_alpha_consumes_everything() {
        let target = wf(&[0, 1], &[2]);
        let r = SegProps::sorted(key(&[1, 0, 2]));
        assert!(r.matches(&target));
        let s = r.alpha_split(&target);
        assert!(s.beta.is_empty());
        assert_eq!(s.consumed_y, 3);
    }
}
