//! User-facing window-query description.
//!
//! A [`WindowQuery`] is the paper's setting: a windowed table (already
//! produced by the non-window part of the query) carrying physical
//! properties, a set of window functions to evaluate, and an optional final
//! ORDER BY. [`QueryBuilder`] provides a name-based construction API.

use crate::props::SegProps;
use crate::spec::{WindowFunction, WindowSpec};
use wf_common::{Direction, Error, NullOrder, OrdElem, Result, Schema, SortSpec};

/// A set of window functions over a windowed table.
#[derive(Debug, Clone)]
pub struct WindowQuery {
    pub schema: Schema,
    pub specs: Vec<WindowSpec>,
    /// Physical property of the input (unordered for a heap table).
    pub input_props: SegProps,
    /// Number of physical segments of the input (1 for a heap table).
    pub input_segments: u64,
    /// Final ORDER BY clause, if any (§5).
    pub order_by: Option<SortSpec>,
    /// Output projection over the *output schema* (base columns followed by
    /// one column per window function). `None` keeps every column
    /// (`SELECT *` semantics, the paper's setting).
    pub projection: Option<Vec<wf_common::AttrId>>,
    /// WHERE predicate over the base table, applied by a streaming
    /// `FilterOp` before the first reorder.
    pub filter: Option<wf_exec::Predicate>,
}

impl WindowQuery {
    /// Query over an unordered table.
    pub fn new(schema: Schema, specs: Vec<WindowSpec>) -> Self {
        WindowQuery {
            schema,
            specs,
            input_props: SegProps::unordered(),
            input_segments: 1,
            order_by: None,
            projection: None,
            filter: None,
        }
    }

    /// Output schema: input plus one column per window function.
    pub fn output_schema(&self) -> Result<Schema> {
        let mut schema = self.schema.clone();
        for spec in &self.specs {
            let dt = spec.func.result_type(&schema);
            schema = schema.with_appended(wf_common::Field::new(spec.name.clone(), dt))?;
        }
        Ok(schema)
    }
}

/// Name-based builder for [`WindowQuery`].
pub struct QueryBuilder<'a> {
    schema: &'a Schema,
    specs: Vec<WindowSpec>,
    input_props: SegProps,
    input_segments: u64,
    order_by: Option<SortSpec>,
    error: Option<Error>,
}

impl<'a> QueryBuilder<'a> {
    /// Start building over a schema.
    pub fn new(schema: &'a Schema) -> Self {
        QueryBuilder {
            schema,
            specs: Vec::new(),
            input_props: SegProps::unordered(),
            input_segments: 1,
            order_by: None,
            error: None,
        }
    }

    fn resolve_order(&mut self, order_by: &[(&str, bool)]) -> Option<SortSpec> {
        let mut elems = Vec::with_capacity(order_by.len());
        for (name, desc) in order_by {
            match self.schema.resolve(name) {
                Ok(attr) => elems.push(OrdElem {
                    attr,
                    dir: if *desc {
                        Direction::Desc
                    } else {
                        Direction::Asc
                    },
                    nulls: NullOrder::Last,
                }),
                Err(e) => {
                    self.error.get_or_insert(e);
                    return None;
                }
            }
        }
        Some(SortSpec::new(elems))
    }

    /// Add a window function: `partition_by` names, `order_by` as
    /// `(name, descending)` pairs.
    pub fn window(
        mut self,
        name: &str,
        func: WindowFunction,
        partition_by: &[&str],
        order_by: &[(&str, bool)],
    ) -> Self {
        let mut wpk = Vec::with_capacity(partition_by.len());
        for p in partition_by {
            match self.schema.resolve(p) {
                Ok(a) => wpk.push(a),
                Err(e) => {
                    self.error.get_or_insert(e);
                    return self;
                }
            }
        }
        let Some(wok) = self.resolve_order(order_by) else {
            return self;
        };
        self.specs.push(WindowSpec::new(name, func, wpk, wok));
        self
    }

    /// Shorthand for `rank()`.
    pub fn rank(self, name: &str, partition_by: &[&str], order_by: &[(&str, bool)]) -> Self {
        self.window(name, WindowFunction::Rank, partition_by, order_by)
    }

    /// Declare the input's physical properties (e.g. output of a GROUP BY).
    pub fn input_props(mut self, props: SegProps, segments: u64) -> Self {
        self.input_props = props;
        self.input_segments = segments.max(1);
        self
    }

    /// Final ORDER BY.
    pub fn order_by(mut self, order_by: &[(&str, bool)]) -> Self {
        if let Some(spec) = self.resolve_order(order_by) {
            self.order_by = Some(spec);
        }
        self
    }

    /// Finish; errors if any name failed to resolve or no function was
    /// added.
    pub fn build(self) -> Result<WindowQuery> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.specs.is_empty() {
            return Err(Error::InvalidQuery(
                "a window query needs at least one function".into(),
            ));
        }
        // Duplicate output names collide with the appended schema.
        for (i, s) in self.specs.iter().enumerate() {
            for t in &self.specs[..i] {
                if s.name.eq_ignore_ascii_case(&t.name) {
                    return Err(Error::InvalidQuery(format!(
                        "duplicate window column name `{}`",
                        s.name
                    )));
                }
            }
        }
        Ok(WindowQuery {
            schema: self.schema.clone(),
            specs: self.specs,
            input_props: self.input_props,
            input_segments: self.input_segments,
            order_by: self.order_by,
            projection: None,
            filter: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::DataType;

    fn schema() -> Schema {
        Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Str),
        ])
    }

    #[test]
    fn builder_resolves_names() {
        let s = schema();
        let q = QueryBuilder::new(&s)
            .rank("r1", &["a"], &[("b", true)])
            .rank("r2", &[], &[("c", false)])
            .order_by(&[("a", false)])
            .build()
            .unwrap();
        assert_eq!(q.specs.len(), 2);
        assert_eq!(q.specs[0].wpk().len(), 1);
        assert_eq!(q.specs[0].wok().elems()[0].dir, Direction::Desc);
        assert!(q.order_by.is_some());
    }

    #[test]
    fn unknown_name_errors() {
        let s = schema();
        assert!(QueryBuilder::new(&s)
            .rank("r", &["zz"], &[])
            .build()
            .is_err());
        assert!(QueryBuilder::new(&s)
            .rank("r", &[], &[("zz", false)])
            .build()
            .is_err());
    }

    #[test]
    fn empty_query_rejected() {
        let s = schema();
        assert!(QueryBuilder::new(&s).build().is_err());
    }

    #[test]
    fn duplicate_output_names_rejected() {
        let s = schema();
        let r = QueryBuilder::new(&s)
            .rank("r", &["a"], &[])
            .rank("R", &["b"], &[])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn output_schema_appends_columns() {
        let s = schema();
        let q = QueryBuilder::new(&s)
            .rank("r1", &["a"], &[("b", false)])
            .window("cd", WindowFunction::CumeDist, &[], &[("b", false)])
            .build()
            .unwrap();
        let out = q.output_schema().unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(
            out.field(wf_common::AttrId::new(3)).data_type,
            DataType::Int
        );
        assert_eq!(
            out.field(wf_common::AttrId::new(4)).data_type,
            DataType::Float
        );
    }
}
