//! Cover sets and covering permutations (paper §4.2, Def. 4, Thms. 5 & 7).
//!
//! A set of window functions `W` is a *cover set* when some member `wf_c`
//! admits a key `γ = perm(WPK_c) ∘ WOK_c` such that every other member's
//! `perm(WPK_i) ∘ WOK_i` is a prefix of `γ`. Once the input is reordered to
//! match `wf_c` on `γ`, the whole cover set evaluates with no further
//! reordering (Thm. 7 / Cor. 1).
//!
//! The technical core is [`KeyPattern`]: a partially determined sort key —
//! a sequence of *fixed elements* (attribute + direction), *fixed
//! attributes* (position pinned, direction still free) and *free chunks*
//! (a set of attributes whose internal order is still undecided). Each
//! covered function contributes the constraint "positions `0..p_i` are
//! exactly `WPK_i` in some order, then `WOK_i` follows element-wise";
//! constraint merging is exact, so a successful merge *is* a proof that the
//! set is a cover set, and linearization yields a concrete covering
//! permutation. `θ(P)` prefixes (§4.5) merge through the same machinery.
//!
//! Minimum cover-set partitioning is NP-hard (Thm. 6, vertex coloring); the
//! greedy here processes functions by decreasing key length and joins the
//! accepting builder with the shortest covering key (tightest fit), which
//! reproduces the paper's partitions on Q6–Q9.

use crate::spec::WindowSpec;
use wf_common::{AttrId, AttrSet, OrdElem, SortSpec};

/// One position-range of a partially determined sort key.
#[derive(Debug, Clone, PartialEq)]
enum Slot {
    /// Fully determined element.
    Fixed(OrdElem),
    /// Attribute pinned to this position, direction still free.
    FixedAttr(AttrId),
    /// A set of attributes occupying the next `|set|` positions in any
    /// order, directions free.
    Free(AttrSet),
}

impl Slot {
    fn len(&self) -> usize {
        match self {
            Slot::Fixed(_) | Slot::FixedAttr(_) => 1,
            Slot::Free(s) => s.len(),
        }
    }
}

/// A partially determined covering key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyPattern {
    slots: Vec<Slot>,
}

/// One element of a `θ` prefix: attribute with an optional pinned
/// direction (directions are pinned when the element came from a `WOK`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaElem {
    pub attr: AttrId,
    pub elem: Option<OrdElem>,
}

impl ThetaElem {
    /// Direction-free element.
    pub fn free(attr: AttrId) -> Self {
        ThetaElem { attr, elem: None }
    }

    /// Direction-pinned element.
    pub fn fixed(e: OrdElem) -> Self {
        ThetaElem {
            attr: e.attr,
            elem: Some(e),
        }
    }
}

impl KeyPattern {
    /// The pattern of all keys `perm(WPK) ∘ WOK` of `wf`.
    pub fn for_spec(wf: &WindowSpec) -> Self {
        let mut slots = Vec::new();
        if !wf.wpk().is_empty() {
            slots.push(Slot::Free(wf.wpk().clone()));
        }
        slots.extend(wf.wok().elems().iter().map(|e| Slot::Fixed(*e)));
        KeyPattern { slots }
    }

    /// Total key length.
    pub fn len(&self) -> usize {
        self.slots.iter().map(Slot::len).sum()
    }

    /// True when the pattern has no positions.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Merge the covering constraint of `wf`: the prefix of this key must
    /// realize `perm(WPK) ∘ WOK`. Returns `false` (leaving `self` possibly
    /// partially modified — callers work on clones) when incompatible.
    #[must_use]
    pub fn constrain_cover(&mut self, wpk: &AttrSet, wok: &[OrdElem]) -> bool {
        // Phase A: the first |WPK| positions must be exactly WPK.
        let mut budget = wpk.clone();
        let mut i = 0usize;
        while !budget.is_empty() {
            let Some(slot) = self.slots.get_mut(i) else {
                return false;
            };
            match slot {
                Slot::Fixed(e) => {
                    if !budget.remove(e.attr) {
                        return false;
                    }
                    i += 1;
                }
                Slot::FixedAttr(a) => {
                    if !budget.remove(*a) {
                        return false;
                    }
                    i += 1;
                }
                Slot::Free(s) => {
                    let inter = s.intersect(&budget);
                    if inter.is_empty() {
                        return false;
                    }
                    if inter.len() == s.len() {
                        for a in s.iter() {
                            budget.remove(a);
                        }
                        i += 1;
                    } else {
                        // Pull the WPK attrs to the front of the free chunk.
                        let rest = s.difference(&inter);
                        for a in inter.iter() {
                            budget.remove(a);
                        }
                        *slot = Slot::Free(inter);
                        self.slots.insert(i + 1, Slot::Free(rest));
                        i += 1;
                        // budget must now be empty, else the next slot's
                        // attrs (∉ WPK) would sit inside the WPK region.
                    }
                }
            }
        }
        // Phase B: WOK follows element-wise.
        for e in wok {
            let Some(slot) = self.slots.get_mut(i) else {
                return false;
            };
            match slot {
                Slot::Fixed(have) => {
                    if *have != *e {
                        return false;
                    }
                    i += 1;
                }
                Slot::FixedAttr(a) => {
                    if *a != e.attr {
                        return false;
                    }
                    *slot = Slot::Fixed(*e);
                    i += 1;
                }
                Slot::Free(s) => {
                    if !s.contains(e.attr) {
                        return false;
                    }
                    let mut rest = s.clone();
                    rest.remove(e.attr);
                    *slot = Slot::Fixed(*e);
                    if !rest.is_empty() {
                        self.slots.insert(i + 1, Slot::Free(rest));
                    }
                    i += 1;
                }
            }
        }
        true
    }

    /// Merge a `θ` prefix constraint: position `j` must hold `theta[j]`.
    #[must_use]
    pub fn constrain_theta(&mut self, theta: &[ThetaElem]) -> bool {
        let mut i = 0usize;
        for t in theta {
            let Some(slot) = self.slots.get_mut(i) else {
                return false;
            };
            match slot {
                Slot::Fixed(have) => {
                    if have.attr != t.attr {
                        return false;
                    }
                    if let Some(e) = t.elem {
                        if *have != e {
                            return false;
                        }
                    }
                    i += 1;
                }
                Slot::FixedAttr(a) => {
                    if *a != t.attr {
                        return false;
                    }
                    if let Some(e) = t.elem {
                        *slot = Slot::Fixed(e);
                    }
                    i += 1;
                }
                Slot::Free(s) => {
                    if !s.contains(t.attr) {
                        return false;
                    }
                    let mut rest = s.clone();
                    rest.remove(t.attr);
                    *slot = match t.elem {
                        Some(e) => Slot::Fixed(e),
                        None => Slot::FixedAttr(t.attr),
                    };
                    if !rest.is_empty() {
                        self.slots.insert(i + 1, Slot::Free(rest));
                    }
                    i += 1;
                }
            }
        }
        true
    }

    /// Concrete covering permutation: free regions linearize in canonical
    /// (ascending attribute id, ascending direction) order.
    pub fn linearize(&self) -> SortSpec {
        let mut out: Vec<OrdElem> = Vec::with_capacity(self.len());
        for slot in &self.slots {
            match slot {
                Slot::Fixed(e) => out.push(*e),
                Slot::FixedAttr(a) => out.push(OrdElem::asc(*a)),
                Slot::Free(s) => out.extend(s.iter().map(OrdElem::asc)),
            }
        }
        SortSpec::new(out)
    }
}

/// A proven cover set over indices into a spec slice.
#[derive(Debug, Clone)]
pub struct CoverSet {
    /// Member indices, evaluation-ordered: covering function first, then
    /// the rest by decreasing key length (then index).
    pub members: Vec<usize>,
    /// Index of the covering function.
    pub covering: usize,
    /// The merged pattern; linearizes to a covering permutation.
    pub pattern: KeyPattern,
}

impl CoverSet {
    /// The concrete covering permutation `γ`.
    pub fn key(&self) -> SortSpec {
        self.pattern.linearize()
    }
}

/// Try to prove that `members` (indices into `specs`) form a cover set,
/// optionally requiring `theta` to be a prefix of the covering key.
/// Candidates for the covering function are exactly the members of maximal
/// key length (a shorter key cannot have a longer prefix).
pub fn try_cover_set(
    specs: &[WindowSpec],
    members: &[usize],
    theta: Option<&[ThetaElem]>,
) -> Option<CoverSet> {
    if members.is_empty() {
        return None;
    }
    let max_len = members
        .iter()
        .map(|&i| specs[i].key_len())
        .max()
        .unwrap_or(0);
    // Covered functions merge in ascending key length for determinism.
    let mut by_len: Vec<usize> = members.to_vec();
    by_len.sort_by_key(|&i| (specs[i].key_len(), i));

    for &cand in members.iter().filter(|&&i| specs[i].key_len() == max_len) {
        let mut pattern = KeyPattern::for_spec(&specs[cand]);
        if let Some(t) = theta {
            if !pattern.constrain_theta(t) {
                continue;
            }
        }
        let ok = by_len
            .iter()
            .filter(|&&i| i != cand)
            .all(|&i| pattern.constrain_cover(specs[i].wpk(), specs[i].wok().elems()));
        if ok {
            let mut rest: Vec<usize> = members.iter().copied().filter(|&i| i != cand).collect();
            rest.sort_by_key(|&i| (std::cmp::Reverse(specs[i].key_len()), i));
            let mut ordered = vec![cand];
            ordered.extend(rest);
            return Some(CoverSet {
                members: ordered,
                covering: cand,
                pattern,
            });
        }
    }
    None
}

/// Greedy partition of `idxs` into cover sets (heuristic for the NP-hard
/// minimum partition, Thm. 6). Functions are processed by decreasing key
/// length; each joins the accepting existing set with the shortest covering
/// key, else opens a new set. `theta` constrains every produced cover set's
/// key (used for the first cover set of a prefixable subset).
pub fn partition_into_cover_sets(
    specs: &[WindowSpec],
    idxs: &[usize],
    theta: Option<&[ThetaElem]>,
) -> Vec<CoverSet> {
    let mut order: Vec<usize> = idxs.to_vec();
    order.sort_by_key(|&i| (std::cmp::Reverse(specs[i].key_len()), i));

    let mut sets: Vec<Vec<usize>> = Vec::new();
    for &wf in &order {
        let mut best: Option<(usize, usize)> = None; // (set index, covering len)
        for (si, members) in sets.iter().enumerate() {
            let mut trial = members.clone();
            trial.push(wf);
            if let Some(cs) = try_cover_set(specs, &trial, theta) {
                let cover_len = specs[cs.covering].key_len();
                if best.is_none_or(|(_, l)| cover_len < l) {
                    best = Some((si, cover_len));
                }
            }
        }
        match best {
            Some((si, _)) => sets[si].push(wf),
            None => sets.push(vec![wf]),
        }
    }
    sets.into_iter()
        .map(|members| {
            try_cover_set(specs, &members, theta)
                .expect("greedy only grows sets it has already proven")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::AttrId;

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }
    fn key(ids: &[usize]) -> SortSpec {
        SortSpec::new(ids.iter().map(|&i| OrdElem::asc(a(i))).collect())
    }
    fn wf(wpk: &[usize], wok: &[usize]) -> WindowSpec {
        WindowSpec::rank("t", wpk.iter().map(|&i| a(i)).collect(), key(wok))
    }

    /// The covering key must cover every member: prefix check by brute
    /// force over all permutations of each member's WPK.
    fn assert_covers(specs: &[WindowSpec], cs: &CoverSet) {
        let gamma = cs.key();
        for &m in &cs.members {
            let s = &specs[m];
            let n = s.key_len();
            assert!(gamma.len() >= n, "γ shorter than member key");
            let head: AttrSet = gamma.elems()[..s.wpk().len()]
                .iter()
                .map(|e| e.attr)
                .collect();
            assert_eq!(&head, s.wpk(), "γ prefix must be member's WPK");
            assert_eq!(
                &gamma.elems()[s.wpk().len()..n],
                s.wok().elems(),
                "γ must continue with member's WOK"
            );
        }
    }

    /// Paper Example 8: W = {wf1=({a,b,c},(d)), wf2=({a,b},(c,d)),
    /// wf3=({a,b},(c))} is a cover set (covering functions wf1 and wf2).
    #[test]
    fn example8_cover_set() {
        let specs = vec![
            wf(&[0, 1, 2], &[3]),
            wf(&[0, 1], &[2, 3]),
            wf(&[0, 1], &[2]),
        ];
        let cs = try_cover_set(&specs, &[0, 1, 2], None).expect("must be a cover set");
        assert_covers(&specs, &cs);
        assert_eq!(specs[cs.covering].key_len(), 4);
        // γ = (a,b,c,d) or (b,a,c,d).
        let gamma = cs.key();
        assert_eq!(gamma.len(), 4);
        assert_eq!(gamma.elems()[2].attr, a(2));
        assert_eq!(gamma.elems()[3].attr, a(3));
    }

    #[test]
    fn incompatible_pair_is_not_a_cover_set() {
        // ({a},(b)) vs ({a},(c)) — Q6's two functions.
        let specs = vec![wf(&[0], &[1]), wf(&[0], &[2])];
        assert!(try_cover_set(&specs, &[0, 1], None).is_none());
    }

    #[test]
    fn conflicting_free_region_orders_rejected() {
        // wfc=({a,b},(c)); wf1=(∅,(a)); wf2=(∅,(b)): pairwise coverable but
        // not simultaneously.
        let specs = vec![wf(&[0, 1], &[2]), wf(&[], &[0]), wf(&[], &[1])];
        assert!(try_cover_set(&specs, &[0, 1], None).is_some());
        assert!(try_cover_set(&specs, &[0, 2], None).is_some());
        assert!(try_cover_set(&specs, &[0, 1, 2], None).is_none());
    }

    #[test]
    fn directions_must_agree_in_wok_region() {
        let desc_spec = WindowSpec::rank("d", vec![a(0)], SortSpec::new(vec![OrdElem::desc(a(1))]));
        let asc_spec = wf(&[0], &[1]);
        let specs = vec![desc_spec, asc_spec];
        assert!(try_cover_set(&specs, &[0, 1], None).is_none());
        // But a desc WOK inside another's WPK region is fine:
        let specs2 = vec![
            WindowSpec::rank("d", vec![a(0)], SortSpec::new(vec![OrdElem::desc(a(1))])),
            wf(&[0, 1], &[]),
        ];
        let cs = try_cover_set(&specs2, &[0, 1], None).expect("cover set");
        assert_covers(&specs2, &cs);
        assert_eq!(cs.key().elems()[1], OrdElem::desc(a(1)));
    }

    #[test]
    fn theta_constraint_restricts_key() {
        // Covering wf = ({a,b},(c)); θ = (b): γ must start with b.
        let specs = vec![wf(&[0, 1], &[2])];
        let theta = [ThetaElem::free(a(1))];
        let cs = try_cover_set(&specs, &[0], Some(&theta)).expect("feasible");
        assert_eq!(cs.key().elems()[0].attr, a(1));
        // θ with an attr outside the key is infeasible.
        let bad = [ThetaElem::free(a(9))];
        assert!(try_cover_set(&specs, &[0], Some(&bad)).is_none());
    }

    /// Paper Q7: {wf5, wf4, wf3} form one cover set with covering wf5.
    /// Attrs: date=0, time=1, ship=2, item=3, bill=4.
    #[test]
    fn q7_item_group_single_cover_set() {
        let specs = vec![
            wf(&[3], &[]),           // wf3 = ({item}, ε)
            wf(&[], &[3, 4]),        // wf4 = (∅, (item,bill))
            wf(&[0, 1, 3, 4], &[2]), // wf5 = ({date,time,item,bill}, (ship))
        ];
        let cs = try_cover_set(&specs, &[0, 1, 2], None).expect("cover set");
        assert_covers(&specs, &cs);
        assert_eq!(cs.covering, 2);
        // γ must start (item, bill, ...).
        let gamma = cs.key();
        assert_eq!(gamma.elems()[0].attr, a(3));
        assert_eq!(gamma.elems()[1].attr, a(4));
        // Evaluation order: covering first.
        assert_eq!(cs.members[0], 2);
    }

    /// Paper Q9 item-group: {wf1, wf2, wf3, wf4} partitions into exactly
    /// {wf2,wf3}, {wf1}, {wf4} (3 cover sets). Attrs: date=0, item=1,
    /// time=2, bill=3.
    #[test]
    fn q9_item_group_partition() {
        let specs = vec![
            wf(&[1], &[3, 0]), // wf1 = ({item},(bill,date))
            wf(&[1, 2], &[0]), // wf2 = ({item,time},(date))
            wf(&[1], &[2]),    // wf3 = ({item},(time))
            wf(&[], &[1, 0]),  // wf4 = (∅,(item,date))
        ];
        let sets = partition_into_cover_sets(&specs, &[0, 1, 2, 3], None);
        assert_eq!(sets.len(), 3);
        let mut memberships: Vec<Vec<usize>> = sets
            .iter()
            .map(|cs| {
                let mut m = cs.members.clone();
                m.sort_unstable();
                m
            })
            .collect();
        memberships.sort();
        assert_eq!(memberships, vec![vec![0], vec![1, 2], vec![3]]);
        for cs in &sets {
            assert_covers(&specs, cs);
        }
    }

    /// Q8 time/date-group: greedy must produce {wf5}, {wf1, wf2} — wf2
    /// joins the *tighter* builder. Attrs: date=0, time=1, ship=2, item=3,
    /// bill=4.
    #[test]
    fn q8_min_slack_join() {
        let specs = vec![
            wf(&[0, 1, 2], &[]),     // wf1 = ({date,time,ship}, ε)
            wf(&[1, 0], &[]),        // wf2 = ({time,date}, ε)
            wf(&[0, 1, 3], &[4, 2]), // wf5 = ({date,time,item},(bill,ship))
        ];
        let sets = partition_into_cover_sets(&specs, &[0, 1, 2], None);
        assert_eq!(sets.len(), 2);
        let with_wf2 = sets.iter().find(|cs| cs.members.contains(&1)).unwrap();
        assert!(
            with_wf2.members.contains(&0),
            "wf2 must join wf1, the tighter cover"
        );
        for cs in &sets {
            assert_covers(&specs, cs);
        }
    }

    #[test]
    fn singleton_always_cover_set() {
        let specs = vec![wf(&[0], &[1])];
        let cs = try_cover_set(&specs, &[0], None).unwrap();
        assert_eq!(cs.members, vec![0]);
        assert_eq!(cs.key().attr_seq().as_slice(), &[a(0), a(1)]);
    }

    #[test]
    fn pattern_linearize_is_deterministic() {
        let s = wf(&[2, 0, 1], &[3]);
        let p = KeyPattern::for_spec(&s);
        assert_eq!(p.len(), 4);
        let k1 = p.linearize();
        let k2 = KeyPattern::for_spec(&s).linearize();
        assert_eq!(k1, k2);
        // Canonical: free region ascending by attr id.
        assert_eq!(k1.attr_seq().as_slice(), &[a(0), a(1), a(2), a(3)]);
    }

    #[test]
    fn nested_three_level_cover() {
        // wf3 ⊂ wf2 ⊂ wf1 with progressively longer keys forces repeated
        // free-chunk splitting.
        let specs = vec![
            wf(&[0, 1, 2, 3], &[4]), // covering
            wf(&[0, 2], &[1]),
            wf(&[0], &[2]),
        ];
        let cs = try_cover_set(&specs, &[0, 1, 2], None).expect("nested covers");
        assert_covers(&specs, &cs);
        // γ must be exactly (a, c, b, d, e).
        let attrs: Vec<AttrId> = cs.key().elems().iter().map(|e| e.attr).collect();
        assert_eq!(attrs, vec![a(0), a(2), a(1), a(3), a(4)]);
    }

    #[test]
    fn theta_combined_with_cover_constraints() {
        // θ = (b) plus covered member (∅,(b,a)): both must merge.
        let specs = vec![wf(&[0, 1], &[2]), wf(&[], &[1, 0])];
        let theta = [ThetaElem::free(a(1))];
        let cs = try_cover_set(&specs, &[0, 1], Some(&theta)).expect("compatible");
        assert_covers(&specs, &cs);
        assert_eq!(cs.key().attr_seq().as_slice(), &[a(1), a(0), a(2)]);
        // Conflicting θ = (c): c is not first in any perm of {a,b}∘(c)... it
        // is not in WPK, so position 0 cannot hold it.
        let bad = [ThetaElem::free(a(2))];
        assert!(try_cover_set(&specs, &[0, 1], Some(&bad)).is_none());
    }

    #[test]
    fn partition_handles_duplicate_specs() {
        // Identical functions must land in one cover set.
        let specs = vec![wf(&[0], &[1]), wf(&[0], &[1]), wf(&[0], &[1])];
        let sets = partition_into_cover_sets(&specs, &[0, 1, 2], None);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].members.len(), 3);
    }

    #[test]
    fn empty_members_not_a_cover_set() {
        let specs: Vec<WindowSpec> = vec![];
        assert!(try_cover_set(&specs, &[], None).is_none());
    }
}
