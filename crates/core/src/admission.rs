//! Cross-query admission control over one shared [`SegmentStore`] pool.
//!
//! The PR 5 ledger sub-account mechanism bounded the residency of parallel
//! workers *inside* one chain; this module repurposes it **across queries**:
//! a [`QueryGovernor`] owns the global pool and hands every admitted query a
//! *pooled* sub-account ([`SegmentStore::pooled_sub_store`]) budgeted with
//! `per_query_blocks` of the shared pool. At most `max_concurrent` permits
//! are out at once, so
//!
//! ```text
//! Σ live per-query budgets  ≤  max_concurrent × per_query_blocks  ≤  pool
//! ```
//!
//! bounds global residency to `O(pool + largest unit)` while each query's
//! spill decisions (and therefore its rows, modeled counters and pool
//! counters) depend only on its **own** budget — bit-identical to a solo run,
//! which is what `tests/concurrent_sessions.rs` asserts.
//!
//! When all permits are out, arrivals wait in a bounded FIFO queue
//! ([`AdmissionConfig::queue_depth`]); beyond that they are rejected
//! immediately with [`Error::Admission`]. Waiting is subject to an optional
//! per-query timeout and a cooperative [`CancelToken`], both of which
//! surface as clean errors without touching the shared store.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use wf_common::{Error, Result};
use wf_storage::{SegmentStore, StoreSnapshot};

/// Sizing knobs for a [`QueryGovernor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Queries allowed to run simultaneously (≥ 1).
    pub max_concurrent: usize,
    /// Arrivals allowed to *wait* when every permit is out; one more is
    /// rejected immediately. `0` disables queueing entirely.
    pub queue_depth: usize,
    /// Ledger budget (in blocks) of each admitted query's pooled
    /// sub-account — the per-query `M`.
    pub per_query_blocks: u64,
}

impl AdmissionConfig {
    /// A governor config that splits `pool_blocks` evenly over
    /// `max_concurrent` queries (minimum one block each) with a queue as
    /// deep as the permit count.
    pub fn split_evenly(pool_blocks: u64, max_concurrent: usize) -> Self {
        let max_concurrent = max_concurrent.max(1);
        AdmissionConfig {
            max_concurrent,
            queue_depth: max_concurrent,
            per_query_blocks: (pool_blocks / max_concurrent as u64).max(1),
        }
    }
}

/// Monotonic counters describing everything the governor has ever done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries granted a permit.
    pub admitted: u64,
    /// Queries that had to wait in the FIFO before admission.
    pub queued: u64,
    /// Arrivals bounced because the wait queue was full.
    pub rejected: u64,
    /// Waiters that gave up after their queue-wait timeout.
    pub timed_out: u64,
    /// Waiters whose [`CancelToken`] fired before admission.
    pub canceled: u64,
    /// Permits returned (queries finished).
    pub completed: u64,
    /// Most permits ever out simultaneously.
    pub peak_in_flight: usize,
    /// Total time admitted queries spent waiting in the queue.
    pub total_queue_wait: Duration,
    /// Longest single queue wait among admitted queries.
    pub max_queue_wait: Duration,
}

#[derive(Default)]
struct GovState {
    running: usize,
    /// Tickets of the queries currently waiting, oldest first.
    queue: VecDeque<u64>,
    next_ticket: u64,
    stats: AdmissionStats,
}

/// Cooperative cancellation flag for a queued or about-to-run query.
///
/// Cancellation is checked while waiting for admission and once more before
/// execution starts; a set token surfaces as [`Error::Canceled`]. It never
/// interrupts an executing chain mid-flight — operators are not
/// interruption-safe, and a query that already holds a permit completes and
/// releases it normally.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fire the token: pending admission fails with [`Error::Canceled`].
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_canceled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// The admission governor: owns the shared pool, hands out permits.
pub struct QueryGovernor {
    pool: Arc<SegmentStore>,
    cfg: AdmissionConfig,
    state: Mutex<GovState>,
    cv: Condvar,
}

impl QueryGovernor {
    /// Governor over `pool` with the given admission config.
    pub fn new(pool: Arc<SegmentStore>, cfg: AdmissionConfig) -> Arc<Self> {
        Arc::new(QueryGovernor {
            pool,
            cfg: AdmissionConfig {
                max_concurrent: cfg.max_concurrent.max(1),
                ..cfg
            },
            state: Mutex::new(GovState::default()),
            cv: Condvar::new(),
        })
    }

    /// The shared pool the sub-accounts forward into.
    pub fn pool(&self) -> &Arc<SegmentStore> {
        &self.pool
    }

    /// The governor's sizing knobs.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Current counters.
    pub fn stats(&self) -> AdmissionStats {
        self.state.lock().expect("governor lock").stats
    }

    /// Queries currently holding a permit.
    pub fn in_flight(&self) -> usize {
        self.state.lock().expect("governor lock").running
    }

    /// Combined residency/spill snapshot of the shared pool (forwarded
    /// charges of every live sub-account).
    pub fn pool_snapshot(&self) -> StoreSnapshot {
        self.pool.snapshot()
    }

    /// Acquire a permit, waiting in FIFO order when every slot is taken.
    ///
    /// `timeout` bounds the *queue wait* (not execution); `cancel` is polled
    /// while waiting. Returns [`Error::Admission`] when the wait queue is
    /// full or the timeout elapses, [`Error::Canceled`] when the token fires
    /// first. The returned [`AdmissionPermit`] releases its slot on drop.
    pub fn admit(
        self: &Arc<Self>,
        timeout: Option<Duration>,
        cancel: Option<&CancelToken>,
    ) -> Result<AdmissionPermit> {
        let start = Instant::now();
        let mut s = self.state.lock().expect("governor lock");
        if let Some(tok) = cancel {
            if tok.is_canceled() {
                s.stats.canceled += 1;
                return Err(Error::Canceled("before admission".into()));
            }
        }
        // Fast path: a free slot and nobody queued ahead.
        if s.running < self.cfg.max_concurrent && s.queue.is_empty() {
            return Ok(self.grant(&mut s, Duration::ZERO));
        }
        if s.queue.len() >= self.cfg.queue_depth {
            s.stats.rejected += 1;
            return Err(Error::Admission(format!(
                "admission queue full ({} waiting, {} running)",
                s.queue.len(),
                s.running
            )));
        }
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        s.queue.push_back(ticket);
        s.stats.queued += 1;
        loop {
            if let Some(tok) = cancel {
                if tok.is_canceled() {
                    s.queue.retain(|&t| t != ticket);
                    s.stats.canceled += 1;
                    // A slot may have opened for the waiter behind us.
                    self.cv.notify_all();
                    return Err(Error::Canceled("while queued for admission".into()));
                }
            }
            if s.queue.front() == Some(&ticket) && s.running < self.cfg.max_concurrent {
                s.queue.pop_front();
                let wait = start.elapsed();
                let permit = self.grant(&mut s, wait);
                // More than one slot may be free; wake the next waiter.
                self.cv.notify_all();
                return Ok(permit);
            }
            let elapsed = start.elapsed();
            if let Some(t) = timeout {
                if elapsed >= t {
                    s.queue.retain(|&x| x != ticket);
                    s.stats.timed_out += 1;
                    self.cv.notify_all();
                    return Err(Error::Admission(format!(
                        "queue-wait timeout after {:.0?} ({} still running)",
                        elapsed, s.running
                    )));
                }
            }
            // Short slices keep cancellation responsive even without a
            // notification (the token can fire from any thread at any time).
            let slice = timeout
                .map(|t| t.saturating_sub(elapsed))
                .unwrap_or(Duration::from_millis(25))
                .min(Duration::from_millis(25));
            let (guard, _) = self
                .cv
                .wait_timeout(s, slice)
                .expect("governor lock poisoned");
            s = guard;
        }
    }

    fn grant(
        self: &Arc<Self>,
        s: &mut std::sync::MutexGuard<'_, GovState>,
        queue_wait: Duration,
    ) -> AdmissionPermit {
        s.running += 1;
        s.stats.admitted += 1;
        s.stats.peak_in_flight = s.stats.peak_in_flight.max(s.running);
        s.stats.total_queue_wait += queue_wait;
        s.stats.max_queue_wait = s.stats.max_queue_wait.max(queue_wait);
        AdmissionPermit {
            governor: Arc::clone(self),
            store: self.pool.pooled_sub_store(Some(self.cfg.per_query_blocks)),
            queue_wait,
        }
    }
}

impl std::fmt::Debug for QueryGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryGovernor")
            .field("config", &self.cfg)
            .field("in_flight", &self.in_flight())
            .field("stats", &self.stats())
            .finish()
    }
}

/// One admitted query's slot: a pooled ledger sub-account plus the RAII
/// guard that returns the slot (and wakes the next waiter) on drop.
pub struct AdmissionPermit {
    governor: Arc<QueryGovernor>,
    store: Arc<SegmentStore>,
    queue_wait: Duration,
}

impl AdmissionPermit {
    /// The query's pooled sub-account of the shared store: run the whole
    /// chain in it (e.g. via `ExecEnv::with_store`).
    pub fn store(&self) -> &Arc<SegmentStore> {
        &self.store
    }

    /// How long this query waited in the admission queue.
    pub fn queue_wait(&self) -> Duration {
        self.queue_wait
    }

    /// The per-query ledger budget in blocks.
    pub fn mem_blocks(&self) -> u64 {
        self.governor.cfg.per_query_blocks
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut s = self.governor.state.lock().expect("governor lock");
        s.running = s.running.saturating_sub(1);
        s.stats.completed += 1;
        drop(s);
        self.governor.cv.notify_all();
    }
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AdmissionPermit<{} blocks, waited {:.0?}>",
            self.mem_blocks(),
            self.queue_wait
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use wf_storage::spill::SpillMedium;

    fn governor(max: usize, depth: usize) -> Arc<QueryGovernor> {
        let pool = SegmentStore::new(Some(64), SpillMedium::Simulated);
        QueryGovernor::new(
            pool,
            AdmissionConfig {
                max_concurrent: max,
                queue_depth: depth,
                per_query_blocks: 8,
            },
        )
    }

    #[test]
    fn split_evenly_divides_the_pool() {
        let cfg = AdmissionConfig::split_evenly(64, 8);
        assert_eq!(cfg.per_query_blocks, 8);
        assert_eq!(cfg.queue_depth, 8);
        // Never below one block, even for absurd permit counts.
        assert_eq!(AdmissionConfig::split_evenly(2, 100).per_query_blocks, 1);
    }

    #[test]
    fn fast_path_admits_up_to_max_concurrent() {
        let gov = governor(2, 4);
        let a = gov.admit(None, None).unwrap();
        let b = gov.admit(None, None).unwrap();
        assert_eq!(gov.in_flight(), 2);
        assert_eq!(a.queue_wait(), Duration::ZERO);
        assert_eq!(a.mem_blocks(), 8);
        drop(a);
        drop(b);
        let st = gov.stats();
        assert_eq!(st.admitted, 2);
        assert_eq!(st.completed, 2);
        assert_eq!(st.queued, 0);
        assert_eq!(st.peak_in_flight, 2);
        assert_eq!(gov.in_flight(), 0);
    }

    #[test]
    fn queue_full_rejects_immediately() {
        let gov = governor(1, 0);
        let _hold = gov.admit(None, None).unwrap();
        let err = gov.admit(None, None).unwrap_err();
        assert!(matches!(err, Error::Admission(_)), "{err}");
        assert_eq!(gov.stats().rejected, 1);
    }

    #[test]
    fn waiter_is_admitted_when_a_permit_frees() {
        let gov = governor(1, 2);
        let hold = gov.admit(None, None).unwrap();
        let g2 = Arc::clone(&gov);
        let waiter = thread::spawn(move || g2.admit(None, None).map(|p| p.queue_wait()));
        // Give the waiter time to join the queue, then free the slot.
        while gov.stats().queued == 0 {
            thread::yield_now();
        }
        drop(hold);
        let wait = waiter.join().unwrap().unwrap();
        assert!(wait > Duration::ZERO);
        let st = gov.stats();
        assert_eq!(st.admitted, 2);
        assert_eq!(st.queued, 1);
        assert!(st.max_queue_wait >= wait);
    }

    #[test]
    fn queue_wait_timeout_is_a_clean_admission_error() {
        let gov = governor(1, 2);
        let _hold = gov.admit(None, None).unwrap();
        let err = gov
            .admit(Some(Duration::from_millis(30)), None)
            .unwrap_err();
        assert!(matches!(err, Error::Admission(_)), "{err}");
        assert_eq!(gov.stats().timed_out, 1);
        // The governor still works afterwards.
        drop(_hold);
        assert!(gov.admit(None, None).is_ok());
    }

    #[test]
    fn cancel_token_aborts_a_queued_wait() {
        let gov = governor(1, 2);
        let _hold = gov.admit(None, None).unwrap();
        let tok = CancelToken::new();
        let (g2, t2) = (Arc::clone(&gov), tok.clone());
        let waiter = thread::spawn(move || g2.admit(None, Some(&t2)).map(|_| ()));
        while gov.stats().queued == 0 {
            thread::yield_now();
        }
        tok.cancel();
        let err = waiter.join().unwrap().unwrap_err();
        assert!(matches!(err, Error::Canceled(_)), "{err}");
        assert_eq!(gov.stats().canceled, 1);
        // An already-fired token fails fast, before queueing.
        let err = gov.admit(None, Some(&tok)).unwrap_err();
        assert!(matches!(err, Error::Canceled(_)), "{err}");
    }

    #[test]
    fn admission_is_fifo() {
        let gov = governor(1, 8);
        let hold = gov.admit(None, None).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut joins = Vec::new();
        for i in 0..4 {
            let (g2, ord) = (Arc::clone(&gov), Arc::clone(&order));
            joins.push(thread::spawn(move || {
                let p = g2.admit(None, None).unwrap();
                ord.lock().unwrap().push(i);
                drop(p);
            }));
            // Serialize queue entry so ticket order matches spawn order.
            while gov.stats().queued != i + 1 {
                thread::yield_now();
            }
        }
        drop(hold);
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn permit_stores_forward_into_the_shared_pool() {
        let gov = governor(4, 4);
        let p = gov.admit(None, None).unwrap();
        let h = p
            .store()
            .admit(vec![wf_common::row![1i64, "x"]; 100])
            .unwrap();
        assert!(gov.pool_snapshot().resident_rows >= 100);
        drop(h);
        assert_eq!(gov.pool_snapshot().resident_rows, 0);
    }
}
